// Benchmarks regenerating the paper's evaluation: one testing.B target
// per table and figure (scaled-down limits; run cmd/benchtables for the
// full versions and the paper-layout output), plus microbenchmarks for
// the substrates that dominate the solvers' runtime.
package main

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/linalg"
	"repro/internal/lp"
	"repro/internal/maxflow"
	"repro/internal/scip"
	"repro/internal/steiner"
	"repro/internal/steiner/puc"
)

// BenchmarkTable1_SteinerSharedMemory reproduces Table 1: shared-memory
// ug[SCIP-Jack] scaling over the five PUC-analogue instances. The
// qualitative checks (root-dominated instances do not scale; the last
// instance scales best) are asserted by TestTable1Shape in the
// experiments package; here the wall-clock of the whole sweep is
// measured.
func BenchmarkTable1_SteinerSharedMemory(b *testing.B) {
	threads := []int{1, 2, 4}
	for i := 0; i < b.N; i++ {
		rows := experiments.RunTable1(experiments.Table1Instances(), threads, 35)
		if len(rows) != 5 {
			b.Fatalf("expected 5 rows, got %d", len(rows))
		}
		speedup := rows[4].Times[1] / rows[4].Times[threads[len(threads)-1]]
		b.ReportMetric(speedup, "hc7u-speedup")
	}
}

// BenchmarkTable2_CheckpointRestartSeries reproduces Table 2: a series
// of time-limited runs on the bip52u analogue, each restarted from the
// previous checkpoint, with the final run closing the instance.
func BenchmarkTable2_CheckpointRestartSeries(b *testing.B) {
	dir := b.TempDir()
	for i := 0; i < b.N; i++ {
		ckpt := filepath.Join(dir, "t2.ckpt")
		rows := experiments.RunTable2(experiments.Table2Instance(), 2, 0.15, 8, ckpt)
		last := rows[len(rows)-1]
		if !last.Optimal {
			b.Fatalf("restart series did not close the instance: %+v", last)
		}
		b.ReportMetric(float64(len(rows)), "runs")
		b.ReportMetric(float64(last.OpenStart), "primitive-nodes-at-last-restart")
		os.Remove(ckpt)
	}
}

// BenchmarkTable3_IncumbentImprovementRuns reproduces Table 3: repeated
// racing runs on the hc10p analogue, each seeded with the previous best
// solution; the reproduction target is that the primal bound improves
// across runs on an instance whose gap stays open.
func BenchmarkTable3_IncumbentImprovementRuns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RunTable3(experiments.Table3Instance(), 4, 2, 2.5)
		improved := 0
		for _, r := range rows {
			if r.Improved {
				improved++
			}
		}
		b.ReportMetric(float64(improved), "improving-runs")
		b.ReportMetric(rows[len(rows)-1].FinalPrimal, "final-primal")
	}
}

// BenchmarkTable4_MISDPSpeedup reproduces Table 4: sequential SCIP-SDP
// versus ug[SCIP-SDP] with growing thread counts over the three CBLIB
// families (#solved and shifted geometric mean times).
func BenchmarkTable4_MISDPSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunTable4(experiments.StandardTestsets(3), []int{1, 2, 4}, 8)
		seq := res.Cells["SCIP-SDP"]["Total"]
		par := res.Cells["ug [SCIP-SDP] 4 thr."]["Total"]
		if par.Solved < seq.Solved {
			b.Logf("parallel solved fewer: %d vs %d", par.Solved, seq.Solved)
		}
		b.ReportMetric(seq.Time/par.Time, "speedup-4thr")
	}
}

// BenchmarkFigure1_RacingWinnerHistogram reproduces Figure 1: which
// racing setting wins, per test-set family (odd = SDP-based settings,
// even = LP-based).
func BenchmarkFigure1_RacingWinnerHistogram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunFigure1(experiments.StandardTestsets(3), 8, 8, 8)
		lpWins, sdpWins := 0, 0
		for name, fams := range res.Winners {
			total := fams["TTD"] + fams["CLS"] + fams["Mk-P"]
			if strings.Contains(name, ":lp") {
				lpWins += total
			} else {
				sdpWins += total
			}
		}
		b.ReportMetric(float64(lpWins), "lp-wins")
		b.ReportMetric(float64(sdpWins), "sdp-wins")
		b.ReportMetric(float64(res.Excluded), "solved-in-racing")
	}
}

// ---------------------------------------------------------------------
// Substrate microbenchmarks.

func BenchmarkLPSolve(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	prob := lp.NewProblem()
	n, m := 60, 40
	for j := 0; j < n; j++ {
		prob.AddVar(0, 10, rng.NormFloat64())
	}
	for i := 0; i < m; i++ {
		var coefs []lp.Nonzero
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.3 {
				coefs = append(coefs, lp.Nonzero{Col: j, Val: rng.NormFloat64()})
			}
		}
		prob.AddRow(lp.LE, 5+rng.Float64()*10, coefs)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sol := lp.NewSolver(prob).Solve(); sol.Status != lp.Optimal {
			b.Fatal("LP not optimal")
		}
	}
}

func BenchmarkLPWarmStartDive(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	prob := lp.NewProblem()
	n := 40
	for j := 0; j < n; j++ {
		prob.AddVar(0, 1, rng.NormFloat64())
	}
	for i := 0; i < 30; i++ {
		var coefs []lp.Nonzero
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.4 {
				coefs = append(coefs, lp.Nonzero{Col: j, Val: rng.Float64()})
			}
		}
		prob.AddRow(lp.LE, 3, coefs)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := lp.NewSolver(prob)
		s.Solve()
		for d := 0; d < 10; d++ {
			s.SetBound(d%n, 0, 0) // fix a variable, dual re-solve
			s.Solve()
		}
	}
}

func BenchmarkEigen(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	s := linalg.NewSym(30)
	for i := 0; i < 30; i++ {
		for j := i; j < 30; j++ {
			s.Set(i, j, rng.NormFloat64())
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		linalg.Eigen(s)
	}
}

func BenchmarkMaxFlow(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	type arcdef struct {
		u, v int
		c    float64
	}
	var arcs []arcdef
	n := 200
	for i := 0; i < 5*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			arcs = append(arcs, arcdef{u, v, rng.Float64()})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw := maxflow.New(n)
		for _, a := range arcs {
			nw.AddArc(a.u, a.v, a.c)
		}
		nw.MaxFlow(0, n-1)
	}
}

func BenchmarkDualAscent(b *testing.B) {
	inst := puc.Hypercube(6, true, 1)
	root := inst.Root()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		steiner.DualAscent(inst, root)
	}
}

func BenchmarkSteinerReductions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		inst := puc.Bipartite(16, 80, 3, false, 52)
		b.StartTimer()
		steiner.Reduce(inst, 0)
	}
}

func BenchmarkSteinerRootLP(b *testing.B) {
	// One full root-node solve (dual ascent + LP + cut loop) on a
	// PUC-analogue — the unit of work the paper's "root time" row counts.
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		inst := puc.CodeCover(3, 4, 8, true, 341)
		def := &steiner.Def{}
		data, _ := def.Presolve(inst, scip.Infinity)
		prob := def.BuildModel(data.(*steiner.SPG))
		plug := steiner.NewPlugins()
		plug.Def = def
		set := steiner.DefaultSettings()
		set.NodeLimit = 1
		b.StartTimer()
		scip.NewSolver(prob, set, plug).Solve()
	}
}
