package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddDelete(t *testing.T) {
	g := New(4)
	e1 := g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	g.AddEdge(2, 3, 3)
	if g.AliveEdges() != 3 || g.AliveVertices() != 4 {
		t.Fatalf("counts wrong: %d %d", g.AliveEdges(), g.AliveVertices())
	}
	g.DeleteEdge(e1)
	if g.AliveEdges() != 2 || g.EdgeAlive(e1) {
		t.Fatal("edge deletion failed")
	}
	g.DeleteEdge(e1) // idempotent
	if g.AliveEdges() != 2 {
		t.Fatal("double deletion changed count")
	}
	g.DeleteVertex(2)
	if g.AliveVertices() != 3 || g.AliveEdges() != 0 {
		t.Fatalf("vertex deletion: %d %d", g.AliveVertices(), g.AliveEdges())
	}
}

func TestDegreeAndAdj(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	e := g.AddEdge(1, 2, 1)
	if g.Degree(0) != 2 || g.Degree(1) != 2 {
		t.Fatal("degree wrong")
	}
	g.DeleteEdge(e)
	if g.Degree(1) != 1 {
		t.Fatal("degree after deletion wrong")
	}
	var ns []int
	g.Adj(0, func(e, w int) bool { ns = append(ns, w); return true })
	if len(ns) != 2 {
		t.Fatalf("Adj visited %v", ns)
	}
}

func TestOther(t *testing.T) {
	g := New(2)
	e := g.AddEdge(0, 1, 1)
	if g.Other(e, 0) != 1 || g.Other(e, 1) != 0 {
		t.Fatal("Other wrong")
	}
}

func TestDijkstraPath(t *testing.T) {
	// 0-1 (1), 1-2 (1), 0-2 (5): dist(2) = 2 via 1.
	g := New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 5)
	dist, pred := g.Dijkstra([]int{0}, nil)
	if dist[2] != 2 {
		t.Fatalf("dist[2] = %v", dist[2])
	}
	if pred[2] != 1 { // edge 1 is 1-2
		t.Fatalf("pred[2] = %v", pred[2])
	}
}

func TestDijkstraMultiSource(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 10)
	g.AddEdge(2, 1, 1)
	g.AddEdge(2, 3, 7)
	dist, _ := g.Dijkstra([]int{0, 3}, nil)
	if dist[1] != 8 { // via 3-2-1
		t.Fatalf("dist[1] = %v, want 8", dist[1])
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	dist, _ := g.Dijkstra([]int{0}, nil)
	if !math.IsInf(dist[2], 1) {
		t.Fatal("unreachable vertex should be +Inf")
	}
}

func TestDijkstraCostOverride(t *testing.T) {
	g := New(2)
	e := g.AddEdge(0, 1, 100)
	costs := make([]float64, 1)
	costs[e] = 3
	dist, _ := g.Dijkstra([]int{0}, costs)
	if dist[1] != 3 {
		t.Fatalf("override not used: %v", dist[1])
	}
}

func TestDijkstraRespectsDeletions(t *testing.T) {
	g := New(3)
	e := g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 5)
	g.AddEdge(2, 1, 1)
	g.DeleteEdge(e)
	dist, _ := g.Dijkstra([]int{0}, nil)
	if dist[1] != 6 {
		t.Fatalf("dist[1] = %v, want 6 via vertex 2", dist[1])
	}
}

func TestMSTKnown(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	g.AddEdge(2, 3, 3)
	g.AddEdge(3, 0, 4)
	g.AddEdge(0, 2, 5)
	edges, total, ok := g.MSTPrim(nil)
	if !ok || total != 6 || len(edges) != 3 {
		t.Fatalf("MST = %v cost %v ok %v", edges, total, ok)
	}
}

func TestMSTMasked(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	g.AddEdge(2, 3, 3)
	mask := []bool{true, true, true, false}
	_, total, ok := g.MSTPrim(mask)
	if !ok || total != 3 {
		t.Fatalf("masked MST cost %v ok %v", total, ok)
	}
}

func TestMSTDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	_, _, ok := g.MSTPrim(nil)
	if ok {
		t.Fatal("disconnected graph should report ok=false")
	}
}

// Property: MST via Prim matches Kruskal (union-find based) on random
// connected graphs.
func TestMSTMatchesKruskal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		g := New(n)
		// Random spanning path keeps it connected.
		for v := 1; v < n; v++ {
			g.AddEdge(rng.Intn(v), v, 1+rng.Float64()*9)
		}
		extra := rng.Intn(2 * n)
		for i := 0; i < extra; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v, 1+rng.Float64()*9)
			}
		}
		_, prim, ok := g.MSTPrim(nil)
		if !ok {
			return false
		}
		// Kruskal.
		idx := make([]int, g.NumEdges())
		for i := range idx {
			idx[i] = i
		}
		for i := 1; i < len(idx); i++ {
			for j := i; j > 0 && g.Edges[idx[j]].Cost < g.Edges[idx[j-1]].Cost; j-- {
				idx[j], idx[j-1] = idx[j-1], idx[j]
			}
		}
		uf := NewUnionFind(n)
		var kruskal float64
		for _, e := range idx {
			if uf.Union(g.Edges[e].U, g.Edges[e].V) {
				kruskal += g.Edges[e].Cost
			}
		}
		return math.Abs(prim-kruskal) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestUnionFind(t *testing.T) {
	u := NewUnionFind(5)
	if !u.Union(0, 1) || !u.Union(2, 3) {
		t.Fatal("fresh unions should succeed")
	}
	if u.Union(1, 0) {
		t.Fatal("repeated union should fail")
	}
	if u.Find(0) != u.Find(1) || u.Find(0) == u.Find(2) {
		t.Fatal("find wrong")
	}
	u.Union(1, 3)
	if u.Find(0) != u.Find(2) {
		t.Fatal("transitive union wrong")
	}
}

func TestConnectedComponent(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(3, 4, 1)
	comp := g.ConnectedComponent(0)
	if !comp[0] || !comp[1] || !comp[2] || comp[3] || comp[4] {
		t.Fatalf("component wrong: %v", comp)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New(3)
	e := g.AddEdge(0, 1, 1)
	c := g.Clone()
	c.DeleteEdge(e)
	if !g.EdgeAlive(e) {
		t.Fatal("clone deletion affected original")
	}
	c.AddVertex()
	if g.NumVertices() != 3 {
		t.Fatal("clone AddVertex affected original")
	}
}

// Property: Dijkstra distances match Floyd–Warshall on random graphs.
func TestDijkstraMatchesFloydWarshall(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		g := New(n)
		for v := 1; v < n; v++ {
			g.AddEdge(rng.Intn(v), v, float64(1+rng.Intn(9)))
		}
		for k := 0; k < n; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v, float64(1+rng.Intn(9)))
			}
		}
		// Floyd–Warshall.
		d := make([][]float64, n)
		for i := range d {
			d[i] = make([]float64, n)
			for j := range d[i] {
				if i != j {
					d[i][j] = math.Inf(1)
				}
			}
		}
		for e := 0; e < g.NumEdges(); e++ {
			ed := g.Edges[e]
			if ed.Cost < d[ed.U][ed.V] {
				d[ed.U][ed.V] = ed.Cost
				d[ed.V][ed.U] = ed.Cost
			}
		}
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if d[i][k]+d[k][j] < d[i][j] {
						d[i][j] = d[i][k] + d[k][j]
					}
				}
			}
		}
		for s := 0; s < n; s++ {
			dist, _ := g.Dijkstra([]int{s}, nil)
			for v := 0; v < n; v++ {
				if math.Abs(dist[v]-d[s][v]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
