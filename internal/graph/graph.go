// Package graph provides the undirected-graph substrate for the Steiner
// tree solver: mutable adjacency structures supporting the edge/vertex
// deletions that reduction techniques perform, plus Dijkstra shortest
// paths, minimum spanning trees and union–find.
package graph

import "fmt"

// Edge is one undirected edge.
type Edge struct {
	U, V int
	Cost float64
}

// Graph is an undirected multigraph with lazy deletion: edges and
// vertices carry alive flags so that reduction techniques can delete in
// O(1) and iterate cheaply. Adjacency lists keep indices of incident
// edges (including dead ones, skipped during iteration).
type Graph struct {
	Edges    []Edge
	edgeDead []bool
	vertDead []bool
	adj      [][]int
	nAlive   int // alive vertices
	mAlive   int // alive edges
}

// New returns a graph with n isolated vertices.
func New(n int) *Graph {
	return &Graph{
		vertDead: make([]bool, n),
		adj:      make([][]int, n),
		nAlive:   n,
	}
}

// NumVertices returns the total vertex count (alive and dead).
func (g *Graph) NumVertices() int { return len(g.adj) }

// NumEdges returns the total edge count (alive and dead).
func (g *Graph) NumEdges() int { return len(g.Edges) }

// AliveVertices returns the number of alive vertices.
func (g *Graph) AliveVertices() int { return g.nAlive }

// AliveEdges returns the number of alive edges.
func (g *Graph) AliveEdges() int { return g.mAlive }

// AddVertex appends a new vertex and returns its index.
func (g *Graph) AddVertex() int {
	g.adj = append(g.adj, nil)
	g.vertDead = append(g.vertDead, false)
	g.nAlive++
	return len(g.adj) - 1
}

// AddEdge inserts an undirected edge and returns its index.
func (g *Graph) AddEdge(u, v int, cost float64) int {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at %d", u))
	}
	e := len(g.Edges)
	g.Edges = append(g.Edges, Edge{U: u, V: v, Cost: cost})
	g.edgeDead = append(g.edgeDead, false)
	g.adj[u] = append(g.adj[u], e)
	g.adj[v] = append(g.adj[v], e)
	g.mAlive++
	return e
}

// EdgeAlive reports whether edge e is alive.
func (g *Graph) EdgeAlive(e int) bool { return !g.edgeDead[e] }

// VertexAlive reports whether vertex v is alive.
func (g *Graph) VertexAlive(v int) bool { return !g.vertDead[v] }

// DeleteEdge marks edge e dead.
func (g *Graph) DeleteEdge(e int) {
	if !g.edgeDead[e] {
		g.edgeDead[e] = true
		g.mAlive--
	}
}

// DeleteVertex marks vertex v and all incident edges dead.
func (g *Graph) DeleteVertex(v int) {
	if g.vertDead[v] {
		return
	}
	g.vertDead[v] = true
	g.nAlive--
	for _, e := range g.adj[v] {
		g.DeleteEdge(e)
	}
}

// Adj calls fn for every alive edge incident to v, passing the edge index
// and the opposite endpoint. Iteration stops if fn returns false.
func (g *Graph) Adj(v int, fn func(e, w int) bool) {
	for _, e := range g.adj[v] {
		if g.edgeDead[e] {
			continue
		}
		ed := g.Edges[e]
		w := ed.U
		if w == v {
			w = ed.V
		}
		if !fn(e, w) {
			return
		}
	}
}

// Degree returns the alive degree of v.
func (g *Graph) Degree(v int) int {
	d := 0
	g.Adj(v, func(e, w int) bool { d++; return true })
	return d
}

// Other returns the endpoint of edge e opposite to v.
func (g *Graph) Other(e, v int) int {
	ed := g.Edges[e]
	if ed.U == v {
		return ed.V
	}
	return ed.U
}

// Cost returns the cost of edge e.
func (g *Graph) Cost(e int) float64 { return g.Edges[e].Cost }

// SetCost updates the cost of edge e.
func (g *Graph) SetCost(e int, c float64) { g.Edges[e].Cost = c }

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		Edges:    append([]Edge(nil), g.Edges...),
		edgeDead: append([]bool(nil), g.edgeDead...),
		vertDead: append([]bool(nil), g.vertDead...),
		adj:      make([][]int, len(g.adj)),
		nAlive:   g.nAlive,
		mAlive:   g.mAlive,
	}
	for v, a := range g.adj {
		c.adj[v] = append([]int(nil), a...)
	}
	return c
}

// ConnectedComponent returns the set of vertices reachable from start in
// the alive subgraph, as a boolean mask.
func (g *Graph) ConnectedComponent(start int) []bool {
	seen := make([]bool, g.NumVertices())
	if g.vertDead[start] {
		return seen
	}
	stack := []int{start}
	seen[start] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		g.Adj(v, func(e, w int) bool {
			if !seen[w] && !g.vertDead[w] {
				seen[w] = true
				stack = append(stack, w)
			}
			return true
		})
	}
	return seen
}
