package graph

import (
	"container/heap"
	"math"
)

// distItem is a priority-queue entry for Dijkstra.
type distItem struct {
	v    int
	dist float64
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Dijkstra computes shortest-path distances from the source set in the
// alive subgraph, optionally with per-edge cost overrides (nil uses the
// stored costs). It returns dist (math.Inf for unreachable) and predEdge
// (the edge used to reach each vertex, −1 at sources/unreached).
func (g *Graph) Dijkstra(sources []int, costs []float64) (dist []float64, predEdge []int) {
	n := g.NumVertices()
	dist = make([]float64, n)
	predEdge = make([]int, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		predEdge[i] = -1
	}
	h := &distHeap{}
	for _, s := range sources {
		if g.vertDead[s] {
			continue
		}
		dist[s] = 0
		heap.Push(h, distItem{s, 0})
	}
	for h.Len() > 0 {
		it := heap.Pop(h).(distItem)
		if it.dist > dist[it.v] {
			continue
		}
		g.Adj(it.v, func(e, w int) bool {
			if g.vertDead[w] {
				return true
			}
			c := g.Edges[e].Cost
			if costs != nil {
				c = costs[e]
			}
			if nd := it.dist + c; nd < dist[w]-1e-12 {
				dist[w] = nd
				predEdge[w] = e
				heap.Push(h, distItem{w, nd})
			}
			return true
		})
	}
	return dist, predEdge
}

// MSTPrim computes a minimum spanning tree of the alive subgraph induced
// by the vertex mask (nil means all alive vertices), returning the chosen
// edge indices and the total cost. If the induced subgraph is
// disconnected it spans only the component of the first masked vertex and
// reports ok=false.
func (g *Graph) MSTPrim(mask []bool) (edges []int, total float64, ok bool) {
	n := g.NumVertices()
	in := func(v int) bool {
		if g.vertDead[v] {
			return false
		}
		return mask == nil || mask[v]
	}
	start := -1
	count := 0
	for v := 0; v < n; v++ {
		if in(v) {
			count++
			if start < 0 {
				start = v
			}
		}
	}
	if start < 0 {
		return nil, 0, true
	}
	inTree := make([]bool, n)
	bestEdge := make([]int, n)
	bestCost := make([]float64, n)
	for i := range bestCost {
		bestCost[i] = math.Inf(1)
		bestEdge[i] = -1
	}
	h := &distHeap{}
	bestCost[start] = 0
	heap.Push(h, distItem{start, 0})
	taken := 0
	for h.Len() > 0 {
		it := heap.Pop(h).(distItem)
		v := it.v
		if inTree[v] || it.dist > bestCost[v] {
			continue
		}
		inTree[v] = true
		taken++
		if bestEdge[v] >= 0 {
			edges = append(edges, bestEdge[v])
			total += g.Edges[bestEdge[v]].Cost
		}
		g.Adj(v, func(e, w int) bool {
			if !in(w) || inTree[w] {
				return true
			}
			if c := g.Edges[e].Cost; c < bestCost[w]-1e-12 {
				bestCost[w] = c
				bestEdge[w] = e
				heap.Push(h, distItem{w, c})
			}
			return true
		})
	}
	return edges, total, taken == count
}

// UnionFind is a standard disjoint-set structure with path compression
// and union by rank.
type UnionFind struct {
	parent []int
	rank   []int
}

// NewUnionFind returns a union–find over n elements.
func NewUnionFind(n int) *UnionFind {
	u := &UnionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range u.parent {
		u.parent[i] = i
	}
	return u
}

// Find returns the representative of x.
func (u *UnionFind) Find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

// Union merges the sets of a and b; returns false if already joined.
func (u *UnionFind) Union(a, b int) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	return true
}
