package maxflow

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSimplePath(t *testing.T) {
	nw := New(3)
	nw.AddArc(0, 1, 5)
	nw.AddArc(1, 2, 3)
	if f := nw.MaxFlow(0, 2); f != 3 {
		t.Fatalf("flow = %v, want 3", f)
	}
}

func TestParallelPaths(t *testing.T) {
	nw := New(4)
	nw.AddArc(0, 1, 2)
	nw.AddArc(1, 3, 2)
	nw.AddArc(0, 2, 3)
	nw.AddArc(2, 3, 1)
	if f := nw.MaxFlow(0, 3); f != 3 {
		t.Fatalf("flow = %v, want 3", f)
	}
}

func TestClassicNetwork(t *testing.T) {
	// CLRS figure: max flow 23.
	nw := New(6)
	nw.AddArc(0, 1, 16)
	nw.AddArc(0, 2, 13)
	nw.AddArc(1, 2, 10)
	nw.AddArc(2, 1, 4)
	nw.AddArc(1, 3, 12)
	nw.AddArc(3, 2, 9)
	nw.AddArc(2, 4, 14)
	nw.AddArc(4, 3, 7)
	nw.AddArc(3, 5, 20)
	nw.AddArc(4, 5, 4)
	if f := nw.MaxFlow(0, 5); f != 23 {
		t.Fatalf("flow = %v, want 23", f)
	}
}

func TestDisconnected(t *testing.T) {
	nw := New(4)
	nw.AddArc(0, 1, 5)
	if f := nw.MaxFlow(0, 3); f != 0 {
		t.Fatalf("flow = %v, want 0", f)
	}
}

func TestMinCutMatchesFlow(t *testing.T) {
	nw := New(4)
	a := nw.AddArc(0, 1, 2)
	b := nw.AddArc(0, 2, 2)
	nw.AddArc(1, 3, 1)
	nw.AddArc(2, 3, 4)
	f := nw.MaxFlow(0, 3)
	if f != 3 {
		t.Fatalf("flow = %v, want 3", f)
	}
	cut := nw.MinCutSource(0)
	if !cut[0] || cut[3] {
		t.Fatal("cut must separate s from t")
	}
	_ = a
	_ = b
}

// buildRandom constructs a random network; returns it and a parallel copy
// of the arc definitions for brute-force checks.
type arcDef struct {
	u, v int
	c    float64
}

func buildRandom(rng *rand.Rand, n int, arcs []arcDef) *Network {
	nw := New(n)
	for _, a := range arcs {
		nw.AddArc(a.u, a.v, a.c)
	}
	return nw
}

// Property: max-flow value equals the capacity of the min cut found, and
// flow conservation holds at internal vertices.
func TestMaxFlowMinCutProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		var arcs []arcDef
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			arcs = append(arcs, arcDef{u, v, float64(1 + rng.Intn(9))})
		}
		nw := buildRandom(rng, n, arcs)
		s, tt := 0, n-1
		flow := nw.MaxFlow(s, tt)
		cut := nw.MinCutSource(s)
		if cut[tt] {
			return false
		}
		// Min-cut capacity: arcs from cut side to non-cut side.
		var cutCap float64
		for _, a := range arcs {
			if cut[a.u] && !cut[a.v] {
				cutCap += a.c
			}
		}
		if math.Abs(cutCap-flow) > 1e-9 {
			return false
		}
		// Conservation: net flow at internal vertices is zero.
		net := make([]float64, n)
		nw2 := buildRandom(rng, n, arcs)
		ids := make([]int, len(arcs))
		for i := range arcs {
			ids[i] = 2 * i
		}
		nw2.MaxFlow(s, tt)
		for i, a := range arcs {
			fl := nw2.Flow(ids[i])
			if fl < -1e-9 || fl > a.c+1e-9 {
				return false
			}
			net[a.u] -= fl
			net[a.v] += fl
		}
		for v := 0; v < n; v++ {
			if v == s || v == tt {
				continue
			}
			if math.Abs(net[v]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFractionalCapacities(t *testing.T) {
	nw := New(3)
	nw.AddArc(0, 1, 0.5)
	nw.AddArc(1, 2, 0.25)
	if f := nw.MaxFlow(0, 2); math.Abs(f-0.25) > 1e-12 {
		t.Fatalf("flow = %v, want 0.25", f)
	}
}
