// Package maxflow implements Dinic's maximum-flow algorithm on directed
// graphs with real capacities. It is the separation engine of the Steiner
// branch-and-cut: violated directed Steiner cuts are minimum cuts in the
// support graph of the current LP solution.
package maxflow

import "math"

// arc is one directed arc plus its residual twin (stored adjacently).
type arc struct {
	to  int
	cap float64
}

// Network is a flow network under construction.
type Network struct {
	n    int
	arcs []arc   // arcs[2k] forward, arcs[2k+1] backward
	head [][]int // arc indices per vertex

	level []int
	iter  []int
}

// New returns a network with n vertices.
func New(n int) *Network {
	return &Network{n: n, head: make([][]int, n)}
}

// AddArc inserts a directed arc u→v with the given capacity and returns
// its index (use it with Flow to query the routed flow).
func (nw *Network) AddArc(u, v int, capacity float64) int {
	id := len(nw.arcs)
	nw.arcs = append(nw.arcs, arc{to: v, cap: capacity}, arc{to: u, cap: 0})
	nw.head[u] = append(nw.head[u], id)
	nw.head[v] = append(nw.head[v], id+1)
	return id
}

// Flow returns the flow currently routed on arc id (after MaxFlow).
func (nw *Network) Flow(id int) float64 { return nw.arcs[id^1].cap }

// Capacity returns the remaining capacity of arc id.
func (nw *Network) Capacity(id int) float64 { return nw.arcs[id].cap }

const eps = 1e-12

func (nw *Network) bfs(s, t int) bool {
	nw.level = make([]int, nw.n)
	for i := range nw.level {
		nw.level[i] = -1
	}
	queue := []int{s}
	nw.level[s] = 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, id := range nw.head[v] {
			a := nw.arcs[id]
			if a.cap > eps && nw.level[a.to] < 0 {
				nw.level[a.to] = nw.level[v] + 1
				queue = append(queue, a.to)
			}
		}
	}
	return nw.level[t] >= 0
}

func (nw *Network) dfs(v, t int, f float64) float64 {
	if v == t {
		return f
	}
	for ; nw.iter[v] < len(nw.head[v]); nw.iter[v]++ {
		id := nw.head[v][nw.iter[v]]
		a := &nw.arcs[id]
		if a.cap <= eps || nw.level[a.to] != nw.level[v]+1 {
			continue
		}
		d := nw.dfs(a.to, t, math.Min(f, a.cap))
		if d > eps {
			a.cap -= d
			nw.arcs[id^1].cap += d
			return d
		}
	}
	return 0
}

// MaxFlow computes the maximum s–t flow.
func (nw *Network) MaxFlow(s, t int) float64 {
	var flow float64
	for nw.bfs(s, t) {
		nw.iter = make([]int, nw.n)
		for {
			f := nw.dfs(s, t, math.Inf(1))
			if f <= eps {
				break
			}
			flow += f
		}
	}
	return flow
}

// MinCutSource returns the source side of a minimum cut after MaxFlow:
// the set of vertices reachable from s in the residual network.
func (nw *Network) MinCutSource(s int) []bool {
	seen := make([]bool, nw.n)
	stack := []int{s}
	seen[s] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, id := range nw.head[v] {
			a := nw.arcs[id]
			if a.cap > eps && !seen[a.to] {
				seen[a.to] = true
				stack = append(stack, a.to)
			}
		}
	}
	return seen
}
