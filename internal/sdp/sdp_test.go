package sdp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

func sym(n int, vals ...float64) *linalg.Sym {
	return linalg.SymFromDense(n, vals)
}

func TestScalarSDP(t *testing.T) {
	// max y s.t. 1 − y ≥ 0 (1×1 block), y ∈ [0, 10] → 1.
	p := &Problem{
		M:      1,
		B:      []float64{1},
		Lo:     []float64{0},
		Up:     []float64{10},
		Blocks: []*Block{{N: 1, C: sym(1, 1), A: []*linalg.Sym{sym(1, 1)}}},
	}
	r := Solve(p, Options{})
	if r.Status != Solved {
		t.Fatalf("status %v", r.Status)
	}
	if math.Abs(r.Obj-1) > 1e-3 {
		t.Fatalf("obj = %v, want 1", r.Obj)
	}
	if r.UpperBound < 1-1e-9 {
		t.Fatalf("upper bound %v below optimum", r.UpperBound)
	}
	if r.UpperBound > 1.05 {
		t.Fatalf("upper bound %v too loose", r.UpperBound)
	}
}

func TestOffDiagonalSDP(t *testing.T) {
	// max y s.t. [[1,y],[y,1]] ⪰ 0 → |y| ≤ 1 → 1.
	p := &Problem{
		M:  1,
		B:  []float64{1},
		Lo: []float64{-5},
		Up: []float64{5},
		Blocks: []*Block{{
			N: 2,
			C: sym(2, 1, 0, 0, 1),
			A: []*linalg.Sym{sym(2, 0, -1, -1, 0)},
		}},
	}
	r := Solve(p, Options{})
	if r.Status != Solved || math.Abs(r.Obj-1) > 1e-2 {
		t.Fatalf("obj = %v status %v, want 1", r.Obj, r.Status)
	}
	if r.UpperBound < 1-1e-9 {
		t.Fatalf("invalid upper bound %v", r.UpperBound)
	}
}

func TestBoxBindsBeforeSDP(t *testing.T) {
	p := &Problem{
		M:      1,
		B:      []float64{1},
		Lo:     []float64{0},
		Up:     []float64{0.5},
		Blocks: []*Block{{N: 1, C: sym(1, 1), A: []*linalg.Sym{sym(1, 1)}}},
	}
	r := Solve(p, Options{})
	if r.Status != Solved || math.Abs(r.Obj-0.5) > 1e-3 {
		t.Fatalf("obj = %v, want 0.5", r.Obj)
	}
}

func TestLinearRowBinds(t *testing.T) {
	// max y1 + y2 s.t. y1 + y2 ≤ 1, loose SDP, box [0,5]².
	p := &Problem{
		M:  2,
		B:  []float64{1, 1},
		Lo: []float64{0, 0},
		Up: []float64{5, 5},
		Blocks: []*Block{{
			N: 1, C: sym(1, 100),
			A: []*linalg.Sym{sym(1, 1), sym(1, 1)},
		}},
		Rows: []Row{{Coef: []float64{1, 1}, RHS: 1}},
	}
	r := Solve(p, Options{})
	if r.Status != Solved || math.Abs(r.Obj-1) > 1e-2 {
		t.Fatalf("obj = %v, want 1", r.Obj)
	}
}

func TestInfeasibleSDP(t *testing.T) {
	// Z = −2 − y with y ∈ [0,1]: never PSD.
	p := &Problem{
		M:      1,
		B:      []float64{1},
		Lo:     []float64{0},
		Up:     []float64{1},
		Blocks: []*Block{{N: 1, C: sym(1, -2), A: []*linalg.Sym{sym(1, 1)}}},
	}
	r := Solve(p, Options{})
	if r.Status != Infeasible {
		t.Fatalf("status = %v penalty = %v, want infeasible", r.Status, r.Penalty)
	}
}

func TestTwoBlocks(t *testing.T) {
	// max y1+2y2, blocks (2−y1 ⪰ 0) and (3−y2 ⪰ 0) → 2 + 6 = 8.
	p := &Problem{
		M:  2,
		B:  []float64{1, 2},
		Lo: []float64{0, 0},
		Up: []float64{10, 10},
		Blocks: []*Block{
			{N: 1, C: sym(1, 2), A: []*linalg.Sym{sym(1, 1), nil}},
			{N: 1, C: sym(1, 3), A: []*linalg.Sym{nil, sym(1, 1)}},
		},
	}
	r := Solve(p, Options{})
	if r.Status != Solved || math.Abs(r.Obj-8) > 2e-2 {
		t.Fatalf("obj = %v, want 8", r.Obj)
	}
}

// gridOptimum brute-forces max bᵀy over a fine grid with eigenvalue
// feasibility checks (m ≤ 2 only).
func gridOptimum(p *Problem, steps int) float64 {
	best := math.Inf(-1)
	feasible := func(y []float64) bool {
		for _, r := range p.Rows {
			if dotDense(r.Coef, y) > r.RHS+1e-12 {
				return false
			}
		}
		for _, blk := range p.Blocks {
			lam, _ := linalg.MinEigen(blk.Z(y))
			if lam < -1e-9 {
				return false
			}
		}
		return true
	}
	switch p.M {
	case 1:
		for i := 0; i <= steps; i++ {
			y := []float64{p.Lo[0] + (p.Up[0]-p.Lo[0])*float64(i)/float64(steps)}
			if feasible(y) {
				if v := p.B[0] * y[0]; v > best {
					best = v
				}
			}
		}
	case 2:
		for i := 0; i <= steps; i++ {
			for j := 0; j <= steps; j++ {
				y := []float64{
					p.Lo[0] + (p.Up[0]-p.Lo[0])*float64(i)/float64(steps),
					p.Lo[1] + (p.Up[1]-p.Lo[1])*float64(j)/float64(steps),
				}
				if feasible(y) {
					if v := p.B[0]*y[0] + p.B[1]*y[1]; v > best {
						best = v
					}
				}
			}
		}
	}
	return best
}

// Property: on random 2-variable SDPs, the solver's objective is within
// tolerance of the grid optimum, below the upper bound, and feasible.
func TestRandomSDPsAgainstGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	solved := 0
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(3)
		mk := func() *linalg.Sym {
			s := linalg.NewSym(n)
			for i := 0; i < n; i++ {
				for j := i; j < n; j++ {
					s.Set(i, j, rng.NormFloat64())
				}
			}
			return s
		}
		// C = M Mᵀ + I ensures y=0 strictly feasible.
		c := linalg.NewSym(n)
		for i := 0; i < n; i++ {
			c.Set(i, i, 1+rng.Float64())
		}
		p := &Problem{
			M:  2,
			B:  []float64{1 + rng.Float64(), rng.NormFloat64()},
			Lo: []float64{-2, -2},
			Up: []float64{2, 2},
			Blocks: []*Block{{
				N: n, C: c,
				A: []*linalg.Sym{mk(), mk()},
			}},
		}
		want := gridOptimum(p, 120)
		if math.IsInf(want, -1) {
			continue
		}
		r := Solve(p, Options{})
		if r.Status != Solved {
			continue
		}
		solved++
		// Feasibility of the returned point.
		for _, blk := range p.Blocks {
			lam, _ := linalg.MinEigen(blk.Z(r.Y))
			if lam < -1e-5 {
				t.Fatalf("trial %d: returned point infeasible (λmin=%v)", trial, lam)
			}
		}
		if r.Obj > want+0.1 {
			// (grid resolution limits how tightly this can be checked)
			t.Fatalf("trial %d: obj %v exceeds grid optimum %v", trial, r.Obj, want)
		}
		if r.Obj < want-0.15*(1+math.Abs(want)) {
			t.Fatalf("trial %d: obj %v far below grid optimum %v", trial, r.Obj, want)
		}
		if r.UpperBound < want-2e-2*(1+math.Abs(want)) {
			t.Fatalf("trial %d: upper bound %v below optimum %v", trial, r.UpperBound, want)
		}
	}
	if solved < 15 {
		t.Fatalf("only %d/25 random SDPs solved", solved)
	}
}

func TestFixedVariablesViaBounds(t *testing.T) {
	// Branch-and-bound fixes integers by collapsing bounds; the barrier
	// must cope with a (nearly) collapsed box.
	p := &Problem{
		M:  2,
		B:  []float64{1, 1},
		Lo: []float64{1, 0},
		Up: []float64{1 + 1e-9, 3},
		Blocks: []*Block{{
			N: 1, C: sym(1, 4),
			A: []*linalg.Sym{sym(1, 1), sym(1, 1)},
		}},
	}
	r := Solve(p, Options{})
	if r.Status != Solved {
		t.Fatalf("status %v", r.Status)
	}
	// y1 ≈ 1, y2 ≤ 3 with 4 − y1 − y2 ≥ 0 → y2 = 3 → obj 4.
	if math.Abs(r.Obj-4) > 5e-2 {
		t.Fatalf("obj = %v, want 4", r.Obj)
	}
}

func TestPenaltyReportsSlaterFailure(t *testing.T) {
	// Feasible set is the single point y=1 (1−y ⪰ 0 and y−1 ⪰ 0): no
	// strict interior, so the penalty stays positive at moderate Γ but
	// the objective still approaches 1.
	p := &Problem{
		M:  1,
		B:  []float64{1},
		Lo: []float64{0},
		Up: []float64{2},
		Blocks: []*Block{
			{N: 1, C: sym(1, 1), A: []*linalg.Sym{sym(1, 1)}},
			{N: 1, C: sym(1, -1), A: []*linalg.Sym{sym(1, -1)}},
		},
	}
	r := Solve(p, Options{})
	// Either the solver converges to ≈1, or it must report an untrusted
	// (+Inf) bound — what it may never do is return a "trusted" bound
	// below the feasible value 1.
	if r.UpperBound < 1-1e-6 {
		t.Fatalf("upper bound %v cut off the feasible point", r.UpperBound)
	}
}
