// Package sdp implements an interior-point solver for semidefinite
// programs in the dual (linear matrix inequality) form used by SCIP-SDP:
//
//	sup  bᵀy
//	s.t. C_k − Σ_i A_{k,i} y_i ⪰ 0   for every block k,
//	     lo ≤ y ≤ up,   aᵀy ≤ rhs (linear rows),
//
// via a log-det barrier method with damped Newton steps. It stands in
// for the interior-point engines (Mosek) the original SCIP-SDP links
// against. The paper's penalty formulation — which SCIP-SDP uses to
// retain solvability when branching destroys the Slater condition — is
// built in: a slack multiple of the identity is added to every block and
// driven to zero by a large penalty, so the barrier always has a
// strictly feasible starting point.
package sdp

import (
	"math"

	"repro/internal/linalg"
	"repro/internal/num"
)

// Block is one linear matrix inequality C − Σ A_i y_i ⪰ 0.
type Block struct {
	N int
	C *linalg.Sym
	// A[i] is variable i's coefficient matrix (nil = zero matrix).
	A []*linalg.Sym
}

// Z evaluates C − Σ A_i y_i.
func (b *Block) Z(y []float64) *linalg.Sym {
	z := b.C.Clone()
	for i, a := range b.A {
		if a != nil && num.Nonzero(y[i]) {
			z.AddScaled(-y[i], a)
		}
	}
	return z
}

// Row is a linear inequality aᵀy ≤ rhs.
type Row struct {
	Coef []float64
	RHS  float64
}

// Problem is a dual-form SDP.
type Problem struct {
	M      int // number of variables
	B      []float64
	Lo, Up []float64
	Blocks []*Block
	Rows   []Row
}

// Status of a solve.
type Status int8

// Solve outcomes.
const (
	Solved Status = iota
	Infeasible
	NumericTrouble
)

// Result of a solve.
type Result struct {
	Status Status
	Y      []float64
	Obj    float64 // bᵀy at the returned (feasible) point
	// UpperBound is Obj plus the estimated duality gap of the final
	// barrier iterate — a bound on the SDP optimum used for pruning.
	UpperBound float64
	// Penalty is the final identity-slack value; ≈0 when the original
	// problem was solved, larger when only the penalty formulation was
	// feasible.
	Penalty float64
	Iters   int
}

// Options tune the solver.
type Options struct {
	Gamma   float64 // penalty weight (default 1e5 · scale)
	MuInit  float64 // initial barrier weight (default from scale)
	MuFinal float64 // final barrier weight (default 1e-7 · scale)
	MaxIter int     // Newton iteration budget (default 2500)

	// phase1 marks an internal feasibility-certification run (objective
	// zero); it must not recurse into another phase-1 run.
	phase1 bool
	// startY warm-starts the clean (no-slack) barrier from a known
	// strictly feasible point (used by the phase-1 rescue).
	startY []float64
}

// Solve runs the barrier method on p. Variables whose box has
// (numerically) collapsed — the way branch and bound fixes integers —
// are eliminated into the constant terms first, which keeps the barrier
// well conditioned.
func Solve(p *Problem, opt Options) *Result {
	fixed := make([]bool, p.M)
	fixVal := make([]float64, p.M)
	anyFixed := false
	for i := 0; i < p.M; i++ {
		if !math.IsInf(p.Lo[i], -1) && p.Up[i]-p.Lo[i] < 1e-7 {
			fixed[i] = true
			fixVal[i] = 0.5 * (p.Lo[i] + p.Up[i])
			anyFixed = true
		}
	}
	if !anyFixed {
		if p.M == 0 {
			return evalFixed(p)
		}
		return solveFull(p, opt)
	}
	// Build the reduced problem over the free variables.
	var keep []int
	for i := 0; i < p.M; i++ {
		if !fixed[i] {
			keep = append(keep, i)
		}
	}
	red := &Problem{M: len(keep)}
	var objOffset float64
	for _, i := range keep {
		red.B = append(red.B, p.B[i])
		red.Lo = append(red.Lo, p.Lo[i])
		red.Up = append(red.Up, p.Up[i])
	}
	for i := 0; i < p.M; i++ {
		if fixed[i] {
			objOffset += p.B[i] * fixVal[i]
		}
	}
	for _, blk := range p.Blocks {
		c := blk.C.Clone()
		for i := 0; i < p.M; i++ {
			if fixed[i] && blk.A[i] != nil && num.Nonzero(fixVal[i]) {
				c.AddScaled(-fixVal[i], blk.A[i])
			}
		}
		a := make([]*linalg.Sym, len(keep))
		for k, i := range keep {
			a[k] = blk.A[i]
		}
		red.Blocks = append(red.Blocks, &Block{N: blk.N, C: c, A: a})
	}
	for _, r := range p.Rows {
		rhs := r.RHS
		coef := make([]float64, len(keep))
		for k, i := range keep {
			coef[k] = r.Coef[i]
		}
		for i := 0; i < p.M; i++ {
			if fixed[i] {
				rhs -= r.Coef[i] * fixVal[i]
			}
		}
		// A row with no free support is either trivially true or an
		// infeasibility certificate.
		allZero := true
		for _, v := range coef {
			if num.Nonzero(v) {
				allZero = false
			}
		}
		if allZero {
			if rhs < -1e-9 {
				return &Result{Status: Infeasible}
			}
			continue
		}
		red.Rows = append(red.Rows, Row{Coef: coef, RHS: rhs})
	}
	var r *Result
	if red.M == 0 {
		r = evalFixed(red)
	} else {
		r = solveFull(red, opt)
	}
	// Expand back.
	y := make([]float64, p.M)
	for k, i := range keep {
		if k < len(r.Y) {
			y[i] = r.Y[k]
		}
	}
	for i := 0; i < p.M; i++ {
		if fixed[i] {
			y[i] = fixVal[i]
		}
	}
	r.Y = y
	r.Obj += objOffset
	if !math.IsInf(r.UpperBound, 1) {
		r.UpperBound += objOffset
	}
	return r
}

// solveFull runs the barrier method without preprocessing.
func solveFull(p *Problem, opt Options) *Result {
	m := p.M
	scale := 1.0
	for _, bi := range p.B {
		if a := math.Abs(bi); a > scale {
			scale = a
		}
	}
	if opt.Gamma <= 0 {
		opt.Gamma = 10 * scale
	}
	if opt.MuInit <= 0 {
		opt.MuInit = scale
	}
	if opt.MuFinal <= 0 {
		opt.MuFinal = 1e-7 * scale
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 6000
	}

	// Extended variable vector: [y; s] with s the identity slack.
	y := make([]float64, m+1)
	for i := 0; i < m; i++ {
		switch {
		case !math.IsInf(p.Lo[i], -1) && !math.IsInf(p.Up[i], 1):
			y[i] = 0.5 * (p.Lo[i] + p.Up[i])
		case !math.IsInf(p.Lo[i], -1):
			y[i] = p.Lo[i] + 1
		case !math.IsInf(p.Up[i], 1):
			y[i] = p.Up[i] - 1
		}
	}
	// Initial slack: enough to make every block strictly positive and
	// every linear row strictly slack (the slack also relaxes rows:
	// aᵀy − s ≤ rhs).
	s0 := 1.0
	for _, blk := range p.Blocks {
		lam, _ := linalg.MinEigen(blk.Z(y))
		if need := -lam + 1; need > s0 {
			s0 = need
		}
	}
	for _, r := range p.Rows {
		if need := dotDense(r.Coef, y[:m]) - r.RHS + 1; need > s0 {
			s0 = need
		}
	}
	y[m] = s0
	warmStarted := false
	if opt.startY != nil && strictlyFeasible(p, opt.startY, false) {
		copy(y[:m], opt.startY)
		y[m] = 0
		warmStarted = true
	}
	res := &Result{Status: NumericTrouble, Y: append([]float64(nil), y[:m]...)}

	mu := opt.MuInit
	iters := 0
	converged := true
	useS := !warmStarted
	// newtonStep performs one damped Newton iteration at the given mu,
	// with an Armijo condition on the barrier value so the iterate tracks
	// the central path. Returns the Newton decrement (−1 on failure).
	newtonStep := func(mu float64) float64 {
		ext := m
		if useS {
			ext = m + 1
		}
		grad, hess, ok := gradHess(p, y, mu, opt.Gamma, useS)
		if !ok {
			return -1
		}
		f0, ok := barrierValue(p, y, mu, opt.Gamma, useS)
		if !ok {
			return -1
		}
		// Newton: maximize ⇒ solve (−H) Δ = grad with −H SPD.
		ch, err := linalg.Cholesky(hess)
		if err != nil {
			for i := 0; i < ext; i++ {
				hess.A[i*ext+i] += 1e-10 * (1 + hess.MaxAbs())
			}
			ch, err = linalg.Cholesky(hess)
			if err != nil {
				return -1
			}
		}
		delta := ch.Solve(grad)
		var dec float64
		for i := range delta {
			dec += delta[i] * grad[i]
		}
		if dec < 0 {
			return -1
		}
		cand := make([]float64, m+1)
		copy(cand, y)
		for t := 1.0; t > 1e-13; t *= 0.5 {
			for i := 0; i < ext; i++ {
				cand[i] = y[i] + t*delta[i]
			}
			fv, ok := barrierValue(p, cand, mu, opt.Gamma, useS)
			if ok && fv >= f0+0.1*t*dec {
				copy(y, cand)
				return dec
			}
		}
		return -1
	}
	runLevel := func(mu float64, cap int) {
		for step := 0; step < cap; step++ {
			iters++
			if iters > opt.MaxIter {
				return
			}
			dec := newtonStep(mu)
			if dec < 0 || dec < 1e-9*mu+1e-12 {
				return
			}
		}
		if mu < 1e-3*opt.MuInit {
			converged = false
		}
	}
	// Phase P: drive the penalty slack down with the extended barrier,
	// trying after every level to drop the slack — the moment the
	// iterate is strictly feasible without it, the numerically hostile
	// penalty dimension is removed for good. Running the deep-μ levels
	// with the slack alive is never attempted: near the optimum both the
	// slack and the binding blocks vanish together and the Newton system
	// loses all precision.
	if useS {
		switchAt := math.Max(opt.MuFinal, 1e-4*opt.MuInit)
		for ; mu >= switchAt && iters <= opt.MaxIter; mu *= 0.2 {
			runLevel(mu, 400)
			if strictlyFeasible(p, y, false) {
				useS = false
				y[m] = 0
				mu *= 0.2
				break
			}
		}
	}
	if !useS {
		// Phase C: clean barrier on the original problem down to μ_final,
		// then polish so the certified bound's residual term vanishes.
		for ; mu >= opt.MuFinal && iters <= opt.MaxIter; mu *= 0.2 {
			runLevel(mu, 60)
		}
		muF := mu / 0.2
		for step := 0; step < 60 && iters <= opt.MaxIter; step++ {
			iters++
			dec := newtonStep(muF)
			if dec < 0 || dec < 1e-16*(1+scale) {
				break
			}
		}
		res.Iters = iters
		finishAt(p, res, y, muF)
		res.Penalty = 0
		res.Status = Solved
		return res
	}
	// The slack could not be dropped within phase P.
	res.Iters = iters
	finishAt(p, res, y, mu/0.2)
	res.Status = Solved
	if res.Penalty > 1e-4*(1+math.Abs(res.Obj)/math.Max(1, scale)) && !opt.phase1 {
		// The identity slack would not go to zero: either the problem is
		// infeasible, or the objective pull trapped the penalty phase
		// against the boundary. A phase-1 run (zero objective) settles
		// it: if it reaches a strictly feasible point, re-solve cleanly
		// from there; if its certified upper bound on sup 0 is negative,
		// no feasible point exists.
		q := &Problem{M: p.M, B: make([]float64, p.M), Lo: p.Lo, Up: p.Up, Blocks: p.Blocks, Rows: p.Rows}
		ph := solveFull(q, Options{Gamma: opt.Gamma, MaxIter: opt.MaxIter, phase1: true})
		switch {
		case ph.Penalty < 1e-8*(1+scale) && strictlyFeasible(p, ph.Y, false):
			o2 := opt
			o2.phase1 = true // prevent further rescues
			o2.startY = ph.Y
			r2 := solveFull(p, o2)
			r2.Iters += res.Iters + ph.Iters
			return r2
		case ph.UpperBound < -1e-7:
			res.Status = Infeasible
		default:
			if !converged {
				res.Status = NumericTrouble
			}
		}
	}
	return res
}

// finishAt fills the result from the current iterate. When the barrier
// did not converge to the central path, the duality-gap estimate is not
// a trustworthy bound and +Inf is reported instead (the branch-and-bound
// layer then branches rather than prunes — safe, just slower).
func finishAt(p *Problem, res *Result, y []float64, mu float64) {
	m := p.M
	res.Y = append([]float64(nil), y[:m]...)
	res.Penalty = y[m]
	var obj float64
	for i := 0; i < m; i++ {
		obj += p.B[i] * y[i]
	}
	res.Obj = obj
	// Certified bound from the barrier's dual multipliers: valid at any
	// iterate (convergence only affects its tightness), see bound.go.
	res.UpperBound = rigorousUpperBound(p, y[:m], y[m], mu)
}

// strictlyFeasible checks Z_k(y) + s·I ≻ 0, box interiority and row
// slack; useS=false checks the original system (s treated as 0, y has
// length m).
func strictlyFeasible(p *Problem, y []float64, useS bool) bool {
	m := p.M
	s := 0.0
	if useS {
		s = y[m]
		if s < 1e-12 {
			return false
		}
	}
	for i := 0; i < m; i++ {
		if !math.IsInf(p.Lo[i], -1) && y[i] <= p.Lo[i] {
			return false
		}
		if !math.IsInf(p.Up[i], 1) && y[i] >= p.Up[i] {
			return false
		}
	}
	for _, r := range p.Rows {
		if dotDense(r.Coef, y[:m])-s >= r.RHS {
			return false
		}
	}
	for _, blk := range p.Blocks {
		z := blk.Z(y[:m])
		for i := 0; i < blk.N; i++ {
			z.A[i*blk.N+i] += s
		}
		if _, err := linalg.Cholesky(z); err != nil {
			return false
		}
	}
	return true
}

func dotDense(a, y []float64) float64 {
	var acc float64
	for i, v := range a {
		if num.Nonzero(v) {
			acc += v * y[i]
		}
	}
	return acc
}

// gradHess evaluates the gradient of the barrier objective
// f(y,s) = bᵀy − Γs + μ[Σ logdet(Z_k+sI) + box/row/s barriers]
// and −Hessian (returned SPD for Cholesky).
func gradHess(p *Problem, y []float64, mu, gamma float64, useS bool) (grad []float64, negHess *linalg.Sym, ok bool) {
	m := p.M
	ext := m
	if useS {
		ext = m + 1
	}
	grad = make([]float64, ext)
	negHess = linalg.NewSym(ext)
	for i := 0; i < m; i++ {
		grad[i] = p.B[i]
	}
	s := 0.0
	if useS {
		// s ≥ 0 barrier and penalty.
		s = y[m]
		grad[m] = -gamma + mu/s
		negHess.A[m*ext+m] += mu / (s * s)
	}

	// Box barriers.
	for i := 0; i < m; i++ {
		if !math.IsInf(p.Lo[i], -1) {
			d := y[i] - p.Lo[i]
			grad[i] += mu / d
			negHess.A[i*ext+i] += mu / (d * d)
		}
		if !math.IsInf(p.Up[i], 1) {
			d := p.Up[i] - y[i]
			grad[i] -= mu / d
			negHess.A[i*ext+i] += mu / (d * d)
		}
	}
	// Linear row barriers: log(rhs − aᵀy + s); the gradient/Hessian thus
	// also carry s-components (coefficient −1 on s).
	for _, r := range p.Rows {
		slack := r.RHS - dotDense(r.Coef, y[:m]) + s
		if slack <= 0 {
			return nil, nil, false
		}
		coefExt := func(i int) float64 {
			if i == m {
				return -1
			}
			return r.Coef[i]
		}
		for i := 0; i < ext; i++ {
			ai := coefExt(i)
			if num.ExactZero(ai) {
				continue
			}
			grad[i] -= mu * ai / slack
			for j := 0; j < ext; j++ {
				aj := coefExt(j)
				if num.Nonzero(aj) {
					negHess.A[i*ext+j] += mu * ai * aj / (slack * slack)
				}
			}
		}
	}
	// Block barriers: d/dy_i logdet(Z+sI) = −tr(Zinv A_i); d/ds = tr(Zinv).
	for _, blk := range p.Blocks {
		z := blk.Z(y[:m])
		for i := 0; i < blk.N; i++ {
			z.A[i*blk.N+i] += s
		}
		ch, err := linalg.Cholesky(z)
		if err != nil {
			return nil, nil, false
		}
		zinv := ch.Inverse()
		// Precompute W_i = Zinv·A_i (as full product for trace forms).
		prods := make([]*linalg.Sym, m)
		for i := 0; i < m; i++ {
			if blk.A[i] == nil {
				continue
			}
			prods[i] = symProduct(zinv, blk.A[i])
		}
		for i := 0; i < m; i++ {
			if prods[i] == nil {
				continue
			}
			grad[i] -= mu * prods[i].Trace()
		}
		// Hessian entries: H_ij = −μ tr(Zinv A_i Zinv A_j); −H is PSD.
		for i := 0; i < m; i++ {
			if prods[i] == nil {
				continue
			}
			for j := i; j < m; j++ {
				if prods[j] == nil {
					continue
				}
				v := mu * traceProduct(prods[i], prods[j])
				negHess.A[i*ext+j] += v
				if i != j {
					negHess.A[j*ext+i] += v
				}
			}
			if useS {
				// Cross terms with s: the slack's coefficient matrix is
				// A_s = −I, so H_is = +μ tr(Zinv A_i Zinv) and the negated
				// Hessian entry is −μ tr(Zinv A_i Zinv).
				v := mu * traceProduct(prods[i], zinv)
				negHess.A[i*ext+m] -= v
				negHess.A[m*ext+i] -= v
			}
		}
		if useS {
			grad[m] += mu * zinv.Trace()
			// s-s entry: tr(Zinv Zinv).
			negHess.A[m*ext+m] += mu * zinv.InnerProd(zinv)
		}
	}
	return grad, negHess, true
}

// symProduct computes P = X·Y for symmetric X, Y (P generally not
// symmetric; stored densely in a Sym container for convenience).
func symProduct(x, y *linalg.Sym) *linalg.Sym {
	n := x.N
	p := linalg.NewSym(n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			xik := x.A[i*n+k]
			if num.ExactZero(xik) {
				continue
			}
			row := y.A[k*n:]
			for j := 0; j < n; j++ {
				p.A[i*n+j] += xik * row[j]
			}
		}
	}
	return p
}

// traceProduct computes tr(P·Q) for dense square P, Q.
func traceProduct(p, q *linalg.Sym) float64 {
	n := p.N
	var acc float64
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			acc += p.A[i*n+k] * q.A[k*n+i]
		}
	}
	return acc
}

// barrierValue evaluates the penalty-barrier objective
// f(y,s) = bᵀy − Γs + μ[Σ logdet(Z_k+sI) + log s + box/row logs];
// ok=false when (y,s) is not strictly feasible.
func barrierValue(p *Problem, y []float64, mu, gamma float64, useS bool) (float64, bool) {
	m := p.M
	s := 0.0
	logs := 0.0
	var f float64
	for i := 0; i < m; i++ {
		f += p.B[i] * y[i]
	}
	if useS {
		s = y[m]
		if s < 1e-300 {
			return 0, false
		}
		f -= gamma * s
		logs = math.Log(s)
	}
	for i := 0; i < m; i++ {
		if !math.IsInf(p.Lo[i], -1) {
			d := y[i] - p.Lo[i]
			if d <= 0 {
				return 0, false
			}
			logs += math.Log(d)
		}
		if !math.IsInf(p.Up[i], 1) {
			d := p.Up[i] - y[i]
			if d <= 0 {
				return 0, false
			}
			logs += math.Log(d)
		}
	}
	for _, r := range p.Rows {
		slack := r.RHS - dotDense(r.Coef, y[:m]) + s
		if slack <= 0 {
			return 0, false
		}
		logs += math.Log(slack)
	}
	for _, blk := range p.Blocks {
		z := blk.Z(y[:m])
		for i := 0; i < blk.N; i++ {
			z.A[i*blk.N+i] += s
		}
		ch, err := linalg.Cholesky(z)
		if err != nil {
			return 0, false
		}
		logs += ch.LogDet()
	}
	return f + mu*logs, true
}
