package sdp

import (
	"math"

	"repro/internal/linalg"
)

// rigorousUpperBound certifies an upper bound on sup{ bᵀy : y feasible
// for the ORIGINAL problem } from the final barrier iterate (y, s) via
// weak duality. The multipliers are the barrier's natural dual point:
//
//	X_k = μ (Z_k + sI)⁻¹ ⪰ 0            (block duals)
//	λ_r = μ / rowslack_r ≥ 0            (row duals)
//	ℓ_i = μ / (y_i − lo_i) ≥ 0          (lower-bound duals)
//	u_i = μ / (up_i − y_i) ≥ 0          (upper-bound duals)
//
// For every original-feasible point ŷ (the s = 0 slice of the penalty
// formulation) and every i define the stationarity residual
//
//	r_i = b_i − Σ_k tr(A_{k,i} X_k) − Σ_r λ_r a_{r,i} − u_i + ℓ_i .
//
// Then bᵀŷ ≤ Σ_k tr(C_k X_k) + Σ_r λ_r rhs_r + Σ_i (u_i·up_i − ℓ_i·lo_i)
//   - Σ_i |r_i|·max(|lo_i|,|up_i|),
//
// because each complementarity product is nonnegative at feasible ŷ and
// the residual term is absorbed over the (finite) box. Exactly on the
// central path every r_i vanishes; off-path iterates still yield a valid
// — just weaker — bound. If some variable with a nonzero residual has an
// infinite bound the certificate degenerates to +Inf (no pruning).
func rigorousUpperBound(p *Problem, y []float64, s, mu float64) float64 {
	m := p.M
	resid := make([]float64, m)
	copy(resid, p.B)
	var bound float64

	// Block duals.
	for _, blk := range p.Blocks {
		z := blk.Z(y)
		for i := 0; i < blk.N; i++ {
			z.A[i*blk.N+i] += s
		}
		ch, err := linalg.Cholesky(z)
		if err != nil {
			return math.Inf(1)
		}
		x := ch.Inverse()
		x.Scale(mu)
		bound += blk.C.InnerProd(x)
		for i := 0; i < m; i++ {
			if blk.A[i] != nil {
				resid[i] -= blk.A[i].InnerProd(x)
			}
		}
	}
	// Row duals (rows are relaxed by s in the penalty formulation, so
	// the iterate's slack includes +s; the multiplier remains valid for
	// the s = 0 slice with the original right-hand side).
	for _, r := range p.Rows {
		slack := r.RHS - dotDense(r.Coef, y) + s
		if slack <= 0 {
			return math.Inf(1)
		}
		lam := mu / slack
		bound += lam * r.RHS
		for i, a := range r.Coef {
			resid[i] -= lam * a
		}
	}
	// Box duals.
	for i := 0; i < m; i++ {
		if !math.IsInf(p.Lo[i], -1) {
			d := y[i] - p.Lo[i]
			if d <= 0 {
				return math.Inf(1)
			}
			l := mu / d
			bound -= l * p.Lo[i]
			resid[i] += l
		}
		if !math.IsInf(p.Up[i], 1) {
			d := p.Up[i] - y[i]
			if d <= 0 {
				return math.Inf(1)
			}
			u := mu / d
			bound += u * p.Up[i]
			resid[i] -= u
		}
	}
	// Residual absorption over the box.
	for i := 0; i < m; i++ {
		r := math.Abs(resid[i])
		if r < 1e-14 {
			continue
		}
		mi := math.Max(math.Abs(p.Lo[i]), math.Abs(p.Up[i]))
		if math.IsInf(mi, 1) {
			return math.Inf(1)
		}
		bound += r * mi
	}
	// Tiny slack for the floating-point evaluation itself.
	return bound + 1e-9*(1+math.Abs(bound))
}

// minBoxObjective returns min bᵀy over the box — the floor any feasible
// point's objective must reach. A certified upper bound below this value
// proves the original problem infeasible.
func minBoxObjective(p *Problem) float64 {
	var lo float64
	for i := 0; i < p.M; i++ {
		a, b := p.B[i]*p.Lo[i], p.B[i]*p.Up[i]
		if math.IsNaN(a) || math.IsNaN(b) { // 0 · ±Inf
			continue
		}
		lo += math.Min(a, b)
	}
	return lo
}

// evalFixed handles the fully-fixed case (no free variables after
// elimination): feasibility is decided exactly by eigenvalue checks.
func evalFixed(p *Problem) *Result {
	y := make([]float64, p.M)
	res := &Result{Status: Solved, Y: y}
	for _, r := range p.Rows {
		if -r.RHS > 1e-9 { // coefficient part is empty in the reduced problem
			res.Status = Infeasible
			return res
		}
	}
	for _, blk := range p.Blocks {
		lam, _ := linalg.MinEigen(blk.C) // Z(0) = C in the reduced problem
		if lam < -1e-8*(1+blk.C.MaxAbs()) {
			res.Status = Infeasible
			return res
		}
	}
	return res
}
