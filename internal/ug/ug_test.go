package ug

import (
	"encoding/binary"
	"math"
	"path/filepath"
	"sync/atomic"
	"testing"

	"repro/internal/ug/comm"
)

// fakeSolver is a scripted base solver used to exercise the coordinator
// protocol without the weight of the real branch-and-cut stack. The
// "problem" is: find the minimum of f(i) = ((i*2654435761)>>7) % 1000
// over i ∈ [lo, hi); a subproblem is an interval, solved by scanning
// `chunk` values per poll and splitting off the upper half as an open
// node that can be shipped to the coordinator.
type fakeFactory struct {
	lo, hi   int64
	chunk    int64
	settings int
	created  int64 // atomic: workers created
}

func f(i int64) float64 {
	return float64((uint64(i) * 2654435761 >> 7) % 1000)
}

func encodeIv(lo, hi int64) []byte {
	b := make([]byte, 16)
	binary.LittleEndian.PutUint64(b, uint64(lo))
	binary.LittleEndian.PutUint64(b[8:], uint64(hi))
	return b
}

func decodeIv(b []byte) (int64, int64) {
	return int64(binary.LittleEndian.Uint64(b)), int64(binary.LittleEndian.Uint64(b[8:]))
}

func (ff *fakeFactory) GlobalPresolve() ([]byte, *Solution, error) {
	return encodeIv(ff.lo, ff.hi), nil, nil
}
func (ff *fakeFactory) NumSettings() int { return maxInt(1, ff.settings) }
func (ff *fakeFactory) SettingsName(idx int) string {
	return string(rune('A' + idx))
}
func (ff *fakeFactory) CreateWorker(settingsIdx int) WorkerSolver {
	atomic.AddInt64(&ff.created, 1)
	return &fakeWorker{ff: ff}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

type fakeWorker struct {
	ff *fakeFactory
}

func (fw *fakeWorker) Solve(sub *Subproblem, sess *Session) Outcome {
	lo, hi := decodeIv(sub.Payload)
	best := math.Inf(1)
	if inc := sess.InitialIncumbent(); inc != nil {
		best = inc.Obj
	}
	// The open "tree": intervals not yet scanned.
	open := [][2]int64{{lo, hi}}
	var nodes int64
	for len(open) > 0 {
		cur := open[len(open)-1]
		open = open[:len(open)-1]
		// Split: keep the lower chunk, push the rest.
		mid := cur[0] + fw.ff.chunk
		if mid < cur[1] {
			open = append(open, [2]int64{mid, cur[1]})
		} else {
			mid = cur[1]
		}
		for i := cur[0]; i < mid; i++ {
			if v := f(i); v < best {
				best = v
				sess.FoundSolution(Solution{Obj: v, Payload: encodeIv(i, i+1)})
			}
		}
		nodes++
		cmd := sess.Poll(StatusReport{Bound: 0, Open: len(open), Nodes: nodes})
		for _, sol := range cmd.Solutions {
			if sol.Obj < best {
				best = sol.Obj
			}
		}
		if cmd.ExtractAll {
			for _, iv := range open {
				sess.ShipNode(Subproblem{Bound: 0, Payload: encodeIv(iv[0], iv[1])})
			}
			return Outcome{Completed: false, Nodes: nodes, OpenLeft: 0}
		}
		if cmd.WantNode && len(open) > 0 {
			iv := open[0]
			open = open[1:]
			sess.ShipNode(Subproblem{Bound: 0, Payload: encodeIv(iv[0], iv[1])})
		}
		if cmd.Stop {
			return Outcome{Completed: false, Nodes: nodes, OpenLeft: len(open)}
		}
	}
	return Outcome{Completed: true, Nodes: nodes}
}

// trueMin scans the whole range.
func trueMin(lo, hi int64) float64 {
	best := math.Inf(1)
	for i := lo; i < hi; i++ {
		if v := f(i); v < best {
			best = v
		}
	}
	return best
}

func TestCoordinatorFindsMinimum(t *testing.T) {
	ff := &fakeFactory{lo: 0, hi: 40000, chunk: 500}
	want := trueMin(0, 40000)
	for _, workers := range []int{1, 2, 5} {
		res, err := Run(ff, Config{Workers: workers, StatusInterval: 1e-4, ShipInterval: 1e-4})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Optimal {
			t.Fatalf("workers %d: %+v", workers, res)
		}
		if res.Obj != want {
			t.Fatalf("workers %d: obj %v want %v", workers, res.Obj, want)
		}
	}
}

func TestCoordinatorGobComm(t *testing.T) {
	ff := &fakeFactory{lo: 0, hi: 20000, chunk: 400}
	want := trueMin(0, 20000)
	res, err := Run(ff, Config{
		Workers:        3,
		Comm:           comm.NewGobComm(4),
		StatusInterval: 1e-4,
		ShipInterval:   1e-4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal || res.Obj != want {
		t.Fatalf("gob run: %+v want %v", res, want)
	}
}

func TestRacingDeclaresWinner(t *testing.T) {
	ff := &fakeFactory{lo: 0, hi: 3_000_000, chunk: 50, settings: 4}
	res, err := Run(ff, Config{
		Workers:    4,
		RampUp:     RampUpRacing,
		RacingTime: 0.05,
		TimeLimit:  0.6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.RacingWinner < 0 {
		t.Fatalf("no winner: %+v", res.Stats)
	}
	if res.Stats.RacingWinnerName == "" {
		t.Fatal("winner unnamed")
	}
}

func TestTimeLimitCheckpointAndRestart(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "c.gob")
	ff := &fakeFactory{lo: 0, hi: 3_000_000, chunk: 200}
	res1, err := Run(ff, Config{
		Workers:         2,
		TimeLimit:       0.15,
		CheckpointPath:  ckpt,
		CheckpointEvery: 0.02,
		StatusInterval:  1e-4,
		ShipInterval:    1e-4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res1.Optimal {
		t.Skip("machine too fast; instance finished before the limit")
	}
	ck, err := LoadCheckpointInfo(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(ck.Pool) == 0 {
		t.Fatal("checkpoint holds no primitive nodes")
	}
	// Primitive nodes must be far fewer than the open frontier.
	if res1.Stats.OpenAtEnd > 0 && len(ck.Pool) > res1.Stats.OpenAtEnd {
		t.Fatalf("primitive nodes %d exceed open frontier %d", len(ck.Pool), res1.Stats.OpenAtEnd)
	}
	// Restarting and finishing must reach the global optimum.
	want := trueMin(0, 3_000_000)
	res2, err := Run(ff, Config{
		Workers:        4,
		RestartFrom:    ckpt,
		StatusInterval: 1e-4,
		ShipInterval:   1e-4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Optimal || res2.Obj != want {
		t.Fatalf("restart: %+v want %v", res2, want)
	}
	if !res2.Stats.Restarted || res2.Stats.PoolAtStart != len(ck.Pool) {
		t.Fatalf("restart stats wrong: %+v", res2.Stats)
	}
}

func TestInitialSolutionUsed(t *testing.T) {
	ff := &fakeFactory{lo: 0, hi: 10000, chunk: 300}
	want := trueMin(0, 10000)
	seed := &Solution{Obj: want, Payload: encodeIv(0, 1)}
	res, err := Run(ff, Config{Workers: 2, InitialSolution: seed})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal || res.Obj != want {
		t.Fatalf("seeded run: %+v want %v", res, want)
	}
}

func TestStatsAccounting(t *testing.T) {
	ff := &fakeFactory{lo: 0, hi: 60000, chunk: 250}
	res, err := Run(ff, Config{Workers: 3, StatusInterval: 1e-4, ShipInterval: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.TotalNodes <= 0 {
		t.Fatal("no nodes accounted")
	}
	if st.Dispatched < 1 {
		t.Fatal("no dispatches accounted")
	}
	if st.MaxActive < 1 || st.MaxActive > 3 {
		t.Fatalf("MaxActive %d", st.MaxActive)
	}
	if st.Time <= 0 {
		t.Fatal("no time recorded")
	}
	if len(st.IdleRatio) != 3 {
		t.Fatalf("idle ratios %v", st.IdleRatio)
	}
}

func TestSubproblemGobSafety(t *testing.T) {
	// Every coordination payload must round-trip through gob.
	sub := Subproblem{ID: 7, Depth: 3, Bound: -12.5, Payload: []byte{1, 2, 3}}
	var got Subproblem
	dec(enc(sub), &got)
	if got.ID != 7 || got.Depth != 3 || got.Bound != -12.5 || len(got.Payload) != 3 {
		t.Fatalf("roundtrip: %+v", got)
	}
	w := workMsg{Sub: sub, Incumbent: &Solution{Obj: 3.5}, SettingsIdx: 2, StatusSec: 0.5}
	var gw workMsg
	dec(enc(w), &gw)
	if gw.Incumbent == nil || gw.Incumbent.Obj != 3.5 || gw.SettingsIdx != 2 {
		t.Fatalf("workMsg roundtrip: %+v", gw)
	}
}

func TestShiftWorkersCreated(t *testing.T) {
	ff := &fakeFactory{lo: 0, hi: 5000, chunk: 100, settings: 3}
	if _, err := Run(ff, Config{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt64(&ff.created) < 1 {
		t.Fatal("no workers created")
	}
}

func TestCommSizeMismatch(t *testing.T) {
	ff := &fakeFactory{lo: 0, hi: 100, chunk: 10}
	_, err := Run(ff, Config{Workers: 3, Comm: comm.NewChannelComm(2)})
	if err == nil {
		t.Fatal("mismatched comm size accepted")
	}
}

func TestRestartFromMissingCheckpoint(t *testing.T) {
	ff := &fakeFactory{lo: 0, hi: 100, chunk: 10}
	_, err := Run(ff, Config{Workers: 1, RestartFrom: "/nonexistent/ckpt.gob"})
	if err == nil {
		t.Fatal("missing checkpoint accepted")
	}
}

func TestCorruptCheckpointRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.gob")
	if err := osWriteFile(path, []byte("not a gob stream")); err != nil {
		t.Fatal(err)
	}
	if _, err := loadCheckpoint(path); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
}

func TestZeroWorkersDefaultsToOne(t *testing.T) {
	ff := &fakeFactory{lo: 0, hi: 2000, chunk: 100}
	res, err := Run(ff, Config{Workers: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal {
		t.Fatalf("%+v", res)
	}
	if len(res.Stats.IdleRatio) != 1 {
		t.Fatalf("expected 1 worker, idle=%v", res.Stats.IdleRatio)
	}
}
