package ug

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/num"
	"repro/internal/obs"
	"repro/internal/ug/comm"
)

// Config steers one UG run.
type Config struct {
	Workers int       // number of ParaSolvers
	Comm    comm.Comm // nil: ChannelComm(Workers+1)

	// RemoteWorkers marks the workers as separate OS processes reached
	// through Comm (a comm/net endpoint): Run then drives only the
	// coordinator loop and spawns no worker goroutines — each worker
	// process calls RunWorker against its own endpoint.
	RemoteWorkers bool

	RampUp          RampUpMode
	RacingTime      float64 // seconds of racing before a winner is chosen
	RacingNodeLimit int     // alt criterion: a solver's open nodes reach this

	TimeLimit float64 // seconds; 0 = none

	// Cancel, when non-nil, requests a cooperative stop once the channel
	// is closed: the coordinator interrupts all running solvers exactly
	// as if the time limit had fired, and the run finishes as
	// interrupted with a complete trace (run.start … run.end). This is
	// how a serving layer cancels a job and how the CLIs translate
	// SIGINT/SIGTERM into a graceful wind-down.
	Cancel <-chan struct{}

	CheckpointPath  string  // non-empty enables checkpointing
	CheckpointEvery float64 // seconds between checkpoints (default 1s)
	RestartFrom     string  // checkpoint file to restore

	// InitialSolution seeds the incumbent (the paper's hc10p runs re-start
	// from scratch with the previous best solution attached).
	InitialSolution *Solution

	// Pool watermarks for collect mode; zero values derive from Workers.
	CollectLow, CollectHigh int

	// StatusInterval/ShipInterval tune worker communication cadence in
	// seconds (zero keeps the defaults: 20ms status, 2ms shipping).
	StatusInterval, ShipInterval float64

	// Trace receives the coordination event stream (nil disables tracing
	// at zero cost). Events are ordered by the coordinator loop tick —
	// a logical clock that never feeds back into solver decisions.
	Trace *obs.Tracer

	// Metrics receives live counters/gauges (pool depth, mailbox depth,
	// transfer bytes). Nil disables collection at zero cost.
	Metrics *obs.Registry

	// Capture, when armed, writes a post-mortem forensics bundle at the
	// run's failure edges: a panic in the coordinator or an in-process
	// worker goroutine (recover-and-rethrow — crash semantics are
	// unchanged, but the bundle lands first), and any error outcome of
	// the run itself. Nil/disarmed is a no-op.
	Capture *obs.Capturer

	// TestPanicRank, when > 0, makes that worker rank panic on its first
	// received subproblem — the fault-injection hook the post-mortem
	// smoke test uses to exercise CapturePanic on a real solve. Never
	// set outside tests and scripts/postmortem_smoke.sh.
	TestPanicRank int
}

// RunStats aggregates the statistics the paper's tables report.
type RunStats struct {
	Time               float64
	RootTime           float64
	MaxActive          int
	FirstMaxActiveTime float64
	Dispatched         int64 // subproblems transferred LC → ParaSolvers
	Collected          int64 // nodes shipped ParaSolvers → LC
	TotalNodes         int64 // branch-and-bound nodes processed overall
	OpenAtEnd          int   // open nodes (workers + pool) when stopping
	PoolAtStart        int   // primitive nodes restored from a checkpoint
	InitialPrimal      float64
	InitialDual        float64
	FinalPrimal        float64
	FinalDual          float64
	IdleRatio          []float64 // per worker (rank-1 indexed)
	RacingWinner       int       // winning settings index; -1 when not raced
	RacingWinnerName   string
	SolvedInRacing     bool
	Restarted          bool
	CheckpointErrors   int64 // checkpoint saves that failed (best-effort, but observable)

	// Extended observability counters (the signals the paper's figures
	// are drawn from; printed by the CLIs' -stats tables).
	LPIterations   int64   // LP simplex iterations summed over all solvers
	CutsAdded      int64   // cutting planes added summed over all solvers
	TransferBytes  int64   // payload bytes moved LC ↔ ParaSolvers
	MaxPoolDepth   int     // deepest the coordinator pool ever got
	CollectPhases  int     // number of collect-mode intervals entered
	StatusReports  int64   // periodic status messages received
	Ticks          int64   // coordinator event-loop iterations (logical time)
	PerWorkerNodes []int64 // branch-and-bound nodes per worker (rank-1 indexed)

	// Phases is the wall-time-per-phase breakdown: Presolve is the
	// coordinator's global presolve, every other phase is summed over
	// the subproblem outcomes the workers report.
	Phases PhaseTimes
}

// Result is the outcome of a UG run.
type Result struct {
	Optimal    bool
	Infeasible bool
	Obj        float64
	Sol        *Solution
	DualBound  float64
	Stats      RunStats
}

// subHeap orders the coordinator pool by dual bound (best first).
type subHeap []*Subproblem

func (h subHeap) Len() int            { return len(h) }
func (h subHeap) Less(i, j int) bool  { return h[i].Bound < h[j].Bound }
func (h subHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *subHeap) Push(x interface{}) { *h = append(*h, x.(*Subproblem)) }
func (h *subHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// coordinator is the LoadCoordinator state (the paper's Algorithm 1).
type coordinator struct {
	cfg     Config
	comm    comm.Comm
	factory SolverFactory

	pool    subHeap
	running map[int]*Subproblem
	idle    []int
	dead    map[int]bool // ranks lost to transport failure (TagPeerDown)

	incumbent *Solution
	nextSubID int64

	workerBound map[int]float64
	workerOpen  map[int]int
	workerNodes map[int]int64

	dispatchAt map[int]time.Time
	busy       map[int]time.Duration

	collectMode        bool
	racing             bool
	racingRootRequeued bool
	racingIdx          map[int]int // rank → settings index
	winnerRank         int
	windingUp          bool // racing finished, waiting for extraction/stops
	stopping           bool

	start    time.Time
	lastCkpt time.Time
	rootRank int

	stats RunStats

	// Observability state. trace/metrics may be nil (disabled); every
	// use is a nil-safe no-op then. tick is the logical clock: it
	// advances once per event-loop iteration and orders the trace, but
	// is never consulted by coordination decisions.
	trace     *obs.Tracer
	tick      int64
	lastDual  float64 // last dual bound written to the trace
	poolGauge *obs.Gauge
	// Outcome distributions for the -stats table (nil-safe when metrics
	// are disabled): LP iterations and busy seconds per subproblem.
	lpItersHist *obs.Histogram
	subSeconds  *obs.Histogram
}

// Run executes a complete UG solve: global presolve in the coordinator,
// ramp-up, coordinated parallel search, and shutdown.
func Run(factory SolverFactory, cfg Config) (*Result, error) {
	// A panic anywhere in the coordinator path leaves a forensics bundle
	// before the crash propagates unchanged.
	defer cfg.Capture.CapturePanic("ug.coordinator")
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	c := cfg.Comm
	if c == nil {
		c = comm.NewChannelComm(cfg.Workers + 1)
	}
	if c.Size() != cfg.Workers+1 {
		return nil, fmt.Errorf("ug: comm size %d != workers+1 = %d", c.Size(), cfg.Workers+1)
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 1.0
	}
	if cfg.CollectLow <= 0 {
		cfg.CollectLow = cfg.Workers
	}
	if cfg.CollectHigh <= cfg.CollectLow {
		cfg.CollectHigh = 2*cfg.CollectLow + 1
	}
	if cfg.RacingTime <= 0 {
		cfg.RacingTime = 0.25
	}
	if cfg.RacingNodeLimit <= 0 {
		cfg.RacingNodeLimit = 50
	}

	// Mailbox depth gauges: both built-in communicators support
	// instrumentation; custom Comms may opt in with the same method.
	if cfg.Metrics != nil {
		if ic, ok := c.(interface{ Instrument(*obs.Registry) }); ok {
			ic.Instrument(cfg.Metrics)
		}
	}

	var wg sync.WaitGroup
	if !cfg.RemoteWorkers {
		for rank := 1; rank <= cfg.Workers; rank++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				defer cfg.Capture.CapturePanic("ug.worker")
				runWorker(rank, c, factory, cfg.Trace, cfg.TestPanicRank == rank)
			}(rank)
		}
	}

	co := &coordinator{
		cfg:         cfg,
		comm:        c,
		factory:     factory,
		running:     map[int]*Subproblem{},
		dead:        map[int]bool{},
		workerBound: map[int]float64{},
		workerOpen:  map[int]int{},
		workerNodes: map[int]int64{},
		dispatchAt:  map[int]time.Time{},
		busy:        map[int]time.Duration{},
		racingIdx:   map[int]int{},
		winnerRank:  -1,
		rootRank:    -1,
		trace:       cfg.Trace,
		lastDual:    math.Inf(-1),
		poolGauge:   cfg.Metrics.Gauge("ug.pool.depth"),
		lpItersHist: cfg.Metrics.Histogram("ug.outcome.lpiters", []float64{10, 100, 1e3, 1e4, 1e5}),
		subSeconds:  cfg.Metrics.Histogram("ug.subproblem.seconds", []float64{0.001, 0.01, 0.1, 1, 10, 60}),
	}
	co.stats.RacingWinner = -1
	co.stats.PerWorkerNodes = make([]int64, cfg.Workers)
	res, err := co.run()
	// Shut every worker down and wait for exit.
	for rank := 1; rank <= cfg.Workers; rank++ {
		c.Send(rank, comm.Message{From: 0, Tag: comm.TagTermination})
	}
	wg.Wait()
	if err != nil && cfg.Capture.Armed() {
		// The error outcome is a failure edge too: capture the final
		// event window and profiles before the caller tears down.
		_, _ = cfg.Capture.WriteBundle("error", err.Error())
	}
	return res, err
}

func (co *coordinator) run() (*Result, error) {
	co.start = time.Now()
	co.lastCkpt = co.start
	co.trace.Emit(obs.Event{Kind: obs.KindRunStart, Open: co.cfg.Workers})

	presolveStart := time.Now()
	root, initial, err := co.factory.GlobalPresolve()
	co.stats.Phases.Presolve = time.Since(presolveStart).Seconds()
	if err != nil {
		return nil, fmt.Errorf("ug: global presolve: %w", err)
	}
	if initial != nil {
		co.incumbent = initial
	}
	if co.cfg.InitialSolution != nil &&
		(co.incumbent == nil || co.cfg.InitialSolution.Obj < co.incumbent.Obj) {
		co.incumbent = co.cfg.InitialSolution
	}

	// Restore from checkpoint or seed the pool with the root.
	if co.cfg.RestartFrom != "" {
		ck, err := loadCheckpoint(co.cfg.RestartFrom)
		if err != nil {
			return nil, fmt.Errorf("ug: restart: %w", err)
		}
		for i := range ck.Pool {
			sub := ck.Pool[i]
			co.pushPool(&sub)
		}
		if ck.Incumbent != nil && (co.incumbent == nil || ck.Incumbent.Obj < co.incumbent.Obj) {
			co.incumbent = ck.Incumbent
		}
		co.stats.Restarted = true
		co.stats.PoolAtStart = len(co.pool)
		co.trace.Emit(obs.Event{Kind: obs.KindCkptRestore, Open: len(co.pool), Str: co.cfg.RestartFrom})
	} else {
		co.pushPool(&Subproblem{ID: 0, Bound: math.Inf(-1), Payload: root})
	}
	co.stats.InitialPrimal = co.primalBound()
	co.stats.InitialDual = co.dualBound()

	// Ramp-up.
	if co.cfg.RampUp == RampUpRacing && !co.stats.Restarted && len(co.pool) == 1 {
		co.racing = true
		co.trace.Emit(obs.Event{Kind: obs.KindRacingStart, Open: co.factory.NumSettings()})
		rootSub := co.pool[0]
		co.pool = nil
		for rank := 1; rank <= co.cfg.Workers; rank++ {
			idx := (rank - 1) % co.factory.NumSettings()
			co.racingIdx[rank] = idx
			co.dispatchTo(rank, rootSub, comm.TagRacing, idx)
		}
	} else {
		for rank := 1; rank <= co.cfg.Workers; rank++ {
			co.idle = append(co.idle, rank)
		}
		co.dispatchAll()
	}

	// Main event loop (Algorithm 1 with polling for timers). Each
	// iteration advances the logical clock one tick; the tick orders the
	// trace but never influences a coordination decision.
	for {
		co.tick++
		co.trace.SetTick(co.tick)
		if msg, ok := co.comm.TryRecv(0); ok {
			co.handle(msg)
			co.traceDualBound()
		} else {
			// An empty mailbox on a closed transport never refills: exit
			// as an interrupted run instead of spinning forever (tests
			// and process teardown close the comm under a live loop).
			if cc, ok := co.comm.(interface{ Closed() bool }); ok && cc.Closed() {
				co.abortClosed()
				return co.finalize(), nil
			}
			time.Sleep(200 * time.Microsecond)
		}
		now := time.Now()
		elapsed := now.Sub(co.start).Seconds()

		if co.racing && !co.windingUp {
			co.maybeEndRacing(elapsed)
		}
		if !co.racing {
			co.adjustCollectMode()
			co.dispatchAll()
		}
		if co.cfg.CheckpointPath != "" && now.Sub(co.lastCkpt).Seconds() >= co.cfg.CheckpointEvery {
			co.lastCkpt = now
			err := co.saveCheckpoint()
			if err != nil {
				co.stats.CheckpointErrors++
			}
			co.traceCheckpoint(err)
		}
		if !co.stopping && co.cfg.TimeLimit > 0 && elapsed > co.cfg.TimeLimit {
			co.beginStop()
		}
		if !co.stopping && co.cfg.Cancel != nil {
			select {
			case <-co.cfg.Cancel:
				co.beginStop()
			default:
			}
		}
		if co.finished() {
			return co.finalize(), nil
		}
		if len(co.dead) >= co.cfg.Workers {
			// Every worker is gone and work remains: nothing can make
			// progress, so fail loudly rather than hang. The requeued
			// subproblems are still in the pool (and any checkpoint).
			return nil, fmt.Errorf("ug: all %d workers lost to transport failure with %d subproblems unsolved",
				co.cfg.Workers, len(co.pool))
		}
	}
}

// abortClosed winds the run down after the transport was closed under
// it: every in-flight subproblem returns to the pool as a primitive
// node so the final statistics (and a checkpoint, if enabled) still
// cover the whole search, and the result reports an interrupted run.
func (co *coordinator) abortClosed() {
	co.stopping = true
	co.trace.Emit(obs.Event{Kind: obs.KindRunStop, Open: len(co.running)})
	for _, rank := range co.runningRanks() {
		if sub := co.running[rank]; sub != nil && (!co.racing || !co.racingRootRequeued) {
			if co.racing {
				co.racingRootRequeued = true
			}
			co.pushPool(sub)
		}
		delete(co.running, rank)
	}
	co.racing = false
	co.windingUp = false
}

// traceDualBound writes a dual-bound event when the global bound moved
// since the last one. The recomputation is O(pool + workers), so it only
// runs when tracing is enabled.
func (co *coordinator) traceDualBound() {
	if !co.trace.Enabled() {
		return
	}
	d := co.dualBound()
	if d == co.lastDual { //lint:ignore floatcmp change detection must not hide small bound movements behind a tolerance
		return
	}
	co.lastDual = d
	co.trace.Emit(obs.Event{Kind: obs.KindDualBound, Dual: d, Primal: co.primalBound()})
}

// traceCheckpoint records a checkpoint save (or its failure).
func (co *coordinator) traceCheckpoint(err error) {
	if !co.trace.Enabled() {
		return
	}
	ev := obs.Event{Kind: obs.KindCkptSave, Open: len(co.pool) + len(co.running)}
	if err != nil {
		ev.Str = err.Error()
	}
	co.trace.Emit(ev)
}

// pushPool adds a subproblem to the coordinator pool.
func (co *coordinator) pushPool(sub *Subproblem) {
	if co.incumbent != nil && num.Geq(sub.Bound, co.incumbent.Obj, num.ZeroTol) {
		return // dominated
	}
	heap.Push(&co.pool, sub)
	if len(co.pool) > co.stats.MaxPoolDepth {
		co.stats.MaxPoolDepth = len(co.pool)
	}
	co.poolGauge.Set(int64(len(co.pool)))
}

// runningRanks returns the ranks with an active subproblem in ascending
// order. Iterating co.running directly visits ranks in Go's randomized
// map order, which leaks into racing tie-breaks, checkpoint layout, and
// message traces — everything deterministic replay needs stable.
func (co *coordinator) runningRanks() []int {
	ranks := make([]int, 0, len(co.running))
	for rank := range co.running {
		ranks = append(ranks, rank)
	}
	sort.Ints(ranks)
	return ranks
}

// dispatchTo sends one subproblem to a specific worker.
func (co *coordinator) dispatchTo(rank int, sub *Subproblem, tag comm.Tag, settingsIdx int) {
	co.running[rank] = sub
	co.dispatchAt[rank] = time.Now()
	co.workerBound[rank] = sub.Bound
	co.workerOpen[rank] = 1
	co.workerNodes[rank] = 0
	co.stats.Dispatched++
	if co.rootRank < 0 {
		co.rootRank = rank
	}
	if active := len(co.running); active > co.stats.MaxActive {
		co.stats.MaxActive = active
		co.stats.FirstMaxActiveTime = time.Since(co.start).Seconds()
	}
	payload := enc(workMsg{
		Sub:         *sub,
		Incumbent:   co.incumbent,
		SettingsIdx: settingsIdx,
		StatusSec:   co.cfg.StatusInterval,
		ShipSec:     co.cfg.ShipInterval,
	})
	co.stats.TransferBytes += int64(len(payload))
	if co.trace.Enabled() {
		ev := obs.Event{Kind: obs.KindDispatch, Rank: rank, Sub: sub.ID, Dual: sub.Bound}
		if tag == comm.TagRacing {
			ev.Str = co.factory.SettingsName(settingsIdx)
		}
		co.trace.Emit(ev)
		co.trace.Emit(obs.Event{Kind: obs.KindSolverBusy, Rank: rank})
	}
	co.comm.Send(rank, comm.Message{From: 0, Tag: tag, Payload: payload})
	if co.collectMode {
		co.comm.Send(rank, comm.Message{From: 0, Tag: comm.TagStartCollect})
	}
}

// dispatchAll matches idle workers with pooled subproblems.
func (co *coordinator) dispatchAll() {
	if co.stopping {
		return
	}
	for len(co.idle) > 0 && len(co.pool) > 0 {
		rank := co.idle[len(co.idle)-1]
		co.idle = co.idle[:len(co.idle)-1]
		sub := heap.Pop(&co.pool).(*Subproblem)
		co.poolGauge.Set(int64(len(co.pool)))
		if co.incumbent != nil && num.Geq(sub.Bound, co.incumbent.Obj, num.ZeroTol) {
			co.idle = append(co.idle, rank)
			continue
		}
		co.dispatchTo(rank, sub, comm.TagSubproblem, 0)
	}
}

// adjustCollectMode implements the paper's dynamic load balancing: when
// the pool runs low the coordinator asks active solvers to ship heavy
// subproblems; when it is replenished it stops the collection.
func (co *coordinator) adjustCollectMode() {
	if co.stopping {
		return
	}
	if !co.collectMode && len(co.pool) < co.cfg.CollectLow && len(co.running) > 0 {
		co.collectMode = true
		co.stats.CollectPhases++
		co.trace.Emit(obs.Event{Kind: obs.KindCollectStart, Open: len(co.pool)})
		for _, rank := range co.runningRanks() {
			co.comm.Send(rank, comm.Message{From: 0, Tag: comm.TagStartCollect})
		}
	} else if co.collectMode && len(co.pool) >= co.cfg.CollectHigh {
		co.collectMode = false
		co.trace.Emit(obs.Event{Kind: obs.KindCollectStop, Open: len(co.pool)})
		for _, rank := range co.runningRanks() {
			co.comm.Send(rank, comm.Message{From: 0, Tag: comm.TagStopCollect})
		}
	}
}

// maybeEndRacing checks the racing termination criteria and, when met,
// declares a winner: best dual bound, ties broken by more open nodes.
func (co *coordinator) maybeEndRacing(elapsed float64) {
	trigger := elapsed >= co.cfg.RacingTime
	if !trigger {
		for _, open := range co.workerOpen {
			if open >= co.cfg.RacingNodeLimit {
				trigger = true
				break
			}
		}
	}
	if !trigger {
		return
	}
	// Visit ranks in ascending order so ties in bound and open-node
	// count resolve to the lowest rank on every run, not whichever rank
	// the map iterator happened to produce first.
	ranks := co.runningRanks()
	best := -1
	for _, rank := range ranks {
		if best < 0 {
			best = rank
			continue
		}
		bb, bo := co.workerBound[best], co.workerOpen[best]
		rb, ro := co.workerBound[rank], co.workerOpen[rank]
		if num.Gt(rb, bb, num.OptTol) || (num.Eq(rb, bb, num.OptTol) && ro > bo) {
			best = rank
		}
	}
	if best < 0 {
		return // all racing solvers already terminated
	}
	co.winnerRank = best
	co.stats.RacingWinner = co.racingIdx[best]
	co.stats.RacingWinnerName = co.factory.SettingsName(co.racingIdx[best])
	co.windingUp = true
	co.trace.Emit(obs.Event{Kind: obs.KindRacingWinner, Rank: best,
		Sub: int64(co.stats.RacingWinner), Str: co.stats.RacingWinnerName})
	co.comm.Send(best, comm.Message{From: 0, Tag: comm.TagExtractAll})
	for _, rank := range ranks {
		if rank != best {
			co.comm.Send(rank, comm.Message{From: 0, Tag: comm.TagStop})
		}
	}
}

// beginStop interrupts all running solvers (time limit reached).
func (co *coordinator) beginStop() {
	co.stopping = true
	co.trace.Emit(obs.Event{Kind: obs.KindRunStop, Open: len(co.running)})
	for _, rank := range co.runningRanks() {
		co.comm.Send(rank, comm.Message{From: 0, Tag: comm.TagStop})
	}
}

// handle processes one incoming message.
func (co *coordinator) handle(m comm.Message) {
	// A dead rank's queued solutions and collected nodes are still good
	// data; its control messages (status, terminated) are not — acting on
	// them would re-admit the rank to the idle set and strand the next
	// subproblem dispatched to it.
	if co.dead[m.From] && m.Tag != comm.TagSolution && m.Tag != comm.TagNode {
		return
	}
	switch m.Tag {
	case comm.TagPeerDown:
		co.handlePeerDown(m.From)
	case comm.TagSolution:
		var sol Solution
		dec(m.Payload, &sol)
		co.stats.TransferBytes += int64(len(m.Payload))
		if co.incumbent == nil || num.Lt(sol.Obj, co.incumbent.Obj, num.ZeroTol) {
			co.incumbent = &sol
			co.trace.Emit(obs.Event{Kind: obs.KindIncumbent, Rank: m.From, Primal: sol.Obj})
			// Broadcast to all running solvers and prune the pool.
			for _, rank := range co.runningRanks() {
				if rank != m.From {
					co.comm.Send(rank, comm.Message{From: 0, Tag: comm.TagSolution, Payload: enc(sol)})
				}
			}
			keep := co.pool[:0]
			for _, sub := range co.pool {
				if num.Lt(sub.Bound, co.incumbent.Obj, num.ZeroTol) {
					keep = append(keep, sub)
				}
			}
			co.pool = keep
			heap.Init(&co.pool)
			co.poolGauge.Set(int64(len(co.pool)))
		}
	case comm.TagNode:
		var sub Subproblem
		dec(m.Payload, &sub)
		co.nextSubID++
		sub.ID = co.nextSubID
		co.stats.Collected++
		co.stats.TransferBytes += int64(len(m.Payload))
		co.trace.Emit(obs.Event{Kind: obs.KindCollectNode, Rank: m.From, Sub: sub.ID, Dual: sub.Bound})
		co.pushPool(&sub)
	case comm.TagStatus:
		var st StatusReport
		dec(m.Payload, &st)
		co.workerBound[m.From] = st.Bound
		co.workerOpen[m.From] = st.Open
		co.workerNodes[m.From] = st.Nodes
		co.stats.StatusReports++
		co.trace.Emit(obs.Event{Kind: obs.KindStatus, Rank: m.From,
			Dual: st.Bound, Open: st.Open, Nodes: st.Nodes})
		if m.From == co.rootRank && num.ExactZero(co.stats.RootTime) && st.RootTime > 0 {
			co.stats.RootTime = st.RootTime
		}
	case comm.TagTerminated:
		var out Outcome
		dec(m.Payload, &out)
		sub := co.running[m.From]
		delete(co.running, m.From)
		delete(co.workerBound, m.From)
		co.workerOpen[m.From] = 0
		co.stats.TotalNodes += out.Nodes
		co.stats.LPIterations += out.LPIterations
		co.stats.CutsAdded += out.CutsAdded
		co.stats.Phases.Add(out.Phases)
		co.lpItersHist.Observe(float64(out.LPIterations))
		if m.From >= 1 && m.From <= len(co.stats.PerWorkerNodes) {
			co.stats.PerWorkerNodes[m.From-1] += out.Nodes
		}
		if co.trace.Enabled() {
			label := "interrupted"
			if out.Completed {
				label = "completed"
			}
			co.trace.Emit(obs.Event{Kind: obs.KindOutcome, Rank: m.From,
				Nodes: out.Nodes, Open: out.OpenLeft, Str: label})
			co.trace.Emit(obs.Event{Kind: obs.KindSolverIdle, Rank: m.From})
		}
		if t, ok := co.dispatchAt[m.From]; ok {
			d := time.Since(t)
			co.busy[m.From] += d
			co.subSeconds.Observe(d.Seconds())
			delete(co.dispatchAt, m.From)
		}
		if num.ExactZero(co.stats.RootTime) && m.From == co.rootRank && out.RootTime > 0 {
			co.stats.RootTime = out.RootTime
		}
		if co.racing {
			co.handleRacingTermination(m.From, out, sub)
			return
		}
		if !out.Completed && sub != nil {
			if co.stopping {
				// The interrupted subproblem root returns to the pool as a
				// primitive node; its explored part is the restart overhead
				// the paper describes.
				co.stats.OpenAtEnd += out.OpenLeft
				co.pushPool(sub)
			} else {
				// Interrupted for another reason (should not happen in
				// normal mode); requeue defensively.
				co.pushPool(sub)
			}
		}
		co.idle = append(co.idle, m.From)
	}
}

// handlePeerDown absorbs the loss of a worker process (synthesized
// TagPeerDown from a distributed transport): the rank leaves every
// roster, its in-flight subproblem returns to the pool as a primitive
// node, and the run continues on the surviving workers. The run-loop
// all-dead check turns total loss into an error instead of a hang.
func (co *coordinator) handlePeerDown(rank int) {
	if co.dead[rank] {
		return
	}
	co.dead[rank] = true
	co.trace.Emit(obs.Event{Kind: obs.KindCommPeerDown, Rank: rank})
	sub := co.running[rank]
	delete(co.running, rank)
	delete(co.workerBound, rank)
	co.workerOpen[rank] = 0
	for i, r := range co.idle {
		if r == rank {
			co.idle = append(co.idle[:i], co.idle[i+1:]...)
			break
		}
	}
	if t, ok := co.dispatchAt[rank]; ok {
		co.busy[rank] += time.Since(t)
		delete(co.dispatchAt, rank)
	}
	if co.racing {
		// Every racer works on the same root: requeue it only when the
		// search would otherwise lose it — the chosen winner died, or the
		// last racer is gone.
		if !co.racingRootRequeued && sub != nil &&
			(rank == co.winnerRank || len(co.running) == 0) {
			co.racingRootRequeued = true
			co.pushPool(sub)
		}
		if len(co.running) == 0 {
			co.racing = false
			co.windingUp = false
			co.trace.Emit(obs.Event{Kind: obs.KindRacingDone, Open: len(co.pool)})
		}
		return
	}
	if sub != nil {
		co.pushPool(sub)
	}
}

// handleRacingTermination tracks racing solvers finishing or stopping.
func (co *coordinator) handleRacingTermination(rank int, out Outcome, sub *Subproblem) {
	co.idle = append(co.idle, rank)
	if co.stopping && !out.Completed {
		co.stats.OpenAtEnd += out.OpenLeft
		if !co.racingRootRequeued && sub != nil {
			// Time limit hit mid-race with no winner: requeue the shared
			// root once so a checkpoint still covers the whole search.
			co.racingRootRequeued = true
			co.pushPool(sub)
		}
	}
	if out.Completed && !co.windingUp {
		// A racing solver finished the whole instance: stop the race.
		co.stats.SolvedInRacing = true
		co.stats.RacingWinner = co.racingIdx[rank]
		co.stats.RacingWinnerName = co.factory.SettingsName(co.racingIdx[rank])
		co.windingUp = true
		co.winnerRank = rank
		co.trace.Emit(obs.Event{Kind: obs.KindRacingWinner, Rank: rank,
			Sub: int64(co.stats.RacingWinner), Str: co.stats.RacingWinnerName})
		for r := range co.running {
			co.comm.Send(r, comm.Message{From: 0, Tag: comm.TagStop})
		}
	}
	if len(co.running) == 0 {
		// Racing phase fully wound up; switch to normal coordination.
		co.racing = false
		co.windingUp = false
		co.trace.Emit(obs.Event{Kind: obs.KindRacingDone, Open: len(co.pool)})
	}
}

// finished reports whether the run is over.
func (co *coordinator) finished() bool {
	if co.racing {
		return false
	}
	if co.stopping {
		return len(co.running) == 0
	}
	return len(co.pool) == 0 && len(co.running) == 0
}

// primalBound returns the incumbent objective (+Inf if none).
func (co *coordinator) primalBound() float64 {
	if co.incumbent == nil {
		return inf
	}
	return co.incumbent.Obj
}

// dualBound returns the global dual bound.
func (co *coordinator) dualBound() float64 {
	lb := inf
	for _, sub := range co.pool {
		if sub.Bound < lb {
			lb = sub.Bound
		}
	}
	// Ascending rank rather than map order: the min is the same either
	// way, but the checkpointed/traced value should never even look
	// order-dependent (walldet tracks this flow into run.end and
	// Checkpoint.DualBound).
	for _, rank := range co.runningRanks() {
		if b, ok := co.workerBound[rank]; ok && b < lb {
			lb = b
		}
	}
	if lb == inf {
		return co.primalBound()
	}
	return lb
}

// finalize assembles the Result.
func (co *coordinator) finalize() *Result {
	total := time.Since(co.start)
	co.stats.Time = total.Seconds()
	co.stats.FinalPrimal = co.primalBound()
	co.stats.FinalDual = co.dualBound()
	co.stats.OpenAtEnd += len(co.pool)
	co.stats.IdleRatio = make([]float64, co.cfg.Workers)
	for rank := 1; rank <= co.cfg.Workers; rank++ {
		b := co.busy[rank]
		if t, ok := co.dispatchAt[rank]; ok {
			b += time.Since(t)
		}
		idle := 1 - b.Seconds()/total.Seconds()
		if idle < 0 {
			idle = 0
		}
		co.stats.IdleRatio[rank-1] = idle
	}
	if co.cfg.CheckpointPath != "" {
		err := co.saveCheckpoint()
		if err != nil {
			co.stats.CheckpointErrors++
		}
		co.traceCheckpoint(err)
	}
	co.stats.Ticks = co.tick
	co.trace.Emit(obs.Event{Kind: obs.KindRunEnd,
		Dual: co.stats.FinalDual, Primal: co.stats.FinalPrimal, Nodes: co.stats.TotalNodes})
	res := &Result{Stats: co.stats, DualBound: co.stats.FinalDual}
	if co.incumbent != nil {
		res.Obj = co.incumbent.Obj
		res.Sol = co.incumbent
	}
	if !co.stopping {
		if co.incumbent != nil {
			res.Optimal = true
			res.DualBound = res.Obj
		} else {
			res.Infeasible = true
		}
	}
	return res
}
