package ug

import (
	"fmt"
	"io"
	"math"
)

// FormatStats renders the full RunStats as an aligned two-column table —
// the paper-style statistics block the CLIs print under -stats. All the
// rich counters the coordinator keeps (and used to keep invisibly) are
// shown; per-worker lines appear when per-rank data exists.
func FormatStats(w io.Writer, st RunStats) error {
	rows := []struct {
		name  string
		value string
	}{
		{"time (s)", fmt.Sprintf("%.3f", st.Time)},
		{"root time (s)", fmt.Sprintf("%.3f", st.RootTime)},
		{"ticks", fmt.Sprintf("%d", st.Ticks)},
		{"total nodes", fmt.Sprintf("%d", st.TotalNodes)},
		{"open at end", fmt.Sprintf("%d", st.OpenAtEnd)},
		{"dispatched", fmt.Sprintf("%d", st.Dispatched)},
		{"collected", fmt.Sprintf("%d", st.Collected)},
		{"transfer bytes", fmt.Sprintf("%d", st.TransferBytes)},
		{"status reports", fmt.Sprintf("%d", st.StatusReports)},
		{"max pool depth", fmt.Sprintf("%d", st.MaxPoolDepth)},
		{"collect phases", fmt.Sprintf("%d", st.CollectPhases)},
		{"max active", fmt.Sprintf("%d (first at %.3fs)", st.MaxActive, st.FirstMaxActiveTime)},
		{"LP iterations", fmt.Sprintf("%d", st.LPIterations)},
		{"cuts added", fmt.Sprintf("%d", st.CutsAdded)},
		{"phase times (s)", fmt.Sprintf("presolve %.3f  LP %.3f  relax %.3f  sepa %.3f  heur %.3f  prop %.3f",
			st.Phases.Presolve, st.Phases.LP, st.Phases.Relax,
			st.Phases.Separation, st.Phases.Heuristics, st.Phases.Propagation)},
		{"initial bounds", fmt.Sprintf("primal %s  dual %s", fmtBound(st.InitialPrimal), fmtBound(st.InitialDual))},
		{"final bounds", fmt.Sprintf("primal %s  dual %s", fmtBound(st.FinalPrimal), fmtBound(st.FinalDual))},
	}
	if st.Restarted {
		rows = append(rows, struct{ name, value string }{
			"restart", fmt.Sprintf("pool at start %d", st.PoolAtStart)})
	}
	if st.CheckpointErrors > 0 {
		rows = append(rows, struct{ name, value string }{
			"checkpoint errors", fmt.Sprintf("%d", st.CheckpointErrors)})
	}
	if st.RacingWinner >= 0 {
		rows = append(rows, struct{ name, value string }{
			"racing winner", fmt.Sprintf("settings %d (%s), solved in racing: %v",
				st.RacingWinner, st.RacingWinnerName, st.SolvedInRacing)})
	}
	for i := range st.PerWorkerNodes {
		idle := ""
		if i < len(st.IdleRatio) {
			idle = fmt.Sprintf(", idle %.1f%%", 100*st.IdleRatio[i])
		}
		rows = append(rows, struct{ name, value string }{
			fmt.Sprintf("worker[%d]", i+1),
			fmt.Sprintf("%d nodes%s", st.PerWorkerNodes[i], idle)})
	}

	nameW := 0
	for _, r := range rows {
		if len(r.name) > nameW {
			nameW = len(r.name)
		}
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%-*s  %s\n", nameW, r.name, r.value); err != nil {
			return err
		}
	}
	return nil
}

// fmtBound renders a bound, keeping infinities readable.
func fmtBound(x float64) string {
	if math.IsInf(x, 1) {
		return "+inf"
	}
	if math.IsInf(x, -1) {
		return "-inf"
	}
	return fmt.Sprintf("%.6g", x)
}
