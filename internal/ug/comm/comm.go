// Package comm provides the message-passing abstraction underneath the
// UG framework. UG's design point is that the coordination protocol is
// written once against an abstract communicator and instantiated with a
// concrete parallelization library — Pthreads/C++11 threads for
// FiberSCIP-style shared memory, MPI for ParaSCIP-style distributed
// memory. Here ChannelComm plays the shared-memory role and GobComm the
// message-serializing (MPI) role: every message crossing a GobComm is
// gob-encoded to bytes and decoded on the far side, proving that all
// transferred state (subproblems, solutions, statistics) survives a
// solver-independent wire format.
package comm

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"

	"repro/internal/obs"
)

// Tag labels a message with its protocol meaning; the set mirrors the
// Supervisor/Worker algorithm in the paper (solutionFound, subproblem,
// status, terminated, startCollecting, stopCollecting, termination) plus
// the racing ramp-up extensions.
type Tag int8

// Protocol tags.
const (
	TagSubproblem Tag = iota
	TagRacing
	TagSolution
	TagStatus
	TagNode
	TagTerminated
	TagStartCollect
	TagStopCollect
	TagExtractAll
	TagStop
	TagTermination
)

// String names the protocol tag for traces and debugging.
func (t Tag) String() string {
	names := [...]string{"subproblem", "racing", "solution", "status", "node",
		"terminated", "startCollect", "stopCollect", "extractAll", "stop", "termination"}
	if int(t) < len(names) {
		return names[t]
	}
	return fmt.Sprintf("tag(%d)", int(t))
}

// Message is one protocol message. Payload is an opaque byte slice whose
// interpretation depends on Tag.
type Message struct {
	From    int
	Tag     Tag
	Payload []byte
}

// Comm is the communicator: rank 0 is the LoadCoordinator, ranks 1..Size-1
// are ParaSolvers.
type Comm interface {
	// Size returns the number of ranks including the coordinator.
	Size() int
	// Send delivers m to rank `to` (never blocks).
	Send(to int, m Message)
	// Recv blocks until a message addressed to rank arrives.
	Recv(rank int) Message
	// TryRecv returns a pending message for rank without blocking.
	TryRecv(rank int) (Message, bool)
}

// mailbox is an unbounded FIFO with blocking receive. After close,
// sends are dropped and receivers drain the remaining queue before
// get reports ok=false.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Message
	closed bool
	// depth mirrors len(queue) as an obs gauge (with high-watermark).
	// Nil when the communicator is not instrumented; Gauge ops on nil
	// are free no-ops, so put/get pay only a nil check by default. The
	// gauge is updated while mb.mu is held, so its value is exactly
	// len(queue) at every quiescent point.
	depth *obs.Gauge
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) put(m Message) {
	mb.mu.Lock()
	if !mb.closed {
		mb.queue = append(mb.queue, m)
		mb.depth.Set(int64(len(mb.queue)))
		mb.cond.Signal()
	}
	mb.mu.Unlock()
}

func (mb *mailbox) get() (Message, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for len(mb.queue) == 0 && !mb.closed {
		mb.cond.Wait()
	}
	if len(mb.queue) == 0 {
		return Message{}, false
	}
	m := mb.queue[0]
	mb.queue = mb.queue[1:]
	mb.depth.Set(int64(len(mb.queue)))
	return m, true
}

func (mb *mailbox) close() {
	mb.mu.Lock()
	mb.closed = true
	mb.cond.Broadcast()
	mb.mu.Unlock()
}

func (mb *mailbox) tryGet() (Message, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if len(mb.queue) == 0 {
		return Message{}, false
	}
	m := mb.queue[0]
	mb.queue = mb.queue[1:]
	mb.depth.Set(int64(len(mb.queue)))
	return m, true
}

// instrumentBoxes attaches one depth gauge per rank, named
// "comm.mailbox.depth[rank]". Call before traffic starts: attaching is
// not synchronized with concurrent put/get.
func instrumentBoxes(boxes []*mailbox, reg *obs.Registry) {
	if reg == nil {
		return
	}
	for rank, mb := range boxes {
		mb.depth = reg.Gauge(fmt.Sprintf("comm.mailbox.depth[%d]", rank))
	}
}

// ChannelComm is the shared-memory communicator: messages move by
// reference between goroutines, the analogue of ug's Pthreads/C++11
// backends.
type ChannelComm struct {
	boxes []*mailbox
}

// NewChannelComm creates a communicator with size ranks.
func NewChannelComm(size int) *ChannelComm {
	c := &ChannelComm{boxes: make([]*mailbox, size)}
	for i := range c.boxes {
		c.boxes[i] = newMailbox()
	}
	return c
}

// Size implements Comm.
func (c *ChannelComm) Size() int { return len(c.boxes) }

// Instrument registers per-rank mailbox depth gauges (current depth and
// high-watermark) in reg. Call before the communicator carries traffic.
func (c *ChannelComm) Instrument(reg *obs.Registry) { instrumentBoxes(c.boxes, reg) }

// Send implements Comm.
func (c *ChannelComm) Send(to int, m Message) { c.boxes[to].put(m) }

// Recv implements Comm. After Close, once the queue is drained Recv
// returns a synthesized termination message (From = -1,
// Tag = TagTermination) so blocked receivers unwind.
func (c *ChannelComm) Recv(rank int) Message {
	m, ok := c.boxes[rank].get()
	if !ok {
		return Message{From: -1, Tag: TagTermination}
	}
	return m
}

// TryRecv implements Comm.
func (c *ChannelComm) TryRecv(rank int) (Message, bool) { return c.boxes[rank].tryGet() }

// Close shuts every mailbox: later sends are dropped and receivers
// blocked in Recv wake with a synthesized termination message once
// their queue drains.
func (c *ChannelComm) Close() {
	for _, mb := range c.boxes {
		mb.close()
	}
}

// GobComm is the simulated distributed-memory communicator: every
// message is serialized with encoding/gob into a byte buffer on Send and
// decoded on receive, exactly the data-marshalling boundary an MPI
// backend would cross. Any state that is not fully encodable (pointers,
// shared structures) breaks loudly here, which is the property the tests
// rely on.
type GobComm struct {
	boxes []*mailbox // carry encoded frames in Payload with Tag/From zeroed
}

// NewGobComm creates a gob-serializing communicator with size ranks.
func NewGobComm(size int) *GobComm {
	c := &GobComm{boxes: make([]*mailbox, size)}
	for i := range c.boxes {
		c.boxes[i] = newMailbox()
	}
	return c
}

// Size implements Comm.
func (c *GobComm) Size() int { return len(c.boxes) }

// Instrument registers per-rank mailbox depth gauges (current depth and
// high-watermark) in reg. Call before the communicator carries traffic.
func (c *GobComm) Instrument(reg *obs.Registry) { instrumentBoxes(c.boxes, reg) }

// Send implements Comm.
func (c *GobComm) Send(to int, m Message) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		panic(fmt.Sprintf("comm: gob encode: %v", err))
	}
	c.boxes[to].put(Message{Payload: buf.Bytes()})
}

func decodeFrame(frame Message) Message {
	var m Message
	if err := gob.NewDecoder(bytes.NewReader(frame.Payload)).Decode(&m); err != nil {
		panic(fmt.Sprintf("comm: gob decode: %v", err))
	}
	return m
}

// Recv implements Comm. After Close, once the queue is drained Recv
// returns a synthesized termination message (From = -1,
// Tag = TagTermination) so blocked receivers unwind.
func (c *GobComm) Recv(rank int) Message {
	frame, ok := c.boxes[rank].get()
	if !ok {
		return Message{From: -1, Tag: TagTermination}
	}
	return decodeFrame(frame)
}

// TryRecv implements Comm.
func (c *GobComm) TryRecv(rank int) (Message, bool) {
	frame, ok := c.boxes[rank].tryGet()
	if !ok {
		return Message{}, false
	}
	return decodeFrame(frame), true
}

// Close shuts every mailbox: later sends are dropped and receivers
// blocked in Recv wake with a synthesized termination message once
// their queue drains.
func (c *GobComm) Close() {
	for _, mb := range c.boxes {
		mb.close()
	}
}
