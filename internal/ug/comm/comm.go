// Package comm provides the message-passing abstraction underneath the
// UG framework. UG's design point is that the coordination protocol is
// written once against an abstract communicator and instantiated with a
// concrete parallelization library — Pthreads/C++11 threads for
// FiberSCIP-style shared memory, MPI for ParaSCIP-style distributed
// memory. Here ChannelComm plays the shared-memory role, GobComm the
// message-serializing (MPI-simulating) role — every message crossing a
// GobComm is gob-encoded to bytes and decoded on the far side, proving
// that all transferred state (subproblems, solutions, statistics)
// survives a solver-independent wire format — and the comm/net
// subpackage provides NetComm, a real distributed-memory TCP transport
// where coordinator and workers run as separate OS processes.
package comm

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Tag labels a message with its protocol meaning; the set mirrors the
// Supervisor/Worker algorithm in the paper (solutionFound, subproblem,
// status, terminated, startCollecting, stopCollecting, termination) plus
// the racing ramp-up extensions and the transport-failure notification
// distributed backends synthesize.
type Tag int8

// Protocol tags.
const (
	TagSubproblem Tag = iota
	TagRacing
	TagSolution
	TagStatus
	TagNode
	TagTerminated
	TagStartCollect
	TagStopCollect
	TagExtractAll
	TagStop
	TagTermination
	// TagPeerDown is synthesized locally by a distributed transport
	// (comm/net) when a remote rank disconnects without a graceful
	// goodbye: From names the lost rank. It never crosses the wire.
	TagPeerDown
)

// String names the protocol tag for traces and debugging.
func (t Tag) String() string {
	names := [...]string{"subproblem", "racing", "solution", "status", "node",
		"terminated", "startCollect", "stopCollect", "extractAll", "stop", "termination",
		"peerDown"}
	if int(t) < len(names) {
		return names[t]
	}
	return fmt.Sprintf("tag(%d)", int(t))
}

// Message is one protocol message. Payload is an opaque byte slice whose
// interpretation depends on Tag.
type Message struct {
	From    int
	Tag     Tag
	Payload []byte
}

// Comm is the communicator: rank 0 is the LoadCoordinator, ranks 1..Size-1
// are ParaSolvers.
type Comm interface {
	// Size returns the number of ranks including the coordinator.
	Size() int
	// Send delivers m to rank `to` (never blocks).
	Send(to int, m Message)
	// Recv blocks until a message addressed to rank arrives.
	Recv(rank int) Message
	// TryRecv returns a pending message for rank without blocking.
	TryRecv(rank int) (Message, bool)
}

// Mailbox is an unbounded FIFO with blocking receive — the delivery
// queue behind every communicator in this package and the per-peer
// outgoing queues of the comm/net transport. After Close, Put drops its
// message and receivers drain the remaining queue before Get reports
// ok=false. Exported so transport implementations in subpackages reuse
// the same lock discipline the -race stress suite pins down.
type Mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Message
	closed bool
	// depth mirrors len(queue) as an obs gauge (with high-watermark).
	// Nil when the communicator is not instrumented; Gauge ops on nil
	// are free no-ops, so Put/Get pay only a nil check by default. The
	// gauge is updated while mb.mu is held, so its value is exactly
	// len(queue) at every quiescent point.
	depth *obs.Gauge
}

// NewMailbox creates an empty open mailbox.
func NewMailbox() *Mailbox {
	mb := &Mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

// Put appends m to the queue and wakes one receiver. After Close the
// message is dropped.
func (mb *Mailbox) Put(m Message) {
	mb.mu.Lock()
	if !mb.closed {
		mb.queue = append(mb.queue, m)
		mb.depth.Set(int64(len(mb.queue)))
		mb.cond.Signal()
	}
	mb.mu.Unlock()
}

// Get blocks until a message is available or the mailbox is closed and
// drained; ok=false signals the latter.
func (mb *Mailbox) Get() (Message, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for len(mb.queue) == 0 && !mb.closed {
		mb.cond.Wait()
	}
	if len(mb.queue) == 0 {
		return Message{}, false
	}
	m := mb.queue[0]
	mb.queue = mb.queue[1:]
	mb.depth.Set(int64(len(mb.queue)))
	return m, true
}

// TryGet returns the head of the queue without blocking.
func (mb *Mailbox) TryGet() (Message, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if len(mb.queue) == 0 {
		return Message{}, false
	}
	m := mb.queue[0]
	mb.queue = mb.queue[1:]
	mb.depth.Set(int64(len(mb.queue)))
	return m, true
}

// Close shuts the mailbox: later Puts are dropped and receivers drain
// the remaining queue before Get reports ok=false.
func (mb *Mailbox) Close() {
	mb.mu.Lock()
	mb.closed = true
	mb.cond.Broadcast()
	mb.mu.Unlock()
}

// Closed reports whether Close has been called (messages queued before
// the close may still be pending).
func (mb *Mailbox) Closed() bool {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.closed
}

// Depth returns the current queue length.
func (mb *Mailbox) Depth() int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return len(mb.queue)
}

// SetDepthGauge attaches (or detaches, with nil) the obs gauge mirroring
// the queue depth. Attaching is synchronized with concurrent Put/Get;
// the gauge starts tracking from the current depth.
func (mb *Mailbox) SetDepthGauge(g *obs.Gauge) {
	mb.mu.Lock()
	mb.depth = g
	mb.depth.Set(int64(len(mb.queue)))
	mb.mu.Unlock()
}

// boxSet is the mailbox-backed receive path shared by ChannelComm,
// GobComm, and (per endpoint) the comm/net transport: one mailbox per
// rank, blocking Recv with a synthesized termination message after
// close, non-blocking TryRecv, and per-rank depth instrumentation.
type boxSet struct {
	boxes []*Mailbox
}

func newBoxSet(size int) boxSet {
	b := boxSet{boxes: make([]*Mailbox, size)}
	for i := range b.boxes {
		b.boxes[i] = NewMailbox()
	}
	return b
}

// Size implements Comm.
func (b boxSet) Size() int { return len(b.boxes) }

// Recv implements Comm. After Close, once the queue is drained Recv
// returns a synthesized termination message (From = -1,
// Tag = TagTermination) so blocked receivers unwind.
func (b boxSet) Recv(rank int) Message {
	//lint:ignore ctxdeadline Recv's contract is to block; Close closes every box, which unblocks Get
	m, ok := b.boxes[rank].Get()
	if !ok {
		return Message{From: -1, Tag: TagTermination}
	}
	return m
}

// TryRecv implements Comm.
func (b boxSet) TryRecv(rank int) (Message, bool) { return b.boxes[rank].TryGet() }

// Close shuts every mailbox: later sends are dropped and receivers
// blocked in Recv wake with a synthesized termination message once
// their queue drains.
func (b boxSet) Close() {
	for _, mb := range b.boxes {
		mb.Close()
	}
}

// Closed reports whether Close has been called. The coordinator polls it
// to exit its event loop cleanly when the transport is shut down under a
// running coordination loop (tests, process teardown).
func (b boxSet) Closed() bool { return len(b.boxes) > 0 && b.boxes[0].Closed() }

// Instrument registers per-rank mailbox depth gauges (current depth and
// high-watermark) in reg, named "comm.mailbox.depth[rank]".
func (b boxSet) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	for rank, mb := range b.boxes {
		mb.SetDepthGauge(reg.Gauge(fmt.Sprintf("comm.mailbox.depth[%d]", rank)))
	}
}

// ChannelComm is the shared-memory communicator: messages move by
// reference between goroutines, the analogue of ug's Pthreads/C++11
// backends.
type ChannelComm struct {
	boxSet
}

// NewChannelComm creates a communicator with size ranks.
func NewChannelComm(size int) *ChannelComm {
	return &ChannelComm{boxSet: newBoxSet(size)}
}

// Send implements Comm.
func (c *ChannelComm) Send(to int, m Message) { c.boxes[to].Put(m) }

// GobComm is the simulated distributed-memory communicator: every
// message is serialized with encoding/gob into a byte buffer on Send and
// decoded on receive, exactly the data-marshalling boundary an MPI
// backend would cross. Any state that is not fully encodable (pointers,
// shared structures) breaks loudly here, which is the property the tests
// rely on.
type GobComm struct {
	boxSet
	sendErrs atomic.Int64
	errMu    sync.Mutex
	firstErr error
}

// NewGobComm creates a gob-serializing communicator with size ranks.
func NewGobComm(size int) *GobComm {
	return &GobComm{boxSet: newBoxSet(size)}
}

// gobEncodeFrame serializes one message into a wire frame. It is a
// variable so tests can inject the failure modes gob reserves for
// unregistered or unencodable payload types; encoding a plain Message
// never fails in production.
var gobEncodeFrame = func(m Message) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Send implements Comm. An encode failure is recorded — counted, with
// the first error retained for Err() — and the message is dropped
// loudly rather than silently: an undeliverable coordination message
// otherwise surfaces far from its cause as a distributed hang.
func (c *GobComm) Send(to int, m Message) {
	frame, err := gobEncodeFrame(m)
	if err != nil {
		c.sendErrs.Add(1)
		c.errMu.Lock()
		if c.firstErr == nil {
			c.firstErr = fmt.Errorf("comm: gob encode %s from %d: %w", m.Tag, m.From, err)
		}
		c.errMu.Unlock()
		return
	}
	c.boxes[to].Put(Message{Payload: frame})
}

// Err returns the first send-side encode error, or nil. SendErrors
// reports how many messages were dropped; run teardown should treat a
// non-zero count as a protocol bug.
func (c *GobComm) Err() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.firstErr
}

// SendErrors returns the number of messages dropped by encode failures.
func (c *GobComm) SendErrors() int64 { return c.sendErrs.Load() }

func decodeFrame(frame Message) Message {
	var m Message
	if err := gob.NewDecoder(bytes.NewReader(frame.Payload)).Decode(&m); err != nil {
		panic(fmt.Sprintf("comm: gob decode: %v", err))
	}
	return m
}

// Recv implements Comm. After Close, once the queue is drained Recv
// returns a synthesized termination message (From = -1,
// Tag = TagTermination) so blocked receivers unwind.
func (c *GobComm) Recv(rank int) Message {
	//lint:ignore ctxdeadline Recv's contract is to block; Close closes every box, which unblocks Get
	frame, ok := c.boxes[rank].Get()
	if !ok {
		return Message{From: -1, Tag: TagTermination}
	}
	return decodeFrame(frame)
}

// TryRecv implements Comm.
func (c *GobComm) TryRecv(rank int) (Message, bool) {
	frame, ok := c.boxes[rank].TryGet()
	if !ok {
		return Message{}, false
	}
	return decodeFrame(frame), true
}
