package comm

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// closableComm is what the stress harness needs: the Comm protocol
// plus the shutdown hook both concrete communicators provide.
type closableComm interface {
	Comm
	Close()
}

// TestCommStress hammers each communicator with many concurrent
// senders and competing receivers per rank — both blocking Recv and
// polling TryRecv — then shuts down via Close while receivers are
// still blocked. It is designed to run under -race: any regression in
// the mailbox's lock discipline (unsynchronized queue access, missed
// wakeup, signal-vs-broadcast mistakes on close) shows up either as a
// race report, a lost/duplicated message count, or a hang caught by
// the deadline below.
func TestCommStress(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func(size int) closableComm
	}{
		{"ChannelComm", func(size int) closableComm { return NewChannelComm(size) }},
		{"GobComm", func(size int) closableComm { return NewGobComm(size) }},
	} {
		t.Run(tc.name, func(t *testing.T) { stressComm(t, tc.mk) })
	}
}

func stressComm(t *testing.T, mk func(size int) closableComm) {
	const (
		ranks     = 4
		senders   = 8
		perSender = 250 // messages from each sender to each rank
	)
	wantCount := int64(senders * perSender)
	var wantSum int64
	for i := 0; i < perSender; i++ {
		wantSum += int64(i % 251)
	}
	wantSum *= senders

	c := mk(ranks)
	var (
		gotCount [ranks]atomic.Int64
		gotSum   [ranks]atomic.Int64
		stop     atomic.Bool
		wg       sync.WaitGroup
	)

	// Two blocking receivers compete on every rank; they unwind on the
	// synthesized termination message Close produces.
	for rank := 0; rank < ranks; rank++ {
		for r := 0; r < 2; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				for {
					m := c.Recv(rank)
					if m.Tag == TagTermination && m.From == -1 {
						return
					}
					gotCount[rank].Add(1)
					gotSum[rank].Add(int64(m.Payload[0]))
				}
			}(rank)
		}
		// One polling receiver mixes TryRecv into the same contention.
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for !stop.Load() {
				m, ok := c.TryRecv(rank)
				if !ok {
					runtime.Gosched()
					continue
				}
				if m.Tag == TagTermination && m.From == -1 {
					return
				}
				gotCount[rank].Add(1)
				gotSum[rank].Add(int64(m.Payload[0]))
			}
		}(rank)
	}

	var sendWG sync.WaitGroup
	for s := 0; s < senders; s++ {
		sendWG.Add(1)
		go func(s int) {
			defer sendWG.Done()
			for i := 0; i < perSender; i++ {
				for rank := 0; rank < ranks; rank++ {
					c.Send(rank, Message{From: s, Tag: TagNode, Payload: []byte{byte(i % 251)}})
				}
			}
		}(s)
	}
	sendWG.Wait()

	// Every message was sent; wait for the receivers to drain them all,
	// with a deadline so a missed wakeup fails instead of hanging.
	deadline := time.Now().Add(30 * time.Second)
	for {
		done := true
		for rank := 0; rank < ranks; rank++ {
			if gotCount[rank].Load() < wantCount {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			for rank := 0; rank < ranks; rank++ {
				t.Errorf("rank %d: received %d of %d messages before deadline",
					rank, gotCount[rank].Load(), wantCount)
			}
			t.Fatal("receivers did not drain the mailboxes (lost wakeup or lost message)")
		}
		runtime.Gosched()
	}

	// Shut down while the blocking receivers sit in Recv on empty
	// queues: Close must wake all of them.
	c.Close()
	stop.Store(true)

	waited := make(chan struct{})
	go func() { wg.Wait(); close(waited) }()
	select {
	case <-waited:
	case <-time.After(30 * time.Second):
		t.Fatal("receivers did not unwind after Close (broadcast missing?)")
	}

	for rank := 0; rank < ranks; rank++ {
		if got := gotCount[rank].Load(); got != wantCount {
			t.Errorf("rank %d: got %d messages, want %d", rank, got, wantCount)
		}
		if got := gotSum[rank].Load(); got != wantSum {
			t.Errorf("rank %d: payload checksum %d, want %d", rank, got, wantSum)
		}
	}
}

// TestCloseSemantics pins down the shutdown contract: pending messages
// are still drained after Close, sends after Close are dropped, and a
// receiver blocked on an empty mailbox wakes with the synthesized
// termination message.
func TestCloseSemantics(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func(size int) closableComm
	}{
		{"ChannelComm", func(size int) closableComm { return NewChannelComm(size) }},
		{"GobComm", func(size int) closableComm { return NewGobComm(size) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := tc.mk(2)
			c.Send(1, Message{From: 0, Tag: TagStatus})
			c.Close()

			// Queued before Close: still delivered.
			if m := c.Recv(1); m.Tag != TagStatus || m.From != 0 {
				t.Fatalf("pre-close message lost: got %+v", m)
			}
			// Drained and closed: synthesized termination.
			if m := c.Recv(1); m.Tag != TagTermination || m.From != -1 {
				t.Fatalf("want synthesized termination, got %+v", m)
			}
			// Sends after Close are dropped.
			c.Send(1, Message{From: 0, Tag: TagNode})
			if m, ok := c.TryRecv(1); ok {
				t.Fatalf("send after Close should be dropped, got %+v", m)
			}

			// A receiver blocked on an empty mailbox must wake on Close.
			c2 := tc.mk(1)
			woke := make(chan Message, 1)
			go func() { woke <- c2.Recv(0) }()
			time.Sleep(10 * time.Millisecond) // let it block in Recv
			c2.Close()
			select {
			case m := <-woke:
				if m.Tag != TagTermination || m.From != -1 {
					t.Fatalf("blocked receiver woke with %+v", m)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("blocked receiver not released by Close")
			}
		})
	}
}
