package comm

import (
	"bytes"
	"encoding/gob"
	"strings"
	"sync"
	"testing"
)

func testComm(t *testing.T, c Comm) {
	t.Helper()
	// Order from a single sender is preserved.
	for i := 0; i < 10; i++ {
		c.Send(1, Message{From: 0, Tag: TagStatus, Payload: []byte{byte(i)}})
	}
	for i := 0; i < 10; i++ {
		m := c.Recv(1)
		if m.Payload[0] != byte(i) {
			t.Fatalf("order violated: got %d want %d", m.Payload[0], i)
		}
		if m.From != 0 || m.Tag != TagStatus {
			t.Fatalf("metadata lost: %+v", m)
		}
	}
	// TryRecv on empty box.
	if _, ok := c.TryRecv(1); ok {
		t.Fatal("TryRecv on empty mailbox returned a message")
	}
	c.Send(1, Message{From: 0, Tag: TagStop})
	if m, ok := c.TryRecv(1); !ok || m.Tag != TagStop {
		t.Fatalf("TryRecv failed: %+v ok=%v", m, ok)
	}
}

func TestChannelComm(t *testing.T) { testComm(t, NewChannelComm(2)) }
func TestGobComm(t *testing.T)     { testComm(t, NewGobComm(2)) }

func TestConcurrentSenders(t *testing.T) {
	for _, c := range []Comm{NewChannelComm(4), NewGobComm(4)} {
		var wg sync.WaitGroup
		const per = 200
		for s := 1; s < 4; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					c.Send(0, Message{From: s, Tag: TagNode, Payload: []byte{byte(i)}})
				}
			}(s)
		}
		counts := map[int]int{}
		for i := 0; i < 3*per; i++ {
			m := c.Recv(0)
			counts[m.From]++
		}
		wg.Wait()
		for s := 1; s < 4; s++ {
			if counts[s] != per {
				t.Fatalf("sender %d delivered %d messages, want %d", s, counts[s], per)
			}
		}
	}
}

func TestGobCommDeepCopies(t *testing.T) {
	c := NewGobComm(2)
	payload := []byte{1, 2, 3}
	c.Send(1, Message{From: 0, Tag: TagNode, Payload: payload})
	payload[0] = 99 // mutate after send; serialization must have copied
	m := c.Recv(1)
	if m.Payload[0] != 1 {
		t.Fatal("GobComm did not serialize the payload at send time")
	}
}

func TestBlockingRecv(t *testing.T) {
	c := NewChannelComm(2)
	done := make(chan Message, 1)
	go func() { done <- c.Recv(1) }()
	c.Send(1, Message{From: 0, Tag: TagTermination})
	m := <-done
	if m.Tag != TagTermination {
		t.Fatalf("got %+v", m)
	}
}

func TestTagStrings(t *testing.T) {
	if TagSubproblem.String() != "subproblem" || TagTermination.String() != "termination" {
		t.Fatal("tag names wrong")
	}
	if Tag(99).String() == "" {
		t.Fatal("unknown tag should still format")
	}
}

// gobUnregistered is an interface-typed envelope whose concrete value is
// never gob.Register'd — the one encode failure mode gob actually has in
// this codebase, injected through the gobEncodeFrame seam.
type gobUnregistered struct{ V interface{} }

type unregisteredPayload struct{ X int }

func TestGobCommSendRecordsEncodeErrors(t *testing.T) {
	orig := gobEncodeFrame
	defer func() { gobEncodeFrame = orig }()
	gobEncodeFrame = func(m Message) ([]byte, error) {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(gobUnregistered{V: unregisteredPayload{X: m.From}}); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	c := NewGobComm(2)
	c.Send(1, Message{From: 0, Tag: TagSubproblem, Payload: []byte("work")})
	c.Send(1, Message{From: 0, Tag: TagStatus})
	if _, ok := c.TryRecv(1); ok {
		t.Fatal("undeliverable message was delivered anyway")
	}
	if got := c.SendErrors(); got != 2 {
		t.Fatalf("SendErrors = %d, want 2", got)
	}
	err := c.Err()
	if err == nil {
		t.Fatal("first encode error not retained")
	}
	if !strings.Contains(err.Error(), "gob encode") || !strings.Contains(err.Error(), "subproblem") {
		t.Fatalf("error lacks context: %v", err)
	}
	// Recovery: once encoding works again, traffic flows and the error
	// record stays (it marks a protocol bug to be surfaced at teardown).
	gobEncodeFrame = orig
	c.Send(1, Message{From: 0, Tag: TagNode, Payload: []byte("ok")})
	if m, ok := c.TryRecv(1); !ok || m.Tag != TagNode {
		t.Fatalf("recovered send lost: %+v ok=%v", m, ok)
	}
	if c.SendErrors() != 2 || c.Err() == nil {
		t.Fatal("error record should persist after recovery")
	}
}
