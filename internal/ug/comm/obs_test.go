package comm

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/obs"
)

// TestMailboxGaugeTracksQueueLength pins the gauge contract
// deterministically: after every single-threaded put/get the gauge
// equals the actual queue length, and the high-watermark equals the
// deepest the queue ever got.
func TestMailboxGaugeTracksQueueLength(t *testing.T) {
	for _, tc := range []struct {
		name  string
		mk    func(size int) closableComm
		boxes func(c closableComm) []*Mailbox
	}{
		{"ChannelComm", func(size int) closableComm { return NewChannelComm(size) },
			func(c closableComm) []*Mailbox { return c.(*ChannelComm).boxes }},
		{"GobComm", func(size int) closableComm { return NewGobComm(size) },
			func(c closableComm) []*Mailbox { return c.(*GobComm).boxes }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			reg := obs.NewRegistry()
			c := tc.mk(2)
			if ic, ok := c.(interface{ Instrument(*obs.Registry) }); !ok {
				t.Fatal("communicator does not support Instrument")
			} else {
				ic.Instrument(reg)
			}
			g := reg.Gauge("comm.mailbox.depth[1]")
			boxes := tc.boxes(c)

			check := func(step string) {
				t.Helper()
				boxes[1].mu.Lock()
				actual := int64(len(boxes[1].queue))
				boxes[1].mu.Unlock()
				if g.Value() != actual {
					t.Fatalf("%s: gauge %d != queue length %d", step, g.Value(), actual)
				}
			}

			const n = 7
			for i := 0; i < n; i++ {
				c.Send(1, Message{From: 0, Tag: TagNode, Payload: []byte{byte(i)}})
				check(fmt.Sprintf("after send %d", i))
			}
			if hw := g.HighWater(); hw != n {
				t.Fatalf("high watermark %d, want %d", hw, n)
			}
			for i := 0; i < 3; i++ {
				if _, ok := c.TryRecv(1); !ok {
					t.Fatal("TryRecv lost a message")
				}
				check(fmt.Sprintf("after tryRecv %d", i))
			}
			for i := 0; i < 4; i++ {
				c.Recv(1)
				check(fmt.Sprintf("after recv %d", i))
			}
			if g.Value() != 0 {
				t.Fatalf("drained queue but gauge is %d", g.Value())
			}
			if hw := g.HighWater(); hw != n {
				t.Fatalf("high watermark moved after drain: %d", hw)
			}
		})
	}
}

// TestMailboxGaugeUnderStress runs the concurrent hammer from the
// stress suite against instrumented communicators (with -race via
// scripts/check.sh): when the dust settles every gauge must read
// exactly the remaining queue length (zero) and the high-watermark
// must be plausible — at least 1 and at most the total sent per rank.
func TestMailboxGaugeUnderStress(t *testing.T) {
	const (
		ranks     = 3
		senders   = 6
		perSender = 300
	)
	for _, tc := range []struct {
		name string
		mk   func(size int) closableComm
	}{
		{"ChannelComm", func(size int) closableComm { return NewChannelComm(size) }},
		{"GobComm", func(size int) closableComm { return NewGobComm(size) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			reg := obs.NewRegistry()
			c := tc.mk(ranks)
			c.(interface{ Instrument(*obs.Registry) }).Instrument(reg)

			var wg sync.WaitGroup
			for s := 0; s < senders; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					for i := 0; i < perSender; i++ {
						for rank := 0; rank < ranks; rank++ {
							c.Send(rank, Message{From: s, Tag: TagNode, Payload: []byte{1}})
						}
					}
				}(s)
			}
			// Concurrent drainers: one blocking receiver per rank.
			var rwg sync.WaitGroup
			for rank := 0; rank < ranks; rank++ {
				rwg.Add(1)
				go func(rank int) {
					defer rwg.Done()
					for got := 0; got < senders*perSender; got++ {
						m := c.Recv(rank)
						if m.Tag == TagTermination && m.From == -1 {
							t.Errorf("rank %d: premature close after %d messages", rank, got)
							return
						}
					}
				}(rank)
			}
			wg.Wait()
			rwg.Wait()

			for rank := 0; rank < ranks; rank++ {
				g := reg.Gauge(fmt.Sprintf("comm.mailbox.depth[%d]", rank))
				if g.Value() != 0 {
					t.Errorf("rank %d: drained but gauge reads %d", rank, g.Value())
				}
				if hw := g.HighWater(); hw < 1 || hw > senders*perSender {
					t.Errorf("rank %d: high watermark %d out of [1, %d]", rank, hw, senders*perSender)
				}
			}
		})
	}
}
