package netcomm

import (
	"sync"
	"time"

	"repro/internal/ug/comm"
)

// FaultAction is what a FaultRule does to its matched frame.
type FaultAction int

// Fault actions, applied in the sender's outgoing loop so injection is
// deterministic with respect to that endpoint's send order.
const (
	// FaultDrop discards the matched frame without sending it.
	FaultDrop FaultAction = iota
	// FaultDelay sleeps the rule's Delay before sending the frame.
	FaultDelay
	// FaultDuplicate sends the matched frame twice.
	FaultDuplicate
	// FaultDisconnect hard-closes the connection (no goodbye) just
	// before the matched frame would be written — the wire view of a
	// crashed peer.
	FaultDisconnect
)

// FaultRule matches the Nth outgoing data frame carrying Tag (1-based,
// counted per plan across all peers of the endpoint) and applies Action.
type FaultRule struct {
	Tag    comm.Tag
	Nth    int
	Action FaultAction
	Delay  time.Duration // used by FaultDelay
}

// FaultPlan injects faults into an endpoint's outgoing frames — the
// test-only seam the partial-failure tests use to pin coordinator
// behavior (requeue on worker death, no deadlock on disconnect). A nil
// *FaultPlan is the disabled plan; the match check on it is a nil test.
type FaultPlan struct {
	mu     sync.Mutex
	rules  []FaultRule
	counts map[comm.Tag]int
}

// NewFaultPlan builds a plan from rules.
func NewFaultPlan(rules ...FaultRule) *FaultPlan {
	return &FaultPlan{rules: rules, counts: map[comm.Tag]int{}}
}

// match counts one outgoing frame with tag and returns the matching
// rule, if any. Each counted occurrence matches at most one rule.
func (p *FaultPlan) match(tag comm.Tag) (FaultRule, bool) {
	if p == nil {
		return FaultRule{}, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.counts[tag]++
	n := p.counts[tag]
	for _, r := range p.rules {
		if r.Tag == tag && r.Nth == n {
			return r, true
		}
	}
	return FaultRule{}, false
}
