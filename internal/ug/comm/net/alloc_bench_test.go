package netcomm

import (
	"bufio"
	"bytes"
	"testing"

	"repro/internal/ug/comm"
)

// BenchmarkFrameRoundTrip measures one data-frame encode/write/read/
// decode cycle — the steady-state work of sendLoop and recvLoop. The
// hotalloc fixes reuse the frame body buffer across reads; the decoded
// payload copy remains (ownership transfers to the mailbox).
func BenchmarkFrameRoundTrip(b *testing.B) {
	payload := bytes.Repeat([]byte{0xAB}, 256)
	m := comm.Message{From: 3, Tag: 7, Payload: payload}
	var body, frame []byte
	var wire bytes.Buffer
	r := bufio.NewReader(&wire)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body = AppendMessage(body[:0], m, int64(i))
		wire.Reset()
		if err := writeFrame(&wire, frameData, body); err != nil {
			b.Fatal(err)
		}
		r.Reset(&wire)
		ftype, got, nbuf, err := readFrameInto(r, frame)
		frame = nbuf
		if err != nil || ftype != frameData {
			b.Fatalf("readFrame: type=%d err=%v", ftype, err)
		}
		dm, _, err := DecodeMessage(got)
		if err != nil || len(dm.Payload) != len(payload) {
			b.Fatalf("decode: %v", err)
		}
	}
}
