package netcomm

import (
	"bufio"
	"bytes"
	"reflect"
	"testing"

	"repro/internal/ug/comm"
)

// sampleMessages covers the codec corners: empty and large payloads,
// negative From (synthesized termination), and every protocol tag.
func sampleMessages() []comm.Message {
	msgs := []comm.Message{
		{From: 0, Tag: comm.TagSubproblem},
		{From: -1, Tag: comm.TagTermination},
		{From: 3, Tag: comm.TagSolution, Payload: []byte{0, 1, 2, 254, 255}},
		{From: 1, Tag: comm.TagNode, Payload: bytes.Repeat([]byte("abc"), 5000)},
	}
	for t := comm.TagSubproblem; t <= comm.TagPeerDown; t++ {
		msgs = append(msgs, comm.Message{From: int(t) + 1, Tag: t, Payload: []byte{byte(t)}})
	}
	return msgs
}

func TestMessageRoundTrip(t *testing.T) {
	for i, want := range sampleMessages() {
		wantClock := int64(i * 1000003) // varied clocks, including 0
		body := AppendMessage(nil, want, wantClock)
		got, clock, err := DecodeMessage(body)
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		if got.From != want.From || got.Tag != want.Tag || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("round trip: got %+v want %+v", got, want)
		}
		if clock != wantClock {
			t.Fatalf("round trip clock: got %d want %d", clock, wantClock)
		}
	}
}

func TestMessageBytesDeterministic(t *testing.T) {
	m := comm.Message{From: 2, Tag: comm.TagStatus, Payload: []byte("hi")}
	want := []byte{
		0, 0, 0, 2, // From, int32 BE
		byte(comm.TagStatus),   // Tag
		0, 0, 0, 0, 0, 0, 1, 1, // Lamport clock, uint64 BE
		0, 0, 0, 2, // payload length, uint32 BE
		'h', 'i',
	}
	got := AppendMessage(nil, m, 257)
	if !bytes.Equal(got, want) {
		t.Fatalf("encoding changed: got % x want % x", got, want)
	}
	if again := AppendMessage(nil, m, 257); !bytes.Equal(got, again) {
		t.Fatalf("non-deterministic encoding: % x vs % x", got, again)
	}
}

func TestDecodeMessageRejectsCorrupt(t *testing.T) {
	if _, _, err := DecodeMessage([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated body accepted")
	}
	body := AppendMessage(nil, comm.Message{From: 1, Tag: comm.TagNode, Payload: []byte("xyz")}, 42)
	if _, _, err := DecodeMessage(body[:len(body)-1]); err == nil {
		t.Fatal("short payload accepted")
	}
	if _, _, err := DecodeMessage(append(body, 'z')); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

// TestRoundTripMatchesGobComm pins the shared contract between the two
// serializing communicators: any message GobComm can carry across its
// gob frame boundary survives the net codec identically. This is the
// guard against wire-format drift between the in-process simulation and
// the real distributed transport.
func TestRoundTripMatchesGobComm(t *testing.T) {
	gc := comm.NewGobComm(2)
	for _, want := range sampleMessages() {
		gc.Send(1, want)
		viaGob, ok := gc.TryRecv(1)
		if !ok {
			t.Fatalf("GobComm dropped %+v", want)
		}
		viaNet, _, err := DecodeMessage(AppendMessage(nil, want, 0))
		if err != nil {
			t.Fatalf("net codec: %v", err)
		}
		if viaGob.From != viaNet.From || viaGob.Tag != viaNet.Tag ||
			!bytes.Equal(viaGob.Payload, viaNet.Payload) {
			t.Fatalf("codecs disagree: gob %+v net %+v", viaGob, viaNet)
		}
	}
}

func TestHandshakeCodecs(t *testing.T) {
	rank, ver, err := decodeHello(appendHello(nil, 7))
	if err != nil || rank != 7 || ver != ProtocolVersion {
		t.Fatalf("hello round trip: rank %d ver %d err %v", rank, ver, err)
	}
	bad := appendHello(nil, 7)
	bad[0] ^= 0xff
	if _, _, err := decodeHello(bad); err == nil {
		t.Fatal("corrupt magic accepted")
	}
	size, err := decodeWelcome(appendWelcome(nil, 12))
	if err != nil || size != 12 {
		t.Fatalf("welcome round trip: size %d err %v", size, err)
	}
	reason, err := decodeReject(appendReject(nil, "rank 1 already joined"))
	if err != nil || reason != "rank 1 already joined" {
		t.Fatalf("reject round trip: %q err %v", reason, err)
	}
}

func TestFrameReadWrite(t *testing.T) {
	var buf bytes.Buffer
	bodies := [][]byte{nil, {1}, bytes.Repeat([]byte{7}, 1000)}
	for i, b := range bodies {
		if err := writeFrame(&buf, byte(i), b); err != nil {
			t.Fatal(err)
		}
	}
	r := bufio.NewReader(&buf)
	for i, want := range bodies {
		ft, body, err := readFrame(r)
		if err != nil {
			t.Fatal(err)
		}
		if int(ft) != i || !bytes.Equal(body, want) {
			t.Fatalf("frame %d: type %d body %d bytes", i, ft, len(body))
		}
	}
	// A hostile length prefix must be rejected before allocation.
	huge := []byte{0xff, 0xff, 0xff, 0xff, frameData}
	if _, _, err := readFrame(bufio.NewReader(bytes.NewReader(huge))); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestFaultPlanMatching(t *testing.T) {
	plan := NewFaultPlan(
		FaultRule{Tag: comm.TagStatus, Nth: 2, Action: FaultDrop},
		FaultRule{Tag: comm.TagNode, Nth: 1, Action: FaultDisconnect},
	)
	var hits []FaultAction
	for i := 0; i < 3; i++ {
		if r, ok := plan.match(comm.TagStatus); ok {
			hits = append(hits, r.Action)
		}
	}
	if !reflect.DeepEqual(hits, []FaultAction{FaultDrop}) {
		t.Fatalf("status matches: %v", hits)
	}
	if r, ok := plan.match(comm.TagNode); !ok || r.Action != FaultDisconnect {
		t.Fatalf("node match: %+v %v", r, ok)
	}
	if _, ok := plan.match(comm.TagSolution); ok {
		t.Fatal("unruled tag matched")
	}
	var nilPlan *FaultPlan
	if _, ok := nilPlan.match(comm.TagStatus); ok {
		t.Fatal("nil plan matched")
	}
}
