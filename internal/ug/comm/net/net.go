package netcomm

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/ug/comm"
)

// Options tunes a NetComm endpoint. The zero value selects the
// defaults given on each field.
type Options struct {
	// HeartbeatEvery is the interval between heartbeat frames to each
	// peer (default 250ms).
	HeartbeatEvery time.Duration
	// HeartbeatMiss is how many silent intervals (no frame of any kind
	// received) declare a peer dead (default 8).
	HeartbeatMiss int
	// RendezvousTimeout bounds the whole rendezvous: the coordinator's
	// wait for a full roster, and a worker's dial-retry window
	// (default 30s).
	RendezvousTimeout time.Duration
	// RetryBase/RetryMax bound the exponential dial backoff
	// (defaults 10ms and 1s). Jitter of up to half the current backoff
	// is added from a generator seeded with Seed and the rank.
	RetryBase time.Duration
	// RetryMax caps the exponential dial backoff (default 1s).
	RetryMax time.Duration
	// CloseTimeout bounds the graceful drain in Close before remaining
	// connections are forced shut (default 3s).
	CloseTimeout time.Duration
	// WriteTimeout bounds each frame write: peer.write arms a write
	// deadline before putting the frame on the wire, so a remote that
	// stops reading cannot wedge the send or heartbeat loop forever
	// (default 5s).
	WriteTimeout time.Duration
	// OutboxSoftCap is the per-peer outgoing queue depth beyond which
	// the comm.net.outbox.overflow counter ticks (default 4096). The
	// queue itself stays unbounded so Send never blocks or drops.
	OutboxSoftCap int
	// Seed seeds the dial-retry jitter; runs with equal seeds retry on
	// the same schedule.
	Seed int64
	// Fault is the test-only fault-injection plan applied to outgoing
	// data frames; nil disables injection.
	Fault *FaultPlan
	// Trace receives comm.connect / comm.retry / comm.heartbeat /
	// comm.peerdown events (nil disables tracing). The transport also
	// switches the tracer into causal mode (obs.Tracer.EnableCausal) and
	// piggybacks its Lamport clock on every data frame, so per-process
	// traces of one distributed run can be merged into a single
	// causally-consistent timeline by obs.MergeTraces / ugtrace -merge.
	Trace *obs.Tracer
	// Metrics receives transfer-byte counters and queue-depth gauges at
	// construction time (nil disables collection).
	Metrics *obs.Registry
	// Capture, when armed, writes a post-mortem forensics bundle if a
	// transport pump goroutine (send/recv/heartbeat/reject) panics; the
	// panic is rethrown unchanged afterwards. Nil/disarmed is a no-op.
	Capture *obs.Capturer
}

func (o Options) withDefaults() Options {
	if o.HeartbeatEvery <= 0 {
		o.HeartbeatEvery = 250 * time.Millisecond
	}
	if o.HeartbeatMiss <= 0 {
		o.HeartbeatMiss = 8
	}
	if o.RendezvousTimeout <= 0 {
		o.RendezvousTimeout = 30 * time.Second
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 10 * time.Millisecond
	}
	if o.RetryMax <= 0 {
		o.RetryMax = time.Second
	}
	if o.CloseTimeout <= 0 {
		o.CloseTimeout = 3 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 5 * time.Second
	}
	if o.OutboxSoftCap <= 0 {
		o.OutboxSoftCap = 4096
	}
	return o
}

// RejectedError is a terminal rendezvous failure: the coordinator
// refused this endpoint (duplicate rank, version mismatch, roster
// full). Dial does not retry after one.
type RejectedError struct {
	// Reason is the coordinator's human-readable rejection reason.
	Reason string
}

// Error implements error.
func (e *RejectedError) Error() string { return "netcomm: rendezvous rejected: " + e.Reason }

// errInjected marks a FaultDisconnect-induced teardown in traces.
var errInjected = errors.New("netcomm: injected disconnect (fault plan)")

// instruments bundles the endpoint's counters so they can be swapped
// atomically by Instrument. All obs instruments are nil-safe, so the
// zero instruments value is the disabled set.
type instruments struct {
	bytesOut, bytesIn     *obs.Counter
	framesOut, framesIn   *obs.Counter
	dropped, overflow     *obs.Counter
	heartbeats, peerDowns *obs.Counter
}

// peer is one live remote rank: its connection, outgoing queue, and
// liveness bookkeeping.
type peer struct {
	rank   int
	conn   net.Conn
	br     *bufio.Reader
	bw     *bufio.Writer
	wmu    sync.Mutex // serializes frame writes (send loop vs heartbeats)
	out    *comm.Mailbox
	lastIn atomic.Int64 // unix nanos of the last frame received
	down   sync.Once
	stop   chan struct{} // closed on teardown; ends the heartbeat loop
	// writeTimeout arms a write deadline per frame (Options.WriteTimeout);
	// readWindow arms a read deadline per recvLoop iteration, one
	// heartbeat interval laxer than the heartbeat-timeout rule so the
	// latter fires first and produces the richer peer-down cause.
	writeTimeout time.Duration
	readWindow   time.Duration
}

// write sends one frame and flushes. Frame writes from the send loop
// and the heartbeat loop interleave whole frames under wmu.
func (p *peer) write(ftype byte, body []byte) error {
	p.wmu.Lock()
	defer p.wmu.Unlock()
	_ = p.conn.SetWriteDeadline(time.Now().Add(p.writeTimeout))
	//lint:ignore chanlock frame writes are serialized under wmu by design; the write deadline above bounds how long backpressure can hold it
	if err := writeFrame(p.bw, ftype, body); err != nil {
		return err
	}
	//lint:ignore chanlock flush is part of the same deadline-bounded frame write
	return p.bw.Flush()
}

// NetComm is one endpoint of the distributed-memory TCP communicator:
// rank 0 (built by Listener.Rendezvous) holds a connection per worker,
// each worker (built by Dial) holds one connection to the coordinator.
// Send enqueues to a per-peer outgoing queue serviced by a dedicated
// send loop, so it never blocks; Recv/TryRecv serve only this
// endpoint's own rank from the local mailbox. A remote rank that
// vanishes without a goodbye frame is announced locally as a
// synthesized comm.TagPeerDown message.
type NetComm struct {
	rank, size int
	opts       Options
	trace      *obs.Tracer

	inbox *comm.Mailbox

	mu    sync.Mutex
	peers map[int]*peer

	ins atomic.Pointer[instruments]

	ln        net.Listener // coordinator only; closed by Close
	closing   atomic.Bool
	closeOnce sync.Once
	wg        sync.WaitGroup
}

var _ comm.Comm = (*NetComm)(nil)

func newNetComm(rank, size int, opts Options) *NetComm {
	c := &NetComm{
		rank:  rank,
		size:  size,
		opts:  opts,
		trace: opts.Trace,
		inbox: comm.NewMailbox(),
		peers: map[int]*peer{},
	}
	c.ins.Store(&instruments{})
	if opts.Metrics != nil {
		c.Instrument(opts.Metrics)
	}
	return c
}

// Listener is a bound rendezvous port: create it with Listen (so the
// address, possibly with an OS-assigned port, is known), hand the
// address to the workers, then call Rendezvous to collect the roster.
type Listener struct {
	ln net.Listener
}

// Listen binds the coordinator's rendezvous address ("host:port";
// ":0" picks a free port, see Addr).
func Listen(addr string) (*Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netcomm: listen %s: %w", addr, err)
	}
	return &Listener{ln: ln}, nil
}

// Addr returns the bound address in host:port form.
func (l *Listener) Addr() string { return l.ln.Addr().String() }

// Close releases the port without a rendezvous (error-path cleanup;
// Rendezvous hands the listener to the NetComm it returns).
func (l *Listener) Close() error { return l.ln.Close() }

// Rendezvous accepts workers until ranks 1..size-1 have all joined and
// returns the coordinator endpoint (rank 0). A hello with the wrong
// protocol version, an out-of-range rank, or an already-joined rank is
// rejected with a reason frame and does not count toward the roster.
// If the roster is incomplete when Options.RendezvousTimeout expires,
// every accepted connection is torn down and an error returned.
func (l *Listener) Rendezvous(size int, opts Options) (*NetComm, error) {
	opts = opts.withDefaults()
	// Causal stamping starts before the first connect event so every
	// coordinator-side event of a distributed run carries a clock.
	opts.Trace.EnableCausal(0)
	if size < 2 {
		_ = l.ln.Close()
		return nil, fmt.Errorf("netcomm: roster size %d < 2 (coordinator + at least one worker)", size)
	}
	c := newNetComm(0, size, opts)
	c.ln = l.ln
	deadline := time.Now().Add(opts.RendezvousTimeout)
	if tl, ok := l.ln.(*net.TCPListener); ok {
		if err := tl.SetDeadline(deadline); err != nil {
			c.abort()
			return nil, fmt.Errorf("netcomm: rendezvous: %w", err)
		}
	}
	for c.peerCount() < size-1 {
		conn, err := l.ln.Accept()
		if err != nil {
			joined := c.peerCount()
			c.abort()
			return nil, fmt.Errorf("netcomm: rendezvous: %d of %d workers joined: %w", joined, size-1, err)
		}
		c.admit(conn, deadline)
	}
	if tl, ok := l.ln.(*net.TCPListener); ok {
		_ = tl.SetDeadline(time.Time{}) // clear; failure only shortens the reject loop
	}
	// Keep answering latecomers (retry ghosts of already-joined ranks,
	// stray dials) with a reject frame instead of letting them hang.
	c.wg.Add(1)
	go c.rejectLoop()
	return c, nil
}

// admit runs the accept-side handshake on one connection: read the
// hello, validate it, welcome or reject. Malformed handshakes are
// dropped silently — the dialer retries or times out.
func (c *NetComm) admit(conn net.Conn, deadline time.Time) {
	_ = conn.SetDeadline(deadline)
	br := bufio.NewReader(conn)
	ft, body, err := readFrame(br)
	if err != nil || ft != frameHello {
		_ = conn.Close()
		return
	}
	rank, ver, err := decodeHello(body)
	if err != nil {
		_ = conn.Close()
		return
	}
	reason := ""
	switch {
	case ver != ProtocolVersion:
		reason = fmt.Sprintf("protocol version %d, coordinator speaks %d", ver, ProtocolVersion)
	case rank < 1 || rank >= c.size:
		reason = fmt.Sprintf("rank %d outside roster [1,%d]", rank, c.size-1)
	case c.hasPeer(rank):
		reason = fmt.Sprintf("rank %d already joined", rank)
	}
	if reason != "" {
		_ = writeFrame(conn, frameReject, appendReject(nil, reason))
		_ = conn.Close()
		return
	}
	if err := writeFrame(conn, frameWelcome, appendWelcome(nil, c.size)); err != nil {
		_ = conn.Close()
		return
	}
	_ = conn.SetDeadline(time.Time{})
	c.addPeer(rank, conn, br)
}

// rejectLoop answers post-rendezvous connection attempts with a reject
// frame; it exits when Close shuts the listener.
func (c *NetComm) rejectLoop() {
	defer c.wg.Done()
	defer c.opts.Capture.CapturePanic("netcomm.rejectLoop")
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		c.wg.Add(1)
		go func(conn net.Conn) {
			defer c.wg.Done()
			_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
			br := bufio.NewReader(conn)
			if ft, _, err := readFrame(br); err == nil && ft == frameHello {
				_ = writeFrame(conn, frameReject, appendReject(nil, "roster already complete"))
			}
			_ = conn.Close()
		}(conn)
	}
}

// Dial connects a worker endpoint to the coordinator at addr,
// announcing rank (1-based). Connection failures are retried with
// exponential backoff plus seeded jitter until Options.RendezvousTimeout
// expires; an explicit rejection from the coordinator (RejectedError)
// is terminal and not retried. On success the roster size from the
// welcome frame determines Size.
func Dial(addr string, rank int, opts Options) (*NetComm, error) {
	opts = opts.withDefaults()
	if rank < 1 {
		return nil, fmt.Errorf("netcomm: worker rank must be >= 1, got %d", rank)
	}
	// Causal stamping starts before the first dial attempt so even
	// comm.retry events carry Lamport clocks and survive a trace merge.
	opts.Trace.EnableCausal(rank)
	// Jitter comes from an explicitly seeded local generator — rank
	// decorrelates workers started from the same seed.
	rng := rand.New(rand.NewSource(opts.Seed + int64(rank)*7919 + 1))
	deadline := time.Now().Add(opts.RendezvousTimeout)
	backoff := opts.RetryBase
	attempt := 0
	for {
		c, err := dialOnce(addr, rank, opts, deadline)
		if err == nil {
			return c, nil
		}
		var rej *RejectedError
		if errors.As(err, &rej) {
			return nil, err
		}
		attempt++
		opts.Trace.Emit(obs.Event{Kind: obs.KindCommRetry, Rank: rank, Open: attempt, Str: err.Error()})
		if !time.Now().Before(deadline) {
			return nil, fmt.Errorf("netcomm: dial %s as rank %d: gave up after %d attempts: %w",
				addr, rank, attempt, err)
		}
		sleep := backoff + time.Duration(rng.Int63n(int64(backoff)/2+1))
		if remaining := time.Until(deadline); sleep > remaining {
			sleep = remaining
		}
		time.Sleep(sleep)
		backoff *= 2
		if backoff > opts.RetryMax {
			backoff = opts.RetryMax
		}
	}
}

// dialOnce makes a single connection + handshake attempt.
func dialOnce(addr string, rank int, opts Options, deadline time.Time) (*NetComm, error) {
	conn, err := net.DialTimeout("tcp", addr, time.Until(deadline))
	if err != nil {
		return nil, err
	}
	_ = conn.SetDeadline(deadline)
	if err := writeFrame(conn, frameHello, appendHello(nil, rank)); err != nil {
		_ = conn.Close()
		return nil, err
	}
	br := bufio.NewReader(conn)
	ft, body, err := readFrame(br)
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	switch ft {
	case frameWelcome:
		size, err := decodeWelcome(body)
		if err != nil {
			_ = conn.Close()
			return nil, err
		}
		if rank >= size {
			_ = conn.Close()
			return nil, &RejectedError{Reason: fmt.Sprintf("rank %d outside welcomed roster size %d", rank, size)}
		}
		_ = conn.SetDeadline(time.Time{})
		c := newNetComm(rank, size, opts)
		c.addPeer(0, conn, br)
		return c, nil
	case frameReject:
		reason, derr := decodeReject(body)
		if derr != nil {
			reason = "malformed reject frame: " + derr.Error()
		}
		_ = conn.Close()
		return nil, &RejectedError{Reason: reason}
	default:
		_ = conn.Close()
		return nil, fmt.Errorf("netcomm: unexpected frame type %d during handshake", ft)
	}
}

// addPeer registers a handshaken connection and starts its loops.
func (c *NetComm) addPeer(rank int, conn net.Conn, br *bufio.Reader) {
	p := &peer{
		rank:         rank,
		conn:         conn,
		br:           br,
		bw:           bufio.NewWriterSize(conn, 32<<10),
		out:          comm.NewMailbox(),
		stop:         make(chan struct{}),
		writeTimeout: c.opts.WriteTimeout,
		readWindow:   time.Duration(c.opts.HeartbeatMiss+1) * c.opts.HeartbeatEvery,
	}
	p.lastIn.Store(time.Now().UnixNano())
	c.mu.Lock()
	c.peers[rank] = p
	c.mu.Unlock()
	c.trace.Emit(obs.Event{Kind: obs.KindCommConnect, Rank: rank, Open: c.size,
		Str: conn.RemoteAddr().String()})
	c.wg.Add(3)
	go c.sendLoop(p)
	go c.recvLoop(p)
	go c.heartbeatLoop(p)
}

func (c *NetComm) peerCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.peers)
}

func (c *NetComm) hasPeer(rank int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.peers[rank] != nil
}

// snapshotPeers returns the live peers in ascending rank order, so
// teardown and instrumentation never depend on map iteration order.
func (c *NetComm) snapshotPeers() []*peer {
	c.mu.Lock()
	out := make([]*peer, 0, len(c.peers))
	for _, p := range c.peers {
		out = append(out, p)
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].rank < out[j].rank })
	return out
}

// sendLoop drains one peer's outgoing queue onto the wire, applying the
// fault plan. When the queue is closed (graceful shutdown) it finishes
// the drain, says goodbye, and exits; a write failure tears the peer
// down.
//
//ugo:hotpath driver
func (c *NetComm) sendLoop(p *peer) {
	defer c.wg.Done()
	defer c.opts.Capture.CapturePanic("netcomm.sendLoop")
	var buf []byte
	for {
		//lint:ignore ctxdeadline the outgoing queue blocks by design; peerGone and Close close it, which unblocks Get
		m, ok := p.out.Get()
		if !ok {
			// Queue closed and drained: every queued frame is on the
			// wire. The goodbye tells the remote this is a shutdown,
			// not a crash; an error here just means it already knows.
			_ = p.write(frameGoodbye, nil)
			return
		}
		dup := false
		if r, matched := c.opts.Fault.match(m.Tag); matched {
			switch r.Action {
			case FaultDrop:
				continue
			case FaultDelay:
				time.Sleep(r.Delay)
			case FaultDuplicate:
				dup = true
			case FaultDisconnect:
				c.peerGone(p, errInjected)
				return
			}
		}
		// The frame write is a Lamport send event: stamping here (not at
		// the Send call) still orders every event the sender emitted
		// before Send strictly before the frame, since the clock is
		// monotone. Nil/non-causal tracers yield clock 0 (no causal info).
		buf = AppendMessage(buf[:0], m, c.trace.ClockSend())
		writes := 1
		if dup {
			writes = 2
		}
		for i := 0; i < writes; i++ {
			if err := p.write(frameData, buf); err != nil {
				c.peerGone(p, fmt.Errorf("netcomm: write to rank %d: %w", p.rank, err))
				return
			}
			ins := c.ins.Load()
			ins.bytesOut.Add(int64(len(buf)) + 5)
			ins.framesOut.Inc()
		}
	}
}

// recvLoop reads frames from one peer into the local mailbox until the
// connection fails (peer down) or a goodbye arrives (graceful).
//
//ugo:hotpath driver
func (c *NetComm) recvLoop(p *peer) {
	defer c.wg.Done()
	defer c.opts.Capture.CapturePanic("netcomm.recvLoop")
	var buf []byte // frame body buffer, reused across reads
	for {
		// Re-arm the read deadline each frame: the remote heartbeats
		// every HeartbeatEvery, so a healthy link always beats this
		// window and a dead one cannot park the loop forever.
		_ = p.conn.SetReadDeadline(time.Now().Add(p.readWindow))
		ftype, body, nbuf, err := readFrameInto(p.br, buf)
		buf = nbuf
		if err != nil {
			c.peerGone(p, fmt.Errorf("netcomm: read from rank %d: %w", p.rank, err))
			return
		}
		p.lastIn.Store(time.Now().UnixNano())
		switch ftype {
		case frameData:
			m, clk, derr := DecodeMessage(body)
			if derr != nil {
				c.peerGone(p, fmt.Errorf("netcomm: rank %d sent a malformed frame: %w", p.rank, derr))
				return
			}
			// Merge the sender's Lamport clock before the message becomes
			// visible locally: anything emitted after the delivery is then
			// causally ordered after everything the sender did before it.
			c.trace.ClockRecv(clk)
			ins := c.ins.Load()
			ins.bytesIn.Add(int64(len(body)) + 5)
			ins.framesIn.Inc()
			c.inbox.Put(m)
		case frameHeartbeat:
			// lastIn already refreshed; nothing else to do.
		case frameGoodbye:
			c.peerGone(p, nil)
			return
		default:
			// Unknown frame types are skipped for forward compatibility;
			// the version handshake keeps incompatible peers out anyway.
		}
	}
}

// heartbeatLoop sends a heartbeat every HeartbeatEvery and declares the
// peer dead after HeartbeatMiss silent intervals.
//
//ugo:hotpath driver
func (c *NetComm) heartbeatLoop(p *peer) {
	defer c.wg.Done()
	defer c.opts.Capture.CapturePanic("netcomm.heartbeatLoop")
	ticker := time.NewTicker(c.opts.HeartbeatEvery)
	defer ticker.Stop()
	miss := time.Duration(c.opts.HeartbeatMiss) * c.opts.HeartbeatEvery
	for {
		select {
		case <-p.stop:
			return
		case <-ticker.C:
			if err := p.write(frameHeartbeat, nil); err != nil {
				c.peerGone(p, fmt.Errorf("netcomm: heartbeat to rank %d: %w", p.rank, err))
				return
			}
			c.ins.Load().heartbeats.Inc()
			c.trace.Emit(obs.Event{Kind: obs.KindCommHeartbeat, Rank: p.rank})
			if age := time.Since(time.Unix(0, p.lastIn.Load())); age > miss {
				// The cause text reaches the comm.peerdown trace event
				// (walldet): state the configured rule, not the measured
				// wall-clock age, so traces stay deterministic.
				c.peerGone(p, fmt.Errorf("netcomm: rank %d heartbeat timeout (%d missed intervals of %v)",
					p.rank, c.opts.HeartbeatMiss, c.opts.HeartbeatEvery))
				return
			}
		}
	}
}

// peerGone tears one peer down exactly once. cause == nil is a graceful
// departure (goodbye received, or our own shutdown); a non-nil cause is
// an ungraceful loss, announced to the local receiver as a synthesized
// TagPeerDown message. A worker losing the coordinator — gracefully or
// not — additionally closes its mailbox: nothing further can arrive, so
// blocked receivers must unwind.
func (c *NetComm) peerGone(p *peer, cause error) {
	p.down.Do(func() {
		close(p.stop)
		_ = p.conn.Close()
		p.out.Close()
		c.mu.Lock()
		delete(c.peers, p.rank)
		c.mu.Unlock()
		if cause != nil && !c.closing.Load() {
			ins := c.ins.Load()
			ins.peerDowns.Inc()
			c.trace.Emit(obs.Event{Kind: obs.KindCommPeerDown, Rank: p.rank, Str: cause.Error()})
			c.inbox.Put(comm.Message{From: p.rank, Tag: comm.TagPeerDown})
		}
		if c.rank != 0 && p.rank == 0 && !c.closing.Load() {
			c.inbox.Close()
		}
	})
}

// Size implements comm.Comm.
func (c *NetComm) Size() int { return c.size }

// Rank returns this endpoint's rank.
func (c *NetComm) Rank() int { return c.rank }

// Send implements comm.Comm: it enqueues m on the peer's outgoing
// queue (or the local mailbox for a self-send) and never blocks. Sends
// to a departed peer or after Close are dropped and counted, mirroring
// the in-process communicators' post-Close semantics.
func (c *NetComm) Send(to int, m comm.Message) {
	if to == c.rank {
		c.inbox.Put(m)
		return
	}
	c.mu.Lock()
	p := c.peers[to]
	c.mu.Unlock()
	if p == nil {
		c.ins.Load().dropped.Inc()
		return
	}
	p.out.Put(m)
	if p.out.Depth() > c.opts.OutboxSoftCap {
		c.ins.Load().overflow.Inc()
	}
}

// Recv implements comm.Comm for this endpoint's own rank: it blocks
// until a message arrives, and after Close (or loss of the
// coordinator) drains the queue before returning a synthesized
// termination message (From = -1, Tag = TagTermination).
func (c *NetComm) Recv(rank int) comm.Message {
	c.mustBeLocal(rank)
	//lint:ignore ctxdeadline Recv's contract is to block; Close and coordinator loss close the inbox, which unblocks Get
	m, ok := c.inbox.Get()
	if !ok {
		return comm.Message{From: -1, Tag: comm.TagTermination}
	}
	return m
}

// TryRecv implements comm.Comm for this endpoint's own rank.
func (c *NetComm) TryRecv(rank int) (comm.Message, bool) {
	c.mustBeLocal(rank)
	return c.inbox.TryGet()
}

// Closed reports whether this endpoint's receive path has shut down
// (Close was called, or a worker lost its coordinator). Pollers use it
// to exit cleanly instead of spinning on an empty mailbox.
func (c *NetComm) Closed() bool { return c.inbox.Closed() }

// mustBeLocal guards the single-rank receive path: a NetComm endpoint
// holds mail for its own rank only, so receiving for another rank is a
// wiring bug worth failing loudly on.
func (c *NetComm) mustBeLocal(rank int) {
	if rank != c.rank {
		panic(fmt.Sprintf("netcomm: endpoint is rank %d, cannot receive for rank %d", c.rank, rank))
	}
}

// Instrument registers this endpoint's metrics in reg: the local
// mailbox depth ("comm.mailbox.depth[rank]", matching the in-process
// communicators), per-peer outgoing queue depths
// ("comm.net.outbox.depth[rank]"), and the comm.net.* transfer
// counters. Construction via Options.Metrics does this automatically.
func (c *NetComm) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	c.inbox.SetDepthGauge(reg.Gauge(fmt.Sprintf("comm.mailbox.depth[%d]", c.rank)))
	for _, p := range c.snapshotPeers() {
		p.out.SetDepthGauge(reg.Gauge(fmt.Sprintf("comm.net.outbox.depth[%d]", p.rank)))
	}
	c.ins.Store(&instruments{
		bytesOut:   reg.Counter("comm.net.bytes.out"),
		bytesIn:    reg.Counter("comm.net.bytes.in"),
		framesOut:  reg.Counter("comm.net.frames.out"),
		framesIn:   reg.Counter("comm.net.frames.in"),
		dropped:    reg.Counter("comm.net.dropped"),
		overflow:   reg.Counter("comm.net.outbox.overflow"),
		heartbeats: reg.Counter("comm.net.heartbeats"),
		peerDowns:  reg.Counter("comm.net.peerdowns"),
	})
}

// abort tears down a partially assembled endpoint (failed rendezvous).
func (c *NetComm) abort() {
	c.closing.Store(true)
	for _, p := range c.snapshotPeers() {
		c.peerGone(p, nil)
	}
	if c.ln != nil {
		_ = c.ln.Close()
	}
	c.wg.Wait()
	c.inbox.Close()
}

// Close shuts the endpoint down gracefully: the listener stops
// accepting, every outgoing queue is closed so its send loop drains
// all in-flight frames and says goodbye, and the loops are awaited up
// to Options.CloseTimeout before remaining connections are forced
// shut. Safe to call more than once.
func (c *NetComm) Close() error {
	c.closeOnce.Do(func() {
		c.closing.Store(true)
		if c.ln != nil {
			_ = c.ln.Close()
		}
		for _, p := range c.snapshotPeers() {
			p.out.Close()
		}
		done := make(chan struct{})
		go func() {
			c.wg.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(c.opts.CloseTimeout):
			for _, p := range c.snapshotPeers() {
				c.peerGone(p, nil)
			}
			<-done
		}
		c.inbox.Close()
	})
	return nil
}
