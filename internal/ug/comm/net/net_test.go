package netcomm

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/ug/comm"
)

// quickOpts keeps the tests snappy: short heartbeats, short retries.
func quickOpts() Options {
	return Options{
		HeartbeatEvery:    20 * time.Millisecond,
		RendezvousTimeout: 10 * time.Second,
		RetryBase:         2 * time.Millisecond,
		CloseTimeout:      2 * time.Second,
	}
}

// rendezvous assembles a coordinator and size-1 workers over loopback.
// wOpts[i] configures worker rank i+1 (missing entries use quickOpts).
func rendezvous(t *testing.T, size int, coOpts Options, wOpts ...Options) (*NetComm, []*NetComm) {
	t.Helper()
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	type coRes struct {
		c   *NetComm
		err error
	}
	coCh := make(chan coRes, 1)
	go func() {
		c, err := ln.Rendezvous(size, coOpts)
		coCh <- coRes{c, err}
	}()
	workers := make([]*NetComm, size-1)
	for r := 1; r < size; r++ {
		o := quickOpts()
		if r-1 < len(wOpts) {
			o = wOpts[r-1]
		}
		w, err := Dial(ln.Addr(), r, o)
		if err != nil {
			t.Fatalf("dial rank %d: %v", r, err)
		}
		workers[r-1] = w
	}
	co := <-coCh
	if co.err != nil {
		t.Fatal(co.err)
	}
	t.Cleanup(func() {
		_ = co.c.Close()
		for _, w := range workers {
			_ = w.Close()
		}
	})
	return co.c, workers
}

func TestRendezvousExchange(t *testing.T) {
	reg := obs.NewRegistry()
	coOpts := quickOpts()
	coOpts.Metrics = reg
	co, workers := rendezvous(t, 3, coOpts)
	if co.Size() != 3 || co.Rank() != 0 {
		t.Fatalf("coordinator: size %d rank %d", co.Size(), co.Rank())
	}
	for i, w := range workers {
		if w.Size() != 3 || w.Rank() != i+1 {
			t.Fatalf("worker %d: size %d rank %d", i, w.Size(), w.Rank())
		}
	}
	// Coordinator → workers.
	for r := 1; r <= 2; r++ {
		co.Send(r, comm.Message{From: 0, Tag: comm.TagSubproblem, Payload: []byte{byte(r)}})
	}
	for i, w := range workers {
		m := w.Recv(i + 1)
		if m.Tag != comm.TagSubproblem || m.From != 0 || m.Payload[0] != byte(i+1) {
			t.Fatalf("worker %d got %+v", i, m)
		}
	}
	// Workers → coordinator, plus a coordinator self-send.
	for i, w := range workers {
		w.Send(0, comm.Message{From: i + 1, Tag: comm.TagStatus})
	}
	co.Send(0, comm.Message{From: 0, Tag: comm.TagStop})
	seen := map[int]bool{}
	var tags []comm.Tag
	for len(tags) < 3 {
		m := co.Recv(0)
		tags = append(tags, m.Tag)
		seen[m.From] = true
	}
	if !seen[0] || !seen[1] || !seen[2] {
		t.Fatalf("missing senders: %v (tags %v)", seen, tags)
	}
	if got := reg.Counter("comm.net.bytes.out").Value(); got <= 0 {
		t.Fatalf("bytes.out counter not flowing: %d", got)
	}
	if got := reg.Counter("comm.net.frames.in").Value(); got < 2 {
		t.Fatalf("frames.in counter not flowing: %d", got)
	}
}

func TestDuplicateRankRejected(t *testing.T) {
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coCh := make(chan error, 1)
	var co *NetComm
	go func() {
		c, err := ln.Rendezvous(3, quickOpts())
		co = c
		coCh <- err
	}()
	w1, err := Dial(ln.Addr(), 1, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer w1.Close()
	var rej *RejectedError
	if _, err := Dial(ln.Addr(), 1, quickOpts()); !errors.As(err, &rej) {
		t.Fatalf("duplicate rank: got %v, want RejectedError", err)
	} else if !strings.Contains(rej.Reason, "already joined") {
		t.Fatalf("reject reason: %q", rej.Reason)
	}
	w2, err := Dial(ln.Addr(), 2, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if err := <-coCh; err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	// Post-rendezvous dials are answered too, not left hanging.
	if _, err := Dial(ln.Addr(), 2, quickOpts()); !errors.As(err, &rej) {
		t.Fatalf("late dial: got %v, want RejectedError", err)
	}
}

func TestVersionMismatchRejected(t *testing.T) {
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coCh := make(chan error, 1)
	var co *NetComm
	go func() {
		c, err := ln.Rendezvous(2, quickOpts())
		co = c
		coCh <- err
	}()
	// Hand-rolled hello from a build speaking a future protocol version.
	conn, err := net.Dial("tcp", ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	hello := appendHello(nil, 1)
	hello[5] = 99 // low byte of the big-endian uint16 version field
	if err := writeFrame(conn, frameHello, hello); err != nil {
		t.Fatal(err)
	}
	ft, body, err := readFrame(bufio.NewReader(conn))
	if err != nil || ft != frameReject {
		t.Fatalf("want reject frame, got type %d err %v", ft, err)
	}
	reason, err := decodeReject(body)
	if err != nil || !strings.Contains(reason, "protocol version") {
		t.Fatalf("reject reason %q err %v", reason, err)
	}
	_ = conn.Close()
	// The rendezvous is still open for a compatible worker.
	w, err := Dial(ln.Addr(), 1, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := <-coCh; err != nil {
		t.Fatal(err)
	}
	_ = co.Close()
}

func TestDialRetriesUntilListenerAppears(t *testing.T) {
	// Reserve a port, release it, and dial it before anyone listens: the
	// worker must retry (with comm.retry events) until the coordinator
	// shows up.
	tmp, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := tmp.Addr().String()
	_ = tmp.Close()

	sink := &obs.MemSink{}
	wOpts := quickOpts()
	wOpts.Trace = obs.NewTracer(sink)
	type dialRes struct {
		c   *NetComm
		err error
	}
	dialCh := make(chan dialRes, 1)
	go func() {
		c, err := Dial(addr, 1, wOpts)
		dialCh <- dialRes{c, err}
	}()
	time.Sleep(100 * time.Millisecond)
	ln, err := Listen(addr)
	if err != nil {
		t.Fatalf("re-listen on %s: %v", addr, err)
	}
	co, err := ln.Rendezvous(2, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	w := <-dialCh
	if w.err != nil {
		t.Fatal(w.err)
	}
	defer w.c.Close()
	if retries := sink.Filter(obs.KindCommRetry); len(retries) == 0 {
		t.Fatal("no comm.retry events for a dial that had to wait")
	}
}

func TestRankOutsideRosterIsTerminal(t *testing.T) {
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coCh := make(chan error, 1)
	var co *NetComm
	go func() {
		c, err := ln.Rendezvous(2, quickOpts())
		co = c
		coCh <- err
	}()
	var rej *RejectedError
	if _, err := Dial(ln.Addr(), 9, quickOpts()); !errors.As(err, &rej) {
		t.Fatalf("oversized rank: got %v, want RejectedError", err)
	}
	w, err := Dial(ln.Addr(), 1, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := <-coCh; err != nil {
		t.Fatal(err)
	}
	_ = co.Close()
}

// recvWithTimeout guards blocking Recv calls in failure tests so a
// regression shows up as a test failure, not a suite hang.
func recvWithTimeout(t *testing.T, c *NetComm, d time.Duration) comm.Message {
	t.Helper()
	ch := make(chan comm.Message, 1)
	go func() { ch <- c.Recv(c.Rank()) }()
	select {
	case m := <-ch:
		return m
	case <-time.After(d):
		t.Fatalf("rank %d: no message within %v", c.Rank(), d)
		return comm.Message{}
	}
}

func TestAbruptDisconnectSynthesizesPeerDown(t *testing.T) {
	sink := &obs.MemSink{}
	coOpts := quickOpts()
	coOpts.Trace = obs.NewTracer(sink)
	co, workers := rendezvous(t, 2, coOpts)
	// Sever the worker's socket without a goodbye — the wire view of a
	// crashed worker process.
	for _, p := range workers[0].snapshotPeers() {
		_ = p.conn.Close()
	}
	m := recvWithTimeout(t, co, 5*time.Second)
	if m.Tag != comm.TagPeerDown || m.From != 1 {
		t.Fatalf("coordinator got %+v, want peerDown from 1", m)
	}
	if co.hasPeer(1) {
		t.Fatal("dead peer still in roster")
	}
	if evs := sink.Filter(obs.KindCommPeerDown); len(evs) == 0 {
		t.Fatal("no comm.peerdown trace event")
	}
	// The worker side sees the same loss and unwinds: first its own
	// peer-down notice, then mailbox closure.
	wm := recvWithTimeout(t, workers[0], 5*time.Second)
	if wm.Tag != comm.TagPeerDown || wm.From != 0 {
		t.Fatalf("worker got %+v, want peerDown from 0", wm)
	}
	tm := recvWithTimeout(t, workers[0], 5*time.Second)
	if tm.Tag != comm.TagTermination || tm.From != -1 {
		t.Fatalf("worker got %+v, want synthesized termination", tm)
	}
	if !workers[0].Closed() {
		t.Fatal("worker transport not closed after losing its coordinator")
	}
}

func TestHeartbeatTimeoutDeclaresPeerDead(t *testing.T) {
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coOpts := quickOpts()
	coOpts.HeartbeatEvery = 10 * time.Millisecond
	coOpts.HeartbeatMiss = 3
	coCh := make(chan error, 1)
	var co *NetComm
	go func() {
		c, err := ln.Rendezvous(2, coOpts)
		co = c
		coCh <- err
	}()
	// A hand-rolled worker that completes the handshake and then goes
	// silent: no heartbeats, no data, but the socket stays open — the
	// failure TCP alone never reports.
	conn, err := net.Dial("tcp", ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeFrame(conn, frameHello, appendHello(nil, 1)); err != nil {
		t.Fatal(err)
	}
	if ft, _, err := readFrame(bufio.NewReader(conn)); err != nil || ft != frameWelcome {
		t.Fatalf("handshake: type %d err %v", ft, err)
	}
	if err := <-coCh; err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	m := recvWithTimeout(t, co, 5*time.Second)
	if m.Tag != comm.TagPeerDown || m.From != 1 {
		t.Fatalf("got %+v, want peerDown from silent rank 1", m)
	}
}

func TestFaultDropDelayDuplicate(t *testing.T) {
	wOpts := quickOpts()
	wOpts.Fault = NewFaultPlan(
		FaultRule{Tag: comm.TagStatus, Nth: 1, Action: FaultDrop},
		FaultRule{Tag: comm.TagStatus, Nth: 2, Action: FaultDuplicate},
		FaultRule{Tag: comm.TagStatus, Nth: 3, Action: FaultDelay, Delay: time.Millisecond},
	)
	co, workers := rendezvous(t, 2, quickOpts(), wOpts)
	w := workers[0]
	for i := byte(1); i <= 3; i++ {
		w.Send(0, comm.Message{From: 1, Tag: comm.TagStatus, Payload: []byte{i}})
	}
	var got []byte
	for len(got) < 3 {
		m := recvWithTimeout(t, co, 5*time.Second)
		if m.Tag != comm.TagStatus {
			t.Fatalf("unexpected %+v", m)
		}
		got = append(got, m.Payload[0])
	}
	if fmt.Sprint(got) != fmt.Sprint([]byte{2, 2, 3}) {
		t.Fatalf("fault plan produced %v, want [2 2 3] (1 dropped, 2 duplicated)", got)
	}
}

func TestFaultDisconnectCompletesWithoutDeadlock(t *testing.T) {
	wOpts := quickOpts()
	wOpts.Fault = NewFaultPlan(FaultRule{Tag: comm.TagNode, Nth: 1, Action: FaultDisconnect})
	co, workers := rendezvous(t, 2, quickOpts(), wOpts)
	w := workers[0]
	w.Send(0, comm.Message{From: 1, Tag: comm.TagNode, Payload: []byte("boom")})
	m := recvWithTimeout(t, co, 5*time.Second)
	if m.Tag != comm.TagPeerDown || m.From != 1 {
		t.Fatalf("coordinator got %+v, want peerDown from 1", m)
	}
	// The injecting side unwinds like a crash too: peer-down notice,
	// then the synthesized termination of a closed mailbox.
	if m := recvWithTimeout(t, w, 5*time.Second); m.Tag != comm.TagPeerDown {
		t.Fatalf("worker got %+v, want peerDown", m)
	}
	if m := recvWithTimeout(t, w, 5*time.Second); m.Tag != comm.TagTermination {
		t.Fatalf("worker got %+v, want synthesized termination", m)
	}
}

func TestGracefulCloseDrainsInFlight(t *testing.T) {
	const n = 200
	co, workers := rendezvous(t, 2, quickOpts())
	w := workers[0]
	for i := 0; i < n; i++ {
		w.Send(0, comm.Message{From: 1, Tag: comm.TagStatus, Payload: []byte{byte(i)}})
	}
	// Close races the send loop's drain on purpose: every queued frame
	// must still arrive, followed by a goodbye — never a peer-down.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		m := recvWithTimeout(t, co, 5*time.Second)
		if m.Tag != comm.TagStatus || int(m.Payload[0]) != i%256 {
			t.Fatalf("message %d: got %+v", i, m)
		}
	}
	// Allow the goodbye to land, then verify the departure was graceful.
	deadline := time.Now().Add(time.Second)
	for co.hasPeer(1) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if co.hasPeer(1) {
		t.Fatal("goodbye not processed")
	}
	if m, ok := co.TryRecv(0); ok {
		t.Fatalf("unexpected trailing message %+v", m)
	}
}

func TestSendAfterPeerGoneIsCountedDrop(t *testing.T) {
	reg := obs.NewRegistry()
	coOpts := quickOpts()
	coOpts.Metrics = reg
	co, workers := rendezvous(t, 2, coOpts)
	_ = workers[0].Close()
	deadline := time.Now().Add(time.Second)
	for co.hasPeer(1) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	co.Send(1, comm.Message{From: 0, Tag: comm.TagStop})
	if got := reg.Counter("comm.net.dropped").Value(); got != 1 {
		t.Fatalf("dropped counter = %d, want 1", got)
	}
}
