// Package netcomm implements the distributed-memory TCP transport of
// the UG communicator abstraction (import path internal/ug/comm/net):
// the coordinator and each ParaSolver run as separate OS processes on
// one or many hosts, connected through a length-prefixed deterministic
// binary wire protocol with a rendezvous handshake, per-peer send
// loops, heartbeats, and built-in fault injection for tests. It plays
// the role MPI plays for the paper's ug[SCIP-*, MPI] instantiations.
//
// Wire format. Every frame is
//
//	uint32 big-endian body length | uint8 frame type | body
//
// with five frame types:
//
//	data      int32 from | int8 tag | uint64 lamport clock | uint32 payload length | payload
//	hello     uint32 magic | uint16 protocol version | int32 rank
//	welcome   uint16 protocol version | int32 roster size
//	reject    uint16 reason length | reason bytes
//	heartbeat (empty body)
//	goodbye   (empty body)
//
// The encoding has a fixed field order and no reflection, so identical
// messages encode to identical bytes on every architecture — the same
// determinism contract the obs trace codec follows, and the reason gob
// (whose stream format depends on type-registration order) stays off
// the wire.
package netcomm

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/ug/comm"
)

// ProtocolVersion is the rendezvous protocol version. A coordinator
// rejects hellos carrying any other version: mixed-build rosters fail
// at connect time instead of desynchronizing mid-run. Version 2 added
// the Lamport clock field to data frames (distributed trace merging).
const ProtocolVersion uint16 = 2

// protocolMagic opens every hello frame ("UGN" + version byte slot);
// it rejects strangers dialing the rendezvous port by accident.
const protocolMagic uint32 = 0x55474E31 // "UGN1"

// Frame types.
const (
	frameData      byte = 0
	frameHello     byte = 1
	frameWelcome   byte = 2
	frameReject    byte = 3
	frameHeartbeat byte = 4
	frameGoodbye   byte = 5
)

// maxFrameBody bounds one frame body (64 MiB). Subproblem payloads are
// kilobytes in practice; the cap keeps a corrupt or hostile length
// prefix from allocating unbounded memory.
const maxFrameBody = 64 << 20

// AppendMessage appends the deterministic binary encoding of m's data
// frame body (from, tag, lamport clock, payload) to buf and returns the
// extended slice. clock is the sender's Lamport timestamp for this send
// (0 when tracing is off — the receiver then treats the frame as
// carrying no causal information). Exported so the codec tests can pin
// byte-level determinism and cross-check round-trips against GobComm's
// frame encoding.
func AppendMessage(buf []byte, m comm.Message, clock int64) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(int32(m.From)))
	buf = append(buf, byte(m.Tag))
	buf = binary.BigEndian.AppendUint64(buf, uint64(clock))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.Payload)))
	return append(buf, m.Payload...)
}

// DecodeMessage decodes a data frame body produced by AppendMessage,
// returning the message and the sender's Lamport clock.
func DecodeMessage(body []byte) (comm.Message, int64, error) {
	if len(body) < 17 {
		return comm.Message{}, 0, fmt.Errorf("netcomm: data frame truncated: %d bytes", len(body))
	}
	m := comm.Message{
		From: int(int32(binary.BigEndian.Uint32(body[:4]))),
		Tag:  comm.Tag(int8(body[4])),
	}
	clock := int64(binary.BigEndian.Uint64(body[5:13]))
	n := binary.BigEndian.Uint32(body[13:17])
	if uint32(len(body)-17) != n {
		return comm.Message{}, 0, fmt.Errorf("netcomm: payload length %d != remaining %d", n, len(body)-17)
	}
	if n > 0 {
		//lint:ignore hotalloc payload ownership transfers to the mailbox; the frame buffer is reused underneath it
		m.Payload = append([]byte(nil), body[17:]...)
	}
	return m, clock, nil
}

// appendHello encodes a hello frame body for rank.
func appendHello(buf []byte, rank int) []byte {
	buf = binary.BigEndian.AppendUint32(buf, protocolMagic)
	buf = binary.BigEndian.AppendUint16(buf, ProtocolVersion)
	return binary.BigEndian.AppendUint32(buf, uint32(int32(rank)))
}

// decodeHello decodes a hello frame body, returning the announced rank
// and protocol version. The magic is checked here; version policy is
// the caller's.
func decodeHello(body []byte) (rank int, version uint16, err error) {
	if len(body) != 10 {
		return 0, 0, fmt.Errorf("netcomm: hello frame is %d bytes, want 10", len(body))
	}
	if magic := binary.BigEndian.Uint32(body[:4]); magic != protocolMagic {
		return 0, 0, fmt.Errorf("netcomm: bad hello magic %#x", magic)
	}
	version = binary.BigEndian.Uint16(body[4:6])
	rank = int(int32(binary.BigEndian.Uint32(body[6:10])))
	return rank, version, nil
}

// appendWelcome encodes a welcome frame body carrying the roster size.
func appendWelcome(buf []byte, size int) []byte {
	buf = binary.BigEndian.AppendUint16(buf, ProtocolVersion)
	return binary.BigEndian.AppendUint32(buf, uint32(int32(size)))
}

// decodeWelcome decodes a welcome frame body.
func decodeWelcome(body []byte) (size int, err error) {
	if len(body) != 6 {
		return 0, fmt.Errorf("netcomm: welcome frame is %d bytes, want 6", len(body))
	}
	if v := binary.BigEndian.Uint16(body[:2]); v != ProtocolVersion {
		return 0, fmt.Errorf("netcomm: welcome protocol version %d, want %d", v, ProtocolVersion)
	}
	return int(int32(binary.BigEndian.Uint32(body[2:6]))), nil
}

// appendReject encodes a reject frame body with a human-readable reason.
func appendReject(buf []byte, reason string) []byte {
	if len(reason) > 1<<15 {
		reason = reason[:1<<15]
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(reason)))
	return append(buf, reason...)
}

// decodeReject decodes a reject frame body.
func decodeReject(body []byte) (string, error) {
	if len(body) < 2 {
		return "", fmt.Errorf("netcomm: reject frame truncated")
	}
	n := int(binary.BigEndian.Uint16(body[:2]))
	if len(body)-2 != n {
		return "", fmt.Errorf("netcomm: reject reason length %d != remaining %d", n, len(body)-2)
	}
	return string(body[2:]), nil
}

// writeFrame writes one frame (length prefix, type byte, body) to w.
// The caller owns synchronization on w.
func writeFrame(w io.Writer, ftype byte, body []byte) error {
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(body)))
	hdr[4] = ftype
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(body) > 0 {
		if _, err := w.Write(body); err != nil {
			return err
		}
	}
	return nil
}

// readFrameInto reads one frame from r, enforcing maxFrameBody. The
// body is read into buf (grown only when capacity is short) and
// aliases the returned newBuf, which the caller passes back in on the
// next call: the steady-state receive path then allocates nothing.
func readFrameInto(r *bufio.Reader, buf []byte) (ftype byte, body, newBuf []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, buf, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > maxFrameBody {
		return 0, nil, buf, fmt.Errorf("netcomm: frame body %d bytes exceeds limit %d", n, maxFrameBody)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	body = buf[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, buf, fmt.Errorf("netcomm: truncated frame body: %w", err)
	}
	return hdr[4], body, buf, nil
}

// readFrame reads one frame from r into a fresh buffer — the one-shot
// variant used during the rendezvous handshake.
func readFrame(r *bufio.Reader) (ftype byte, body []byte, err error) {
	ftype, body, _, err = readFrameInto(r, nil)
	return ftype, body, err
}
