package ug

import (
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/ug/comm"
)

// scriptedSession builds a Session for rank 1 over a 2-rank shared
// memory comm, so tests can feed it coordinator messages and inspect
// what it sends back to rank 0.
func scriptedSession(initial *Solution, statusSec, shipSec float64) (*Session, *comm.ChannelComm) {
	c := comm.NewChannelComm(2)
	return newSession(1, c, initial, statusSec, shipSec), c
}

// expectStatus asserts the next rank-0 message is a status report and
// decodes it.
func expectStatus(t *testing.T, c *comm.ChannelComm) StatusReport {
	t.Helper()
	m, ok := c.TryRecv(0)
	if !ok {
		t.Fatal("no message pending for the coordinator")
	}
	if m.Tag != comm.TagStatus {
		t.Fatalf("tag = %v, want status", m.Tag)
	}
	var st StatusReport
	dec(m.Payload, &st)
	return st
}

// TestSessionStatusCadence pins the status-report path: the first Poll
// always reports (the "since" timestamp starts at zero), a second Poll
// inside the interval stays silent, and the report carries the caller's
// StatusReport verbatim.
func TestSessionStatusCadence(t *testing.T) {
	s, c := scriptedSession(nil, 3600, 3600) // one-hour cadences: only the first fires
	s.Poll(StatusReport{Bound: 12.5, Open: 3, Nodes: 7, RootTime: 0.25})
	st := expectStatus(t, c)
	if st.Bound != 12.5 || st.Open != 3 || st.Nodes != 7 || st.RootTime != 0.25 {
		t.Fatalf("status round-trip mangled: %+v", st)
	}
	s.Poll(StatusReport{Bound: 13, Open: 2, Nodes: 9})
	if m, ok := c.TryRecv(0); ok {
		t.Fatalf("second poll inside the interval sent %v", m.Tag)
	}
}

// TestSessionCollectModeShipping drives the node-shipping path end to
// end: startCollect flips WantNode on (given enough local open nodes),
// ShipNode moves a subproblem to the coordinator and emits a
// worker.ship event, stopCollect flips WantNode back off.
func TestSessionCollectModeShipping(t *testing.T) {
	s, c := scriptedSession(nil, 3600, 3600)
	sink := &obs.MemSink{}
	s.trace = obs.NewTracer(sink)

	cmd := s.Poll(StatusReport{Open: 5})
	if cmd.WantNode {
		t.Fatal("WantNode before collect mode started")
	}
	expectStatus(t, c) // drain the first poll's status report
	c.Send(1, comm.Message{From: 0, Tag: comm.TagStartCollect})
	cmd = s.Poll(StatusReport{Open: 5})
	if !cmd.WantNode {
		t.Fatal("WantNode not set in collect mode with open nodes")
	}

	sub := Subproblem{ID: 9, Depth: 4, Bound: 2.5, Payload: []byte{1, 2}}
	s.ShipNode(sub)
	m, ok := c.TryRecv(0)
	if !ok || m.Tag != comm.TagNode {
		t.Fatalf("shipped node not delivered (ok=%v tag=%v)", ok, m.Tag)
	}
	var got Subproblem
	dec(m.Payload, &got)
	if got.ID != 9 || got.Bound != 2.5 || got.Depth != 4 {
		t.Fatalf("shipped subproblem mangled: %+v", got)
	}
	ships := sink.Filter(obs.KindWorkerShip)
	if len(ships) != 1 || ships[0].Rank != 1 || ships[0].Dual != 2.5 {
		t.Fatalf("worker.ship event wrong: %+v", ships)
	}

	c.Send(1, comm.Message{From: 0, Tag: comm.TagStopCollect})
	// Collect mode is off; WantNode must stay off even though the ship
	// interval has long elapsed.
	if cmd := s.Poll(StatusReport{Open: 5}); cmd.WantNode {
		t.Fatal("WantNode after collect mode stopped")
	}
}

// TestSessionCollectNeedsOpenNodes: a solver with at most one open node
// never gives work away (it would starve itself).
func TestSessionCollectNeedsOpenNodes(t *testing.T) {
	s, c := scriptedSession(nil, 3600, 3600)
	c.Send(1, comm.Message{From: 0, Tag: comm.TagStartCollect})
	if cmd := s.Poll(StatusReport{Open: 1}); cmd.WantNode {
		t.Fatal("WantNode with a single open node")
	}
}

// TestSessionSolutionFlow covers both solution directions: an incoming
// incumbent surfaces in Command.Solutions and raises the reporting bar;
// FoundSolution forwards only improvements and emits worker.sol.
func TestSessionSolutionFlow(t *testing.T) {
	s, c := scriptedSession(&Solution{Obj: 100}, 3600, 3600)
	sink := &obs.MemSink{}
	s.trace = obs.NewTracer(sink)

	// Worse than the attached incumbent: dropped without traffic.
	s.FoundSolution(Solution{Obj: 150})
	s.Poll(StatusReport{}) // drain the first status report
	expectStatus(t, c)
	if m, ok := c.TryRecv(0); ok {
		t.Fatalf("non-improving solution sent %v", m.Tag)
	}

	// Improvement: forwarded and traced.
	s.FoundSolution(Solution{Obj: 90})
	m, ok := c.TryRecv(0)
	if !ok || m.Tag != comm.TagSolution {
		t.Fatalf("improving solution not forwarded (ok=%v tag=%v)", ok, m.Tag)
	}
	var sol Solution
	dec(m.Payload, &sol)
	if sol.Obj != 90 {
		t.Fatalf("forwarded objective %v", sol.Obj)
	}
	if evs := sink.Filter(obs.KindWorkerSol); len(evs) != 1 || evs[0].Primal != 90 {
		t.Fatalf("worker.sol event wrong: %+v", evs)
	}

	// Coordinator broadcasts a still-better incumbent: it must appear in
	// the command and raise the bar, so re-finding 85 stays silent.
	c.Send(1, comm.Message{From: 0, Tag: comm.TagSolution, Payload: enc(Solution{Obj: 80})})
	cmd := s.Poll(StatusReport{})
	if len(cmd.Solutions) != 1 || cmd.Solutions[0].Obj != 80 {
		t.Fatalf("incoming incumbent not surfaced: %+v", cmd.Solutions)
	}
	s.FoundSolution(Solution{Obj: 85})
	if m, ok := c.TryRecv(0); ok {
		t.Fatalf("solution worse than broadcast incumbent sent %v", m.Tag)
	}
}

// TestSessionStopAndExtract covers the remaining command bits: stop,
// termination, and the racing winner's extract-all order. Both flags
// latch — once seen they stay set on every later Poll.
func TestSessionStopAndExtract(t *testing.T) {
	s, c := scriptedSession(nil, 3600, 3600)
	c.Send(1, comm.Message{From: 0, Tag: comm.TagExtractAll})
	cmd := s.Poll(StatusReport{})
	if !cmd.ExtractAll || cmd.Stop {
		t.Fatalf("extract-all poll: %+v", cmd)
	}
	c.Send(1, comm.Message{From: 0, Tag: comm.TagStop})
	cmd = s.Poll(StatusReport{})
	if !cmd.Stop || !cmd.ExtractAll {
		t.Fatalf("stop poll: %+v", cmd)
	}

	s2, c2 := scriptedSession(nil, 3600, 3600)
	c2.Send(1, comm.Message{From: 0, Tag: comm.TagTermination})
	if cmd := s2.Poll(StatusReport{}); !cmd.Stop {
		t.Fatal("termination did not stop the session")
	}
}

// shipOneWorker is a scripted WorkerSolver: it ships one node, reports
// a solution, then finishes — enough to exercise runWorker's dispatch,
// session wiring and terminated-report path deterministically.
type shipOneWorker struct{}

func (shipOneWorker) Solve(sub *Subproblem, sess *Session) Outcome {
	sess.ShipNode(Subproblem{ID: sub.ID + 1, Bound: sub.Bound, Payload: []byte{7}})
	sess.FoundSolution(Solution{Obj: 42, Payload: []byte{3}})
	return Outcome{Completed: true, Nodes: 5, RootTime: 0.125, LPIterations: 11, CutsAdded: 2}
}

type shipOneFactory struct{}

func (shipOneFactory) GlobalPresolve() ([]byte, *Solution, error) { return nil, nil, nil }
func (shipOneFactory) CreateWorker(settingsIdx int) WorkerSolver  { return shipOneWorker{} }
func (shipOneFactory) NumSettings() int                           { return 1 }
func (shipOneFactory) SettingsName(idx int) string                { return "default" }

// TestRunWorkerLoop drives the ParaSolver main loop directly: dispatch
// → node ship + solution + terminated report, then clean exit on the
// termination tag. The worker-side trace must carry the ship and
// solution events with the worker's rank.
func TestRunWorkerLoop(t *testing.T) {
	c := comm.NewChannelComm(2)
	sink := &obs.MemSink{}
	tracer := obs.NewTracer(sink)
	done := make(chan struct{})
	go func() {
		runWorker(1, c, shipOneFactory{}, tracer, false)
		close(done)
	}()

	c.Send(1, comm.Message{From: 0, Tag: comm.TagSubproblem, Payload: enc(workMsg{
		Sub: Subproblem{ID: 3, Bound: 1.5}, StatusSec: 3600, ShipSec: 3600,
	})})

	var sawNode, sawSol bool
	var out Outcome
	for finished := false; !finished; {
		m := c.Recv(0)
		switch m.Tag {
		case comm.TagNode:
			var sub Subproblem
			dec(m.Payload, &sub)
			if sub.ID != 4 {
				t.Errorf("shipped node ID %d, want 4", sub.ID)
			}
			sawNode = true
		case comm.TagSolution:
			sawSol = true
		case comm.TagTerminated:
			dec(m.Payload, &out)
			finished = true
		case comm.TagStatus:
			// Periodic report; ignore.
		default:
			t.Fatalf("unexpected tag %v", m.Tag)
		}
	}
	if !sawNode || !sawSol {
		t.Fatalf("missing worker traffic: node=%v solution=%v", sawNode, sawSol)
	}
	if !out.Completed || out.Nodes != 5 || out.LPIterations != 11 || out.CutsAdded != 2 {
		t.Fatalf("outcome mangled: %+v", out)
	}

	c.Send(1, comm.Message{From: 0, Tag: comm.TagTermination})
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("worker did not exit on termination")
	}
	if evs := sink.Filter(obs.KindWorkerShip); len(evs) != 1 || evs[0].Rank != 1 {
		t.Fatalf("worker.ship events: %+v", evs)
	}
	if evs := sink.Filter(obs.KindWorkerSol); len(evs) != 1 || evs[0].Primal != 42 {
		t.Fatalf("worker.sol events: %+v", evs)
	}
}
