package ug

import (
	"encoding/gob"
	"fmt"
	"os"
)

// Checkpoint is the persisted state of a run: only the primitive nodes —
// subproblems that have no ancestor in the LoadCoordinator (the pool plus
// the roots of currently running subtrees) — and the incumbent. Saving
// only primitive nodes keeps checkpoint I/O small at the cost of
// regenerating worker-local subtrees after a restart, the trade-off the
// paper discusses (bip52u restarts begin with a handful of primitive
// nodes despite hundreds of thousands of open nodes at shutdown).
type Checkpoint struct {
	Pool      []Subproblem
	Incumbent *Solution
	DualBound float64
}

// saveCheckpoint writes the current primitive nodes atomically
// (write-to-temp then rename). Checkpointing is best-effort — a failed
// save must not abort the run — but failures are returned so the
// coordinator can count them in RunStats instead of silently restarting
// from a stale file.
func (co *coordinator) saveCheckpoint() error {
	ck := Checkpoint{DualBound: co.dualBound()}
	for _, sub := range co.pool {
		ck.Pool = append(ck.Pool, *sub)
	}
	// Iterate running subtrees by ascending rank: a checkpoint written
	// in map order would make restarts depend on iteration randomness.
	for _, rank := range co.runningRanks() {
		ck.Pool = append(ck.Pool, *co.running[rank])
	}
	ck.Incumbent = co.incumbent
	tmp := co.cfg.CheckpointPath + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("checkpoint: create: %w", err)
	}
	if err := gob.NewEncoder(f).Encode(&ck); err != nil {
		_ = f.Close()      // encode error is primary
		_ = os.Remove(tmp) // best-effort cleanup of the partial temp file
		return fmt.Errorf("checkpoint: encode: %w", err)
	}
	// Close before rename: a truncated checkpoint must never replace a
	// complete one.
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("checkpoint: close: %w", err)
	}
	if err := os.Rename(tmp, co.cfg.CheckpointPath); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("checkpoint: rename: %w", err)
	}
	return nil
}

// loadCheckpoint restores a checkpoint file.
func loadCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("open checkpoint: %w", err)
	}
	defer f.Close()
	var ck Checkpoint
	if err := gob.NewDecoder(f).Decode(&ck); err != nil {
		return nil, fmt.Errorf("decode checkpoint: %w", err)
	}
	return &ck, nil
}

// LoadCheckpointInfo exposes checkpoint contents for inspection by tools
// and the experiment harness (run-series tables).
func LoadCheckpointInfo(path string) (*Checkpoint, error) { return loadCheckpoint(path) }

// osWriteFile is a small indirection so tests can create fixture files
// without importing os twice.
func osWriteFile(path string, data []byte) error { return os.WriteFile(path, data, 0o644) }
