package ug

import (
	"testing"
	"time"

	"repro/internal/ug/comm"
)

// TestRunExitsWhenCommClosedMidRun pins the coordinator's behavior when
// the transport is closed under a live run (process teardown, a test
// harness giving up): the event loop must notice the closed comm and
// return an interrupted result promptly instead of spinning on an empty
// mailbox forever. Before the Closed() check this hung: TryRecv on a
// closed-and-drained comm reports "nothing pending", which is
// indistinguishable from a quiet moment mid-search.
func TestRunExitsWhenCommClosedMidRun(t *testing.T) {
	// A large instance so the solve is still in flight when Close hits.
	ff := &fakeFactory{lo: 0, hi: 1 << 40, chunk: 100}
	c := comm.NewChannelComm(3)
	type runRes struct {
		res *Result
		err error
	}
	resCh := make(chan runRes, 1)
	go func() {
		res, err := Run(ff, Config{
			Workers:        2,
			Comm:           c,
			StatusInterval: 1e-4,
			ShipInterval:   1e-4,
		})
		resCh <- runRes{res, err}
	}()
	time.Sleep(20 * time.Millisecond) // let the run ramp up
	c.Close()
	select {
	case r := <-resCh:
		if r.err != nil {
			t.Fatalf("closed comm should interrupt, not error: %v", r.err)
		}
		if r.res == nil {
			t.Fatal("nil result")
		}
		if r.res.Optimal {
			t.Fatalf("run on 2^40 values cannot be optimal after 20ms: %+v", r.res)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("coordinator did not exit within 10s of the comm closing")
	}
}
