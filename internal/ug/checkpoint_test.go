package ug

import (
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// ckCoordinator builds a minimal coordinator carrying exactly the
// state saveCheckpoint persists: pooled subproblems, roots of running
// subtrees, the incumbent, and the worker bounds feeding dualBound.
func ckCoordinator(path string) *coordinator {
	return &coordinator{
		cfg: Config{CheckpointPath: path},
		pool: subHeap{
			{ID: 1, Depth: 2, Bound: 4.5, Payload: []byte("node-1")},
			{ID: 3, Depth: 5, Bound: 7.25, Payload: []byte("node-3")},
		},
		running: map[int]*Subproblem{
			2: {ID: 2, Depth: 1, Bound: 3.5, Payload: []byte("node-2")},
		},
		workerBound: map[int]float64{2: 3.25},
		incumbent:   &Solution{Obj: 11.5, Payload: []byte("best")},
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	co := ckCoordinator(path)
	if err := co.saveCheckpoint(); err != nil {
		t.Fatalf("saveCheckpoint: %v", err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("temp file left behind after successful save (err=%v)", err)
	}

	ck, err := loadCheckpoint(path)
	if err != nil {
		t.Fatalf("loadCheckpoint: %v", err)
	}

	// Pool ∪ running, order-insensitive: the heap layout is not part of
	// the checkpoint contract.
	if len(ck.Pool) != 3 {
		t.Fatalf("restored %d primitive nodes, want 3", len(ck.Pool))
	}
	sort.Slice(ck.Pool, func(i, j int) bool { return ck.Pool[i].ID < ck.Pool[j].ID })
	want := []Subproblem{
		{ID: 1, Depth: 2, Bound: 4.5, Payload: []byte("node-1")},
		{ID: 2, Depth: 1, Bound: 3.5, Payload: []byte("node-2")},
		{ID: 3, Depth: 5, Bound: 7.25, Payload: []byte("node-3")},
	}
	for i, w := range want {
		g := ck.Pool[i]
		if g.ID != w.ID || g.Depth != w.Depth || g.Bound != w.Bound || string(g.Payload) != string(w.Payload) {
			t.Errorf("pool[%d] = %+v, want %+v", i, g, w)
		}
	}
	if ck.Incumbent == nil || ck.Incumbent.Obj != 11.5 || string(ck.Incumbent.Payload) != "best" {
		t.Errorf("incumbent = %+v, want Obj=11.5 Payload=best", ck.Incumbent)
	}
	// dualBound = min(pool bounds, reported worker bounds) = 3.25.
	if ck.DualBound != 3.25 {
		t.Errorf("DualBound = %v, want 3.25", ck.DualBound)
	}

	// LoadCheckpointInfo is the exported view over the same file.
	info, err := LoadCheckpointInfo(path)
	if err != nil {
		t.Fatalf("LoadCheckpointInfo: %v", err)
	}
	if len(info.Pool) != 3 || info.DualBound != 3.25 {
		t.Errorf("LoadCheckpointInfo = %d nodes, dual %v; want 3 nodes, dual 3.25",
			len(info.Pool), info.DualBound)
	}
}

func TestCheckpointOverwriteIsAtomic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	co := ckCoordinator(path)
	if err := co.saveCheckpoint(); err != nil {
		t.Fatalf("first save: %v", err)
	}

	// Later save with fewer nodes must fully replace the earlier file.
	co.pool = subHeap{{ID: 9, Bound: 1.5, Payload: []byte("late")}}
	co.running = map[int]*Subproblem{}
	co.workerBound = map[int]float64{}
	if err := co.saveCheckpoint(); err != nil {
		t.Fatalf("second save: %v", err)
	}
	ck, err := loadCheckpoint(path)
	if err != nil {
		t.Fatalf("loadCheckpoint: %v", err)
	}
	if len(ck.Pool) != 1 || ck.Pool[0].ID != 9 {
		t.Fatalf("stale checkpoint survived overwrite: %+v", ck.Pool)
	}
}

func TestCheckpointMissingFile(t *testing.T) {
	if _, err := loadCheckpoint(filepath.Join(t.TempDir(), "absent.ckpt")); err == nil {
		t.Fatal("loadCheckpoint on a missing file should fail")
	}
}

func TestCheckpointCorruptedFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.ckpt")
	if err := osWriteFile(path, []byte("not a gob stream \x00\xff garbage")); err != nil {
		t.Fatal(err)
	}
	if _, err := loadCheckpoint(path); err == nil {
		t.Fatal("loadCheckpoint on garbage bytes should fail")
	}

	// Truncated-but-valid-prefix corruption: take a real checkpoint and
	// chop it mid-stream.
	good := filepath.Join(t.TempDir(), "good.ckpt")
	co := ckCoordinator(good)
	if err := co.saveCheckpoint(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 8 {
		t.Fatalf("checkpoint suspiciously small: %d bytes", len(data))
	}
	if err := osWriteFile(path, data[:len(data)/2]); err != nil {
		t.Fatal(err)
	}
	if _, err := loadCheckpoint(path); err == nil {
		t.Fatal("loadCheckpoint on a truncated file should fail")
	}
}

func TestCheckpointSaveError(t *testing.T) {
	// A checkpoint path in a directory that does not exist: Create fails
	// and saveCheckpoint must surface the error (the coordinator counts
	// these in RunStats.CheckpointErrors rather than aborting the run).
	co := ckCoordinator(filepath.Join(t.TempDir(), "no", "such", "dir", "run.ckpt"))
	if err := co.saveCheckpoint(); err == nil {
		t.Fatal("saveCheckpoint into a missing directory should fail")
	}
}
