package ug

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/ug/comm"
	netcomm "repro/internal/ug/comm/net"
)

// distOpts keeps the distributed tests fast: tight heartbeats and
// retries on loopback.
func distOpts() netcomm.Options {
	return netcomm.Options{
		HeartbeatEvery:    20 * time.Millisecond,
		RendezvousTimeout: 10 * time.Second,
		RetryBase:         2 * time.Millisecond,
		CloseTimeout:      2 * time.Second,
	}
}

// runDistributed solves ff over a loopback netcomm roster: the
// coordinator and each worker get their own endpoint, exactly as the
// multi-process CLI path wires them (each side presolves its own copy
// of the instance). wOpts customizes individual workers (fault plans).
func runDistributed(t *testing.T, ff *fakeFactory, workers int, cfg Config,
	wOpts map[int]netcomm.Options) (*Result, error) {
	t.Helper()
	ln, err := netcomm.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for rank := 1; rank <= workers; rank++ {
		o := distOpts()
		if ov, ok := wOpts[rank]; ok {
			ov.HeartbeatEvery = o.HeartbeatEvery
			ov.RendezvousTimeout = o.RendezvousTimeout
			ov.RetryBase = o.RetryBase
			ov.CloseTimeout = o.CloseTimeout
			o = ov
		}
		wg.Add(1)
		go func(rank int, o netcomm.Options) {
			defer wg.Done()
			wc, err := netcomm.Dial(ln.Addr(), rank, o)
			if err != nil {
				t.Errorf("worker %d dial: %v", rank, err)
				return
			}
			defer wc.Close()
			// Worker processes presolve their own instance copy; the
			// fake factory's presolve is pure so this mirrors that. The
			// worker session shares the endpoint's tracer, as the CLI
			// worker path does.
			RunWorker(rank, wc, ff, o.Trace)
		}(rank, o)
	}
	copts := distOpts()
	copts.Trace = cfg.Trace
	c, err := ln.Rendezvous(workers+1, copts)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = workers
	cfg.Comm = c
	cfg.RemoteWorkers = true
	res, runErr := Run(ff, cfg)
	_ = c.Close()
	wg.Wait()
	return res, runErr
}

// TestDistributedMatchesChannelComm is the acceptance check for the
// distributed transport: the same instance solved over loopback TCP
// endpoints must reach the same final primal and dual bounds as the
// in-process ChannelComm run.
func TestDistributedMatchesChannelComm(t *testing.T) {
	const lo, hi, chunk = 0, 30000, 400
	inproc, err := Run(&fakeFactory{lo: lo, hi: hi, chunk: chunk},
		Config{Workers: 2, StatusInterval: 1e-4, ShipInterval: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := runDistributed(t, &fakeFactory{lo: lo, hi: hi, chunk: chunk}, 2,
		Config{StatusInterval: 1e-4, ShipInterval: 1e-4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !dist.Optimal {
		t.Fatalf("distributed run not optimal: %+v", dist)
	}
	if dist.Obj != inproc.Obj {
		t.Fatalf("primal bound: distributed %v, in-process %v", dist.Obj, inproc.Obj)
	}
	if dist.DualBound != inproc.DualBound {
		t.Fatalf("dual bound: distributed %v, in-process %v", dist.DualBound, inproc.DualBound)
	}
	if want := trueMin(lo, hi); dist.Obj != want {
		t.Fatalf("distributed obj %v, true min %v", dist.Obj, want)
	}
	if dist.Stats.TotalNodes == 0 || dist.Stats.Dispatched == 0 {
		t.Fatalf("stats did not flow over the wire: %+v", dist.Stats)
	}
}

// TestDistributedWorkerDeathRequeues is the FaultPlan acceptance check:
// the transport of the worker holding the root subproblem (rank 2 —
// dispatchAll pops the idle stack from the top) hard-disconnects on its
// 3rd status report, mid-solve with the subproblem in flight. The run
// must still finish: the coordinator requeues the lost subproblem and
// the surviving worker completes the search. Completion within the
// suite timeout is the no-deadlock assertion.
func TestDistributedWorkerDeathRequeues(t *testing.T) {
	const lo, hi, chunk = 0, 300000, 300
	wOpts := map[int]netcomm.Options{
		2: {Fault: netcomm.NewFaultPlan(netcomm.FaultRule{
			Tag: comm.TagStatus, Nth: 3, Action: netcomm.FaultDisconnect})},
	}
	sink := &obs.MemSink{}
	res, err := runDistributed(t, &fakeFactory{lo: lo, hi: hi, chunk: chunk}, 2,
		Config{StatusInterval: 1e-4, ShipInterval: 1e-4, Trace: obs.NewTracer(sink)}, wOpts)
	if err != nil {
		t.Fatal(err)
	}
	if down := sink.Filter(obs.KindCommPeerDown); len(down) == 0 {
		t.Fatal("fault plan never fired: no comm.peerdown event — test exercised nothing")
	} else if down[0].Rank != 2 {
		t.Fatalf("peerdown for rank %d, want 2 (the rank holding the root)", down[0].Rank)
	}
	if disp := sink.Filter(obs.KindDispatch); len(disp) < 2 {
		t.Fatalf("%d dispatches, want ≥ 2 (original + requeued root)", len(disp))
	}
	if !res.Optimal {
		t.Fatalf("run with a dead worker not optimal: %+v", res)
	}
	if want := trueMin(lo, hi); res.Obj != want {
		t.Fatalf("obj %v, true min %v (lost subproblem not requeued?)", res.Obj, want)
	}
}

// TestDistributedMergedTraceCausallyConsistent is the acceptance check
// for the causal-tracing layer: a 3-process (coordinator + 2 workers)
// loopback solve with a fault-injected disconnect records one trace per
// endpoint, and the merged timeline must pass the cross-rank validator —
// Lamport order puts every worker event inside its dispatch→outcome
// window and every collected node after its ship announcement, even
// with a worker dying mid-run.
func TestDistributedMergedTraceCausallyConsistent(t *testing.T) {
	const lo, hi, chunk = 0, 300000, 300
	csink := &obs.MemSink{}
	w1, w2 := &obs.MemSink{}, &obs.MemSink{}
	wOpts := map[int]netcomm.Options{
		1: {Trace: obs.NewTracer(w1)},
		2: {Trace: obs.NewTracer(w2), Fault: netcomm.NewFaultPlan(netcomm.FaultRule{
			Tag: comm.TagStatus, Nth: 3, Action: netcomm.FaultDisconnect})},
	}
	res, err := runDistributed(t, &fakeFactory{lo: lo, hi: hi, chunk: chunk}, 2,
		Config{StatusInterval: 1e-4, ShipInterval: 1e-4, Trace: obs.NewTracer(csink)}, wOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal {
		t.Fatalf("run not optimal: %+v", res)
	}
	if len(csink.Filter(obs.KindCommPeerDown)) == 0 {
		t.Fatal("fault plan never fired: no comm.peerdown event — test exercised nothing")
	}
	perRank := [][]obs.Event{csink.Events(), w1.Events(), w2.Events()}
	for i, evs := range perRank {
		if err := obs.ValidateTrace(evs); err != nil {
			t.Fatalf("per-endpoint trace %d invalid: %v", i, err)
		}
	}
	merged, err := obs.MergeTraces(perRank...)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateMergedTrace(merged); err != nil {
		t.Fatalf("merged trace fails cross-rank validation: %v", err)
	}
	byOrigin := map[int]int{}
	for _, ev := range merged {
		byOrigin[ev.Orig]++
	}
	for origin := 0; origin <= 2; origin++ {
		if byOrigin[origin] == 0 {
			t.Fatalf("no events from origin %d in merged trace (have %v)", origin, byOrigin)
		}
	}
}

// TestDistributedWatchdogFiresOnDelayedPeer is the acceptance check for
// the stall watchdog on a live distributed solve: the single worker's
// transport delays its 2nd status frame by 900ms, which (the outgoing
// data loop being serialized) stalls every data frame behind it while
// heartbeats keep the link alive — a straggler, not a death. The
// watchdog must fire during the quiet window, land a schema-valid
// watchdog.stall event in the coordinator trace, and write the
// goroutine dump; the run must still finish optimal, and the trace must
// still pass the structural validator with stall events interleaved.
func TestDistributedWatchdogFiresOnDelayedPeer(t *testing.T) {
	const lo, hi, chunk = 0, 300000, 300
	sink := &obs.MemSink{}
	bus := obs.NewBus(sink, obs.NewRegistry())
	tracer := obs.NewTracer(bus)
	dump := filepath.Join(t.TempDir(), "net.jsonl.stall-goroutines")

	// Arm the watchdog the way SolveNetParallel does — after rendezvous
	// has opened the trace with comm.connect — so the opener invariant
	// holds even if the watchdog fires before any solve progress.
	connected, cancelConn := bus.Subscribe(obs.KindCommConnect)
	stalls := make(chan obs.Event, 4)
	var wd *obs.Watchdog
	armed := make(chan struct{})
	go func() {
		defer close(armed)
		if _, ok := <-connected; !ok {
			return
		}
		cancelConn()
		wd = obs.StartWatchdog(obs.WatchdogConfig{
			Bus: bus, Tracer: tracer, Quiet: 200 * time.Millisecond, DumpPath: dump,
			OnStall: func(ev obs.Event) {
				select {
				case stalls <- ev:
				default:
				}
			},
		})
	}()

	wOpts := map[int]netcomm.Options{
		1: {Fault: netcomm.NewFaultPlan(netcomm.FaultRule{
			Tag: comm.TagStatus, Nth: 2, Action: netcomm.FaultDelay, Delay: 900 * time.Millisecond})},
	}
	res, err := runDistributed(t, &fakeFactory{lo: lo, hi: hi, chunk: chunk}, 1,
		Config{StatusInterval: 1e-4, ShipInterval: 1e-4, Trace: tracer}, wOpts)
	<-armed
	wd.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal {
		t.Fatalf("run with a delayed peer not optimal: %+v", res)
	}
	if want := trueMin(lo, hi); res.Obj != want {
		t.Fatalf("obj %v, true min %v", res.Obj, want)
	}

	select {
	case ev := <-stalls:
		if ev.Kind != obs.KindWatchdogStall {
			t.Fatalf("stall callback got kind %q", ev.Kind)
		}
	default:
		t.Fatal("watchdog never fired during a 900ms data stall with a 200ms quiet window")
	}
	stallEvs := sink.Filter(obs.KindWatchdogStall)
	if len(stallEvs) == 0 {
		t.Fatal("watchdog.stall missing from the coordinator trace")
	}
	for _, ev := range stallEvs {
		if !strings.Contains(ev.Str, "@") {
			t.Fatalf("stall payload missing per-rank last-activity ticks: %+v", ev)
		}
	}
	// Stall events interleave with coordination events; the trace must
	// still satisfy every structural invariant.
	if err := obs.ValidateTrace(sink.Events()); err != nil {
		t.Fatalf("trace with stall events fails validation: %v", err)
	}
	// The goroutine dump landed next to the (would-be) trace file and
	// holds real stacks.
	data, rerr := os.ReadFile(dump)
	if rerr != nil {
		t.Fatalf("goroutine dump not written: %v", rerr)
	}
	if !strings.Contains(string(data), "goroutine") {
		t.Fatalf("dump does not look like a goroutine profile (%d bytes)", len(data))
	}
}

// TestDistributedAllWorkersDeadErrors pins the other half of the
// failure contract: when every worker is lost the coordinator must
// terminate with a clear error, never hang.
func TestDistributedAllWorkersDeadErrors(t *testing.T) {
	wOpts := map[int]netcomm.Options{
		1: {Fault: netcomm.NewFaultPlan(netcomm.FaultRule{
			Tag: comm.TagStatus, Nth: 2, Action: netcomm.FaultDisconnect})},
	}
	_, err := runDistributed(t, &fakeFactory{lo: 0, hi: 200000, chunk: 50}, 1,
		Config{StatusInterval: 1e-4, ShipInterval: 1e-4}, wOpts)
	if err == nil {
		t.Fatal("coordinator reported success with all workers dead")
	}
	if !strings.Contains(err.Error(), "workers lost") {
		t.Fatalf("unclear failure: %v", err)
	}
}
