// Package ug implements the Ubiquity Generator framework: a
// Supervisor–Worker parallelization of branch-and-bound base solvers.
// The LoadCoordinator (rank 0) owns a pool of solver-independent
// subproblems and coordinates an arbitrary number of ParaSolvers, which
// wrap a base solver (the scip framework in this repository). Features
// follow the paper: normal and racing ramp-up (including customized
// racing with a user-supplied settings ladder), layered presolving,
// dynamic load balancing through a collect mode, checkpointing of
// primitive nodes with restart, and detailed run statistics.
package ug

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
)

// Subproblem is UG's solver-independent unit of work: an opaque
// base-solver payload (bound changes + branching decisions, gob-encoded
// by the base solver) plus the coordination metadata UG itself needs.
type Subproblem struct {
	ID      int64
	Depth   int
	Bound   float64 // dual bound known for this subproblem
	Payload []byte
}

// Solution is a primal solution in transferable form.
type Solution struct {
	Obj     float64
	Payload []byte
}

// StatusReport is a ParaSolver's periodic progress message.
type StatusReport struct {
	Bound    float64 // local dual bound (min over open + current node)
	Open     int     // open nodes held locally
	Nodes    int64   // nodes processed in the current subproblem so far
	RootTime float64 // seconds spent on the first processed node
}

// Outcome summarizes one finished (or interrupted) subproblem solve.
type Outcome struct {
	Completed bool // subtree fully explored
	Nodes     int64
	OpenLeft  int // open nodes abandoned on interruption
	RootTime  float64
	// LPIterations/CutsAdded carry base-solver work counters back to the
	// coordinator, which sums them into RunStats for the -stats tables.
	// Base solvers without an LP leave them zero.
	LPIterations int64
	CutsAdded    int64
	// Phases is the subproblem's wall time per base-solver phase; the
	// coordinator sums it into RunStats.Phases for the -stats table.
	Phases PhaseTimes
}

// PhaseTimes is wall-clock seconds per base-solver phase, summed across
// subproblems by the coordinator. It mirrors the base solver's own
// phase breakdown (scip.PhaseTimes) without ug importing the solver:
// diagnostics only, never consulted by coordination decisions.
type PhaseTimes struct {
	Presolve    float64
	LP          float64
	Relax       float64
	Separation  float64
	Heuristics  float64
	Propagation float64
}

// Add accumulates q into p.
func (p *PhaseTimes) Add(q PhaseTimes) {
	p.Presolve += q.Presolve
	p.LP += q.LP
	p.Relax += q.Relax
	p.Separation += q.Separation
	p.Heuristics += q.Heuristics
	p.Propagation += q.Propagation
}

// Command is what Session.Poll hands back to the base-solver adapter.
type Command struct {
	Stop       bool        // abandon the current solve
	ExtractAll bool        // racing winner: ship all open nodes, then stop
	WantNode   bool        // collect mode: ship one heavy open node now
	Solutions  []*Solution // incumbents received since the last poll
}

// RampUpMode selects how the search is parallelized initially.
type RampUpMode int8

// Ramp-up modes.
const (
	RampUpNormal RampUpMode = iota
	RampUpRacing
)

// enc gob-encodes v, panicking on failure (all payload types are
// registered value types, so failure is a programming error).
func enc(v any) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		panic(fmt.Sprintf("ug: gob encode %T: %v", v, err))
	}
	return buf.Bytes()
}

// dec gob-decodes into out.
func dec(b []byte, out any) {
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(out); err != nil {
		panic(fmt.Sprintf("ug: gob decode %T: %v", out, err))
	}
}

// workMsg is the payload of a subproblem/racing dispatch.
type workMsg struct {
	Sub         Subproblem
	Incumbent   *Solution // best known solution, if any
	SettingsIdx int       // racing settings index (0 in normal mode)
	StatusSec   float64   // status report interval
	ShipSec     float64   // collect-mode node shipping interval
}

// SolverFactory builds the problem-specific pieces for UG. The glue code
// in internal/core implements it for any scip-based solver, mirroring
// the ug[SCIP-*,*]-libraries' ScipUserPlugins registration.
type SolverFactory interface {
	// GlobalPresolve runs once in the LoadCoordinator before ramp-up and
	// returns the root subproblem payload (the presolved instance's root)
	// and, optionally, a solution found during presolving.
	GlobalPresolve() (root []byte, initial *Solution, err error)
	// CreateWorker builds a base solver bound to the given racing settings
	// index; index 0 must be the default configuration.
	CreateWorker(settingsIdx int) WorkerSolver
	// NumSettings reports the length of the racing settings ladder
	// (customized racing); at least 1.
	NumSettings() int
	// SettingsName labels a settings index for statistics (Figure 1).
	SettingsName(idx int) string
}

// WorkerSolver is one base-solver instance inside a ParaSolver.
type WorkerSolver interface {
	// Solve explores sub until completion or until a Session poll commands
	// otherwise. Implementations must call sess.Poll at least once per
	// branch-and-bound node and honor the returned Command.
	Solve(sub *Subproblem, sess *Session) Outcome
}

var inf = math.Inf(1)
