package ug

import (
	"fmt"
	"time"

	"repro/internal/num"
	"repro/internal/obs"
	"repro/internal/ug/comm"
)

// Session is the framework-side companion a base solver talks to while
// solving one subproblem (Algorithm 2's communication duties): it
// forwards solutions, emits periodic status reports, services collect
// requests and relays coordinator commands.
type Session struct {
	rank    int
	comm    comm.Comm
	initial *Solution // incumbent attached to the dispatch

	collectMode bool
	stopped     bool
	extractAll  bool

	lastStatus   time.Time
	lastShip     time.Time
	statusEvery  time.Duration
	shipEvery    time.Duration
	bestReported float64 // objective of the best solution this session reported/knows

	shipped int // nodes shipped during this session

	// trace records ParaSolver-side events (node shipping, solution
	// reports). Nil disables it; the Poll hot path then pays only a
	// pointer nil-check per event site.
	trace *obs.Tracer
}

func newSession(rank int, c comm.Comm, initial *Solution, statusSec, shipSec float64) *Session {
	statusEvery := 20 * time.Millisecond
	if statusSec > 0 {
		statusEvery = time.Duration(statusSec * float64(time.Second))
	}
	shipEvery := 2 * time.Millisecond
	if shipSec > 0 {
		shipEvery = time.Duration(shipSec * float64(time.Second))
	}
	s := &Session{
		rank:        rank,
		comm:        c,
		initial:     initial,
		statusEvery: statusEvery,
		shipEvery:   shipEvery,
		bestReported: func() float64 {
			if initial != nil {
				return initial.Obj
			}
			return inf
		}(),
	}
	return s
}

// InitialIncumbent returns the solution attached to the dispatch, if any.
func (s *Session) InitialIncumbent() *Solution { return s.initial }

// Poll services the message queue and returns the coordinator's
// directives. The base solver must call it at least once per node.
func (s *Session) Poll(st StatusReport) Command {
	var cmd Command
	for {
		m, ok := s.comm.TryRecv(s.rank)
		if !ok {
			break
		}
		switch m.Tag {
		case comm.TagSolution:
			var sol Solution
			dec(m.Payload, &sol)
			if sol.Obj < s.bestReported {
				s.bestReported = sol.Obj
			}
			cmd.Solutions = append(cmd.Solutions, &sol)
		case comm.TagStartCollect:
			s.collectMode = true
		case comm.TagStopCollect:
			s.collectMode = false
		case comm.TagExtractAll:
			s.extractAll = true
		case comm.TagStop, comm.TagTermination, comm.TagPeerDown:
			// PeerDown on a worker means the coordinator process is gone:
			// there is nobody to report to, so stop like a TagStop.
			s.stopped = true
		}
	}
	// A closed transport (coordinator lost, process teardown) delivers
	// nothing further; keep solving only while someone is listening.
	if !s.stopped {
		if cc, ok := s.comm.(interface{ Closed() bool }); ok && cc.Closed() {
			s.stopped = true
		}
	}
	now := time.Now()
	if now.Sub(s.lastStatus) >= s.statusEvery {
		s.lastStatus = now
		s.comm.Send(0, comm.Message{From: s.rank, Tag: comm.TagStatus, Payload: enc(st)})
	}
	if s.collectMode && st.Open > 1 && now.Sub(s.lastShip) >= s.shipEvery {
		s.lastShip = now
		cmd.WantNode = true
	}
	cmd.Stop = s.stopped
	cmd.ExtractAll = s.extractAll
	return cmd
}

// ShipNode sends one open node to the coordinator (collect mode or
// racing-winner extraction).
func (s *Session) ShipNode(sub Subproblem) {
	s.shipped++
	s.trace.Emit(obs.Event{Kind: obs.KindWorkerShip, Rank: s.rank, Dual: sub.Bound, Open: sub.Depth})
	s.comm.Send(0, comm.Message{From: s.rank, Tag: comm.TagNode, Payload: enc(sub)})
}

// FoundSolution reports a newly found primal solution if it improves on
// everything this session has seen.
func (s *Session) FoundSolution(sol Solution) {
	if num.Geq(sol.Obj, s.bestReported, num.ZeroTol) {
		return
	}
	s.bestReported = sol.Obj
	s.trace.Emit(obs.Event{Kind: obs.KindWorkerSol, Rank: s.rank, Primal: sol.Obj})
	s.comm.Send(0, comm.Message{From: s.rank, Tag: comm.TagSolution, Payload: enc(sol)})
}

// runWorker is the ParaSolver main loop (the paper's Algorithm 2): wait
// for work, solve it while communicating, report termination; exit on
// the termination tag. trace may be nil (tracing disabled). testPanic
// makes the solver panic on its first received subproblem — the
// fault-injection hook behind Config.TestPanicRank.
func runWorker(rank int, c comm.Comm, factory SolverFactory, trace *obs.Tracer, testPanic bool) {
	for {
		m := c.Recv(rank)
		switch m.Tag {
		case comm.TagSubproblem, comm.TagRacing:
			if testPanic {
				panic(fmt.Sprintf("ug: test-injected worker panic (rank %d)", rank))
			}
			var w workMsg
			dec(m.Payload, &w)
			solver := factory.CreateWorker(w.SettingsIdx)
			sess := newSession(rank, c, w.Incumbent, w.StatusSec, w.ShipSec)
			sess.trace = trace
			out := solver.Solve(&w.Sub, sess)
			c.Send(0, comm.Message{From: rank, Tag: comm.TagTerminated, Payload: enc(out)})
		case comm.TagTermination, comm.TagPeerDown:
			// Termination, or the transport reporting the coordinator
			// process gone — either way this solver's run is over.
			return
		case comm.TagStop, comm.TagStartCollect, comm.TagStopCollect, comm.TagSolution:
			// Stale commands between subproblems: solutions are re-attached
			// by the coordinator on the next dispatch; ignore the rest.
		}
	}
}

// RunWorker drives one ParaSolver against an arbitrary communicator —
// the entry point a worker *process* in a distributed (comm/net) run
// calls after dialing the coordinator. It blocks until the coordinator
// sends the termination tag or the transport reports the coordinator
// gone. The factory must be presolved locally first (each process calls
// GlobalPresolve on its own copy of the instance); trace may be nil.
func RunWorker(rank int, c comm.Comm, factory SolverFactory, trace *obs.Tracer) {
	runWorker(rank, c, factory, trace, false)
}
