package misdp

import (
	"repro/internal/core"
	"repro/internal/scip"
)

// This file is the analogue of misdp_plugins.cpp in the paper's
// ug_scip_applications/MISDP: the complete glue code turning the
// sequential SCIP-SDP plugin set into ug[SCIP-SDP,*]. The racing
// settings ladder alternates LP- and SDP-based configurations, which is
// how ug[SCIP-SDP,*] becomes a hybrid solver choosing the better
// relaxation per instance.

// NewApp registers the SCIP-SDP user plugins for the ug[SCIP-*,*] glue
// layer, yielding ug[SCIP-SDP,*]. ladder is the number of racing
// settings (the paper uses 32; Settings[0] — the default outside racing
// — is the SDP-based configuration, matching SCIP-SDP's default).
func NewApp(instance *MISDP, ladder int) core.App {
	if ladder < 2 {
		ladder = 32
	}
	// The ladder itself provides the default: settings "1:sdp" is the
	// SDP-based configuration SCIP-SDP uses sequentially. Keeping the
	// ladder unprefixed makes racing with w workers use settings 1..w,
	// i.e. alternating SDP/LP — half and half, as the paper describes.
	settings := SettingsLadder(ladder)
	return core.App{
		Name:        "SCIP-SDP",
		Def:         &Def{},
		Data:        instance,
		MakePlugins: func() *scip.Plugins { return NewPlugins() },
		Settings:    settings,
	}
}

// NewAppLP is NewApp with the LP cutting-plane configuration as the
// default outside racing.
func NewAppLP(instance *MISDP, ladder int) core.App {
	app := NewApp(instance, ladder)
	app.Settings = append([]scip.Settings{LPSettings()}, app.Settings...)
	return app
}
