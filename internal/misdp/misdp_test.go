package misdp

import (
	"math"
	"testing"

	"repro/internal/linalg"
	"repro/internal/scip"
	"repro/internal/sdp"
)

// solveSeq runs the full SCIP-SDP pipeline sequentially and returns the
// achieved maximum of Bᵀy (scip minimizes −Bᵀy).
func solveSeq(t *testing.T, p *MISDP, set scip.Settings) (float64, scip.Status) {
	t.Helper()
	def := &Def{}
	data, _ := def.Presolve(p, scip.Infinity)
	prob := def.BuildModel(data.(*MISDP))
	plug := NewPlugins()
	plug.Def = def
	s := scip.NewSolver(prob, set, plug)
	st := s.Solve()
	if st == scip.StatusOptimal {
		return -s.Incumbent().Obj, st
	}
	return math.Inf(-1), st
}

// tiny MISDP: max y1 + y2, y integer in [0,3], block 3 − y1 − y2 ⪰ 0
// → y1+y2 = 3.
func tinyMISDP() *MISDP {
	p := &MISDP{Name: "tiny"}
	p.AddVar(1, 0, 3, true)
	p.AddVar(1, 0, 3, true)
	c := linalg.Identity(1, 3)
	a1 := linalg.Identity(1, 1)
	a2 := linalg.Identity(1, 1)
	p.Blocks = []*sdp.Block{{N: 1, C: c, A: []*linalg.Sym{a1, a2}}}
	return p
}

func TestTinyBothModes(t *testing.T) {
	for _, set := range []scip.Settings{LPSettings(), SDPSettings()} {
		got, st := solveSeq(t, tinyMISDP(), set)
		if st != scip.StatusOptimal {
			t.Fatalf("%s: status %v", set.Name, st)
		}
		if math.Abs(got-3) > 1e-4 {
			t.Fatalf("%s: obj = %v, want 3", set.Name, got)
		}
	}
}

// offDiagMISDP: max y, y ∈ {−2..2} integer, [[1,y],[y,1]] ⪰ 0 → y = 1.
func offDiagMISDP() *MISDP {
	p := &MISDP{Name: "offdiag"}
	p.AddVar(1, -2, 2, true)
	c := linalg.NewSym(2)
	c.Set(0, 0, 1)
	c.Set(1, 1, 1)
	a := linalg.NewSym(2)
	a.Set(0, 1, -1)
	p.Blocks = []*sdp.Block{{N: 2, C: c, A: []*linalg.Sym{a}}}
	return p
}

func TestOffDiagonalInteger(t *testing.T) {
	for _, set := range []scip.Settings{LPSettings(), SDPSettings()} {
		got, st := solveSeq(t, offDiagMISDP(), set)
		if st != scip.StatusOptimal || math.Abs(got-1) > 1e-4 {
			t.Fatalf("%s: obj = %v (%v), want 1", set.Name, got, st)
		}
	}
}

func TestInfeasibleMISDP(t *testing.T) {
	p := &MISDP{Name: "infeas"}
	p.AddVar(1, 0, 1, true)
	c := linalg.Identity(1, -3)
	a := linalg.Identity(1, 1)
	p.Blocks = []*sdp.Block{{N: 1, C: c, A: []*linalg.Sym{a}}}
	for _, set := range []scip.Settings{LPSettings(), SDPSettings()} {
		_, st := solveSeq(t, p, set)
		if st != scip.StatusInfeasible {
			t.Fatalf("%s: status %v, want infeasible", set.Name, st)
		}
	}
}

func TestFeasibleChecker(t *testing.T) {
	p := tinyMISDP()
	if !p.Feasible([]float64{1, 2}, 1e-6) {
		t.Fatal("feasible point rejected")
	}
	if p.Feasible([]float64{2, 2}, 1e-6) {
		t.Fatal("PSD-violating point accepted")
	}
	if p.Feasible([]float64{0.5, 0}, 1e-6) {
		t.Fatal("fractional integer accepted")
	}
}

func TestDualFixing(t *testing.T) {
	// max −y (b = −1 ≤ 0) with A = I PSD: y must fix to its lower bound.
	p := &MISDP{Name: "dualfix"}
	p.AddVar(-1, 0, 5, true)
	p.Blocks = []*sdp.Block{{N: 1, C: linalg.Identity(1, 10), A: []*linalg.Sym{linalg.Identity(1, 1)}}}
	def := &Def{}
	def.Presolve(p, scip.Infinity)
	if def.FixedOut != 1 {
		t.Fatalf("dual fixing fixed %d vars, want 1", def.FixedOut)
	}
	if p.Up[0] != 0 {
		t.Fatalf("variable not fixed to lower bound: up = %v", p.Up[0])
	}
}

func TestDualFixingPreservesOptimum(t *testing.T) {
	// Mixed instance where one variable is dual-fixable.
	p := &MISDP{Name: "dfopt"}
	p.AddVar(-1, 0, 3, true) // fixable to 0
	p.AddVar(2, 0, 3, true)
	p.Blocks = []*sdp.Block{{
		N: 1, C: linalg.Identity(1, 4),
		A: []*linalg.Sym{linalg.Identity(1, 1), linalg.Identity(1, 1)},
	}}
	// Optimum: y1 = 0, y2 = 3 (4−y1−y2 ≥ 0... y2 ≤ 4−y1 ≤ 4, box ≤ 3) → 6.
	got, st := solveSeq(t, p, SDPSettings())
	if st != scip.StatusOptimal || math.Abs(got-6) > 1e-4 {
		t.Fatalf("obj = %v (%v), want 6", got, st)
	}
	got2, _ := solveSeq(t, p, LPSettings())
	if math.Abs(got2-6) > 1e-4 {
		t.Fatalf("LP mode obj = %v, want 6", got2)
	}
}

func TestSettingsLadderShape(t *testing.T) {
	ladder := SettingsLadder(32)
	if len(ladder) != 32 {
		t.Fatalf("ladder length %d", len(ladder))
	}
	for i, s := range ladder {
		number := i + 1
		if number%2 == 1 && s.UseLP {
			t.Fatalf("setting %d should be SDP-based", number)
		}
		if number%2 == 0 && !s.UseLP {
			t.Fatalf("setting %d should be LP-based", number)
		}
		if s.Name == "" {
			t.Fatalf("setting %d unnamed", number)
		}
	}
	// Names must distinguish emphases.
	if ladder[1].Name == ladder[3].Name {
		t.Fatalf("ladder names collide: %q", ladder[1].Name)
	}
}

func TestLinearRowsEnforcedInSDPMode(t *testing.T) {
	// max y1+y2, SDP loose, row y1+y2 ≤ 2, integers in [0,5] → 2.
	p := &MISDP{Name: "rows"}
	p.AddVar(1, 0, 5, true)
	p.AddVar(1, 0, 5, true)
	p.Blocks = []*sdp.Block{{
		N: 1, C: linalg.Identity(1, 100),
		A: []*linalg.Sym{linalg.Identity(1, 1), linalg.Identity(1, 1)},
	}}
	p.Rows = append(p.Rows, sdp.Row{Coef: []float64{1, 1}, RHS: 2})
	for _, set := range []scip.Settings{LPSettings(), SDPSettings()} {
		got, st := solveSeq(t, p, set)
		if st != scip.StatusOptimal || math.Abs(got-2) > 1e-4 {
			t.Fatalf("%s: obj = %v (%v), want 2", set.Name, got, st)
		}
	}
}
