package testsets

import (
	"math"
	"testing"

	"repro/internal/linalg"
	"repro/internal/misdp"
	"repro/internal/scip"
)

// solve runs the full pipeline and returns max Bᵀy.
func solve(t *testing.T, p *misdp.MISDP, set scip.Settings) (float64, scip.Status) {
	t.Helper()
	def := &misdp.Def{}
	data, _ := def.Presolve(p, scip.Infinity)
	prob := def.BuildModel(data.(*misdp.MISDP))
	plug := misdp.NewPlugins()
	plug.Def = def
	s := scip.NewSolver(prob, set, plug)
	st := s.Solve()
	if st == scip.StatusOptimal {
		return -s.Incumbent().Obj, st
	}
	return math.Inf(-1), st
}

// bruteTTD enumerates all integer designs.
func bruteTTD(p *misdp.MISDP, amax int) float64 {
	m := p.M
	best := math.Inf(-1)
	a := make([]float64, m)
	var rec func(i int)
	rec = func(i int) {
		if i == m {
			if p.Feasible(a, 1e-7) {
				if v := p.Eval(a); v > best {
					best = v
				}
			}
			return
		}
		for v := 0; v <= amax; v++ {
			a[i] = float64(v)
			rec(i + 1)
		}
	}
	rec(0)
	return best
}

func TestTTDAgainstBruteForce(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		p := TTD(3, 5, 2, seed)
		want := bruteTTD(p, 2)
		if math.IsInf(want, -1) {
			t.Fatalf("seed %d: generated infeasible TTD", seed)
		}
		for _, set := range []scip.Settings{misdp.LPSettings(), misdp.SDPSettings()} {
			got, st := solve(t, TTD(3, 5, 2, seed), set)
			if st != scip.StatusOptimal {
				t.Fatalf("seed %d %s: status %v", seed, set.Name, st)
			}
			if math.Abs(got-want) > 1e-3*(1+math.Abs(want)) {
				t.Fatalf("seed %d %s: obj %v want %v", seed, set.Name, got, want)
			}
		}
	}
}

// bruteCLS enumerates supports and solves the restricted least squares
// via normal equations.
func bruteCLS(features, observations, k int, seed int64) float64 {
	// Regenerate the data exactly as CLS does.
	p := CLS(features, observations, k, seed)
	_ = p
	// Enumerate z-patterns with ≤ k ones and query the MISDP for the best
	// t via its own feasibility check over a fine grid would be too slow;
	// instead extract A and d from the block structure.
	blk := p.Blocks[0]
	q := blk.N - 1
	a := make([][]float64, q)
	d := make([]float64, q)
	for i := 0; i < q; i++ {
		a[i] = make([]float64, features)
		for j := 0; j < features; j++ {
			a[i][j] = -blk.A[j].At(i, q) // A stores −a_ij
		}
		d[i] = -blk.C.At(i, q)
	}
	best := math.Inf(1)
	var rec func(j, used int, support []int)
	rec = func(j, used int, support []int) {
		if j == features {
			t := residual(a, d, support)
			if t < best {
				best = t
			}
			return
		}
		rec(j+1, used, support)
		if used < k {
			rec(j+1, used+1, append(support, j))
		}
	}
	rec(0, 0, nil)
	return -best // the MISDP maximizes −t
}

// residual solves min ‖A_S x − d‖² on the support S.
func residual(a [][]float64, d []float64, support []int) float64 {
	k := len(support)
	if k == 0 {
		var r float64
		for _, v := range d {
			r += v * v
		}
		return r
	}
	// Normal equations: (AᵀA) x = Aᵀ d on the support columns.
	m := make([]float64, k*k)
	rhs := make([]float64, k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			var acc float64
			for r := range a {
				acc += a[r][support[i]] * a[r][support[j]]
			}
			m[i*k+j] = acc
		}
		for r := range a {
			rhs[i] += a[r][support[i]] * d[r]
		}
	}
	x, err := linalg.SolveDense(k, m, rhs)
	if err != nil {
		return math.Inf(1)
	}
	var res float64
	for r := range a {
		v := -d[r]
		for i := 0; i < k; i++ {
			v += a[r][support[i]] * x[i]
		}
		res += v * v
	}
	return res
}

func TestCLSAgainstBruteForce(t *testing.T) {
	for seed := int64(1); seed <= 2; seed++ {
		want := bruteCLS(4, 6, 2, seed)
		got, st := solve(t, CLS(4, 6, 2, seed), misdp.LPSettings())
		if st != scip.StatusOptimal {
			t.Fatalf("seed %d: status %v", seed, st)
		}
		// The SDP block only encodes t ≥ ‖Ax−d‖², so the solver's optimum
		// may exceed the algebraic optimum by the solver tolerance.
		if math.Abs(got-want) > 1e-2*(1+math.Abs(want)) {
			t.Fatalf("seed %d: obj %v want %v", seed, got, want)
		}
	}
}

func TestCLSSDPMode(t *testing.T) {
	want := bruteCLS(3, 5, 1, 7)
	got, st := solve(t, CLS(3, 5, 1, 7), misdp.SDPSettings())
	if st != scip.StatusOptimal {
		t.Fatalf("status %v", st)
	}
	if math.Abs(got-want) > 5e-2*(1+math.Abs(want)) {
		t.Fatalf("obj %v want %v", got, want)
	}
}

// bruteMkP enumerates all partitions into ≤ k classes via restricted
// growth strings.
func bruteMkP(n, k int, seed int64) float64 {
	w := MkPWeights(n, seed)
	assign := make([]int, n)
	best := math.Inf(1)
	var rec func(v, maxUsed int)
	rec = func(v, maxUsed int) {
		if v == n {
			var cost float64
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					if assign[i] == assign[j] {
						cost += w[i][j]
					}
				}
			}
			if cost < best {
				best = cost
			}
			return
		}
		for c := 0; c <= maxUsed && c < k; c++ {
			assign[v] = c
			nm := maxUsed
			if c == maxUsed {
				nm++
			}
			rec(v+1, nm)
		}
	}
	rec(0, 0)
	return -best // the MISDP maximizes −Σ w_e y_e
}

func TestMkPAgainstBruteForce(t *testing.T) {
	for _, tc := range []struct {
		n, k int
		seed int64
	}{{5, 2, 1}, {5, 3, 2}, {6, 3, 3}} {
		want := bruteMkP(tc.n, tc.k, tc.seed)
		got, st := solve(t, MkP(tc.n, tc.k, tc.seed), misdp.SDPSettings())
		if st != scip.StatusOptimal {
			t.Fatalf("n=%d k=%d: status %v", tc.n, tc.k, st)
		}
		if math.Abs(got-want) > 1e-3*(1+math.Abs(want)) {
			t.Fatalf("n=%d k=%d: obj %v want %v", tc.n, tc.k, got, want)
		}
	}
}

func TestMkPLPMode(t *testing.T) {
	want := bruteMkP(5, 2, 1)
	got, st := solve(t, MkP(5, 2, 1), misdp.LPSettings())
	if st != scip.StatusOptimal || math.Abs(got-want) > 1e-3*(1+math.Abs(want)) {
		t.Fatalf("obj %v (%v) want %v", got, st, want)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := MkP(6, 3, 42)
	b := MkP(6, 3, 42)
	if a.M != b.M || a.Eval(make([]float64, a.M)) != b.Eval(make([]float64, b.M)) {
		t.Fatal("MkP not deterministic")
	}
	for i := 0; i < a.M; i++ {
		if a.B[i] != b.B[i] {
			t.Fatal("MkP weights differ across calls")
		}
	}
	c := TTD(3, 5, 2, 42)
	d := TTD(3, 5, 2, 42)
	if c.Blocks[0].C.At(0, 0) != d.Blocks[0].C.At(0, 0) {
		t.Fatal("TTD not deterministic")
	}
}

// Regression: the SDP-relaxator mode must agree with the LP mode and the
// partition oracle on Mk-P instances where an unconverged barrier once
// caused false infeasibility declarations and wrong pruning.
func TestMkPModesAgree(t *testing.T) {
	for _, tc := range []struct {
		n, k int
		seed int64
	}{{7, 3, 1}, {7, 3, 2}, {8, 3, 1}, {8, 3, 2}} {
		want := bruteMkP(tc.n, tc.k, tc.seed)
		lpGot, lpSt := solve(t, MkP(tc.n, tc.k, tc.seed), misdp.LPSettings())
		if lpSt != scip.StatusOptimal || math.Abs(lpGot-want) > 1e-3 {
			t.Fatalf("n=%d seed=%d LP: %v (%v) want %v", tc.n, tc.seed, lpGot, lpSt, want)
		}
		sdpGot, sdpSt := solve(t, MkP(tc.n, tc.k, tc.seed), misdp.SDPSettings())
		if sdpSt != scip.StatusOptimal {
			t.Fatalf("n=%d seed=%d SDP: status %v, want optimal (%v)", tc.n, tc.seed, sdpSt, want)
		}
		if math.Abs(sdpGot-want) > 1e-3 {
			t.Fatalf("n=%d seed=%d SDP: %v want %v", tc.n, tc.seed, sdpGot, want)
		}
	}
}
