// Package testsets generates the three CBLIB application families that
// the paper's Table 4 and Figure 1 aggregate: truss topology design
// (TTD), cardinality-constrained least squares (CLS) and minimum
// k-partitioning (Mk-P). The original CBLIB files are substituted by
// the standard textbook MISDP formulations of the same applications at
// reduced size (see DESIGN.md, substitution 4); the property that
// matters for the study is preserved — CLS instances favor the LP
// cutting-plane approach, Mk-P instances the SDP approach, and TTD sits
// in between, which is what racing ramp-up exploits.
package testsets

import (
	"fmt"
	"math/rand"

	"repro/internal/linalg"
	"repro/internal/misdp"
	"repro/internal/sdp"
)

// TTD builds a truss topology design instance: choose integer bar areas
// a_e ∈ {0,…,amax} of minimum total volume such that the structure's
// stiffness matrix dominates a load threshold,
//
//	Σ_e a_e K_e ⪰ τ·I_d,   minimize Σ_e l_e a_e,
//
// with K_e = g_e g_eᵀ elementary stiffness matrices from a random ground
// structure. In the paper's dual form: C = −τI, A_e = −K_e, b_e = −l_e.
func TTD(dim, bars, amax int, seed int64) *misdp.MISDP {
	rng := rand.New(rand.NewSource(seed))
	p := &misdp.MISDP{Name: fmt.Sprintf("ttd-%d-%d-s%d", dim, bars, seed)}
	blk := &sdp.Block{N: dim}
	sum := linalg.NewSym(dim)
	lengths := make([]float64, bars)
	for e := 0; e < bars; e++ {
		g := make([]float64, dim)
		for i := range g {
			g[i] = rng.NormFloat64()
		}
		k := linalg.NewSym(dim)
		k.OuterAdd(1, g)
		sum.AddScaled(float64(amax), k)
		neg := k.Clone()
		neg.Scale(-1)
		blk.A = append(blk.A, neg)
		lengths[e] = 1 + rng.Float64()*3
	}
	// τ chosen so the full design is strictly feasible.
	lam, _ := linalg.MinEigen(sum)
	tau := 0.4 * lam
	if tau <= 0 {
		tau = 0.1
	}
	blk.C = linalg.Identity(dim, -tau)
	p.Blocks = []*sdp.Block{blk}
	for e := 0; e < bars; e++ {
		p.AddVar(-lengths[e], 0, float64(amax), true)
	}
	return p
}

// CLS builds a cardinality-constrained least squares instance:
//
//	min ‖Ax − d‖²  s.t.  ‖x‖₀ ≤ k,
//
// in MISDP form via the Schur complement block
// [[I, Ax−d], [(Ax−d)ᵀ, t]] ⪰ 0 (⟺ t ≥ ‖Ax−d‖²) with binary support
// indicators z_j, big-M rows |x_j| ≤ M·z_j and Σz ≤ k. Objective sup −t.
func CLS(features, observations, k int, seed int64) *misdp.MISDP {
	rng := rand.New(rand.NewSource(seed))
	q, pdim := observations, features
	a := make([][]float64, q)
	xTrue := make([]float64, pdim)
	for j := 0; j < k && j < pdim; j++ {
		xTrue[j] = rng.NormFloat64() * 2
	}
	d := make([]float64, q)
	for i := 0; i < q; i++ {
		a[i] = make([]float64, pdim)
		for j := 0; j < pdim; j++ {
			a[i][j] = rng.NormFloat64()
			d[i] += a[i][j] * xTrue[j]
		}
		d[i] += 0.1 * rng.NormFloat64()
	}
	const bigM = 10
	p := &misdp.MISDP{Name: fmt.Sprintf("cls-%d-%d-%d-s%d", pdim, q, k, seed)}
	// Variables: x_0..x_{p−1}, z_0..z_{p−1}, t.
	xs := make([]int, pdim)
	zs := make([]int, pdim)
	for j := 0; j < pdim; j++ {
		xs[j] = p.AddVar(0, -bigM, bigM, false)
	}
	for j := 0; j < pdim; j++ {
		zs[j] = p.AddVar(0, 0, 1, true)
	}
	var dd float64
	for i := 0; i < q; i++ {
		dd += d[i] * d[i]
	}
	t := p.AddVar(-1, 0, 4*dd+10, false) // sup −t = min t
	// Block of order q+1.
	n := q + 1
	c := linalg.NewSym(n)
	for i := 0; i < q; i++ {
		c.Set(i, i, 1)
		c.Set(i, q, -d[i])
	}
	blk := &sdp.Block{N: n, C: c, A: make([]*linalg.Sym, p.M)}
	for j := 0; j < pdim; j++ {
		m := linalg.NewSym(n)
		for i := 0; i < q; i++ {
			m.Set(i, q, -a[i][j]) // Z gains +a_ij·x_j in position (i,q)
		}
		blk.A[xs[j]] = m
	}
	mt := linalg.NewSym(n)
	mt.Set(q, q, -1)
	blk.A[t] = mt
	p.Blocks = []*sdp.Block{blk}
	// Big-M rows and cardinality.
	for j := 0; j < pdim; j++ {
		row1 := make([]float64, p.M)
		row1[xs[j]] = 1
		row1[zs[j]] = -bigM
		p.Rows = append(p.Rows, sdp.Row{Coef: row1, RHS: 0})
		row2 := make([]float64, p.M)
		row2[xs[j]] = -1
		row2[zs[j]] = -bigM
		p.Rows = append(p.Rows, sdp.Row{Coef: row2, RHS: 0})
	}
	card := make([]float64, p.M)
	for j := 0; j < pdim; j++ {
		card[zs[j]] = 1
	}
	p.Rows = append(p.Rows, sdp.Row{Coef: card, RHS: float64(k)})
	return p
}

// MkP builds a minimum k-partitioning instance: partition the vertices
// of a weighted graph into at most k classes minimizing the total weight
// inside classes. MISDP form: X_ij ∈ {−1/(k−1), 1}, X_ii = 1, X ⪰ 0,
// with binary y_e ⟺ X_ij = 1 (edge e = (i,j) inside a class); minimize
// Σ w_e y_e.
func MkP(vertices, k int, seed int64) *misdp.MISDP {
	rng := rand.New(rand.NewSource(seed))
	n := vertices
	p := &misdp.MISDP{Name: fmt.Sprintf("mkp-%d-%d-s%d", n, k, seed)}
	base := -1.0 / float64(k-1)
	span := 1 - base // X_ij = base + y_e·span
	c := linalg.NewSym(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				c.Set(i, i, 1)
			} else {
				c.A[i*n+j] = base
			}
		}
	}
	blk := &sdp.Block{N: n, C: c}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			w := float64(1 + rng.Intn(9))
			p.AddVar(-w, 0, 1, true)
			m := linalg.NewSym(n)
			m.Set(i, j, -span)
			blk.A = append(blk.A, m)
		}
	}
	p.Blocks = []*sdp.Block{blk}
	return p
}

// MkPWeights reproduces the weight matrix used by MkP for the oracle.
func MkPWeights(vertices int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	n := vertices
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := float64(1 + rng.Intn(9))
			w[i][j] = v
			w[j][i] = v
		}
	}
	return w
}
