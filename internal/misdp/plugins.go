package misdp

import (
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/lp"
	"repro/internal/num"
	"repro/internal/scip"
	"repro/internal/sdp"
)

const psdTol = 1e-6

// localProblem builds the continuous SDP of the current node: the MISDP
// with the node-local bounds.
func localProblem(ctx *scip.Ctx, p *MISDP) *sdp.Problem {
	lo := make([]float64, p.M)
	up := make([]float64, p.M)
	for i := 0; i < p.M; i++ {
		lo[i] = ctx.LocalLo(i)
		up[i] = ctx.LocalUp(i)
	}
	return &sdp.Problem{M: p.M, B: p.B, Lo: lo, Up: up, Blocks: p.Blocks, Rows: p.Rows}
}

// eigCutCoefs derives the Sherali–Fraticelli eigenvector cut
// Σ (vᵀA_i v)·y_i ≤ vᵀC v from eigenvector v of a block.
func eigCutCoefs(blk *sdp.Block, v []float64) (coefs []lp.Nonzero, rhs float64) {
	for i, a := range blk.A {
		if a == nil {
			continue
		}
		if w := a.QuadForm(v); math.Abs(w) > 1e-12 {
			coefs = append(coefs, lp.Nonzero{Col: i, Val: w})
		}
	}
	return coefs, blk.C.QuadForm(v)
}

// Conshdlr enforces the SDP cones.
type Conshdlr struct{}

// Name implements scip.Conshdlr.
func (*Conshdlr) Name() string { return "sdpcone" }

// Check implements scip.Conshdlr.
//
//ugo:coldpath cone feasibility check runs once per candidate incumbent and is dominated by the eigensolve
func (*Conshdlr) Check(ctx *scip.Ctx, x []float64) bool {
	p := ctx.Data.(*Instance).P
	for _, blk := range p.Blocks {
		lam, _ := linalg.MinEigen(blk.Z(x))
		if lam < -psdTol {
			return false
		}
	}
	return true
}

// Enforce implements scip.Conshdlr: in LP mode it adds an eigenvector
// cut for the most violated block (the cutting-plane approach); in SDP
// mode the relaxator already guarantees cone feasibility, so reaching
// this point defers to branching.
//
//ugo:coldpath eigenvector-cut synthesis is dominated by the dense eigensolve; its matrix scratch is block-sized and audited with the linalg kernels
func (*Conshdlr) Enforce(ctx *scip.Ctx, x []float64) scip.Result {
	if !ctx.Settings().UseLP {
		return scip.DidNothing
	}
	p := ctx.Data.(*Instance).P
	added := false
	for _, blk := range p.Blocks {
		lam, v := linalg.MinEigen(blk.Z(x))
		if lam >= -psdTol {
			continue
		}
		coefs, rhs := eigCutCoefs(blk, v)
		if len(coefs) == 0 {
			ctx.MarkInfeasible()
			return scip.Cutoff
		}
		if ctx.AddCut(lp.LE, rhs, coefs) {
			added = true
		}
	}
	if added {
		return scip.Separated
	}
	return scip.DidNothing
}

// Separator adds eigenvector cuts for fractional LP solutions (LP mode).
type Separator struct {
	MaxPerBlock int
}

// Name implements scip.Separator.
func (*Separator) Name() string { return "eigcut" }

// Separate implements scip.Separator.
//
//ugo:coldpath eigencut separation is budget-capped by the solver and dominated by the eigensolve, not by its allocations
func (s *Separator) Separate(ctx *scip.Ctx) scip.Result {
	if ctx.LPSol == nil || !ctx.Settings().UseLP {
		return scip.DidNotRun
	}
	if ctx.CutBudgetLeft() <= 0 {
		return scip.DidNothing
	}
	p := ctx.Data.(*Instance).P
	maxPer := s.MaxPerBlock
	if maxPer <= 0 {
		maxPer = 2
	}
	added := 0
	for _, blk := range p.Blocks {
		eig := linalg.Eigen(blk.Z(ctx.LPSol.X))
		for k := 0; k < maxPer && k < blk.N; k++ {
			if eig.Values[k] >= -psdTol {
				break
			}
			coefs, rhs := eigCutCoefs(blk, eig.Vectors[k])
			if len(coefs) == 0 {
				continue
			}
			if ctx.AddCut(lp.LE, rhs, coefs) {
				added++
			}
		}
	}
	if added > 0 {
		return scip.Separated
	}
	return scip.DidNothing
}

// Relaxator solves the continuous SDP relaxation at every node — the
// nonlinear branch-and-bound mode, with the penalty formulation handled
// inside the sdp package.
type Relaxator struct {
	Opts sdp.Options
}

// Name implements scip.Relaxator.
func (*Relaxator) Name() string { return "sdprelax" }

// Relax implements scip.Relaxator.
//
//ugo:coldpath each relaxation is a full interior-point SDP solve whose factorization workspaces dwarf the setup allocations flagged here
func (r *Relaxator) Relax(ctx *scip.Ctx) (float64, []float64, scip.Result) {
	if ctx.Settings().UseLP {
		return math.Inf(-1), nil, scip.DidNotRun
	}
	p := ctx.Data.(*Instance).P
	res := sdp.Solve(localProblem(ctx, p), r.Opts)
	switch res.Status {
	case sdp.Infeasible:
		return math.Inf(1), nil, scip.Cutoff
	case sdp.NumericTrouble:
		// No trustworthy bound; provide the point (if interior) for
		// branching but claim nothing.
		return math.Inf(-1), res.Y, scip.DidNothing
	}
	// scip minimizes −Bᵀy, so the node lower bound is −UpperBound.
	bound := -res.UpperBound
	return bound, res.Y, scip.DidNothing
}

// Heuristic is SCIP-SDP's randomized rounding: round the relaxation's
// integer values (nearest and randomized), fix them, re-solve the
// continuous SDP over the remaining variables, and submit the result.
type Heuristic struct {
	Opts sdp.Options
}

// Name implements scip.Heuristic.
func (*Heuristic) Name() string { return "fixround" }

// Search implements scip.Heuristic.
//
//ugo:coldpath rounding heuristic is frequency-gated and copies one candidate vector per attempt
func (h *Heuristic) Search(ctx *scip.Ctx) scip.Result {
	var base []float64
	if ctx.RelaxX != nil {
		base = ctx.RelaxX
	} else if ctx.LPSol != nil {
		base = ctx.LPSol.X
	} else {
		return scip.DidNotRun
	}
	p := ctx.Data.(*Instance).P
	found := scip.DidNothing
	for attempt := 0; attempt < 2; attempt++ {
		prob := localProblem(ctx, p)
		anyCont := false
		for i := 0; i < p.M; i++ {
			if !p.IsInt[i] {
				anyCont = true
				continue
			}
			v := base[i]
			var rounded float64
			if attempt == 0 {
				rounded = math.Round(v)
			} else {
				f := v - math.Floor(v)
				if ctx.Rand().Float64() < f {
					rounded = math.Ceil(v)
				} else {
					rounded = math.Floor(v)
				}
			}
			rounded = math.Max(prob.Lo[i], math.Min(prob.Up[i], rounded))
			rounded = math.Round(rounded)
			prob.Lo[i], prob.Up[i] = rounded, rounded
		}
		var y []float64
		if anyCont {
			res := sdp.Solve(prob, h.Opts)
			if res.Status != sdp.Solved {
				continue
			}
			y = res.Y
			for i := 0; i < p.M; i++ {
				if p.IsInt[i] {
					y[i] = prob.Lo[i]
				}
			}
		} else {
			y = make([]float64, p.M)
			for i := 0; i < p.M; i++ {
				y[i] = prob.Lo[i]
			}
		}
		if !p.Feasible(y, psdTol) {
			continue
		}
		if ctx.SubmitSol(y) {
			found = scip.FoundSol
		}
	}
	return found
}

// NewPlugins assembles the SCIP-SDP plugin set (shared by the LP and
// SDP modes; mode selection happens via Settings.UseLP).
func NewPlugins() *scip.Plugins {
	return &scip.Plugins{
		Def:         &Def{},
		Propagators: []scip.Propagator{&Propagator{}},
		Separators:  []scip.Separator{&Separator{}},
		Heuristics:  []scip.Heuristic{&Heuristic{}},
		Conshdlrs:   []scip.Conshdlr{&Conshdlr{}},
		Relaxators:  []scip.Relaxator{&Relaxator{}},
	}
}

// LPSettings returns the cutting-plane configuration.
func LPSettings() scip.Settings {
	s := scip.DefaultSettings()
	s.Name = "lp-default"
	s.UseLP = true
	s.MaxCutRows = 600
	return s
}

// SDPSettings returns the nonlinear branch-and-bound configuration.
func SDPSettings() scip.Settings {
	s := scip.DefaultSettings()
	s.Name = "sdp-default"
	s.UseLP = false
	return s
}

// SettingsLadder builds the racing settings for ug[SCIP-SDP,*]: odd
// setting numbers (1-based, as in the paper's Figure 1) are SDP-based,
// even numbers LP-based, with emphasis/branching/seed variations.
func SettingsLadder(n int) []scip.Settings {
	emph := []scip.Emphasis{scip.EmphDefault, scip.EmphEasyCIP, scip.EmphAggressive, scip.EmphFeasibility}
	branch := []scip.BranchRule{scip.BranchPseudoCost, scip.BranchMostFractional, scip.BranchRandom}
	var out []scip.Settings
	for idx := 0; idx < n; idx++ {
		number := idx + 1
		var s scip.Settings
		if number%2 == 1 {
			s = SDPSettings()
			s.Name = fmt.Sprintf("%d:sdp", number)
		} else {
			s = LPSettings()
			s.Name = fmt.Sprintf("%d:lp", number)
		}
		if number <= 2 {
			// Settings 1 and 2 are the unmodified default configurations,
			// so a single-threaded ug run reproduces the sequential solver
			// plus coordination overhead (the paper's Table 4 baseline).
			out = append(out, s)
			continue
		}
		e := emph[(number/2)%len(emph)]
		s.Emphasis = e
		if e != scip.EmphDefault {
			s.Name += "-" + e.String()
		}
		s.Branching = branch[(number/3)%len(branch)]
		s.Seed = int64(number * 131)
		s.PermuteTieBreak = true
		out = append(out, s)
	}
	return out
}

// Propagator performs interval propagation on the linear rows (the
// linear-constraint domain propagation every SCIP build ships): bounds
// implied by a row's residual activity are tightened, so variables that
// the rows pin — e.g. |x_j| ≤ M·z_j once branching fixes z_j = 0 —
// become fixed bounds. This matters doubly in SDP mode: the fixed
// variables are eliminated before the barrier solve, which restores the
// strict interior the interior-point method needs.
type Propagator struct{}

// Name implements scip.Propagator.
func (*Propagator) Name() string { return "linprop" }

// Propagate implements scip.Propagator.
//
//ugo:coldpath linear-row propagation mutates bounds in place; runs only until the per-node fixpoint
func (*Propagator) Propagate(ctx *scip.Ctx) scip.Result {
	p := ctx.Data.(*Instance).P
	changed := false
	for _, row := range p.Rows {
		// Minimum activity over the box and its infinity count.
		minAct := 0.0
		infCount := 0
		for i, a := range row.Coef {
			if num.ExactZero(a) {
				continue
			}
			var contrib float64
			if a > 0 {
				contrib = a * ctx.LocalLo(i)
			} else {
				contrib = a * ctx.LocalUp(i)
			}
			if math.IsInf(contrib, -1) {
				infCount++
				continue
			}
			minAct += contrib
		}
		for i, a := range row.Coef {
			if num.ExactZero(a) {
				continue
			}
			// Residual minimum activity excluding i.
			var own float64
			if a > 0 {
				own = a * ctx.LocalLo(i)
			} else {
				own = a * ctx.LocalUp(i)
			}
			rest := minAct
			restInf := infCount
			if math.IsInf(own, -1) {
				restInf--
			} else {
				rest -= own
			}
			if restInf > 0 {
				continue // residual activity unbounded below: nothing to infer
			}
			limit := (row.RHS - rest) / a
			if a > 0 {
				if p.IsInt[i] {
					limit = math.Floor(limit + 1e-9)
				}
				if ctx.TightenUp(i, limit) {
					changed = true
				}
			} else {
				if p.IsInt[i] {
					limit = math.Ceil(limit - 1e-9)
				}
				if ctx.TightenLo(i, limit) {
					changed = true
				}
			}
		}
	}
	if changed {
		return scip.Reduced
	}
	return scip.DidNothing
}
