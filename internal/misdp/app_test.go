package misdp

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/sdp"
	"repro/internal/ug"
)

// knapsackLikeMISDP: max Σ y_i with a PSD budget block and a linear row.
func smallMISDP() *MISDP {
	p := &MISDP{Name: "small"}
	for i := 0; i < 4; i++ {
		p.AddVar(float64(i+1), 0, 2, true)
	}
	// Block: 6 − Σ y_i ⪰ 0 (scalar), plus an off-diagonal block tying
	// y_0 and y_1: [[2, y0−y1],[y0−y1, 2]] ⪰ 0 ⟺ |y0−y1| ≤ 2.
	b1 := &sdp.Block{N: 1, C: linalg.Identity(1, 6),
		A: []*linalg.Sym{linalg.Identity(1, 1), linalg.Identity(1, 1), linalg.Identity(1, 1), linalg.Identity(1, 1)}}
	c2 := linalg.NewSym(2)
	c2.Set(0, 0, 2)
	c2.Set(1, 1, 2)
	a0 := linalg.NewSym(2)
	a0.Set(0, 1, -1)
	a1 := linalg.NewSym(2)
	a1.Set(0, 1, 1)
	b2 := &sdp.Block{N: 2, C: c2, A: []*linalg.Sym{a0, a1, nil, nil}}
	p.Blocks = []*sdp.Block{b1, b2}
	p.Rows = []sdp.Row{{Coef: []float64{0, 0, 1, 1}, RHS: 3}}
	return p
}

// bruteMISDP enumerates the integer grid.
func bruteMISDP(p *MISDP) float64 {
	best := math.Inf(-1)
	y := make([]float64, p.M)
	var rec func(i int)
	rec = func(i int) {
		if i == p.M {
			if p.Feasible(y, 1e-7) {
				if v := p.Eval(y); v > best {
					best = v
				}
			}
			return
		}
		for v := int(p.Lo[i]); v <= int(p.Up[i]); v++ {
			y[i] = float64(v)
			rec(i + 1)
		}
	}
	rec(0)
	return best
}

func TestUGMISDPMatchesBruteForce(t *testing.T) {
	want := bruteMISDP(smallMISDP())
	for _, workers := range []int{1, 3} {
		app := NewApp(smallMISDP(), 8)
		res, _, err := core.SolveParallel(app, ug.Config{
			Workers:        workers,
			StatusInterval: 1e-3,
			ShipInterval:   1e-3,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Optimal {
			t.Fatalf("workers %d: %+v", workers, res)
		}
		if math.Abs(-res.Obj-want) > 1e-3 {
			t.Fatalf("workers %d: obj %v want %v", workers, -res.Obj, want)
		}
	}
}

// Racing with the LP/SDP ladder: the hybrid must find the optimum and
// record a winner.
func TestUGMISDPRacingHybrid(t *testing.T) {
	want := bruteMISDP(smallMISDP())
	app := NewApp(smallMISDP(), 8)
	res, _, err := core.SolveParallel(app, ug.Config{
		Workers:    4,
		RampUp:     ug.RampUpRacing,
		RacingTime: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal || math.Abs(-res.Obj-want) > 1e-3 {
		t.Fatalf("racing: %+v want %v", res, want)
	}
	if res.Stats.RacingWinner < 0 && !res.Stats.SolvedInRacing {
		t.Fatalf("no winner recorded: %+v", res.Stats)
	}
}

func TestAppLPDefault(t *testing.T) {
	app := NewAppLP(smallMISDP(), 4)
	if !app.Settings[0].UseLP {
		t.Fatal("NewAppLP default is not LP-based")
	}
	want := bruteMISDP(smallMISDP())
	res, _, err := core.SolveParallel(app, ug.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal || math.Abs(-res.Obj-want) > 1e-3 {
		t.Fatalf("%+v want %v", res, want)
	}
}
