// Package misdp is the SCIP-SDP analogue: a mixed-integer semidefinite
// programming solver built as plugins on the scip framework. It supports
// the same two solution approaches as SCIP-SDP — an LP-based
// cutting-plane approach using Sherali–Fraticelli eigenvector cuts, and
// a nonlinear branch-and-bound approach solving a continuous SDP
// relaxation (with penalty formulation) at every node — plus dual
// fixing, randomized fix-and-solve rounding, and the LP/SDP racing
// settings ladder that ug[SCIP-SDP,*] uses for its hybrid solver.
package misdp

import (
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/lp"
	"repro/internal/num"
	"repro/internal/scip"
	"repro/internal/sdp"
)

// MISDP is a mixed-integer SDP in the paper's dual form (8):
//
//	sup  Bᵀy
//	s.t. C_k − Σ_i A_{k,i} y_i ⪰ 0  for every block k,
//	     Rowᵀy ≤ rhs, Lo ≤ y ≤ Up, y_i ∈ Z for i ∈ I.
type MISDP struct {
	Name   string
	M      int
	B      []float64
	Lo, Up []float64
	IsInt  []bool
	Blocks []*sdp.Block
	Rows   []sdp.Row
}

// AddVar appends a variable and returns its index.
func (p *MISDP) AddVar(b, lo, up float64, isInt bool) int {
	p.B = append(p.B, b)
	p.Lo = append(p.Lo, lo)
	p.Up = append(p.Up, up)
	p.IsInt = append(p.IsInt, isInt)
	p.M++
	return p.M - 1
}

// Eval returns Bᵀy.
func (p *MISDP) Eval(y []float64) float64 {
	var acc float64
	for i := 0; i < p.M; i++ {
		acc += p.B[i] * y[i]
	}
	return acc
}

// Feasible checks integrality, bounds, rows and PSD blocks at y.
func (p *MISDP) Feasible(y []float64, tol float64) bool {
	for i := 0; i < p.M; i++ {
		if y[i] < p.Lo[i]-tol || y[i] > p.Up[i]+tol {
			return false
		}
		if p.IsInt[i] && math.Abs(y[i]-math.Round(y[i])) > tol {
			return false
		}
	}
	for _, r := range p.Rows {
		var ax float64
		for i, a := range r.Coef {
			ax += a * y[i]
		}
		if ax > r.RHS+tol {
			return false
		}
	}
	for _, blk := range p.Blocks {
		lam, _ := linalg.MinEigen(blk.Z(y))
		if lam < -tol {
			return false
		}
	}
	return true
}

// Instance is the model-level problem data shared by all nodes; it is
// immutable during the search (MISDP branching is plain variable
// branching), so clones share the pointer.
type Instance struct {
	P *MISDP
}

// Def implements scip.ProblemDef for MISDP.
type Def struct {
	// SkipDualFix disables the dual-fixing presolve (for ablations).
	SkipDualFix bool
	FixedOut    int // variables fixed by the last Presolve call
}

// Presolve implements scip.ProblemDef: SCIP-SDP's dual fixing. A
// variable whose objective cannot improve by moving up and whose
// coefficient matrices only shrink every block when increased (A_{k,i}
// PSD, row coefficients ≥ 0) is fixed to its lower bound; symmetrically
// for the upper bound.
func (d *Def) Presolve(data any, _ float64) (any, float64) {
	p := data.(*MISDP)
	d.FixedOut = 0
	if d.SkipDualFix {
		return p, 0
	}
	for i := 0; i < p.M; i++ {
		if math.IsInf(p.Lo[i], -1) || math.IsInf(p.Up[i], 1) || p.Up[i]-p.Lo[i] < 1e-12 {
			continue
		}
		psd, nsd := true, true
		for _, blk := range p.Blocks {
			a := blk.A[i]
			if a == nil {
				continue
			}
			lam, _ := linalg.MinEigen(a)
			if lam < -1e-9 {
				psd = false
			}
			neg := a.Clone()
			neg.Scale(-1)
			lamN, _ := linalg.MinEigen(neg)
			if lamN < -1e-9 {
				nsd = false
			}
			if !psd && !nsd {
				break
			}
		}
		posRows, negRows := true, true
		for _, r := range p.Rows {
			if r.Coef[i] < 0 {
				posRows = false
			}
			if r.Coef[i] > 0 {
				negRows = false
			}
		}
		if p.B[i] <= 0 && psd && posRows {
			p.Up[i] = p.Lo[i]
			d.FixedOut++
		} else if p.B[i] >= 0 && nsd && negRows {
			p.Lo[i] = p.Up[i]
			d.FixedOut++
		}
	}
	return p, 0
}

// BuildModel implements scip.ProblemDef: variables carry −B (scip
// minimizes), linear rows become model rows, and the SDP cones live in
// the constraint handler / relaxator.
func (d *Def) BuildModel(data any) *scip.Prob {
	p := data.(*MISDP)
	integral := true
	prob := &scip.Prob{Name: "misdp:" + p.Name, Data: &Instance{P: p}}
	for i := 0; i < p.M; i++ {
		vt := scip.Continuous
		if p.IsInt[i] {
			if p.Lo[i] >= 0 && p.Up[i] <= 1 {
				vt = scip.Binary
			} else {
				vt = scip.Integer
			}
		} else {
			integral = false
		}
		if !num.Integral(p.B[i], 0) { // exact data integrality: only then may bounds be rounded
			integral = false
		}
		prob.AddVar(fmt.Sprintf("y_%d", i), p.Lo[i], p.Up[i], -p.B[i], vt)
	}
	for r, row := range p.Rows {
		var coefs []lp.Nonzero
		for i, a := range row.Coef {
			if num.Nonzero(a) {
				coefs = append(coefs, lp.Nonzero{Col: i, Val: a})
			}
		}
		prob.AddRow(fmt.Sprintf("lin_%d", r), lp.LE, row.RHS, coefs)
	}
	prob.IntegralObj = integral
	return prob
}

// CloneData implements scip.ProblemDef; MISDP data is immutable.
func (d *Def) CloneData(data any) any { return data }

// ApplyDecision implements scip.ProblemDef; MISDP uses variable
// branching only, so there are no problem-specific decisions.
func (d *Def) ApplyDecision(any, scip.Decision) {}
