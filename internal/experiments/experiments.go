// Package experiments contains the harness that regenerates every table
// and figure of the paper's evaluation section (section 4): Table 1
// (shared-memory ug[SCIP-Jack] scaling), Table 2 (checkpoint-restart
// series on a bip instance), Table 3 (incumbent-improvement runs with
// racing), Table 4 (ug[SCIP-SDP] speedups over the CBLIB families) and
// Figure 1 (racing-winner statistics per setting). The same code backs
// bench_test.go (scaled-down) and cmd/benchtables (full runs); instance
// dimensions are reduced versus the paper per DESIGN.md's substitution
// notes, so shapes — not absolute numbers — are the reproduction target.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/misdp"
	"repro/internal/misdp/testsets"
	"repro/internal/scip"
	"repro/internal/steiner"
	"repro/internal/ug"
)

// ShiftedGeoMean computes the shifted geometric mean with shift s, the
// aggregation used throughout the paper's Table 4.
func ShiftedGeoMean(times []float64, shift float64) float64 {
	if len(times) == 0 {
		return 0
	}
	var acc float64
	for _, t := range times {
		acc += math.Log(t + shift)
	}
	return math.Exp(acc/float64(len(times))) - shift
}

// ----------------------------------------------------------------------
// Table 1: shared-memory scaling of ug[SCIP-Jack,C++11].

// SteinerInstance names one Table-1 instance.
type SteinerInstance struct {
	Name  string
	Build func() *steiner.SPG
}

// Table1Row is one column of the paper's Table 1 (an instance).
type Table1Row struct {
	Name               string
	Times              map[int]float64 // threads → seconds
	Solved             map[int]bool
	RootTime           float64
	MaxSolvers         int
	FirstMaxActiveTime float64
	Objective          float64
}

// RunTable1 solves every instance at every thread count with normal
// ramp-up, recording the statistics of the paper's Table 1.
func RunTable1(instances []SteinerInstance, threads []int, timeLimit float64) []Table1Row {
	var rows []Table1Row
	for _, insts := range instances {
		row := Table1Row{
			Name:   insts.Name,
			Times:  map[int]float64{},
			Solved: map[int]bool{},
		}
		maxThreads := threads[len(threads)-1]
		for _, th := range threads {
			app := steiner.NewAppWithSettings(insts.Build(), scalingLadder())
			res, factory, err := core.SolveParallel(app, ug.Config{
				Workers:        th,
				TimeLimit:      timeLimit,
				StatusInterval: 2e-3,
				ShipInterval:   1e-3,
			})
			if err != nil {
				panic(err)
			}
			row.Times[th] = res.Stats.Time
			row.Solved[th] = res.Optimal
			if res.Optimal {
				row.Objective = res.Obj + factory.ObjOffset()
			}
			if th == maxThreads {
				// Root time, solver utilization measured at max parallelism,
				// as in the paper's bottom rows.
				row.RootTime = res.Stats.RootTime
				row.MaxSolvers = res.Stats.MaxActive
				row.FirstMaxActiveTime = res.Stats.FirstMaxActiveTime
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatTable1 renders rows in the layout of the paper's Table 1.
func FormatTable1(rows []Table1Row, threads []int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s", "# Threads")
	for _, r := range rows {
		fmt.Fprintf(&b, "%12s", r.Name)
	}
	b.WriteByte('\n')
	for _, th := range threads {
		fmt.Fprintf(&b, "%-22d", th)
		for _, r := range rows {
			mark := ""
			if !r.Solved[th] {
				mark = "*"
			}
			fmt.Fprintf(&b, "%11.2f%s", r.Times[th], orSpace(mark))
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-22s", "root time")
	for _, r := range rows {
		fmt.Fprintf(&b, "%12.2f", r.RootTime)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-22s", "max # solvers")
	for _, r := range rows {
		fmt.Fprintf(&b, "%12d", r.MaxSolvers)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-22s", "first max active time")
	for _, r := range rows {
		fmt.Fprintf(&b, "%12.2f", r.FirstMaxActiveTime)
	}
	b.WriteByte('\n')
	b.WriteString("(* = hit the time limit)\n")
	return b.String()
}

func orSpace(s string) string {
	if s == "" {
		return " "
	}
	return s
}

// ----------------------------------------------------------------------
// Table 2: checkpoint-restart series (bip52u).

// Table2Row is one run of the restart series.
type Table2Row struct {
	Run           string
	Cores         int
	TimeSec       float64
	IdleMax       float64
	TransNodes    int64
	InitialPrimal float64
	InitialDual   float64
	FinalPrimal   float64
	FinalDual     float64
	InitialGap    float64
	FinalGap      float64
	Nodes         int64
	OpenStart     int
	OpenEnd       int
	Optimal       bool
}

// RunTable2 reproduces the bip52u experiment: a series of time-limited
// runs, each restarted from the previous run's checkpoint, with the last
// run (no limit) closing the instance. offset is the presolve objective
// offset applied for reporting.
func RunTable2(build func() *steiner.SPG, workers int, runSeconds float64, maxRuns int, ckptPath string) []Table2Row {
	var rows []Table2Row
	restart := ""
	for runIdx := 1; runIdx <= maxRuns; runIdx++ {
		cfg := ug.Config{
			Workers:         workers,
			TimeLimit:       runSeconds,
			CheckpointPath:  ckptPath,
			CheckpointEvery: runSeconds / 20,
			RestartFrom:     restart,
			StatusInterval:  2e-3,
			ShipInterval:    1e-3,
		}
		if runIdx == maxRuns {
			cfg.TimeLimit = 0 // final run: solve to optimality
		}
		res, factory, err := core.SolveParallel(steiner.NewAppWithSettings(build(), scalingLadder()), cfg)
		if err != nil {
			panic(err)
		}
		off := factory.ObjOffset()
		st := res.Stats
		maxIdle := 0.0
		for _, r := range st.IdleRatio {
			if r > maxIdle {
				maxIdle = r
			}
		}
		row := Table2Row{
			Run:           fmt.Sprintf("1.%d", runIdx),
			Cores:         workers,
			TimeSec:       st.Time,
			IdleMax:       maxIdle,
			TransNodes:    st.Dispatched,
			InitialPrimal: st.InitialPrimal + off,
			InitialDual:   st.InitialDual + off,
			FinalPrimal:   st.FinalPrimal + off,
			FinalDual:     st.FinalDual + off,
			InitialGap:    gapPct(st.InitialPrimal+off, st.InitialDual+off),
			FinalGap:      gapPct(st.FinalPrimal+off, st.FinalDual+off),
			Nodes:         st.TotalNodes,
			OpenStart:     st.PoolAtStart,
			OpenEnd:       st.OpenAtEnd,
			Optimal:       res.Optimal,
		}
		rows = append(rows, row)
		if res.Optimal {
			break
		}
		restart = ckptPath
	}
	return rows
}

func gapPct(primal, dual float64) float64 {
	if math.IsInf(primal, 1) || math.IsInf(dual, -1) || math.Abs(primal) < 1e-12 {
		return math.Inf(1)
	}
	return 100 * (primal - dual) / math.Abs(primal)
}

// FormatTable2 renders the restart series like the paper's Table 2.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %6s %9s %7s %9s | %10s %10s %7s | %9s %10s\n",
		"Run", "Cores", "Time(s)", "Idle%", "Trans.",
		"Primal", "Dual", "Gap%", "Nodes", "Open")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-5s %6d %9.2f %7.1f %9d | %10.2f %10.2f %7.2f | %9s %10d\n",
			r.Run, r.Cores, r.TimeSec, 100*r.IdleMax, r.TransNodes,
			r.InitialPrimal, r.InitialDual, r.InitialGap, "0", r.OpenStart)
		fmt.Fprintf(&b, "%-5s %6s %9s %7s %9s | %10.2f %10.2f %7.2f | %9d %10d\n",
			"", "", "", "", "",
			r.FinalPrimal, r.FinalDual, r.FinalGap, r.Nodes, r.OpenEnd)
	}
	return b.String()
}

// ----------------------------------------------------------------------
// Table 3: incumbent-improvement runs with racing ramp-up (hc10p).

// Table3Row is one seeded racing run.
type Table3Row struct {
	Run           int
	TimeSec       float64
	InitialPrimal float64
	FinalPrimal   float64
	FinalDual     float64
	Nodes         int64
	Improved      bool
	Optimal       bool
}

// RunTable3 reproduces the hc10p experiment: repeated time-limited
// racing runs, each seeded with the previous run's best solution;
// the interest is whether each run improves the incumbent.
func RunTable3(build func() *steiner.SPG, workers, runs int, runSeconds float64) []Table3Row {
	var rows []Table3Row
	var seed *ug.Solution
	for runIdx := 1; runIdx <= runs; runIdx++ {
		// Each run races with freshly seeded settings (the paper's runs
		// differ too — new racing trees are the point of re-running).
		ladder := scalingLadder()
		for i := range ladder {
			ladder[i].Seed += int64(runIdx * 7919)
			ladder[i].PermuteTieBreak = true
		}
		res, factory, err := core.SolveParallel(steiner.NewAppWithSettings(build(), ladder), ug.Config{
			Workers:         workers,
			TimeLimit:       runSeconds,
			RampUp:          ug.RampUpRacing,
			RacingTime:      runSeconds / 5,
			InitialSolution: seed,
			StatusInterval:  2e-3,
			ShipInterval:    1e-3,
		})
		if err != nil {
			panic(err)
		}
		off := factory.ObjOffset()
		st := res.Stats
		row := Table3Row{
			Run:           runIdx,
			TimeSec:       st.Time,
			InitialPrimal: st.InitialPrimal + off,
			FinalPrimal:   st.FinalPrimal + off,
			FinalDual:     st.FinalDual + off,
			Nodes:         st.TotalNodes,
			Improved:      st.FinalPrimal < st.InitialPrimal-1e-9,
			Optimal:       res.Optimal,
		}
		rows = append(rows, row)
		if res.Sol != nil {
			seed = res.Sol
		}
		if res.Optimal {
			break
		}
	}
	return rows
}

// FormatTable3 renders the run series like the paper's Table 3.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %9s | %12s %12s %10s | %9s %9s %8s\n",
		"Run", "Time(s)", "Primal(in)", "Primal(out)", "Dual", "Nodes", "Improved", "Optimal")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-4d %9.2f | %12.2f %12.2f %10.2f | %9d %9v %8v\n",
			r.Run, r.TimeSec, r.InitialPrimal, r.FinalPrimal, r.FinalDual,
			r.Nodes, r.Improved, r.Optimal)
	}
	return b.String()
}

// ----------------------------------------------------------------------
// Table 4: ug[SCIP-SDP,C++11] over the CBLIB families.

// MISDPInstance names one Table-4 instance.
type MISDPInstance struct {
	Family string // "TTD", "CLS", "Mk-P"
	Build  func() *misdp.MISDP
}

// Table4Cell aggregates one (solver, family) cell.
type Table4Cell struct {
	Solved int
	Time   float64 // shifted geometric mean, s=10
}

// Table4Result holds the full table: rows are solver configurations
// ("SCIP-SDP" sequential + "ug [...] N thr."), columns are the families
// plus "Total".
type Table4Result struct {
	RowNames []string
	Families []string
	Cells    map[string]map[string]Table4Cell // row → family → cell
}

// StandardTestsets builds the scaled-down CBLIB families: truss topology
// design, cardinality-constrained least squares, min k-partitioning.
func StandardTestsets(perFamily int) []MISDPInstance {
	var out []MISDPInstance
	// Sizes chosen at each family's characteristic regime: TTD with a
	// moderate ground structure (SDP relaxations strong), CLS with big-M
	// support selection (LP cutting planes excel), Mk-P at a block order
	// where eigenvector-cut LPs start struggling while the SDP
	// relaxation stays cheap — the contrast racing ramp-up exploits.
	for i := 0; i < perFamily; i++ {
		seed := int64(i + 1)
		out = append(out, MISDPInstance{Family: "TTD", Build: func() *misdp.MISDP {
			return testsets.TTD(5, 14, 3, seed)
		}})
	}
	for i := 0; i < perFamily; i++ {
		seed := int64(i + 1)
		out = append(out, MISDPInstance{Family: "CLS", Build: func() *misdp.MISDP {
			return testsets.CLS(8, 11, 3, seed)
		}})
	}
	for i := 0; i < perFamily; i++ {
		seed := int64(i + 1)
		out = append(out, MISDPInstance{Family: "Mk-P", Build: func() *misdp.MISDP {
			return testsets.MkP(11, 3, seed)
		}})
	}
	return out
}

// RunTable4 runs the sequential SCIP-SDP baseline plus ug[SCIP-SDP] at
// each thread count over all instances.
func RunTable4(instances []MISDPInstance, threadCounts []int, timeLimit float64) *Table4Result {
	res := &Table4Result{
		Families: []string{"TTD", "CLS", "Mk-P"},
		Cells:    map[string]map[string]Table4Cell{},
	}
	type obs struct {
		family string
		time   float64
		solved bool
	}
	collect := func(rowName string, run func(inst MISDPInstance) (float64, bool)) {
		res.RowNames = append(res.RowNames, rowName)
		var all []obs
		for _, inst := range instances {
			t, ok := run(inst)
			all = append(all, obs{inst.Family, t, ok})
		}
		cells := map[string]Table4Cell{}
		for _, fam := range append([]string{"Total"}, res.Families...) {
			var times []float64
			solved := 0
			for _, o := range all {
				if fam != "Total" && o.family != fam {
					continue
				}
				times = append(times, o.time)
				if o.solved {
					solved++
				}
			}
			cells[fam] = Table4Cell{Solved: solved, Time: ShiftedGeoMean(times, 10)}
		}
		res.Cells[rowName] = cells
	}

	// Sequential SCIP-SDP (default SDP-based configuration).
	collect("SCIP-SDP", func(inst MISDPInstance) (float64, bool) {
		set := misdp.SDPSettings()
		set.TimeLimit = timeLimit
		solver, st, _ := core.SolveSequential(misdp.NewApp(inst.Build(), 4), set)
		_ = solver
		return math.Min(elapsedOf(solver), timeLimit), st == scip.StatusOptimal
	})
	for _, th := range threadCounts {
		th := th
		collect(fmt.Sprintf("ug [SCIP-SDP] %d thr.", th), func(inst MISDPInstance) (float64, bool) {
			cfg := ug.Config{
				Workers:        th,
				TimeLimit:      timeLimit,
				StatusInterval: 2e-3,
				ShipInterval:   1e-3,
			}
			if th > 1 {
				cfg.RampUp = ug.RampUpRacing
				cfg.RacingTime = math.Min(0.2, timeLimit/10)
			}
			r, _, err := core.SolveParallel(misdp.NewApp(inst.Build(), 2*th), cfg)
			if err != nil {
				panic(err)
			}
			return math.Min(r.Stats.Time, timeLimit), r.Optimal
		})
	}
	return res
}

func elapsedOf(s *scip.Solver) float64 { return s.Elapsed() }

// FormatTable4 renders the table like the paper's Table 4.
func (t *Table4Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s", "solver")
	for _, fam := range append(t.Families, "Total") {
		fmt.Fprintf(&b, " | %6s %8s", fam, "time")
	}
	b.WriteByte('\n')
	for _, row := range t.RowNames {
		fmt.Fprintf(&b, "%-24s", row)
		for _, fam := range append(t.Families, "Total") {
			c := t.Cells[row][fam]
			fmt.Fprintf(&b, " | %6d %8.2f", c.Solved, c.Time)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ----------------------------------------------------------------------
// Figure 1: racing-winner statistics per setting.

// Figure1Result counts racing winners per settings name, per family.
type Figure1Result struct {
	// Winners[settingsName][family] = count
	Winners map[string]map[string]int
	// Excluded counts instances solved during racing (the paper excludes
	// them from the figure).
	Excluded int
}

// RunFigure1 races the full settings ladder on every instance and
// records which setting wins, per family, mirroring the paper's
// Figure 1 (odd settings = SDP-based, even = LP-based).
func RunFigure1(instances []MISDPInstance, workers, ladder int, timeLimit float64) *Figure1Result {
	out := &Figure1Result{Winners: map[string]map[string]int{}}
	for _, inst := range instances {
		app := core.App{
			Name:        "SCIP-SDP",
			Def:         &misdp.Def{},
			Data:        inst.Build(),
			MakePlugins: func() *scip.Plugins { return misdp.NewPlugins() },
			Settings:    misdp.SettingsLadder(ladder),
		}
		res, _, err := core.SolveParallel(app, ug.Config{
			Workers:        workers,
			RampUp:         ug.RampUpRacing,
			RacingTime:     math.Min(0.25, timeLimit/4),
			TimeLimit:      timeLimit,
			StatusInterval: 2e-3,
			ShipInterval:   1e-3,
		})
		if err != nil {
			panic(err)
		}
		if res.Stats.SolvedInRacing {
			// Still attributed in the paper's sense? No: instances solved
			// during racing are excluded from Figure 1.
			out.Excluded++
			continue
		}
		if res.Stats.RacingWinner < 0 {
			continue
		}
		name := res.Stats.RacingWinnerName
		if out.Winners[name] == nil {
			out.Winners[name] = map[string]int{}
		}
		out.Winners[name][inst.Family]++
	}
	return out
}

// Format renders the histogram (settings sorted by name).
func (f *Figure1Result) Format() string {
	var names []string
	for n := range f.Winners {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %6s %6s %6s %6s\n", "setting", "TTD", "CLS", "Mk-P", "total")
	for _, n := range names {
		w := f.Winners[n]
		fmt.Fprintf(&b, "%-22s %6d %6d %6d %6d\n", n, w["TTD"], w["CLS"], w["Mk-P"],
			w["TTD"]+w["CLS"]+w["Mk-P"])
	}
	fmt.Fprintf(&b, "(%d instances solved during racing, excluded as in the paper)\n", f.Excluded)
	return b.String()
}
