package experiments

import (
	"math"
	"path/filepath"
	"strings"
	"testing"
)

func TestShiftedGeoMean(t *testing.T) {
	// With shift 0 it is the plain geometric mean.
	if g := ShiftedGeoMean([]float64{4, 9}, 0); math.Abs(g-6) > 1e-12 {
		t.Fatalf("geomean = %v, want 6", g)
	}
	// Shifted: exp(mean(log(t+10)))−10.
	if g := ShiftedGeoMean([]float64{0, 0}, 10); math.Abs(g) > 1e-12 {
		t.Fatalf("shifted geomean of zeros = %v", g)
	}
	if ShiftedGeoMean(nil, 10) != 0 {
		t.Fatal("empty mean should be 0")
	}
	// Order invariance.
	a := ShiftedGeoMean([]float64{1, 5, 20}, 10)
	b := ShiftedGeoMean([]float64{20, 1, 5}, 10)
	if math.Abs(a-b) > 1e-12 {
		t.Fatal("not symmetric")
	}
}

func TestGapPct(t *testing.T) {
	if g := gapPct(100, 99); math.Abs(g-1) > 1e-9 {
		t.Fatalf("gap = %v, want 1", g)
	}
	if !math.IsInf(gapPct(math.Inf(1), 5), 1) {
		t.Fatal("gap with infinite primal should be +Inf")
	}
}

// The Table-1 experiment at tiny scale: the root-dominated instance must
// not use more than a couple of solvers, and the formatted output must
// contain the paper's row labels.
func TestTable1ShapeAndFormat(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	instances := Table1Instances()[:1] // the root-dominated cc3-4p analogue
	threads := []int{1, 2}
	rows := RunTable1(instances, threads, 20)
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
	r := rows[0]
	if !r.Solved[1] || !r.Solved[2] {
		t.Fatalf("cc3-4p analogue unsolved: %+v", r)
	}
	if r.MaxSolvers > 2 {
		t.Fatalf("root-dominated instance used %d solvers", r.MaxSolvers)
	}
	if r.RootTime <= 0 {
		t.Fatalf("no root time measured: %+v", r)
	}
	out := FormatTable1(rows, threads)
	for _, label := range []string{"# Threads", "root time", "max # solvers", "first max active time"} {
		if !strings.Contains(out, label) {
			t.Fatalf("formatted table missing %q:\n%s", label, out)
		}
	}
}

func TestTable2SeriesCloses(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ckpt := filepath.Join(t.TempDir(), "t2.ckpt")
	rows := RunTable2(Table2Instance(), 2, 0.3, 10, ckpt)
	if len(rows) == 0 {
		t.Fatal("no runs")
	}
	last := rows[len(rows)-1]
	if !last.Optimal {
		t.Fatalf("series did not close: %+v", last)
	}
	if last.FinalGap > 1e-6 {
		t.Fatalf("final gap %v", last.FinalGap)
	}
	// Dual bounds must not regress across runs.
	for i := 1; i < len(rows); i++ {
		if rows[i].InitialDual < rows[i-1].FinalDual-1e-6 {
			t.Fatalf("dual bound regressed between runs %d and %d", i-1, i)
		}
	}
	out := FormatTable2(rows)
	if !strings.Contains(out, "Trans.") {
		t.Fatalf("format missing columns:\n%s", out)
	}
}

func TestTable3RunsAndFormat(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows := RunTable3(Table3Instance(), 2, 2, 1.0)
	if len(rows) == 0 {
		t.Fatal("no runs")
	}
	// Primal never worsens across seeded runs.
	for i := 1; i < len(rows); i++ {
		if rows[i].FinalPrimal > rows[i-1].FinalPrimal+1e-6 {
			t.Fatalf("primal worsened: %+v", rows)
		}
	}
	out := FormatTable3(rows)
	if !strings.Contains(out, "Primal(out)") {
		t.Fatalf("format wrong:\n%s", out)
	}
}

func TestTable4SmallAndFormat(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := RunTable4(StandardTestsets(1), []int{1, 2}, 6)
	if len(res.RowNames) != 3 { // sequential + 2 thread counts
		t.Fatalf("rows: %v", res.RowNames)
	}
	for _, row := range res.RowNames {
		total := res.Cells[row]["Total"]
		if total.Solved < 0 || total.Solved > 3 {
			t.Fatalf("row %s solved %d of 3", row, total.Solved)
		}
	}
	out := res.Format()
	for _, fam := range []string{"TTD", "CLS", "Mk-P", "Total"} {
		if !strings.Contains(out, fam) {
			t.Fatalf("format missing %s:\n%s", fam, out)
		}
	}
}

func TestFigure1SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := RunFigure1(StandardTestsets(1), 4, 4, 6)
	total := res.Excluded
	for _, fams := range res.Winners {
		for _, c := range fams {
			total += c
		}
	}
	if total != 3 {
		t.Fatalf("winners+excluded = %d, want 3 instances", total)
	}
	out := res.Format()
	if !strings.Contains(out, "setting") {
		t.Fatalf("format wrong:\n%s", out)
	}
}

func TestStandardTestsetsComposition(t *testing.T) {
	insts := StandardTestsets(4)
	counts := map[string]int{}
	for _, in := range insts {
		counts[in.Family]++
		if in.Build() == nil {
			t.Fatal("nil instance")
		}
	}
	if counts["TTD"] != 4 || counts["CLS"] != 4 || counts["Mk-P"] != 4 {
		t.Fatalf("composition: %v", counts)
	}
}
