package experiments

import (
	"repro/internal/scip"
	"repro/internal/steiner"
	"repro/internal/steiner/puc"
)

// ScalingSettings is the solver configuration used for the Table 1–3
// runs: moderate separation, so the search trees stay large enough to
// exercise the parallelization (the aggressive root-separation default
// collapses the scaled-down instances to a handful of nodes, leaving
// nothing to parallelize).
func ScalingSettings() scip.Settings {
	s := steiner.DefaultSettings()
	s.Name = "stp-scaling"
	s.SepaRounds = 8
	s.MaxCutRows = 150
	return s
}

// scalingLadder is ScalingSettings plus the racing variations.
func scalingLadder() []scip.Settings {
	ladder := append([]scip.Settings{ScalingSettings()}, steiner.RacingLadder(15)...)
	for i := range ladder[1:] {
		ladder[i+1].SepaRounds = 8
		ladder[i+1].MaxCutRows = 150
	}
	return ladder
}

// The paper's instances and their scaled-down analogues. PUC's original
// dimensions (hc7 = 128 vertices, hc10 = 1024, bip52u = 2200) are far
// beyond a single-machine pure-Go LP engine; these analogues keep each
// family's structure — hypercubes with half/many terminals, Hamming
// (code-cover) graphs, bipartite covering structure — at dimensions
// where the study's phenomena (root-time share, ramp-up speed, solver
// utilisation, restart behaviour) are measurable. The cost spread of
// the hc analogues is the difficulty dial (see puc.HypercubeSpread).

// Table1Instances returns the five Table-1 instances: the first is
// root-dominated (the paper's cc3-4p role: little tree-parallelism),
// the later ones have progressively larger trees and faster ramp-up
// (the hc7u role).
func Table1Instances() []SteinerInstance {
	return []SteinerInstance{
		// Root-dominated: nearly the whole solve happens before any
		// parallelism exists (the paper's cc3-4p: highest root-time share,
		// lowest solver utilisation, worst scaling).
		{Name: "cc3-4p", Build: func() *steiner.SPG { return puc.CodeCover(3, 4, 8, true, 341) }},
		{Name: "cc3-5u", Build: func() *steiner.SPG { return puc.CodeCover(3, 5, 13, false, 352) }},
		// Moderate trees from the hc5 family's transition band.
		{Name: "cc5-3p", Build: func() *steiner.SPG { return puc.HypercubeSpread(5, 16, 100, 163, 19) }},
		{Name: "hc7p", Build: func() *steiner.SPG { return puc.HypercubeSpread(5, 16, 100, 165, 23) }},
		// The paper's hc7u role — and its headline phenomenon: this hc6
		// instance is open after 120s sequentially (sub-percent gap,
		// hundreds of nodes) but parallel ParaSolvers close it in seconds.
		{Name: "hc7u", Build: func() *steiner.SPG { return puc.HypercubeSpread(6, 32, 100, 168, 3) }},
	}
}

// Table2Instance returns the bip52u analogue used for the
// checkpoint-restart series.
func Table2Instance() func() *steiner.SPG {
	// A transition-band hc5 instance: hard enough that sub-second run
	// slices leave work for several restarts, bounded enough that the
	// final run closes it reliably. (The hc6 open instance of Table 1's
	// hc7u column is unsuitable here: proving it from restored primitive
	// nodes foregoes the fresh racing luck that closes it, mirroring the
	// paper's remark that regenerating the search tree after a restart
	// has a real cost.)
	return func() *steiner.SPG { return puc.HypercubeSpread(5, 16, 100, 163, 19) }
}

// Table3Instance returns the hc10p analogue used for the seeded
// incumbent-improvement runs: an instance from the intractable side of
// the hc family's difficulty cliff, where runs improve the incumbent
// without closing the gap — exactly the paper's hc10p situation.
func Table3Instance() func() *steiner.SPG {
	return func() *steiner.SPG { return puc.Hypercube(5, true, 5) }
}
