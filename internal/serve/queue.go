package serve

import (
	"errors"
	"sync"

	"repro/internal/obs"
)

// ErrQueueFull is returned by push when the queue is at capacity — the
// admission-control backpressure signal (HTTP 429 at the API edge).
var ErrQueueFull = errors.New("serve: job queue full")

// ErrDraining is returned by push once the queue stopped admitting
// (graceful shutdown began).
var ErrDraining = errors.New("serve: draining, not accepting jobs")

// queue is the bounded priority job queue: higher Spec.Priority pops
// first, FIFO (admission seq) within a priority. pop blocks; remove
// supports cancel-while-queued. All methods are safe for concurrent
// use.
type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	heap   []*Job
	cap    int
	closed bool
	depth  *obs.Gauge // serve.queue.depth (nil-safe)
}

func newQueue(capacity int, depth *obs.Gauge) *queue {
	if capacity < 1 {
		capacity = 1
	}
	q := &queue{cap: capacity, depth: depth}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// less orders the heap: higher priority first, then admission order.
func jobLess(a, b *Job) bool {
	if a.Spec.Priority != b.Spec.Priority {
		return a.Spec.Priority > b.Spec.Priority
	}
	return a.seq < b.seq
}

// push admits a job, or reports ErrQueueFull / ErrDraining.
func (q *queue) push(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrDraining
	}
	if len(q.heap) >= q.cap {
		return ErrQueueFull
	}
	q.heap = append(q.heap, j)
	q.up(len(q.heap) - 1)
	q.depth.Set(int64(len(q.heap)))
	q.cond.Signal()
	return nil
}

// pop blocks until a job is available or the queue is closed and
// drained; ok=false signals the latter.
func (q *queue) pop() (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.heap) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.heap) == 0 {
		return nil, false
	}
	j := q.popLocked()
	q.depth.Set(int64(len(q.heap)))
	return j, true
}

// remove takes a specific job out of the queue (cancel-while-queued),
// reporting whether it was still queued.
func (q *queue) remove(j *Job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i, h := range q.heap {
		if h == j {
			last := len(q.heap) - 1
			q.heap[i] = q.heap[last]
			q.heap[last] = nil
			q.heap = q.heap[:last]
			if i < last {
				if !q.down(i) {
					q.up(i)
				}
			}
			q.depth.Set(int64(len(q.heap)))
			return true
		}
	}
	return false
}

// drain closes the queue for new pushes and removes every queued job,
// returning them (the server cancels them as "drained"). Blocked pop
// calls return ok=false.
func (q *queue) drain() []*Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	out := q.heap
	q.heap = nil
	q.depth.Set(0)
	q.cond.Broadcast()
	return out
}

// len returns the queued-job count.
func (q *queue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.heap)
}

// popLocked removes and returns the best job. Caller holds mu.
func (q *queue) popLocked() *Job {
	j := q.heap[0]
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.heap[last] = nil
	q.heap = q.heap[:last]
	if last > 0 {
		q.down(0)
	}
	return j
}

// up restores the heap property from index i toward the root.
func (q *queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !jobLess(q.heap[i], q.heap[parent]) {
			return
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

// down restores the heap property from index i toward the leaves,
// reporting whether anything moved.
func (q *queue) down(i int) bool {
	moved := false
	n := len(q.heap)
	for {
		best := i
		if l := 2*i + 1; l < n && jobLess(q.heap[l], q.heap[best]) {
			best = l
		}
		if r := 2*i + 2; r < n && jobLess(q.heap[r], q.heap[best]) {
			best = r
		}
		if best == i {
			return moved
		}
		q.heap[i], q.heap[best] = q.heap[best], q.heap[i]
		i = best
		moved = true
	}
}
