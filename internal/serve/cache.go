package serve

import (
	"errors"
	"sync"

	"repro/internal/obs"
	"repro/internal/scip"
)

// errStopped reports that the caller's stop channel fired while waiting
// for a presolve in flight; the presolve itself keeps running and still
// populates the cache for later submissions.
var errStopped = errors.New("serve: stopped while waiting for presolve")

// PresolveCache amortizes the global reduction phase across
// submissions: instance content hash → presolved *scip.Prob + objective
// offset. Entries are shared read-only (exactly how core.Factory shares
// its presolve result across in-process ParaSolvers), evicted LRU under
// a byte budget, and presolved at most once per key no matter how many
// submissions race on it (singleflight): the first caller runs the
// presolve in its own goroutine, everyone else waits on the same entry,
// and a waiter whose deadline fires abandons the wait without killing
// the presolve.
type PresolveCache struct {
	mu      sync.Mutex
	budget  int64 // byte budget; <=0 means unbounded
	cur     int64 // bytes held by ready entries
	entries map[string]*cacheEntry

	// LRU over ready entries: head is most recent, tail evicts first.
	head, tail *cacheEntry

	hits    *obs.Counter // serve.cache.hit
	misses  *obs.Counter // serve.cache.miss
	evicts  *obs.Counter // serve.cache.evict
	bytes   *obs.Gauge   // serve.cache.bytes
	nGauge  *obs.Gauge   // serve.cache.entries
	sizeOf  func(*scip.Prob) int64
	started int64 // presolves actually run (test introspection)
}

// cacheEntry is one key's slot: in flight until ready is closed, then
// either a ready model (err nil, linked into the LRU) or a failure.
type cacheEntry struct {
	key    string
	prob   *scip.Prob
	offset float64
	size   int64
	err    error
	ready  chan struct{}

	prev, next *cacheEntry // LRU links, ready entries only
}

// NewPresolveCache builds a cache with the given byte budget (<=0 means
// unbounded) counting into reg (nil-safe).
func NewPresolveCache(budget int64, reg *obs.Registry) *PresolveCache {
	return &PresolveCache{
		budget:  budget,
		entries: map[string]*cacheEntry{},
		hits:    reg.Counter("serve.cache.hit"),
		misses:  reg.Counter("serve.cache.miss"),
		evicts:  reg.Counter("serve.cache.evict"),
		bytes:   reg.Gauge("serve.cache.bytes"),
		nGauge:  reg.Gauge("serve.cache.entries"),
		sizeOf:  probBytes,
	}
}

// Get returns the presolved model for key, running presolve at most
// once per key across concurrent callers. hit reports whether this
// caller skipped the reduction phase (the entry was ready or already in
// flight). stop aborts the wait (not the presolve); Get then returns
// errStopped.
func (c *PresolveCache) Get(stop <-chan struct{}, key string, presolve func() (*scip.Prob, float64, error)) (prob *scip.Prob, offset float64, hit bool, err error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		c.hits.Inc()
		if e.err == nil && e.size > 0 {
			c.touch(e)
		}
	} else {
		c.misses.Inc()
		c.started++
		e = &cacheEntry{key: key, ready: make(chan struct{})}
		c.entries[key] = e
		c.nGauge.Set(int64(len(c.entries)))
	}
	c.mu.Unlock()
	if !ok {
		// The presolve runs in its own goroutine so a deadline firing on
		// the initiating job abandons the wait while the work completes
		// and still lands in the cache.
		go c.fill(e, presolve)
	}
	select {
	case <-e.ready:
	case <-stop:
		return nil, 0, ok, errStopped
	}
	if e.err != nil {
		return nil, 0, ok, e.err
	}
	return e.prob, e.offset, ok, nil
}

// fill runs the presolve and publishes the entry (or removes it on
// failure, so the next submission retries).
func (c *PresolveCache) fill(e *cacheEntry, presolve func() (*scip.Prob, float64, error)) {
	prob, offset, err := presolve()
	c.mu.Lock()
	if err != nil {
		e.err = err
		delete(c.entries, e.key)
	} else {
		e.prob, e.offset = prob, offset
		e.size = c.sizeOf(prob)
		c.cur += e.size
		c.pushFront(e)
		c.evictOver(e)
	}
	c.nGauge.Set(int64(len(c.entries)))
	c.bytes.Set(c.cur)
	c.mu.Unlock()
	close(e.ready)
}

// evictOver drops least-recently-used ready entries until the budget
// holds, never evicting keep (the entry just inserted stays cached even
// if it alone exceeds the budget — a cache of one beats a cache of
// none). Caller holds mu.
func (c *PresolveCache) evictOver(keep *cacheEntry) {
	if c.budget <= 0 {
		return
	}
	for c.cur > c.budget && c.tail != nil && c.tail != keep {
		ev := c.tail
		c.unlink(ev)
		c.cur -= ev.size
		delete(c.entries, ev.key)
		c.evicts.Inc()
	}
}

// Len returns the number of cached (ready or in-flight) entries.
func (c *PresolveCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Bytes returns the bytes held by ready entries.
func (c *PresolveCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cur
}

// touch moves a ready entry to the LRU front. Caller holds mu.
func (c *PresolveCache) touch(e *cacheEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

// pushFront links e as the most recently used entry. Caller holds mu.
func (c *PresolveCache) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// unlink removes e from the LRU list. Caller holds mu.
func (c *PresolveCache) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.head == e {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.tail == e {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// probBytes estimates the resident size of a presolved model: variable
// and row headers plus nonzeros. It is an estimate (strings and the
// problem-specific Data payload are approximated by the per-var/per-row
// overheads), used only to hold the LRU byte budget, never for
// correctness.
func probBytes(p *scip.Prob) int64 {
	const base = 1024
	b := int64(base)
	b += int64(len(p.Vars)) * 64
	for i := range p.Rows {
		b += 64 + int64(len(p.Rows[i].Coefs))*16
	}
	return b
}
