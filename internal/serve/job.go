// Package serve is the solver-as-a-service layer: a long-running,
// multi-tenant daemon that accepts STP and MISDP instances over
// HTTP/JSON, runs them on a bounded priority job queue with per-job
// deadlines and cancellation, shares an instance-keyed presolve cache
// across submissions, and streams per-job solve progress over SSE from
// a per-job obs.Bus. The paper wraps any base solver behind one
// parallel framework; this package is the same move one level up —
// multiplexing many instances over a shared worker pool, each solve
// driving the existing core.Factory/ug coordinator in-process.
package serve

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// State is a job's lifecycle state. The machine is
//
//	queued ──► running ──► done
//	   │           ├─────► failed
//	   ├───────────┼─────► cancelled
//	   └───────────┴─────► deadline_exceeded
//
// Terminal states (done, failed, cancelled, deadline_exceeded) are
// absorbing: no transition leaves them.
type State string

// Job lifecycle states.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
	StateDeadline  State = "deadline_exceeded"
)

// transitions is the FSM's edge set: from-state → allowed to-states.
var transitions = map[State]map[State]bool{
	StateQueued: {
		StateRunning:   true,
		StateCancelled: true, // cancel-while-queued, or drained on shutdown
		StateDeadline:  true, // deadline passed before a worker picked it up
		StateFailed:    true, // instance failed to build when popped
	},
	StateRunning: {
		StateDone:      true,
		StateFailed:    true,
		StateCancelled: true, // cancel-mid-solve
		StateDeadline:  true, // deadline fired during presolve or solve
	},
}

// Terminal reports whether s is an absorbing state.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled || s == StateDeadline
}

// GenSpec selects a generated STP family by the same parameters
// cmd/stpgen takes on its command line.
type GenSpec struct {
	Family    string `json:"family"`              // hc, cc, bip
	D         int    `json:"d,omitempty"`         // dimension (hc, cc)
	A         int    `json:"a,omitempty"`         // alphabet size (cc)
	Terminals int    `json:"terminals,omitempty"` // terminal count (cc, bip, hc)
	Steiner   int    `json:"steiner,omitempty"`   // Steiner-side size (bip)
	Deg       int    `json:"deg,omitempty"`       // terminal degree (bip)
	Perturbed bool   `json:"perturbed,omitempty"` // perturbed costs (p variant)
	Seed      int64  `json:"seed,omitempty"`      // generator seed
}

// Spec is a job submission: which instance to solve and how. Exactly
// one instance source must be set — STP (inline SteinLib text),
// Instance (a named PUC analogue), Gen (stpgen parameters) for
// Kind "stp", or Family(+N/K/Seed) for Kind "misdp".
type Spec struct {
	Kind string `json:"kind"` // "stp" or "misdp"

	// STP instance sources (Kind "stp").
	STP      string   `json:"stp,omitempty"`      // inline SteinLib .stp text
	Instance string   `json:"instance,omitempty"` // named PUC-family analogue
	Gen      *GenSpec `json:"gen,omitempty"`      // stpgen-parameter generator

	// MISDP instance source (Kind "misdp").
	Family string `json:"family,omitempty"` // ttd, cls, mkp
	N      int    `json:"n,omitempty"`      // size parameter (0 = default)
	K      int    `json:"k,omitempty"`      // cardinality/classes (0 = default)
	Seed   int64  `json:"seed,omitempty"`   // instance seed (0 = 1)
	Mode   string `json:"mode,omitempty"`   // lp, sdp, hybrid (default hybrid)

	// Solve shape.
	Workers      int     `json:"workers,omitempty"`        // ParaSolvers (0 = server default)
	Racing       bool    `json:"racing,omitempty"`         // racing ramp-up
	Priority     int     `json:"priority,omitempty"`       // higher runs first
	DeadlineSec  float64 `json:"deadline_sec,omitempty"`   // wall deadline from submission (0 = none)
	TimeLimitSec float64 `json:"time_limit_sec,omitempty"` // solve time limit (0 = none)
}

// Validate checks the spec for exactly one instance source and sane
// parameters; it returns a client-facing error.
func (sp *Spec) Validate() error {
	switch sp.Kind {
	case "stp":
		n := 0
		if sp.STP != "" {
			n++
		}
		if sp.Instance != "" {
			n++
		}
		if sp.Gen != nil {
			n++
		}
		if n != 1 {
			return fmt.Errorf("kind stp needs exactly one of stp, instance, gen (got %d)", n)
		}
	case "misdp":
		switch sp.Family {
		case "ttd", "cls", "mkp":
		default:
			return fmt.Errorf("kind misdp needs family ttd, cls or mkp (got %q)", sp.Family)
		}
	default:
		return fmt.Errorf("kind must be stp or misdp (got %q)", sp.Kind)
	}
	if sp.DeadlineSec < 0 || sp.TimeLimitSec < 0 || sp.Workers < 0 {
		return fmt.Errorf("deadline_sec, time_limit_sec and workers must be non-negative")
	}
	return nil
}

// Result is a finished job's outcome in client-facing form.
type Result struct {
	Status          string  `json:"status"` // optimal, infeasible, interrupted
	Objective       float64 `json:"objective"`
	DualBound       float64 `json:"dual_bound"`
	Nodes           int64   `json:"nodes"`
	SolveSeconds    float64 `json:"solve_seconds"`
	PresolveSeconds float64 `json:"presolve_seconds"` // 0 on a cache hit
	Cache           string  `json:"cache"`            // "hit" or "miss"
	Workers         int     `json:"workers"`
}

// Job is one submission's full lifecycle. All mutable fields are
// guarded by mu; the bus and channels are set at admission and never
// change.
type Job struct {
	ID   string
	Spec Spec
	seq  int64 // admission order, the FIFO tie-break within a priority

	// bus is the job's live event plane: the solve's tracer tees into
	// it, SSE clients subscribe to it. Closed when the job reaches a
	// terminal state, which ends every stream.
	bus *obs.Bus

	// rec is the job's flight recorder, the bus's downstream sink: it
	// retains the tail of the job's event stream past the terminal
	// transition (the bus only serves live subscribers and closes with
	// the job), so /events can replay a finished job's last window and
	// a failure bundle has history to capture.
	rec *obs.Recorder

	// cancelCh fires (closes) on DELETE; the runner translates it into
	// a cooperative solver stop. closed at most once via cancelOnce.
	cancelCh   chan struct{}
	cancelOnce sync.Once

	mu           sync.Mutex
	state        State
	err          string // terminal failure detail
	result       *Result
	bundleDir    string // forensics bundle directory (failed/deadline jobs)
	bundleReason string
	created      time.Time
	started      time.Time
	finished     time.Time
	deadline     time.Time // zero = none

	done chan struct{} // closed on entering a terminal state
}

// newJob builds an admitted job in StateQueued. rec is the bus's
// downstream recorder (may be nil in tests that don't exercise replay).
func newJob(id string, seq int64, sp Spec, bus *obs.Bus, rec *obs.Recorder, now time.Time) *Job {
	j := &Job{
		ID:       id,
		Spec:     sp,
		seq:      seq,
		bus:      bus,
		rec:      rec,
		cancelCh: make(chan struct{}),
		state:    StateQueued,
		created:  now,
		done:     make(chan struct{}),
	}
	if sp.DeadlineSec > 0 {
		j.deadline = now.Add(time.Duration(sp.DeadlineSec * float64(time.Second)))
	}
	return j
}

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Deadline returns the job's absolute deadline and whether one is set.
func (j *Job) Deadline() (time.Time, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.deadline, !j.deadline.IsZero()
}

// transition moves the job to state to if the FSM allows it, returning
// whether the move happened. Entering a terminal state closes done and
// the job's bus (ending SSE streams); entering running stamps started.
func (j *Job) transition(to State) bool {
	j.mu.Lock()
	if !transitions[j.state][to] {
		j.mu.Unlock()
		return false
	}
	j.state = to
	now := time.Now()
	if to == StateRunning {
		j.started = now
	}
	terminal := to.Terminal()
	if terminal {
		j.finished = now
	}
	j.mu.Unlock()
	if terminal {
		close(j.done)
		// Closing the bus ends every subscriber stream; the solve's
		// tracer has already been closed by the runner at this point
		// (or never existed for a job that died in the queue). Bus.Close
		// is idempotent for a sink-less bus, so the runner's tracer
		// close and this one compose.
		if j.bus != nil {
			_ = j.bus.Close()
		}
	}
	return true
}

// setErr records a terminal failure detail; call before the transition.
func (j *Job) setErr(msg string) {
	j.mu.Lock()
	j.err = msg
	j.mu.Unlock()
}

// Err returns the terminal failure detail ("" while healthy).
func (j *Job) Err() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// setBundle records where the job's forensics bundle landed.
func (j *Job) setBundle(dir, reason string) {
	j.mu.Lock()
	j.bundleDir = dir
	j.bundleReason = reason
	j.mu.Unlock()
}

// BundleDir returns the job's forensics bundle directory ("" if none).
func (j *Job) BundleDir() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.bundleDir
}

// Events returns the tail of the job's event stream retained by its
// flight recorder — readable before, during and after the solve.
func (j *Job) Events() []obs.Event { return j.rec.Events() }

// setResult attaches the solve outcome; call before the terminal
// transition so watchers of Done always observe it.
func (j *Job) setResult(r *Result) {
	j.mu.Lock()
	j.result = r
	j.mu.Unlock()
}

// Cancel requests cancellation: a queued job is removed by the server
// (which owns the queue), a running one is stopped cooperatively. The
// channel close is idempotent.
func (j *Job) Cancel() {
	j.cancelOnce.Do(func() { close(j.cancelCh) })
}

// DebugInfo summarizes a failed job's forensics bundle in the job JSON.
type DebugInfo struct {
	Bundle string `json:"bundle"` // server-side bundle directory
	Reason string `json:"reason"` // terminal state that triggered capture
	URL    string `json:"url"`    // GET path streaming the bundle as a tar
}

// Status is the client-facing view of a job.
type Status struct {
	ID       string     `json:"id"`
	State    State      `json:"state"`
	Kind     string     `json:"kind"`
	Name     string     `json:"name,omitempty"` // instance display name
	Priority int        `json:"priority,omitempty"`
	Error    string     `json:"error,omitempty"`
	Created  string     `json:"created"`
	Started  string     `json:"started,omitempty"`
	Finished string     `json:"finished,omitempty"`
	Result   *Result    `json:"result,omitempty"`
	Debug    *DebugInfo `json:"debug,omitempty"`
}

// StatusView snapshots the job for the API.
func (j *Job) StatusView() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:       j.ID,
		State:    j.state,
		Kind:     j.Spec.Kind,
		Name:     j.specName(),
		Priority: j.Spec.Priority,
		Error:    j.err,
		Created:  j.created.UTC().Format(time.RFC3339Nano),
		Result:   j.result,
	}
	if !j.started.IsZero() {
		st.Started = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		st.Finished = j.finished.UTC().Format(time.RFC3339Nano)
	}
	if j.bundleDir != "" {
		st.Debug = &DebugInfo{
			Bundle: j.bundleDir,
			Reason: j.bundleReason,
			URL:    "/v1/jobs/" + j.ID + "/debug",
		}
	}
	return st
}

// specName is a short display name for the job's instance.
func (j *Job) specName() string {
	sp := &j.Spec
	switch {
	case sp.Instance != "":
		return sp.Instance
	case sp.Gen != nil:
		return "gen:" + sp.Gen.Family
	case sp.STP != "":
		return "inline-stp"
	case sp.Family != "":
		return sp.Family
	}
	return ""
}
