package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/misdp"
	"repro/internal/misdp/testsets"
	"repro/internal/steiner"
	"repro/internal/steiner/puc"
)

// buildApp materializes the instance a Spec describes into a core.App,
// plus the presolve-cache key for it. Instance construction is
// deterministic in the spec (generators are seeded), so the key is a
// pure function of the instance content:
//
//   - inline STP text hashes its exact bytes — identical submissions
//     collide, trivially different whitespace does not (content-hash,
//     not semantic-hash, by design);
//   - named/generated instances hash their canonical parameter string,
//     which the generators map to one graph.
//
// The key deliberately excludes solve-shape fields (workers, racing,
// mode, limits): global presolve depends only on the instance and its
// ProblemDef, so an LP-mode and an SDP-mode submission of the same
// MISDP share one cache entry.
func buildApp(sp *Spec) (key string, app core.App, err error) {
	switch sp.Kind {
	case "stp":
		return buildSTP(sp)
	case "misdp":
		return buildMISDP(sp)
	}
	return "", core.App{}, fmt.Errorf("unknown job kind %q", sp.Kind)
}

// cacheKey hashes a canonical instance description into the cache key.
func cacheKey(kind, canonical string) string {
	sum := sha256.Sum256([]byte(kind + "\x00" + canonical))
	return kind + ":" + hex.EncodeToString(sum[:16])
}

func buildSTP(sp *Spec) (string, core.App, error) {
	var (
		spg       *steiner.SPG
		canonical string
	)
	switch {
	case sp.STP != "":
		g, err := steiner.ReadSTP(strings.NewReader(sp.STP))
		if err != nil {
			return "", core.App{}, fmt.Errorf("parse inline stp: %w", err)
		}
		spg = g
		canonical = "inline\x00" + sp.STP
	case sp.Instance != "":
		spg = puc.Named(sp.Instance)
		if spg == nil {
			return "", core.App{}, fmt.Errorf("unknown named instance %q", sp.Instance)
		}
		canonical = "named\x00" + sp.Instance
	case sp.Gen != nil:
		g := sp.Gen
		seed := g.Seed
		if seed == 0 {
			seed = 1
		}
		switch g.Family {
		case "hc":
			if g.Terminals > 0 {
				spg = puc.HypercubeT(g.D, g.Terminals, g.Perturbed, seed)
			} else {
				spg = puc.Hypercube(g.D, g.Perturbed, seed)
			}
		case "cc":
			t := g.Terminals
			if t == 0 {
				t = 8
			}
			a := g.A
			if a == 0 {
				a = 3
			}
			spg = puc.CodeCover(g.D, a, t, g.Perturbed, seed)
		case "bip":
			t := g.Terminals
			if t == 0 {
				t = 16
			}
			st := g.Steiner
			if st == 0 {
				st = 60
			}
			deg := g.Deg
			if deg == 0 {
				deg = 3
			}
			spg = puc.Bipartite(t, st, deg, g.Perturbed, seed)
		default:
			return "", core.App{}, fmt.Errorf("unknown gen family %q (want hc, cc, bip)", g.Family)
		}
		canonical = fmt.Sprintf("gen\x00%s d=%d a=%d t=%d s=%d deg=%d p=%v seed=%d",
			g.Family, g.D, g.A, g.Terminals, g.Steiner, g.Deg, g.Perturbed, seed)
	default:
		return "", core.App{}, fmt.Errorf("kind stp needs one of stp, instance, gen")
	}
	return cacheKey("stp", canonical), steiner.NewApp(spg), nil
}

func buildMISDP(sp *Spec) (string, core.App, error) {
	seed := sp.Seed
	if seed == 0 {
		seed = 1
	}
	var inst *misdp.MISDP
	switch sp.Family {
	case "ttd":
		bars := 8
		if sp.N > 0 {
			bars = sp.N
		}
		inst = testsets.TTD(4, bars, 2, seed)
	case "cls":
		features, k := 6, 3
		if sp.N > 0 {
			features = sp.N
		}
		if sp.K > 0 {
			k = sp.K
		}
		inst = testsets.CLS(features, features+2, k, seed)
	case "mkp":
		verts, k := 7, 3
		if sp.N > 0 {
			verts = sp.N
		}
		if sp.K > 0 {
			k = sp.K
		}
		inst = testsets.MkP(verts, k, seed)
	default:
		return "", core.App{}, fmt.Errorf("unknown misdp family %q (want ttd, cls, mkp)", sp.Family)
	}
	canonical := fmt.Sprintf("%s n=%d k=%d seed=%d", sp.Family, sp.N, sp.K, seed)
	app := misdp.NewApp(inst, 16)
	if sp.Mode == "lp" {
		app = misdp.NewAppLP(inst, 16)
	}
	return cacheKey("misdp", canonical), app, nil
}
