package serve

import (
	"archive/tar"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Config shapes a Server.
type Config struct {
	// Addr is the listen address ("host:port", ":0" for any port).
	Addr string
	// MaxConcurrent is the number of solves running at once (the worker
	// pool size). Default 2.
	MaxConcurrent int
	// QueueCap bounds the number of queued (not yet running) jobs;
	// submissions past it are answered 429. Default 64.
	QueueCap int
	// CacheBytes is the presolve cache's LRU byte budget (<=0 means
	// unbounded).
	CacheBytes int64
	// DefaultWorkers is the per-job ParaSolver count when a submission
	// does not choose one. Default 2.
	DefaultWorkers int
	// SSEHeartbeat overrides the idle keepalive interval on event
	// streams (tests lower it). Zero keeps the 15s default.
	SSEHeartbeat time.Duration
	// DebugDir is where per-job forensics bundles are written when a
	// job fails or exceeds its deadline (one subdirectory per job,
	// served back at GET /v1/jobs/{id}/debug). Empty disables capture.
	DebugDir string
}

// maxJobSSEStreams caps concurrent per-job event streams across the
// server, mirroring the debug server's cap: past it /events answers 503
// instead of letting clients grow the process without bound.
const maxJobSSEStreams = 64

// jobRecorderCap is each job's flight-recorder ring size. 256 events is
// the final stretch of a solve — bounds, dispatches, the run.end — at
// ~25 KiB per job; retained for the job record's lifetime.
const jobRecorderCap = 256

// Server is the ugserve daemon: job queue + scheduler + presolve cache
// behind one HTTP mux that also carries the debug-server surface
// (/metrics, /statusz, /debug/pprof/) — the PR 5 debug server grown
// into the service plane.
type Server struct {
	cfg   Config
	reg   *obs.Registry
	cache *PresolveCache
	q     *queue
	sched *scheduler

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []*Job // admission order, for stable list views
	nextID int64

	draining  atomic.Bool
	stop      chan struct{} // closed on Close/drain end: terminates SSE streams
	stopOnce  sync.Once
	sseActive atomic.Int64

	ln    net.Listener
	srv   *http.Server
	start time.Time

	submitted *obs.Counter // serve.jobs.submitted
	rejected  *obs.Counter // serve.jobs.rejected
}

// New builds a Server (not yet listening; call Start).
func New(cfg Config) *Server {
	if cfg.MaxConcurrent < 1 {
		cfg.MaxConcurrent = 2
	}
	if cfg.QueueCap < 1 {
		cfg.QueueCap = 64
	}
	if cfg.DefaultWorkers < 1 {
		cfg.DefaultWorkers = 2
	}
	reg := obs.NewRegistry()
	s := &Server{
		cfg:       cfg,
		reg:       reg,
		cache:     NewPresolveCache(cfg.CacheBytes, reg),
		jobs:      map[string]*Job{},
		stop:      make(chan struct{}),
		start:     time.Now(),
		submitted: reg.Counter("serve.jobs.submitted"),
		rejected:  reg.Counter("serve.jobs.rejected"),
	}
	s.q = newQueue(cfg.QueueCap, reg.Gauge("serve.queue.depth"))
	s.sched = newScheduler(s.q, s.cache, reg, cfg.MaxConcurrent, cfg.DefaultWorkers, cfg.DebugDir)
	return s
}

// Registry exposes the server's metrics registry (tests and embedders).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Start binds the listen address and serves the API in a background
// goroutine until Drain or Close.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", s.cfg.Addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{
		Handler:           s.mux(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go func() {
		// Serve returns http.ErrServerClosed (or an accept error) once
		// the listener goes away; either way the goroutine exits.
		_ = s.srv.Serve(s.ln)
	}()
	return nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// mux assembles the one service mux: job API, metrics, statusz, pprof.
func (s *Server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/v1/jobs/", s.handleJob)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/statusz", s.handleStatusz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Submit admits a job programmatically (the HTTP POST path calls this
// too). It validates the spec, assigns an ID, and enqueues.
func (s *Server) Submit(sp Spec) (*Job, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	if s.draining.Load() {
		return nil, ErrDraining
	}
	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("job-%d", s.nextID)
	seq := s.nextID
	// The job's event plane is bus → recorder: live subscribers fan out
	// of the bus, and the recorder (the bus's downstream sink) keeps the
	// last window of events past the terminal transition for post-run
	// /events replay and failure bundles.
	rec := obs.NewRecorder(nil, jobRecorderCap)
	j := newJob(id, seq, sp, obs.NewBus(rec, s.reg), rec, time.Now())
	s.jobs[id] = j
	s.order = append(s.order, j)
	s.mu.Unlock()
	if err := s.q.push(j); err != nil {
		s.mu.Lock()
		delete(s.jobs, id)
		s.order = s.order[:len(s.order)-1]
		s.mu.Unlock()
		s.rejected.Inc()
		return nil, err
	}
	s.submitted.Inc()
	return j, nil
}

// Job looks a job up by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// CancelJob cancels a job by ID: removed outright while queued, stopped
// cooperatively while running. It returns the job's state after the
// request (terminal states are left as they were).
func (s *Server) CancelJob(id string) (State, bool) {
	j, ok := s.Job(id)
	if !ok {
		return "", false
	}
	s.cancelJob(j)
	return j.State(), true
}

// cancelJob performs the two-sided cancel: queue removal wins for
// queued jobs, the cancel channel covers running ones. The scheduler's
// own pre-run check closes the race where a job is popped between the
// remove attempt and the channel close.
func (s *Server) cancelJob(j *Job) {
	j.Cancel()
	if s.q.remove(j) {
		if j.transition(StateCancelled) {
			s.sched.countTerminal(StateCancelled)
		}
	}
}

// Drain performs graceful shutdown: stop admitting, cancel everything
// still queued, let running solves finish within grace (then stop them
// cooperatively), and shut the HTTP server down. It returns the number
// of jobs that were still running when the drain began (the "drained"
// jobs the caller reports).
func (s *Server) Drain(grace time.Duration) int {
	s.draining.Store(true)
	// Closing the queue unblocks idle workers; queued jobs are cancelled
	// (a drain finishes running work, it does not start new work).
	for _, j := range s.q.drain() {
		j.Cancel()
		if j.transition(StateCancelled) {
			s.sched.countTerminal(StateCancelled)
		}
	}
	active := make([]*Job, 0)
	s.mu.Lock()
	for _, j := range s.order {
		if j.State() == StateRunning {
			active = append(active, j)
		}
	}
	s.mu.Unlock()

	finished := make(chan struct{})
	go func() {
		s.sched.wait()
		close(finished)
	}()
	if grace > 0 {
		t := time.NewTimer(grace)
		select {
		case <-finished:
			t.Stop()
		case <-t.C:
			// Grace expired: stop every straggler cooperatively — all
			// non-terminal jobs, not just the ones seen running when the
			// drain began (a job popped right at drain time may only now
			// be entering running) — and wait for them to unwind (a
			// cancelled solve interrupts at the next coordinator tick,
			// so this is prompt).
			s.mu.Lock()
			stragglers := append([]*Job(nil), s.order...)
			s.mu.Unlock()
			for _, j := range stragglers {
				if !j.State().Terminal() {
					j.Cancel()
				}
			}
			<-finished
		}
	} else {
		<-finished
	}
	s.shutdownHTTP()
	return len(active)
}

// Close hard-stops the server: cancel everything, drain with no grace.
func (s *Server) Close() {
	s.mu.Lock()
	jobs := append([]*Job(nil), s.order...)
	s.mu.Unlock()
	for _, j := range jobs {
		s.cancelJob(j)
	}
	s.Drain(0)
}

// shutdownHTTP ends SSE streams and closes the listener.
func (s *Server) shutdownHTTP() {
	s.stopOnce.Do(func() { close(s.stop) })
	if s.srv != nil {
		_ = s.srv.Close()
	}
}

// handleJobs is POST /v1/jobs (submit) and GET /v1/jobs (list).
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var sp Spec
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 32<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&sp); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Sprintf("bad spec: %v", err))
			return
		}
		j, err := s.Submit(sp)
		switch {
		case err == nil:
			writeJSON(w, http.StatusAccepted, j.StatusView())
		case err == ErrQueueFull:
			s.rejected.Inc()
			writeErr(w, http.StatusTooManyRequests, err.Error())
		case err == ErrDraining:
			s.rejected.Inc()
			writeErr(w, http.StatusServiceUnavailable, err.Error())
		default:
			writeErr(w, http.StatusBadRequest, err.Error())
		}
	case http.MethodGet:
		s.mu.Lock()
		views := make([]Status, 0, len(s.order))
		for _, j := range s.order {
			views = append(views, j.StatusView())
		}
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, map[string]any{"jobs": views, "draining": s.draining.Load()})
	default:
		writeErr(w, http.StatusMethodNotAllowed, "use POST to submit or GET to list")
	}
}

// handleJob is GET/DELETE /v1/jobs/{id} and GET /v1/jobs/{id}/events.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	j, ok := s.Job(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("no such job %q", id))
		return
	}
	switch {
	case sub == "" && r.Method == http.MethodGet:
		writeJSON(w, http.StatusOK, j.StatusView())
	case sub == "" && r.Method == http.MethodDelete:
		s.cancelJob(j)
		writeJSON(w, http.StatusOK, j.StatusView())
	case sub == "events" && r.Method == http.MethodGet:
		s.serveJobEvents(w, r, j)
	case sub == "debug" && r.Method == http.MethodGet:
		s.serveJobDebug(w, j)
	default:
		writeErr(w, http.StatusMethodNotAllowed, "use GET, DELETE, GET …/events, or GET …/debug")
	}
}

// serveJobEvents streams one job's live events: the shared SSE handler
// over the job's own bus, so the stream carries exactly this job's
// incumbent/bound/status traffic. For a finished job — whose bus is
// closed — the flight-recorder tail is replayed instead, so "what did
// this job's last events look like?" has an answer after the fact.
func (s *Server) serveJobEvents(w http.ResponseWriter, r *http.Request, j *Job) {
	if n := s.sseActive.Add(1); n > maxJobSSEStreams {
		s.sseActive.Add(-1)
		writeErr(w, http.StatusServiceUnavailable, fmt.Sprintf("too many event subscribers (cap %d)", maxJobSSEStreams))
		return
	}
	defer s.sseActive.Add(-1)
	if j.State().Terminal() {
		obs.ReplaySSE(w, r, j.Events())
		return
	}
	obs.ServeSSE(w, r, j.bus, obs.SSEOptions{Heartbeat: s.cfg.SSEHeartbeat, Stop: s.stop})
}

// serveJobDebug streams a failed job's forensics bundle as a tar
// archive. 404 until a bundle exists (healthy or still-running jobs).
func (s *Server) serveJobDebug(w http.ResponseWriter, j *Job) {
	dir := j.BundleDir()
	if dir == "" {
		writeErr(w, http.StatusNotFound, "no forensics bundle for this job")
		return
	}
	w.Header().Set("Content-Type", "application/x-tar")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", j.ID+"-debug.tar"))
	w.WriteHeader(http.StatusOK)
	tw := tar.NewWriter(w)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return // headers are out; nothing more we can report in-band
	}
	for _, e := range entries {
		if e.IsDir() {
			continue // bundles are flat; skip anything unexpected
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return
		}
		hdr := &tar.Header{Name: e.Name(), Mode: 0o644, Size: int64(len(data))}
		if info, err := e.Info(); err == nil {
			hdr.ModTime = info.ModTime()
		}
		if err := tw.WriteHeader(hdr); err != nil {
			return
		}
		if _, err := tw.Write(data); err != nil {
			return
		}
	}
	_ = tw.Close()
}

// handleMetrics serves Prometheus text exposition of the process gauges
// plus the service registry (queue depth, cache hit/miss, job states,
// plus everything the in-process solves record).
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := obs.WriteProm(w, obs.ProcessMetrics()); err != nil {
		return
	}
	if err := obs.WriteProm(w, s.reg.Snapshot()); err != nil {
		return
	}
}

// handleStatusz serves the human-readable service summary: uptime, job
// state counts, queue/cache occupancy, and the metrics table.
func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "uptime_seconds %.1f\n", time.Since(s.start).Seconds())
	fmt.Fprintf(w, "draining %v\n", s.draining.Load())
	s.mu.Lock()
	counts := map[State]int{}
	for _, j := range s.order {
		counts[j.State()]++
	}
	s.mu.Unlock()
	states := make([]string, 0, len(counts))
	for st := range counts {
		states = append(states, string(st))
	}
	sort.Strings(states)
	for _, st := range states {
		fmt.Fprintf(w, "jobs_%s %d\n", st, counts[State(st)])
	}
	fmt.Fprintf(w, "queue_depth %d\ncache_entries %d\ncache_bytes %d\n\n",
		s.q.len(), s.cache.Len(), s.cache.Bytes())
	if err := obs.WriteTable(w, s.reg.Snapshot()); err != nil {
		return // client went away mid-write; nothing to do
	}
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeErr writes a JSON error envelope.
func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// finiteOr0 clamps non-finite objective/bound values for JSON transport
// (encoding/json rejects ±Inf and NaN).
func finiteOr0(x float64) float64 {
	if math.IsInf(x, 0) || math.IsNaN(x) {
		return 0
	}
	return x
}
