package serve

import (
	"archive/tar"
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/scip"
	"repro/internal/ug"
)

// startServer boots a full server on a loopback port.
func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	s := New(cfg)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func postJob(t *testing.T, s *Server, body string) Status {
	t.Helper()
	resp, err := http.Post("http://"+s.Addr()+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs = %d: %s", resp.StatusCode, raw)
	}
	var st Status
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("bad submit response %q: %v", raw, err)
	}
	return st
}

func getJob(t *testing.T, s *Server, id string) Status {
	t.Helper()
	resp, err := http.Get("http://" + s.Addr() + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode job %s: %v", id, err)
	}
	return st
}

func awaitTerminal(t *testing.T, s *Server, id string) Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := getJob(t, s, id)
		if st.State.Terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return Status{}
}

// snapshotValue reads one metric from the server registry.
func snapshotValue(s *Server, name string) (float64, bool) {
	for _, m := range s.Registry().Snapshot() {
		if m.Name == name && (m.Kind == "counter" || m.Kind == "gauge") {
			return m.Value, true
		}
	}
	return 0, false
}

func TestHTTPSubmitSolveFetch(t *testing.T) {
	s := startServer(t, Config{MaxConcurrent: 2})
	body := fmt.Sprintf(`{"kind":"stp","stp":%q,"workers":1}`, tinySTP)
	st := postJob(t, s, body)
	if st.State != StateQueued && st.State != StateRunning {
		t.Fatalf("fresh job state = %s", st.State)
	}
	final := awaitTerminal(t, s, st.ID)
	if final.State != StateDone || final.Result == nil {
		t.Fatalf("final = %+v, want done with result", final)
	}
	if final.Result.Status != "optimal" || final.Result.Objective != 3 {
		t.Fatalf("result = %+v, want optimal objective 3", final.Result)
	}
	if final.Result.Cache != "miss" {
		t.Fatalf("first solve cache = %q, want miss", final.Result.Cache)
	}

	// List view carries the job too.
	resp, err := http.Get("http://" + s.Addr() + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs     []Status `json:"jobs"`
		Draining bool     `json:"draining"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Jobs) != 1 || list.Jobs[0].ID != st.ID || list.Draining {
		t.Fatalf("list = %+v", list)
	}
}

func TestHTTPDuplicateSubmissionHitsCache(t *testing.T) {
	s := startServer(t, Config{MaxConcurrent: 1})
	body := fmt.Sprintf(`{"kind":"stp","stp":%q,"workers":1}`, tinySTP)

	first := awaitTerminal(t, s, postJob(t, s, body).ID)
	if first.Result == nil || first.Result.Cache != "miss" {
		t.Fatalf("first result = %+v, want cache miss", first.Result)
	}
	if first.Result.PresolveSeconds <= 0 {
		t.Fatalf("first presolve_seconds = %v, want > 0", first.Result.PresolveSeconds)
	}

	second := awaitTerminal(t, s, postJob(t, s, body).ID)
	if second.State != StateDone || second.Result == nil {
		t.Fatalf("second = %+v", second)
	}
	if second.Result.Cache != "hit" {
		t.Fatalf("duplicate submission cache = %q, want hit", second.Result.Cache)
	}
	if second.Result.PresolveSeconds != 0 {
		t.Fatalf("duplicate presolve_seconds = %v, want 0 (phase skipped)", second.Result.PresolveSeconds)
	}
	if second.Result.Objective != first.Result.Objective {
		t.Fatalf("cached solve objective %v != fresh %v", second.Result.Objective, first.Result.Objective)
	}
	if v, ok := snapshotValue(s, "serve.cache.hit"); !ok || v < 1 {
		t.Fatalf("serve.cache.hit = %v (present %v), want >= 1", v, ok)
	}
	// /metrics carries the counter in Prometheus form.
	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(prom), "serve_cache_hit") {
		t.Error("/metrics missing serve_cache_hit")
	}
	if !strings.Contains(string(prom), "serve_jobs_done") {
		t.Error("/metrics missing serve_jobs_done")
	}
}

func TestHTTPSSEStreamCarriesSolveEvents(t *testing.T) {
	s := startServer(t, Config{MaxConcurrent: 1, SSEHeartbeat: 20 * time.Millisecond})
	release := make(chan struct{})
	finish := make(chan struct{})
	s.sched.solve = func(app core.App, prob *scip.Prob, offset float64, cfg ug.Config) (*ug.Result, error) {
		<-release
		for i := 0; i < 5; i++ {
			cfg.Trace.Emit(obs.Event{Kind: "incumbent", Primal: float64(10 - i), Dual: 1})
		}
		// Park until the client has drained the frames: closing the bus
		// (which ends the job) discards undelivered backlog by design.
		<-finish
		return &ug.Result{Optimal: true, Obj: 5, DualBound: 5}, nil
	}

	st := postJob(t, s, fmt.Sprintf(`{"kind":"stp","stp":%q}`, tinySTP))
	resp, err := http.Get("http://" + s.Addr() + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type = %q", ct)
	}
	// The subscriber is attached once the response headers are out;
	// release the solve and read frames until the job ends the stream.
	close(release)
	var frames []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if line := sc.Text(); strings.HasPrefix(line, "data: ") {
			frames = append(frames, strings.TrimPrefix(line, "data: "))
			if len(frames) == 5 {
				close(finish) // all frames seen: let the job finish
			}
		}
	}
	if len(frames) < 5 {
		t.Fatalf("got %d SSE data frames, want >= 5", len(frames))
	}
	var ev obs.Event
	if err := json.Unmarshal([]byte(frames[0]), &ev); err != nil {
		t.Fatalf("frame %q not event JSON: %v", frames[0], err)
	}
	if ev.Kind != "incumbent" || ev.Primal != 10 {
		t.Fatalf("first frame = %+v, want incumbent primal 10", ev)
	}
	if awaitTerminal(t, s, st.ID).State != StateDone {
		t.Fatal("job did not finish after stream ended")
	}
}

func TestHTTPCancelAndErrors(t *testing.T) {
	s := startServer(t, Config{MaxConcurrent: 1})
	s.sched.solve = blockingSolve

	st := postJob(t, s, fmt.Sprintf(`{"kind":"stp","stp":%q}`, tinySTP))
	req, _ := http.NewRequest(http.MethodDelete, "http://"+s.Addr()+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE = %d", resp.StatusCode)
	}
	if final := awaitTerminal(t, s, st.ID); final.State != StateCancelled {
		t.Fatalf("after DELETE: %s, want cancelled", final.State)
	}

	// Unknown job: 404. Bad spec: 400. Unknown field: 400.
	for _, c := range []struct {
		method, path, body string
		want               int
	}{
		{http.MethodGet, "/v1/jobs/job-999", "", http.StatusNotFound},
		{http.MethodPost, "/v1/jobs", `{"kind":"nope"}`, http.StatusBadRequest},
		{http.MethodPost, "/v1/jobs", `{"kind":"stp","stp":"x","bogus":1}`, http.StatusBadRequest},
		{http.MethodPut, "/v1/jobs", "", http.StatusMethodNotAllowed},
	} {
		req, _ := http.NewRequest(c.method, "http://"+s.Addr()+c.path, strings.NewReader(c.body))
		if c.body != "" {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s %s = %d, want %d", c.method, c.path, resp.StatusCode, c.want)
		}
	}
}

func TestHTTPQueueFull(t *testing.T) {
	s := startServer(t, Config{MaxConcurrent: 1, QueueCap: 1})
	s.sched.solve = blockingSolve

	body := fmt.Sprintf(`{"kind":"stp","stp":%q}`, tinySTP)
	running := postJob(t, s, body) // occupies the solve lane
	waitState(t, mustJob(t, s, running.ID), StateRunning)
	postJob(t, s, body) // fills the queue

	resp, err := http.Post("http://"+s.Addr()+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity POST = %d, want 429", resp.StatusCode)
	}
	if v, _ := snapshotValue(s, "serve.jobs.rejected"); v < 1 {
		t.Errorf("serve.jobs.rejected = %v, want >= 1", v)
	}
}

func mustJob(t *testing.T, s *Server, id string) *Job {
	t.Helper()
	j, ok := s.Job(id)
	if !ok {
		t.Fatalf("job %s not found", id)
	}
	return j
}

func TestDrainFinishesRunningRejectsNew(t *testing.T) {
	s := startServer(t, Config{MaxConcurrent: 1, SSEHeartbeat: 20 * time.Millisecond})
	s.sched.solve = blockingSolve

	body := fmt.Sprintf(`{"kind":"stp","stp":%q}`, tinySTP)
	running := postJob(t, s, body)
	waitState(t, mustJob(t, s, running.ID), StateRunning)
	queued := postJob(t, s, body)

	drained := s.Drain(150 * time.Millisecond)
	if drained != 1 {
		t.Fatalf("Drain reported %d running jobs, want 1", drained)
	}
	if st := mustJob(t, s, queued.ID).State(); st != StateCancelled {
		t.Fatalf("queued job after drain: %s, want cancelled", st)
	}
	if st := mustJob(t, s, running.ID).State(); st != StateCancelled {
		t.Fatalf("running job after grace expiry: %s, want cancelled", st)
	}
	if _, err := s.Submit(Spec{Kind: "stp", STP: tinySTP}); err != ErrDraining {
		t.Fatalf("Submit during drain = %v, want ErrDraining", err)
	}
	// The HTTP plane is down after the drain completes.
	if _, err := http.Get("http://" + s.Addr() + "/statusz"); err == nil {
		t.Error("HTTP server still answering after drain")
	}
}

// TestHTTPDebugBundleAndTerminalReplay is the forensics e2e: a failed
// job leaves a bundle on disk, GET /v1/jobs/{id}/debug serves it as a
// tar, the job JSON summarizes it, and GET /v1/jobs/{id}/events after
// completion replays the flight-recorder tail instead of hanging up.
func TestHTTPDebugBundleAndTerminalReplay(t *testing.T) {
	debugDir := t.TempDir()
	s := startServer(t, Config{MaxConcurrent: 1, DebugDir: debugDir})
	s.sched.solve = func(app core.App, prob *scip.Prob, offset float64, cfg ug.Config) (*ug.Result, error) {
		for i := 0; i < 3; i++ {
			cfg.Trace.Emit(obs.Event{Kind: "incumbent", Primal: float64(9 - i), Dual: 1})
		}
		return nil, fmt.Errorf("solver exploded")
	}

	st := postJob(t, s, fmt.Sprintf(`{"kind":"stp","stp":%q}`, tinySTP))
	final := awaitTerminal(t, s, st.ID)
	if final.State != StateFailed {
		t.Fatalf("state = %s, want failed", final.State)
	}
	if final.Debug == nil || final.Debug.Reason != string(StateFailed) {
		t.Fatalf("job JSON debug summary = %+v, want a failed-bundle pointer", final.Debug)
	}
	if want := "/v1/jobs/" + st.ID + "/debug"; final.Debug.URL != want {
		t.Fatalf("debug URL = %q, want %q", final.Debug.URL, want)
	}

	// The on-disk bundle validates as a post-mortem bundle.
	b, err := obs.ReadBundle(final.Debug.Bundle)
	if err != nil {
		t.Fatalf("job bundle invalid: %v", err)
	}
	if b.Manifest.Reason != "job-failed" || !strings.Contains(b.Manifest.Detail, "solver exploded") {
		t.Fatalf("bundle trigger = %s/%s", b.Manifest.Reason, b.Manifest.Detail)
	}
	if b.Manifest.Extra["job"] != st.ID {
		t.Fatalf("bundle extra = %v, want job id", b.Manifest.Extra)
	}
	if len(b.Events) < 3 {
		t.Fatalf("bundle has %d events, want the solve's tail", len(b.Events))
	}

	// GET /debug streams the same bundle as a tar.
	resp, err := http.Get("http://" + s.Addr() + final.Debug.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET debug = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-tar" {
		t.Fatalf("debug content-type = %q", ct)
	}
	seen := map[string]bool{}
	tr := tar.NewReader(resp.Body)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		seen[hdr.Name] = true
	}
	for _, want := range []string{"manifest.json", "events.jsonl", "metrics.txt", "goroutines.txt", "heap.pprof"} {
		if !seen[want] {
			t.Errorf("debug tar missing %s (got %v)", want, seen)
		}
	}

	// A late /events client gets the recorded tail replayed, then EOF.
	resp2, err := http.Get("http://" + s.Addr() + "/v1/jobs/" + st.ID + "/events?kind=incumbent")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if ct := resp2.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("replay content-type = %q", ct)
	}
	var frames []obs.Event
	sc := bufio.NewScanner(resp2.Body)
	for sc.Scan() {
		if line := sc.Text(); strings.HasPrefix(line, "data: ") {
			var ev obs.Event
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Fatalf("replay frame %q: %v", line, err)
			}
			frames = append(frames, ev)
		}
	}
	if len(frames) != 3 {
		t.Fatalf("replayed %d incumbent frames, want 3", len(frames))
	}
	if frames[0].Primal != 9 || frames[2].Primal != 7 {
		t.Fatalf("replay out of order: %+v", frames)
	}

}

// TestHTTPDebugWithoutBundle: jobs that finished clean (or a server with
// capture disabled) answer 404 on /debug and omit the JSON summary.
func TestHTTPDebugWithoutBundle(t *testing.T) {
	s := startServer(t, Config{MaxConcurrent: 1})
	final := awaitTerminal(t, s, postJob(t, s, fmt.Sprintf(`{"kind":"stp","stp":%q,"workers":1}`, tinySTP)).ID)
	if final.State != StateDone || final.Debug != nil {
		t.Fatalf("clean job = %s debug %+v, want done with no debug summary", final.State, final.Debug)
	}
	resp, err := http.Get("http://" + s.Addr() + "/v1/jobs/" + final.ID + "/debug")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /debug on clean job = %d, want 404", resp.StatusCode)
	}
}

func TestStatuszSummarizes(t *testing.T) {
	s := startServer(t, Config{MaxConcurrent: 1})
	awaitTerminal(t, s, postJob(t, s, fmt.Sprintf(`{"kind":"stp","stp":%q,"workers":1}`, tinySTP)).ID)
	resp, err := http.Get("http://" + s.Addr() + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	body := string(raw)
	for _, want := range []string{"uptime_seconds", "draining false", "jobs_done 1", "cache_entries 1"} {
		if !strings.Contains(body, want) {
			t.Errorf("/statusz missing %q in:\n%s", want, body)
		}
	}
}
