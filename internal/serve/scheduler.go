package serve

import (
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/scip"
	"repro/internal/ug"
)

// scheduler owns the solve workers: maxConcurrent goroutines popping
// jobs off the priority queue and driving each through its lifecycle
// (deadline admission check → presolve via the cache → in-process
// ug coordinator run → terminal transition).
type scheduler struct {
	q     *queue
	cache *PresolveCache
	reg   *obs.Registry

	defaultWorkers int
	running        *obs.Gauge // serve.jobs.running

	// debugDir is the parent directory for per-job forensics bundles;
	// empty disables capture. capture is the server-level capturer a
	// panicking solve lane bundles through (no per-job recorder — the
	// panic stack and profiles are process-wide evidence).
	debugDir string
	capture  *obs.Capturer

	ctrDone      *obs.Counter // serve.jobs.done
	ctrFailed    *obs.Counter // serve.jobs.failed
	ctrCancelled *obs.Counter // serve.jobs.cancelled
	ctrDeadline  *obs.Counter // serve.jobs.deadline

	// solve runs one presolved model under a ug configuration; tests
	// swap it for a controllable fake, production uses realSolve.
	solve solveFunc

	wg sync.WaitGroup
}

// solveFunc abstracts the actual parallel solve for tests.
type solveFunc func(app core.App, prob *scip.Prob, offset float64, cfg ug.Config) (*ug.Result, error)

// realSolve drives the existing core/ug machinery.
func realSolve(app core.App, prob *scip.Prob, offset float64, cfg ug.Config) (*ug.Result, error) {
	res, _, err := core.SolveWithPresolved(app, prob, offset, cfg)
	return res, err
}

func newScheduler(q *queue, cache *PresolveCache, reg *obs.Registry, maxConcurrent, defaultWorkers int, debugDir string) *scheduler {
	if defaultWorkers < 1 {
		defaultWorkers = 2
	}
	s := &scheduler{
		q:              q,
		cache:          cache,
		reg:            reg,
		defaultWorkers: defaultWorkers,
		debugDir:       debugDir,
		capture:        &obs.Capturer{Dir: debugDir, Registry: reg},
		running:        reg.Gauge("serve.jobs.running"),
		ctrDone:        reg.Counter("serve.jobs.done"),
		ctrFailed:      reg.Counter("serve.jobs.failed"),
		ctrCancelled:   reg.Counter("serve.jobs.cancelled"),
		ctrDeadline:    reg.Counter("serve.jobs.deadline"),
		solve:          realSolve,
	}
	if maxConcurrent < 1 {
		maxConcurrent = 1
	}
	s.wg.Add(maxConcurrent)
	for i := 0; i < maxConcurrent; i++ {
		go s.worker()
	}
	return s
}

// worker is one solve lane: pop until the queue closes. A panic in a
// solve leaves a forensics bundle and then crashes the daemon as before
// — a corrupted lane must not keep serving jobs silently.
func (s *scheduler) worker() {
	defer s.wg.Done()
	defer s.capture.CapturePanic("serve.worker")
	for {
		j, ok := s.q.pop()
		if !ok {
			return
		}
		s.runJob(j)
	}
}

// wait blocks until every worker lane exited (the queue was drained).
func (s *scheduler) wait() { s.wg.Wait() }

// countTerminal bumps the per-outcome counter for a terminal state.
func (s *scheduler) countTerminal(st State) {
	switch st {
	case StateDone:
		s.ctrDone.Inc()
	case StateFailed:
		s.ctrFailed.Inc()
	case StateCancelled:
		s.ctrCancelled.Inc()
	case StateDeadline:
		s.ctrDeadline.Inc()
	}
}

// runJob drives one job from queued to a terminal state. The stop
// channel fuses the job's two asynchronous interrupts — client cancel
// and deadline expiry — into the single cooperative stop signal the
// coordinator understands; cause records which one fired first.
func (s *scheduler) runJob(j *Job) {
	// Cancelled while queued but not yet removed, or deadline already
	// passed: resolve without starting.
	select {
	case <-j.cancelCh:
		if j.transition(StateCancelled) {
			s.countTerminal(StateCancelled)
		}
		return
	default:
	}
	if dl, ok := j.Deadline(); ok && !time.Now().Before(dl) {
		if j.transition(StateDeadline) {
			s.countTerminal(StateDeadline)
			s.captureJobBundle(j, StateDeadline)
		}
		return
	}
	if !j.transition(StateRunning) {
		return // lost a race with a terminal transition
	}
	s.running.Add(1)
	defer s.running.Add(-1)

	var (
		stop     = make(chan struct{})
		stopOnce sync.Once
		causeMu  sync.Mutex
		cause    State
	)
	fire := func(st State) {
		causeMu.Lock()
		if cause == "" {
			cause = st
		}
		causeMu.Unlock()
		stopOnce.Do(func() { close(stop) })
	}
	firedCause := func() State {
		causeMu.Lock()
		defer causeMu.Unlock()
		return cause
	}
	runDone := make(chan struct{})
	defer close(runDone)
	if dl, ok := j.Deadline(); ok {
		t := time.AfterFunc(time.Until(dl), func() { fire(StateDeadline) })
		defer t.Stop()
	}
	go func() {
		select {
		case <-j.cancelCh:
			fire(StateCancelled)
		case <-runDone:
		}
	}()

	finish := func(st State) {
		if j.transition(st) {
			s.countTerminal(st)
			s.captureJobBundle(j, st)
		}
	}

	key, app, err := buildApp(&j.Spec)
	if err != nil {
		j.setErr(err.Error())
		finish(StateFailed)
		return
	}

	presolveStart := time.Now()
	prob, offset, hit, err := s.cache.Get(stop, key, func() (*scip.Prob, float64, error) {
		return core.Presolve(app)
	})
	presolveSec := time.Since(presolveStart).Seconds()
	if err != nil {
		if err == errStopped {
			// Cancel or deadline fired during presolve; the presolve
			// itself keeps running and will serve later submissions.
			finish(s.stoppedState(firedCause()))
			return
		}
		j.setErr(fmt.Sprintf("presolve: %v", err))
		finish(StateFailed)
		return
	}
	cacheLabel := "miss"
	if hit {
		cacheLabel = "hit"
		// The reduction phase was skipped; what was measured is only the
		// wait for the cached entry, not presolve work by this job.
		presolveSec = 0
	}

	workers := j.Spec.Workers
	if workers < 1 {
		workers = s.defaultWorkers
	}
	tracer := obs.NewTracer(j.bus)
	cfg := ug.Config{
		Workers:   workers,
		TimeLimit: j.Spec.TimeLimitSec,
		Cancel:    stop,
		Trace:     tracer,
		Metrics:   s.reg,
	}
	if j.Spec.Racing {
		cfg.RampUp = ug.RampUpRacing
		cfg.RacingTime = 0.3
	}
	solveStart := time.Now()
	res, err := s.solve(app, prob, offset, cfg)
	solveSec := time.Since(solveStart).Seconds()
	// Close the tracer before the terminal transition: its sink is the
	// job bus, so closing here flushes the final events to subscribers
	// (transition closes the bus again, which is a no-op).
	_ = tracer.Close()
	if err != nil {
		j.setErr(fmt.Sprintf("solve: %v", err))
		finish(StateFailed)
		return
	}

	result := &Result{
		Nodes:           res.Stats.TotalNodes,
		SolveSeconds:    solveSec,
		PresolveSeconds: presolveSec,
		Cache:           cacheLabel,
		Workers:         workers,
		DualBound:       finiteOr0(res.DualBound + offset),
	}
	switch {
	case res.Optimal:
		result.Status = "optimal"
		result.Objective = finiteOr0(res.Obj + offset)
	case res.Infeasible:
		result.Status = "infeasible"
	default:
		result.Status = "interrupted"
		result.Objective = finiteOr0(res.Stats.FinalPrimal + offset)
	}
	j.setResult(result)

	if st := firedCause(); st != "" && !res.Optimal && !res.Infeasible {
		// The solve was interrupted by cancel or deadline (not by its
		// own time limit): the interrupt wins the terminal state.
		finish(s.stoppedState(st))
		return
	}
	finish(StateDone)
}

// captureJobBundle writes a forensics bundle when a job fails or blows
// its deadline: the job's flight-recorder tail plus process profiles,
// in a per-job directory under debugDir. The bundle location is
// attached to the job record, which surfaces it in the job JSON and
// makes GET /v1/jobs/{id}/debug serve it.
func (s *scheduler) captureJobBundle(j *Job, st State) {
	if s.debugDir == "" || (st != StateFailed && st != StateDeadline) {
		return
	}
	bc := &obs.Capturer{
		Dir:      filepath.Join(s.debugDir, j.ID),
		Recorder: j.rec,
		Registry: s.reg,
		Extra: map[string]string{
			"job":   j.ID,
			"state": string(st),
			"name":  j.StatusView().Name,
		},
	}
	if dir, err := bc.WriteBundle("job-"+string(st), j.Err()); err == nil && dir != "" {
		j.setBundle(dir, string(st))
	}
}

// stoppedState maps a recorded stop cause to the terminal state,
// defaulting to cancelled for robustness.
func (s *scheduler) stoppedState(cause State) State {
	if cause == StateDeadline {
		return StateDeadline
	}
	return StateCancelled
}
