package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/scip"
)

func keyOf(t *testing.T, sp Spec) string {
	t.Helper()
	key, _, err := buildApp(&sp)
	if err != nil {
		t.Fatalf("buildApp(%+v): %v", sp, err)
	}
	return key
}

func TestCacheKeyStability(t *testing.T) {
	// Identical specs hash identically, across every instance source.
	same := [][2]Spec{
		{{Kind: "stp", STP: tinySTP}, {Kind: "stp", STP: tinySTP}},
		{{Kind: "stp", Instance: "cc3-4p"}, {Kind: "stp", Instance: "cc3-4p"}},
		{{Kind: "stp", Gen: &GenSpec{Family: "cc", D: 3, Seed: 7}}, {Kind: "stp", Gen: &GenSpec{Family: "cc", D: 3, Seed: 7}}},
		{{Kind: "misdp", Family: "mkp", N: 6}, {Kind: "misdp", Family: "mkp", N: 6}},
	}
	for _, pair := range same {
		if a, b := keyOf(t, pair[0]), keyOf(t, pair[1]); a != b {
			t.Errorf("same instance hashed differently: %q vs %q (%+v)", a, b, pair[0])
		}
	}

	// Solve-shape fields must not perturb the key: presolve depends only
	// on the instance, so differently-shaped submissions share an entry.
	shaped := Spec{Kind: "misdp", Family: "mkp", N: 6, Workers: 8, Racing: true, Mode: "lp", TimeLimitSec: 5}
	if a, b := keyOf(t, Spec{Kind: "misdp", Family: "mkp", N: 6}), keyOf(t, shaped); a != b {
		t.Errorf("solve-shape fields changed the cache key: %q vs %q", a, b)
	}

	// Distinct instances must not collide.
	distinct := []Spec{
		{Kind: "stp", STP: tinySTP},
		{Kind: "stp", STP: tinySTP + "# trailing comment\n"}, // content-hash, not semantic
		{Kind: "stp", Instance: "cc3-4p"},
		{Kind: "stp", Gen: &GenSpec{Family: "cc", D: 3, Seed: 7}},
		{Kind: "stp", Gen: &GenSpec{Family: "cc", D: 3, Seed: 8}},
		{Kind: "misdp", Family: "mkp", N: 6},
		{Kind: "misdp", Family: "mkp", N: 7},
		{Kind: "misdp", Family: "cls", N: 6},
	}
	seen := map[string]int{}
	for i, sp := range distinct {
		k := keyOf(t, sp)
		if prev, dup := seen[k]; dup {
			t.Errorf("specs %d and %d collide on key %q", prev, i, k)
		}
		seen[k] = i
	}
}

// fixed returns a presolve func yielding a fresh one-var model.
func fixed(offset float64) func() (*scip.Prob, float64, error) {
	return func() (*scip.Prob, float64, error) {
		p := &scip.Prob{}
		p.AddVar("x", 0, 1, 1, scip.Binary)
		return p, offset, nil
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewPresolveCache(250, nil)
	c.sizeOf = func(*scip.Prob) int64 { return 100 }
	never := make(chan struct{})

	get := func(key string) (*scip.Prob, bool) {
		t.Helper()
		p, _, hit, err := c.Get(never, key, fixed(0))
		if err != nil {
			t.Fatalf("Get(%s): %v", key, err)
		}
		return p, hit
	}

	pa, _ := get("a")
	get("b")
	if n, bytes := c.Len(), c.Bytes(); n != 2 || bytes != 200 {
		t.Fatalf("after a,b: len=%d bytes=%d, want 2/200", n, bytes)
	}

	// Touch a so b becomes the LRU tail.
	if p, hit := get("a"); !hit || p != pa {
		t.Fatal("re-Get(a) should hit and return the cached pointer")
	}

	// Inserting c exceeds the 250-byte budget: b (least recent) evicts.
	get("c")
	if n, bytes := c.Len(), c.Bytes(); n != 2 || bytes != 200 {
		t.Fatalf("after eviction: len=%d bytes=%d, want 2/200", n, bytes)
	}
	if _, hit := get("a"); !hit {
		t.Error("a was touched and must survive the eviction")
	}
	runs := c.started
	if _, hit := get("b"); hit {
		t.Error("b was evicted; re-Get must re-presolve")
	}
	if c.started != runs+1 {
		t.Errorf("re-presolve count: started %d -> %d, want +1", runs, c.started)
	}
}

func TestCacheOversizedEntryStays(t *testing.T) {
	c := NewPresolveCache(50, nil)
	c.sizeOf = func(*scip.Prob) int64 { return 100 }
	never := make(chan struct{})
	if _, _, _, err := c.Get(never, "big", fixed(0)); err != nil {
		t.Fatal(err)
	}
	// A single entry over budget is kept: a cache of one beats none.
	if n := c.Len(); n != 1 {
		t.Fatalf("oversized sole entry evicted (len=%d)", n)
	}
	if _, _, hit, _ := c.Get(never, "big", nil); !hit {
		t.Error("oversized sole entry must still serve hits")
	}
}

func TestCacheSingleflightStorm(t *testing.T) {
	c := NewPresolveCache(0, nil)
	never := make(chan struct{})
	var calls atomic.Int64
	presolve := func() (*scip.Prob, float64, error) {
		calls.Add(1)
		time.Sleep(30 * time.Millisecond) // widen the race window
		return fixed(1.5)()
	}

	const n = 32
	var (
		wg     sync.WaitGroup
		probs  [n]*scip.Prob
		hits   [n]bool
		offs   [n]float64
		errsAt [n]error
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			probs[i], offs[i], hits[i], errsAt[i] = c.Get(never, "storm", presolve)
		}(i)
	}
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("presolve ran %d times under the storm, want exactly 1 (singleflight)", got)
	}
	if c.started != 1 {
		t.Fatalf("cache recorded %d presolve starts, want 1", c.started)
	}
	misses := 0
	for i := 0; i < n; i++ {
		if errsAt[i] != nil {
			t.Fatalf("caller %d: %v", i, errsAt[i])
		}
		if probs[i] != probs[0] {
			t.Fatalf("caller %d got a different *scip.Prob pointer", i)
		}
		if offs[i] != 1.5 {
			t.Fatalf("caller %d offset = %v, want 1.5", i, offs[i])
		}
		if !hits[i] {
			misses++
		}
	}
	if misses != 1 {
		t.Errorf("%d callers reported a miss, want exactly the initiator", misses)
	}
}

func TestCacheErrorRetries(t *testing.T) {
	c := NewPresolveCache(0, nil)
	never := make(chan struct{})
	boom := errors.New("reduction exploded")
	if _, _, _, err := c.Get(never, "k", func() (*scip.Prob, float64, error) { return nil, 0, boom }); err != boom {
		t.Fatalf("failing presolve: err = %v, want %v", err, boom)
	}
	if n := c.Len(); n != 0 {
		t.Fatalf("failed entry cached (len=%d); failures must not poison the key", n)
	}
	p, _, hit, err := c.Get(never, "k", fixed(0))
	if err != nil || hit || p == nil {
		t.Fatalf("retry after failure: p=%v hit=%v err=%v, want fresh presolve", p, hit, err)
	}
}

func TestCacheStopAbandonsWaitNotWork(t *testing.T) {
	c := NewPresolveCache(0, nil)
	release := make(chan struct{})
	stopped := make(chan struct{})
	close(stopped)

	if _, _, _, err := c.Get(stopped, "slow", func() (*scip.Prob, float64, error) {
		<-release
		return fixed(0)()
	}); err != errStopped {
		t.Fatalf("Get with fired stop = %v, want errStopped", err)
	}

	// The work was not killed: release it and the entry becomes ready.
	close(release)
	never := make(chan struct{})
	p, _, hit, err := c.Get(never, "slow", nil)
	if err != nil || !hit || p == nil {
		t.Fatalf("after release: p=%v hit=%v err=%v, want ready cached entry", p, hit, err)
	}
}
