package serve

import (
	"math"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/scip"
	"repro/internal/ug"
)

// tinySTP is a 4-node, 3-terminal instance small enough that even the
// real pipeline solves it in microseconds; its optimum is the path
// 1-2-3-4 of weight 3.
const tinySTP = `SECTION Graph
Nodes 4
Edges 5
E 1 2 1
E 2 3 1
E 3 4 1
E 1 4 3
E 2 4 2
END
SECTION Terminals
Terminals 3
T 1
T 3
T 4
END
EOF
`

func tinySpec() Spec { return Spec{Kind: "stp", STP: tinySTP, Workers: 1} }

// newBareServer builds a server without binding HTTP — Submit/CancelJob
// exercise the queue, scheduler and FSM directly.
func newBareServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	t.Cleanup(func() { s.Drain(0) })
	return s
}

// blockingSolve is a solveFunc that parks until the job's cooperative
// stop fires, mimicking a long solve that honours cancellation.
func blockingSolve(app core.App, prob *scip.Prob, offset float64, cfg ug.Config) (*ug.Result, error) {
	<-cfg.Cancel
	return &ug.Result{DualBound: math.Inf(-1)}, nil
}

func waitState(t *testing.T, j *Job, want State) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if j.State() == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s stuck in %s, want %s", j.ID, j.State(), want)
}

func waitDone(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(10 * time.Second):
		t.Fatalf("job %s never reached a terminal state (now %s)", j.ID, j.State())
	}
}

func TestTransitionEdges(t *testing.T) {
	cases := []struct {
		from, to State
		ok       bool
	}{
		{StateQueued, StateRunning, true},
		{StateQueued, StateCancelled, true},
		{StateQueued, StateDeadline, true},
		{StateQueued, StateFailed, true},
		{StateQueued, StateDone, false}, // a job cannot finish without running
		{StateRunning, StateDone, true},
		{StateRunning, StateFailed, true},
		{StateRunning, StateCancelled, true},
		{StateRunning, StateDeadline, true},
		{StateRunning, StateQueued, false}, // no re-queueing
		{StateDone, StateRunning, false},   // terminal states absorb
		{StateCancelled, StateRunning, false},
		{StateFailed, StateCancelled, false},
		{StateDeadline, StateDone, false},
	}
	for _, c := range cases {
		j := newJob("t", 1, tinySpec(), nil, nil, time.Now())
		j.state = c.from
		if got := j.transition(c.to); got != c.ok {
			t.Errorf("transition %s -> %s: got %v, want %v", c.from, c.to, got, c.ok)
		}
		if c.ok && j.State() != c.to {
			t.Errorf("transition %s -> %s: state now %s", c.from, c.to, j.State())
		}
	}
}

func TestTerminalStates(t *testing.T) {
	for st, want := range map[State]bool{
		StateQueued: false, StateRunning: false,
		StateDone: true, StateFailed: true, StateCancelled: true, StateDeadline: true,
	} {
		if st.Terminal() != want {
			t.Errorf("%s.Terminal() = %v, want %v", st, st.Terminal(), want)
		}
	}
}

func TestCancelWhileQueued(t *testing.T) {
	s := newBareServer(t, Config{MaxConcurrent: 1})
	s.sched.solve = blockingSolve

	running, err := s.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, StateRunning)

	queued, err := s.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if st := queued.State(); st != StateQueued {
		t.Fatalf("second job should sit queued behind the solve lane, got %s", st)
	}
	st, ok := s.CancelJob(queued.ID)
	if !ok || st != StateCancelled {
		t.Fatalf("CancelJob(queued) = %s, %v; want cancelled, true", st, ok)
	}
	waitDone(t, queued)
	if queued.StatusView().Result != nil {
		t.Error("cancelled-while-queued job should have no result")
	}

	s.CancelJob(running.ID)
	waitDone(t, running)
	if st := running.State(); st != StateCancelled {
		t.Fatalf("running job after cancel: %s, want cancelled", st)
	}
}

func TestCancelMidSolve(t *testing.T) {
	s := newBareServer(t, Config{MaxConcurrent: 1})
	s.sched.solve = blockingSolve

	j, err := s.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateRunning)
	if _, ok := s.CancelJob(j.ID); !ok {
		t.Fatal("CancelJob: job not found")
	}
	waitDone(t, j)
	if st := j.State(); st != StateCancelled {
		t.Fatalf("state after cancel-mid-solve: %s, want cancelled", st)
	}
	// The fake solve returned an interrupted result; it must be attached.
	res := j.StatusView().Result
	if res == nil || res.Status != "interrupted" {
		t.Fatalf("cancelled job result = %+v, want interrupted", res)
	}
}

func TestDeadlineMidSolve(t *testing.T) {
	s := newBareServer(t, Config{MaxConcurrent: 1})
	s.sched.solve = blockingSolve

	sp := tinySpec()
	sp.DeadlineSec = 0.05
	j, err := s.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if st := j.State(); st != StateDeadline {
		t.Fatalf("state after deadline fired mid-solve: %s, want deadline_exceeded", st)
	}
}

func TestDeadlineDuringPresolve(t *testing.T) {
	s := newBareServer(t, Config{MaxConcurrent: 1})
	var solved atomic.Bool
	s.sched.solve = func(app core.App, prob *scip.Prob, offset float64, cfg ug.Config) (*ug.Result, error) {
		solved.Store(true)
		return &ug.Result{Optimal: true}, nil
	}

	// Pre-insert an in-flight cache entry under the job's key, so the
	// job's presolve lookup parks behind it until we release it — a
	// deterministic stand-in for a slow presolve.
	sp := tinySpec()
	sp.DeadlineSec = 0.05
	key, _, err := buildApp(&sp)
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	abandoned := make(chan struct{})
	close(abandoned)
	if _, _, _, err := s.cache.Get(abandoned, key, func() (*scip.Prob, float64, error) {
		<-release
		return &scip.Prob{}, 0, nil
	}); err != errStopped {
		t.Fatalf("priming Get with fired stop: err = %v, want errStopped", err)
	}

	j, err := s.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if st := j.State(); st != StateDeadline {
		t.Fatalf("state after deadline fired during presolve: %s, want deadline_exceeded", st)
	}
	if solved.Load() {
		t.Error("solve ran even though the deadline fired during presolve")
	}

	// The abandoned presolve still completes and lands in the cache for
	// later submissions.
	close(release)
	never := make(chan struct{})
	if _, _, hit, err := s.cache.Get(never, key, nil); err != nil || !hit {
		t.Fatalf("after release: hit=%v err=%v, want cached entry", hit, err)
	}
}

func TestFailedBuildIsTerminal(t *testing.T) {
	s := newBareServer(t, Config{MaxConcurrent: 1})
	j, err := s.Submit(Spec{Kind: "stp", Instance: "no-such-instance"})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if st := j.State(); st != StateFailed {
		t.Fatalf("state after bad instance: %s, want failed", st)
	}
	if msg := j.StatusView().Error; !strings.Contains(msg, "no-such-instance") {
		t.Fatalf("error detail %q should name the instance", msg)
	}
}

func TestDoneLifecycleRealSolve(t *testing.T) {
	s := newBareServer(t, Config{MaxConcurrent: 1})
	j, err := s.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if st := j.State(); st != StateDone {
		t.Fatalf("state = %s (err %q), want done", st, j.StatusView().Error)
	}
	res := j.StatusView().Result
	if res == nil || res.Status != "optimal" {
		t.Fatalf("result = %+v, want optimal", res)
	}
	if res.Objective != 3 {
		t.Fatalf("objective = %v, want 3 (path 1-2-3-4)", res.Objective)
	}
	if res.Cache != "miss" {
		t.Fatalf("first submission cache = %q, want miss", res.Cache)
	}
}

// TestCancelRaceStress hammers the cancel path from the moment of
// submission: whatever interleaving wins, every job must reach a
// terminal state and no FSM invariant may trip (run with -race).
func TestCancelRaceStress(t *testing.T) {
	s := newBareServer(t, Config{MaxConcurrent: 2, QueueCap: 128})
	s.sched.solve = func(app core.App, prob *scip.Prob, offset float64, cfg ug.Config) (*ug.Result, error) {
		select {
		case <-cfg.Cancel:
		case <-time.After(time.Millisecond):
		}
		return &ug.Result{Optimal: true}, nil
	}
	var jobs []*Job
	for i := 0; i < 40; i++ {
		j, err := s.Submit(tinySpec())
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
		go s.CancelJob(j.ID)
	}
	for _, j := range jobs {
		waitDone(t, j)
		if st := j.State(); !st.Terminal() {
			t.Fatalf("job %s finished non-terminal: %s", j.ID, st)
		}
	}
}

// The bus double-close on terminal transition must tolerate a bus that
// was never attached (queued-cancelled jobs) — guard against regressions.
func TestTerminalWithBus(t *testing.T) {
	bus := obs.NewBus(nil, nil)
	j := newJob("b", 1, tinySpec(), bus, nil, time.Now())
	if !j.transition(StateRunning) || !j.transition(StateDone) {
		t.Fatal("transitions refused")
	}
	// Closing an already-closed bus must stay a no-op.
	if err := bus.Close(); err != nil {
		t.Fatalf("second bus close: %v", err)
	}
	select {
	case <-j.Done():
	default:
		t.Fatal("done channel not closed on terminal transition")
	}
}
