package lp

import "math"

// dualSimplex restores primal feasibility from a dual feasible basis.
// This is the re-solve path after cutting planes are added or variable
// bounds are tightened during branch-and-bound: both operations keep the
// previous optimal basis dual feasible while possibly making it primal
// infeasible. Reduced costs are maintained incrementally (refreshed
// after refactorizations) so an iteration costs O(Σnnz + m) plus the
// O(m²) ftran/pivot work.
//
//ugo:hotpath driver
func (s *Solver) dualSimplex() Status {
	limit := s.maxIters()
	s.refreshPricing()
	for {
		if s.iters >= limit {
			return IterLimit
		}
		s.iters++
		if !s.dValid {
			s.refreshPricing()
		}
		// Leaving variable: most violated basic.
		r := -1
		var viol float64
		var below bool
		for i, j := range s.basis {
			if v := s.lo[j] - s.xb[i]; v > viol+1e-12 {
				viol = v
				r = i
				below = true
			}
			if v := s.xb[i] - s.up[j]; v > viol+1e-12 {
				viol = v
				r = i
				below = false
			}
		}
		if r < 0 || viol <= feasTol {
			return Optimal
		}
		alpha := s.alphaRow(r)
		total := s.n + s.m
		enter := -1
		bestRatio := math.Inf(1)
		var bestAlpha float64
		for j := 0; j < total; j++ {
			if s.state[j] == stBasic {
				continue
			}
			aj := alpha[j]
			if math.Abs(aj) < pivotTol {
				continue
			}
			// Admissibility: increasing x_B(r) (below) requires the entering
			// movement direction dir with dir·α < 0; decreasing requires
			// dir·α > 0. Nonbasic at lower moves with dir=+1, at upper with
			// dir=−1, free either way.
			ok := false
			switch s.state[j] {
			case stLower:
				ok = (below && aj < 0) || (!below && aj > 0)
			case stUpper:
				ok = (below && aj > 0) || (!below && aj < 0)
			case stFree:
				ok = true
			}
			if !ok {
				continue
			}
			ratio := math.Abs(s.d[j]) / math.Abs(aj)
			if ratio < bestRatio-1e-12 ||
				(ratio < bestRatio+1e-12 && math.Abs(aj) > math.Abs(bestAlpha)) {
				bestRatio = ratio
				enter = j
				bestAlpha = aj
			}
		}
		if enter < 0 {
			// No entering column can repair the violated basic. Confirm
			// with fresh reduced costs before declaring infeasibility.
			return Infeasible
		}
		// Step: move entering so that x_B(r) lands exactly on its violated
		// bound.
		var dir float64
		switch s.state[enter] {
		case stLower:
			dir = +1
		case stUpper:
			dir = -1
		default: // free: pick direction that moves x_B(r) the right way
			if below == (bestAlpha < 0) {
				dir = +1
			} else {
				dir = -1
			}
		}
		var target float64
		var leaveState int8
		if below {
			target = s.lo[s.basis[r]]
			leaveState = stLower
		} else {
			target = s.up[s.basis[r]]
			leaveState = stUpper
		}
		// x_B(r)(t) = xb[r] − dir·α·t = target.
		t := (s.xb[r] - target) / (dir * bestAlpha)
		if t < 0 {
			t = 0
		}
		w := s.ftran(enter)
		leave := s.basis[r]
		s.applyStep(enter, dir, t, w)
		newVal := s.nonbasicValue(enter) + dir*t
		s.pivot(r, enter, w, leaveState)
		s.xb[r] = newVal
		if s.pivots == 0 {
			s.computeXB()
		} else {
			s.updatePricing(enter, leave, alpha)
		}
	}
}
