package lp

import (
	"math"
	"math/rand"
	"testing"
)

// verifyOptimal checks a full optimality certificate for a claimed optimal
// solution: primal feasibility (rows, bounds) and dual feasibility with
// complementary slackness via reduced-cost signs. A basic solution that is
// both primal and dual feasible is optimal, so this is an independent
// certificate, not a re-run of the solver.
func verifyOptimal(t *testing.T, p *Problem, sol *Solution) {
	t.Helper()
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	const tol = 1e-6
	for j, x := range sol.X {
		if x < p.Lo[j]-tol || x > p.Up[j]+tol {
			t.Fatalf("var %d = %v violates bounds [%v,%v]", j, x, p.Lo[j], p.Up[j])
		}
	}
	for i, r := range p.Rows {
		var ax float64
		for _, nz := range r.Coefs {
			ax += nz.Val * sol.X[nz.Col]
		}
		switch r.Sense {
		case LE:
			if ax > r.RHS+tol {
				t.Fatalf("row %d: %v > %v", i, ax, r.RHS)
			}
		case GE:
			if ax < r.RHS-tol {
				t.Fatalf("row %d: %v < %v", i, ax, r.RHS)
			}
		case EQ:
			if math.Abs(ax-r.RHS) > tol {
				t.Fatalf("row %d: %v != %v", i, ax, r.RHS)
			}
		}
	}
	// Dual feasibility of structural reduced costs: at lower bound d ≥ 0,
	// at upper bound d ≤ 0, strictly interior d ≈ 0.
	for j, x := range sol.X {
		d := sol.RedCosts[j]
		atLo := x < p.Lo[j]+tol
		atUp := x > p.Up[j]-tol
		switch {
		case atLo && atUp:
		case atLo:
			if d < -1e-5 {
				t.Fatalf("var %d at lower bound has reduced cost %v < 0", j, d)
			}
		case atUp:
			if d > 1e-5 {
				t.Fatalf("var %d at upper bound has reduced cost %v > 0", j, d)
			}
		default:
			if math.Abs(d) > 1e-5 {
				t.Fatalf("interior var %d has nonzero reduced cost %v", j, d)
			}
		}
	}
	// Row dual signs: min problem, aᵀx ≤ b has y ≤ 0 ⇒ slack reduced cost
	// −y ≥ 0… the slack conventions are checked indirectly through the
	// objective identity below.
	var dualObj float64
	for i, r := range p.Rows {
		dualObj += sol.Duals[i] * r.RHS
	}
	for j := range sol.X {
		d := sol.RedCosts[j]
		if math.Abs(d) < 1e-9 {
			continue
		}
		if d > 0 && !math.IsInf(p.Lo[j], -1) {
			dualObj += d * p.Lo[j]
		} else if d < 0 && !math.IsInf(p.Up[j], 1) {
			dualObj += d * p.Up[j]
		}
	}
	if math.Abs(dualObj-sol.Obj) > 1e-5*(1+math.Abs(sol.Obj)) {
		t.Fatalf("strong duality violated: dual %v vs primal %v", dualObj, sol.Obj)
	}
}

func TestSimpleLP(t *testing.T) {
	// min -x - 2y s.t. x+y <= 4, x <= 3, y <= 2, x,y >= 0 → x=2,y=2, obj -6.
	p := NewProblem()
	x := p.AddVar(0, 3, -1)
	y := p.AddVar(0, 2, -2)
	p.AddRow(LE, 4, []Nonzero{{x, 1}, {y, 1}})
	sol := NewSolver(p).Solve()
	verifyOptimal(t, p, sol)
	if math.Abs(sol.Obj-(-6)) > 1e-8 {
		t.Fatalf("obj = %v, want -6", sol.Obj)
	}
	if math.Abs(sol.X[x]-2) > 1e-8 || math.Abs(sol.X[y]-2) > 1e-8 {
		t.Fatalf("solution = %v, want [2 2]", sol.X)
	}
}

func TestEqualityRow(t *testing.T) {
	// min x+y s.t. x+y = 5, 0<=x<=10, 0<=y<=10 → obj 5.
	p := NewProblem()
	x := p.AddVar(0, 10, 1)
	y := p.AddVar(0, 10, 1)
	p.AddRow(EQ, 5, []Nonzero{{x, 1}, {y, 1}})
	sol := NewSolver(p).Solve()
	verifyOptimal(t, p, sol)
	if math.Abs(sol.Obj-5) > 1e-8 {
		t.Fatalf("obj = %v, want 5", sol.Obj)
	}
}

func TestGERowNeedsPhase1(t *testing.T) {
	// min 2x+3y s.t. x+y >= 4, x-y >= -1, x,y >= 0.
	// Optimum at intersection? Candidates: (4,0) obj 8; (1.5,2.5) obj 10.5 →
	// best is (4,0) obj 8... check x-y>=-1: 4 >= -1 ok. So obj 8.
	p := NewProblem()
	x := p.AddVar(0, Inf, 2)
	y := p.AddVar(0, Inf, 3)
	p.AddRow(GE, 4, []Nonzero{{x, 1}, {y, 1}})
	p.AddRow(GE, -1, []Nonzero{{x, 1}, {y, -1}})
	sol := NewSolver(p).Solve()
	verifyOptimal(t, p, sol)
	if math.Abs(sol.Obj-8) > 1e-8 {
		t.Fatalf("obj = %v, want 8", sol.Obj)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(0, 1, 1)
	p.AddRow(GE, 5, []Nonzero{{x, 1}})
	sol := NewSolver(p).Solve()
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestInfeasibleEqualities(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(0, Inf, 1)
	y := p.AddVar(0, Inf, 1)
	p.AddRow(EQ, 1, []Nonzero{{x, 1}, {y, 1}})
	p.AddRow(EQ, 3, []Nonzero{{x, 1}, {y, 1}})
	sol := NewSolver(p).Solve()
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(0, Inf, -1)
	p.AddRow(GE, 0, []Nonzero{{x, 1}})
	sol := NewSolver(p).Solve()
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestFreeVariable(t *testing.T) {
	// min x s.t. x >= -7 as a row (x free) → obj -7.
	p := NewProblem()
	x := p.AddVar(math.Inf(-1), Inf, 1)
	p.AddRow(GE, -7, []Nonzero{{x, 1}})
	sol := NewSolver(p).Solve()
	verifyOptimal(t, p, sol)
	if math.Abs(sol.Obj-(-7)) > 1e-8 {
		t.Fatalf("obj = %v, want -7", sol.Obj)
	}
}

func TestNegativeLowerBounds(t *testing.T) {
	// min x + y, -5 <= x <= 5, -3 <= y <= 3, x + y >= -6 → x=-5, y=-1? No:
	// min of x+y subject to x+y >= -6 is -6.
	p := NewProblem()
	x := p.AddVar(-5, 5, 1)
	y := p.AddVar(-3, 3, 1)
	p.AddRow(GE, -6, []Nonzero{{x, 1}, {y, 1}})
	sol := NewSolver(p).Solve()
	verifyOptimal(t, p, sol)
	if math.Abs(sol.Obj-(-6)) > 1e-8 {
		t.Fatalf("obj = %v, want -6", sol.Obj)
	}
}

func TestDegenerateLP(t *testing.T) {
	// Classic degeneracy: multiple constraints active at the optimum.
	p := NewProblem()
	x := p.AddVar(0, Inf, -1)
	y := p.AddVar(0, Inf, -1)
	p.AddRow(LE, 1, []Nonzero{{x, 1}})
	p.AddRow(LE, 1, []Nonzero{{y, 1}})
	p.AddRow(LE, 2, []Nonzero{{x, 1}, {y, 1}})
	p.AddRow(LE, 2, []Nonzero{{x, 2}, {y, 1}})
	sol := NewSolver(p).Solve()
	verifyOptimal(t, p, sol)
	// x+y<=2 and 2x+y<=2 with x,y<=1 → best is x=0? obj -(x+y): max x+y.
	// 2x+y<=2, x+y<=2, y<=1 → x=0.5,y=1 gives 1.5; x=0,y=1 gives 1. So -1.5.
	if math.Abs(sol.Obj-(-1.5)) > 1e-8 {
		t.Fatalf("obj = %v, want -1.5", sol.Obj)
	}
}

func randomFeasibleLP(rng *rand.Rand, n, m int) *Problem {
	p := NewProblem()
	for j := 0; j < n; j++ {
		p.AddVar(-2-rng.Float64()*3, 2+rng.Float64()*3, rng.NormFloat64())
	}
	// Build rows through a known interior point so the LP is feasible.
	x0 := make([]float64, n)
	for j := range x0 {
		x0[j] = (p.Lo[j] + p.Up[j]) / 2
	}
	for i := 0; i < m; i++ {
		var coefs []Nonzero
		var ax float64
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.6 {
				v := rng.NormFloat64()
				coefs = append(coefs, Nonzero{j, v})
				ax += v * x0[j]
			}
		}
		if len(coefs) == 0 {
			continue
		}
		switch rng.Intn(3) {
		case 0:
			p.AddRow(LE, ax+rng.Float64()*2, coefs)
		case 1:
			p.AddRow(GE, ax-rng.Float64()*2, coefs)
		default:
			p.AddRow(EQ, ax, coefs)
		}
	}
	return p
}

// Property test: random feasible bounded LPs solve to optimality and the
// KKT certificate holds.
func TestRandomLPsKKT(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 120; trial++ {
		n := 1 + rng.Intn(10)
		m := 1 + rng.Intn(12)
		p := randomFeasibleLP(rng, n, m)
		sol := NewSolver(p).Solve()
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v on a feasible bounded LP", trial, sol.Status)
		}
		verifyOptimal(t, p, sol)
	}
}

// Warm-started dual simplex after a bound change must agree with a fresh
// primal solve of the modified problem.
func TestWarmStartBoundChange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(8)
		m := 1 + rng.Intn(8)
		p := randomFeasibleLP(rng, n, m)
		s := NewSolver(p)
		first := s.Solve()
		if first.Status != Optimal {
			t.Fatalf("trial %d: first solve %v", trial, first.Status)
		}
		// Tighten a random variable's bounds (branching step).
		j := rng.Intn(n)
		mid := (p.Lo[j] + p.Up[j]) / 2
		var lo, up float64
		if rng.Intn(2) == 0 {
			lo, up = p.Lo[j], mid
		} else {
			lo, up = mid, p.Up[j]
		}
		s.SetBound(j, lo, up)
		warm := s.Solve()

		p2 := p.Clone()
		p2.Lo[j], p2.Up[j] = lo, up
		fresh := NewSolver(p2).Solve()
		if warm.Status != fresh.Status {
			t.Fatalf("trial %d: warm %v vs fresh %v", trial, warm.Status, fresh.Status)
		}
		if warm.Status == Optimal {
			verifyOptimal(t, p2, warm)
			if math.Abs(warm.Obj-fresh.Obj) > 1e-6*(1+math.Abs(fresh.Obj)) {
				t.Fatalf("trial %d: warm obj %v vs fresh %v", trial, warm.Obj, fresh.Obj)
			}
		}
	}
}

// Adding a violated cut and re-solving (the cutting-plane loop) must agree
// with a fresh solve of the extended LP.
func TestWarmStartAddRow(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(8)
		m := 1 + rng.Intn(6)
		p := randomFeasibleLP(rng, n, m)
		s := NewSolver(p)
		first := s.Solve()
		if first.Status != Optimal {
			continue
		}
		// Random extra row through a shifted point.
		var coefs []Nonzero
		var ax float64
		for j := 0; j < n; j++ {
			v := rng.NormFloat64()
			coefs = append(coefs, Nonzero{j, v})
			ax += v * (p.Lo[j] + p.Up[j]) / 2
		}
		rhs := ax + rng.NormFloat64()
		s.AddRow(LE, rhs, coefs)
		warm := s.Solve()

		p2 := p.Clone()
		p2.AddRow(LE, rhs, coefs)
		fresh := NewSolver(p2).Solve()
		if warm.Status != fresh.Status {
			t.Fatalf("trial %d: warm %v vs fresh %v", trial, warm.Status, fresh.Status)
		}
		if warm.Status == Optimal {
			verifyOptimal(t, p2, warm)
			if math.Abs(warm.Obj-fresh.Obj) > 1e-6*(1+math.Abs(fresh.Obj)) {
				t.Fatalf("trial %d: warm obj %v vs fresh %v", trial, warm.Obj, fresh.Obj)
			}
		}
	}
}

func TestSetObjReoptimize(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(0, 4, -1)
	y := p.AddVar(0, 4, 0)
	p.AddRow(LE, 5, []Nonzero{{x, 1}, {y, 1}})
	s := NewSolver(p)
	sol := s.Solve()
	if math.Abs(sol.Obj-(-4)) > 1e-8 {
		t.Fatalf("obj = %v, want -4", sol.Obj)
	}
	s.SetObj(y, -2)
	sol = s.Solve()
	// Now max x+2y: y=4, x=1 → obj -9.
	if math.Abs(sol.Obj-(-9)) > 1e-8 {
		t.Fatalf("after SetObj: obj = %v, want -9", sol.Obj)
	}
}

func TestFixedVariable(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(2, 2, 3)
	y := p.AddVar(0, 10, 1)
	p.AddRow(GE, 5, []Nonzero{{x, 1}, {y, 1}})
	sol := NewSolver(p).Solve()
	verifyOptimal(t, p, sol)
	if math.Abs(sol.Obj-9) > 1e-8 { // x=2 fixed, y=3 → 6+3
		t.Fatalf("obj = %v, want 9", sol.Obj)
	}
}

func TestManySequentialBoundChanges(t *testing.T) {
	// Simulates a dive in branch and bound: repeated tightenings, each
	// re-solved warm, finally compared against a fresh solve.
	rng := rand.New(rand.NewSource(13))
	p := randomFeasibleLP(rng, 8, 8)
	s := NewSolver(p)
	if st := s.Solve().Status; st != Optimal {
		t.Fatalf("initial solve: %v", st)
	}
	cur := p.Clone()
	for step := 0; step < 10; step++ {
		j := rng.Intn(8)
		lo, up := cur.Lo[j], cur.Up[j]
		mid := lo + (up-lo)*0.7
		s.SetBound(j, lo, mid)
		cur.Up[j] = mid
		warm := s.Solve()
		fresh := NewSolver(cur).Solve()
		if warm.Status != fresh.Status {
			t.Fatalf("step %d: warm %v fresh %v", step, warm.Status, fresh.Status)
		}
		if warm.Status == Optimal && math.Abs(warm.Obj-fresh.Obj) > 1e-6*(1+math.Abs(fresh.Obj)) {
			t.Fatalf("step %d: warm obj %v fresh %v", step, warm.Obj, fresh.Obj)
		}
		if warm.Status != Optimal {
			break
		}
	}
}

func TestDualsOnKnownLP(t *testing.T) {
	// min -3x -5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (classic example).
	// Optimum x=2, y=6, obj -36; duals for rows 2 and 3 are -3/2 and -1.
	p := NewProblem()
	x := p.AddVar(0, Inf, -3)
	y := p.AddVar(0, Inf, -5)
	p.AddRow(LE, 4, []Nonzero{{x, 1}})
	p.AddRow(LE, 12, []Nonzero{{y, 2}})
	p.AddRow(LE, 18, []Nonzero{{x, 3}, {y, 2}})
	sol := NewSolver(p).Solve()
	verifyOptimal(t, p, sol)
	if math.Abs(sol.Obj-(-36)) > 1e-8 {
		t.Fatalf("obj = %v, want -36", sol.Obj)
	}
	if math.Abs(sol.Duals[0]) > 1e-8 || math.Abs(sol.Duals[1]-(-1.5)) > 1e-8 || math.Abs(sol.Duals[2]-(-1)) > 1e-8 {
		t.Fatalf("duals = %v, want [0 -1.5 -1]", sol.Duals)
	}
}

func TestIterLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := randomFeasibleLP(rng, 10, 10)
	s := NewSolver(p)
	s.MaxIters = 1
	sol := s.Solve()
	if sol.Status == Optimal && sol.Iters > 1 {
		t.Fatalf("iteration limit not respected: %d iters", sol.Iters)
	}
}

func TestRowEnableDisable(t *testing.T) {
	// min -x s.t. x <= 5 (row), 0 <= x <= 10.
	p := NewProblem()
	x := p.AddVar(0, 10, -1)
	r := p.AddRow(LE, 5, []Nonzero{{x, 1}})
	s := NewSolver(p)
	sol := s.Solve()
	if sol.Obj != -5 {
		t.Fatalf("obj = %v, want -5", sol.Obj)
	}
	if !s.RowEnabled(r) {
		t.Fatal("row should start enabled")
	}
	s.SetRowEnabled(r, false)
	if s.RowEnabled(r) {
		t.Fatal("row still enabled after disable")
	}
	sol = s.Solve()
	if sol.Obj != -10 { // row no longer binds
		t.Fatalf("obj with disabled row = %v, want -10", sol.Obj)
	}
	s.SetRowEnabled(r, true)
	sol = s.Solve()
	if sol.Obj != -5 {
		t.Fatalf("obj after re-enable = %v, want -5", sol.Obj)
	}
}

func TestRowToggleEquality(t *testing.T) {
	// Equality rows toggle too: x + y = 3 disabled -> free optimum.
	p := NewProblem()
	x := p.AddVar(0, 10, 1)
	y := p.AddVar(0, 10, 1)
	r := p.AddRow(EQ, 3, []Nonzero{{x, 1}, {y, 1}})
	s := NewSolver(p)
	if sol := s.Solve(); math.Abs(sol.Obj-3) > 1e-9 {
		t.Fatalf("obj = %v, want 3", sol.Obj)
	}
	s.SetRowEnabled(r, false)
	if sol := s.Solve(); math.Abs(sol.Obj) > 1e-9 {
		t.Fatalf("obj with disabled equality = %v, want 0", sol.Obj)
	}
	s.SetRowEnabled(r, true)
	if sol := s.Solve(); math.Abs(sol.Obj-3) > 1e-9 {
		t.Fatalf("obj after re-enable = %v, want 3", sol.Obj)
	}
}

// Property: toggling random subsets of rows and re-solving always agrees
// with a fresh solve of the problem restricted to the enabled rows.
func TestRowToggleMatchesFreshSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(5)
		p := randomFeasibleLP(rng, n, 2+rng.Intn(5))
		m := p.NumRows() // the generator may skip empty rows
		if m == 0 {
			continue
		}
		s := NewSolver(p)
		if s.Solve().Status != Optimal {
			continue
		}
		for round := 0; round < 4; round++ {
			enabled := make([]bool, m)
			for i := range enabled {
				enabled[i] = rng.Float64() < 0.6
				s.SetRowEnabled(i, enabled[i])
			}
			warm := s.Solve()
			p2 := NewProblem()
			for j := 0; j < n; j++ {
				p2.AddVar(p.Lo[j], p.Up[j], p.Obj[j])
			}
			for i, r := range p.Rows {
				if enabled[i] {
					p2.AddRow(r.Sense, r.RHS, r.Coefs)
				}
			}
			fresh := NewSolver(p2).Solve()
			if warm.Status != fresh.Status {
				t.Fatalf("trial %d round %d: warm %v fresh %v", trial, round, warm.Status, fresh.Status)
			}
			if warm.Status == Optimal && math.Abs(warm.Obj-fresh.Obj) > 1e-6*(1+math.Abs(fresh.Obj)) {
				t.Fatalf("trial %d round %d: warm %v fresh %v", trial, round, warm.Obj, fresh.Obj)
			}
		}
	}
}
