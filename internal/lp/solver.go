package lp

import (
	"math"

	"repro/internal/num"
)

// Variable states in the simplex dictionary.
const (
	stBasic int8 = iota
	stLower      // nonbasic at lower bound (or pegged at 0 when lo = -Inf, up = +Inf)
	stUpper      // nonbasic at upper bound
	stFree       // nonbasic free variable, value 0
)

const (
	feasTol  = 1e-8 // primal feasibility tolerance
	dualTol  = 1e-8 // dual feasibility (reduced-cost) tolerance
	pivotTol = 1e-9 // minimum admissible pivot magnitude
)

// Solver is a simplex instance over a snapshot of a Problem. It keeps a
// factorized basis across calls so that the cutting-plane loop (AddRow +
// Solve) and branch-and-bound (SetBound + Solve) re-solve with the dual
// simplex instead of starting from scratch.
type Solver struct {
	m, n int // rows, structural columns

	// Computational form: [A | I_slack] x = b, lo ≤ x ≤ up over n+m cols.
	cols  [][]colEntry // sparse structural columns
	b     []float64
	c     []float64 // length n+m (slack costs 0)
	lo    []float64
	up    []float64
	sense []Sense

	basis    []int // basis[i] = column basic in row i
	state    []int8
	binv     [][]float64 // dense basis inverse, m×m
	xb       []float64   // basic variable values
	hasBasis bool

	// MaxIters bounds a single Solve call; 0 means the default.
	MaxIters int

	pivots int // pivots since last refactorization
	iters  int

	// d caches reduced costs for incremental pricing; dValid marks it
	// current (invalidated by refactorization and structural changes).
	d      []float64
	dValid bool

	// Per-iteration simplex scratch, reused across pivots and re-solves.
	// Every user fully overwrites its buffer before reading it; alphaBuf,
	// ftranBuf and btranBuf are distinct because an iteration holds an
	// alpha row and an ftran column (and, in phase 1, a btran result)
	// live at the same time.
	alphaBuf []float64
	ftranBuf []float64
	btranBuf []float64
	cbBuf    []float64
	rcBuf    []float64
	rhsBuf   []float64
}

// grow returns buf resized to n, reallocating only when capacity is
// short. Contents are unspecified: callers must overwrite every entry
// they read.
func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		buf = make([]float64, n)
	}
	return buf[:n]
}

// alphaRow computes α_j = (e_rᵀ B⁻¹) A_j for every column (the pivot row
// of the full tableau), in O(Σnnz + m) using the sparse columns. The
// result aliases s.alphaBuf and is valid until the next call.
func (s *Solver) alphaRow(r int) []float64 {
	er := s.binv[r]
	total := s.n + s.m
	s.alphaBuf = grow(s.alphaBuf, total)
	alpha := s.alphaBuf
	for j := 0; j < s.n; j++ {
		var acc float64
		for _, e := range s.cols[j] {
			acc += er[e.row] * e.val
		}
		alpha[j] = acc
	}
	for i := 0; i < s.m; i++ {
		alpha[s.n+i] = er[i]
	}
	return alpha
}

// updatePricing applies the standard reduced-cost update after a pivot:
// d'_j = d_j − θ·α_j with θ = d_enter/α_enter. Must be called with the
// pre-pivot alpha row.
func (s *Solver) updatePricing(enter, leave int, alpha []float64) {
	if !s.dValid {
		return
	}
	theta := s.d[enter] / alpha[enter]
	if num.Nonzero(theta) {
		for j := range s.d {
			s.d[j] -= theta * alpha[j]
		}
	}
	s.d[enter] = 0
	s.d[leave] = -theta
}

// refreshPricing (re)computes the cached reduced costs from scratch.
// The result is copied into the persistent s.d: reducedCosts returns
// solver scratch, and s.d must survive later scratch reuse because
// updatePricing maintains it incrementally across pivots.
func (s *Solver) refreshPricing() {
	d, _ := s.reducedCosts()
	s.d = grow(s.d, len(d))
	copy(s.d, d)
	s.dValid = true
}

// NewSolver snapshots prob into a solver.
func NewSolver(prob *Problem) *Solver {
	n := prob.NumVars()
	m := prob.NumRows()
	s := &Solver{m: 0, n: n}
	s.c = append([]float64(nil), prob.Obj...)
	s.lo = append([]float64(nil), prob.Lo...)
	s.up = append([]float64(nil), prob.Up...)
	s.cols = make([][]colEntry, n)
	for i := 0; i < m; i++ {
		r := prob.Rows[i]
		s.AddRow(r.Sense, r.RHS, r.Coefs)
	}
	return s
}

// NumRows returns the current number of rows (including added cuts).
func (s *Solver) NumRows() int { return s.m }

// NumVars returns the number of structural variables.
func (s *Solver) NumVars() int { return s.n }

// slackBounds returns the bounds of the slack for a given row sense,
// using the convention aᵀx + slack = b.
func slackBounds(sense Sense) (lo, up float64) {
	switch sense {
	case LE:
		return 0, Inf
	case GE:
		return math.Inf(-1), 0
	default: // EQ
		return 0, 0
	}
}

// AddRow appends a row aᵀx {≤,=,≥} rhs. The new slack variable enters the
// basis, which preserves dual feasibility of an optimal basis, so the next
// Solve can proceed with the dual simplex.
func (s *Solver) AddRow(sense Sense, rhs float64, coefs []Nonzero) int {
	row := s.m
	s.m++
	s.b = append(s.b, rhs)
	s.sense = append(s.sense, sense)
	// Extend structural columns with the new row's coefficients
	// (accumulating duplicates).
	touched := map[int]float64{}
	for _, nz := range coefs {
		touched[nz.Col] += nz.Val
	}
	for j, v := range touched {
		if num.Nonzero(v) {
			s.cols[j] = append(s.cols[j], colEntry{row: row, val: v})
		}
	}
	// Slack column: previous slacks gain a zero entry implicitly because
	// slack columns are unit vectors; we track slacks positionally (slack
	// of row i is column n+i) and synthesize the column on demand.
	slo, sup := slackBounds(sense)
	s.lo = append(s.lo, slo)
	s.up = append(s.up, sup)
	s.c = append(s.c, 0)
	s.state = append(s.state, stBasic)
	s.dValid = false
	if s.hasBasis {
		// Grow the basis with the new slack and extend B⁻¹: new basis is
		// [[B,0],[eᵣ?,1]] — since the slack column is a unit vector in the
		// new row only, B⁻¹ extends by computing the new bottom row.
		s.basis = append(s.basis, s.n+s.m-1)
		for i := range s.binv {
			s.binv[i] = append(s.binv[i], 0)
		}
		newRow := make([]float64, s.m)
		// New row of B is [a_{B(0)},...,a_{B(m-2)}, 1] restricted to the new
		// constraint row; eliminate using existing B⁻¹:
		// B⁻¹_new bottom row = e_new - Σ_k a_k · (B⁻¹ rows).
		for i := 0; i < s.m-1; i++ {
			aj := s.entryAt(s.basis[i], s.m-1)
			if num.ExactZero(aj) {
				continue
			}
			for k := 0; k < s.m-1; k++ {
				newRow[k] -= aj * s.binv[i][k]
			}
		}
		newRow[s.m-1] = 1
		s.binv = append(s.binv, newRow)
		s.xb = append(s.xb, 0)
	}
	return row
}

// SetBound updates the bounds of a structural variable. Nonbasic variables
// pegged to a moved bound keep their state; the next Solve repairs any
// primal infeasibility with the dual simplex.
func (s *Solver) SetBound(j int, lo, up float64) {
	s.lo[j] = lo
	s.up[j] = up
	if !s.hasBasis {
		return
	}
	switch s.state[j] {
	case stLower:
		if math.IsInf(lo, -1) {
			if math.IsInf(up, 1) {
				s.state[j] = stFree
			} else {
				s.state[j] = stUpper
			}
		}
	case stUpper:
		if math.IsInf(up, 1) {
			if math.IsInf(lo, -1) {
				s.state[j] = stFree
			} else {
				s.state[j] = stLower
			}
		}
	case stFree:
		if !math.IsInf(lo, -1) {
			s.state[j] = stLower
		} else if !math.IsInf(up, 1) {
			s.state[j] = stUpper
		}
	}
}

// Bounds returns the current bounds of structural variable j.
func (s *Solver) Bounds(j int) (lo, up float64) { return s.lo[j], s.up[j] }

// SetRowEnabled toggles row i: a disabled row's slack becomes free, so
// the row can never bind. This implements locally-valid cutting planes in
// branch and bound: cuts separated in a subtree are enabled only while a
// node of that subtree is active.
func (s *Solver) SetRowEnabled(i int, enabled bool) {
	j := s.n + i
	if enabled {
		slo, sup := slackBounds(s.sense[i])
		s.lo[j], s.up[j] = slo, sup
		if s.hasBasis && s.state[j] != stBasic {
			// Re-peg the slack to an existing bound.
			if math.IsInf(slo, -1) && !math.IsInf(sup, 1) {
				s.state[j] = stUpper
			} else {
				s.state[j] = stLower
			}
		}
	} else {
		s.lo[j], s.up[j] = math.Inf(-1), Inf
		if s.hasBasis && s.state[j] != stBasic {
			s.state[j] = stFree
		}
	}
}

// RowEnabled reports whether row i is enabled.
func (s *Solver) RowEnabled(i int) bool {
	j := s.n + i
	return !(math.IsInf(s.lo[j], -1) && math.IsInf(s.up[j], 1))
}

// SetObj updates an objective coefficient. An optimal basis stays primal
// feasible, so the next Solve runs primal phase 2 from it.
func (s *Solver) SetObj(j int, c float64) {
	s.c[j] = c
	s.dValid = false
}

// colEntry is one nonzero of a sparse structural column.
type colEntry struct {
	row int
	val float64
}

// entryAt returns entry (row) of column j, synthesizing slack unit
// columns (column n+i is the unit vector eᵢ).
func (s *Solver) entryAt(j, row int) float64 {
	if j < s.n {
		for _, e := range s.cols[j] {
			if e.row == row {
				return e.val
			}
		}
		return 0
	}
	if j-s.n == row {
		return 1
	}
	return 0
}

// ftran computes w = B⁻¹ A_j. The result aliases s.ftranBuf and is
// valid until the next call.
func (s *Solver) ftran(j int) []float64 {
	s.ftranBuf = grow(s.ftranBuf, s.m)
	w := s.ftranBuf
	if j >= s.n {
		r := j - s.n
		for i := 0; i < s.m; i++ {
			w[i] = s.binv[i][r]
		}
		return w
	}
	for i := 0; i < s.m; i++ {
		var acc float64
		bi := s.binv[i]
		for _, e := range s.cols[j] {
			acc += bi[e.row] * e.val
		}
		w[i] = acc
	}
	return w
}

// btran computes yᵀ = vᵀ B⁻¹ for a length-m vector v. The result
// aliases s.btranBuf and is valid until the next call.
func (s *Solver) btran(v []float64) []float64 {
	s.btranBuf = grow(s.btranBuf, s.m)
	y := s.btranBuf
	for k := 0; k < s.m; k++ {
		var acc float64
		for i := 0; i < s.m; i++ {
			if num.Nonzero(v[i]) {
				acc += v[i] * s.binv[i][k]
			}
		}
		y[k] = acc
	}
	return y
}

// nonbasicValue returns the current value of nonbasic column j.
func (s *Solver) nonbasicValue(j int) float64 {
	switch s.state[j] {
	case stLower:
		if math.IsInf(s.lo[j], -1) {
			return 0
		}
		return s.lo[j]
	case stUpper:
		if math.IsInf(s.up[j], 1) {
			return 0
		}
		return s.up[j]
	default:
		return 0
	}
}

// computeXB recomputes the basic variable values from scratch:
// x_B = B⁻¹ (b − N x_N).
func (s *Solver) computeXB() {
	s.rhsBuf = grow(s.rhsBuf, len(s.b))
	rhs := s.rhsBuf
	copy(rhs, s.b)
	total := s.n + s.m
	for j := 0; j < total; j++ {
		if s.state[j] == stBasic {
			continue
		}
		v := s.nonbasicValue(j)
		if num.ExactZero(v) {
			continue
		}
		if j < s.n {
			for _, e := range s.cols[j] {
				rhs[e.row] -= e.val * v
			}
		} else {
			rhs[j-s.n] -= v
		}
	}
	for i := 0; i < s.m; i++ {
		var acc float64
		bi := s.binv[i]
		for k, r := range rhs {
			if num.Nonzero(r) {
				acc += bi[k] * r
			}
		}
		s.xb[i] = acc
	}
}

// resetSlackBasis installs the all-slack basis.
//
//ugo:coldpath first-solve basis install and numerical recovery, not steady state
func (s *Solver) resetSlackBasis() {
	s.basis = make([]int, s.m)
	s.binv = make([][]float64, s.m)
	s.xb = make([]float64, s.m)
	total := s.n + s.m
	if len(s.state) < total {
		s.state = make([]int8, total)
	}
	for j := 0; j < total; j++ {
		switch {
		case j >= s.n: // slack, basic
			s.state[j] = stBasic
		case !math.IsInf(s.lo[j], -1):
			s.state[j] = stLower
		case !math.IsInf(s.up[j], 1):
			s.state[j] = stUpper
		default:
			s.state[j] = stFree
		}
	}
	for i := 0; i < s.m; i++ {
		s.basis[i] = s.n + i
		s.binv[i] = make([]float64, s.m)
		s.binv[i][i] = 1
	}
	s.hasBasis = true
	s.pivots = 0
	s.dValid = false
	s.computeXB()
}

// refactorize rebuilds B⁻¹ from the basis columns with Gauss–Jordan
// elimination; returns false if the basis matrix is singular.
//
//ugo:coldpath amortized: rebuilds the basis inverse once per 400 pivots
func (s *Solver) refactorize() bool {
	m := s.m
	// Build [B | I] and reduce.
	a := make([][]float64, m)
	for i := 0; i < m; i++ {
		a[i] = make([]float64, 2*m)
		a[i][m+i] = 1
	}
	for p, j := range s.basis {
		if j < s.n {
			for _, e := range s.cols[j] {
				a[e.row][p] = e.val
			}
		} else {
			a[j-s.n][p] = 1
		}
	}
	for col := 0; col < m; col++ {
		p := -1
		best := 1e-11
		for r := col; r < m; r++ {
			if v := math.Abs(a[r][col]); v > best {
				best = v
				p = r
			}
		}
		if p < 0 {
			return false
		}
		a[col], a[p] = a[p], a[col]
		piv := a[col][col]
		for k := col; k < 2*m; k++ {
			a[col][k] /= piv
		}
		for r := 0; r < m; r++ {
			if r == col {
				continue
			}
			f := a[r][col]
			if num.ExactZero(f) {
				continue
			}
			for k := col; k < 2*m; k++ {
				a[r][k] -= f * a[col][k]
			}
		}
	}
	for i := 0; i < m; i++ {
		copy(s.binv[i], a[i][m:])
	}
	s.pivots = 0
	return true
}

// pivot updates the basis: column enter replaces the basic variable of
// row r; w must be B⁻¹ A_enter. leaveState is the state the leaving
// variable assumes.
func (s *Solver) pivot(r, enter int, w []float64, leaveState int8) {
	leave := s.basis[r]
	s.state[leave] = leaveState
	s.state[enter] = stBasic
	s.basis[r] = enter
	piv := w[r]
	// Elementary transformation of B⁻¹.
	br := s.binv[r]
	for k := 0; k < s.m; k++ {
		br[k] /= piv
	}
	for i := 0; i < s.m; i++ {
		if i == r {
			continue
		}
		f := w[i]
		if num.ExactZero(f) {
			continue
		}
		bi := s.binv[i]
		for k := 0; k < s.m; k++ {
			bi[k] -= f * br[k]
		}
	}
	s.pivots++
	if s.pivots >= 400 {
		if !s.refactorize() {
			s.resetSlackBasis()
		}
		s.dValid = false
	}
}

// reducedCosts returns d_j = c_j − yᵀA_j for every column, with
// y = c_Bᵀ B⁻¹ (also returned). Both results alias solver scratch
// (s.rcBuf / s.btranBuf): callers that keep them must copy.
func (s *Solver) reducedCosts() (d, y []float64) {
	s.cbBuf = grow(s.cbBuf, s.m)
	cb := s.cbBuf
	for i, j := range s.basis {
		cb[i] = s.c[j]
	}
	y = s.btran(cb)
	total := s.n + s.m
	s.rcBuf = grow(s.rcBuf, total)
	d = s.rcBuf
	for j := 0; j < total; j++ {
		if s.state[j] == stBasic {
			d[j] = 0 // reused buffer: stale entries must be cleared
			continue
		}
		var yaj float64
		if j < s.n {
			for _, e := range s.cols[j] {
				yaj += y[e.row] * e.val
			}
		} else {
			yaj = y[j-s.n]
		}
		d[j] = s.c[j] - yaj
	}
	return d, y
}

// primalInfeasibility returns the total bound violation of the basic
// variables.
func (s *Solver) primalInfeasibility() float64 {
	var inf float64
	for i, j := range s.basis {
		if v := s.xb[i] - s.up[j]; v > feasTol {
			inf += v
		}
		if v := s.lo[j] - s.xb[i]; v > feasTol {
			inf += v
		}
	}
	return inf
}

// dualInfeasible reports whether any nonbasic reduced cost violates its
// required sign.
func (s *Solver) dualInfeasible(d []float64) bool {
	total := s.n + s.m
	for j := 0; j < total; j++ {
		switch s.state[j] {
		case stLower:
			if d[j] < -dualTol {
				return true
			}
		case stUpper:
			if d[j] > dualTol {
				return true
			}
		case stFree:
			if math.Abs(d[j]) > dualTol {
				return true
			}
		}
	}
	return false
}

func (s *Solver) maxIters() int {
	if s.MaxIters > 0 {
		return s.MaxIters
	}
	return 20000 + 40*(s.n+s.m)
}

// Solve optimizes from the current basis (or from the all-slack basis on
// the first call), automatically choosing primal or dual simplex.
func (s *Solver) Solve() *Solution {
	if !s.hasBasis || len(s.basis) != s.m {
		s.resetSlackBasis()
	}
	s.iters = 0
	s.computeXB()
	if s.primalInfeasibility() > feasTol {
		d, _ := s.reducedCosts()
		if !s.dualInfeasible(d) {
			if st := s.dualSimplex(); st != Optimal {
				// Either proven infeasible or numerical trouble; phase 1
				// confirms from scratch.
				if st == Infeasible {
					return s.finish(Infeasible)
				}
			}
		}
		if s.primalInfeasibility() > feasTol {
			if st := s.primalPhase1(); st != Optimal {
				return s.finish(st)
			}
		}
	}
	st := s.primalPhase2()
	return s.finish(st)
}

// finish assembles a Solution from the current state. The Solution and
// its slices are freshly allocated: ownership transfers to the caller,
// which may hold them across later re-solves.
//
//ugo:coldpath builds the returned Solution once per solve; the caller owns it
func (s *Solver) finish(st Status) *Solution {
	sol := &Solution{Status: st, Iters: s.iters}
	if st != Optimal {
		return sol
	}
	x := make([]float64, s.n+s.m)
	for j := range x {
		if s.state[j] != stBasic {
			x[j] = s.nonbasicValue(j)
		}
	}
	for i, j := range s.basis {
		x[j] = s.xb[i]
	}
	sol.X = x[:s.n:s.n]
	var obj float64
	for j := 0; j < s.n; j++ {
		obj += s.c[j] * x[j]
	}
	sol.Obj = obj
	// reducedCosts returns solver scratch; the Solution gets copies.
	d, y := s.reducedCosts()
	sol.Duals = append([]float64(nil), y...)
	sol.RedCosts = append([]float64(nil), d[:s.n]...)
	return sol
}
