// Package lp implements a self-contained linear-programming solver: a
// bounded-variable revised simplex method with primal phase-1/phase-2,
// a dual simplex for warm-started re-solves, and dynamic row addition
// for cutting-plane loops. It stands in for the commercial LP engines
// (CPLEX, SoPlex) that the original SCIP-based stack links against.
//
// Problems are stated as
//
//	min cᵀx   s.t.  aᵢᵀx {≤,=,≥} bᵢ,  lo ≤ x ≤ up,
//
// with ±Inf bounds allowed. Internally every row receives a slack
// variable, turning the system into equalities with bounded variables.
package lp

import (
	"fmt"
	"math"
)

// Inf is the canonical infinite bound.
var Inf = math.Inf(1)

// Sense is the relational sense of a row.
type Sense int8

// Row senses.
const (
	LE Sense = iota // aᵀx ≤ b
	GE              // aᵀx ≥ b
	EQ              // aᵀx = b
)

// Status reports the outcome of a solve.
type Status int8

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iterlimit"
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// Nonzero is one coefficient of a sparse row.
type Nonzero struct {
	Col int
	Val float64
}

// Problem is an LP under construction. It is a pure description; Solver
// snapshots it, so a Problem can be reused to spawn many solvers (one per
// branch-and-bound worker).
type Problem struct {
	Obj    []float64 // objective coefficient per structural variable
	Lo, Up []float64 // bounds per structural variable
	Rows   []RowDef
}

// RowDef is one constraint row.
type RowDef struct {
	Sense Sense
	RHS   float64
	Coefs []Nonzero
	Name  string
}

// NewProblem returns an empty problem.
func NewProblem() *Problem { return &Problem{} }

// AddVar appends a structural variable and returns its index.
func (p *Problem) AddVar(lo, up, obj float64) int {
	p.Obj = append(p.Obj, obj)
	p.Lo = append(p.Lo, lo)
	p.Up = append(p.Up, up)
	return len(p.Obj) - 1
}

// AddRow appends a constraint row and returns its index.
func (p *Problem) AddRow(sense Sense, rhs float64, coefs []Nonzero) int {
	p.Rows = append(p.Rows, RowDef{Sense: sense, RHS: rhs, Coefs: append([]Nonzero(nil), coefs...)})
	return len(p.Rows) - 1
}

// NumVars returns the number of structural variables.
func (p *Problem) NumVars() int { return len(p.Obj) }

// NumRows returns the number of rows.
func (p *Problem) NumRows() int { return len(p.Rows) }

// Clone returns a deep copy of the problem.
func (p *Problem) Clone() *Problem {
	q := &Problem{
		Obj:  append([]float64(nil), p.Obj...),
		Lo:   append([]float64(nil), p.Lo...),
		Up:   append([]float64(nil), p.Up...),
		Rows: make([]RowDef, len(p.Rows)),
	}
	for i, r := range p.Rows {
		q.Rows[i] = RowDef{Sense: r.Sense, RHS: r.RHS, Name: r.Name,
			Coefs: append([]Nonzero(nil), r.Coefs...)}
	}
	return q
}

// Solution is the result of a solve.
type Solution struct {
	Status   Status
	Obj      float64   // objective value (min sense) when Optimal
	X        []float64 // structural variable values
	Duals    []float64 // row duals y = c_Bᵀ B⁻¹
	RedCosts []float64 // reduced costs of structural variables
	Iters    int       // simplex iterations spent
}

// Value returns x_j for convenience.
func (s *Solution) Value(j int) float64 { return s.X[j] }
