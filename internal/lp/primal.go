package lp

import (
	"math"

	"repro/internal/num"
)

// enterDir returns the admissible movement direction(s) for a nonbasic
// column under phase-2 pricing: +1 to increase from a lower bound, −1 to
// decrease from an upper bound; free variables move against the sign of
// their reduced cost.
func (s *Solver) enterDir(j int, dj float64, bland bool) (dir float64, ok bool) {
	tol := dualTol
	if bland {
		tol = 1e-12
	}
	switch s.state[j] {
	case stLower:
		if dj < -tol {
			return +1, true
		}
	case stUpper:
		if dj > tol {
			return -1, true
		}
	case stFree:
		if dj < -tol {
			return +1, true
		}
		if dj > tol {
			return -1, true
		}
	}
	return 0, false
}

// primalRatioTest finds the maximum step t for entering column `enter`
// moving in direction dir, with tableau column w = B⁻¹ A_enter. It
// returns the blocking basic row r (−1 for a bound flip of the entering
// variable itself, −2 for unbounded) and the state the leaving variable
// assumes.
func (s *Solver) primalRatioTest(enter int, dir float64, w []float64) (t float64, r int, leaveState int8) {
	t = math.Inf(1)
	r = -2
	// Own bound range limits the step (bound flip).
	if rangeLen := s.up[enter] - s.lo[enter]; !math.IsInf(rangeLen, 1) {
		t = rangeLen
		r = -1
	}
	for i := 0; i < s.m; i++ {
		delta := -dir * w[i] // rate of change of x_B(i) per unit t
		if math.Abs(delta) < pivotTol {
			continue
		}
		bj := s.basis[i]
		var lim float64
		var st int8
		if delta > 0 {
			if math.IsInf(s.up[bj], 1) {
				continue
			}
			lim = (s.up[bj] - s.xb[i]) / delta
			st = stUpper
		} else {
			if math.IsInf(s.lo[bj], -1) {
				continue
			}
			lim = (s.lo[bj] - s.xb[i]) / delta
			st = stLower
		}
		if lim < -1e-12 {
			lim = 0
		}
		if lim < t-1e-12 || (lim < t+1e-12 && r >= 0 && math.Abs(w[i]) > math.Abs(w[r])) {
			t = lim
			r = i
			leaveState = st
		}
	}
	return t, r, leaveState
}

// applyStep moves the entering variable by t·dir and updates basic values.
func (s *Solver) applyStep(enter int, dir, t float64, w []float64) {
	if num.ExactZero(t) { // degenerate step: dictionary values unchanged
		return
	}
	for i := 0; i < s.m; i++ {
		s.xb[i] -= dir * t * w[i]
	}
	_ = enter
}

// primalPhase2 runs the bounded-variable primal simplex from a primal
// feasible basis until optimality or unboundedness.
//
//ugo:hotpath driver
func (s *Solver) primalPhase2() Status {
	limit := s.maxIters()
	noProgress := 0
	justRefreshed := false
	s.refreshPricing()
	for {
		if s.iters >= limit {
			return IterLimit
		}
		s.iters++
		if !s.dValid {
			s.refreshPricing()
		}
		bland := noProgress > 2*(s.n+s.m)+200
		enter := -1
		var dir, best float64
		total := s.n + s.m
		for j := 0; j < total; j++ {
			if s.state[j] == stBasic {
				continue
			}
			dj := s.d[j]
			dd, ok := s.enterDir(j, dj, bland)
			if !ok {
				continue
			}
			if bland {
				enter, dir = j, dd
				break
			}
			if v := math.Abs(dj); v > best {
				best = v
				enter, dir = j, dd
			}
		}
		if enter < 0 {
			// Guard against drift in the incremental pricing: confirm
			// optimality with freshly computed reduced costs once.
			if justRefreshed {
				return Optimal
			}
			s.refreshPricing()
			justRefreshed = true
			continue
		}
		justRefreshed = false
		w := s.ftran(enter)
		t, r, leaveState := s.primalRatioTest(enter, dir, w)
		switch r {
		case -2:
			return Unbounded
		case -1: // bound flip: basis and duals unchanged
			s.applyStep(enter, dir, t, w)
			if s.state[enter] == stLower {
				s.state[enter] = stUpper
			} else {
				s.state[enter] = stLower
			}
		default:
			alpha := s.alphaRow(r)
			leave := s.basis[r]
			s.applyStep(enter, dir, t, w)
			newVal := s.nonbasicValue(enter) + dir*t
			s.pivot(r, enter, w, leaveState)
			s.xb[r] = newVal
			if s.pivots == 0 { // refactorized inside pivot
				s.computeXB()
			} else {
				s.updatePricing(enter, leave, alpha)
			}
		}
		if t > 1e-10 {
			noProgress = 0
		} else {
			noProgress++
		}
	}
}

// primalPhase1 drives the total bound violation of the basic variables to
// zero using the composite (piecewise-linear) phase-1 objective: basic
// variables above their upper bound get cost +1, below their lower bound
// cost −1. Returns Optimal when a primal feasible basis is found,
// Infeasible when the phase-1 optimum is positive.
//
//ugo:hotpath driver
func (s *Solver) primalPhase1() Status {
	limit := s.maxIters()
	noProgress := 0
	for {
		if s.iters >= limit {
			return IterLimit
		}
		s.iters++
		inf := s.primalInfeasibility()
		if inf <= feasTol {
			return Optimal
		}
		// Phase-1 cost on basics (reused buffer; zero it first because
		// only violated rows get a nonzero cost).
		s.cbBuf = grow(s.cbBuf, s.m)
		cb := s.cbBuf
		clear(cb)
		for i, j := range s.basis {
			if s.xb[i] > s.up[j]+feasTol {
				cb[i] = 1
			} else if s.xb[i] < s.lo[j]-feasTol {
				cb[i] = -1
			}
		}
		y := s.btran(cb)
		bland := noProgress > 2*(s.n+s.m)+200
		// Price nonbasic columns: d_j = −yᵀA_j (phase-1 costs of nonbasics
		// are zero).
		enter := -1
		var dir, best float64
		total := s.n + s.m
		for j := 0; j < total; j++ {
			if s.state[j] == stBasic {
				continue
			}
			var yaj float64
			if j < s.n {
				for _, e := range s.cols[j] {
					yaj += y[e.row] * e.val
				}
			} else {
				yaj = y[j-s.n]
			}
			dj := -yaj
			dd, ok := s.enterDir(j, dj, bland)
			if !ok {
				continue
			}
			if bland {
				enter, dir = j, dd
				break
			}
			if v := math.Abs(dj); v > best {
				best = v
				enter, dir = j, dd
			}
		}
		if enter < 0 {
			return Infeasible
		}
		w := s.ftran(enter)
		t, r, leaveState := s.phase1RatioTest(enter, dir, w)
		if r == -2 {
			// The phase-1 objective is bounded below by 0, so an unbounded
			// ray cannot occur with a correct blocking rule; report as a
			// numerical failure rather than claiming infeasibility.
			return IterLimit
		}
		if r == -1 {
			s.applyStep(enter, dir, t, w)
			if s.state[enter] == stLower {
				s.state[enter] = stUpper
			} else {
				s.state[enter] = stLower
			}
		} else {
			s.applyStep(enter, dir, t, w)
			newVal := s.nonbasicValue(enter) + dir*t
			s.pivot(r, enter, w, leaveState)
			s.xb[r] = newVal
			if s.pivots == 0 {
				s.computeXB()
			}
		}
		if t > 1e-10 {
			noProgress = 0
		} else {
			noProgress++
		}
	}
}

// phase1RatioTest is the phase-1 variant of the ratio test: currently
// infeasible basic variables block only at the bound they violate (at
// which point they become feasible); feasible basics block as usual.
func (s *Solver) phase1RatioTest(enter int, dir float64, w []float64) (t float64, r int, leaveState int8) {
	t = math.Inf(1)
	r = -2
	if rangeLen := s.up[enter] - s.lo[enter]; !math.IsInf(rangeLen, 1) {
		t = rangeLen
		r = -1
	}
	for i := 0; i < s.m; i++ {
		delta := -dir * w[i]
		if math.Abs(delta) < pivotTol {
			continue
		}
		bj := s.basis[i]
		xi := s.xb[i]
		var lim float64
		var st int8
		switch {
		case xi > s.up[bj]+feasTol: // infeasible above
			if delta < 0 { // moving down: blocks when reaching upper bound
				lim = (s.up[bj] - xi) / delta
				st = stUpper
			} else {
				continue // moving further up: no block (cost handles it)
			}
		case xi < s.lo[bj]-feasTol: // infeasible below
			if delta > 0 {
				lim = (s.lo[bj] - xi) / delta
				st = stLower
			} else {
				continue
			}
		default: // feasible: standard blocking
			if delta > 0 {
				if math.IsInf(s.up[bj], 1) {
					continue
				}
				lim = (s.up[bj] - xi) / delta
				st = stUpper
			} else {
				if math.IsInf(s.lo[bj], -1) {
					continue
				}
				lim = (s.lo[bj] - xi) / delta
				st = stLower
			}
		}
		if lim < -1e-12 {
			lim = 0
		}
		if lim < t-1e-12 || (lim < t+1e-12 && r >= 0 && math.Abs(w[i]) > math.Abs(w[r])) {
			t = lim
			r = i
			leaveState = st
		}
	}
	return t, r, leaveState
}
