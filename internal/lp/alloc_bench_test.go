package lp

import (
	"math/rand"
	"testing"
)

// BenchmarkLPResolve measures the warm re-solve path: bounds flip
// between iterations the way branch and bound toggles them, and the
// solver re-solves from the previous basis. Per-iteration simplex
// scratch (alpha rows, ftran/btran work vectors, pricing arrays) is
// what the hotalloc fixes hoist into reusable solver buffers.
func BenchmarkLPResolve(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	p := NewProblem()
	n, m := 30, 20
	for j := 0; j < n; j++ {
		p.AddVar(0, 10, rng.Float64()*2-1)
	}
	for i := 0; i < m; i++ {
		var coefs []Nonzero
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.3 {
				coefs = append(coefs, Nonzero{Col: j, Val: rng.Float64()*4 - 2})
			}
		}
		p.AddRow(LE, 5+rng.Float64()*10, coefs)
	}
	s := NewSolver(p)
	if sol := s.Solve(); sol.Status != Optimal {
		b.Fatalf("cold solve status = %v", sol.Status)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % n
		if i%2 == 0 {
			s.SetBound(j, 0, 1)
		} else {
			s.SetBound(j, 0, 10)
		}
		s.Solve()
	}
}
