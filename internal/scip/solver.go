package scip

import (
	"math"
	"math/rand"
	"sort"
	"strconv"
	"time"

	"repro/internal/lp"
	"repro/internal/num"
	"repro/internal/obs"
)

// Status is the final state of a Solve call.
type Status int8

// Solve outcomes.
const (
	StatusUnknown Status = iota
	StatusOptimal
	StatusInfeasible
	StatusInterrupted
	StatusNodeLimit
	StatusTimeLimit
	StatusGapLimit
)

// String renders the status for result tables and messages.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusInterrupted:
		return "interrupted"
	case StatusNodeLimit:
		return "nodelimit"
	case StatusTimeLimit:
		return "timelimit"
	case StatusGapLimit:
		return "gaplimit"
	}
	return "unknown"
}

// Stats collects solver statistics; UG's status reports and the paper's
// tables are assembled from these.
type Stats struct {
	Nodes        int64
	LPIterations int64
	CutsAdded    int64
	SolsFound    int64
	MaxDepth     int
	RootTime     float64 // seconds spent on the root node
	RootBound    float64
	DeadEnds     int64 // nodes abandoned without proof (should stay 0)
	PropFixings  int64
	Phases       PhaseTimes
}

// PhaseTimes is the wall-clock seconds a solve spent per solver phase —
// the breakdown behind the paper's "where does the time go" analyses.
// Phase times are diagnostics only: the solver writes them but never
// reads them, so recording wall time here cannot perturb deterministic
// replay (the same contract obs.Event.Wall follows).
type PhaseTimes struct {
	Presolve    float64
	LP          float64
	Relax       float64 // relaxators (e.g. the SDP relaxation)
	Separation  float64
	Heuristics  float64
	Propagation float64
}

// Add accumulates q into p.
func (p *PhaseTimes) Add(q PhaseTimes) {
	p.Presolve += q.Presolve
	p.LP += q.LP
	p.Relax += q.Relax
	p.Separation += q.Separation
	p.Heuristics += q.Heuristics
	p.Propagation += q.Propagation
}

// phaseAdd accumulates the wall time since start into *acc; used as
// `defer phaseAdd(&s.Stats.Phases.X, time.Now())` around a phase block.
func phaseAdd(acc *float64, start time.Time) { *acc += time.Since(start).Seconds() }

// Solver is one branch-and-bound solver instance over a presolved Prob.
type Solver struct {
	Prob *Prob
	Set  Settings
	Plug *Plugins

	// Poll, when set, is invoked between nodes; returning false interrupts
	// the solve (used by the UG ParaSolver wrapper to service messages).
	Poll func(s *Solver) bool

	// Trace, when set, receives one scip.node event per processed node
	// with the node counter as logical tick. Nil (the default) disables
	// tracing: processNode then pays a single nil-check and no
	// allocations, preserving the deterministic-replay guarantees.
	Trace *obs.Tracer

	lps       *lp.Solver
	baseRows  int
	cutOrigin []int64 // origin node ID per cut row (-1 = globally valid)
	cutKeys   map[string]bool
	cutSort   cutSorter
	cutBuf    []byte

	tree       *tree
	nextNodeID int64
	incumbent  *Sol
	curBound   float64 // bound of node being processed (for GlobalLB)

	localLo, localUp []float64

	// Per-node scratch, reused across processNode calls so the steady
	// state allocates nothing (see TestProcessNodeZeroAlloc).
	pathScratch []*Node
	decScratch  []Decision
	ancScratch  map[int64]bool
	nodeCtx     Ctx
	freeNodes   []*Node // recycled Node pool (see finishNode)

	Stats   Stats
	start   time.Time
	rng     *rand.Rand
	jitter  []float64
	pcUp    []float64 // pseudocost sums per variable
	pcDown  []float64
	pcUpN   []float64
	pcDownN []float64
}

// NewSolver builds a solver over prob with the given settings/plugins.
// prob must already be presolved (see ProblemDef.Presolve); the solver
// never rebuilds the model.
func NewSolver(prob *Prob, set Settings, plug *Plugins) *Solver {
	set.apply()
	if plug == nil {
		plug = &Plugins{}
	}
	s := &Solver{
		Prob: prob,
		Set:  set,
		Plug: plug,
		tree: newTree(set.NodeSel),
		rng:  rand.New(rand.NewSource(set.Seed*2654435761 + 12345)),
	}
	n := len(prob.Vars)
	s.localLo = make([]float64, n)
	s.localUp = make([]float64, n)
	s.jitter = make([]float64, n)
	s.pcUp = make([]float64, n)
	s.pcDown = make([]float64, n)
	s.pcUpN = make([]float64, n)
	s.pcDownN = make([]float64, n)
	if set.PermuteTieBreak {
		for j := range s.jitter {
			s.jitter[j] = s.rng.Float64() * 1e-4
		}
	}
	if set.UseLP {
		lpp := lp.NewProblem()
		for _, v := range prob.Vars {
			lpp.AddVar(v.Lo, v.Up, v.Obj)
		}
		for _, r := range prob.Rows {
			lpp.AddRow(r.Sense, r.RHS, r.Coefs)
		}
		s.lps = lp.NewSolver(lpp)
		if set.MaxLPIterations > 0 {
			s.lps.MaxIters = set.MaxLPIterations
		}
		s.baseRows = len(prob.Rows)
	}
	return s
}

// addCut appends a cutting-plane row; origin < 0 marks it globally
// valid. Duplicate global cuts are skipped (returns false). Row
// installation allocates by design (the LP grows); the dedup
// fingerprint itself runs out of reused buffers.
//
//ugo:coldpath one row install per accepted cut, bounded by the cut budget
func (s *Solver) addCut(sense lp.Sense, rhs float64, coefs []lp.Nonzero, origin int64) bool {
	if !s.Set.UseLP {
		return false
	}
	if origin < 0 {
		key := s.cutKey(sense, rhs, coefs)
		if s.cutKeys == nil {
			s.cutKeys = map[string]bool{}
		}
		if s.cutKeys[string(key)] { // no-copy map probe
			return false
		}
		s.cutKeys[string(key)] = true
	}
	s.lps.AddRow(sense, rhs, coefs)
	s.cutOrigin = append(s.cutOrigin, origin)
	s.Stats.CutsAdded++
	return true
}

// cutSorter orders coefficient indices by column; a concrete
// sort.Interface kept on the solver so fingerprinting does not rebuild
// closures per cut.
type cutSorter struct {
	idx   []int
	coefs []lp.Nonzero
}

func (c *cutSorter) Len() int           { return len(c.idx) }
func (c *cutSorter) Less(a, b int) bool { return c.coefs[c.idx[a]].Col < c.coefs[c.idx[b]].Col }
func (c *cutSorter) Swap(a, b int)      { c.idx[a], c.idx[b] = c.idx[b], c.idx[a] }

// cutKey builds a canonical fingerprint of a row for deduplication.
// The returned bytes alias s.cutBuf and are valid until the next call.
func (s *Solver) cutKey(sense lp.Sense, rhs float64, coefs []lp.Nonzero) []byte {
	if cap(s.cutSort.idx) < len(coefs) {
		s.cutSort.idx = make([]int, len(coefs))
	}
	s.cutSort.idx = s.cutSort.idx[:len(coefs)]
	for i := range s.cutSort.idx {
		s.cutSort.idx[i] = i
	}
	s.cutSort.coefs = coefs
	sort.Sort(&s.cutSort)
	b := s.cutBuf[:0]
	b = strconv.AppendInt(b, int64(sense), 10)
	b = append(b, '|')
	b = strconv.AppendFloat(b, rhs, 'g', 9, 64)
	for _, i := range s.cutSort.idx {
		b = append(b, ';')
		b = strconv.AppendInt(b, int64(coefs[i].Col), 10)
		b = append(b, ':')
		b = strconv.AppendFloat(b, coefs[i].Val, 'g', 9, 64)
	}
	s.cutBuf = b
	s.cutSort.coefs = nil
	return b
}

// cutoffValue returns the pruning threshold derived from the incumbent.
func (s *Solver) cutoffValue() float64 {
	if s.incumbent == nil {
		return Infinity
	}
	if s.Prob.IntegralObj {
		return s.incumbent.Obj - 1 + 1e-6
	}
	return s.incumbent.Obj - 1e-9*(1+math.Abs(s.incumbent.Obj))
}

// Incumbent returns the best solution found so far (model space).
func (s *Solver) Incumbent() *Sol { return s.incumbent }

// BestBound returns the global dual (lower) bound.
func (s *Solver) BestBound() float64 {
	lb := s.tree.best()
	if s.curBound < lb {
		lb = s.curBound
	}
	if lb == Infinity {
		// Tree empty: the incumbent (if any) is proven optimal.
		if s.incumbent != nil {
			return s.incumbent.Obj
		}
	}
	return lb
}

// NumOpen returns the number of open nodes.
func (s *Solver) NumOpen() int { return s.tree.size() }

// Gap returns the relative primal-dual gap (Inf when unbounded above).
func (s *Solver) Gap() float64 {
	if s.incumbent == nil {
		return Infinity
	}
	lb := s.BestBound()
	if math.IsInf(lb, -1) {
		return Infinity
	}
	ub := s.incumbent.Obj
	if num.IsZero(ub, num.ZeroTol) {
		return math.Abs(ub - lb)
	}
	return (ub - lb) / math.Abs(ub)
}

// InjectSolution installs an externally found solution (from a sibling
// ParaSolver) after verifying feasibility. Returns true when installed.
func (s *Solver) InjectSolution(sol *Sol) bool {
	if sol == nil {
		return false
	}
	return s.submitSolution(sol.X, true)
}

// verifyGlobal checks integrality, linear rows and constraint handlers on
// the global (presolved) problem.
func (s *Solver) verifyGlobal(x []float64) bool {
	if len(x) != len(s.Prob.Vars) {
		return false
	}
	for j, v := range s.Prob.Vars {
		if num.Lt(x[j], v.Lo, num.FeasTol) || num.Gt(x[j], v.Up, num.FeasTol) {
			return false
		}
		if v.Type != Continuous && !num.Integral(x[j], num.FeasTol) {
			return false
		}
	}
	for _, r := range s.Prob.Rows {
		var ax float64
		for _, nz := range r.Coefs {
			ax += nz.Val * x[nz.Col]
		}
		switch r.Sense {
		case lp.LE:
			if num.Gt(ax, r.RHS, num.FeasTol) {
				return false
			}
		case lp.GE:
			if num.Lt(ax, r.RHS, num.FeasTol) {
				return false
			}
		case lp.EQ:
			if !num.Eq(ax, r.RHS, num.FeasTol) {
				return false
			}
		}
	}
	if len(s.Plug.Conshdlrs) > 0 {
		gctx := &Ctx{S: s, Data: s.Prob.Data, rng: s.rng,
			Node: &Node{Bound: math.Inf(-1)}}
		for _, h := range s.Plug.Conshdlrs {
			if !h.Check(gctx, x) {
				return false
			}
		}
	}
	return true
}

// submitSolution validates and possibly installs a new incumbent.
//
//ugo:coldpath runs once per improving incumbent, off the steady-state path
func (s *Solver) submitSolution(x []float64, verify bool) bool {
	var obj float64
	for j := range s.Prob.Vars {
		obj += s.Prob.Vars[j].Obj * x[j]
	}
	if s.incumbent != nil && obj >= s.cutoffValue() {
		return false
	}
	if verify && !s.verifyGlobal(x) {
		return false
	}
	xr := append([]float64(nil), x...)
	// Round integral variables exactly.
	for j, v := range s.Prob.Vars {
		if v.Type != Continuous {
			xr[j] = math.Round(xr[j])
		}
	}
	s.incumbent = &Sol{Obj: obj, X: xr}
	s.Stats.SolsFound++
	for _, m := range s.tree.prune(s.cutoffValue()) {
		s.finishNode(m)
	}
	return true
}

// effectiveBoundsInto computes the bounds at node n by walking the
// root path, writing every entry of lo/up (len == number of vars).
func (s *Solver) effectiveBoundsInto(n *Node, lo, up []float64) {
	for j := range s.Prob.Vars {
		lo[j] = s.Prob.Vars[j].Lo
		up[j] = s.Prob.Vars[j].Up
	}
	s.pathScratch = n.pathInto(s.pathScratch)
	for _, nd := range s.pathScratch {
		for _, bc := range nd.BoundChgs {
			if bc.Lo > lo[bc.Var] {
				lo[bc.Var] = bc.Lo
			}
			if bc.Up < up[bc.Var] {
				up[bc.Var] = bc.Up
			}
		}
	}
}

// effectiveBounds is the allocating variant of effectiveBoundsInto,
// used off the solve loop (subproblem encoding) where the caller keeps
// the slices.
func (s *Solver) effectiveBounds(n *Node) (lo, up []float64) {
	nv := len(s.Prob.Vars)
	lo = make([]float64, nv)
	up = make([]float64, nv)
	s.effectiveBoundsInto(n, lo, up)
	return lo, up
}

// activate prepares LP bounds, local cut rows and node data for n. The
// returned context points at solver-owned scratch reused across nodes.
func (s *Solver) activate(n *Node) *Ctx {
	s.effectiveBoundsInto(n, s.localLo, s.localUp)
	if s.Set.UseLP {
		for j := range s.localLo {
			s.lps.SetBound(j, s.localLo[j], s.localUp[j])
		}
		// Toggle local cuts by ancestry.
		if len(s.cutOrigin) > 0 {
			if s.ancScratch == nil {
				s.ancScratch = make(map[int64]bool, n.Depth+1)
			}
			clear(s.ancScratch)
			for cur := n; cur != nil; cur = cur.Parent {
				s.ancScratch[cur.ID] = true
			}
			for k, origin := range s.cutOrigin {
				s.lps.SetRowEnabled(s.baseRows+k, origin < 0 || s.ancScratch[origin])
			}
		}
	}
	ctx := &s.nodeCtx
	*ctx = Ctx{S: s, Node: n, rng: s.rng, children: s.nodeCtx.children[:0]}
	if s.Plug.Def != nil {
		ctx.Data = s.Plug.Def.CloneData(s.Prob.Data)
		s.decScratch = s.appendDecisions(s.decScratch[:0], n)
		for _, d := range s.decScratch {
			s.Plug.Def.ApplyDecision(ctx.Data, d)
		}
	} else {
		ctx.Data = s.Prob.Data
	}
	return ctx
}

// appendDecisions appends the root-path branching decisions of n to buf.
func (s *Solver) appendDecisions(buf []Decision, n *Node) []Decision {
	s.pathScratch = n.pathInto(s.pathScratch)
	for _, nd := range s.pathScratch {
		buf = append(buf, nd.Decisions...)
	}
	return buf
}

// getNode returns a zeroed node from the pool, or a fresh one when the
// pool is empty.
func (s *Solver) getNode() *Node {
	if k := len(s.freeNodes); k > 0 {
		n := s.freeNodes[k-1]
		s.freeNodes[k-1] = nil
		s.freeNodes = s.freeNodes[:k-1]
		return n
	}
	//lint:ignore hotalloc pool miss: grows the node pool once per open-node high-water mark
	return &Node{}
}

// releaseNode returns n to the pool. External slices (plugin-owned
// bound changes and decisions) are dropped, never reused.
func (s *Solver) releaseNode(n *Node) {
	n.ID = 0
	n.Depth = 0
	n.Bound = 0
	n.Parent = nil
	n.BoundChgs = nil
	n.Decisions = nil
	n.kids = 0
	n.done = false
	s.freeNodes = append(s.freeNodes, n)
}

// finishNode marks n fully explored (processed, pruned, or handed off)
// and recycles every node on its root path whose subtree is complete.
func (s *Solver) finishNode(n *Node) {
	n.done = true
	for cur := n; cur != nil && cur.done && cur.kids == 0; {
		p := cur.Parent
		s.releaseNode(cur)
		cur = p
		if p != nil {
			p.kids--
		}
	}
}

// newChildNode builds a child of parent from a plugin Child, reusing a
// pooled node.
func (s *Solver) newChildNode(parent *Node, ch Child) *Node {
	s.nextNodeID++
	n := s.getNode()
	n.ID = s.nextNodeID
	n.Depth = parent.Depth + 1
	n.Bound = parent.Bound
	n.Parent = parent
	n.BoundChgs = ch.Bounds
	n.Decisions = ch.Decisions
	parent.kids++
	return n
}

// newChildBound is newChildNode for the builtin brancher's single
// bound change, stored in the node's inline buffer: a steady-state
// branch allocates nothing.
func (s *Solver) newChildBound(parent *Node, bc BoundChg) *Node {
	s.nextNodeID++
	n := s.getNode()
	n.ID = s.nextNodeID
	n.Depth = parent.Depth + 1
	n.Bound = parent.Bound
	n.Parent = parent
	n.ownChg[0] = bc
	n.BoundChgs = n.ownChg[:1]
	parent.kids++
	return n
}

// Solve runs branch and bound from the root of the presolved problem.
func (s *Solver) Solve() Status {
	root := s.getNode()
	root.Bound = math.Inf(-1)
	s.nextNodeID = 0
	s.tree.push(root)
	return s.loop()
}

// SolveSubprob runs branch and bound on a received UG subproblem: its
// bound changes and decisions seed the root node (the ParaSolver path).
func (s *Solver) SolveSubprob(sub *Subprob) Status {
	root := s.getNode()
	root.Bound = sub.Bound
	root.Depth = sub.Depth
	for _, bc := range sub.Bounds {
		root.BoundChgs = append(root.BoundChgs, bc)
	}
	root.Decisions = append(root.Decisions, sub.Decisions...)
	s.nextNodeID = 0
	s.tree.push(root)
	return s.loop()
}

// loop is the solve driver: pop, bound-check, process, repeat.
//
//ugo:hotpath driver
func (s *Solver) loop() Status {
	s.start = time.Now()
	for {
		if s.Poll != nil && !s.Poll(s) {
			s.curBound = Infinity
			return StatusInterrupted
		}
		if s.Set.NodeLimit > 0 && s.Stats.Nodes >= s.Set.NodeLimit {
			s.curBound = Infinity
			return StatusNodeLimit
		}
		if s.Set.TimeLimit > 0 && time.Since(s.start).Seconds() > s.Set.TimeLimit {
			s.curBound = Infinity
			return StatusTimeLimit
		}
		if s.Set.GapLimit > 0 && s.Gap() <= s.Set.GapLimit {
			s.curBound = Infinity
			return StatusGapLimit
		}
		n := s.tree.pop()
		if n == nil {
			s.curBound = Infinity
			if s.incumbent != nil {
				return StatusOptimal
			}
			return StatusInfeasible
		}
		if n.Bound >= s.cutoffValue() {
			s.finishNode(n)
			continue
		}
		s.processNode(n)
		s.finishNode(n)
		s.curBound = Infinity
	}
}

// processNode runs propagation, relaxation, enforcement, heuristics and
// branching for one node.
//
//ugo:hotpath
func (s *Solver) processNode(n *Node) {
	isRoot := s.Stats.Nodes == 0
	var rootStart time.Time
	if isRoot {
		rootStart = time.Now()
	}
	s.Stats.Nodes++
	if n.Depth > s.Stats.MaxDepth {
		s.Stats.MaxDepth = n.Depth
	}
	s.curBound = n.Bound
	if s.Trace.Enabled() {
		primal := Infinity
		if s.incumbent != nil {
			primal = s.incumbent.Obj
		}
		s.Trace.SetTick(s.Stats.Nodes)
		s.Trace.Emit(obs.Event{Kind: obs.KindScipNode, Sub: n.ID, Open: s.tree.size(),
			Nodes: s.Stats.Nodes, Dual: n.Bound, Primal: primal})
	}
	ctx := s.activate(n)

	finishRoot := func() {
		if isRoot {
			s.Stats.RootTime = time.Since(rootStart).Seconds()
			s.Stats.RootBound = n.Bound
		}
	}

	// Domain propagation rounds.
	if len(s.Plug.Propagators) > 0 {
		infeasible := func() bool {
			defer phaseAdd(&s.Stats.Phases.Propagation, time.Now())
			for round := 0; round < s.Set.PropRounds; round++ {
				changed := false
				for _, prop := range s.Plug.Propagators {
					res := prop.Propagate(ctx)
					if ctx.infeasible {
						return true
					}
					if res == Reduced {
						changed = true
						s.Stats.PropFixings++
					}
				}
				if !changed {
					break
				}
			}
			return false
		}()
		if infeasible {
			finishRoot()
			return
		}
	}

	// Relaxation + separation + enforcement loop.
	var cand []float64
	candRelaxOptimal := false
	enforceRounds := 0
	maxEnforce := 200 + 20*len(s.Prob.Vars)
	for {
		cand = nil
		candRelaxOptimal = false
		ctx.LPSol = nil
		if s.Set.UseLP {
			st := s.solveLPWithSeparation(ctx, n)
			switch st {
			case lpInfeasible:
				finishRoot()
				return
			case lpCutoff:
				finishRoot()
				return
			case lpOK:
				cand = ctx.LPSol.X
				candRelaxOptimal = true
			case lpLimit:
				if ctx.LPSol != nil {
					cand = ctx.LPSol.X
				}
			}
		}
		// Relaxators (e.g. the SDP relaxation) may improve the bound and
		// produce their own candidate.
		relaxCut := false
		if len(s.Plug.Relaxators) > 0 {
			cutoff := func() bool {
				defer phaseAdd(&s.Stats.Phases.Relax, time.Now())
				for _, rel := range s.Plug.Relaxators {
					rb, x, res := rel.Relax(ctx)
					if res == Cutoff || ctx.infeasible {
						return true
					}
					if rb > n.Bound {
						n.Bound = rb
					}
					if x != nil {
						ctx.RelaxX = x
						cand = x
						candRelaxOptimal = true
					}
					if res == Separated {
						relaxCut = true
					}
				}
				return false
			}()
			if cutoff {
				finishRoot()
				return
			}
		}
		if n.Bound >= s.cutoffValue() {
			finishRoot()
			return
		}
		if relaxCut && enforceRounds < maxEnforce {
			enforceRounds++
			continue
		}
		if cand == nil || !ctx.IsIntegral(cand) {
			break // go branch
		}
		// Integral candidate: constraint handlers decide.
		violated := Conshdlr(nil)
		for _, h := range s.Plug.Conshdlrs {
			if !h.Check(ctx, cand) {
				violated = h
				break
			}
		}
		if violated == nil {
			if candRelaxOptimal {
				// Relaxation-optimal and feasible: node solved.
				s.submitSolution(cand, false)
				finishRoot()
				return
			}
			s.submitSolution(cand, true)
			break
		}
		res := violated.Enforce(ctx, cand)
		if ctx.infeasible || res == Cutoff {
			finishRoot()
			return
		}
		switch res {
		case Separated:
			enforceRounds++
			if enforceRounds >= maxEnforce {
				s.Stats.DeadEnds++
				finishRoot()
				return
			}
			continue
		case Branched:
			for _, ch := range ctx.children {
				s.tree.push(s.newChildNode(n, ch))
			}
			finishRoot()
			return
		default:
			// Handler could not make progress; fall through to branching.
		}
		break
	}
	finishRoot()

	// Heuristics.
	runHeur := func() {
		defer phaseAdd(&s.Stats.Phases.Heuristics, time.Now())
		for _, h := range s.Plug.Heuristics {
			h.Search(ctx)
		}
	}
	if s.Set.HeurFreq > 0 && (isRoot || s.Stats.Nodes%int64(s.Set.HeurFreq) == 0) {
		runHeur()
	} else if isRoot {
		runHeur()
	}
	if n.Bound >= s.cutoffValue() {
		return
	}

	// Branching.
	for _, br := range s.Plug.Branchers {
		children, res := br.Branch(ctx)
		if ctx.infeasible {
			return
		}
		if res == Branched || len(children) > 0 {
			for _, ch := range children {
				s.tree.push(s.newChildNode(n, ch))
			}
			for _, ch := range ctx.children {
				s.tree.push(s.newChildNode(n, ch))
			}
			return
		}
	}
	if len(ctx.children) > 0 {
		for _, ch := range ctx.children {
			s.tree.push(s.newChildNode(n, ch))
		}
		return
	}
	if s.branchBuiltin(ctx, n, cand) {
		return
	}
	// Nothing to branch on and the node was not proven: record dead end
	// (tests assert this never fires on the supported problem classes).
	s.Stats.DeadEnds++
}

type lpStatus int8

const (
	lpOK lpStatus = iota
	lpInfeasible
	lpCutoff
	lpLimit
)

// solveLPWithSeparation solves the node LP and runs the cutting-plane
// loop; n.Bound is raised to the final LP value.
func (s *Solver) solveLPWithSeparation(ctx *Ctx, n *Node) lpStatus {
	maxRounds := s.Set.SepaRounds
	if n.Depth > 0 {
		maxRounds = s.Set.SepaRoundsLocal
		if maxRounds <= 0 {
			maxRounds = 1
		}
	}
	for round := 0; ; round++ {
		lpStart := time.Now()
		sol := s.lps.Solve()
		phaseAdd(&s.Stats.Phases.LP, lpStart)
		s.Stats.LPIterations += int64(sol.Iters)
		switch sol.Status {
		case lp.Infeasible:
			return lpInfeasible
		case lp.Unbounded:
			// Relaxation unbounded: no usable LP information.
			return lpLimit
		case lp.IterLimit:
			ctx.LPSol = sol
			return lpLimit
		}
		ctx.LPSol = sol
		if sol.Obj > n.Bound {
			n.Bound = sol.Obj
		}
		if n.Bound >= s.cutoffValue() {
			return lpCutoff
		}
		if round >= maxRounds {
			return lpOK
		}
		before := ctx.ncuts
		infeasible := func() bool {
			defer phaseAdd(&s.Stats.Phases.Separation, time.Now())
			for _, sep := range s.Plug.Separators {
				sep.Separate(ctx)
				if ctx.infeasible {
					return true
				}
			}
			return false
		}()
		if infeasible {
			return lpInfeasible
		}
		if ctx.ncuts == before {
			return lpOK
		}
	}
}

// branchBuiltin branches on a fractional integer variable (most
// fractional, pseudocost, or random per settings); if the candidate is
// integral or absent it bisects the widest unfixed integer domain.
// Returns false when no branching is possible.
func (s *Solver) branchBuiltin(ctx *Ctx, n *Node, cand []float64) bool {
	bestJ := -1
	var bestScore float64
	if cand != nil {
		for j, v := range s.Prob.Vars {
			if v.Type == Continuous {
				continue
			}
			f := cand[j] - math.Floor(cand[j])
			frac := math.Min(f, 1-f)
			if frac < num.FeasTol {
				continue
			}
			var score float64
			switch s.Set.Branching {
			case BranchPseudoCost:
				up := s.pseudo(j, true)
				down := s.pseudo(j, false)
				score = (1-f)*down + f*up + 0.1*frac
			case BranchRandom:
				score = s.rng.Float64()
			default:
				score = frac
			}
			score += s.jitter[j]
			if score > bestScore {
				bestScore = score
				bestJ = j
			}
		}
	}
	if bestJ >= 0 {
		v := cand[bestJ]
		floor := math.Floor(v)
		down := BoundChg{Var: bestJ, Lo: s.localLo[bestJ], Up: floor}
		up := BoundChg{Var: bestJ, Lo: floor + 1, Up: s.localUp[bestJ]}
		// Push the more promising child last so DFS/plunge pops it first.
		if v-floor > 0.5 {
			s.tree.push(s.newChildBound(n, down))
			s.tree.push(s.newChildBound(n, up))
		} else {
			s.tree.push(s.newChildBound(n, up))
			s.tree.push(s.newChildBound(n, down))
		}
		s.recordPseudo(bestJ, v)
		return true
	}
	// Fallback: bisect the widest unfixed integral domain.
	widest, width := -1, 0.999
	for j, v := range s.Prob.Vars {
		if v.Type == Continuous {
			continue
		}
		if w := s.localUp[j] - s.localLo[j]; w > width {
			width = w
			widest = j
		}
	}
	if widest < 0 {
		return false
	}
	mid := math.Floor((s.localLo[widest] + s.localUp[widest]) / 2)
	s.tree.push(s.newChildBound(n, BoundChg{Var: widest, Lo: s.localLo[widest], Up: mid}))
	s.tree.push(s.newChildBound(n, BoundChg{Var: widest, Lo: mid + 1, Up: s.localUp[widest]}))
	return true
}

// pseudo returns the average objective degradation per unit for branching
// j up/down, with an objective-based prior.
func (s *Solver) pseudo(j int, up bool) float64 {
	prior := math.Abs(s.Prob.Vars[j].Obj) + 1e-3
	if up {
		if num.ExactZero(s.pcUpN[j]) { // no observations yet
			return prior
		}
		return s.pcUp[j] / s.pcUpN[j]
	}
	if num.ExactZero(s.pcDownN[j]) { // no observations yet
		return prior
	}
	return s.pcDown[j] / s.pcDownN[j]
}

// recordPseudo updates pseudocosts with the fractionality at branch time
// (a light-weight stand-in for SCIP's LP-gain bookkeeping).
func (s *Solver) recordPseudo(j int, v float64) {
	f := v - math.Floor(v)
	s.pcDown[j] += f
	s.pcDownN[j]++
	s.pcUp[j] += 1 - f
	s.pcUpN[j]++
}

// Elapsed returns the wall-clock time since Solve started.
func (s *Solver) Elapsed() float64 { return time.Since(s.start).Seconds() }
