package scip

import (
	"math"
	"testing"
)

// BenchmarkProcessNode measures the per-node allocation cost of the
// pure node machinery — tree pop, activate/effectiveBounds, builtin
// branching, child creation — with the LP disabled, i.e. exactly the
// steady-state path the //ugo:hotpath annotations mark. The hotalloc
// fixes drive this to zero allocations per node (see
// TestProcessNodeZeroAlloc).
func BenchmarkProcessNode(b *testing.B) {
	values := []float64{10, 13, 7, 8, 2, 9, 4, 6}
	weights := []float64{5, 6, 3, 4, 1, 5, 2, 3}
	p := knapsackProb(values, weights, 14)
	set := DefaultSettings()
	set.UseLP = false
	set.NodeSel = DepthFirst
	s := NewSolver(p, set, nil)

	// A short root path so effectiveBounds walks real ancestry.
	root := &Node{ID: 0, Bound: math.Inf(-1)}
	mid := &Node{ID: 1, Depth: 1, Bound: math.Inf(-1), Parent: root,
		BoundChgs: []BoundChg{{Var: 0, Lo: 1, Up: 1}}}
	leaf := &Node{ID: 2, Depth: 2, Bound: math.Inf(-1), Parent: mid,
		BoundChgs: []BoundChg{{Var: 1, Lo: 0, Up: 0}}}
	s.nextNodeID = 2

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.tree.push(leaf)
		n := s.tree.pop()
		s.processNode(n)
		for c := s.tree.pop(); c != nil; c = s.tree.pop() {
			s.finishNode(c) // recycle, as the solve loop would
		}
	}
}

// TestProcessNodeZeroAlloc pins the nil-Trace steady state promised in
// the Solver.Trace doc comment: with tracing off, processing a node —
// pop, activate, builtin branching, child creation, recycle — performs
// zero heap allocations once the node pool and tree are warm.
func TestProcessNodeZeroAlloc(t *testing.T) {
	values := []float64{10, 13, 7, 8, 2, 9, 4, 6}
	weights := []float64{5, 6, 3, 4, 1, 5, 2, 3}
	p := knapsackProb(values, weights, 14)
	set := DefaultSettings()
	set.UseLP = false
	set.NodeSel = DepthFirst
	s := NewSolver(p, set, nil)

	root := &Node{ID: 0, Bound: math.Inf(-1)}
	mid := &Node{ID: 1, Depth: 1, Bound: math.Inf(-1), Parent: root,
		BoundChgs: []BoundChg{{Var: 0, Lo: 1, Up: 1}}}
	leaf := &Node{ID: 2, Depth: 2, Bound: math.Inf(-1), Parent: mid,
		BoundChgs: []BoundChg{{Var: 1, Lo: 0, Up: 0}}}
	s.nextNodeID = 2

	run := func() {
		s.tree.push(leaf)
		n := s.tree.pop()
		s.processNode(n)
		for c := s.tree.pop(); c != nil; c = s.tree.pop() {
			s.finishNode(c)
		}
	}
	for i := 0; i < 8; i++ {
		run() // warm the node pool, path scratch and tree capacity
	}
	if allocs := testing.AllocsPerRun(200, run); allocs > 0 {
		t.Fatalf("processNode allocates %v per node on the nil-Trace path, want 0", allocs)
	}
}

// BenchmarkSolveKnapsack measures a full LP-based branch-and-bound
// solve, so LP scratch, separation buffers and node churn all show up.
func BenchmarkSolveKnapsack(b *testing.B) {
	values := []float64{10, 13, 7, 8, 2, 9, 4, 6, 11, 3}
	weights := []float64{5, 6, 3, 4, 1, 5, 2, 3, 6, 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := knapsackProb(values, weights, 17)
		s := NewSolver(p, DefaultSettings(), nil)
		if st := s.Solve(); st != StatusOptimal {
			b.Fatalf("status = %v", st)
		}
	}
}

// BenchmarkNodeHeap measures best-bound open-node churn: one op pushes
// a block of nodes through the priority queue and drains it again.
func BenchmarkNodeHeap(b *testing.B) {
	nodes := make([]*Node, 64)
	for i := range nodes {
		nodes[i] = &Node{ID: int64(i), Bound: float64((i * 7919) % 101)}
	}
	tr := newTree(BestBound)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, n := range nodes {
			tr.push(n)
		}
		for tr.pop() != nil {
		}
	}
}
