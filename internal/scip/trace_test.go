package scip

import (
	"testing"

	"repro/internal/obs"
)

// tracedEventSolve runs one full solve with an attached obs tracer and
// returns the recorded events.
func tracedEventSolve(t *testing.T, values, weights []float64, capacity float64, seed int64) []obs.Event {
	t.Helper()
	set := DefaultSettings()
	set.Seed = seed
	sink := &obs.MemSink{}
	s := NewSolver(knapsackProb(values, weights, capacity), set, nil)
	s.Trace = obs.NewTracer(sink)
	if st := s.Solve(); st != StatusOptimal {
		t.Fatalf("status = %v", st)
	}
	return sink.Events()
}

// TestTraceDeterminism is the observability side of the deterministic
// replay contract: two identical sequential solves must emit identical
// event streams except for the wall-clock payload field, which is
// explicitly excluded from the determinism guarantee (it is recorded but
// never consulted). The comparison goes through the JSONL encoder so it
// also pins the byte-level encoding.
func TestTraceDeterminism(t *testing.T) {
	values := []float64{17, 4, 29, 11, 8, 23, 14, 6, 19, 3, 26, 9}
	weights := []float64{5, 2, 9, 4, 3, 8, 6, 2, 7, 1, 10, 4}
	capacity := 30.0

	ev1 := tracedEventSolve(t, values, weights, capacity, 42)
	ev2 := tracedEventSolve(t, values, weights, capacity, 42)

	if len(ev1) == 0 {
		t.Fatal("trace is empty: solver emitted no node events")
	}
	if len(ev1) != len(ev2) {
		t.Fatalf("trace lengths differ: %d vs %d", len(ev1), len(ev2))
	}
	for i := range ev1 {
		a, b := ev1[i], ev2[i]
		a.Wall, b.Wall = 0, 0 // wall time is payload only, excluded from the contract
		la := string(a.AppendJSON(nil))
		lb := string(b.AppendJSON(nil))
		if la != lb {
			t.Fatalf("traces diverge at event %d:\n  run1: %s\n  run2: %s", i, la, lb)
		}
	}
}

// TestTraceWellFormed checks that a solver-produced trace satisfies the
// stream invariants ugtrace -validate enforces: dense seq numbers,
// non-decreasing ticks, known kinds.
func TestTraceWellFormed(t *testing.T) {
	values := []float64{17, 4, 29, 11, 8, 23, 14, 6, 19, 3, 26, 9}
	weights := []float64{5, 2, 9, 4, 3, 8, 6, 2, 7, 1, 10, 4}
	ev := tracedEventSolve(t, values, weights, 30.0, 7)
	if err := obs.ValidateTrace(ev); err != nil {
		t.Fatalf("solver trace fails validation: %v", err)
	}
	for i, e := range ev {
		if e.Kind != obs.KindScipNode {
			t.Fatalf("event %d: unexpected kind %q", i, e.Kind)
		}
		if e.Nodes != int64(i+1) {
			t.Fatalf("event %d: node counter %d, want %d", i, e.Nodes, i+1)
		}
		if e.Tick != e.Nodes {
			t.Fatalf("event %d: tick %d != node counter %d", i, e.Tick, e.Nodes)
		}
	}
}
