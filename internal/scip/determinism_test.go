package scip

import (
	"fmt"
	"math/rand"
	"testing"
)

// traceProp is a recording propagator: it sees every node the solver
// processes (propagation runs before bounding and branching) and logs
// the node identity, depth, dual bound, and the branching bound changes
// that created it. Two runs of a deterministic solver must produce
// byte-identical traces.
type traceProp struct {
	events []string
}

func (tp *traceProp) Name() string { return "trace" }

func (tp *traceProp) Propagate(ctx *Ctx) Result {
	n := ctx.Node
	ev := fmt.Sprintf("node=%d depth=%d bound=%.17g", n.ID, n.Depth, n.Bound)
	for _, bc := range n.BoundChgs {
		ev += fmt.Sprintf(" chg(var=%d lo=%.17g up=%.17g)", bc.Var, bc.Lo, bc.Up)
	}
	tp.events = append(tp.events, ev)
	return DidNothing
}

// tracedSolve runs one full solve over the given instance and returns
// the solver plus its recorded node trace.
func tracedSolve(t *testing.T, values, weights []float64, capacity float64, seed int64) (*Solver, []string) {
	t.Helper()
	set := DefaultSettings()
	set.Seed = seed
	tp := &traceProp{}
	s := NewSolver(knapsackProb(values, weights, capacity), set, &Plugins{
		Propagators: []Propagator{tp},
	})
	if st := s.Solve(); st != StatusOptimal {
		t.Fatalf("status = %v", st)
	}
	return s, tp.events
}

// TestDeterministicReplay is the regression guard behind the mapdet
// analyzer: running the sequential solver twice on the same seed
// instance must reproduce the node count, the full branching sequence,
// and the final bounds exactly. This is the property UG's deterministic
// execution mode builds on — if the sequential core already diverges
// run-to-run (e.g. through map-iteration order), no coordination
// protocol above it can restore replayability.
func TestDeterministicReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		n := 10 + rng.Intn(6)
		values := make([]float64, n)
		weights := make([]float64, n)
		var totW float64
		for i := 0; i < n; i++ {
			values[i] = float64(1 + rng.Intn(40))
			weights[i] = float64(1 + rng.Intn(12))
			totW += weights[i]
		}
		capacity := totW / 2
		seed := int64(trial)

		s1, trace1 := tracedSolve(t, values, weights, capacity, seed)
		s2, trace2 := tracedSolve(t, values, weights, capacity, seed)

		if s1.Stats.Nodes != s2.Stats.Nodes {
			t.Fatalf("trial %d: node counts differ: %d vs %d", trial, s1.Stats.Nodes, s2.Stats.Nodes)
		}
		if s1.Incumbent() == nil || s2.Incumbent() == nil {
			t.Fatalf("trial %d: missing incumbent", trial)
		}
		// Exact equality is deliberate: identical runs must produce
		// bit-identical objective and bound values, not merely close ones.
		if s1.Incumbent().Obj != s2.Incumbent().Obj { //lint:ignore floatcmp replay must be bit-identical, tolerance would mask divergence
			t.Fatalf("trial %d: objectives differ: %v vs %v", trial, s1.Incumbent().Obj, s2.Incumbent().Obj)
		}
		if s1.BestBound() != s2.BestBound() { //lint:ignore floatcmp replay must be bit-identical, tolerance would mask divergence
			t.Fatalf("trial %d: final bounds differ: %v vs %v", trial, s1.BestBound(), s2.BestBound())
		}
		if len(trace1) != len(trace2) {
			t.Fatalf("trial %d: trace lengths differ: %d vs %d", trial, len(trace1), len(trace2))
		}
		for i := range trace1 {
			if trace1[i] != trace2[i] {
				t.Fatalf("trial %d: branching sequence diverges at step %d:\n  run1: %s\n  run2: %s",
					trial, i, trace1[i], trace2[i])
			}
		}
	}
}

// TestDeterministicReplayAcrossNodeSelections repeats the replay check
// under every node-selection strategy: plunging and best-bound orderings
// exercise different tree-walk code paths, all of which must replay.
func TestDeterministicReplayAcrossNodeSelections(t *testing.T) {
	values := []float64{17, 4, 29, 11, 8, 23, 14, 6, 19, 3, 26, 9}
	weights := []float64{5, 2, 9, 4, 3, 8, 6, 2, 7, 1, 10, 4}
	capacity := 30.0
	for _, sel := range []NodeSelection{BestBound, DepthFirst, HybridPlunge} {
		run := func() (int64, []string) {
			set := DefaultSettings()
			set.NodeSel = sel
			set.Seed = 42
			tp := &traceProp{}
			s := NewSolver(knapsackProb(values, weights, capacity), set, &Plugins{
				Propagators: []Propagator{tp},
			})
			if st := s.Solve(); st != StatusOptimal {
				t.Fatalf("sel %v: status = %v", sel, st)
			}
			return s.Stats.Nodes, tp.events
		}
		n1, t1 := run()
		n2, t2 := run()
		if n1 != n2 {
			t.Fatalf("sel %v: node counts differ: %d vs %d", sel, n1, n2)
		}
		for i := range t1 {
			if i >= len(t2) || t1[i] != t2[i] {
				t.Fatalf("sel %v: trace diverges at step %d", sel, i)
			}
		}
	}
}
