package scip

import (
	"container/heap"

	"repro/internal/num"
)

// Node is one branch-and-bound node. Bound changes and decisions are
// stored as deltas against the parent; the full subproblem is recovered
// by walking the root path.
type Node struct {
	ID        int64
	Depth     int
	Bound     float64 // dual bound inherited/improved
	Parent    *Node
	BoundChgs []BoundChg
	Decisions []Decision
}

// path returns root→node order of the nodes on the root path.
func (n *Node) path() []*Node {
	var rev []*Node
	for cur := n; cur != nil; cur = cur.Parent {
		rev = append(rev, cur)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// allDecisions collects the branching decisions on the root path.
func (n *Node) allDecisions() []Decision {
	var out []Decision
	for _, nd := range n.path() {
		out = append(out, nd.Decisions...)
	}
	return out
}

// nodeHeap is a best-bound priority queue of open nodes.
type nodeHeap []*Node

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	// Exact tie-break: a tolerance here would break comparator
	// transitivity and corrupt the heap.
	if !num.ExactEq(h[i].Bound, h[j].Bound) {
		return h[i].Bound < h[j].Bound
	}
	return h[i].ID < h[j].ID
}
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*Node)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// tree holds the open nodes under a selection policy.
type tree struct {
	sel   NodeSelection
	heap  nodeHeap
	stack []*Node // for DFS / plunging
}

func newTree(sel NodeSelection) *tree { return &tree{sel: sel} }

func (t *tree) push(n *Node) {
	switch t.sel {
	case DepthFirst:
		t.stack = append(t.stack, n)
	case HybridPlunge:
		// Children go on the plunge stack; exhausted stacks fall back to
		// the best-bound heap (see pop).
		t.stack = append(t.stack, n)
	default:
		heap.Push(&t.heap, n)
	}
}

func (t *tree) pop() *Node {
	switch t.sel {
	case DepthFirst:
		if len(t.stack) == 0 {
			return nil
		}
		n := t.stack[len(t.stack)-1]
		t.stack = t.stack[:len(t.stack)-1]
		return n
	case HybridPlunge:
		if len(t.stack) > 0 {
			n := t.stack[len(t.stack)-1]
			t.stack = t.stack[:len(t.stack)-1]
			// Spill the rest of the stack into the heap so plunges stay
			// shallow bursts rather than full DFS.
			if len(t.stack) > 8 {
				for _, m := range t.stack {
					heap.Push(&t.heap, m)
				}
				t.stack = t.stack[:0]
			}
			return n
		}
		if t.heap.Len() == 0 {
			return nil
		}
		return heap.Pop(&t.heap).(*Node)
	default:
		if t.heap.Len() == 0 {
			return nil
		}
		return heap.Pop(&t.heap).(*Node)
	}
}

func (t *tree) size() int { return t.heap.Len() + len(t.stack) }

// all returns every open node (order unspecified) and empties the tree.
func (t *tree) drain() []*Node {
	out := append([]*Node(nil), t.stack...)
	out = append(out, t.heap...)
	t.stack = nil
	t.heap = nil
	return out
}

// best returns the smallest bound among open nodes (inf when empty).
func (t *tree) best() float64 {
	best := Infinity
	for _, n := range t.stack {
		if n.Bound < best {
			best = n.Bound
		}
	}
	for _, n := range t.heap {
		if n.Bound < best {
			best = n.Bound
		}
	}
	return best
}

// extractBest removes and returns the open node with the smallest dual
// bound — UG's "heavy subproblem" candidate (expected to root a large
// subtree). Returns nil when no open node exists.
func (t *tree) extractBest() *Node {
	bestIdx, from := -1, 0
	best := Infinity
	for i, n := range t.stack {
		if n.Bound < best {
			best = n.Bound
			bestIdx = i
			from = 1
		}
	}
	for i, n := range t.heap {
		if n.Bound < best {
			best = n.Bound
			bestIdx = i
			from = 2
		}
	}
	switch from {
	case 1:
		n := t.stack[bestIdx]
		t.stack = append(t.stack[:bestIdx], t.stack[bestIdx+1:]...)
		return n
	case 2:
		n := t.heap[bestIdx]
		heap.Remove(&t.heap, bestIdx)
		return n
	}
	return nil
}

// prune removes all open nodes with bound ≥ cutoff, returning how many
// were discarded.
func (t *tree) prune(cutoff float64) int {
	removed := 0
	keepS := t.stack[:0]
	for _, n := range t.stack {
		if n.Bound < cutoff {
			keepS = append(keepS, n)
		} else {
			removed++
		}
	}
	t.stack = keepS
	keepH := t.heap[:0]
	for _, n := range t.heap {
		if n.Bound < cutoff {
			keepH = append(keepH, n)
		} else {
			removed++
		}
	}
	t.heap = keepH
	heap.Init(&t.heap)
	return removed
}
