package scip

import (
	"repro/internal/num"
)

// Node is one branch-and-bound node. Bound changes and decisions are
// stored as deltas against the parent; the full subproblem is recovered
// by walking the root path.
type Node struct {
	ID        int64
	Depth     int
	Bound     float64 // dual bound inherited/improved
	Parent    *Node
	BoundChgs []BoundChg
	Decisions []Decision

	// kids counts children whose subtrees are still live; done marks the
	// node itself fully explored. Together they drive the node pool
	// (Solver.finishNode): a node recycles once it is done and kids == 0.
	kids int32
	done bool

	// ownChg is inline storage for the builtin brancher's single bound
	// change, so a steady-state branch needs no per-child slice.
	ownChg [1]BoundChg
}

// pathInto appends the root→node order of the root path into buf[:0]
// and returns it; the result aliases buf's backing array.
func (n *Node) pathInto(buf []*Node) []*Node {
	rev := buf[:0]
	for cur := n; cur != nil; cur = cur.Parent {
		//lint:ignore hotalloc appends into the caller's reused scratch; grows only to the root-path depth high-water mark
		rev = append(rev, cur)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// path returns root→node order of the nodes on the root path.
func (n *Node) path() []*Node { return n.pathInto(nil) }

// allDecisions collects the branching decisions on the root path.
func (n *Node) allDecisions() []Decision {
	var out []Decision
	for _, nd := range n.path() {
		out = append(out, nd.Decisions...)
	}
	return out
}

// nodeHeap is a best-bound priority queue of open nodes. It is a
// concrete binary heap — container/heap's exact sift algorithm
// specialized to *Node — so the pop path pays no interface dispatch.
// The element order it produces is byte-identical to the previous
// container/heap implementation (same comparator, same sift rules),
// which the determinism tests rely on.
type nodeHeap []*Node

func (h nodeHeap) less(i, j int) bool {
	// Exact tie-break: a tolerance here would break comparator
	// transitivity and corrupt the heap.
	if !num.ExactEq(h[i].Bound, h[j].Bound) {
		return h[i].Bound < h[j].Bound
	}
	return h[i].ID < h[j].ID
}

func (h nodeHeap) up(j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || !h.less(j, i) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func (h nodeHeap) down(i0, n int) bool {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 { // j1 < 0 after int overflow
			break
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < n && h.less(j2, j1) {
			j = j2 // = 2*i + 2  // right child
		}
		if !h.less(j, i) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
	return i > i0
}

func (h *nodeHeap) push(n *Node) {
	*h = append(*h, n)
	h.up(len(*h) - 1)
}

func (h *nodeHeap) pop() *Node {
	old := *h
	last := len(old) - 1
	old[0], old[last] = old[last], old[0]
	old.down(0, last)
	it := old[last]
	old[last] = nil // no stale reference into the node pool
	*h = old[:last]
	return it
}

// remove deletes and returns the element at index i (container/heap's
// Remove).
func (h *nodeHeap) remove(i int) *Node {
	old := *h
	n := len(old) - 1
	if n != i {
		old[i], old[n] = old[n], old[i]
		if !old.down(i, n) {
			old.up(i)
		}
	}
	it := old[n]
	old[n] = nil
	*h = old[:n]
	return it
}

// init establishes the heap invariant over arbitrary contents.
func (h nodeHeap) init() {
	n := len(h)
	for i := n/2 - 1; i >= 0; i-- {
		h.down(i, n)
	}
}

// tree holds the open nodes under a selection policy.
type tree struct {
	sel    NodeSelection
	heap   nodeHeap
	stack  []*Node // for DFS / plunging
	pruned []*Node // reusable prune result buffer
}

func newTree(sel NodeSelection) *tree { return &tree{sel: sel} }

func (t *tree) push(n *Node) {
	switch t.sel {
	case DepthFirst:
		t.stack = append(t.stack, n)
	case HybridPlunge:
		// Children go on the plunge stack; exhausted stacks fall back to
		// the best-bound heap (see pop).
		t.stack = append(t.stack, n)
	default:
		t.heap.push(n)
	}
}

func (t *tree) pop() *Node {
	switch t.sel {
	case DepthFirst:
		if len(t.stack) == 0 {
			return nil
		}
		n := t.stack[len(t.stack)-1]
		t.stack[len(t.stack)-1] = nil
		t.stack = t.stack[:len(t.stack)-1]
		return n
	case HybridPlunge:
		if len(t.stack) > 0 {
			n := t.stack[len(t.stack)-1]
			t.stack[len(t.stack)-1] = nil
			t.stack = t.stack[:len(t.stack)-1]
			// Spill the rest of the stack into the heap so plunges stay
			// shallow bursts rather than full DFS.
			if len(t.stack) > 8 {
				for i, m := range t.stack {
					t.heap.push(m)
					t.stack[i] = nil
				}
				t.stack = t.stack[:0]
			}
			return n
		}
		if len(t.heap) == 0 {
			return nil
		}
		return t.heap.pop()
	default:
		if len(t.heap) == 0 {
			return nil
		}
		return t.heap.pop()
	}
}

func (t *tree) size() int { return len(t.heap) + len(t.stack) }

// all returns every open node (order unspecified) and empties the tree.
func (t *tree) drain() []*Node {
	out := append([]*Node(nil), t.stack...)
	out = append(out, t.heap...)
	t.stack = nil
	t.heap = nil
	return out
}

// best returns the smallest bound among open nodes (inf when empty).
func (t *tree) best() float64 {
	best := Infinity
	for _, n := range t.stack {
		if n.Bound < best {
			best = n.Bound
		}
	}
	for _, n := range t.heap {
		if n.Bound < best {
			best = n.Bound
		}
	}
	return best
}

// extractBest removes and returns the open node with the smallest dual
// bound — UG's "heavy subproblem" candidate (expected to root a large
// subtree). Returns nil when no open node exists.
func (t *tree) extractBest() *Node {
	bestIdx, from := -1, 0
	best := Infinity
	for i, n := range t.stack {
		if n.Bound < best {
			best = n.Bound
			bestIdx = i
			from = 1
		}
	}
	for i, n := range t.heap {
		if n.Bound < best {
			best = n.Bound
			bestIdx = i
			from = 2
		}
	}
	switch from {
	case 1:
		n := t.stack[bestIdx]
		t.stack = append(t.stack[:bestIdx], t.stack[bestIdx+1:]...)
		return n
	case 2:
		return t.heap.remove(bestIdx)
	}
	return nil
}

// prune removes all open nodes with bound ≥ cutoff. The removed nodes
// are returned in a buffer reused across calls (valid until the next
// prune) so the caller can recycle them.
func (t *tree) prune(cutoff float64) []*Node {
	t.pruned = t.pruned[:0]
	keepS := t.stack[:0]
	for _, n := range t.stack {
		if n.Bound < cutoff {
			keepS = append(keepS, n)
		} else {
			t.pruned = append(t.pruned, n)
		}
	}
	for i := len(keepS); i < len(t.stack); i++ {
		t.stack[i] = nil
	}
	t.stack = keepS
	keepH := t.heap[:0]
	for _, n := range t.heap {
		if n.Bound < cutoff {
			keepH = append(keepH, n)
		} else {
			t.pruned = append(t.pruned, n)
		}
	}
	for i := len(keepH); i < len(t.heap); i++ {
		t.heap[i] = nil
	}
	t.heap = keepH
	t.heap.init()
	return t.pruned
}
