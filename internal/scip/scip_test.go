package scip

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lp"
)

// knapsackProb builds max Σ v_i x_i s.t. Σ w_i x_i ≤ cap, x binary —
// encoded as minimization of −v.
func knapsackProb(values, weights []float64, capacity float64) *Prob {
	p := &Prob{Name: "knapsack", IntegralObj: true}
	var coefs []lp.Nonzero
	for i := range values {
		j := p.AddVar("x", 0, 1, -values[i], Binary)
		coefs = append(coefs, lp.Nonzero{Col: j, Val: weights[i]})
	}
	p.AddRow("cap", lp.LE, capacity, coefs)
	return p
}

// bruteKnapsack enumerates all subsets.
func bruteKnapsack(values, weights []float64, capacity float64) float64 {
	n := len(values)
	best := 0.0
	for mask := 0; mask < 1<<n; mask++ {
		var v, w float64
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				v += values[i]
				w += weights[i]
			}
		}
		if w <= capacity && v > best {
			best = v
		}
	}
	return best
}

func TestKnapsackSmall(t *testing.T) {
	values := []float64{10, 13, 7, 8, 2}
	weights := []float64{5, 6, 3, 4, 1}
	p := knapsackProb(values, weights, 10)
	s := NewSolver(p, DefaultSettings(), nil)
	st := s.Solve()
	if st != StatusOptimal {
		t.Fatalf("status = %v", st)
	}
	want := bruteKnapsack(values, weights, 10)
	if math.Abs(-s.Incumbent().Obj-want) > 1e-6 {
		t.Fatalf("obj = %v, want %v", -s.Incumbent().Obj, want)
	}
	if s.Stats.DeadEnds != 0 {
		t.Fatalf("dead ends: %d", s.Stats.DeadEnds)
	}
}

func TestRandomKnapsacksAllNodeSelections(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(10)
		values := make([]float64, n)
		weights := make([]float64, n)
		var totW float64
		for i := 0; i < n; i++ {
			values[i] = float64(1 + rng.Intn(20))
			weights[i] = float64(1 + rng.Intn(10))
			totW += weights[i]
		}
		capacity := math.Floor(totW / 2)
		want := bruteKnapsack(values, weights, capacity)
		for _, sel := range []NodeSelection{BestBound, DepthFirst, HybridPlunge} {
			set := DefaultSettings()
			set.NodeSel = sel
			set.Seed = int64(trial)
			p := knapsackProb(values, weights, capacity)
			s := NewSolver(p, set, nil)
			if st := s.Solve(); st != StatusOptimal {
				t.Fatalf("trial %d sel %d: status %v", trial, sel, st)
			}
			if math.Abs(-s.Incumbent().Obj-want) > 1e-6 {
				t.Fatalf("trial %d sel %d: obj %v want %v", trial, sel, -s.Incumbent().Obj, want)
			}
		}
	}
}

func TestBranchRulesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		n := 8
		values := make([]float64, n)
		weights := make([]float64, n)
		for i := 0; i < n; i++ {
			values[i] = float64(1 + rng.Intn(30))
			weights[i] = float64(1 + rng.Intn(12))
		}
		want := bruteKnapsack(values, weights, 30)
		for _, br := range []BranchRule{BranchMostFractional, BranchPseudoCost, BranchRandom} {
			set := DefaultSettings()
			set.Branching = br
			set.Seed = 99
			s := NewSolver(knapsackProb(values, weights, 30), set, nil)
			s.Solve()
			if math.Abs(-s.Incumbent().Obj-want) > 1e-6 {
				t.Fatalf("trial %d rule %d: obj %v want %v", trial, br, -s.Incumbent().Obj, want)
			}
		}
	}
}

// Mixed-integer test: integer + continuous variables.
func TestMixedIntegerProblem(t *testing.T) {
	// min -x - 2y - 0.5z, x,y int in [0,10], z cont in [0,1],
	// x + y <= 7, x + z <= 5.5  → x=5, y=2 (x+y=7), z=0.5 → -9.25.
	p := &Prob{Name: "mix"}
	x := p.AddVar("x", 0, 10, -1, Integer)
	y := p.AddVar("y", 0, 10, -2, Integer)
	z := p.AddVar("z", 0, 1, -0.5, Continuous)
	p.AddRow("r1", lp.LE, 7, []lp.Nonzero{{Col: x, Val: 1}, {Col: y, Val: 1}})
	p.AddRow("r2", lp.LE, 5.5, []lp.Nonzero{{Col: x, Val: 1}, {Col: z, Val: 1}})
	s := NewSolver(p, DefaultSettings(), nil)
	if st := s.Solve(); st != StatusOptimal {
		t.Fatalf("status %v", st)
	}
	// Optimum: maximize x+2y+0.5z → y as big as possible: y=7? x+y<=7 →
	// x=0,y=7: obj -14 - 0.5z, z<=1 and x+z<=5.5 → z=1 → -14.5.
	if math.Abs(s.Incumbent().Obj-(-14.5)) > 1e-6 {
		t.Fatalf("obj = %v, want -14.5", s.Incumbent().Obj)
	}
}

func TestInfeasibleMIP(t *testing.T) {
	p := &Prob{Name: "infeas"}
	x := p.AddVar("x", 0, 1, 1, Binary)
	p.AddRow("r", lp.GE, 2, []lp.Nonzero{{Col: x, Val: 1}})
	s := NewSolver(p, DefaultSettings(), nil)
	if st := s.Solve(); st != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", st)
	}
}

func TestNodeLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 16
	values := make([]float64, n)
	weights := make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = float64(1 + rng.Intn(100))
		weights[i] = float64(1 + rng.Intn(50))
	}
	set := DefaultSettings()
	set.NodeLimit = 3
	set.HeurFreq = 0
	s := NewSolver(knapsackProb(values, weights, 100), set, nil)
	st := s.Solve()
	if st != StatusNodeLimit && st != StatusOptimal {
		t.Fatalf("status = %v", st)
	}
	if s.Stats.Nodes > 3 {
		t.Fatalf("nodes = %d exceeds limit", s.Stats.Nodes)
	}
}

func TestPollInterrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 14
	values := make([]float64, n)
	weights := make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = float64(1 + rng.Intn(100))
		weights[i] = float64(1 + rng.Intn(50))
	}
	s := NewSolver(knapsackProb(values, weights, 80), DefaultSettings(), nil)
	calls := 0
	s.Poll = func(sv *Solver) bool {
		calls++
		return calls < 3
	}
	if st := s.Solve(); st != StatusInterrupted {
		t.Fatalf("status = %v, want interrupted", st)
	}
}

// Subproblem extraction and re-solving: splitting the root problem into
// transferred subproblems and solving each must reproduce the optimum —
// the core invariant behind UG's work transfer.
func TestExtractAndResolveSubproblems(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 12; trial++ {
		n := 10 + rng.Intn(6)
		values := make([]float64, n)
		weights := make([]float64, n)
		for i := 0; i < n; i++ {
			values[i] = float64(1 + rng.Intn(25))
			weights[i] = float64(1 + rng.Intn(12))
		}
		capacity := 3 * float64(n)
		want := bruteKnapsack(values, weights, capacity)

		// Run a few nodes, then extract all open subproblems.
		set := DefaultSettings()
		set.HeurFreq = 0 // make it harder: no heuristics
		set.Seed = int64(trial)
		s := NewSolver(knapsackProb(values, weights, capacity), set, nil)
		nodesRun := 0
		s.Poll = func(sv *Solver) bool {
			nodesRun++
			return nodesRun < 5
		}
		st := s.Solve()
		if st == StatusOptimal {
			if math.Abs(-s.Incumbent().Obj-want) > 1e-6 {
				t.Fatalf("trial %d: early optimal obj wrong", trial)
			}
			continue
		}
		subs := s.ExtractAllOpen()
		if len(subs) == 0 {
			// Interrupt landed after the tree emptied: the incumbent must
			// already be optimal.
			if math.Abs(-s.Incumbent().Obj-want) > 1e-6 {
				t.Fatalf("trial %d: empty tree but suboptimal incumbent", trial)
			}
			continue
		}
		best := math.Inf(1)
		if inc := s.Incumbent(); inc != nil {
			best = inc.Obj
		}
		// Solve each subproblem independently (as ParaSolvers would);
		// round-trip through the gob wire format.
		for _, sub := range subs {
			b, err := EncodeSubprob(sub)
			if err != nil {
				t.Fatal(err)
			}
			sub2, err := DecodeSubprob(b)
			if err != nil {
				t.Fatal(err)
			}
			w := NewSolver(knapsackProb(values, weights, capacity), DefaultSettings(), nil)
			wst := w.SolveSubprob(sub2)
			if wst != StatusOptimal && wst != StatusInfeasible {
				t.Fatalf("trial %d: subproblem status %v", trial, wst)
			}
			if inc := w.Incumbent(); inc != nil && inc.Obj < best {
				best = inc.Obj
			}
		}
		if math.Abs(-best-want) > 1e-6 {
			t.Fatalf("trial %d: combined obj %v want %v", trial, -best, want)
		}
	}
}

func TestInjectSolutionPrunes(t *testing.T) {
	values := []float64{10, 10, 10, 10}
	weights := []float64{1, 1, 1, 1}
	p := knapsackProb(values, weights, 2)
	s := NewSolver(p, DefaultSettings(), nil)
	ok := s.InjectSolution(&Sol{X: []float64{1, 1, 0, 0}})
	if !ok {
		t.Fatal("valid injected solution rejected")
	}
	if s.Incumbent() == nil || math.Abs(s.Incumbent().Obj-(-20)) > 1e-9 {
		t.Fatalf("incumbent = %+v", s.Incumbent())
	}
	// Infeasible injection must be rejected.
	if s.InjectSolution(&Sol{X: []float64{1, 1, 1, 0}}) {
		t.Fatal("infeasible injected solution accepted")
	}
	if st := s.Solve(); st != StatusOptimal {
		t.Fatalf("status %v", st)
	}
}

func TestBestBoundAndGap(t *testing.T) {
	values := []float64{5, 4, 3}
	weights := []float64{2, 2, 2}
	p := knapsackProb(values, weights, 4)
	s := NewSolver(p, DefaultSettings(), nil)
	s.Solve()
	if g := s.Gap(); g > 1e-9 {
		t.Fatalf("gap after optimal solve = %v", g)
	}
	lb := s.BestBound()
	if math.Abs(lb-s.Incumbent().Obj) > 1e-9 {
		t.Fatalf("best bound %v != incumbent %v", lb, s.Incumbent().Obj)
	}
}

// Property: random MIPs solved by the framework match a brute-force
// enumeration over the integer grid.
func TestRandomBoundedIntegerPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(4) // small enough for grid enumeration
		ub := 3
		p := &Prob{Name: "ip", IntegralObj: true}
		obj := make([]float64, n)
		for j := 0; j < n; j++ {
			obj[j] = float64(rng.Intn(11) - 5)
			p.AddVar("x", 0, float64(ub), obj[j], Integer)
		}
		m := 1 + rng.Intn(3)
		rows := make([][]float64, m)
		rhs := make([]float64, m)
		for i := 0; i < m; i++ {
			rows[i] = make([]float64, n)
			var coefs []lp.Nonzero
			for j := 0; j < n; j++ {
				rows[i][j] = float64(rng.Intn(7) - 3)
				coefs = append(coefs, lp.Nonzero{Col: j, Val: rows[i][j]})
			}
			rhs[i] = float64(rng.Intn(10))
			p.AddRow("r", lp.LE, rhs[i], coefs)
		}
		// Brute force over the grid.
		best := math.Inf(1)
		var rec func(j int, x []float64)
		rec = func(j int, x []float64) {
			if j == n {
				for i := 0; i < m; i++ {
					var ax float64
					for k := 0; k < n; k++ {
						ax += rows[i][k] * x[k]
					}
					if ax > rhs[i]+1e-9 {
						return
					}
				}
				var o float64
				for k := 0; k < n; k++ {
					o += obj[k] * x[k]
				}
				if o < best {
					best = o
				}
				return
			}
			for v := 0; v <= ub; v++ {
				x[j] = float64(v)
				rec(j+1, x)
			}
		}
		rec(0, make([]float64, n))

		set := DefaultSettings()
		set.Seed = int64(trial)
		s := NewSolver(p, set, nil)
		st := s.Solve()
		if math.IsInf(best, 1) {
			if st != StatusInfeasible {
				t.Fatalf("trial %d: want infeasible, got %v", trial, st)
			}
			continue
		}
		if st != StatusOptimal {
			t.Fatalf("trial %d: status %v", trial, st)
		}
		if math.Abs(s.Incumbent().Obj-best) > 1e-6 {
			t.Fatalf("trial %d: obj %v want %v", trial, s.Incumbent().Obj, best)
		}
	}
}

func TestSettingsEmphasisApply(t *testing.T) {
	s := DefaultSettings()
	s.Emphasis = EmphEasyCIP
	s.apply()
	if s.SepaRounds > 3 || s.PropRounds != 1 {
		t.Fatalf("easycip not applied: %+v", s)
	}
	a := DefaultSettings()
	a.Emphasis = EmphAggressive
	a.apply()
	if a.SepaRounds != 24 {
		t.Fatalf("aggressive sepa rounds = %d", a.SepaRounds)
	}
}

func TestEncodeSolRoundtrip(t *testing.T) {
	sol := &Sol{Obj: -3.5, X: []float64{1, 0, 2.5}}
	b, err := EncodeSol(sol)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSol(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Obj != sol.Obj || len(got.X) != 3 || got.X[2] != 2.5 {
		t.Fatalf("roundtrip mismatch: %+v", got)
	}
}

func TestSubprobEncodeBoundsAndDecisions(t *testing.T) {
	p := knapsackProb([]float64{3, 2}, []float64{1, 1}, 1)
	s := NewSolver(p, DefaultSettings(), nil)
	root := &Node{ID: 0, Bound: -5}
	child := &Node{ID: 1, Parent: root, Depth: 1,
		Bound:     -4,
		BoundChgs: []BoundChg{{Var: 0, Lo: 1, Up: 1}},
		Decisions: []Decision{{Kind: "test", V: 7, Flag: true}},
	}
	sub := s.encodeNode(child)
	if len(sub.Bounds) != 1 || sub.Bounds[0].Var != 0 || sub.Bounds[0].Lo != 1 {
		t.Fatalf("bounds = %+v", sub.Bounds)
	}
	if len(sub.Decisions) != 1 || sub.Decisions[0].Kind != "test" {
		t.Fatalf("decisions = %+v", sub.Decisions)
	}
	if sub.Bound != -4 || sub.Depth != 1 {
		t.Fatalf("meta = %+v", sub)
	}
}

// Property: subproblem gob encoding round-trips arbitrary bound changes
// and decisions exactly.
func TestSubprobGobRoundTripQuick(t *testing.T) {
	f := func(vars []uint8, los, ups []float64, kinds []uint8) bool {
		sub := &Subprob{Bound: -3.25, Depth: len(vars)}
		for i := range vars {
			lo, up := 0.0, 1.0
			if i < len(los) {
				lo = los[i]
			}
			if i < len(ups) {
				up = ups[i]
			}
			sub.Bounds = append(sub.Bounds, BoundChg{Var: int(vars[i]), Lo: lo, Up: up})
		}
		for i := range kinds {
			sub.Decisions = append(sub.Decisions, Decision{
				Kind: "k", V: int(kinds[i]), Flag: kinds[i]%2 == 0, Val: float64(kinds[i]) / 3,
			})
		}
		b, err := EncodeSubprob(sub)
		if err != nil {
			return false
		}
		got, err := DecodeSubprob(b)
		if err != nil {
			return false
		}
		if got.Depth != sub.Depth || got.Bound != sub.Bound ||
			len(got.Bounds) != len(sub.Bounds) || len(got.Decisions) != len(sub.Decisions) {
			return false
		}
		for i := range sub.Bounds {
			if got.Bounds[i] != sub.Bounds[i] {
				return false
			}
		}
		for i := range sub.Decisions {
			if got.Decisions[i] != sub.Decisions[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
