// Package scip implements a plugin-based constraint-integer-programming
// (CIP) branch-and-cut framework in the spirit of SCIP: a central
// branch-and-bound driver around an LP (or custom) relaxation, extended
// through plugins — presolvers, propagators, separators, primal
// heuristics, constraint handlers, branching rules and relaxators.
// Problem-specific solvers (the SCIP-Jack and SCIP-SDP analogues in
// internal/steiner and internal/misdp) are built purely by registering
// plugins, which is what makes the UG parallelization in internal/ug
// applicable to them without modification — the property the paper's
// ug[SCIP-*,*]-libraries exploit.
package scip

import (
	"fmt"
	"math"

	"repro/internal/lp"
)

// VarType describes the integrality requirement of a variable.
type VarType int8

// Variable types.
const (
	Continuous VarType = iota
	Binary
	Integer
)

// Var is one decision variable of the (presolved) model.
type Var struct {
	Name string
	Lo   float64
	Up   float64
	Obj  float64
	Type VarType
}

// LinRow is a linear constraint of the initial model.
type LinRow struct {
	Name  string
	Sense lp.Sense
	RHS   float64
	Coefs []lp.Nonzero
}

// Prob is a CIP instance: variables, initial linear rows, and an opaque
// problem-data payload that problem-specific plugins (graph, SDP blocks)
// interpret.
type Prob struct {
	Name        string
	Vars        []Var
	Rows        []LinRow
	ObjOffset   float64
	IntegralObj bool // objective provably integral on integer solutions
	Data        any  // problem-specific payload (Steiner graph, SDP blocks, …)
}

// AddVar appends a variable and returns its index.
func (p *Prob) AddVar(name string, lo, up, obj float64, vt VarType) int {
	p.Vars = append(p.Vars, Var{Name: name, Lo: lo, Up: up, Obj: obj, Type: vt})
	return len(p.Vars) - 1
}

// AddRow appends a linear row and returns its index.
func (p *Prob) AddRow(name string, sense lp.Sense, rhs float64, coefs []lp.Nonzero) int {
	p.Rows = append(p.Rows, LinRow{Name: name, Sense: sense, RHS: rhs, Coefs: append([]lp.Nonzero(nil), coefs...)})
	return len(p.Rows) - 1
}

// Sol is a primal solution of the model.
type Sol struct {
	Obj float64
	X   []float64
}

// Clone returns a deep copy of the solution.
func (s *Sol) Clone() *Sol {
	if s == nil {
		return nil
	}
	return &Sol{Obj: s.Obj, X: append([]float64(nil), s.X...)}
}

// Decision is a problem-specific branching decision in a
// solver-independent, serializable form — the piece of ug-0.8.6 that the
// paper credits with letting ug[SCIP-Jack,MPI] catch up with SCIP-Jack's
// constraint branching. Kind selects the interpreting handler; the
// numeric fields are handler-defined.
type Decision struct {
	Kind string
	V    int
	Flag bool
	Val  float64
}

// String renders the decision for traces and debugging.
func (d Decision) String() string {
	return fmt.Sprintf("%s(v=%d,flag=%v,val=%g)", d.Kind, d.V, d.Flag, d.Val)
}

// BoundChg is one variable bound change relative to the presolved model.
type BoundChg struct {
	Var    int
	Lo, Up float64
}

// Subprob is the solver-independent encoding of a branch-and-bound
// subproblem: the effective bound changes versus the presolved model plus
// the root-path branching decisions. UG ships gob encodings of this
// across its communication layer.
type Subprob struct {
	Bounds    []BoundChg
	Decisions []Decision
	Bound     float64 // dual (lower) bound inherited from the sender
	Depth     int
}

// Infinity is the framework's infinite value.
var Infinity = math.Inf(1)
