package scip

import (
	"bytes"
	"encoding/gob"

	"repro/internal/num"
)

// This file implements the solver-independent subproblem/solution
// encoding that UG ships between the LoadCoordinator and the ParaSolvers.

// encodeNode converts an open node into a transferable Subprob: effective
// bound changes versus the presolved model plus the root-path decisions.
func (s *Solver) encodeNode(n *Node) *Subprob {
	lo, up := s.effectiveBounds(n)
	sub := &Subprob{Bound: n.Bound, Depth: n.Depth}
	for j := range s.Prob.Vars {
		// Branching assigns bounds, never computes them, so exact
		// inequality is the correct changed-bound test.
		if !num.ExactEq(lo[j], s.Prob.Vars[j].Lo) || !num.ExactEq(up[j], s.Prob.Vars[j].Up) {
			sub.Bounds = append(sub.Bounds, BoundChg{Var: j, Lo: lo[j], Up: up[j]})
		}
	}
	sub.Decisions = n.allDecisions()
	return sub
}

// ExtractBestOpen removes the open node with the best (smallest) dual
// bound and returns it in transferable form; nil when no node is open.
// This is what a ParaSolver in collect mode sends to the LoadCoordinator.
func (s *Solver) ExtractBestOpen() *Subprob {
	n := s.tree.extractBest()
	if n == nil {
		return nil
	}
	sub := s.encodeNode(n)
	s.finishNode(n) // subtree ownership transferred: recycle the node
	return sub
}

// ExtractAllOpen drains every open node in transferable form — used when
// the racing winner hands its frontier to the LoadCoordinator.
func (s *Solver) ExtractAllOpen() []*Subprob {
	nodes := s.tree.drain()
	out := make([]*Subprob, 0, len(nodes))
	for _, n := range nodes {
		out = append(out, s.encodeNode(n))
	}
	for _, n := range nodes {
		s.finishNode(n)
	}
	return out
}

// EncodeSubprob gob-serializes a subproblem (the "wire format" of the
// simulated MPI layer).
func EncodeSubprob(sub *Subprob) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(sub); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeSubprob reverses EncodeSubprob.
func DecodeSubprob(b []byte) (*Subprob, error) {
	var sub Subprob
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&sub); err != nil {
		return nil, err
	}
	return &sub, nil
}

// EncodeSol gob-serializes a solution.
func EncodeSol(sol *Sol) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(sol); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeSol reverses EncodeSol.
func DecodeSol(b []byte) (*Sol, error) {
	var sol Sol
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&sol); err != nil {
		return nil, err
	}
	return &sol, nil
}
