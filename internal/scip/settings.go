package scip

// NodeSelection chooses how the open-node queue is ordered.
type NodeSelection int8

// Node selection strategies.
const (
	BestBound NodeSelection = iota // global best-first (default)
	DepthFirst
	HybridPlunge // best-first with depth-first plunging
)

// Emphasis mirrors SCIP's emphasis presets; racing ramp-up varies it
// across ParaSolvers to generate different search trees.
type Emphasis int8

// Emphasis presets.
const (
	EmphDefault Emphasis = iota
	EmphEasyCIP          // light separation/heuristics, cheap nodes
	EmphAggressive
	EmphFeasibility
)

// String names the emphasis as used in racing-settings labels.
func (e Emphasis) String() string {
	switch e {
	case EmphEasyCIP:
		return "easycip"
	case EmphAggressive:
		return "aggressive"
	case EmphFeasibility:
		return "feasibility"
	default:
		return "default"
	}
}

// BranchRule selects the built-in variable branching rule.
type BranchRule int8

// Built-in branching rules.
const (
	BranchMostFractional BranchRule = iota
	BranchPseudoCost
	BranchRandom
)

// Settings steers a solver instance. Racing ramp-up assigns each
// ParaSolver a different Settings value (the paper's "different parameter
// settings and permutations of variables and constraints").
type Settings struct {
	Name string // label shown in racing statistics

	NodeSel         NodeSelection
	Branching       BranchRule
	Emphasis        Emphasis
	UseLP           bool // LP relaxation on (off for pure relaxator solving à la SDP mode)
	SepaRounds      int  // max separation rounds at the root node
	SepaRoundsLocal int  // max separation rounds at deeper nodes
	HeurFreq        int  // run heuristics every HeurFreq nodes (0 = only at root)
	PropRounds      int  // propagation rounds per node

	// Seed drives all randomized components and the variable permutation
	// used for tie-breaking, so different seeds yield different trees.
	Seed int64
	// PermuteTieBreak adds a seed-dependent jitter to branching scores.
	PermuteTieBreak bool

	NodeLimit int64   // 0 = unlimited
	TimeLimit float64 // seconds, 0 = unlimited
	GapLimit  float64 // stop when (ub-lb)/|ub| below this

	// MaxLPIterations caps each LP solve (0 = solver default).
	MaxLPIterations int

	// MaxCutRows bounds the number of separator-added cut rows kept in
	// the LP (0 = unlimited). Constraint-handler enforcement cuts are
	// exempt, so correctness is unaffected.
	MaxCutRows int
}

// DefaultSettings returns the baseline configuration.
func DefaultSettings() Settings {
	return Settings{
		Name:            "default",
		NodeSel:         BestBound,
		Branching:       BranchPseudoCost,
		Emphasis:        EmphDefault,
		UseLP:           true,
		SepaRounds:      12,
		SepaRoundsLocal: 3,
		HeurFreq:        4,
		PropRounds:      3,
	}
}

// apply adjusts derived knobs for the emphasis presets.
func (s *Settings) apply() {
	switch s.Emphasis {
	case EmphEasyCIP:
		if s.SepaRounds > 3 {
			s.SepaRounds = 3
		}
		if s.HeurFreq == 0 || s.HeurFreq > 10 {
			s.HeurFreq = 10
		}
		s.PropRounds = 1
	case EmphAggressive:
		s.SepaRounds *= 2
		if s.HeurFreq > 2 {
			s.HeurFreq = 2
		}
	case EmphFeasibility:
		if s.HeurFreq > 1 {
			s.HeurFreq = 1
		}
		s.NodeSel = HybridPlunge
	}
}
