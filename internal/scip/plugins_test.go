package scip

import (
	"math"
	"testing"

	"repro/internal/lp"
)

// These tests exercise the plugin API contract with purpose-built toy
// plugins: propagation rounds, separator cut loops (global and local
// cuts), constraint-handler enforcement, heuristic submission, custom
// branching with Decisions, and relaxators.

// evenSumCons requires Σx to be even — a stand-in for an exotic
// constraint class handled outside the LP.
type evenSumCons struct{ enforced int }

func (*evenSumCons) Name() string { return "evensum" }
func (c *evenSumCons) Check(ctx *Ctx, x []float64) bool {
	var s float64
	for _, v := range x {
		s += v
	}
	return math.Mod(math.Round(s), 2) == 0
}
func (c *evenSumCons) Enforce(ctx *Ctx, x []float64) Result {
	c.enforced++
	// Branch the parity explicitly: fix the first unfixed variable both
	// ways (a crude but complete dichotomy).
	for j := range x {
		if ctx.LocalUp(j)-ctx.LocalLo(j) > 0.5 {
			ctx.AddChildren([]Child{
				{Bounds: []BoundChg{{Var: j, Lo: 0, Up: 0}}},
				{Bounds: []BoundChg{{Var: j, Lo: 1, Up: 1}}},
			})
			return Branched
		}
	}
	return Cutoff // all fixed and parity odd: infeasible here
}

func TestConshdlrEnforcementBranching(t *testing.T) {
	// max x1+x2+x3 (binary) s.t. sum even → optimum 2.
	p := &Prob{Name: "evensum", IntegralObj: true}
	for i := 0; i < 3; i++ {
		p.AddVar("x", 0, 1, -1, Binary)
	}
	h := &evenSumCons{}
	s := NewSolver(p, DefaultSettings(), &Plugins{Conshdlrs: []Conshdlr{h}})
	if st := s.Solve(); st != StatusOptimal {
		t.Fatalf("status %v", st)
	}
	if got := -s.Incumbent().Obj; got != 2 {
		t.Fatalf("obj = %v, want 2", got)
	}
	if h.enforced == 0 {
		t.Fatal("handler never enforced")
	}
}

// fixingProp fixes variable 0 to 0 at every node (a trivially valid
// tightening for the model below) and reports Reduced once.
type fixingProp struct{ calls int }

func (*fixingProp) Name() string { return "fixprop" }
func (pr *fixingProp) Propagate(ctx *Ctx) Result {
	pr.calls++
	if ctx.LocalUp(0) > 0 {
		ctx.TightenUp(0, 0)
		return Reduced
	}
	return DidNothing
}

func TestPropagatorTightensBounds(t *testing.T) {
	// max x0 + x1; a propagator that knows x0 must be 0 → optimum 1.
	p := &Prob{Name: "prop", IntegralObj: true}
	p.AddVar("x0", 0, 1, -1, Binary)
	p.AddVar("x1", 0, 1, -1, Binary)
	// Row that would otherwise allow both: x0 + x1 ≤ 2.
	p.AddRow("r", lp.LE, 2, []lp.Nonzero{{Col: 0, Val: 1}, {Col: 1, Val: 1}})
	pr := &fixingProp{}
	s := NewSolver(p, DefaultSettings(), &Plugins{Propagators: []Propagator{pr}})
	if st := s.Solve(); st != StatusOptimal {
		t.Fatalf("status %v", st)
	}
	if got := -s.Incumbent().Obj; got != 1 {
		t.Fatalf("obj = %v, want 1", got)
	}
	if pr.calls == 0 {
		t.Fatal("propagator never ran")
	}
}

// knapCutSepa separates the cover cut x0+x1 ≤ 1 when violated.
type knapCutSepa struct{ added int }

func (*knapCutSepa) Name() string { return "coversepa" }
func (sp *knapCutSepa) Separate(ctx *Ctx) Result {
	if ctx.LPSol == nil {
		return DidNotRun
	}
	if ctx.LPSol.X[0]+ctx.LPSol.X[1] > 1+1e-6 {
		if ctx.AddCut(lp.LE, 1, []lp.Nonzero{{Col: 0, Val: 1}, {Col: 1, Val: 1}}) {
			sp.added++
			return Separated
		}
	}
	return DidNothing
}

func TestSeparatorCutLoop(t *testing.T) {
	// max 2x0+2x1+x2 s.t. 3x0+3x1+2x2 ≤ 5 (binary): LP wants x0=x1=5/6;
	// the cover cut x0+x1 ≤ 1 is valid and cuts it off.
	p := &Prob{Name: "cover", IntegralObj: true}
	p.AddVar("x0", 0, 1, -2, Binary)
	p.AddVar("x1", 0, 1, -2, Binary)
	p.AddVar("x2", 0, 1, -1, Binary)
	p.AddRow("knap", lp.LE, 5, []lp.Nonzero{{Col: 0, Val: 3}, {Col: 1, Val: 3}, {Col: 2, Val: 2}})
	sp := &knapCutSepa{}
	s := NewSolver(p, DefaultSettings(), &Plugins{Separators: []Separator{sp}})
	if st := s.Solve(); st != StatusOptimal {
		t.Fatalf("status %v", st)
	}
	if got := -s.Incumbent().Obj; got != 3 {
		t.Fatalf("obj = %v, want 3", got)
	}
	if sp.added == 0 {
		t.Fatal("separator never added its cut")
	}
	if s.Stats.CutsAdded == 0 {
		t.Fatal("cut statistics not recorded")
	}
}

func TestCutDeduplication(t *testing.T) {
	p := &Prob{Name: "dedup", IntegralObj: true}
	p.AddVar("x", 0, 1, -1, Binary)
	s := NewSolver(p, DefaultSettings(), nil)
	root := &Node{ID: 0, Bound: math.Inf(-1)}
	ctx := &Ctx{S: s, Node: root}
	coefs := []lp.Nonzero{{Col: 0, Val: 1}}
	if !ctx.AddCut(lp.LE, 1, coefs) {
		t.Fatal("first cut rejected")
	}
	if ctx.AddCut(lp.LE, 1, coefs) {
		t.Fatal("duplicate global cut accepted")
	}
	// Different rhs is a different cut.
	if !ctx.AddCut(lp.LE, 0.5, coefs) {
		t.Fatal("distinct cut rejected")
	}
}

func TestCutBudget(t *testing.T) {
	set := DefaultSettings()
	set.MaxCutRows = 2
	p := &Prob{Name: "budget", IntegralObj: true}
	p.AddVar("x", 0, 1, -1, Binary)
	s := NewSolver(p, set, nil)
	ctx := &Ctx{S: s, Node: &Node{}}
	if ctx.CutBudgetLeft() != 2 {
		t.Fatalf("budget = %d", ctx.CutBudgetLeft())
	}
	ctx.AddCut(lp.LE, 1, []lp.Nonzero{{Col: 0, Val: 1}})
	ctx.AddCut(lp.LE, 2, []lp.Nonzero{{Col: 0, Val: 1}})
	if ctx.CutBudgetLeft() != 0 {
		t.Fatalf("budget after 2 cuts = %d", ctx.CutBudgetLeft())
	}
}

// heurAlwaysBest submits the known optimum.
type heurAlwaysBest struct{ sol []float64 }

func (*heurAlwaysBest) Name() string { return "oracle" }
func (h *heurAlwaysBest) Search(ctx *Ctx) Result {
	if ctx.SubmitSol(h.sol) {
		return FoundSol
	}
	return DidNothing
}

func TestHeuristicSubmission(t *testing.T) {
	p := &Prob{Name: "heur", IntegralObj: true}
	p.AddVar("x0", 0, 1, -3, Binary)
	p.AddVar("x1", 0, 1, -2, Binary)
	p.AddRow("r", lp.LE, 1, []lp.Nonzero{{Col: 0, Val: 1}, {Col: 1, Val: 1}})
	h := &heurAlwaysBest{sol: []float64{1, 0}}
	s := NewSolver(p, DefaultSettings(), &Plugins{Heuristics: []Heuristic{h}})
	if st := s.Solve(); st != StatusOptimal {
		t.Fatalf("status %v", st)
	}
	if got := -s.Incumbent().Obj; got != 3 {
		t.Fatalf("obj = %v, want 3", got)
	}
	// An infeasible heuristic solution must be rejected.
	s2 := NewSolver(p, DefaultSettings(), &Plugins{Heuristics: []Heuristic{
		&heurAlwaysBest{sol: []float64{1, 1}},
	}})
	s2.Solve()
	if s2.Incumbent() != nil && s2.Incumbent().Obj < -3-1e-9 {
		t.Fatal("infeasible heuristic solution accepted")
	}
}

// constRelax returns a fixed valid bound.
type constRelax struct{ bound float64 }

func (*constRelax) Name() string { return "constrelax" }
func (r *constRelax) Relax(ctx *Ctx) (float64, []float64, Result) {
	return r.bound, nil, DidNothing
}

func TestRelaxatorImprovesBound(t *testing.T) {
	// LP bound is −2 (both fractional vars at 1); a relaxator claiming
	// bound −1.5 lets the root prune immediately after the incumbent −1
	// is found (integral obj: cutoff −1−1+1e-6).
	p := &Prob{Name: "relax", IntegralObj: true}
	p.AddVar("x0", 0, 1, -1, Binary)
	p.AddVar("x1", 0, 1, -1, Binary)
	p.AddRow("r", lp.LE, 1, []lp.Nonzero{{Col: 0, Val: 1}, {Col: 1, Val: 1}})
	s := NewSolver(p, DefaultSettings(), &Plugins{Relaxators: []Relaxator{&constRelax{bound: -1.2}}})
	if st := s.Solve(); st != StatusOptimal {
		t.Fatalf("status %v", st)
	}
	if got := -s.Incumbent().Obj; got != 1 {
		t.Fatalf("obj = %v, want 1", got)
	}
	if s.Stats.Nodes != 1 {
		t.Fatalf("relaxator bound should close the root, used %d nodes", s.Stats.Nodes)
	}
}

// parityDef tests ProblemDef decision plumbing: data is a counter of
// applied decisions.
type parityData struct{ applied []Decision }
type parityDef struct{}

func (parityDef) Presolve(d any, _ float64) (any, float64) { return d, 0 }
func (parityDef) BuildModel(d any) *Prob                   { panic("unused") }
func (parityDef) CloneData(d any) any {
	pd := d.(*parityData)
	return &parityData{applied: append([]Decision(nil), pd.applied...)}
}
func (parityDef) ApplyDecision(d any, dec Decision) {
	pd := d.(*parityData)
	pd.applied = append(pd.applied, dec)
}

// decisionBrancher branches once via Decisions and then lets the
// default rule take over.
type decisionBrancher struct{ branched bool }

func (*decisionBrancher) Name() string { return "decbrancher" }
func (b *decisionBrancher) Branch(ctx *Ctx) ([]Child, Result) {
	if b.branched {
		return nil, DidNotRun
	}
	b.branched = true
	return []Child{
		{Decisions: []Decision{{Kind: "side", Flag: true}}, Bounds: []BoundChg{{Var: 0, Lo: 0, Up: 0}}},
		{Decisions: []Decision{{Kind: "side", Flag: false}}, Bounds: []BoundChg{{Var: 0, Lo: 1, Up: 1}}},
	}, Branched
}

func TestDecisionsReachNodeData(t *testing.T) {
	p := &Prob{Name: "dec", IntegralObj: true, Data: &parityData{}}
	p.AddVar("x0", 0, 1, -1, Binary)
	p.AddVar("x1", 0, 1, -1, Binary)
	// Fractional LP vertex (e.g. x = (1, 0.5)) so branching actually runs.
	p.AddRow("r", lp.LE, 3, []lp.Nonzero{{Col: 0, Val: 2}, {Col: 1, Val: 2}})
	var seen int
	checkProp := propFunc(func(ctx *Ctx) Result {
		if len(ctx.Data.(*parityData).applied) > 0 {
			seen++
		}
		return DidNothing
	})
	s := NewSolver(p, DefaultSettings(), &Plugins{
		Def:         parityDef{},
		Branchers:   []Brancher{&decisionBrancher{}},
		Propagators: []Propagator{checkProp},
	})
	if st := s.Solve(); st != StatusOptimal {
		t.Fatalf("status %v", st)
	}
	if seen == 0 {
		t.Fatal("decisions never reached node-local data")
	}
}

// propFunc adapts a function to the Propagator interface.
type propFunc func(ctx *Ctx) Result

func (propFunc) Name() string                { return "func" }
func (f propFunc) Propagate(ctx *Ctx) Result { return f(ctx) }

func TestLocalCutsToggleWithSubtree(t *testing.T) {
	// Build a solver, add a local cut at a child node, and verify the LP
	// row toggling via the lp solver's RowEnabled.
	p := &Prob{Name: "localcuts", IntegralObj: true}
	p.AddVar("x", 0, 1, -1, Binary)
	s := NewSolver(p, DefaultSettings(), nil)
	root := &Node{ID: 0, Bound: math.Inf(-1)}
	childA := &Node{ID: 1, Parent: root, Depth: 1}
	childB := &Node{ID: 2, Parent: root, Depth: 1}
	ctxA := &Ctx{S: s, Node: childA}
	s.activate(childA)
	if !ctxA.AddLocalCut(lp.LE, 0, []lp.Nonzero{{Col: 0, Val: 1}}) {
		t.Fatal("local cut rejected")
	}
	row := s.baseRows // the first cut row
	s.activate(childA)
	if !s.lps.RowEnabled(row) {
		t.Fatal("local cut disabled in its own subtree")
	}
	s.activate(childB)
	if s.lps.RowEnabled(row) {
		t.Fatal("local cut leaked into a sibling subtree")
	}
	s.activate(root)
	if s.lps.RowEnabled(row) {
		t.Fatal("local cut active at the parent")
	}
}
