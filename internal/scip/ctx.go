package scip

import (
	"math/rand"

	"repro/internal/lp"
	"repro/internal/num"
)

// Ctx is the view of the solver state passed to plugins while a node is
// being processed.
type Ctx struct {
	S    *Solver
	Node *Node
	// LPSol is the most recent LP relaxation solution at this node (nil
	// when the LP is disabled or was not solved to optimality).
	LPSol *lp.Solution
	// RelaxX is the most recent relaxator solution, if any.
	RelaxX []float64
	// Data is the node-local problem data: a clone of the presolved data
	// with all root-path branching decisions applied.
	Data any

	rng        *rand.Rand
	infeasible bool
	children   []Child
	ncuts      int
}

// NVars returns the number of model variables.
func (c *Ctx) NVars() int { return len(c.S.Prob.Vars) }

// Var returns variable metadata.
func (c *Ctx) Var(j int) *Var { return &c.S.Prob.Vars[j] }

// LocalLo returns the effective lower bound of variable j at this node.
func (c *Ctx) LocalLo(j int) float64 { return c.S.localLo[j] }

// LocalUp returns the effective upper bound of variable j at this node.
func (c *Ctx) LocalUp(j int) float64 { return c.S.localUp[j] }

// Fixed reports whether variable j is fixed at this node.
func (c *Ctx) Fixed(j int) bool { return num.Eq(c.S.localUp[j], c.S.localLo[j], num.OptTol) }

// TightenLo raises the local lower bound of j; returns true if it
// changed. Detects local infeasibility automatically.
func (c *Ctx) TightenLo(j int, v float64) bool {
	if num.Leq(v, c.S.localLo[j], num.OptTol) {
		return false
	}
	c.S.localLo[j] = v
	if c.S.Set.UseLP {
		c.S.lps.SetBound(j, v, c.S.localUp[j])
	}
	if num.Gt(v, c.S.localUp[j], num.BoundCrossTol) {
		c.infeasible = true
	}
	return true
}

// TightenUp lowers the local upper bound of j; returns true if changed.
func (c *Ctx) TightenUp(j int, v float64) bool {
	if num.Geq(v, c.S.localUp[j], num.OptTol) {
		return false
	}
	c.S.localUp[j] = v
	if c.S.Set.UseLP {
		c.S.lps.SetBound(j, c.S.localLo[j], v)
	}
	if num.Lt(v, c.S.localLo[j], num.BoundCrossTol) {
		c.infeasible = true
	}
	return true
}

// FixVar fixes variable j to value v locally.
func (c *Ctx) FixVar(j int, v float64) {
	c.TightenLo(j, v)
	c.TightenUp(j, v)
}

// MarkInfeasible declares the current node infeasible.
func (c *Ctx) MarkInfeasible() { c.infeasible = true }

// AddCut adds a globally valid cutting plane to the LP; returns false if
// an identical global cut already exists.
func (c *Ctx) AddCut(sense lp.Sense, rhs float64, coefs []lp.Nonzero) bool {
	if !c.S.addCut(sense, rhs, coefs, -1) {
		return false
	}
	c.ncuts++
	return true
}

// AddLocalCut adds a cutting plane valid only in the subtree rooted at
// the current node (e.g. Steiner cuts that rely on branching-induced
// terminals).
func (c *Ctx) AddLocalCut(sense lp.Sense, rhs float64, coefs []lp.Nonzero) bool {
	if !c.S.addCut(sense, rhs, coefs, c.Node.ID) {
		return false
	}
	c.ncuts++
	return true
}

// CutBudgetLeft returns how many more separator cuts the row budget
// allows (separators should stop at zero; constraint-handler enforcement
// cuts are exempt because they are needed for correctness).
func (c *Ctx) CutBudgetLeft() int {
	if c.S.Set.MaxCutRows <= 0 {
		return 1 << 30
	}
	left := c.S.Set.MaxCutRows - len(c.S.cutOrigin)
	if left < 0 {
		return 0
	}
	return left
}

// AddChildren registers branching children for the current node.
func (c *Ctx) AddChildren(children []Child) {
	c.children = append(c.children, children...)
}

// SubmitSol offers a primal solution; the framework verifies global
// feasibility and installs it as incumbent when improving. Returns true
// when accepted.
func (c *Ctx) SubmitSol(x []float64) bool {
	return c.S.submitSolution(x, true)
}

// Incumbent returns the current best solution (nil if none).
func (c *Ctx) Incumbent() *Sol { return c.S.incumbent }

// UpperBound returns the incumbent objective (model space; +Inf if none).
func (c *Ctx) UpperBound() float64 {
	if c.S.incumbent == nil {
		return Infinity
	}
	return c.S.incumbent.Obj
}

// Rand returns the node-deterministic random source for this solve.
func (c *Ctx) Rand() *rand.Rand { return c.rng }

// Settings returns the active settings.
func (c *Ctx) Settings() *Settings { return &c.S.Set }

// DualBound returns the current node's dual bound.
func (c *Ctx) DualBound() float64 { return c.Node.Bound }

// IsIntegral reports whether x satisfies all integrality requirements.
func (c *Ctx) IsIntegral(x []float64) bool {
	for j, v := range c.S.Prob.Vars {
		if v.Type == Continuous {
			continue
		}
		if !num.Integral(x[j], num.FeasTol) {
			return false
		}
	}
	return true
}
