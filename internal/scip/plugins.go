package scip

// This file defines the plugin interfaces. A problem-specific solver is
// a set of implementations of these interfaces plus a ProblemDef that
// owns presolving and model construction — mirroring how SCIP
// applications register user plugins.

// Result is the outcome a plugin reports back to the framework.
type Result int8

// Plugin outcomes.
const (
	DidNotRun  Result = iota
	DidNothing        // ran, found nothing
	Reduced           // tightened bounds / reduced data
	Separated         // added at least one cutting plane
	Cutoff            // proved the current node infeasible or dominated
	Branched          // created child nodes itself
	FoundSol          // produced a primal solution
)

// ProblemDef owns the problem data lifecycle: presolving (run globally
// once and again per received UG subproblem — the paper's "layered
// presolving"), model construction, and the application of
// solver-independent branching decisions to problem data.
type ProblemDef interface {
	// Presolve reduces data in place, given the best known upper bound
	// (Infinity if none); returns the (possibly replaced) data and the
	// objective offset accumulated by the reductions.
	Presolve(data any, upperBound float64) (out any, objOffset float64)
	// BuildModel constructs the variable/row model of (presolved) data.
	BuildModel(data any) *Prob
	// CloneData deep-copies problem data for node-local modification.
	CloneData(data any) any
	// ApplyDecision applies one branching decision to node-local data.
	ApplyDecision(data any, d Decision)
}

// Propagator tightens local variable bounds at a node using node-local
// data (e.g. reduced-cost fixing, graph reductions deep in the tree).
type Propagator interface {
	// Name identifies the propagator in statistics and messages.
	Name() string
	// Propagate tightens bounds via ctx.TightenLo/TightenUp and reports
	// Reduced, Cutoff (node infeasible) or DidNothing.
	Propagate(ctx *Ctx) Result
}

// Separator finds violated valid inequalities for the current relaxation
// solution and adds them via ctx.AddCut / ctx.AddLocalCut.
type Separator interface {
	// Name identifies the separator in statistics and messages.
	Name() string
	// Separate inspects ctx.LPSol and reports Separated when it added at
	// least one violated cut, DidNothing otherwise.
	Separate(ctx *Ctx) Result
}

// Heuristic searches for primal solutions; it submits them via
// ctx.SubmitSol.
type Heuristic interface {
	// Name identifies the heuristic in statistics and messages.
	Name() string
	// Search reports FoundSol when it submitted at least one solution,
	// DidNothing otherwise.
	Search(ctx *Ctx) Result
}

// Conshdlr is a constraint handler for a constraint class that is not
// captured by the initial linear rows (Steiner connectivity, SDP cones).
type Conshdlr interface {
	// Name identifies the handler in statistics and messages.
	Name() string
	// Check reports whether a candidate (integral) solution satisfies the
	// handler's constraints.
	Check(ctx *Ctx, x []float64) bool
	// Enforce is called on a relaxation-optimal candidate that passed
	// integrality; the handler may add cuts (Separated), declare the node
	// infeasible (Cutoff), accept (DidNothing) or branch (Branched).
	Enforce(ctx *Ctx, x []float64) Result
}

// Brancher splits the current node. It either returns child
// specifications or reports DidNotRun to fall through to the built-in
// most-fractional rule.
type Brancher interface {
	// Name identifies the brancher in statistics and messages.
	Name() string
	// Branch returns the child subproblems and Branched, or DidNotRun to
	// fall through to the built-in rule.
	Branch(ctx *Ctx) ([]Child, Result)
}

// Relaxator computes an extra relaxation bound at a node (the SDP
// relaxation in SCIP-SDP's nonlinear branch-and-bound mode).
type Relaxator interface {
	// Name identifies the relaxator in statistics and messages.
	Name() string
	// Relax returns a valid lower bound for the node, an optional
	// relaxation solution (candidate for integrality checking), and a
	// status: Cutoff when infeasibility was proven, DidNothing otherwise.
	Relax(ctx *Ctx) (bound float64, x []float64, res Result)
}

// Child describes one branching child.
type Child struct {
	Bounds    []BoundChg
	Decisions []Decision
}

// Plugins is the registry of a solver instance. The zero value is a bare
// MIP solver (LP relaxation + most-fractional branching).
type Plugins struct {
	Def         ProblemDef
	Propagators []Propagator
	Separators  []Separator
	Heuristics  []Heuristic
	Conshdlrs   []Conshdlr
	Branchers   []Brancher
	Relaxators  []Relaxator
}
