package num

import (
	"math"
	"testing"
)

func TestToleranceComparisons(t *testing.T) {
	eps := FeasTol / 2
	if !Eq(1.0, 1.0+eps, FeasTol) {
		t.Error("Eq should accept a sub-tolerance difference")
	}
	if Eq(1.0, 1.0+3*FeasTol, FeasTol) {
		t.Error("Eq should reject a super-tolerance difference")
	}
	if !Lt(1.0, 1.0+3*FeasTol, FeasTol) || Lt(1.0, 1.0+eps, FeasTol) {
		t.Error("Lt must require a margin beyond the tolerance")
	}
	if !Gt(1.0+3*FeasTol, 1.0, FeasTol) || Gt(1.0+eps, 1.0, FeasTol) {
		t.Error("Gt must require a margin beyond the tolerance")
	}
	if !Leq(1.0+eps, 1.0, FeasTol) || Leq(1.0+3*FeasTol, 1.0, FeasTol) {
		t.Error("Leq must absorb sub-tolerance overshoot only")
	}
	if !Geq(1.0-eps, 1.0, FeasTol) || Geq(1.0-3*FeasTol, 1.0, FeasTol) {
		t.Error("Geq must absorb sub-tolerance undershoot only")
	}
	if !IsZero(eps, FeasTol) || IsZero(3*FeasTol, FeasTol) {
		t.Error("IsZero tolerance boundary wrong")
	}
}

func TestIntegral(t *testing.T) {
	for _, v := range []float64{0, 1, -7, 1e6} {
		if !Integral(v, FeasTol) {
			t.Errorf("Integral(%v) should hold", v)
		}
	}
	if Integral(0.5, FeasTol) || Integral(1+10*FeasTol, FeasTol) {
		t.Error("Integral accepted a fractional value")
	}
	if !Integral(1+FeasTol/2, FeasTol) {
		t.Error("Integral should absorb sub-tolerance noise")
	}
	// tol=0 demands bit-exact integrality — what the data-integrality
	// gates in steiner and misdp rely on before rounding dual bounds.
	if !Integral(2, 0) || Integral(2+1e-13, 0) {
		t.Error("Integral with tol=0 must be bit-exact")
	}
}

func TestRelEq(t *testing.T) {
	if !RelEq(1e9, 1e9*(1+1e-10), OptTol) {
		t.Error("RelEq should scale tolerance with magnitude")
	}
	if RelEq(1e9, 1e9+1, OptTol/1e3) {
		t.Error("RelEq accepted a relative difference above tolerance")
	}
	if !RelEq(0, OptTol/2, OptTol) {
		t.Error("RelEq near zero should behave absolutely")
	}
}

func TestExactHelpers(t *testing.T) {
	if !ExactZero(0.0) || ExactZero(math.SmallestNonzeroFloat64) {
		t.Error("ExactZero must be bit-exact")
	}
	if !Nonzero(math.SmallestNonzeroFloat64) || Nonzero(0.0) {
		t.Error("Nonzero must be bit-exact")
	}
	if !ExactEq(1.5, 1.5) || ExactEq(1.5, 1.5+ZeroTol) {
		t.Error("ExactEq must be bit-exact")
	}
	// Negative zero is numerically zero.
	if !ExactZero(math.Copysign(0, -1)) {
		t.Error("ExactZero(-0) should hold")
	}
}
