// Package num centralizes the floating-point comparison discipline for
// the whole solver stack. LP pivots, SDP feasibility checks, and B&B
// bound comparisons all accumulate rounding error, so any comparison of
// computed values must state its tolerance explicitly; raw ==/!= is
// reserved for sentinel values and sparsity tests and must be spelled
// through the Exact*/Nonzero helpers so the intent is auditable. The
// floatcmp analyzer (internal/analysis) enforces this: it flags raw
// float comparisons everywhere except inside this package.
package num

import "math"

// Canonical tolerances. These mirror the constants scattered through
// SCIP-style solvers: feasibility is looser than optimality, which is
// looser than numerical zero.
const (
	// FeasTol bounds primal feasibility violations (variable bounds,
	// row activities, integrality of candidate solutions).
	FeasTol = 1e-6
	// OptTol separates objective values and dual bounds: two bounds
	// closer than this are the same bound.
	OptTol = 1e-9
	// ZeroTol is the threshold below which an accumulated quantity is
	// numerical noise.
	ZeroTol = 1e-12
	// BoundCrossTol guards bound-crossing tests in branching (has a
	// child's bound crossed its parent's?): tighter than FeasTol so
	// stalled bounds are noticed, looser than OptTol so LP noise is not.
	BoundCrossTol = 1e-7
)

// Eq reports a ≈ b within absolute tolerance tol.
func Eq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// Lt reports a < b by more than tol.
func Lt(a, b, tol float64) bool { return a < b-tol }

// Gt reports a > b by more than tol.
func Gt(a, b, tol float64) bool { return a > b+tol }

// Leq reports a ≤ b up to tol.
func Leq(a, b, tol float64) bool { return a <= b+tol }

// Geq reports a ≥ b up to tol.
func Geq(a, b, tol float64) bool { return a >= b-tol }

// IsZero reports |x| ≤ tol.
func IsZero(x, tol float64) bool { return math.Abs(x) <= tol }

// Integral reports that x is within tol of an integer.
func Integral(x, tol float64) bool { return math.Abs(x-math.Round(x)) <= tol }

// RelEq reports a ≈ b within tol scaled by the larger magnitude
// (falling back to absolute comparison near zero).
func RelEq(a, b, tol float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}

// Exact comparisons: deliberate raw float equality, allowed only where
// the values are assigned, never computed — sparsity patterns, "unset"
// sentinels, tie-break comparators. Using these helpers instead of a
// bare operator is what marks the site as audited.

// ExactZero reports x == 0 exactly. Use for sparsity tests (an exact
// zero coefficient contributes nothing; a tiny nonzero still must be
// processed) and zero-valued "unset" sentinels.
func ExactZero(x float64) bool { return x == 0 }

// Nonzero reports x != 0 exactly; the complement of ExactZero for
// sparse iteration.
func Nonzero(x float64) bool { return x != 0 }

// ExactEq reports a == b exactly. Use when both sides are assigned
// values (branching bounds, heap tie-breaks) where tolerance would
// break trichotomy or transitivity.
func ExactEq(a, b float64) bool { return a == b }
