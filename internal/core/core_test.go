package core

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lp"
	"repro/internal/scip"
	"repro/internal/ug"
	"repro/internal/ug/comm"
)

func knapsackProb(values, weights []float64, capacity float64) *scip.Prob {
	p := &scip.Prob{Name: "knapsack", IntegralObj: true}
	var coefs []lp.Nonzero
	for i := range values {
		j := p.AddVar("x", 0, 1, -values[i], scip.Binary)
		coefs = append(coefs, lp.Nonzero{Col: j, Val: weights[i]})
	}
	p.AddRow("cap", lp.LE, capacity, coefs)
	return p
}

// bruteKnapsack computes the exact optimum by dynamic programming over
// the (integral) capacity.
func bruteKnapsack(values, weights []float64, capacity float64) float64 {
	cap := int(capacity)
	dp := make([]float64, cap+1)
	for i := range values {
		w := int(weights[i])
		for c := cap; c >= w; c-- {
			if v := dp[c-w] + values[i]; v > dp[c] {
				dp[c] = v
			}
		}
	}
	best := 0.0
	for _, v := range dp {
		if v > best {
			best = v
		}
	}
	return best
}

func randomInstance(seed int64, n int) (values, weights []float64, capacity float64) {
	rng := rand.New(rand.NewSource(seed))
	values = make([]float64, n)
	weights = make([]float64, n)
	var tot float64
	for i := 0; i < n; i++ {
		values[i] = float64(1 + rng.Intn(40))
		weights[i] = float64(1 + rng.Intn(20))
		tot += weights[i]
	}
	return values, weights, math.Floor(tot / 2)
}

func mipApp(values, weights []float64, capacity float64) App {
	return App{
		Name: "mip",
		Data: knapsackProb(values, weights, capacity),
	}
}

// Parallel solve must match brute force for 1, 2 and 4 workers on both
// communicators — the FiberSCIP (channels) and ParaSCIP (gob "MPI")
// configurations of the same code.
func TestParallelKnapsackMatchesBruteForce(t *testing.T) {
	for trial := int64(0); trial < 6; trial++ {
		values, weights, capacity := randomInstance(100+trial, 14)
		want := bruteKnapsack(values, weights, capacity)
		for _, workers := range []int{1, 2, 4} {
			for _, mkComm := range []func(int) comm.Comm{
				func(n int) comm.Comm { return comm.NewChannelComm(n) },
				func(n int) comm.Comm { return comm.NewGobComm(n) },
			} {
				res, _, err := SolveParallel(mipApp(values, weights, capacity), ug.Config{
					Workers: workers,
					Comm:    mkComm(workers + 1),
				})
				if err != nil {
					t.Fatal(err)
				}
				if !res.Optimal {
					t.Fatalf("trial %d workers %d: not optimal: %+v", trial, workers, res)
				}
				if math.Abs(-res.Obj-want) > 1e-6 {
					t.Fatalf("trial %d workers %d: obj %v want %v", trial, workers, -res.Obj, want)
				}
			}
		}
	}
}

func TestRacingRampUp(t *testing.T) {
	values, weights, capacity := randomInstance(7, 15)
	want := bruteKnapsack(values, weights, capacity)
	app := mipApp(values, weights, capacity)
	// Racing ladder with varied settings.
	for i := 0; i < 4; i++ {
		set := scip.DefaultSettings()
		set.Seed = int64(i)
		set.PermuteTieBreak = i > 0
		if i%2 == 1 {
			set.NodeSel = scip.DepthFirst
		}
		set.Name = "set" + string(rune('A'+i))
		app.Settings = append(app.Settings, set)
	}
	res, _, err := SolveParallel(app, ug.Config{
		Workers:    4,
		RampUp:     ug.RampUpRacing,
		RacingTime: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal || math.Abs(-res.Obj-want) > 1e-6 {
		t.Fatalf("racing result: %+v want %v", res, want)
	}
	if res.Stats.RacingWinner < 0 {
		t.Fatal("no racing winner recorded")
	}
	if res.Stats.RacingWinnerName == "" {
		t.Fatal("winner name missing")
	}
}

func TestStatsSanity(t *testing.T) {
	values, weights, capacity := randomInstance(13, 16)
	res, _, err := SolveParallel(mipApp(values, weights, capacity), ug.Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.MaxActive < 1 || st.MaxActive > 3 {
		t.Fatalf("MaxActive = %d", st.MaxActive)
	}
	if st.Dispatched < 1 {
		t.Fatalf("Dispatched = %d", st.Dispatched)
	}
	if st.TotalNodes < 1 {
		t.Fatalf("TotalNodes = %d", st.TotalNodes)
	}
	if len(st.IdleRatio) != 3 {
		t.Fatalf("IdleRatio = %v", st.IdleRatio)
	}
	for _, r := range st.IdleRatio {
		if r < 0 || r > 1 {
			t.Fatalf("idle ratio out of range: %v", st.IdleRatio)
		}
	}
	if st.Time <= 0 {
		t.Fatal("no elapsed time recorded")
	}
}

func TestInitialSolutionSeedsIncumbent(t *testing.T) {
	values, weights, capacity := randomInstance(5, 12)
	want := bruteKnapsack(values, weights, capacity)
	// Build a feasible (greedy) solution as the seed.
	x := make([]float64, len(values))
	var w float64
	for i := range values {
		if w+weights[i] <= capacity {
			x[i] = 1
			w += weights[i]
		}
	}
	var obj float64
	for i := range values {
		obj -= values[i] * x[i]
	}
	payload, err := scip.EncodeSol(&scip.Sol{Obj: obj, X: x})
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := SolveParallel(mipApp(values, weights, capacity), ug.Config{
		Workers:         2,
		InitialSolution: &ug.Solution{Obj: obj, Payload: payload},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal || math.Abs(-res.Obj-want) > 1e-6 {
		t.Fatalf("seeded solve: obj %v want %v", -res.Obj, want)
	}
}

// Checkpoint + restart: a time-limited run saves primitive nodes; a
// restarted run from the checkpoint finishes and finds the optimum.
func TestCheckpointRestart(t *testing.T) {
	values, weights, capacity := randomInstance(23, 22)
	want := bruteKnapsack(values, weights, capacity)
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ckpt.gob")

	// Make the first run slow enough to be interrupted: depth-first, no
	// heuristics, tiny time limit.
	hard := scip.DefaultSettings()
	hard.HeurFreq = 0
	hard.NodeSel = scip.DepthFirst
	hard.SepaRounds = 0
	app := mipApp(values, weights, capacity)
	app.Settings = []scip.Settings{hard}

	res1, _, err := SolveParallel(app, ug.Config{
		Workers:         2,
		TimeLimit:       0.05,
		CheckpointPath:  ckpt,
		CheckpointEvery: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}
	ck, err := ug.LoadCheckpointInfo(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Optimal {
		// Finished before the limit; restart should still succeed from the
		// final (possibly empty) checkpoint only if pool is nonempty.
		if len(ck.Pool) == 0 {
			return
		}
	}

	res2, _, err := SolveParallel(app, ug.Config{
		Workers:     2,
		RestartFrom: ckpt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Optimal {
		t.Fatalf("restarted run not optimal: %+v", res2)
	}
	if math.Abs(-res2.Obj-want) > 1e-6 {
		t.Fatalf("restarted obj %v want %v", -res2.Obj, want)
	}
	if !res2.Stats.Restarted {
		t.Fatal("restart flag not set")
	}
}

func TestSolveSequentialBaseline(t *testing.T) {
	values, weights, capacity := randomInstance(3, 12)
	want := bruteKnapsack(values, weights, capacity)
	s, st, off := SolveSequential(mipApp(values, weights, capacity), scip.DefaultSettings())
	if st != scip.StatusOptimal {
		t.Fatalf("status %v", st)
	}
	if math.Abs(-(s.Incumbent().Obj+off)-want) > 1e-6 {
		t.Fatalf("obj %v want %v", -s.Incumbent().Obj, want)
	}
}

// Collect mode must be exercised when more workers than initial nodes
// exist: the run completes and ships nodes through the coordinator.
func TestCollectModeTransfersNodes(t *testing.T) {
	// Strongly correlated knapsack: tight LP bound but an exploding tree,
	// so ramp-up genuinely needs node collection.
	rng := rand.New(rand.NewSource(41))
	n := 30
	values := make([]float64, n)
	weights := make([]float64, n)
	var tot float64
	for i := 0; i < n; i++ {
		weights[i] = float64(10 + rng.Intn(90))
		values[i] = weights[i] + 50
		tot += weights[i]
	}
	capacity := math.Floor(tot / 2)
	want := bruteKnapsack(values, weights, capacity)
	hard := scip.DefaultSettings()
	hard.HeurFreq = 0
	hard.SepaRounds = 0
	hard.NodeSel = scip.DepthFirst
	app := mipApp(values, weights, capacity)
	app.Settings = []scip.Settings{hard}
	res, _, err := SolveParallel(app, ug.Config{
		Workers:        4,
		StatusInterval: 1e-4,
		ShipInterval:   1e-4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal || math.Abs(-res.Obj-want) > 1e-6 {
		t.Fatalf("obj %v want %v", -res.Obj, want)
	}
	// With 4 workers and a single root, ramp-up requires collection.
	if res.Stats.Dispatched < 2 && res.Stats.TotalNodes > 10 {
		t.Fatalf("expected node transfers, stats: %+v", res.Stats)
	}
}

func TestFactoryMisuse(t *testing.T) {
	f := NewFactory(App{Name: "bad", Data: 42})
	if _, _, err := f.GlobalPresolve(); err == nil {
		t.Fatal("expected error for non-Prob data without ProblemDef")
	}
}
