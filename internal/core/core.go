// Package core is the ug[SCIP-*,*] glue layer: it adapts any customized
// scip-based solver — described as problem data, a ProblemDef, and a set
// of plugin constructors — to the UG framework's SolverFactory, so that
// the solver can be parallelized without touching either the solver or
// UG. This mirrors the paper's ScipUserPlugins mechanism: the per-problem
// registration files (internal/steiner/plugins.go and
// internal/misdp/plugins.go) stay under 200 lines, matching the paper's
// headline measurement for stp_plugins.cpp and misdp_plugins.cpp.
package core

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/scip"
	"repro/internal/ug"
)

// App describes a customized SCIP solver in plugin form.
type App struct {
	Name string
	// Def owns problem-data lifecycle (presolve, model build, decisions).
	Def scip.ProblemDef
	// Data is the original problem data.
	Data any
	// MakePlugins constructs a fresh plugin set (plugins may carry
	// per-solver state, so each ParaSolver gets its own).
	MakePlugins func() *scip.Plugins
	// Settings is the racing settings ladder; Settings[0] is the default
	// configuration used outside racing. Empty means a single default.
	Settings []scip.Settings
}

// Factory implements ug.SolverFactory over an App.
type Factory struct {
	app       App
	presolved *scip.Prob
	objOffset float64
	// external marks presolved/objOffset as supplied by the caller
	// (NewPresolvedFactory): GlobalPresolve then skips the reduction
	// phase entirely — the serving layer's presolve cache rides on this.
	external bool
}

// NewFactory wraps an App for ug.Run.
func NewFactory(app App) *Factory {
	if len(app.Settings) == 0 {
		app.Settings = []scip.Settings{scip.DefaultSettings()}
	}
	if app.MakePlugins == nil {
		app.MakePlugins = func() *scip.Plugins { return &scip.Plugins{} }
	}
	return &Factory{app: app}
}

// NewPresolvedFactory wraps an App whose global presolve already
// happened elsewhere: prob is the presolved shared model and offset the
// objective offset the reductions accumulated. GlobalPresolve then only
// encodes the root subproblem — it never re-runs ProblemDef.Presolve —
// so a presolve cache can amortize the reduction phase across repeated
// submissions of the same instance. The model is shared read-only by
// every ParaSolver, exactly as NewFactory shares its own presolve
// result.
func NewPresolvedFactory(app App, prob *scip.Prob, offset float64) *Factory {
	f := NewFactory(app)
	f.presolved = prob
	f.objOffset = offset
	f.external = true
	return f
}

// Presolve runs the App's global presolve standalone (the same
// reduction GlobalPresolve performs inside ug.Run) and returns the
// presolved model plus the objective offset. The App's Data is cloned
// first, so the caller's instance stays untouched — the pair can be
// cached and handed to NewPresolvedFactory any number of times.
func Presolve(app App) (*scip.Prob, float64, error) {
	f := NewFactory(app)
	if _, _, err := f.GlobalPresolve(); err != nil {
		return nil, 0, err
	}
	return f.presolved, f.objOffset, nil
}

// GlobalPresolve implements ug.SolverFactory: it presolves the instance
// once in the LoadCoordinator and builds the shared model all ParaSolvers
// solve (the outer layer of the paper's layered presolving; the inner
// layer happens when each ParaSolver re-reduces received subproblems).
// On a NewPresolvedFactory the reduction phase is skipped: the supplied
// model is used as-is and only the root payload is built.
func (f *Factory) GlobalPresolve() ([]byte, *ug.Solution, error) {
	if f.external {
		root, err := scip.EncodeSubprob(&scip.Subprob{Bound: negInf})
		if err != nil {
			return nil, nil, err
		}
		return root, nil, nil
	}
	data := f.app.Data
	if f.app.Def != nil {
		data = f.app.Def.CloneData(data)
		data, f.objOffset = f.app.Def.Presolve(data, scip.Infinity)
		f.presolved = f.app.Def.BuildModel(data)
	} else {
		prob, ok := data.(*scip.Prob)
		if !ok {
			return nil, nil, fmt.Errorf("core: app %q has no ProblemDef and data is %T, not *scip.Prob", f.app.Name, data)
		}
		f.presolved = prob
	}
	root, err := scip.EncodeSubprob(&scip.Subprob{Bound: negInf})
	if err != nil {
		return nil, nil, err
	}
	return root, nil, nil
}

// ObjOffset returns the objective offset accumulated by global
// presolving; original-space objective = model objective + offset.
func (f *Factory) ObjOffset() float64 { return f.objOffset }

// Presolved returns the shared presolved model (available after
// GlobalPresolve).
func (f *Factory) Presolved() *scip.Prob { return f.presolved }

// NumSettings implements ug.SolverFactory.
func (f *Factory) NumSettings() int { return len(f.app.Settings) }

// SettingsName implements ug.SolverFactory.
func (f *Factory) SettingsName(idx int) string {
	s := f.app.Settings[idx]
	if s.Name != "" {
		return s.Name
	}
	return fmt.Sprintf("settings-%d", idx)
}

// CreateWorker implements ug.SolverFactory.
func (f *Factory) CreateWorker(settingsIdx int) ug.WorkerSolver {
	if settingsIdx < 0 || settingsIdx >= len(f.app.Settings) {
		settingsIdx = 0
	}
	return &worker{f: f, set: f.app.Settings[settingsIdx]}
}

var negInf = -scip.Infinity

// worker wraps one scip solver instance as a UG ParaSolver.
type worker struct {
	f   *Factory
	set scip.Settings
}

// Solve implements ug.WorkerSolver: it decodes the subproblem, solves it
// with a fresh scip solver, and services the UG session from the
// solver's per-node Poll hook (Algorithm 2's periodic communication).
func (w *worker) Solve(sub *ug.Subproblem, sess *ug.Session) ug.Outcome {
	sp, err := scip.DecodeSubprob(sub.Payload)
	if err != nil {
		return ug.Outcome{}
	}
	s := scip.NewSolver(w.f.presolved, w.set, w.f.app.MakePlugins())
	lastObj := scip.Infinity
	if inc := sess.InitialIncumbent(); inc != nil {
		if sol, err := scip.DecodeSol(inc.Payload); err == nil && s.InjectSolution(sol) {
			lastObj = sol.Obj
		}
	}
	reportIncumbent := func() {
		inc := s.Incumbent()
		if inc == nil || inc.Obj >= lastObj-1e-12 {
			return
		}
		lastObj = inc.Obj
		if payload, err := scip.EncodeSol(inc); err == nil {
			sess.FoundSolution(ug.Solution{Obj: inc.Obj, Payload: payload})
		}
	}
	ship := func(nsp *scip.Subprob) {
		payload, err := scip.EncodeSubprob(nsp)
		if err != nil {
			return
		}
		sess.ShipNode(ug.Subproblem{Depth: nsp.Depth, Bound: nsp.Bound, Payload: payload})
	}
	s.Poll = func(sv *scip.Solver) bool {
		reportIncumbent()
		cmd := sess.Poll(ug.StatusReport{
			Bound:    sv.BestBound(),
			Open:     sv.NumOpen(),
			Nodes:    sv.Stats.Nodes,
			RootTime: sv.Stats.RootTime,
		})
		for _, sol := range cmd.Solutions {
			if dsol, err := scip.DecodeSol(sol.Payload); err == nil {
				s.InjectSolution(dsol)
				if dsol.Obj < lastObj {
					lastObj = dsol.Obj
				}
			}
		}
		if cmd.ExtractAll {
			for _, nsp := range sv.ExtractAllOpen() {
				ship(nsp)
			}
			return false
		}
		if cmd.WantNode {
			if nsp := sv.ExtractBestOpen(); nsp != nil {
				ship(nsp)
			}
		}
		return !cmd.Stop
	}
	st := s.SolveSubprob(sp)
	reportIncumbent()
	return ug.Outcome{
		Completed:    st == scip.StatusOptimal || st == scip.StatusInfeasible,
		Nodes:        s.Stats.Nodes,
		OpenLeft:     s.NumOpen(),
		RootTime:     s.Stats.RootTime,
		LPIterations: s.Stats.LPIterations,
		CutsAdded:    s.Stats.CutsAdded,
		Phases: ug.PhaseTimes{
			LP:          s.Stats.Phases.LP,
			Relax:       s.Stats.Phases.Relax,
			Separation:  s.Stats.Phases.Separation,
			Heuristics:  s.Stats.Phases.Heuristics,
			Propagation: s.Stats.Phases.Propagation,
		},
	}
}

// SolveParallel is the one-call entry point: build the factory, run UG.
func SolveParallel(app App, cfg ug.Config) (*ug.Result, *Factory, error) {
	f := NewFactory(app)
	res, err := ug.Run(f, cfg)
	return res, f, err
}

// SolveWithPresolved is SolveParallel over an already-presolved model
// (see Presolve/NewPresolvedFactory): ug.Run starts from prob and
// offset directly, bypassing GlobalPresolve's reduction phase. This is
// the serving layer's cache-hit path; the CLI paths keep using
// SolveParallel and are byte-identical in traces.
func SolveWithPresolved(app App, prob *scip.Prob, offset float64, cfg ug.Config) (*ug.Result, *Factory, error) {
	f := NewPresolvedFactory(app, prob, offset)
	res, err := ug.Run(f, cfg)
	return res, f, err
}

// SolveSequential runs the plain customized solver (no UG) — the
// baseline the paper's tables compare against.
func SolveSequential(app App, set scip.Settings) (*scip.Solver, scip.Status, float64) {
	return SolveSequentialTraced(app, set, nil)
}

// SolveSequentialTraced is SolveSequential with an obs tracer attached
// to the base solver before the solve starts, so the per-node scip.node
// event stream covers the whole run. trace may be nil (no tracing).
func SolveSequentialTraced(app App, set scip.Settings, trace *obs.Tracer) (*scip.Solver, scip.Status, float64) {
	f := NewFactory(app)
	if _, _, err := f.GlobalPresolve(); err != nil {
		panic(err)
	}
	s := scip.NewSolver(f.presolved, set, f.app.MakePlugins())
	s.Trace = trace
	st := s.Solve()
	return s, st, f.objOffset
}
