package core

import (
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/ug"
	netcomm "repro/internal/ug/comm/net"
)

// NetRun describes a process's role in a distributed (multi-process)
// solve over the comm/net transport. Exactly one of the roles applies:
// a coordinator listens (Listen non-empty, or Procs > 0 for the
// self-spawning single-machine mode) and a worker dials (Connect
// non-empty, with a Rank).
type NetRun struct {
	// Listen is the coordinator's rendezvous address ("host:port", or
	// ":0" for an OS-assigned port).
	Listen string
	// Connect is the coordinator address a worker process dials.
	Connect string
	// Rank is this worker process's rank (1-based).
	Rank int
	// Procs, when > 0, makes the coordinator spawn that many worker
	// processes of its own executable on the local machine — the
	// single-machine convenience mode. It overrides ug.Config.Workers.
	Procs int
	// WorkerArgs are the command-line arguments (instance selection,
	// mode flags) passed to each self-spawned worker, before the
	// -net-connect/-rank pair the spawner appends.
	WorkerArgs []string
	// Seed seeds the transport's retry jitter.
	Seed int64
	// Trace receives a worker's transport events (the coordinator's
	// tracer is taken from ug.Config.Trace instead). May be nil.
	Trace *obs.Tracer
	// Metrics receives a worker endpoint's transport counters (the
	// coordinator's registry is taken from ug.Config.Metrics). May be nil.
	Metrics *obs.Registry
	// WorkerTraceBase, when non-empty, makes the self-spawning
	// coordinator pass each worker `-trace <WorkerTraceBase>.rank<N>`,
	// so a -net-procs run leaves one JSONL trace per process — the
	// inputs `ugtrace -merge` joins into a global causal timeline.
	WorkerTraceBase string
	// Bus is this process's live telemetry bus (the tee sink its tracer
	// writes through); the stall watchdog subscribes to it. May be nil,
	// which disables the watchdog.
	Bus *obs.Bus
	// Watchdog, when > 0, arms a stall watchdog for the duration of the
	// solve: a quiet window of this length with no progress events
	// (dispatch/outcome/status/incumbent/…) emits a `watchdog.stall`
	// trace event and writes a goroutine dump to StallDumpPath. Off by
	// default so deterministic-replay runs are untouched.
	Watchdog time.Duration
	// StallDumpPath is where the watchdog writes its goroutine dump
	// (conventionally `<trace>.stall-goroutines`).
	StallDumpPath string
	// Capture, when armed, is this process's post-mortem bundle writer:
	// watchdog stalls, transport pump panics, worker-loop panics and
	// error returns all capture through it. (The coordinator's solve-path
	// triggers run through ug.Config.Capture — pass the same capturer.)
	Capture *obs.Capturer
	// WorkerForensicsDir, when non-empty, makes the self-spawning
	// coordinator pass each worker `-forensics <dir>`, so every process
	// of a -net-procs run drops its bundles in one shared directory
	// (bundle names embed the pid, so processes never collide).
	WorkerForensicsDir string
	// Fault is the test-only fault-injection plan for a worker's
	// transport endpoint (nil disables injection); the smoke tests use
	// it to stall a solve on purpose.
	Fault *netcomm.FaultPlan
	// Cancel, when non-nil, requests a graceful wind-down once closed
	// (the CLIs close it on SIGINT/SIGTERM). On a worker the comm is
	// closed after a short grace window — the window lets a coordinator
	// that received the same signal drive the ordinary stop protocol
	// first, so outcomes are reported instead of appearing as peer loss.
	// On the coordinator side pass the same channel via ug.Config.Cancel.
	Cancel <-chan struct{}
}

// workerCancelGrace is how long an interrupted worker waits for the
// coordinator-driven stop (the coordinator usually received the same
// signal and interrupts every solver cleanly) before unilaterally
// closing its comm. Either way the worker exits gracefully with a
// flushed trace.
const workerCancelGrace = 2 * time.Second

// Coordinator reports whether this process plays the coordinator role.
func (nr NetRun) Coordinator() bool { return nr.Listen != "" || nr.Procs > 0 }

// Worker reports whether this process plays a worker role.
func (nr NetRun) Worker() bool { return nr.Connect != "" }

// RunNetWorker is a worker process's whole life: presolve the instance
// locally (each process owns its copy — subproblem payloads, not the
// model, cross the wire), dial the coordinator, serve subproblems until
// termination, and hang up. It returns when the coordinator terminates
// the run or the transport reports the coordinator gone.
func RunNetWorker(app App, nr NetRun) (err error) {
	// Both failure edges of a worker process leave a forensics bundle:
	// a panic anywhere below (captured, bundled, rethrown) and an error
	// return (bundled on the way out).
	defer nr.Capture.CapturePanic("net.worker")
	defer func() {
		if err != nil && nr.Capture.Armed() {
			_, _ = nr.Capture.WriteBundle("error", err.Error())
		}
	}()
	if !nr.Worker() {
		return fmt.Errorf("core: RunNetWorker needs a -net-connect address")
	}
	if nr.Rank < 1 {
		return fmt.Errorf("core: worker rank must be >= 1, got %d", nr.Rank)
	}
	f := NewFactory(app)
	if _, _, err := f.GlobalPresolve(); err != nil {
		return fmt.Errorf("core: worker presolve: %w", err)
	}
	c, err := netcomm.Dial(nr.Connect, nr.Rank, netcomm.Options{
		Seed: nr.Seed, Trace: nr.Trace, Metrics: nr.Metrics,
		Fault: nr.Fault, Capture: nr.Capture,
	})
	if err != nil {
		return err
	}
	// The watchdog arms after the rendezvous: dial retries can legally
	// take longer than the quiet window, and the trace opener invariant
	// (comm.connect first) must hold.
	wd := startWatchdog(nr, nr.Trace)
	if nr.Cancel != nil {
		done := make(chan struct{})
		defer close(done)
		go func() {
			select {
			case <-nr.Cancel:
			case <-done:
				return
			}
			t := time.NewTimer(workerCancelGrace)
			defer t.Stop()
			select {
			case <-t.C:
				// The coordinator did not stop us within the grace window;
				// close the comm ourselves. Recv unblocks with a synthesized
				// termination and the worker unwinds as if the coordinator
				// were gone.
				_ = c.Close()
			case <-done:
			}
		}()
	}
	ug.RunWorker(nr.Rank, c, f, nr.Trace)
	wd.Stop()
	return c.Close()
}

// startWatchdog arms the stall watchdog described by nr (tr is the
// process's tracer: nr.Trace on a worker, cfg.Trace on the
// coordinator), returning nil — a safe no-op for Stop — when nr does
// not request one.
func startWatchdog(nr NetRun, tr *obs.Tracer) *obs.Watchdog {
	if nr.Watchdog <= 0 {
		return nil
	}
	return obs.StartWatchdog(obs.WatchdogConfig{
		Bus:      nr.Bus,
		Tracer:   tr,
		Quiet:    nr.Watchdog,
		DumpPath: nr.StallDumpPath,
		Capture:  nr.Capture,
	})
}

// SolveNetParallel is SolveParallel's distributed-coordinator variant:
// it binds the rendezvous port, optionally self-spawns nr.Procs worker
// processes (re-invoking this executable with nr.WorkerArgs plus
// -net-connect/-rank), waits for the full roster, and runs the UG
// coordination loop over the TCP transport. The transport inherits
// cfg.Trace and cfg.Metrics, so comm.connect/heartbeat events and
// transfer-byte counters land in the same trace/stats pipeline as the
// in-process runs.
func SolveNetParallel(app App, cfg ug.Config, nr NetRun) (*ug.Result, *Factory, error) {
	addr := nr.Listen
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := netcomm.Listen(addr)
	if err != nil {
		return nil, nil, err
	}
	if nr.Procs > 0 {
		cfg.Workers = nr.Procs
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}

	var procs []*exec.Cmd
	killAll := func() {
		for _, p := range procs {
			_ = p.Process.Kill()
			_ = p.Wait()
		}
	}
	if nr.Procs > 0 {
		exe, err := os.Executable()
		if err != nil {
			_ = ln.Close()
			return nil, nil, fmt.Errorf("core: self-spawn: %w", err)
		}
		for rank := 1; rank <= nr.Procs; rank++ {
			args := append([]string{}, nr.WorkerArgs...)
			if nr.WorkerTraceBase != "" {
				args = append(args, "-trace", fmt.Sprintf("%s.rank%d", nr.WorkerTraceBase, rank))
			}
			if nr.Watchdog > 0 {
				// Each worker process arms its own watchdog over its own
				// bus/trace, so a stall anywhere in the roster leaves a
				// stall event and goroutine dump on that rank.
				args = append(args, "-watchdog", nr.Watchdog.String())
			}
			if nr.WorkerForensicsDir != "" {
				args = append(args, "-forensics", nr.WorkerForensicsDir)
			}
			args = append(args, "-net-connect", ln.Addr(), "-rank", strconv.Itoa(rank))
			cmd := exec.Command(exe, args...)
			// Workers write nothing in normal operation; route what they
			// do write (errors) to stderr so the coordinator's stdout
			// stays machine-readable.
			cmd.Stdout = os.Stderr
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				killAll()
				_ = ln.Close()
				return nil, nil, fmt.Errorf("core: spawn worker %d: %w", rank, err)
			}
			procs = append(procs, cmd)
		}
	}

	c, err := ln.Rendezvous(cfg.Workers+1, netcomm.Options{
		Seed:    nr.Seed,
		Trace:   cfg.Trace,
		Metrics: cfg.Metrics,
		Capture: nr.Capture,
	})
	if err != nil {
		killAll()
		return nil, nil, fmt.Errorf("core: rendezvous: %w", err)
	}
	cfg.Comm = c
	cfg.RemoteWorkers = true

	f := NewFactory(app)
	wd := startWatchdog(nr, cfg.Trace)
	res, err := ug.Run(f, cfg)
	wd.Stop()
	// Close drains the termination frames to the workers and says
	// goodbye; the workers exit on their own after that.
	_ = c.Close()
	for i, p := range procs {
		if werr := p.Wait(); werr != nil && err == nil {
			err = fmt.Errorf("core: worker process %d: %w", i+1, werr)
		}
	}
	return res, f, err
}
