package linalg

import (
	"errors"
	"math"

	"repro/internal/num"
)

// ErrSingular is returned when a linear system has a (numerically)
// singular coefficient matrix.
var ErrSingular = errors.New("linalg: singular matrix")

// LU holds an LU factorization with partial pivoting of a square matrix.
type LU struct {
	n    int
	lu   []float64
	perm []int
}

// FactorLU factorizes a dense row-major n×n matrix with partial pivoting.
func FactorLU(n int, m []float64) (*LU, error) {
	lu := make([]float64, n*n)
	copy(lu, m)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for col := 0; col < n; col++ {
		// Pivot selection.
		p := col
		best := math.Abs(lu[col*n+col])
		for r := col + 1; r < n; r++ {
			if a := math.Abs(lu[r*n+col]); a > best {
				best = a
				p = r
			}
		}
		if best < 1e-13 {
			return nil, ErrSingular
		}
		if p != col {
			for k := 0; k < n; k++ {
				lu[p*n+k], lu[col*n+k] = lu[col*n+k], lu[p*n+k]
			}
			perm[p], perm[col] = perm[col], perm[p]
		}
		piv := lu[col*n+col]
		for r := col + 1; r < n; r++ {
			f := lu[r*n+col] / piv
			lu[r*n+col] = f
			if num.ExactZero(f) { // exact-zero multiplier: row untouched
				continue
			}
			for k := col + 1; k < n; k++ {
				lu[r*n+k] -= f * lu[col*n+k]
			}
		}
	}
	return &LU{n: n, lu: lu, perm: perm}, nil
}

// Solve solves M x = b.
func (f *LU) Solve(b []float64) []float64 {
	n := f.n
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.perm[i]]
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		v := x[i]
		for k := 0; k < i; k++ {
			v -= f.lu[i*n+k] * x[k]
		}
		x[i] = v
	}
	// Backward substitution.
	for i := n - 1; i >= 0; i-- {
		v := x[i]
		for k := i + 1; k < n; k++ {
			v -= f.lu[i*n+k] * x[k]
		}
		x[i] = v / f.lu[i*n+i]
	}
	return x
}

// SolveDense solves M x = b for a dense row-major square matrix in one
// call, factorizing internally.
func SolveDense(n int, m, b []float64) ([]float64, error) {
	f, err := FactorLU(n, m)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}
