package linalg

import (
	"errors"
	"math"

	"repro/internal/num"
)

// ErrNotPositiveDefinite is returned by Cholesky when the matrix has a
// non-positive pivot, i.e. it is not (numerically) positive definite.
var ErrNotPositiveDefinite = errors.New("linalg: matrix not positive definite")

// Chol holds a lower-triangular Cholesky factor L with S = L Lᵀ.
type Chol struct {
	N int
	L []float64 // row-major lower triangle (full storage, upper part zero)
}

// Cholesky factorizes a symmetric positive definite matrix. It returns
// ErrNotPositiveDefinite if a pivot falls below tol (a relative floor
// derived from the matrix scale).
func Cholesky(s *Sym) (*Chol, error) {
	n := s.N
	l := make([]float64, n*n)
	scale := s.MaxAbs()
	if num.ExactZero(scale) { // all-zero matrix: no positive pivot exists
		return nil, ErrNotPositiveDefinite
	}
	tol := 1e-13 * scale
	for j := 0; j < n; j++ {
		d := s.A[j*n+j]
		for k := 0; k < j; k++ {
			d -= l[j*n+k] * l[j*n+k]
		}
		if d <= tol {
			return nil, ErrNotPositiveDefinite
		}
		ljj := math.Sqrt(d)
		l[j*n+j] = ljj
		for i := j + 1; i < n; i++ {
			v := s.A[i*n+j]
			for k := 0; k < j; k++ {
				v -= l[i*n+k] * l[j*n+k]
			}
			l[i*n+j] = v / ljj
		}
	}
	return &Chol{N: n, L: l}, nil
}

// Solve solves S x = b given the factorization of S.
func (c *Chol) Solve(b []float64) []float64 {
	n := c.N
	// Forward: L z = b.
	z := make([]float64, n)
	for i := 0; i < n; i++ {
		v := b[i]
		for k := 0; k < i; k++ {
			v -= c.L[i*n+k] * z[k]
		}
		z[i] = v / c.L[i*n+i]
	}
	// Backward: Lᵀ x = z.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		v := z[i]
		for k := i + 1; k < n; k++ {
			v -= c.L[k*n+i] * x[k]
		}
		x[i] = v / c.L[i*n+i]
	}
	return x
}

// LogDet returns log det S = 2 Σ log L_ii.
func (c *Chol) LogDet() float64 {
	var ld float64
	for i := 0; i < c.N; i++ {
		ld += math.Log(c.L[i*c.N+i])
	}
	return 2 * ld
}

// Inverse returns S⁻¹ as a symmetric matrix by solving against unit
// vectors. O(n³) but adequate for the matrix orders in this study.
func (c *Chol) Inverse() *Sym {
	n := c.N
	inv := NewSym(n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		e[j] = 1
		col := c.Solve(e)
		e[j] = 0
		for i := 0; i < n; i++ {
			inv.A[i*n+j] = col[i]
		}
	}
	// Symmetrize to wash out round-off asymmetry.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := 0.5 * (inv.A[i*n+j] + inv.A[j*n+i])
			inv.A[i*n+j] = v
			inv.A[j*n+i] = v
		}
	}
	return inv
}

// IsPSD reports whether S + shift*I is positive semidefinite, tested via
// Cholesky of S + (shift+jitter)*I with a tiny jitter for semidefinite
// boundary cases.
func IsPSD(s *Sym, shift float64) bool {
	t := s.Clone()
	jitter := 1e-9 * (1 + s.MaxAbs())
	for i := 0; i < t.N; i++ {
		t.A[i*t.N+i] += shift + jitter
	}
	_, err := Cholesky(t)
	return err == nil
}
