package linalg

import (
	"math"
	"sort"
)

// EigenResult holds an eigendecomposition S = V diag(Values) Vᵀ with
// eigenvalues in ascending order and eigenvectors as the columns of V
// (Vectors[k] is the k-th eigenvector, matching Values[k]).
type EigenResult struct {
	Values  []float64
	Vectors [][]float64
}

// Eigen computes the full eigendecomposition of a symmetric matrix with
// the cyclic Jacobi method. Jacobi is slower than tridiagonalization-based
// methods but is simple, numerically robust and unconditionally
// convergent — the right trade-off for the matrix orders (≤ ~200) used by
// the eigenvector-cut separator and the SDP barrier solver.
func Eigen(s *Sym) *EigenResult {
	n := s.N
	a := make([]float64, n*n)
	copy(a, s.A)
	// v starts as identity; accumulates rotations.
	v := make([]float64, n*n)
	for i := 0; i < n; i++ {
		v[i*n+i] = 1
	}
	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		// Off-diagonal Frobenius norm.
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += a[i*n+j] * a[i*n+j]
			}
		}
		scale := 1.0
		for i := 0; i < n; i++ {
			if d := math.Abs(a[i*n+i]); d > scale {
				scale = d
			}
		}
		if math.Sqrt(off) <= 1e-14*float64(n)*scale {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a[p*n+q]
				if math.Abs(apq) <= 1e-300 {
					continue
				}
				app := a[p*n+p]
				aqq := a[q*n+q]
				theta := (aqq - app) / (2 * apq)
				var t float64
				if math.Abs(theta) > 1e7 {
					t = 1 / (2 * theta)
				} else {
					t = math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				}
				c := 1 / math.Sqrt(t*t+1)
				sn := t * c
				tau := sn / (1 + c)
				// Update a: rows/cols p and q.
				a[p*n+p] = app - t*apq
				a[q*n+q] = aqq + t*apq
				a[p*n+q] = 0
				a[q*n+p] = 0
				for k := 0; k < n; k++ {
					if k == p || k == q {
						continue
					}
					akp := a[k*n+p]
					akq := a[k*n+q]
					a[k*n+p] = akp - sn*(akq+tau*akp)
					a[k*n+q] = akq + sn*(akp-tau*akq)
					a[p*n+k] = a[k*n+p]
					a[q*n+k] = a[k*n+q]
				}
				// Accumulate rotation into v.
				for k := 0; k < n; k++ {
					vkp := v[k*n+p]
					vkq := v[k*n+q]
					v[k*n+p] = vkp - sn*(vkq+tau*vkp)
					v[k*n+q] = vkq + sn*(vkp-tau*vkq)
				}
			}
		}
	}
	res := &EigenResult{
		Values:  make([]float64, n),
		Vectors: make([][]float64, n),
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	diag := make([]float64, n)
	for i := 0; i < n; i++ {
		diag[i] = a[i*n+i]
	}
	sort.Slice(idx, func(x, y int) bool { return diag[idx[x]] < diag[idx[y]] })
	for k, i := range idx {
		res.Values[k] = diag[i]
		vec := make([]float64, n)
		for r := 0; r < n; r++ {
			vec[r] = v[r*n+i]
		}
		res.Vectors[k] = vec
	}
	return res
}

// MinEigen returns the smallest eigenvalue and a corresponding unit
// eigenvector. It is the workhorse of the Sherali–Fraticelli eigenvector
// cut: a negative smallest eigenvalue certifies SDP infeasibility of the
// current point and its eigenvector yields the violated valid inequality.
func MinEigen(s *Sym) (float64, []float64) {
	e := Eigen(s)
	return e.Values[0], e.Vectors[0]
}
