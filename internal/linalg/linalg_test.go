package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randSym(rng *rand.Rand, n int) *Sym {
	s := NewSym(n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			s.Set(i, j, rng.NormFloat64())
		}
	}
	return s
}

// randSPD returns M Mᵀ + I, which is symmetric positive definite.
func randSPD(rng *rand.Rand, n int) *Sym {
	m := make([]float64, n*n)
	for i := range m {
		m[i] = rng.NormFloat64()
	}
	s := NewSym(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc float64
			for k := 0; k < n; k++ {
				acc += m[i*n+k] * m[j*n+k]
			}
			s.A[i*n+j] = acc
		}
		s.A[i*n+i] += 1
	}
	return s
}

func TestSymSetAt(t *testing.T) {
	s := NewSym(3)
	s.Set(0, 2, 4.5)
	if s.At(0, 2) != 4.5 || s.At(2, 0) != 4.5 {
		t.Fatalf("Set did not symmetrize: %v %v", s.At(0, 2), s.At(2, 0))
	}
}

func TestSymFromDenseSymmetrizes(t *testing.T) {
	m := []float64{1, 2, 4, 3}
	s := SymFromDense(2, m)
	if s.At(0, 1) != 3 || s.At(1, 0) != 3 {
		t.Fatalf("expected symmetrized off-diagonal 3, got %v %v", s.At(0, 1), s.At(1, 0))
	}
}

func TestSymMulVec(t *testing.T) {
	s := NewSym(2)
	s.Set(0, 0, 2)
	s.Set(0, 1, 1)
	s.Set(1, 1, 3)
	y := s.MulVec([]float64{1, 2})
	if y[0] != 4 || y[1] != 7 {
		t.Fatalf("MulVec wrong: %v", y)
	}
}

func TestSymQuadForm(t *testing.T) {
	s := Identity(3, 2)
	if q := s.QuadForm([]float64{1, 2, 3}); math.Abs(q-28) > 1e-12 {
		t.Fatalf("QuadForm = %v, want 28", q)
	}
}

func TestSymTraceInner(t *testing.T) {
	s := Identity(4, 3)
	if s.Trace() != 12 {
		t.Fatalf("Trace = %v", s.Trace())
	}
	if ip := s.InnerProd(Identity(4, 1)); ip != 12 {
		t.Fatalf("InnerProd = %v", ip)
	}
}

func TestOuterAdd(t *testing.T) {
	s := NewSym(2)
	s.OuterAdd(2, []float64{1, 3})
	if s.At(0, 0) != 2 || s.At(0, 1) != 6 || s.At(1, 1) != 18 {
		t.Fatalf("OuterAdd wrong: %+v", s.A)
	}
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(12)
		s := randSPD(rng, n)
		c, err := Cholesky(s)
		if err != nil {
			t.Fatalf("Cholesky failed on SPD matrix: %v", err)
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := s.MulVec(x)
		got := c.Solve(b)
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-8 {
				t.Fatalf("trial %d: solve mismatch at %d: %v vs %v", trial, i, got[i], x[i])
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	s := NewSym(2)
	s.Set(0, 0, 1)
	s.Set(1, 1, -1)
	if _, err := Cholesky(s); err == nil {
		t.Fatal("expected ErrNotPositiveDefinite")
	}
}

func TestCholeskyLogDet(t *testing.T) {
	s := Identity(3, 2)
	c, err := Cholesky(s)
	if err != nil {
		t.Fatal(err)
	}
	want := 3 * math.Log(2)
	if math.Abs(c.LogDet()-want) > 1e-12 {
		t.Fatalf("LogDet = %v, want %v", c.LogDet(), want)
	}
}

func TestCholeskyInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := randSPD(rng, 6)
	c, err := Cholesky(s)
	if err != nil {
		t.Fatal(err)
	}
	inv := c.Inverse()
	// S * S⁻¹ ≈ I.
	for i := 0; i < 6; i++ {
		e := make([]float64, 6)
		e[i] = 1
		col := inv.MulVec(e)
		res := s.MulVec(col)
		for j := 0; j < 6; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(res[j]-want) > 1e-7 {
				t.Fatalf("inverse check failed at (%d,%d): %v", i, j, res[j])
			}
		}
	}
}

func TestIsPSD(t *testing.T) {
	if !IsPSD(Identity(3, 1), 0) {
		t.Fatal("identity should be PSD")
	}
	s := NewSym(2)
	s.Set(0, 0, -1)
	if IsPSD(s, 0) {
		t.Fatal("negative diagonal should not be PSD")
	}
	if !IsPSD(s, 2) {
		t.Fatal("shift should make it PSD")
	}
}

func TestEigenDiagonal(t *testing.T) {
	s := NewSym(3)
	s.Set(0, 0, 3)
	s.Set(1, 1, -1)
	s.Set(2, 2, 2)
	e := Eigen(s)
	want := []float64{-1, 2, 3}
	for i, v := range want {
		if math.Abs(e.Values[i]-v) > 1e-12 {
			t.Fatalf("eigenvalue %d = %v, want %v", i, e.Values[i], v)
		}
	}
}

func TestEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	s := NewSym(2)
	s.Set(0, 0, 2)
	s.Set(0, 1, 1)
	s.Set(1, 1, 2)
	e := Eigen(s)
	if math.Abs(e.Values[0]-1) > 1e-12 || math.Abs(e.Values[1]-3) > 1e-12 {
		t.Fatalf("eigenvalues %v, want [1 3]", e.Values)
	}
}

// Property: S v_k = λ_k v_k and the eigenvectors are orthonormal, and the
// decomposition reconstructs the matrix.
func TestEigenPropertyQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		s := randSym(r, n)
		e := Eigen(s)
		scale := 1 + s.MaxAbs()
		for k := 0; k < n; k++ {
			sv := s.MulVec(e.Vectors[k])
			for i := 0; i < n; i++ {
				if math.Abs(sv[i]-e.Values[k]*e.Vectors[k][i]) > 1e-8*scale {
					return false
				}
			}
			if math.Abs(Norm2(e.Vectors[k])-1) > 1e-9 {
				return false
			}
			for j := k + 1; j < n; j++ {
				if math.Abs(Dot(e.Vectors[k], e.Vectors[j])) > 1e-9 {
					return false
				}
			}
		}
		// Ascending order.
		for k := 1; k < n; k++ {
			if e.Values[k] < e.Values[k-1]-1e-12*scale {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMinEigenAgreesWithPSD(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(8)
		s := randSym(rng, n)
		lam, v := MinEigen(s)
		if q := s.QuadForm(v); math.Abs(q-lam) > 1e-7*(1+s.MaxAbs()) {
			t.Fatalf("vᵀSv = %v but λ_min = %v", q, lam)
		}
		if lam > 1e-7 && !IsPSD(s, 0) {
			t.Fatalf("λ_min = %v > 0 but IsPSD says no", lam)
		}
		if lam < -1e-6 && IsPSD(s, 0) {
			t.Fatalf("λ_min = %v < 0 but IsPSD says yes", lam)
		}
	}
}

func TestLUSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(12)
		m := make([]float64, n*n)
		for i := range m {
			m[i] = rng.NormFloat64()
		}
		for i := 0; i < n; i++ {
			m[i*n+i] += 3 // keep well-conditioned
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				b[i] += m[i*n+j] * x[j]
			}
		}
		got, err := SolveDense(n, m, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-7 {
				t.Fatalf("trial %d: LU solve mismatch at %d", trial, i)
			}
		}
	}
}

func TestLUSingular(t *testing.T) {
	m := []float64{1, 2, 2, 4}
	if _, err := FactorLU(2, m); err == nil {
		t.Fatal("expected ErrSingular")
	}
}

func TestVectorHelpers(t *testing.T) {
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Fatal("Dot wrong")
	}
	if math.Abs(Norm2([]float64{3, 4})-5) > 1e-15 {
		t.Fatal("Norm2 wrong")
	}
	if NormInf([]float64{-3, 2}) != 3 {
		t.Fatal("NormInf wrong")
	}
	y := []float64{1, 1}
	Axpy(2, []float64{1, 2}, y)
	if y[0] != 3 || y[1] != 5 {
		t.Fatal("Axpy wrong")
	}
}
