// Package linalg provides the dense linear-algebra substrate used by the
// SDP solver and the eigenvector-cut separator: symmetric matrices,
// Cholesky factorization, Jacobi eigen-decomposition and dense linear
// solves. It replaces the LAPACK/Mosek dependency of the original
// SCIP-SDP stack with a small, self-contained implementation sufficient
// for the instance sizes exercised in this study.
package linalg

import (
	"fmt"
	"math"
)

// Sym is a dense symmetric n×n matrix stored in full (row-major).
// Only the routines in this package rely on symmetry; the full storage
// keeps indexing trivial and cache-friendly for the small orders
// (n ≤ a few hundred) that appear in the MISDP test sets.
type Sym struct {
	N int
	A []float64 // len N*N, A[i*N+j]
}

// NewSym returns the zero symmetric matrix of order n.
func NewSym(n int) *Sym {
	return &Sym{N: n, A: make([]float64, n*n)}
}

// SymFromDense builds a Sym from a row-major square matrix, symmetrizing
// it as (M+Mᵀ)/2.
func SymFromDense(n int, m []float64) *Sym {
	if len(m) != n*n {
		panic(fmt.Sprintf("linalg: SymFromDense length %d != %d", len(m), n*n))
	}
	s := NewSym(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s.A[i*n+j] = 0.5 * (m[i*n+j] + m[j*n+i])
		}
	}
	return s
}

// At returns element (i,j).
func (s *Sym) At(i, j int) float64 { return s.A[i*s.N+j] }

// Set assigns element (i,j) and (j,i).
func (s *Sym) Set(i, j int, v float64) {
	s.A[i*s.N+j] = v
	s.A[j*s.N+i] = v
}

// Clone returns a deep copy.
func (s *Sym) Clone() *Sym {
	c := NewSym(s.N)
	copy(c.A, s.A)
	return c
}

// AddScaled adds alpha*t to s in place. Panics if orders differ.
func (s *Sym) AddScaled(alpha float64, t *Sym) {
	if s.N != t.N {
		panic("linalg: AddScaled order mismatch")
	}
	for i := range s.A {
		s.A[i] += alpha * t.A[i]
	}
}

// Scale multiplies every entry by alpha.
func (s *Sym) Scale(alpha float64) {
	for i := range s.A {
		s.A[i] *= alpha
	}
}

// MulVec computes y = S x.
func (s *Sym) MulVec(x []float64) []float64 {
	n := s.N
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := s.A[i*n : (i+1)*n]
		var acc float64
		for j, xv := range x {
			acc += row[j] * xv
		}
		y[i] = acc
	}
	return y
}

// QuadForm computes xᵀ S x.
func (s *Sym) QuadForm(x []float64) float64 {
	y := s.MulVec(x)
	return Dot(x, y)
}

// Trace returns the trace of S.
func (s *Sym) Trace() float64 {
	var t float64
	for i := 0; i < s.N; i++ {
		t += s.A[i*s.N+i]
	}
	return t
}

// InnerProd returns the Frobenius inner product ⟨S,T⟩ = Σ_ij S_ij T_ij.
func (s *Sym) InnerProd(t *Sym) float64 {
	if s.N != t.N {
		panic("linalg: InnerProd order mismatch")
	}
	var acc float64
	for i := range s.A {
		acc += s.A[i] * t.A[i]
	}
	return acc
}

// MaxAbs returns the largest absolute entry.
func (s *Sym) MaxAbs() float64 {
	var m float64
	for _, v := range s.A {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Identity returns alpha*I of order n.
func Identity(n int, alpha float64) *Sym {
	s := NewSym(n)
	for i := 0; i < n; i++ {
		s.A[i*n+i] = alpha
	}
	return s
}

// Dot returns the inner product of two vectors of equal length.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	var acc float64
	for i, v := range a {
		acc += v * b[i]
	}
	return acc
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var acc float64
	for _, x := range v {
		acc += x * x
	}
	return math.Sqrt(acc)
}

// NormInf returns the maximum absolute entry of v.
func NormInf(v []float64) float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64) {
	for i, v := range x {
		y[i] += alpha * v
	}
}

// OuterAdd adds alpha * v vᵀ to S in place.
func (s *Sym) OuterAdd(alpha float64, v []float64) {
	n := s.N
	if len(v) != n {
		panic("linalg: OuterAdd length mismatch")
	}
	for i := 0; i < n; i++ {
		av := alpha * v[i]
		for j := 0; j < n; j++ {
			s.A[i*n+j] += av * v[j]
		}
	}
}
