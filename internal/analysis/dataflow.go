package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the value-level dataflow layer under walldet, tracekind
// and (via the shared control-flow driver) ctxdeadline and chanlock. It
// adds to the boolean summaries of summary.go an intraprocedural
// abstract interpretation over go/ast+go/types: every local variable
// carries an element of a small taint lattice, statements are transfer
// functions, and control-flow merge points join environments. Each
// function's visible behavior is condensed into a taintSummary
// (intrinsic return taint, parameter→return flow, parameter→sink flow)
// and the summaries compose through the call graph in the same
// fixed-point style as computeSummaries, so a wall-clock read three
// calls away from an Emit is still attributed to the emit site.

// Taint is a bitset lattice element: the bottom is 0 (untainted), join
// is bitwise OR. The low bits are intrinsic taint sources; the
// remaining bits are synthetic per-parameter markers used to derive
// param→return and param→sink summaries from a single walk (parameter
// i is seeded with paramBit(i), so any marker surviving to a return or
// a sink names the parameter it came from).
type Taint uint32

const (
	// TaintWall marks values derived from the wall clock
	// (time.Now/Since/Until and arithmetic on their results).
	TaintWall Taint = 1 << iota
	// TaintRand marks values derived from the unseeded math/rand
	// package-level generator.
	TaintRand
	// TaintMapOrder marks values whose identity depends on map
	// iteration order (keys/values bound by a range over a map).
	TaintMapOrder
)

// realTaints masks the intrinsic sources, excluding parameter markers.
const realTaints = TaintWall | TaintRand | TaintMapOrder

// maxTrackedParams bounds the synthetic parameter markers; parameters
// beyond it are conservatively untracked (no module function comes
// close).
const maxTrackedParams = 24

// paramBit returns the synthetic marker for parameter index i (the
// receiver is index 0 on methods), or 0 when out of range.
func paramBit(i int) Taint {
	if i < 0 || i >= maxTrackedParams {
		return 0
	}
	return TaintMapOrder << (1 + uint(i))
}

// describe renders the intrinsic bits for findings.
func (t Taint) describe() string {
	var parts []string
	if t&TaintWall != 0 {
		parts = append(parts, "wall-clock")
	}
	if t&TaintRand != 0 {
		parts = append(parts, "math/rand")
	}
	if t&TaintMapOrder != 0 {
		parts = append(parts, "map-iteration-order")
	}
	if len(parts) == 0 {
		return "untainted"
	}
	return strings.Join(parts, "+")
}

// SinkFlow records that taint arriving through a parameter reaches a
// determinism-sensitive sink inside the function (or one of its
// callees): callers must treat the argument position as flowing into
// the trace/checkpoint.
type SinkFlow struct {
	// Param is the parameter index (receiver = 0 on methods).
	Param int
	// Sink describes the sink, e.g. `trace event field "Str" (comm.peerdown)`.
	Sink string
}

// taintSummary is the converged dataflow summary of one function.
type taintSummary struct {
	// ret joins the taint of every returned value: intrinsic bits for
	// taint generated inside, parameter markers for param→return flow.
	ret Taint
	// sinks is the set of param→sink flows visible at the boundary.
	sinks map[SinkFlow]bool
}

// taintSite is an intrinsic-taint value reaching a sink — the raw
// material of a walldet finding.
type taintSite struct {
	pos   token.Pos
	taint Taint  // intrinsic bits only
	sink  string // sink description
	via   string // callee name when the sink is inside a callee; "" if direct
}

// eventLitSite is one obs.Event composite literal, recorded for
// tracekind's schema cross-check.
type eventLitSite struct {
	pos        token.Pos
	kind       string        // resolved Kind constant; "" when not constant
	kindPos    token.Pos     // position of the Kind value (when present)
	kindLit    *ast.BasicLit // raw string literal Kind, for suggested fixes
	hasKind    bool
	positional bool // non-keyed literal (sets every field positionally)
	fields     []eventFieldSite
}

// eventFieldSite is one field set by an event literal.
type eventFieldSite struct {
	name string
	pos  token.Pos
}

// eventAssignSite is a post-literal field write (ev.Str = ...) on a
// variable whose event kind the interpreter resolved.
type eventAssignSite struct {
	pos   token.Pos
	kind  string // "" or "?" when the kind is unknown/ambiguous
	field string
}

// RetTaint returns the converged taint of the function's return values
// (intrinsic bits plus parameter markers); see paramBit.
func (n *FuncNode) RetTaint() Taint { return n.taint.ret }

// SinkFlows returns the converged param→sink flows in stable order.
func (n *FuncNode) SinkFlows() []SinkFlow {
	out := make([]SinkFlow, 0, len(n.taint.sinks))
	for sf := range n.taint.sinks {
		out = append(out, sf)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Param != out[j].Param {
			return out[i].Param < out[j].Param
		}
		return out[i].Sink < out[j].Sink
	})
	return out
}

// ---------------------------------------------------------------------------
// Control-flow driver
// ---------------------------------------------------------------------------

// flowState is one abstract environment of the forward statement
// walker. Clients implement the lattice (fork/merge) and the transfer
// functions (leaf/expr); flowStmt supplies the control flow: branches
// run on forks and merge back (the fall-through state is kept, so a
// must-analysis sees a conditionally-established fact as absent), and
// loop bodies run twice so facts created on one iteration are visible
// to the next.
type flowState interface {
	fork() flowState
	merge(flowState)
	// leaf transfers one non-control-flow statement. A *ast.RangeStmt
	// passed to leaf means its header only (range expression + loop
	// variable binding); the driver runs the body separately.
	leaf(ast.Stmt)
	// expr visits a bare control-flow expression (if/for/switch
	// conditions, case values).
	expr(ast.Expr)
}

// loopAware is an optional flowState extension: a client implementing
// it is told when the driver enters and leaves a loop body, bracketing
// the two body runs. hotalloc uses this to track syntactic loop depth
// without re-implementing the statement dispatch.
type loopAware interface {
	enterLoop()
	exitLoop()
}

// flowStmts runs the driver over a statement list.
func flowStmts(list []ast.Stmt, env flowState) {
	for _, st := range list {
		flowStmt(st, env)
	}
}

// flowStmt dispatches one statement: control flow here, everything else
// to the client's leaf transfer.
func flowStmt(st ast.Stmt, env flowState) {
	switch s := st.(type) {
	case *ast.BlockStmt:
		flowStmts(s.List, env)
	case *ast.IfStmt:
		if s.Init != nil {
			flowStmt(s.Init, env)
		}
		env.expr(s.Cond)
		then := env.fork()
		flowStmts(s.Body.List, then)
		if s.Else != nil {
			alt := env.fork()
			flowStmt(s.Else, alt)
			env.merge(alt)
		}
		env.merge(then)
	case *ast.ForStmt:
		if s.Init != nil {
			flowStmt(s.Init, env)
		}
		if s.Cond != nil {
			env.expr(s.Cond)
		}
		la, _ := env.(loopAware)
		if la != nil {
			la.enterLoop()
		}
		for i := 0; i < 2; i++ {
			it := env.fork()
			flowStmts(s.Body.List, it)
			if s.Post != nil {
				flowStmt(s.Post, it)
			}
			if s.Cond != nil {
				it.expr(s.Cond)
			}
			env.merge(it)
		}
		if la != nil {
			la.exitLoop()
		}
	case *ast.RangeStmt:
		env.leaf(s) // header: range expression + key/value binding
		la, _ := env.(loopAware)
		if la != nil {
			la.enterLoop()
		}
		for i := 0; i < 2; i++ {
			it := env.fork()
			flowStmts(s.Body.List, it)
			env.merge(it)
		}
		if la != nil {
			la.exitLoop()
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			flowStmt(s.Init, env)
		}
		if s.Tag != nil {
			env.expr(s.Tag)
		}
		flowClauses(s.Body, env)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			flowStmt(s.Init, env)
		}
		env.leaf(s.Assign)
		flowClauses(s.Body, env)
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			branch := env.fork()
			if cc.Comm != nil {
				flowStmt(cc.Comm, branch)
			}
			flowStmts(cc.Body, branch)
			env.merge(branch)
		}
	case *ast.LabeledStmt:
		flowStmt(s.Stmt, env)
	default:
		env.leaf(st)
	}
}

// flowClauses runs each case body on a fork and merges back.
func flowClauses(body *ast.BlockStmt, env flowState) {
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		branch := env.fork()
		for _, e := range cc.List {
			branch.expr(e)
		}
		flowStmts(cc.Body, branch)
		env.merge(branch)
	}
}

// ---------------------------------------------------------------------------
// Taint interpretation
// ---------------------------------------------------------------------------

// taintPropagators are non-module packages treated as pure data
// transformations: taint flows from arguments (and stdlib-typed
// receivers) through to results. Any other non-module call returns
// untainted data — deliberately an under-approximation, so a dial
// error does not drag the wall-clock deadline that timed it out into
// every error message (the over-approximate alternative drowns real
// findings in suppressions).
var taintPropagators = map[string]bool{
	"fmt": true, "strconv": true, "strings": true, "bytes": true,
	"math": true, "errors": true, "time": true, "sort": true,
	"unicode": true, "unicode/utf8": true,
}

// wallSources are the time package functions that read the wall clock.
var wallSources = map[string]bool{"Now": true, "Since": true, "Until": true}

// taintWalker is the per-function context shared by all forks of the
// environment during one walk.
type taintWalker struct {
	m       *Module
	n       *FuncNode
	info    *types.Info
	params  []types.Object // ordered; receiver first on methods
	results []types.Object // named results, for bare returns
	ret     Taint
	sinks   map[SinkFlow]bool
	// exempt marks the obs package itself: the tracer's stamping
	// (e.Wall = time.Now(), Seq, causal Clock/Orig) is the sanctioned
	// wall→trace path and must not become sink summaries that alarm
	// every Emit caller.
	exempt bool
}

// taintEnv maps local objects to taint; kinds tracks which event kind
// an obs.Event-typed local holds ("?" = joined conflicting kinds).
type taintEnv struct {
	w     *taintWalker
	vars  map[types.Object]Taint
	kinds map[types.Object]string
}

func (e *taintEnv) fork() flowState {
	vars := make(map[types.Object]Taint, len(e.vars))
	for k, v := range e.vars {
		vars[k] = v
	}
	kinds := make(map[types.Object]string, len(e.kinds))
	for k, v := range e.kinds {
		kinds[k] = v
	}
	return &taintEnv{w: e.w, vars: vars, kinds: kinds}
}

func (e *taintEnv) merge(other flowState) {
	o := other.(*taintEnv)
	for k, v := range o.vars {
		e.vars[k] |= v
	}
	for k, v := range o.kinds {
		if have, ok := e.kinds[k]; ok && have != v {
			e.kinds[k] = "?"
		} else {
			e.kinds[k] = v
		}
	}
}

func (e *taintEnv) expr(x ast.Expr) { e.eval(x) }

func (e *taintEnv) leaf(st ast.Stmt) {
	switch s := st.(type) {
	case *ast.AssignStmt:
		e.assign(s)
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				var t Taint
				var val ast.Expr
				switch {
				case len(vs.Values) == len(vs.Names):
					val = vs.Values[i]
				case len(vs.Values) == 1:
					val = vs.Values[0]
				}
				if val != nil {
					t = e.eval(val)
				}
				if obj := e.w.info.Defs[name]; obj != nil {
					e.vars[obj] = t
					e.trackKind(obj, val)
				}
			}
		}
	case *ast.ExprStmt:
		e.eval(s.X)
	case *ast.ReturnStmt:
		if len(s.Results) == 0 {
			for _, obj := range e.w.results {
				e.w.ret |= e.vars[obj]
			}
		}
		for _, r := range s.Results {
			e.w.ret |= e.eval(r)
		}
	case *ast.SendStmt:
		e.eval(s.Chan)
		e.eval(s.Value)
	case *ast.IncDecStmt:
		e.eval(s.X)
	case *ast.GoStmt:
		e.eval(s.Call)
	case *ast.DeferStmt:
		e.eval(s.Call)
	case *ast.RangeStmt:
		e.rangeHeader(s)
	}
}

// rangeHeader transfers the header of a range statement: the key and
// value of a map range are map-iteration-order tainted; every range
// inherits the taint of the ranged expression itself.
func (e *taintEnv) rangeHeader(s *ast.RangeStmt) {
	t := e.eval(s.X)
	keyT, valT := t, t
	if tv, ok := e.w.info.Types[s.X]; ok && tv.Type != nil {
		switch tv.Type.Underlying().(type) {
		case *types.Map:
			keyT |= TaintMapOrder
			valT |= TaintMapOrder
		case *types.Chan:
			valT = 0 // channel payloads are not modeled
		}
	}
	e.bindLoopVar(s.Key, keyT)
	e.bindLoopVar(s.Value, valT)
}

func (e *taintEnv) bindLoopVar(x ast.Expr, t Taint) {
	id, ok := x.(*ast.Ident)
	if !ok || id == nil || id.Name == "_" {
		return
	}
	if obj := e.w.info.Defs[id]; obj != nil {
		e.vars[obj] = t
	} else if obj := e.w.info.Uses[id]; obj != nil {
		e.vars[obj] = t
	}
}

// assign transfers one assignment: RHS taints are computed in order,
// then stored — strong updates on plain identifiers, weak (join)
// updates on fields and elements.
func (e *taintEnv) assign(s *ast.AssignStmt) {
	compound := s.Tok != token.ASSIGN && s.Tok != token.DEFINE
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		// Multi-value: one joined taint for every LHS (per-result
		// precision is not worth a tuple lattice here).
		t := e.eval(s.Rhs[0])
		for _, l := range s.Lhs {
			e.assignTo(l, nil, t, compound)
		}
		return
	}
	for i, l := range s.Lhs {
		var t Taint
		var val ast.Expr
		if i < len(s.Rhs) {
			val = s.Rhs[i]
			t = e.eval(val)
		}
		e.assignTo(l, val, t, compound)
		if id, ok := l.(*ast.Ident); ok && !compound {
			if obj := e.objOf(id); obj != nil {
				e.trackKind(obj, val)
			}
		}
	}
}

func (e *taintEnv) objOf(id *ast.Ident) types.Object {
	if obj := e.w.info.Defs[id]; obj != nil {
		return obj
	}
	return e.w.info.Uses[id]
}

// trackKind remembers which event kind an obs.Event-typed variable was
// initialized with, so later `ev.Field = x` writes can be checked
// against the schema.
func (e *taintEnv) trackKind(obj types.Object, val ast.Expr) {
	if obj == nil || obj.Type() == nil || !isEventType(obj.Type()) {
		delete(e.kinds, obj)
		return
	}
	lit := eventLitOf(val)
	if lit == nil {
		e.kinds[obj] = "?"
		return
	}
	kind := "?"
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Kind" {
			if k, _, isConst := resolveKind(e.w.info, kv.Value); isConst {
				kind = k
			}
		}
	}
	e.kinds[obj] = kind
}

// eventLitOf unwraps ev := obs.Event{...} / &obs.Event{...}.
func eventLitOf(val ast.Expr) *ast.CompositeLit {
	switch v := unparen(val).(type) {
	case *ast.CompositeLit:
		return v
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			if lit, ok := unparen(v.X).(*ast.CompositeLit); ok {
				return lit
			}
		}
	}
	return nil
}

// assignTo stores taint t into the location l; val is the source
// expression when available (single-value assignments).
func (e *taintEnv) assignTo(l, val ast.Expr, t Taint, compound bool) {
	switch x := unparen(l).(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return
		}
		if obj := e.objOf(x); obj != nil {
			if compound {
				e.vars[obj] |= t
			} else {
				e.vars[obj] = t
			}
		}
	case *ast.SelectorExpr:
		e.checkFieldSink(x, val, t)
		if sel, ok := e.w.info.Selections[x]; ok {
			e.vars[sel.Obj()] |= t
		}
	case *ast.IndexExpr:
		// elem[i] = v weakly updates the container, not the expression's
		// root: `co.stats.Ratio[i] = v` taints the Ratio field, and must
		// not taint co itself (which would bleed into every co.X read).
		e.assignTo(x.X, nil, t, true)
	case *ast.StarExpr:
		e.assignTo(x.X, nil, t, true)
	}
}

// checkFieldSink handles `base.Field = x` writes on sink types: event
// field assignments are recorded for tracekind, and tainted values
// stored into an event or checkpoint become sink hits. A write to the
// Kind field re-resolves the variable's tracked kind.
func (e *taintEnv) checkFieldSink(sel *ast.SelectorExpr, val ast.Expr, t Taint) {
	tv, ok := e.w.info.Types[sel.X]
	if !ok || tv.Type == nil {
		return
	}
	field := sel.Sel.Name
	switch {
	case isEventType(tv.Type):
		var rootObj types.Object
		kind := "?"
		if root := rootIdent(sel.X); root != nil {
			if rootObj = e.objOf(root); rootObj != nil {
				if k, ok := e.kinds[rootObj]; ok {
					kind = k
				}
			}
		}
		if field == "Kind" {
			assigned := "?"
			if val != nil {
				if k, _, isConst := resolveKind(e.w.info, val); isConst {
					assigned = k
				}
			}
			if rootObj != nil {
				e.kinds[rootObj] = assigned
			}
			e.w.n.evAssigns = append(e.w.n.evAssigns, eventAssignSite{
				pos: sel.Sel.Pos(), kind: assigned, field: field,
			})
			return
		}
		e.w.n.evAssigns = append(e.w.n.evAssigns, eventAssignSite{
			pos: sel.Sel.Pos(), kind: kind, field: field,
		})
		e.w.sinkHit(sel.Sel.Pos(), t, eventSinkDesc(field, kind), "")
	case isCheckpointType(tv.Type):
		e.w.sinkHit(sel.Sel.Pos(), t, "checkpoint field "+field, "")
	}
}

// eval computes the taint of an expression, recording sink hits and
// sanitizer effects along the way. Evaluation order follows source
// order, matching the program's own sequencing.
func (e *taintEnv) eval(x ast.Expr) Taint {
	switch v := unparen(x).(type) {
	case *ast.Ident:
		if obj := e.objOf(v); obj != nil {
			return e.vars[obj]
		}
	case *ast.SelectorExpr:
		var t Taint
		if sel, ok := e.w.info.Selections[v]; ok {
			t = e.vars[sel.Obj()] | e.eval(v.X)
		} else if obj := e.w.info.Uses[v.Sel]; obj != nil {
			t = e.vars[obj] // package-qualified var/const
		}
		return t
	case *ast.CallExpr:
		return e.call(v)
	case *ast.BinaryExpr:
		return e.eval(v.X) | e.eval(v.Y)
	case *ast.UnaryExpr:
		return e.eval(v.X)
	case *ast.StarExpr:
		return e.eval(v.X)
	case *ast.IndexExpr:
		return e.eval(v.X) | e.eval(v.Index)
	case *ast.SliceExpr:
		t := e.eval(v.X)
		for _, ix := range []ast.Expr{v.Low, v.High, v.Max} {
			if ix != nil {
				t |= e.eval(ix)
			}
		}
		return t
	case *ast.TypeAssertExpr:
		return e.eval(v.X)
	case *ast.CompositeLit:
		return e.compositeLit(v)
	case *ast.KeyValueExpr:
		return e.eval(v.Value)
	case *ast.FuncLit:
		return 0 // its body is its own graph node
	}
	return 0
}

// compositeLit evaluates a composite literal, recording event-schema
// sites and event/checkpoint sink hits for tainted fields.
func (e *taintEnv) compositeLit(lit *ast.CompositeLit) Taint {
	tv, hasType := e.w.info.Types[lit]
	isEvent := hasType && tv.Type != nil && isEventType(tv.Type)
	isCkpt := hasType && tv.Type != nil && isCheckpointType(tv.Type)

	var site *eventLitSite
	if isEvent {
		site = &eventLitSite{pos: lit.Pos()}
		// Resolve the kind up front: fields may precede it lexically.
		for _, el := range lit.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Kind" {
				site.hasKind = true
				site.kindPos = kv.Value.Pos()
				site.kind, site.kindLit, _ = resolveKind(e.w.info, kv.Value)
			}
		}
	}
	var structType *types.Struct
	if hasType && tv.Type != nil {
		structType, _ = tv.Type.Underlying().(*types.Struct)
	}

	var all Taint
	for i, el := range lit.Elts {
		var valExpr ast.Expr
		var name string
		var pos token.Pos
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			valExpr = kv.Value
			pos = kv.Pos()
			if id, ok := kv.Key.(*ast.Ident); ok {
				name = id.Name
			}
		} else {
			valExpr = el
			pos = el.Pos()
			if isEvent && site != nil {
				site.positional = true
			}
			if structType != nil && i < structType.NumFields() {
				name = structType.Field(i).Name()
			}
		}
		t := e.eval(valExpr)
		all |= t
		switch {
		case isEvent && name != "" && name != "Kind":
			site.fields = append(site.fields, eventFieldSite{name: name, pos: pos})
			e.w.sinkHit(valExpr.Pos(), t, eventSinkDesc(name, site.kind), "")
		case isCkpt && name != "":
			e.w.sinkHit(valExpr.Pos(), t, "checkpoint field "+name, "")
		}
	}
	if isEvent {
		e.w.n.evLits = append(e.w.n.evLits, *site)
	}
	return all
}

// resolveKind extracts the constant string value of an event Kind
// expression; lit is non-nil when it is a raw string literal (the
// suggested-fix case).
func resolveKind(info *types.Info, v ast.Expr) (kind string, lit *ast.BasicLit, constant_ bool) {
	if bl, ok := unparen(v).(*ast.BasicLit); ok && bl.Kind == token.STRING {
		lit = bl
	}
	if tv, ok := info.Types[v]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value), lit, true
	}
	return "", lit, false
}

// eventSinkDesc names an event-field sink for findings.
func eventSinkDesc(field, kind string) string {
	if kind == "" || kind == "?" {
		return "trace event field " + field
	}
	return "trace event field " + field + " (" + kind + ")"
}

// call computes the taint of a call expression: sources, sanitizers,
// module summaries, and the curated stdlib propagation table.
func (e *taintEnv) call(call *ast.CallExpr) Taint {
	info := e.w.info
	fun := unparen(call.Fun)

	// A directly-invoked literal is interpreted inline: its body sees
	// the captured environment, so `func() { emit(x) }()` attributes
	// x's taint here rather than in an unseeded standalone walk.
	if lit, ok := fun.(*ast.FuncLit); ok {
		argTaints := make([]Taint, len(call.Args))
		for i, a := range call.Args {
			argTaints[i] = e.eval(a)
		}
		return e.inlineLit(lit, argTaints)
	}

	// Type conversions propagate (time.Duration(x), float64(x), ...).
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		var t Taint
		for _, a := range call.Args {
			t |= e.eval(a)
		}
		return t
	}

	// Builtins: append/min/max propagate; copy joins src into dst;
	// len/cap/make/new and friends launder taint (a count is not the
	// clock value it measured).
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			var t Taint
			for _, a := range call.Args {
				t |= e.eval(a)
			}
			switch id.Name {
			case "append", "min", "max":
				return t
			case "copy":
				if len(call.Args) == 2 {
					if root := rootIdent(call.Args[0]); root != nil {
						if obj := e.objOf(root); obj != nil {
							e.vars[obj] |= e.eval(call.Args[1])
						}
					}
				}
				return 0
			default:
				return 0
			}
		}
	}

	// Receiver-first argument list aligned with paramList indexing.
	args := make([]ast.Expr, 0, len(call.Args)+1)
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if _, isMethod := info.Selections[sel]; isMethod {
			args = append(args, sel.X)
		}
	}
	args = append(args, call.Args...)
	taints := make([]Taint, len(args))
	for i, a := range args {
		taints[i] = e.eval(a)
	}
	// Closures handed to the callee (sync.Once.Do, sort.Slice, ...) are
	// assumed to run synchronously: interpret their bodies inline so
	// captured variables keep their taint and sinks inside the closure
	// are attributed to this function.
	for _, a := range call.Args {
		if lit, ok := unparen(a).(*ast.FuncLit); ok {
			e.inlineLit(lit, nil)
		}
	}
	joinAll := func() Taint {
		var t Taint
		for _, at := range taints {
			t |= at
		}
		return t
	}

	// Stdlib sorting sanitizes the first argument's map-order taint —
	// a sorted key slice no longer depends on iteration order.
	if pkgPath, name, ok := pkgFuncOf(info, fun); ok {
		if fns := sortFuncs[pkgPath]; fns != nil && fns[name] {
			e.sanitizeArg(call, 0)
			return 0
		}
		if pkgPath == "time" && wallSources[name] {
			return TaintWall
		}
		if pkgPath == "math/rand" && !mathRandCtors[name] {
			return TaintRand | joinAll()
		}
		if callees := e.w.m.calleesOf(info, fun); len(callees) > 0 {
			return e.applySummaries(call, callees, taints)
		}
		if taintPropagators[pkgPath] {
			return joinAll()
		}
		return 0
	}

	// Method and local calls: module summaries first.
	if callees := e.w.m.calleesOf(info, fun); len(callees) > 0 {
		return e.applySummaries(call, callees, taints)
	}
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok {
			if fn, ok := s.Obj().(*types.Func); ok && fn.Pkg() != nil {
				// Methods on *rand.Rand (r.Float64(), r.Intn(...)) are
				// sources just like the package-level rand functions.
				if fn.Pkg().Path() == "math/rand" && !mathRandCtors[sel.Sel.Name] {
					return TaintRand | joinAll()
				}
				if taintPropagators[fn.Pkg().Path()] {
					return joinAll()
				}
			}
			// error.Error() / Stringer.String() formats the receiver.
			name := sel.Sel.Name
			if (name == "Error" || name == "String") && len(call.Args) == 0 {
				return joinAll()
			}
		}
	}
	return 0
}

// sanitizeArg clears map-order taint from the root object of argument i.
func (e *taintEnv) sanitizeArg(call *ast.CallExpr, i int) {
	if i >= len(call.Args) {
		return
	}
	e.eval(call.Args[i])
	if root := rootIdent(call.Args[i]); root != nil {
		if obj := e.objOf(root); obj != nil {
			e.vars[obj] &^= TaintMapOrder
		}
	}
}

// applySummaries composes the callees' taint summaries into this call:
// intrinsic return taint joins in directly, parameter markers select
// argument taints, and param→sink flows fire with whatever taint the
// matching argument carries here (intrinsic bits become report sites,
// parameter markers lift the flow into this function's own summary).
func (e *taintEnv) applySummaries(call *ast.CallExpr, callees []*FuncNode, taints []Taint) Taint {
	argTaint := func(c *FuncNode, i int) Taint {
		sig := calleeSig(c)
		if sig != nil && sig.Variadic() {
			last := len(paramList(c)) - 1
			if i == last {
				var t Taint
				for j := last; j < len(taints); j++ {
					t |= taints[j]
				}
				return t
			}
		}
		if i < 0 || i >= len(taints) {
			return 0
		}
		return taints[i]
	}
	var out Taint
	for _, c := range callees {
		out |= c.taint.ret & realTaints
		for i := 0; i < maxTrackedParams; i++ {
			if c.taint.ret&paramBit(i) != 0 {
				out |= argTaint(c, i)
			}
		}
		// A callee that sorts its argument hands back order-independent
		// data (mapdet's SortsArg, reused as a sanitizer).
		if c.sum.SortsArg {
			e.sanitizeArg(call, 0)
		}
		for sf := range c.taint.sinks {
			at := argTaint(c, sf.Param)
			if rt := at & realTaints; rt != 0 {
				e.w.n.taintSites = append(e.w.n.taintSites, taintSite{
					pos: call.Pos(), taint: rt, sink: sf.Sink, via: shortFuncName(c),
				})
			}
			for j := 0; j < maxTrackedParams; j++ {
				if at&paramBit(j) != 0 {
					e.w.sinks[SinkFlow{Param: j, Sink: sf.Sink}] = true
				}
			}
		}
	}
	return out
}

// inlineLit interprets a function literal's body in the current
// environment. Closures see their captured variables, so a wall-clock
// value flowing into an Emit inside `p.down.Do(func() { ... })` is
// attributed during the enclosing function's walk (the literal's own
// standalone walk starts from an unseeded environment and cannot see
// captures). argTaints, when the literal is invoked directly, seeds its
// parameters; the return value is the joined taint of its returns.
func (e *taintEnv) inlineLit(lit *ast.FuncLit, argTaints []Taint) Taint {
	node := e.w.m.byLit[lit]
	if node == nil {
		return 0
	}
	for i, obj := range paramList(node) {
		var t Taint
		if i < len(argTaints) {
			t = argTaints[i]
		}
		e.vars[obj] = t
	}
	savedRet, savedResults := e.w.ret, e.w.results
	e.w.ret, e.w.results = 0, resultObjs(node)
	flowStmts(lit.Body.List, e)
	ret := e.w.ret
	e.w.ret, e.w.results = savedRet, savedResults
	return ret
}

// sinkHit records taint t reaching a sink: intrinsic bits become a
// taintSite (walldet's raw finding), parameter markers become SinkFlow
// summary entries for callers.
func (w *taintWalker) sinkHit(pos token.Pos, t Taint, sink, via string) {
	if w.exempt {
		return
	}
	if rt := t & realTaints; rt != 0 {
		w.n.taintSites = append(w.n.taintSites, taintSite{pos: pos, taint: rt, sink: sink, via: via})
	}
	for i := 0; i < maxTrackedParams; i++ {
		if t&paramBit(i) != 0 {
			w.sinks[SinkFlow{Param: i, Sink: sink}] = true
		}
	}
}

// ---------------------------------------------------------------------------
// Summary fixed point
// ---------------------------------------------------------------------------

// computeTaintSummaries walks every function body to a module-wide
// fixed point. The per-walk transfer is monotone in the callee
// summaries (clears are local and input-independent), so iteration
// converges; the bound is a safety net for pathological graphs.
func computeTaintSummaries(m *Module) {
	for _, n := range m.nodes {
		n.taint.sinks = map[SinkFlow]bool{}
	}
	const maxRounds = 20
	for round := 0; round < maxRounds; round++ {
		changed := false
		m.Rounds++
		for _, n := range m.nodes {
			if n.body() == nil {
				continue
			}
			if walkTaint(m, n) {
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// walkTaint runs one abstract interpretation of n's body and merges the
// result into its summary; reports whether the summary grew. Recorded
// sites (taintSites, evLits, evAssigns) are rebuilt on every walk — the
// final round leaves the converged set in place.
func walkTaint(m *Module, n *FuncNode) bool {
	n.taintSites = nil
	n.evLits = nil
	n.evAssigns = nil
	w := &taintWalker{
		m:       m,
		n:       n,
		info:    n.Pkg.Info,
		params:  paramList(n),
		results: resultObjs(n),
		sinks:   map[SinkFlow]bool{},
		exempt:  strings.HasSuffix(n.Pkg.PkgPath, "internal/obs"),
	}
	env := &taintEnv{w: w, vars: map[types.Object]Taint{}, kinds: map[types.Object]string{}}
	for i, obj := range w.params {
		env.vars[obj] = paramBit(i)
	}
	flowStmts(n.body().List, env)

	// Loop bodies are interpreted twice and closures may be walked both
	// inline and standalone, so recorded sites can repeat: collapse by
	// position (joining taint bits) before analyzers read them.
	n.taintSites = dedupTaintSites(n.taintSites)
	n.evLits = dedupEventLits(n.evLits)
	n.evAssigns = dedupEventAssigns(n.evAssigns)

	changed := false
	if w.ret&^n.taint.ret != 0 {
		n.taint.ret |= w.ret
		changed = true
	}
	for sf := range w.sinks {
		if !n.taint.sinks[sf] {
			n.taint.sinks[sf] = true
			changed = true
		}
	}
	return changed
}

func dedupTaintSites(sites []taintSite) []taintSite {
	type key struct {
		pos  token.Pos
		sink string
		via  string
	}
	idx := map[key]int{}
	out := sites[:0]
	for _, s := range sites {
		k := key{s.pos, s.sink, s.via}
		if i, ok := idx[k]; ok {
			out[i].taint |= s.taint
			continue
		}
		idx[k] = len(out)
		out = append(out, s)
	}
	return out
}

func dedupEventLits(lits []eventLitSite) []eventLitSite {
	seen := map[token.Pos]bool{}
	out := lits[:0]
	for _, l := range lits {
		if seen[l.pos] {
			continue
		}
		seen[l.pos] = true
		out = append(out, l)
	}
	return out
}

func dedupEventAssigns(as []eventAssignSite) []eventAssignSite {
	type key struct {
		pos   token.Pos
		kind  string
		field string
	}
	seen := map[key]bool{}
	out := as[:0]
	for _, a := range as {
		k := key{a.pos, a.kind, a.field}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, a)
	}
	return out
}

// paramList returns the parameters in summary order: receiver first on
// methods, then declared parameters.
func paramList(n *FuncNode) []types.Object {
	var out []types.Object
	addField := func(f *ast.Field) {
		for _, name := range f.Names {
			if obj := n.Pkg.Info.Defs[name]; obj != nil {
				out = append(out, obj)
			}
		}
	}
	var ftype *ast.FuncType
	if n.Decl != nil {
		ftype = n.Decl.Type
		if n.Decl.Recv != nil {
			for _, f := range n.Decl.Recv.List {
				addField(f)
			}
		}
	} else {
		ftype = n.Lit.Type
	}
	if ftype.Params != nil {
		for _, f := range ftype.Params.List {
			addField(f)
		}
	}
	return out
}

// resultObjs returns the named result objects (for bare returns).
func resultObjs(n *FuncNode) []types.Object {
	var ftype *ast.FuncType
	if n.Decl != nil {
		ftype = n.Decl.Type
	} else {
		ftype = n.Lit.Type
	}
	if ftype.Results == nil {
		return nil
	}
	var out []types.Object
	for _, f := range ftype.Results.List {
		for _, name := range f.Names {
			if obj := n.Pkg.Info.Defs[name]; obj != nil {
				out = append(out, obj)
			}
		}
	}
	return out
}

// calleeSig returns the callee's signature when known.
func calleeSig(c *FuncNode) *types.Signature {
	if c.Obj != nil {
		sig, _ := c.Obj.Type().(*types.Signature)
		return sig
	}
	if c.Lit != nil {
		if tv, ok := c.Pkg.Info.Types[c.Lit]; ok && tv.Type != nil {
			sig, _ := tv.Type.(*types.Signature)
			return sig
		}
	}
	return nil
}

// shortFuncName renders a callee for "via" clauses in findings.
func shortFuncName(c *FuncNode) string {
	if c.Obj == nil {
		return c.Name()
	}
	name := c.Obj.Name()
	if sig, ok := c.Obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + name
		}
	}
	return name
}

// pkgFuncOf matches fun against the pkg.Func call shape and returns the
// package path and function name.
func pkgFuncOf(info *types.Info, fun ast.Expr) (path, name string, ok bool) {
	sel, isSel := unparen(fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// isEventType reports whether t is (a pointer to) obs.Event.
func isEventType(t types.Type) bool {
	return isNamedIn(t, "Event", "internal/obs")
}

// isCheckpointType reports whether t is (a pointer to) ug.Checkpoint.
func isCheckpointType(t types.Type) bool {
	return isNamedIn(t, "Checkpoint", "internal/ug")
}

// isNamedIn matches a named type by name and declaring-package path
// fragment; pointer indirection is stripped. Path matching is by
// substring so fixture packages under testdata mirror the real layout.
func isNamedIn(t types.Type, name, pathFragment string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == name && obj.Pkg() != nil &&
		strings.Contains(obj.Pkg().Path()+"/", pathFragment+"/")
}
