package analysis

import "sort"

// WallDet reports wall-clock, math/rand, or map-iteration-order derived
// values flowing into trace events or checkpoint contents — the
// determinism contract (DESIGN.md §7: two runs of the same seed agree
// on every trace field except Wall) checked instead of hoped. The
// dataflow layer (dataflow.go) does the tracking: intrinsic taint
// introduced anywhere in the module is followed through assignments,
// calls (via per-function taint summaries) and closures to obs.Event
// field writes and ug.Checkpoint contents; this analyzer only surfaces
// the recorded sites for the pass's package. internal/obs itself is
// exempt by scope: the tracer's own Wall stamping is the one sanctioned
// wall-clock → trace path.
var WallDet = &Analyzer{
	Name:    "walldet",
	Doc:     "wall-clock/math/rand/map-order derived value flows into a trace event or checkpoint",
	Applies: isSolverCore,
	Run:     runWallDet,
}

func runWallDet(p *Pass) {
	type key struct {
		pos  int
		sink string
	}
	seen := map[key]bool{}
	for _, n := range p.Mod.Funcs() {
		if n.Pkg.PkgPath != p.PkgPath {
			continue
		}
		sites := append([]taintSite(nil), n.taintSites...)
		sort.Slice(sites, func(i, j int) bool { return sites[i].pos < sites[j].pos })
		for _, site := range sites {
			k := key{int(site.pos), site.sink}
			if seen[k] {
				continue
			}
			seen[k] = true
			via := ""
			if site.via != "" {
				via = " via " + site.via
			}
			p.Reportf(site.pos,
				"%s-derived value flows into %s%s; traces and checkpoints must be deterministic modulo the tracer-stamped Wall field",
				site.taint.describe(), site.sink, via)
		}
	}
}
