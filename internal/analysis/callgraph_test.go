package analysis

import (
	"strings"
	"testing"
)

// buildFixtureModule loads one fixture package and builds its module
// graph.
func buildFixtureModule(t *testing.T, rel string) *Module {
	t.Helper()
	pkg := loadFixture(t, rel)
	return BuildModule([]*Package{pkg})
}

// mustFunc resolves a node by name suffix or fails the test.
func mustFunc(t *testing.T, m *Module, suffix string) *FuncNode {
	t.Helper()
	n := m.FuncByName(suffix)
	if n == nil {
		var names []string
		for _, f := range m.Funcs() {
			names = append(names, f.Name())
		}
		t.Fatalf("no unique function %q in module; have:\n%s", suffix, strings.Join(names, "\n"))
	}
	return n
}

// TestCallGraphSummaries drives the fixed-point engine over the
// callgraph fixture: mutual recursion, interface dispatch, method
// values, spawns, and transitive lock acquisition.
func TestCallGraphSummaries(t *testing.T) {
	m := buildFixtureModule(t, "callgraph")

	// Convergence: the monotone iteration must terminate in a small
	// number of rounds even with pingA ⇄ pingB in the graph. The bound
	// is generous; the point is that it is finite and the test returned.
	if m.Rounds < 1 || m.Rounds > 50 {
		t.Fatalf("summary fixed point took %d rounds; expected 1..50", m.Rounds)
	}

	mayBlock := map[string]bool{
		".pingA":        true,  // direct send at the base case
		".pingB":        true,  // only through mutual recursion with pingA
		"Real).Block":   true,  // direct receive
		"Fake).Block":   false, // empty body
		".dispatch":     true,  // interface dispatch fans out to Real.Block
		".methodValue":  true,  // conservative: referenced method value may be called
		".spawner":      false, // go pingA(...) cannot block the spawner
		".pure":         false,
		".lockerCaller": false,
	}
	for suffix, want := range mayBlock {
		if got := mustFunc(t, m, suffix).Summary().MayBlock; got != want {
			t.Errorf("MayBlock(%s) = %v, want %v", suffix, got, want)
		}
	}

	if !mustFunc(t, m, ".spawner").Summary().Spawns {
		t.Error("spawner should have Spawns set")
	}
	if mustFunc(t, m, ".pure").Summary().Spawns {
		t.Error("pure should not have Spawns set")
	}

	// Transitive lock acquisition: bump locks l.mu directly,
	// lockerCaller inherits the same mutex identity.
	bump := mustFunc(t, m, ".bump")
	caller := mustFunc(t, m, ".lockerCaller")
	if len(bump.Summary().Acquires) != 1 {
		t.Fatalf("bump should acquire exactly one mutex, got %d", len(bump.Summary().Acquires))
	}
	for obj := range bump.Summary().Acquires {
		if !caller.Summary().Acquires[obj] {
			t.Errorf("lockerCaller should inherit acquisition of %v", obj)
		}
	}

	// Interface dispatch edges: dispatch must reach both implementations.
	callees := map[string]bool{}
	for _, c := range mustFunc(t, m, ".dispatch").Callees() {
		callees[c.Name()] = true
	}
	foundReal, foundFake := false, false
	for name := range callees {
		if strings.HasSuffix(name, "Real).Block") || strings.Contains(name, "Real.Block") {
			foundReal = true
		}
		if strings.HasSuffix(name, "Fake).Block") || strings.Contains(name, "Fake.Block") {
			foundFake = true
		}
	}
	if !foundReal || !foundFake {
		t.Errorf("dispatch callees = %v; want both Real.Block and Fake.Block", callees)
	}
}

// TestCallGraphDeterministicRebuild asserts the graph and summaries are
// stable across rebuilds of the same package (guards against map-order
// artifacts inside the engine itself).
func TestCallGraphDeterministicRebuild(t *testing.T) {
	a := buildFixtureModule(t, "callgraph")
	b := buildFixtureModule(t, "callgraph")
	fa, fb := a.Funcs(), b.Funcs()
	if len(fa) != len(fb) {
		t.Fatalf("rebuild changed node count: %d vs %d", len(fa), len(fb))
	}
	for i := range fa {
		if fa[i].Name() != fb[i].Name() {
			t.Fatalf("node %d differs: %s vs %s", i, fa[i].Name(), fb[i].Name())
		}
		sa, sb := fa[i].Summary(), fb[i].Summary()
		if sa.MayBlock != sb.MayBlock || sa.Spawns != sb.Spawns || sa.OrderDep != sb.OrderDep || sa.SortsArg != sb.SortsArg {
			t.Errorf("summary of %s differs across rebuilds", fa[i].Name())
		}
	}
}

// TestOrderDepPropagation checks the mapdet-side summary bit: keyList
// returns an unsorted key collection (OrderDep), relayKeys returns
// keyList's result directly and inherits it, sortedKeys does not.
func TestOrderDepPropagation(t *testing.T) {
	m := buildFixtureModule(t, "mapdet/internal/ug")
	cases := map[string]bool{
		".keyList":      true,
		".relayKeys":    true,  // return keyList(m) propagates
		".argmaxRank":   true,  // best is returned
		".total":        true,  // float reduction is returned
		".sortedKeys":   false, // sorted before returning
		".helperSorted": false, // sorted via module helper
		".minBound":     false, // value reduction, order-independent
	}
	for suffix, want := range cases {
		if got := mustFunc(t, m, suffix).Summary().OrderDep; got != want {
			t.Errorf("OrderDep(%s) = %v, want %v", suffix, got, want)
		}
	}
	if !mustFunc(t, m, ".sortRanks").Summary().SortsArg {
		t.Error("sortRanks should have SortsArg set")
	}
}

// TestInterprocFixtures asserts the WANT markers of the four
// interprocedural analyzers' fixture packages.
func TestLockBlockFixture(t *testing.T) { checkFixture(t, LockBlock, "lockblock/internal/ug") }
func TestGoroLeakFixture(t *testing.T)  { checkFixture(t, GoroLeak, "goroleak/internal/ug") }
func TestMapDetFixture(t *testing.T)    { checkFixture(t, MapDet, "mapdet/internal/ug") }
func TestTolConstFixture(t *testing.T)  { checkFixture(t, TolConst, "tolconst/internal/scip") }
