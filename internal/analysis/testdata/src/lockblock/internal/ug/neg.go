package ug

import "sync"

// peek neither blocks nor acquires: calling it under the lock is fine.
func peek(p *pool) int { return len(p.items) }

func safeCall(p *pool) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return peek(p)
}

func unlockThenBlock(p *pool, ch chan int) int {
	p.mu.Lock()
	p.items = nil
	p.mu.Unlock()
	return waitForItem(ch) // lock already released
}

type waiter struct {
	mu   sync.Mutex
	cond *sync.Cond
	n    int
}

// condWait parks on the condition variable while holding the lock —
// exempt, because Cond.Wait atomically releases it (the mailbox
// pattern in internal/ug/comm).
func condWait(w *waiter) {
	w.mu.Lock()
	for w.n == 0 {
		w.cond.Wait()
	}
	w.n--
	w.mu.Unlock()
}

// otherMutex acquires a different mutex object than the one held by its
// caller: not a self-deadlock.
type twoLocks struct {
	a, b sync.Mutex
	v    int
}

func (t *twoLocks) lockB() int {
	t.b.Lock()
	defer t.b.Unlock()
	return t.v
}

func underA(t *twoLocks) int {
	t.a.Lock()
	defer t.a.Unlock()
	return t.lockB()
}
