// Package ug holds positive (pos.go) and negative (neg.go) fixtures for
// the interprocedural lockblock analyzer. The directory nests under
// internal/ug so the package path passes the analyzer's Applies filter.
package ug

import "sync"

type pool struct {
	mu    sync.Mutex
	items []int
}

// waitForItem blocks on a channel receive: its summary gets MayBlock.
func waitForItem(ch chan int) int { return <-ch }

// relay blocks only transitively, through waitForItem.
func relay(ch chan int) int { return waitForItem(ch) }

func takeLocked(p *pool, ch chan int) int {
	p.mu.Lock()
	v := waitForItem(ch) // WANT lockblock
	p.mu.Unlock()
	return v
}

func takeDeepLocked(p *pool, ch chan int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return relay(ch) // WANT lockblock
}

// size re-acquires p.mu: calling it with the lock held self-deadlocks.
func (p *pool) size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.items)
}

func drainLocked(p *pool) int {
	p.mu.Lock()
	n := p.size() // WANT lockblock
	p.mu.Unlock()
	return n
}
