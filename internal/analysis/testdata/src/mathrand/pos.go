// Package mathrand holds positive (pos.go) and negative (neg.go)
// fixtures for the mathrand analyzer.
package mathrand

import "math/rand"

func globalInt() int {
	return rand.Intn(10) // WANT mathrand
}

func globalFloat() float64 {
	return rand.Float64() // WANT mathrand
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // WANT mathrand
}

func globalSeed() {
	rand.Seed(42) // WANT mathrand
}
