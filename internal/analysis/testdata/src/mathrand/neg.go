package mathrand

import "math/rand"

func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed)) // constructors build local state
	return rng.Intn(10)
}

func threaded(rng *rand.Rand) float64 {
	return rng.Float64() // instance draw: reproducible per caller
}

type carrier struct {
	rng *rand.Rand
}

func (c *carrier) draw() float64 {
	return c.rng.Float64()
}
