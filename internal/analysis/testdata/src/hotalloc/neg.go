// Negative cases: sanctioned reuse idioms, audited boundaries, and
// suppressions — none of these may produce findings.
package hotalloc

// sanctioned shows the recognized buffer-reuse idioms: reset-and-append
// over x[:0], appends rooted at a struct field or a caller-provided
// parameter, and a capacity-guarded grow.
//
//ugo:hotpath
func sanctioned(s *store, dst []int, n int) []int {
	s.scratch = append(s.scratch[:0], 1, 2)
	s.scratch = append(s.scratch, 3)
	dst = append(dst, 4)
	buf := dst
	if cap(buf) < n {
		buf = make([]int, n)
	}
	return buf
}

// install grows scratch on demand: a make whose result lands on a
// struct field is an amortized one-time cost, not a steady-state leak.
//
//ugo:hotpath
func install(s *store, n int) {
	if cap(s.scratch) < n {
		s.scratch = make([]int, n)
	}
	s.scratch = s.scratch[:n]
}

type dedup struct {
	seen map[int]bool
}

// mark reuses a clear()ed map: writes cannot grow it beyond its
// high-water mark, so they are not charged.
//
//ugo:hotpath
func (d *dedup) mark(ids []int) {
	clear(d.seen)
	for _, id := range ids {
		d.seen[id] = true
	}
}

// guarded allocates only on an early-return path: at most once per
// call, so error/teardown construction stays quiet.
//
//ugo:hotpath
func guarded(xs []int) []int {
	if len(xs) == 0 {
		return []int{0}
	}
	xs[0]++
	return xs
}

// audited suppresses a true finding with an explicit reason.
//
//ugo:hotpath
func audited() *item {
	//lint:ignore hotalloc deliberate per-call allocation, the caller owns the result
	return &item{id: 7}
}

// drive owns the hot loop itself: top-level setup before the loop is
// depth 0 and not charged; only allocation inside the loop would be.
//
//ugo:hotpath driver
func drive(s *store, items []*item) int {
	setup := make([]int, 8)
	total := len(setup)
	for _, it := range items {
		s.scratch = append(s.scratch[:0], it.id)
		total += consume(it)
	}
	return total
}

func consume(it *item) int {
	return it.id * 2
}

// hotWithBoundary calls an audited cold boundary: propagation stops at
// record, so its map literal is not charged.
//
//ugo:hotpath
func hotWithBoundary(s *store) {
	record(s)
}

// record is a once-per-incumbent slow path.
//
//ugo:coldpath once per improving incumbent, off the steady-state path
func record(s *store) {
	s.lookup = map[string]int{"last": 1}
}

// frozen is never reached from a hot root: allocate freely.
func frozen() []int {
	return append([]int(nil), 1, 2, 3)
}
