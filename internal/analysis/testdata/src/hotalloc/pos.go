// Package hotalloc exercises the hot-path allocation analyzer:
// positive cases (charged allocation sites in hot regions) live here,
// sanctioned reuse idioms in neg.go.
package hotalloc

import "container/heap"

type item struct {
	id  int
	buf []byte
}

type store struct {
	scratch []int
	lookup  map[string]int
}

// process is a per-iteration hot root: it runs once per node, so even
// top-level allocations are charged.
//
//ugo:hotpath
func process(s *store, it *item) int {
	out := make([]int, 0, 4) // WANT hotalloc
	for i := 0; i < 4; i++ {
		out = append(out, i) // WANT hotalloc
	}
	p := &item{id: 1} // WANT hotalloc
	total := p.id
	for _, v := range out {
		total += helper(v)
	}
	return total
}

// helper looks cold on its own, but process calls it from a loop: the
// interprocedural pass charges it at hot depth 2.
func helper(v int) int {
	xs := []int{v, v + 1} // WANT hotalloc
	return xs[0] + xs[1]
}

//ugo:hotpath
func concat(it *item, suffix string) string {
	return "item:" + suffix // WANT hotalloc
}

//ugo:hotpath
func boxed(it *item) {
	describe(it.id) // WANT hotalloc
}

func describe(v any) int {
	if v == nil {
		return 0
	}
	return 1
}

//ugo:hotpath
func boxAssign(vals []int) any {
	var out any
	for _, v := range vals {
		out = v // WANT hotalloc
	}
	return out
}

//ugo:hotpath
func tostr(b []byte) string {
	return string(b) // WANT hotalloc
}

//ugo:hotpath
func fresh() *item {
	return new(item) // WANT hotalloc
}

//ugo:hotpath
func rehash(s *store, keys []string) {
	for i, k := range keys {
		s.lookup[k] = i // WANT hotalloc
	}
}

//ugo:hotpath
func closures(xs []int) int {
	total := 0
	for _, x := range xs {
		f := func() int { return x * 2 } // WANT hotalloc
		total += f()
	}
	return total
}

//ugo:hotpath
func spawny(items []*item) {
	for _, it := range items {
		go describe(it.id) // WANT hotalloc
	}
}

//ugo:hotpath
func localMap(keys []string) int {
	m := make(map[string]int, len(keys)) // WANT hotalloc
	for i, k := range keys {
		m[k] = i // write to a locally-made map: the make above is the charged site
	}
	return len(m)
}

type intHeap []int

func (h intHeap) Len() int           { return len(h) }
func (h intHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h intHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *intHeap) Push(x any)        { *h = append(*h, x.(int)) }
func (h *intHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

//ugo:hotpath
func useHeap(h *intHeap) int {
	heap.Push(h, 3) // WANT hotalloc
	return h.Len()
}
