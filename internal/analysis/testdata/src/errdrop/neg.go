package errdrop

import (
	"bytes"
	"fmt"
	"io"
	"strings"
)

func handled() error {
	if err := failing(); err != nil {
		return err
	}
	return nil
}

func explicitDiscard() {
	_ = failing() // audited discard: allowed
}

func deferredClose(c closer) {
	defer c.Close() // conventional; the primary error path is elsewhere
}

func noError() int { return 3 }

func plainCall() {
	noError()
}

func bufferWrites(buf *bytes.Buffer, sb *strings.Builder) {
	buf.WriteString("x")  // documented to never fail
	sb.WriteString("y")   // documented to never fail
	buf.WriteByte('z')    //
	fmt.Fprintf(buf, "w") // writer-parameterized: error is the writer's
}

func writerOutput(w io.Writer) {
	fmt.Fprintln(w, "table row")
}
