// Package errdrop holds positive (pos.go) and negative (neg.go)
// fixtures for the errdrop analyzer.
package errdrop

import (
	"os"
	"strconv"
)

func failing() error { return nil }

func pair() (int, error) { return 0, nil }

func dropPlain() {
	failing() // WANT errdrop
}

func dropTuple() {
	pair() // WANT errdrop
}

func dropStdlib(path string) {
	os.Remove(path) // WANT errdrop
}

type closer struct{}

func (closer) Close() error { return nil }

func dropMethod(c closer) {
	c.Close() // WANT errdrop
}

func dropInLoop(xs []string) {
	for range xs {
		strconv.Atoi("1") // WANT errdrop
	}
}
