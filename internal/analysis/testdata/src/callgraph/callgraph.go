// Package callgraph exercises the module call-graph builder: mutual
// recursion (fixed-point convergence), method values, interface
// dispatch, goroutine spawns, and summary propagation. Assertions live
// in callgraph_test.go; no analyzer runs over this fixture.
package callgraph

import "sync"

// Blocker is dispatched through an interface: a call through it must
// fan out to every module implementation.
type Blocker interface {
	Block(ch chan int)
}

// Real blocks on the channel.
type Real struct{}

// Block receives.
func (Real) Block(ch chan int) { <-ch }

// Fake never blocks.
type Fake struct{}

// Block is a no-op.
func (Fake) Block(ch chan int) {}

// dispatch may reach Real.Block or Fake.Block; the conservative answer
// is MayBlock.
func dispatch(b Blocker, ch chan int) { b.Block(ch) }

// pingA and pingB are mutually recursive with a channel send at the
// base case: the summary iteration must converge, not recurse forever.
func pingA(n int, ch chan int) {
	if n == 0 {
		ch <- 1
		return
	}
	pingB(n-1, ch)
}

func pingB(n int, ch chan int) { pingA(n, ch) }

// methodValue stores a method value without calling it: a conservative
// reference edge to Real.Block.
func methodValue(r Real) func(chan int) {
	f := r.Block
	return f
}

// spawner launches pingA on a goroutine: Spawns without MayBlock,
// because `go f()` never blocks the spawner.
func spawner(ch chan int) {
	go pingA(3, ch)
}

// pure touches nothing interesting.
func pure(n int) int { return n + 1 }

// locker acquires its receiver's mutex; lockerCaller inherits the
// acquisition transitively.
type locker struct {
	mu sync.Mutex
	n  int
}

func (l *locker) bump() {
	l.mu.Lock()
	l.n++
	l.mu.Unlock()
}

func lockerCaller(l *locker) { l.bump() }
