// Package hotallocdir holds malformed //ugo: directives; the directive
// findings land on the comment line itself, which cannot carry a WANT
// marker without changing the directive text, so TestHotAllocDirectives
// asserts these by message instead.
package hotallocdir

// badArg has an unknown hotpath argument.
//
//ugo:hotpath turbo
func badArg() {}

// badCold is missing the mandatory audit reason.
//
//ugo:coldpath
func badCold() {}

// fine is a well-formed root for contrast.
//
//ugo:hotpath
func fine() {}
