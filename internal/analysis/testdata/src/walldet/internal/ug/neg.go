package ug

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/obs"
)

// emitCount launders through len: a map's size is deterministic even
// though its iteration order is not.
func emitCount(tr *obs.Tracer, m map[int]float64) {
	tr.Emit(obs.Event{Kind: obs.KindStatus, Nodes: int64(len(m))})
}

// emitSortedKey sanitizes the key slice: after sort.Ints the value no
// longer depends on iteration order.
func emitSortedKey(tr *obs.Tracer, m map[int]float64) {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	tr.Emit(obs.Event{Kind: obs.KindStatus, Rank: keys[0]})
}

// emitConfig builds the payload from configuration only: durations are
// plain values, not clock readings.
func emitConfig(tr *obs.Tracer, every time.Duration, miss int) {
	tr.Emit(obs.Event{Kind: obs.KindOutcome,
		Str: fmt.Sprintf("timeout after %d x %v", miss, every)})
}

// deadlineUse consumes the clock without it reaching any sink: arming
// deadlines and measuring cadence are the sanctioned uses.
func deadlineUse(tr *obs.Tracer) time.Time {
	deadline := time.Now().Add(time.Second)
	tr.Emit(obs.Event{Kind: obs.KindRunStart, Open: 1})
	return deadline
}
