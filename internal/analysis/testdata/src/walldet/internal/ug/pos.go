// Package ug holds positive (pos.go) and negative (neg.go) fixtures
// for the walldet analyzer: wall-clock, math/rand, and map-iteration
// order taint reaching trace events and checkpoint contents. The
// directory nests under internal/ug so the package path passes the
// analyzer's Applies filter; obs.Event is the real event type so the
// sink detection exercises the production type, and Checkpoint is a
// local stand-in whose package path matches the internal/ug fragment.
package ug

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/obs"
)

// Checkpoint mirrors the solver checkpoint shape: any tainted value
// stored into it is a walldet sink.
type Checkpoint struct {
	DualBound float64
	Note      string
}

// emitWall is the direct case: a wall-clock reading formatted straight
// into an event payload field.
func emitWall(tr *obs.Tracer) {
	tr.Emit(obs.Event{Kind: obs.KindOutcome,
		Str: time.Now().String()}) // WANT walldet
}

// jitter only exists to carry rand taint through a function summary.
func jitter(r *rand.Rand) float64 { return r.Float64() }

// emitJitter reaches the sink through jitter's return-taint summary.
func emitJitter(tr *obs.Tracer, r *rand.Rand) {
	tr.Emit(obs.Event{Kind: obs.KindDualBound,
		Dual: jitter(r)}) // WANT walldet
}

// emitMaybe taints d on only one branch; the merge join must keep it.
func emitMaybe(tr *obs.Tracer, flaky bool) {
	d := 0.0
	if flaky {
		d = time.Since(time.Unix(0, 0)).Seconds()
	}
	tr.Emit(obs.Event{Kind: obs.KindDualBound,
		Dual: d}) // WANT walldet
}

// emitLastKey leaks map iteration order into an event field.
func emitLastKey(tr *obs.Tracer, m map[int]float64) {
	var last int
	for k := range m {
		last = k
	}
	tr.Emit(obs.Event{Kind: obs.KindStatus,
		Rank: last}) // WANT walldet
}

// stamp writes its argument into a checkpoint field: a param→sink flow
// that fires at whichever call site passes taint in.
func stamp(ck *Checkpoint, note string) { ck.Note = note }

// save composes stamp's summary with a wall-derived argument.
func save(start time.Time) Checkpoint {
	var ck Checkpoint
	stamp(&ck, fmt.Sprintf("saved after %v", time.Since(start))) // WANT walldet
	return ck
}

// emitClosure reaches the sink inside an immediately-invoked literal:
// the captured age must keep its taint through the inline walk.
func emitClosure(tr *obs.Tracer) {
	age := time.Since(time.Unix(0, 0))
	func() {
		tr.Emit(obs.Event{Kind: obs.KindOutcome,
			Str: age.String()}) // WANT walldet
	}()
}
