package floatcmp

import "math"

var inf = math.Inf(1)

// Infinity is an exported sentinel, mirroring scip.Infinity.
const Infinity = 1e100

func intCompare(a, b int) bool {
	return a == b // ints compare exactly
}

func tolerance(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9 // the blessed pattern
}

func infSentinelCall(x float64) bool {
	return x == math.Inf(1) // infinity is assigned, never computed
}

func infSentinelNeg(x float64) bool {
	return x != -math.Inf(1)
}

func infSentinelVar(x float64) bool {
	return x == inf
}

func infSentinelConst(x float64) bool {
	return x != Infinity
}

func stringCompare(a, b string) bool {
	return a == b
}

func orderedCompare(a, b float64) bool {
	return a < b // only ==/!= are exact-equality hazards
}
