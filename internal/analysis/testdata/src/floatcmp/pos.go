// Package floatcmp holds positive (pos.go) and negative (neg.go)
// fixtures for the floatcmp analyzer.
package floatcmp

func rawEqual(a, b float64) bool {
	return a == b // WANT floatcmp
}

func rawNotEqual(a float32, b float32) bool {
	return a != b // WANT floatcmp
}

func mixedOperands(a float64, b int) bool {
	return a == float64(b) // WANT floatcmp
}

func zeroCompare(x float64) bool {
	return x == 0 // WANT floatcmp
}

func switchOnFloat(x float64) int {
	switch x { // WANT floatcmp
	case 0:
		return 0
	case 1:
		return 1
	}
	return -1
}
