package scip

// feasTol is the sanctioned spelling: a named constant (in the real
// tree it lives in internal/num).
const feasTol = 1e-6

func feasibleNamed(ax, rhs float64) bool {
	return ax < rhs+feasTol
}

// bigCoef compares against a magnitude that is not a tolerance.
func bigCoef(x float64) bool {
	return x > 0.5
}

// scaled uses a small literal outside any comparison (a scaling
// factor, not an epsilon).
func scaled(x float64) float64 {
	return x * 1e-9
}

// intCompare involves only integer constants.
func intCompare(n int) bool {
	return n > 0
}

// zeroCompare against exact zero is floatcmp's business, not a
// tolerance literal.
func zeroCompare(x float64) bool {
	return x > 0
}
