// Package scip holds positive (pos.go) and negative (neg.go) fixtures
// for the tolconst analyzer: raw tolerance literals in comparisons. The
// directory nests under internal/scip so the package path passes the
// analyzer's Applies filter.
package scip

import "math"

func feasible(ax, rhs float64) bool {
	return ax < rhs+1e-6 // WANT tolconst
}

func sameBound(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9 // WANT tolconst
}

func isFixed(lo, up float64) bool {
	return up-lo < 0.000001 // WANT tolconst
}

func crossed(v, up float64) bool {
	if v > up+1e-7 { // WANT tolconst
		return true
	}
	return false
}

func isNoise(x float64) bool {
	switch {
	case math.Abs(x) <= 1e-12: // WANT tolconst
		return true
	}
	return false
}
