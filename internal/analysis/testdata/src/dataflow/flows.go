// Package dataflow is the engine-level fixture: dataflow_test.go builds
// a Module over it and asserts the converged taint summaries directly
// (return-taint bits, parameter markers, sanitizers, and composition
// through callees) rather than going through an analyzer.
package dataflow

import (
	"sort"
	"strconv"
	"time"
)

// wallRet returns raw wall-clock taint.
func wallRet() int64 { return time.Now().UnixNano() }

// passthrough returns its parameter: the summary must carry the
// param-0 marker and no intrinsic taint.
func passthrough(s string) string { return s }

// viaIf taints v on one branch only; the join at the merge must keep
// the wall bit in the return summary.
func viaIf(flag bool) int64 {
	var v int64
	if flag {
		v = time.Now().UnixNano()
	}
	return v
}

// viaLoop acquires the taint inside a loop body through a module
// callee; the double body walk makes it visible at the return.
func viaLoop(n int) int64 {
	var v int64
	for i := 0; i < n; i++ {
		v = wallRet()
	}
	return v
}

// keysSorted sanitizes the map-order taint: after sort.Strings the
// result is deterministic.
func keysSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// keysRaw returns the keys in iteration order: the map-order bit must
// survive to the return summary.
func keysRaw(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// format launders nothing: strconv is a taint propagator.
func format(v int64) string { return strconv.FormatInt(v, 10) }

// wallWrapped composes three summaries: wallRet's intrinsic taint
// through format's and passthrough's param→return flows.
func wallWrapped() string { return passthrough(format(wallRet())) }
