package ug

// returnOnSignal leaves the loop through a return.
func returnOnSignal(ch chan int, done chan struct{}) {
	go func() {
		for {
			select {
			case v := <-ch:
				_ = v
			case <-done:
				return
			}
		}
	}()
}

// listensOnQuit never returns, but one of its blocking operations is a
// termination-named channel: trusted as a termination path.
func listensOnQuit(ch chan int, quit chan bool) {
	go func() {
		for {
			select {
			case <-ch:
			case <-quit:
			}
		}
	}()
}

// rangeOverChannel terminates when the channel is closed.
func rangeOverChannel(ch chan int) {
	go func() {
		for v := range ch {
			_ = v
		}
	}()
}

// returnInBody escapes via a conditional return (the runWorker shape:
// exit on the termination tag).
func returnInBody(ch chan int) {
	go func() {
		for {
			v := <-ch
			if v < 0 {
				return
			}
		}
	}()
}

// breakOut escapes the loop with an unlabeled break.
func breakOut(ch chan int) {
	go func() {
		for {
			v := <-ch
			if v == 0 {
				break
			}
		}
	}()
}

// oneShot has no loop at all.
func oneShot(ch chan int) {
	go func() { ch <- 1 }()
}

// spinWithDefault polls without blocking: a select with a default case
// never parks the goroutine.
func spinWithDefault(ch chan int, out []int) {
	go func() {
		for i := 0; i < 100; i++ {
			select {
			case v := <-ch:
				out[i] = v
			default:
			}
		}
	}()
}
