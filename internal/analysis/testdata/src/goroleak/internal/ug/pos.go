// Package ug holds positive (pos.go) and negative (neg.go) fixtures for
// the goroleak analyzer: goroutines that loop forever over blocking
// operations with no termination path.
package ug

// leakLiteral spawns a literal whose loop can only ever block on ch —
// nothing in the loop names a termination signal and control never
// leaves it.
func leakLiteral(ch chan int) {
	go func() { // WANT goroleak
		total := 0
		for {
			v := <-ch
			total += v
		}
	}()
}

// pump is the leaky body of a named-function spawn.
func pump(jobs, results chan int) {
	for {
		j := <-jobs
		results <- j * 2
	}
}

func startPump(jobs, results chan int) {
	go pump(jobs, results) // WANT goroleak
}

// runPump wraps pump: the leak is one synchronous call deeper.
func runPump(jobs, results chan int) { pump(jobs, results) }

func startWrapped(jobs, results chan int) {
	go runPump(jobs, results) // WANT goroleak
}

// leakSelect blocks in a select with no default and no escape; neither
// channel is termination-named.
func leakSelect(a, b chan int) {
	go func() { // WANT goroleak
		for {
			select {
			case <-a:
			case <-b:
			}
		}
	}()
}

// beatForever is the shape of a transport heartbeat loop that forgot
// its per-peer stop channel: it waits out each tick and writes a frame,
// with nothing in the loop naming a way to unwind. The real loop in
// internal/ug/comm/net selects on the peer's stop channel alongside the
// ticker.
func beatForever(tick <-chan int, wire chan<- byte) {
	for {
		select {
		case <-tick:
			wire <- 0x04
		}
	}
}

func startHeartbeat(tick chan int, wire chan byte) {
	go beatForever(tick, wire) // WANT goroleak
}

// admitPeers is a rendezvous accept loop with no shutdown path: every
// arriving connection is admitted to the roster forever. The real
// accept loop bounds itself by roster size and a listener deadline.
func admitPeers(arrivals chan int, roster chan int) {
	go func() { // WANT goroleak
		for {
			c := <-arrivals
			roster <- c
		}
	}()
}
