// Package ug holds positive (pos.go) and negative (neg.go) fixtures for
// the mapdet analyzer: map-iteration order leaking into solver
// decisions. The directory nests under internal/ug so the package path
// passes the analyzer's Applies filter.
package ug

// argmaxRank is the racing-winner bug: on ties (or with best<0 as the
// only guard on the first iteration) the chosen rank depends on which
// key the randomized iterator produced first.
func argmaxRank(bounds map[int]float64) int {
	best := -1
	var bb float64
	for rank, b := range bounds {
		if best < 0 || b > bb {
			best = rank // WANT mapdet
			bb = b
		}
	}
	return best
}

// keyList collects keys in iteration order and never sorts them.
func keyList(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // WANT mapdet
	}
	return keys
}

// relayKeys itself contains no map range; the order dependence reaches
// it through keyList's summary (asserted by the call-graph tests), so
// no finding is expected on this line.
func relayKeys(m map[string]int) []string {
	return keyList(m)
}

// total accumulates floats over the iteration: FP addition is not
// associative, so the sum depends on visit order.
func total(weights map[int]float64) float64 {
	sum := 0.0
	for _, w := range weights {
		sum += w // WANT mapdet
	}
	return sum
}

// snapshot is the checkpoint-layout bug: running subtrees dumped into a
// struct field in iteration order.
type snapshot struct {
	ranks []int
}

func dump(running map[int]string) snapshot {
	var s snapshot
	for rank := range running {
		s.ranks = append(s.ranks, rank) // WANT mapdet
	}
	return s
}

// derivedTaint assigns through a loop-local intermediary: taint follows
// the local into the outer assignment.
func derivedTaint(scores map[int]float64) int {
	pick := 0
	for id := range scores {
		candidate := id * 2
		if scores[id] > 0 {
			pick = candidate // WANT mapdet
		}
	}
	return pick
}
