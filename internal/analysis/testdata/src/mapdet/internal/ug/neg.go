package ug

import "sort"

// minBound is a reduction over values where the guard compares the
// assigned value itself: every visit order converges to the same
// minimum.
func minBound(bounds map[int]float64) float64 {
	lb := 1.0e18
	for _, b := range bounds {
		if b < lb {
			lb = b
		}
	}
	return lb
}

// sortedKeys collects then sorts: the canonical deterministic pattern.
func sortedKeys(m map[int]string) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// sortRanks sorts its argument; its summary records SortsArg.
func sortRanks(r []int) { sort.Ints(r) }

// helperSorted hands the collection to a module sorting helper instead
// of calling sort directly.
func helperSorted(m map[int]string) []int {
	var ranks []int
	for k := range m {
		ranks = append(ranks, k)
	}
	sortRanks(ranks)
	return ranks
}

// invert writes into slots addressed by the iteration values: each
// entry lands in the same place regardless of visit order.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// count uses integer arithmetic: exact and commutative.
func count(m map[int]bool) int {
	n := 0
	for _, v := range m {
		if v {
			n++
		}
	}
	return n
}

// hasNegative sets a constant flag: true is true in every order.
func hasNegative(m map[int]float64) bool {
	found := false
	for _, v := range m {
		if v < 0 {
			found = true
		}
	}
	return found
}
