package tracekind

import "repro/internal/obs"

// emitSubset sets a legal subset of the kind's fields.
func emitSubset(tr *obs.Tracer) {
	tr.Emit(obs.Event{Kind: obs.KindDispatch, Rank: 1, Sub: 2})
}

// emitZero is the bare zero value: nothing to check.
func emitZero(tr *obs.Tracer) {
	var ev obs.Event
	tr.Emit(ev)
}

// emitFull uses every field run.end allows.
func emitFull(tr *obs.Tracer) {
	tr.Emit(obs.Event{Kind: obs.KindRunEnd, Dual: 1, Primal: 2, Nodes: 3})
}

// emitLateLegal writes allowed fields after the literal.
func emitLateLegal(tr *obs.Tracer) {
	ev := obs.Event{Kind: obs.KindOutcome}
	ev.Rank = 4
	ev.Str = "completed"
	tr.Emit(ev)
}

// emitRetag reassigns the kind; run.stop also carries Open, so the
// earlier field stays legal under both tags.
func emitRetag(tr *obs.Tracer) {
	ev := obs.Event{Kind: obs.KindRunStart, Open: 1}
	ev.Kind = obs.KindRunStop
	tr.Emit(ev)
}

// build returns an event whose kind the caller cannot see; late writes
// on it stay unchecked rather than guessed at.
func build() obs.Event { return obs.Event{Kind: obs.KindStatus} }

func emitHelperBuilt(tr *obs.Tracer) {
	ev := build()
	ev.Dual = 2
	tr.Emit(ev)
}
