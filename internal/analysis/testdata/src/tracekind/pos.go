// Package tracekind holds fixtures for the tracekind analyzer:
// obs.Event construction sites drifting from the trace schema. The
// fixtures import the real repro/internal/obs so the checks run against
// the production schema table.
package tracekind

import "repro/internal/obs"

// emitTypo misspells a known kind; the analyzer suggests the nearest
// known kind as a mechanical fix (asserted separately in the tests).
func emitTypo(tr *obs.Tracer) {
	tr.Emit(obs.Event{Kind: "despatch", Rank: 1}) // WANT tracekind
}

// emitAlien uses a kind nowhere near the schema: no fix, just the
// pointer at the schema file.
func emitAlien(tr *obs.Tracer) {
	tr.Emit(obs.Event{Kind: "frobnicate.phase", Rank: 1}) // WANT tracekind
}

// emitBadField sets a payload field the schema does not allow for the
// kind (comm.heartbeat carries Rank only).
func emitBadField(tr *obs.Tracer) {
	tr.Emit(obs.Event{Kind: obs.KindCommHeartbeat, Dual: 1}) // WANT tracekind
}

// emitStamped sets a tracer-stamped field from an emit site.
func emitStamped(tr *obs.Tracer) {
	tr.Emit(obs.Event{Kind: obs.KindStatus, Wall: 3}) // WANT tracekind
}

// emitNoKind sets payload fields without saying what the event is.
func emitNoKind(tr *obs.Tracer) {
	tr.Emit(obs.Event{Rank: 3}) // WANT tracekind
}

// emitNonConst cannot be checked against the schema at all.
func emitNonConst(tr *obs.Tracer, kind string) {
	tr.Emit(obs.Event{Kind: kind, Rank: 1}) // WANT tracekind
}

// emitPositional defeats keyed checking outright.
func emitPositional(tr *obs.Tracer) {
	tr.Emit(obs.Event{1, 2, 3.0, obs.KindStatus, 4, 5, 6, 7, 8, 9, 10, 11, "x"}) // WANT tracekind
}

// emitAssign drifts after the literal: the interpreter tracks ev's kind
// through the local variable, so the late Primal write is checked too.
func emitAssign(tr *obs.Tracer) {
	ev := obs.Event{Kind: obs.KindDispatch}
	ev.Sub = 7
	ev.Primal = 1 // WANT tracekind
	tr.Emit(ev)
}
