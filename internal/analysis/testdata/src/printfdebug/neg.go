package printfdebug

import (
	"fmt"
	"io"
)

func toWriter(w io.Writer) {
	fmt.Fprintf(w, "row\n") // writer-parameterized output is the fix
}

func formatting(x float64) string {
	return fmt.Sprintf("x=%g", x) // Sprintf produces a value, prints nothing
}

func errorValue() error {
	return fmt.Errorf("boom")
}
