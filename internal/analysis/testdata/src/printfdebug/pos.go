// Package printfdebug holds positive (pos.go) and negative (neg.go)
// fixtures for the printfdebug analyzer.
package printfdebug

import (
	"fmt"
	"os"
)

func stdoutPrint() {
	fmt.Println("node bound improved") // WANT printfdebug
}

func stdoutPrintf(x float64) {
	fmt.Printf("x=%g\n", x) // WANT printfdebug
}

func stdoutPrintPlain() {
	fmt.Print("...") // WANT printfdebug
}

func builtinPrint(x int) {
	println(x) // WANT printfdebug
}

func builtinPrintNoLn(x int) {
	print(x) // WANT printfdebug
}

func fprintStdout() {
	fmt.Fprintf(os.Stdout, "table\n") // WANT printfdebug
}

func fprintStderr() {
	fmt.Fprintln(os.Stderr, "debug") // WANT printfdebug
}
