// Package ignore exercises the //lint:ignore suppression mechanism:
// a correctly annotated violation is suppressed, a directive on the
// line above also suppresses, and malformed or unknown directives are
// reported under the "lint" pseudo-analyzer. Expected findings are
// asserted explicitly in analysis_test.go.
package ignore

func sameLine(a, b float64) bool {
	return a == b //lint:ignore floatcmp fixture: audited exact check
}

func lineAbove(a, b float64) bool {
	//lint:ignore floatcmp fixture: audited exact check
	return a != b
}

func wrongAnalyzer(a, b float64) bool {
	//lint:ignore errdrop fixture: names the wrong analyzer on purpose
	return a == b // stays reported: the directive covers errdrop only
}

func unsuppressed(a, b float64) bool {
	return a == b // reported: no directive
}

func multiName(a, b float64) bool {
	return a == b //lint:ignore floatcmp,errdrop fixture: list form
}

func missingReason(a, b float64) bool {
	return a == b //lint:ignore floatcmp
}

func unknownName(a, b float64) bool {
	return a == b //lint:ignore nosuchanalyzer fixture reason
}
