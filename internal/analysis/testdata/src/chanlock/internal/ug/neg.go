package ug

import "net"

// uncondSend holds the lock on every path: that is lockhold/lockblock
// territory, and chanlock stays quiet to avoid double-reporting.
func uncondSend(h *hub) {
	h.mu.Lock()
	h.ch <- 1
	h.mu.Unlock()
}

// pollSend never parks: the select has a default arm.
func pollSend(h *hub, urgent bool) {
	if urgent {
		h.mu.Lock()
		defer h.mu.Unlock()
	}
	select {
	case h.ch <- 1:
	default:
	}
}

// sendAfter releases inside the branch, so the lock is never held at
// the send.
func sendAfter(h *hub, urgent bool) {
	if urgent {
		h.mu.Lock()
		h.mu.Unlock()
	}
	h.ch <- 1
}

// readUnlocked does its network IO outside any critical section; the
// missing deadline is ctxdeadline's concern, not chanlock's.
func readUnlocked(h *hub, conn net.Conn, buf []byte) {
	h.mu.Lock()
	h.mu.Unlock()
	_, _ = conn.Read(buf)
}
