// Package ug holds fixtures for the chanlock analyzer: blocking channel
// and network operations reached while a mutex may be held. The
// directory nests under internal/ug so the package path passes the
// analyzer's Applies filter.
package ug

import (
	"net"
	"sync"
)

type hub struct {
	mu sync.Mutex
	ch chan int
}

// condSend takes the lock on only one path, a shape the purely linear
// lockhold scan cannot see: the send can block while holding mu.
func condSend(h *hub, urgent bool) {
	if urgent {
		h.mu.Lock()
	}
	h.ch <- 1 // WANT chanlock
	if urgent {
		h.mu.Unlock()
	}
}

// condRecv parks on a receive with the lock conditionally held; the
// deferred unlock never runs until the receive completes.
func condRecv(h *hub, urgent bool) int {
	if urgent {
		h.mu.Lock()
		defer h.mu.Unlock()
	}
	return <-h.ch // WANT chanlock
}

// tryHeld: TryLock acquires on only some executions, so the send runs
// with the lock sometimes held.
func tryHeld(h *hub) {
	if h.mu.TryLock() {
		defer h.mu.Unlock()
	}
	h.ch <- 1 // WANT chanlock
}

// netWriteHeld blocks on the network inside the critical section:
// remote backpressure extends the hold for every other goroutine.
func netWriteHeld(mu *sync.Mutex, conn net.Conn, buf []byte) {
	mu.Lock()
	defer mu.Unlock()
	_, _ = conn.Write(buf) // WANT chanlock
}
