// Package lockhold holds positive (pos.go) and negative (neg.go)
// fixtures for the lockhold analyzer.
package lockhold

import (
	"fmt"
	"os"
	"sync"
	"time"
)

type box struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []int
}

func sendWhileLocked(b *box, ch chan int) {
	b.mu.Lock()
	ch <- 1 // WANT lockhold
	b.mu.Unlock()
}

func recvWhileLocked(b *box, ch chan int) int {
	b.mu.Lock()
	v := <-ch // WANT lockhold
	b.mu.Unlock()
	return v
}

func sleepWhileDeferLocked(b *box) {
	b.mu.Lock()
	defer b.mu.Unlock()
	time.Sleep(time.Millisecond) // WANT lockhold
}

func ioWhileLocked(b *box, path string) {
	b.mu.Lock()
	_, _ = os.Create(path) // WANT lockhold
	b.mu.Unlock()
}

func printWhileLocked(b *box) {
	b.mu.Lock()
	fmt.Println("debugging") // WANT lockhold
	b.mu.Unlock()
}

func selectWhileLocked(b *box, ch chan int) {
	b.mu.Lock()
	select { // WANT lockhold
	case <-ch:
	default:
	}
	b.mu.Unlock()
}

func sendInNestedBlock(b *box, ch chan int, flag bool) {
	b.mu.Lock()
	if flag {
		ch <- 2 // WANT lockhold
	}
	b.mu.Unlock()
}

func waitWithoutLoop(b *box) {
	b.cond.L.Lock()
	b.cond.Wait() // WANT lockhold
	b.cond.L.Unlock()
}

type embedded struct {
	sync.Mutex
	n int
}

func embeddedMutex(e *embedded, ch chan int) {
	e.Lock()
	ch <- e.n // WANT lockhold
	e.Unlock()
}
