package lockhold

import (
	"sync"
	"time"
)

func sendAfterUnlock(b *box, ch chan int) {
	b.mu.Lock()
	b.queue = append(b.queue, 1)
	b.mu.Unlock()
	ch <- 1 // lock released first: fine
}

func pureCritical(b *box) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := len(b.queue)
	return n
}

func waitInForLoop(b *box) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.queue) == 0 {
		b.cond.Wait() // the canonical pattern
	}
	v := b.queue[0]
	b.queue = b.queue[1:]
	return v
}

func sleepUnlocked() {
	time.Sleep(time.Millisecond)
}

// funcLitOwnDiscipline: the goroutine body takes its own lock; the
// outer function holds nothing when it launches it.
func funcLitOwnDiscipline(b *box, ch chan int) {
	go func() {
		b.mu.Lock()
		b.queue = append(b.queue, 1)
		b.mu.Unlock()
		ch <- 1
	}()
}

// waitGroupWait is not Cond.Wait: no re-check loop required.
func waitGroupWait(wg *sync.WaitGroup) {
	wg.Wait()
}

// notAMutex: Lock/Unlock methods on a non-sync type are out of scope.
type fakeLock struct{ n int }

func (f *fakeLock) Lock()   { f.n++ }
func (f *fakeLock) Unlock() { f.n-- }

func fakeLockSend(f *fakeLock, ch chan int) {
	f.Lock()
	ch <- 1
	f.Unlock()
}
