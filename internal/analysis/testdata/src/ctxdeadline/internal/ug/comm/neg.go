package comm

import (
	"bufio"
	"io"
	"net"
	"time"
)

// guarded arms the read deadline before every read, including around
// the loop back-edge.
func guarded(conn net.Conn, buf []byte) error {
	for {
		_ = conn.SetReadDeadline(time.Now().Add(time.Second))
		if _, err := conn.Read(buf); err != nil {
			return err
		}
	}
}

// send arms the write deadline first; also exercises the summary mask —
// callers of send are not alarmed about its internal write.
func send(conn net.Conn, buf []byte) error {
	_ = conn.SetWriteDeadline(time.Now().Add(time.Second))
	_, err := conn.Write(buf)
	return err
}

// sendVia calls the internally-guarded helper: no finding here.
func sendVia(conn net.Conn, buf []byte) error {
	return send(conn, buf)
}

// dialBounded uses the bounded dial variant.
func dialBounded(addr string) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, time.Second)
}

// wrappedGuarded reads through a bufio wrapper, but the deadline on the
// underlying conn covers the aliased reads.
func wrappedGuarded(conn net.Conn) (byte, error) {
	br := bufio.NewReader(conn)
	_ = conn.SetReadDeadline(time.Now().Add(time.Second))
	return br.ReadByte()
}

// copyAll works on plain reader/writer values: the bound is the call
// site's responsibility, where the concrete connection is visible.
func copyAll(w io.Writer, r io.Reader) {
	_, _ = io.Copy(w, r)
}
