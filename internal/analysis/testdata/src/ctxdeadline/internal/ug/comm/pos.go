// Package comm holds fixtures for the ctxdeadline analyzer: blocking
// network and mailbox operations reachable without a deadline on some
// path. The directory nests under internal/ug/comm so the package path
// passes both the analyzer's Applies filter and the comm-receiver
// heuristic for the local Mailbox type.
package comm

import (
	"bufio"
	"io"
	"net"
	"time"
)

// rawRead blocks forever if the peer stalls: no deadline anywhere.
func rawRead(conn net.Conn, buf []byte) {
	_, _ = conn.Read(buf) // WANT ctxdeadline
}

// rawWrite can also park indefinitely under remote backpressure.
func rawWrite(conn net.Conn, buf []byte) {
	_, _ = conn.Write(buf) // WANT ctxdeadline
}

// dial has no bound at all.
func dial(addr string) (net.Conn, error) {
	return net.Dial("tcp", addr) // WANT ctxdeadline
}

// condGuard arms the deadline on only one path; the must-analysis
// intersection at the merge drops it.
func condGuard(conn net.Conn, fast bool, buf []byte) {
	if fast {
		_ = conn.SetReadDeadline(time.Now().Add(time.Second))
	}
	_, _ = conn.Read(buf) // WANT ctxdeadline
}

// cleared re-opens the window: a zero time.Time clears the deadline.
func cleared(conn net.Conn, buf []byte) {
	_ = conn.SetDeadline(time.Now().Add(time.Second))
	_, _ = io.ReadFull(conn, buf)
	_ = conn.SetDeadline(time.Time{})
	_, _ = conn.Read(buf) // WANT ctxdeadline
}

// fill is a plain io.Reader helper — not flagged here, but its summary
// records that param 0 is read from.
func fill(r io.Reader, buf []byte) error {
	_, err := io.ReadFull(r, buf)
	return err
}

// viaHelper passes an unguarded conn into fill; the finding lands at
// the call site, where the connection (and the fix) lives.
func viaHelper(conn net.Conn, buf []byte) {
	_ = fill(conn, buf) // WANT ctxdeadline
}

// wrappedUnguarded reads through a bufio wrapper; the alias tracking
// must chase br back to conn.
func wrappedUnguarded(conn net.Conn) (byte, error) {
	br := bufio.NewReader(conn)
	return br.ReadByte() // WANT ctxdeadline
}

// Mailbox is a local stand-in for the comm-layer mailbox: Get blocks
// until a send or a close.
type Mailbox struct{ ch chan int }

// Get blocks until a value arrives or the box is closed.
func (m *Mailbox) Get() (int, bool) {
	v, ok := <-m.ch
	return v, ok
}

// drain blocks on Get with no shutdown justification.
func drain(mb *Mailbox) int {
	v, _ := mb.Get() // WANT ctxdeadline
	return v
}

// drainJustified carries the required justification, so no finding.
func drainJustified(mb *Mailbox) int {
	//lint:ignore ctxdeadline close unblocks Get in this fixture
	v, _ := mb.Get()
	return v
}
