// Package scip is an exportdoc fixture shaped like a plugin-facing
// package (positive cases in pos.go, negative in neg.go). This file
// deliberately carries no inline markers: a trailing comment would
// itself document the declaration. The expected findings are asserted
// by name in analysis_test.go.
package scip

func Undocumented() {}

type Hook interface {
	Fire() error
}

// Documented has one documented and one undocumented method.
type Documented struct{ n int }

// Run is documented, but Stop below is not.
func (d *Documented) Run() {}

func (d *Documented) Stop() {}

var Tunable = 3

const Limit = 10
