package scip

// Fine is documented.
func Fine() {}

// Plugin documents the interface; each method documents its contract.
type Plugin interface {
	// Name identifies the plugin.
	Name() string
	// Init is called once per solver instance.
	Init() error
}

// Grouped constants share the block doc.
const (
	ModeA = iota
	ModeB
)

// internalHelper is unexported: no doc required (but it has one).
func internalHelper() {}

func alsoUnexported() {}

type hidden struct{}

// Exported method on an unexported type is package-private.
func (hidden) Len() int { return 0 }

func (hidden) Cap() int { return 0 }

// Value has a doc comment.
var Value = 1

// Pair documents the whole var block.
var (
	First  = 1
	Second = 2
)
