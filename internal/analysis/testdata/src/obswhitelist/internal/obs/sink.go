// Package obs stands in for the real internal/obs package: the
// printfdebug whitelist keys on the "/internal/obs" path segment, so
// this fixture proves the observability layer's own console output
// (sinks, table writers) is exempt. None of the lines below carry WANT
// markers — a finding here is a whitelist regression.
package obs

import (
	"fmt"
	"os"
)

func emitTable() {
	fmt.Println("metric  kind  value") // exempt: obs IS the output layer
	fmt.Printf("%-20s %d\n", "ug.pool.depth", 3)
}

func sinkFallback() {
	fmt.Fprintln(os.Stderr, "obs: sink write failed, dropping event")
	fmt.Fprintf(os.Stdout, "trace summary\n")
}
