package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop flags call statements inside internal/ packages that silently
// discard a returned error. In a solver, a swallowed error usually
// surfaces later as a wrong bound or a truncated checkpoint — far from
// its cause. Escape hatches, in order of preference: handle the error;
// assign it explicitly (`_ = f.Close()`) to mark an audited discard; or
// annotate with //lint:ignore errdrop <reason>. Deferred calls and
// methods that are documented never to fail ((*bytes.Buffer),
// (*strings.Builder), hash.Hash writes) are exempt.
var ErrDrop = &Analyzer{
	Name:    "errdrop",
	Doc:     "call discards an error result inside internal/ packages",
	Applies: isInternal,
	Run:     runErrDrop,
}

func runErrDrop(p *Pass) {
	inspect(p, func(n ast.Node) bool {
		st, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := st.X.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !callReturnsError(p, call) || neverFails(p, call) {
			return true
		}
		p.Reportf(call.Pos(), "%s returns an error that is discarded; handle it or assign to _ explicitly", callName(call))
		return true
	})
}

// callReturnsError reports whether the call's result is or includes an
// error.
func callReturnsError(p *Pass, call *ast.CallExpr) bool {
	tv, ok := p.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "error" && obj.Pkg() == nil
}

// neverFails exempts calls whose dropped error carries no information:
// methods on in-memory writers that are documented to always return nil,
// and fmt.Fprint* — writer-parameterized formatting where the error is
// the writer's (tabwriter/bufio surface it at Flush, in-memory writers
// never fail, and printing to os.Stdout is printfdebug's business).
func neverFails(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if s, ok := p.Info.Selections[sel]; ok {
		recv := s.Recv().String()
		switch {
		case strings.HasSuffix(recv, "bytes.Buffer"),
			strings.HasSuffix(recv, "strings.Builder"),
			strings.HasSuffix(recv, "hash.Hash"):
			return true
		}
		return false
	}
	if isPkgIdent(p, sel.X, "fmt") && fprintFuncs[sel.Sel.Name] {
		return true
	}
	return false
}

func callName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return exprString(f)
	}
	return "call"
}
