package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// ChanLock generalizes lockblock to the cases straight-line scanning
// cannot see, using the flow driver's may-held lattice: a channel send
// or receive reached while a mutex is held on only *some* paths (the
// conditional acquire that lockhold's linear scan misses), and any
// network write made while any mutex is held — remote backpressure can
// stall the peer arbitrarily, extending the critical section with it.
//
// Non-blocking select cases (a select with a default clause) are
// exempt: they poll, they do not park the goroutine.
var ChanLock = &Analyzer{
	Name:    "chanlock",
	Doc:     "channel op under a conditionally-held mutex, or network write while any mutex is held",
	Applies: isInternal,
	Run:     runChanLock,
}

type lockWalker struct {
	p           *Pass
	mod         *Module
	info        *types.Info
	nonBlocking map[token.Pos]bool // comm ops inside select-with-default
	seen        map[string]bool
}

// heldEnv is the flow state: mutexes that may be held here. The value
// records whether the hold is conditional (acquired on only some paths
// into this point).
type heldEnv struct {
	w    *lockWalker
	held map[types.Object]bool
}

func (e *heldEnv) fork() flowState {
	cp := &heldEnv{w: e.w, held: make(map[types.Object]bool, len(e.held))}
	for k, v := range e.held {
		cp.held[k] = v
	}
	return cp
}

// merge unions may-held facts: a mutex held on only one incoming path
// becomes conditionally held.
func (e *heldEnv) merge(other flowState) {
	o := other.(*heldEnv)
	for k, cond := range o.held {
		if mine, ok := e.held[k]; ok {
			e.held[k] = mine || cond
		} else {
			e.held[k] = true
		}
	}
	for k := range e.held {
		if _, ok := o.held[k]; !ok {
			e.held[k] = true
		}
	}
}

func (e *heldEnv) leaf(st ast.Stmt) {
	switch s := st.(type) {
	case *ast.DeferStmt:
		return // deferred Unlock releases at return, not here
	case *ast.GoStmt:
		return // the new goroutine does not hold this one's locks
	case *ast.RangeStmt:
		e.scan(s.X)
	default:
		e.scan(st)
	}
}

func (e *heldEnv) expr(x ast.Expr) {
	if x != nil {
		e.scan(x)
	}
}

func (e *heldEnv) scan(nd ast.Node) {
	walkShallow(nd, func(x ast.Node) bool {
		switch v := x.(type) {
		case *ast.CallExpr:
			if obj, op, ok := syncLockOp(e.w.info, v); ok {
				if obj != nil {
					switch op {
					case "Lock", "RLock":
						e.held[obj] = false
					case "TryLock", "TryRLock":
						e.held[obj] = true // acquired only when it succeeds
					case "Unlock", "RUnlock":
						delete(e.held, obj)
					}
				}
				return true
			}
			e.netWrite(v)
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				e.commOp(v.Pos(), "receive")
			}
		case *ast.SendStmt:
			e.commOp(v.Pos(), "send")
		}
		return true
	})
}

// commOp reports a blocking channel operation while a mutex may be held
// conditionally. Unconditional holds are lockhold/lockblock territory;
// re-reporting them here would double up.
func (e *heldEnv) commOp(pos token.Pos, what string) {
	if e.w.nonBlocking[pos] {
		return
	}
	for _, mu := range e.heldSorted() {
		if !e.held[mu] {
			continue
		}
		e.w.report(pos, "channel %s while mutex %q may be held (acquired on only some paths into this point); restructure so the hold is unconditional or move the %s out",
			what, mu.Name(), what)
	}
}

// netWrite reports network writes (raw or through module callees) made
// while any mutex is held.
func (e *heldEnv) netWrite(call *ast.CallExpr) {
	if len(e.held) == 0 {
		return
	}
	check := func(arg ast.Expr, k ioKind, via string) {
		if k&ioWrite == 0 {
			return
		}
		obj := exprRootObj(e.w.info, arg)
		if obj == nil || !connishObj(obj) {
			return
		}
		suffix := ""
		if via != "" {
			suffix = " (via " + via + ")"
		}
		for _, mu := range e.heldSorted() {
			e.w.report(arg.Pos(), "network write on %s while mutex %q is held%s; remote backpressure extends the critical section",
				exprString(arg), mu.Name(), suffix)
		}
	}
	callees := e.w.mod.calleesOf(e.w.info, call.Fun)
	if len(callees) == 0 {
		for _, t := range rawIOTargets(e.w.info, call) {
			check(t.expr, t.kind, "")
		}
		return
	}
	args := alignedArgs(e.w.info, call)
	for _, c := range callees {
		for i, k := range c.ioParams {
			if k != 0 && i < len(args) {
				check(args[i], k, shortFuncName(c))
			}
		}
	}
}

// heldSorted returns the held mutexes in stable (name) order so finding
// order is deterministic.
func (e *heldEnv) heldSorted() []types.Object {
	out := make([]types.Object, 0, len(e.held))
	for mu := range e.held {
		out = append(out, mu)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

func (w *lockWalker) report(pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	key := fmt.Sprintf("%d:%s", pos, msg)
	if w.seen[key] {
		return
	}
	w.seen[key] = true
	w.p.Reportf(pos, "%s", msg)
}

// syncLockOp matches mu.Lock()-style calls on sync primitives and
// returns the mutex identity and operation name.
func syncLockOp(info *types.Info, call *ast.CallExpr) (types.Object, string, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	s, ok := info.Selections[sel]
	if !ok {
		return nil, "", false
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock", "Unlock", "RUnlock":
		return mutexIdentity(info, sel.X), sel.Sel.Name, true
	}
	return nil, "", false
}

// nonBlockingComms marks the comm operations of every
// select-with-default in body: those poll rather than block.
func nonBlockingComms(body *ast.BlockStmt) map[token.Pos]bool {
	out := map[token.Pos]bool{}
	walkShallow(body, func(nd ast.Node) bool {
		sel, ok := nd.(*ast.SelectStmt)
		if !ok || !selectHasDefault(sel) {
			return true
		}
		for _, c := range sel.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			ast.Inspect(cc.Comm, func(x ast.Node) bool {
				switch v := x.(type) {
				case *ast.SendStmt:
					out[v.Pos()] = true
				case *ast.UnaryExpr:
					if v.Op == token.ARROW {
						out[v.Pos()] = true
					}
				}
				return true
			})
		}
		return true
	})
	return out
}

// exprRootObj resolves an expression's root identifier to its object.
func exprRootObj(info *types.Info, e ast.Expr) types.Object {
	root := rootIdent(e)
	if root == nil {
		return nil
	}
	if obj := info.Uses[root]; obj != nil {
		return obj
	}
	return info.Defs[root]
}

func runChanLock(p *Pass) {
	for _, n := range p.Mod.Funcs() {
		if n.Pkg.PkgPath != p.PkgPath || n.body() == nil {
			continue
		}
		w := &lockWalker{
			p:           p,
			mod:         p.Mod,
			info:        n.Pkg.Info,
			nonBlocking: nonBlockingComms(n.body()),
			seen:        map[string]bool{},
		}
		env := &heldEnv{w: w, held: map[types.Object]bool{}}
		flowStmts(n.body().List, env)
	}
}
