package analysis

import (
	"strings"
	"testing"
)

func TestHotAllocFixture(t *testing.T) { checkFixture(t, HotAlloc, "hotalloc") }

// TestHotAllocDirectives asserts the malformed-directive findings by
// message: they land on the directive comment line, which cannot carry
// a WANT marker without changing the directive text itself.
func TestHotAllocDirectives(t *testing.T) {
	pkg := loadFixture(t, "hotallocdir")
	var got []string
	for _, f := range RunPackage(pkg, []*Analyzer{HotAlloc}) {
		got = append(got, f.Message)
	}
	want := []string{
		`unknown //ugo:hotpath argument "turbo"`,
		"//ugo:coldpath needs an audit reason",
	}
	for _, w := range want {
		found := false
		for _, g := range got {
			if strings.Contains(g, w) {
				found = true
			}
		}
		if !found {
			t.Errorf("missing directive finding containing %q in %v", w, got)
		}
	}
	if len(got) != len(want) {
		t.Errorf("got %d findings %v, want %d", len(got), got, len(want))
	}
}

// TestHotDepthAndReport pins the hot-region lattice on the fixture
// package: root depths, loop-depth propagation into helpers, coldpath
// boundaries, and the ranked report.
func TestHotDepthAndReport(t *testing.T) {
	pkg := loadFixture(t, "hotalloc")
	mod := BuildModule([]*Package{pkg})

	depths := map[string]int{
		"process": 1,  // //ugo:hotpath root
		"helper":  2,  // called from process's loop
		"drive":   0,  // //ugo:hotpath driver owns the loop
		"consume": 1,  // called from drive's loop
		"record":  -1, // //ugo:coldpath boundary
		"frozen":  -1, // unreachable from any root
	}
	for name, want := range depths {
		n := mod.FuncByName("hotalloc." + name)
		if n == nil {
			t.Fatalf("function %s not found", name)
		}
		if got := n.HotDepth(); got != want {
			t.Errorf("HotDepth(%s) = %d, want %d", name, got, want)
		}
	}

	if a := mod.FuncByName("hotalloc.process").Alloc(); a.AllocsPerCall <= 0 {
		t.Errorf("process AllocsPerCall = %v, want > 0", a.AllocsPerCall)
	}
	if a := mod.FuncByName("hotalloc.frozen").Alloc(); a.AllocsPerCall <= 0 {
		t.Errorf("frozen AllocsPerCall = %v, want > 0 (estimates exist even for cold code)", a.AllocsPerCall)
	}

	rows := HotRows(mod)
	var sawProcess, sawBoundary bool
	for _, r := range rows {
		if strings.HasSuffix(r.Func, "hotalloc.process") {
			sawProcess = true
			if r.Depth != 1 || r.AllocsPerCall <= 0 || r.Sites == 0 {
				t.Errorf("process row = %+v", r)
			}
		}
		if strings.HasSuffix(r.Func, "hotalloc.record") {
			sawBoundary = true
			if r.Depth != -1 || r.Cold == "" {
				t.Errorf("record boundary row = %+v", r)
			}
		}
		if strings.HasSuffix(r.Func, "hotalloc.frozen") {
			t.Errorf("cold unreferenced function in report: %+v", r)
		}
	}
	if !sawProcess || !sawBoundary {
		t.Errorf("report missing rows: process=%v boundary=%v (rows %v)", sawProcess, sawBoundary, rows)
	}
}

// HotRows is a test seam over Module.HotReport.
func HotRows(m *Module) []HotRow { return m.HotReport() }
