package analysis

import (
	"strings"
	"testing"
)

// TestDataflowSummaries probes the taint engine directly: it builds a
// Module over the dataflow fixture and asserts the converged return
// summaries — intrinsic bits, parameter markers, join at control-flow
// merges, sanitizer recognition, and composition through callees.
func TestDataflowSummaries(t *testing.T) {
	pkg := loadFixture(t, "dataflow")
	m := BuildModule([]*Package{pkg})
	ret := func(suffix string) Taint {
		t.Helper()
		n := m.FuncByName(suffix)
		if n == nil {
			t.Fatalf("fixture function %s not found (or ambiguous)", suffix)
		}
		return n.RetTaint()
	}

	if got := ret(".wallRet"); got&TaintWall == 0 {
		t.Errorf("wallRet: return not wall-tainted (got %#x)", got)
	}
	if got := ret(".passthrough"); got&paramBit(0) == 0 {
		t.Errorf("passthrough: param-0 marker missing from return (got %#x)", got)
	} else if got&realTaints != 0 {
		t.Errorf("passthrough: spurious intrinsic taint %#x", got&realTaints)
	}
	if got := ret(".viaIf"); got&TaintWall == 0 {
		t.Errorf("viaIf: taint acquired on one branch lost at the merge (got %#x)", got)
	}
	if got := ret(".viaLoop"); got&TaintWall == 0 {
		t.Errorf("viaLoop: callee taint inside loop body lost (got %#x)", got)
	}
	if got := ret(".keysRaw"); got&TaintMapOrder == 0 {
		t.Errorf("keysRaw: map-iteration-order bit missing (got %#x)", got)
	}
	if got := ret(".keysSorted"); got&TaintMapOrder != 0 {
		t.Errorf("keysSorted: sort.Strings did not sanitize (got %#x)", got)
	}
	if got := ret(".wallWrapped"); got&TaintWall == 0 {
		t.Errorf("wallWrapped: taint lost composing through format+passthrough (got %#x)", got)
	}
}

// TestSinkFlowSummary asserts a param→sink flow at the function
// boundary: walldet's stamp fixture writes its second parameter into a
// checkpoint field, which callers must see in the summary.
func TestSinkFlowSummary(t *testing.T) {
	pkg := loadFixture(t, "walldet/internal/ug")
	m := BuildModule([]*Package{pkg})
	n := m.FuncByName(".stamp")
	if n == nil {
		t.Fatal("fixture function stamp not found")
	}
	for _, sf := range n.SinkFlows() {
		if sf.Param == 1 && sf.Sink == "checkpoint field Note" {
			return
		}
	}
	t.Errorf("stamp: missing param-1 → checkpoint sink flow; got %v", n.SinkFlows())
}

func TestWallDetFixture(t *testing.T) { checkFixture(t, WallDet, "walldet/internal/ug") }
func TestCtxDeadlineFixture(t *testing.T) {
	checkFixture(t, CtxDeadline, "ctxdeadline/internal/ug/comm")
}
func TestTraceKindFixture(t *testing.T) { checkFixture(t, TraceKind, "tracekind") }
func TestChanLockFixture(t *testing.T)  { checkFixture(t, ChanLock, "chanlock/internal/ug") }

// TestTraceKindSuggestedFix pins the mechanical fix on the misspelled
// kind: a replace-range edit swapping the literal for the nearest known
// kind, as surfaced by `ugolint -json`.
func TestTraceKindSuggestedFix(t *testing.T) {
	pkg := loadFixture(t, "tracekind")
	var fixes []Finding
	for _, f := range RunPackage(pkg, []*Analyzer{TraceKind}) {
		if f.Fix != nil {
			fixes = append(fixes, f)
		}
	}
	if len(fixes) != 1 {
		t.Fatalf("want exactly one suggested fix (the despatch typo), got %d", len(fixes))
	}
	f := fixes[0]
	if f.Fix.NewText != `"dispatch"` {
		t.Errorf("fix text = %s, want %q", f.Fix.NewText, `"dispatch"`)
	}
	if !strings.Contains(f.Message, `did you mean "dispatch"`) {
		t.Errorf("fix message %q does not name the replacement", f.Message)
	}
	if f.Fix.Pos.Line != f.Pos.Line || f.Fix.End.Line != f.Pos.Line {
		t.Errorf("fix range %v–%v should stay on the finding line %d", f.Fix.Pos, f.Fix.End, f.Pos.Line)
	}
	if f.Fix.End.Column <= f.Fix.Pos.Column {
		t.Errorf("fix range is empty: %v–%v", f.Fix.Pos, f.Fix.End)
	}
}
