package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CtxDeadline checks deadline discipline on blocking network and comm
// operations: a raw read or write on a connection-like object must have
// a matching deadline established on every path that reaches it, and
// inherently unbounded operations (net.Dial, mailbox receives) are
// surfaced so each one either gains a bound or carries a justified
// //lint:ignore documenting its shutdown path.
//
// Two layers cooperate. computeIOParams (run from BuildModule) is an
// interprocedural fixed point computing, per function, which parameters
// it performs raw reads/writes on — so `p.write(...)` is known to write
// on p's connection three calls deep. The analyzer itself is an
// intraprocedural MUST analysis over the flow driver (dataflow.go): a
// branch that sets a deadline only sometimes does not count, and
// setting the zero time.Time clears the guard. A function that manages
// deadlines for an object internally (any non-clearing Set*Deadline on
// a parameter root) masks that direction from its summary: callers are
// not re-alarmed for I/O the callee already bounds.
//
// "Connection-like" means the object's own type is net.Conn, or it is a
// struct holding a net.Conn field (the peer pattern: bufio reader/writer
// plus the conn they wrap). Raw helpers on generic io.Reader/io.Writer
// parameters are deliberately not flagged at their definition — the
// finding lands at the call site that passes a connection in, which is
// where the deadline belongs.
var CtxDeadline = &Analyzer{
	Name: "ctxdeadline",
	Doc:  "blocking net/comm operation reachable without a deadline on some path",
	Applies: func(pkgPath string) bool {
		return strings.Contains(pkgPath+"/", "/comm/")
	},
	Run: runCtxDeadline,
}

// ioKind classifies raw I/O directions for parameter summaries.
type ioKind uint8

const (
	ioRead ioKind = 1 << iota
	ioWrite
)

// ioTarget is one operand of a call that undergoes raw I/O.
type ioTarget struct {
	expr ast.Expr
	kind ioKind
}

// readMethodNames/writeMethodNames are stdlib method names that block on
// the wire when the receiver wraps a connection.
var readMethodNames = map[string]bool{
	"Read": true, "ReadByte": true, "ReadRune": true, "ReadString": true,
	"ReadBytes": true, "Peek": true, "Discard": true,
}

var writeMethodNames = map[string]bool{
	"Write": true, "WriteByte": true, "WriteString": true, "WriteRune": true,
	"Flush": true,
}

// rawIOTargets classifies a non-module call: which operands does it
// read from / write to directly? Module calls are resolved through
// ioParams summaries instead and must not reach here.
func rawIOTargets(info *types.Info, call *ast.CallExpr) []ioTarget {
	if path, name, ok := pkgFuncOf(info, call.Fun); ok {
		arg := func(i int, k ioKind) []ioTarget {
			if i < len(call.Args) {
				return []ioTarget{{call.Args[i], k}}
			}
			return nil
		}
		switch path {
		case "io":
			switch name {
			case "ReadFull", "ReadAtLeast", "ReadAll":
				return arg(0, ioRead)
			case "WriteString":
				return arg(0, ioWrite)
			case "Copy", "CopyN":
				return append(arg(0, ioWrite), arg(1, ioRead)...)
			}
		case "encoding/binary":
			switch name {
			case "Read":
				return arg(0, ioRead)
			case "Write":
				return arg(0, ioWrite)
			}
		}
		return nil
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if _, isMethod := info.Selections[sel]; !isMethod {
		return nil
	}
	name := sel.Sel.Name
	switch {
	case readMethodNames[name]:
		return []ioTarget{{sel.X, ioRead}}
	case writeMethodNames[name]:
		return []ioTarget{{sel.X, ioWrite}}
	}
	return nil
}

// alignedArgs returns the call's arguments receiver-first, aligned with
// paramList indexing.
func alignedArgs(info *types.Info, call *ast.CallExpr) []ast.Expr {
	args := make([]ast.Expr, 0, len(call.Args)+1)
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, isMethod := info.Selections[sel]; isMethod {
			args = append(args, sel.X)
		}
	}
	return append(args, call.Args...)
}

// computeIOParams converges the per-function raw-I/O parameter
// summaries over the call graph (monotone, so a plain sweep-to-fixpoint
// terminates).
func computeIOParams(m *Module) {
	for _, n := range m.nodes {
		n.ioParams = make([]ioKind, len(paramList(n)))
	}
	for changed := true; changed; {
		changed = false
		for _, n := range m.nodes {
			if n.body() == nil {
				continue
			}
			if scanIOParams(m, n) {
				changed = true
			}
		}
	}
}

// scanIOParams records which of n's parameters undergo raw I/O,
// directly or via module callees; it reports whether the summary grew.
// Directions the function itself bounds (a non-clearing Set*Deadline on
// the parameter root) are masked out.
func scanIOParams(m *Module, n *FuncNode) bool {
	info := n.Pkg.Info
	index := map[types.Object]int{}
	for i, obj := range paramList(n) {
		index[obj] = i
	}
	paramIdx := func(e ast.Expr) (int, bool) {
		root := rootIdent(e)
		if root == nil {
			return 0, false
		}
		obj := info.Uses[root]
		if obj == nil {
			obj = info.Defs[root]
		}
		i, ok := index[obj]
		return i, ok && i < len(n.ioParams)
	}
	mask := make([]ioKind, len(n.ioParams))
	walkShallow(n.body(), func(nd ast.Node) bool {
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		if dir, target, clearing := deadlineSetter(info, call); dir != 0 && !clearing {
			if i, ok := paramIdx(target); ok {
				mask[i] |= dir
			}
		}
		return true
	})
	changed := false
	add := func(e ast.Expr, k ioKind) {
		i, ok := paramIdx(e)
		if !ok {
			return
		}
		k &^= mask[i]
		if n.ioParams[i]&k != k {
			n.ioParams[i] |= k
			changed = true
		}
	}
	walkShallow(n.body(), func(nd ast.Node) bool {
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		callees := m.calleesOf(info, call.Fun)
		if len(callees) == 0 {
			for _, t := range rawIOTargets(info, call) {
				add(t.expr, t.kind)
			}
			return true
		}
		args := alignedArgs(info, call)
		for _, c := range callees {
			for i, k := range c.ioParams {
				if k != 0 && i < len(args) {
					add(args[i], k)
				}
			}
		}
		return true
	})
	return changed
}

// deadlineSetter matches x.SetDeadline / SetReadDeadline /
// SetWriteDeadline calls: dir is the guarded direction(s), target the
// receiver, clearing whether the argument is the zero time.Time
// (which removes the bound rather than setting one).
func deadlineSetter(info *types.Info, call *ast.CallExpr) (dir ioKind, target ast.Expr, clearing bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) != 1 {
		return 0, nil, false
	}
	if _, isMethod := info.Selections[sel]; !isMethod {
		return 0, nil, false
	}
	switch sel.Sel.Name {
	case "SetDeadline":
		dir = ioRead | ioWrite
	case "SetReadDeadline":
		dir = ioRead
	case "SetWriteDeadline":
		dir = ioWrite
	default:
		return 0, nil, false
	}
	return dir, sel.X, isZeroTime(info, call.Args[0])
}

// isZeroTime reports whether e is the literal time.Time{} zero value.
func isZeroTime(info *types.Info, e ast.Expr) bool {
	lit, ok := unparen(e).(*ast.CompositeLit)
	if !ok || len(lit.Elts) != 0 {
		return false
	}
	tv, ok := info.Types[lit]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	return ok && named.Obj().Name() == "Time" &&
		named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "time"
}

// ---------------------------------------------------------------------------
// The must-guard analysis
// ---------------------------------------------------------------------------

// guardWalker is the per-function state shared across forks: alias
// resolution and finding dedup (loop bodies are interpreted twice).
type guardWalker struct {
	p       *Pass
	mod     *Module
	info    *types.Info
	aliases map[types.Object]types.Object // bufio wrapper → wrapped conn
	seen    map[string]bool
}

// guardEnv is the flow state: the set of canonical roots with a read /
// write deadline established on every path reaching this point.
type guardEnv struct {
	w      *guardWalker
	rd, wr map[types.Object]bool
}

func (e *guardEnv) fork() flowState {
	cp := &guardEnv{w: e.w,
		rd: make(map[types.Object]bool, len(e.rd)),
		wr: make(map[types.Object]bool, len(e.wr))}
	for k := range e.rd {
		cp.rd[k] = true
	}
	for k := range e.wr {
		cp.wr[k] = true
	}
	return cp
}

// merge intersects: a guard must hold on both paths to survive.
func (e *guardEnv) merge(other flowState) {
	o := other.(*guardEnv)
	for k := range e.rd {
		if !o.rd[k] {
			delete(e.rd, k)
		}
	}
	for k := range e.wr {
		if !o.wr[k] {
			delete(e.wr, k)
		}
	}
}

func (e *guardEnv) leaf(st ast.Stmt) {
	switch s := st.(type) {
	case *ast.DeferStmt:
		// Deferred calls run under the guards in force at return, which
		// this forward pass cannot know; conn.Close() et al. are the
		// common case and never block on a deadline.
		return
	case *ast.RangeStmt:
		e.scan(s.X) // header only; the driver runs the body
	default:
		e.scan(st)
	}
}

func (e *guardEnv) expr(x ast.Expr) {
	if x != nil {
		e.scan(x)
	}
}

func (e *guardEnv) scan(nd ast.Node) {
	walkShallow(nd, func(x ast.Node) bool {
		if call, ok := x.(*ast.CallExpr); ok {
			e.call(call)
		}
		return true
	})
}

func (e *guardEnv) call(call *ast.CallExpr) {
	info := e.w.info

	// Deadline setters update the guard sets and are not themselves
	// blocking operations.
	if dir, target, clearing := deadlineSetter(info, call); dir != 0 {
		if obj := e.w.canonicalRoot(target); obj != nil {
			update := func(set map[types.Object]bool) {
				if clearing {
					delete(set, obj)
				} else {
					set[obj] = true
				}
			}
			if dir&ioRead != 0 {
				update(e.rd)
			}
			if dir&ioWrite != 0 {
				update(e.wr)
			}
		}
		return
	}

	// Inherently unbounded operations.
	if path, name, ok := pkgFuncOf(info, call.Fun); ok && path == "net" && name == "Dial" {
		e.w.report(call.Pos(), "net.Dial has no bound; use net.DialTimeout or a net.Dialer with Timeout")
		return
	}
	if desc, ok := commRecvTarget(info, call); ok {
		e.w.report(call.Pos(),
			"blocking %s receive has no deadline; bound it or justify the shutdown path with //lint:ignore", desc)
		return
	}

	// Raw I/O and module-callee I/O against the guard sets.
	callees := e.w.mod.calleesOf(info, call.Fun)
	if len(callees) == 0 {
		for _, t := range rawIOTargets(info, call) {
			e.checkIO(t.expr, t.kind, "")
		}
		return
	}
	args := alignedArgs(info, call)
	for _, c := range callees {
		for i, k := range c.ioParams {
			if k != 0 && i < len(args) {
				e.checkIO(args[i], k, shortFuncName(c))
			}
		}
	}
}

// checkIO reports connection I/O whose direction lacks a must-guard.
func (e *guardEnv) checkIO(arg ast.Expr, k ioKind, via string) {
	obj := e.w.canonicalRoot(arg)
	if obj == nil || !connishObj(obj) {
		return
	}
	suffix := ""
	if via != "" {
		suffix = " (via " + via + ")"
	}
	if k&ioRead != 0 && !e.rd[obj] {
		e.w.report(arg.Pos(), "network read on %s without a read deadline on this path; call SetReadDeadline first%s",
			exprString(arg), suffix)
	}
	if k&ioWrite != 0 && !e.wr[obj] {
		e.w.report(arg.Pos(), "network write on %s without a write deadline on this path; call SetWriteDeadline first%s",
			exprString(arg), suffix)
	}
}

// report dedups by position+message: loop bodies run twice under the
// driver, and several callees can blame the same operand.
func (w *guardWalker) report(pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	key := fmt.Sprintf("%d:%s", pos, msg)
	if w.seen[key] {
		return
	}
	w.seen[key] = true
	w.p.Reportf(pos, "%s", msg)
}

// canonicalRoot resolves an operand to the object deadlines apply to:
// the root identifier, followed through bufio aliases.
func (w *guardWalker) canonicalRoot(e ast.Expr) types.Object {
	obj := exprRootObj(w.info, e)
	for i := 0; obj != nil && i < 10; i++ {
		next, ok := w.aliases[obj]
		if !ok {
			break
		}
		obj = next
	}
	return obj
}

// connishObj reports whether obj is connection-like: its type is
// net.Conn, or a struct carrying a net.Conn field (the peer pattern).
func connishObj(obj types.Object) bool {
	t := obj.Type()
	if t == nil {
		return false
	}
	if isNetConnType(t) {
		return true
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isNetConnType(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

// isNetConnType reports whether t is (a pointer to) net.Conn.
func isNetConnType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Conn" && obj.Pkg() != nil && obj.Pkg().Path() == "net"
}

// commRecvTarget matches blocking comm-layer receives: Get/Recv methods
// on types declared under internal/ug/comm (Mailbox, Comm impls).
func commRecvTarget(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if name != "Get" && name != "Recv" {
		return "", false
	}
	s, ok := info.Selections[sel]
	if !ok {
		return "", false
	}
	t := s.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	if !strings.Contains(named.Obj().Pkg().Path()+"/", "internal/ug/comm/") {
		return "", false
	}
	return named.Obj().Name() + "." + name, true
}

// collectAliases records bufio wrapper construction (`br :=
// bufio.NewReader(conn)`), flow-insensitively, so deadlines set on the
// conn guard reads through the wrapper.
func collectAliases(info *types.Info, body *ast.BlockStmt) map[types.Object]types.Object {
	aliases := map[types.Object]types.Object{}
	walkShallow(body, func(nd ast.Node) bool {
		as, ok := nd.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		call, ok := unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		path, name, ok := pkgFuncOf(info, call.Fun)
		if !ok || path != "bufio" {
			return true
		}
		switch name {
		case "NewReader", "NewReaderSize", "NewWriter", "NewWriterSize", "NewReadWriter":
		default:
			return true
		}
		src := rootIdent(call.Args[0])
		if src == nil {
			return true
		}
		srcObj := info.Uses[src]
		if srcObj == nil {
			srcObj = info.Defs[src]
		}
		lhsObj := info.Defs[lhs]
		if lhsObj == nil {
			lhsObj = info.Uses[lhs]
		}
		if srcObj != nil && lhsObj != nil {
			aliases[lhsObj] = srcObj
		}
		return true
	})
	return aliases
}

func runCtxDeadline(p *Pass) {
	for _, n := range p.Mod.Funcs() {
		if n.Pkg.PkgPath != p.PkgPath || n.body() == nil {
			continue
		}
		w := &guardWalker{
			p:       p,
			mod:     p.Mod,
			info:    n.Pkg.Info,
			aliases: collectAliases(n.Pkg.Info, n.body()),
			seen:    map[string]bool{},
		}
		env := &guardEnv{w: w, rd: map[types.Object]bool{}, wr: map[types.Object]bool{}}
		flowStmts(n.body().List, env)
	}
}
