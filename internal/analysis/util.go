package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
)

// exprString renders an expression compactly (used for held-mutex keys
// and messages); it never fails, degrading to "<expr>".
func exprString(e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, token.NewFileSet(), e); err != nil {
		return "<expr>"
	}
	return buf.String()
}
