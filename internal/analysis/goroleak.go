package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoroLeak flags goroutine launches whose body (or a function it calls,
// up to a small depth) loops forever over blocking operations with no
// reachable termination path: no return or escaping break inside the
// loop, and nothing in the loop that names a termination signal (a
// done/quit/stop/cancel channel, a context, a closed flag). In the UG
// layer every ParaSolver goroutine must unwind when the LoadCoordinator
// broadcasts termination — a leaked worker keeps the run alive and, in
// the MPI-style GobComm configuration, wedges rank teardown.
//
// The check is deliberately evidence-based rather than a reachability
// proof: a loop that listens on anything termination-named, or that can
// return/break, is trusted. Range-over-channel loops terminate via
// close() and are never reported on their own.
var GoroLeak = &Analyzer{
	Name:    "goroleak",
	Doc:     "goroutine with an unbounded blocking loop and no termination path (no done/ctx signal, return, or break)",
	Applies: isInternal,
	Run:     runGoroLeak,
}

func runGoroLeak(p *Pass) {
	if p.Mod == nil {
		return
	}
	inspect(p, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		for _, t := range spawnTargets(p, gs) {
			if pos, leaking := leakyLoop(p.Mod, t, map[*FuncNode]bool{}, 0); leaking {
				p.Reportf(gs.Pos(), "goroutine %s loops forever on blocking operations with no termination path (loop at line %d: no done/ctx signal, return, or break); thread a done channel or context",
					t.Name(), p.Fset.Position(pos).Line)
			}
		}
		return true
	})
}

// spawnTargets resolves the module-local functions a go statement may
// start: the literal itself, or every callee of the spawned expression
// (interface dispatch fans out).
func spawnTargets(p *Pass, gs *ast.GoStmt) []*FuncNode {
	if lit, ok := unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		if n := p.Mod.byLit[lit]; n != nil {
			return []*FuncNode{n}
		}
		return nil
	}
	return p.Mod.calleesOf(p.Info, gs.Call.Fun)
}

// leakyLoop reports whether n (or a synchronous callee within depth 3)
// contains an infinite blocking loop with no termination evidence.
func leakyLoop(m *Module, n *FuncNode, visited map[*FuncNode]bool, depth int) (token.Pos, bool) {
	if n == nil || visited[n] || depth > 3 || n.body() == nil {
		return token.NoPos, false
	}
	visited[n] = true
	var leakPos token.Pos
	walkShallow(n.body(), func(nd ast.Node) bool {
		if leakPos != token.NoPos {
			return false
		}
		loop, ok := nd.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return true
		}
		f := gatherLoopFacts(m, n.Pkg.Info, loop)
		if f.blocks && !f.escapes && !f.termination {
			leakPos = loop.Pos()
			return false
		}
		return true
	})
	if leakPos != token.NoPos {
		return leakPos, true
	}
	for _, c := range n.Callees() {
		if pos, ok := leakyLoop(m, c, visited, depth+1); ok {
			return pos, true
		}
	}
	return token.NoPos, false
}

// loopFacts summarizes one infinite loop: does it block, can control
// leave it, and does anything in it name a termination signal.
type loopFacts struct {
	blocks      bool
	escapes     bool
	termination bool
}

// termWords are name fragments accepted as evidence of a termination
// path (matched case-insensitively against identifiers in the loop).
var termWords = []string{"done", "quit", "stop", "cancel", "shutdown", "close", "term", "exit", "ctx", "kill"}

func isTermName(name string) bool {
	lower := strings.ToLower(name)
	for _, w := range termWords {
		if strings.Contains(lower, w) {
			return true
		}
	}
	return false
}

func gatherLoopFacts(m *Module, info *types.Info, loop *ast.ForStmt) loopFacts {
	var f loopFacts
	f.escapes = stmtsEscape(loop.Body.List, true)
	// Comm statements of a select that has a default case never block;
	// exclude them from the blocking scan.
	nonBlocking := map[ast.Node]bool{}
	walkShallow(loop.Body, func(nd ast.Node) bool {
		if sel, ok := nd.(*ast.SelectStmt); ok && selectHasDefault(sel) {
			for _, c := range sel.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					nonBlocking[cc.Comm] = true
				}
			}
		}
		return true
	})
	walkShallow(loop.Body, func(nd ast.Node) bool {
		if nonBlocking[nd] {
			return false
		}
		switch x := nd.(type) {
		case *ast.Ident:
			if isTermName(x.Name) {
				f.termination = true
			}
		case *ast.SendStmt:
			f.blocks = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				f.blocks = true
			}
		case *ast.SelectStmt:
			if !selectHasDefault(x) {
				f.blocks = true
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[x.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					// Range over a channel ends when the channel is closed:
					// blocking, but with a built-in termination path.
					f.blocks = true
					f.termination = true
				}
			}
		case *ast.CallExpr:
			if callMayBlock(m, info, x) {
				f.blocks = true
			}
		}
		return true
	})
	return f
}

// callMayBlock classifies one call inside the loop: sync Wait methods,
// the blocking stdlib table, or a module callee whose summary blocks.
func callMayBlock(m *Module, info *types.Info, call *ast.CallExpr) bool {
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok {
			if fn, ok := s.Obj().(*types.Func); ok && fn.Pkg() != nil &&
				fn.Pkg().Path() == "sync" && fn.Name() == "Wait" {
				return true
			}
		} else if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := info.Uses[id].(*types.PkgName); ok {
				if fns := blockingCalls[pn.Imported().Path()]; fns != nil && fns[sel.Sel.Name] {
					return true
				}
			}
		}
	}
	for _, c := range m.calleesOf(info, call.Fun) {
		if c.Summary().MayBlock {
			return true
		}
	}
	return false
}

// stmtsEscape reports whether control can leave the loop from this
// statement list: a return, panic, goto, labeled break, or (when
// breakEscapes) an unlabeled break. Nested loops/switches/selects
// capture unlabeled breaks.
func stmtsEscape(list []ast.Stmt, breakEscapes bool) bool {
	for _, st := range list {
		if stmtEscapes(st, breakEscapes) {
			return true
		}
	}
	return false
}

func stmtEscapes(st ast.Stmt, breakEscapes bool) bool {
	switch s := st.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		if s.Tok == token.GOTO {
			return true // out of scope for this approximation: trust it
		}
		return s.Tok == token.BREAK && (breakEscapes || s.Label != nil)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return stmtsEscape(s.List, breakEscapes)
	case *ast.IfStmt:
		if stmtsEscape(s.Body.List, breakEscapes) {
			return true
		}
		if s.Else != nil {
			return stmtEscapes(s.Else, breakEscapes)
		}
	case *ast.ForStmt:
		return stmtsEscape(s.Body.List, false)
	case *ast.RangeStmt:
		return stmtsEscape(s.Body.List, false)
	case *ast.SwitchStmt:
		return clausesEscape(s.Body.List)
	case *ast.TypeSwitchStmt:
		return clausesEscape(s.Body.List)
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && stmtsEscape(cc.Body, false) {
				return true
			}
		}
	case *ast.LabeledStmt:
		return stmtEscapes(s.Stmt, breakEscapes)
	}
	return false
}

func clausesEscape(list []ast.Stmt) bool {
	for _, c := range list {
		if cc, ok := c.(*ast.CaseClause); ok && stmtsEscape(cc.Body, false) {
			return true
		}
	}
	return false
}
