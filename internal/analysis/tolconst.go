package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
)

// TolConst flags raw floating-point tolerance literals used in
// comparisons inside the solver core — the spelling `diff < 1e-9` that
// floatcmp (which looks for == / != on floats) cannot see. Scattered
// ad-hoc epsilons are how a parallel solver ends up accepting a
// solution on one rank that another rank rejects; every tolerance must
// be a named constant in internal/num so feasibility, optimality-gap,
// and zero tests agree across the coordinator, the workers, and the
// sequential core. Magnitudes above 1e-4 are not tolerances (branching
// scores, penalty weights) and are ignored, as are literals outside
// comparisons (step sizes, scaling factors).
var TolConst = &Analyzer{
	Name:    "tolconst",
	Doc:     "raw float tolerance literal (|v| <= 1e-4) in a comparison; use a named internal/num constant",
	Applies: isSolverCore,
	Run:     runTolConst,
}

// tolLiteralMax is the largest magnitude treated as a tolerance.
const tolLiteralMax = 1e-4

func runTolConst(p *Pass) {
	inspect(p, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
		default:
			return true
		}
		for _, operand := range [...]ast.Expr{be.X, be.Y} {
			ast.Inspect(operand, func(x ast.Node) bool {
				if _, ok := x.(*ast.FuncLit); ok {
					return false
				}
				lit, ok := x.(*ast.BasicLit)
				if !ok {
					return true
				}
				tv, ok := p.Info.Types[lit]
				if !ok || tv.Value == nil || tv.Value.Kind() != constant.Float {
					return true
				}
				v, _ := constant.Float64Val(tv.Value)
				if v < 0 {
					v = -v
				}
				if v > 0 && v <= tolLiteralMax {
					p.Reportf(lit.Pos(), "raw tolerance literal %s in a comparison; use a named constant from internal/num (FeasTol/OptTol/ZeroTol/...) so every layer applies the same epsilon", lit.Value)
				}
				return true
			})
		}
		return true
	})
}
