package analysis

import (
	"go/ast"
	"go/types"
)

// MathRand flags use of math/rand's global generator (rand.Intn,
// rand.Float64, rand.Shuffle, ...) in library code. The experiment
// harness reproduces the paper's tables, so every random decision —
// jitter in the LP, PUC instance generation, racing tie-breaks — must
// come from an explicitly seeded *rand.Rand owned by the caller. The
// global source is process-wide shared state: concurrent ParaSolvers
// interleave draws nondeterministically even with a fixed seed.
// Constructing a local generator (rand.New, rand.NewSource) is allowed.
var MathRand = &Analyzer{
	Name:    "mathrand",
	Doc:     "global math/rand generator used in library code; use a seeded *rand.Rand",
	Applies: isInternal,
	Run:     runMathRand,
}

// mathRandCtors are package-level functions that build local state
// rather than using the global generator.
var mathRandCtors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func runMathRand(p *Pass) {
	inspect(p, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := p.Info.Uses[id].(*types.PkgName)
		if !ok || pn.Imported().Path() != "math/rand" {
			return true
		}
		if mathRandCtors[sel.Sel.Name] {
			return true
		}
		p.Reportf(call.Pos(), "rand.%s draws from the process-global generator; thread a seeded *rand.Rand instead", sel.Sel.Name)
		return true
	})
}
