package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockHold flags operations that can block indefinitely while a
// sync.Mutex/RWMutex is held: channel sends/receives, select statements,
// sync.Cond.Wait outside a `for` re-check loop, time.Sleep, and
// file/network I/O. In the ug/comm mailbox and the coordinator's
// solution pool, any of these inside a critical section turns a
// microsecond lock into a convoy (or a deadlock when the peer needs the
// same lock). Cond.Wait must sit in a `for !predicate` loop because
// spurious and stolen wakeups are allowed by the memory model.
var LockHold = &Analyzer{
	Name: "lockhold",
	Doc:  "blocking operation (channel op, Cond.Wait outside for, I/O) while a mutex is held",
	Run:  runLockHold,
}

// blockingCalls maps package path → function names that may block.
var blockingCalls = map[string]map[string]bool{
	"time": {"Sleep": true},
	"os": {"Open": true, "Create": true, "ReadFile": true, "WriteFile": true,
		"Remove": true, "Rename": true, "OpenFile": true, "ReadDir": true},
	"fmt": {"Print": true, "Println": true, "Printf": true,
		"Scan": true, "Scanln": true, "Scanf": true},
	"net":      {"Dial": true, "Listen": true, "DialTimeout": true},
	"net/http": {"Get": true, "Post": true, "Head": true, "PostForm": true},
}

func runLockHold(p *Pass) {
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				scanLocked(p, body.List, map[string]bool{})
			}
			return true // keep walking: nested FuncLits scanned separately
		})
		checkCondWait(p, file)
	}
}

// scanLocked walks a statement list tracking which mutexes are held.
// held maps the printed receiver expression ("mb.mu") to true. The scan
// is a conservative straight-line approximation: nested blocks inherit a
// copy of the held set, and a defer of Unlock keeps the mutex held to
// the end of the list (which is what actually happens at run time).
func scanLocked(p *Pass, stmts []ast.Stmt, held map[string]bool) {
	for _, st := range stmts {
		switch st := st.(type) {
		case *ast.ExprStmt:
			if recv, op, ok := mutexOp(p, st.X); ok {
				switch op {
				case "Lock", "RLock":
					held[recv] = true
				case "Unlock", "RUnlock":
					delete(held, recv)
				}
				continue
			}
		case *ast.DeferStmt:
			// defer mu.Unlock() releases only at return: the mutex stays
			// held for the remainder of this statement list.
			continue
		}
		if len(held) > 0 {
			checkWhileHeld(p, st)
		}
		for _, nested := range nestedBlocks(st) {
			scanLocked(p, nested, copySet(held))
		}
	}
}

// mutexOp matches a call expr of the form recv.Lock/Unlock/RLock/RUnlock
// where recv's type is (or embeds) sync.Mutex or sync.RWMutex.
func mutexOp(p *Pass, e ast.Expr) (recv, op string, ok bool) {
	call, ok2 := e.(*ast.CallExpr)
	if !ok2 {
		return "", "", false
	}
	sel, ok2 := call.Fun.(*ast.SelectorExpr)
	if !ok2 {
		return "", "", false
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	if !isSyncLockRecv(p, sel) {
		return "", "", false
	}
	return exprString(sel.X), name, true
}

// isSyncLockRecv reports whether the method call resolves into package
// sync (covers fields of type sync.Mutex/RWMutex and embedded mutexes).
func isSyncLockRecv(p *Pass, sel *ast.SelectorExpr) bool {
	if s, ok := p.Info.Selections[sel]; ok {
		if fn, ok := s.Obj().(*types.Func); ok && fn.Pkg() != nil {
			return fn.Pkg().Path() == "sync"
		}
		return false
	}
	// No selection info (e.g. package-incomplete typing): fall back to
	// the receiver's static type name.
	if tv, ok := p.Info.Types[sel.X]; ok && tv.Type != nil {
		s := tv.Type.String()
		return s == "sync.Mutex" || s == "*sync.Mutex" || s == "sync.RWMutex" || s == "*sync.RWMutex"
	}
	return false
}

// checkWhileHeld reports blocking operations in the statement itself
// (not descending into nested blocks — those re-enter scanLocked with
// their own copy of the held set, and nested function literals have
// their own lock discipline).
func checkWhileHeld(p *Pass, st ast.Stmt) {
	switch st := st.(type) {
	case *ast.SendStmt:
		p.Reportf(st.Arrow, "channel send while mutex is held can block the critical section")
		return
	case *ast.SelectStmt:
		p.Reportf(st.Select, "select while mutex is held can block the critical section")
		return
	}
	shallow := shallowExprs(st)
	for _, e := range shallow {
		ast.Inspect(e, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false // separate scope
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					p.Reportf(n.OpPos, "channel receive while mutex is held can block the critical section")
				}
			case *ast.CallExpr:
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
					if id, ok := sel.X.(*ast.Ident); ok {
						if pn, ok := p.Info.Uses[id].(*types.PkgName); ok {
							path := pn.Imported().Path()
							if fns := blockingCalls[path]; fns != nil && fns[sel.Sel.Name] {
								p.Reportf(n.Pos(), "%s.%s while mutex is held can block the critical section", path, sel.Sel.Name)
							}
						}
					}
				}
			}
			return true
		})
	}
}

// checkCondWait reports sync.Cond.Wait calls with no enclosing for/range
// loop inside the same function: Wait must be re-checked in a loop.
func checkCondWait(p *Pass, file *ast.File) {
	// Track the ancestor chain manually.
	var stack []ast.Node
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" && isCondRecv(p, sel) {
				if !hasLoopAncestor(stack) {
					p.Reportf(call.Pos(), "sync.Cond.Wait outside a for loop: spurious wakeups require re-checking the predicate in a loop")
				}
			}
		}
		return true
	}
	ast.Inspect(file, walk)
}

func isCondRecv(p *Pass, sel *ast.SelectorExpr) bool {
	if s, ok := p.Info.Selections[sel]; ok {
		// Receiver must be sync.Cond specifically: sync.WaitGroup.Wait
		// has no re-check contract.
		recv := s.Recv().String()
		return strings.HasSuffix(recv, "sync.Cond")
	}
	if tv, ok := p.Info.Types[sel.X]; ok && tv.Type != nil {
		s := tv.Type.String()
		return s == "sync.Cond" || s == "*sync.Cond"
	}
	return false
}

// hasLoopAncestor reports whether the ancestor chain contains a for or
// range statement below the nearest enclosing function.
func hasLoopAncestor(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		case *ast.FuncDecl, *ast.FuncLit:
			return false
		}
	}
	return false
}

// nestedBlocks returns the statement lists nested inside st.
func nestedBlocks(st ast.Stmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	switch st := st.(type) {
	case *ast.BlockStmt:
		out = append(out, st.List)
	case *ast.IfStmt:
		out = append(out, st.Body.List)
		if st.Else != nil {
			switch e := st.Else.(type) {
			case *ast.BlockStmt:
				out = append(out, e.List)
			case *ast.IfStmt:
				out = append(out, nestedBlocks(e)...)
			}
		}
	case *ast.ForStmt:
		out = append(out, st.Body.List)
	case *ast.RangeStmt:
		out = append(out, st.Body.List)
	case *ast.SwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.LabeledStmt:
		out = append(out, nestedBlocks(st.Stmt)...)
	}
	return out
}

// shallowExprs returns the expressions evaluated directly by st (not
// inside nested blocks).
func shallowExprs(st ast.Stmt) []ast.Expr {
	switch st := st.(type) {
	case *ast.ExprStmt:
		return []ast.Expr{st.X}
	case *ast.AssignStmt:
		return append(append([]ast.Expr{}, st.Lhs...), st.Rhs...)
	case *ast.ReturnStmt:
		return st.Results
	case *ast.IfStmt:
		if st.Cond != nil {
			return []ast.Expr{st.Cond}
		}
	case *ast.ForStmt:
		if st.Cond != nil {
			return []ast.Expr{st.Cond}
		}
	case *ast.RangeStmt:
		return []ast.Expr{st.X}
	case *ast.SwitchStmt:
		if st.Tag != nil {
			return []ast.Expr{st.Tag}
		}
	case *ast.GoStmt:
		return nil // new goroutine: not holding our locks
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			var out []ast.Expr
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					out = append(out, vs.Values...)
				}
			}
			return out
		}
	case *ast.IncDecStmt:
		return []ast.Expr{st.X}
	}
	return nil
}

func copySet(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
