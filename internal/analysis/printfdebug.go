package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// PrintfDebug flags stray console output in library packages: calls to
// fmt.Print/Println/Printf, the print/println builtins, and fmt.Fprint*
// aimed at os.Stdout/os.Stderr. Solver output must route through the
// observability layer (internal/obs tracer/metrics) or the
// statistics/result path (ug.RunStats, experiments tables) — a worker
// printing from inside the search loop interleaves garbage across
// ParaSolvers and skews timing measurements. Writer-parameterized
// output (fmt.Fprintf(w, ...)) is fine. internal/obs itself is exempt:
// it IS the sanctioned output layer (sinks, table writers); cmd/ and
// examples/ binaries are already outside isInternal.
var PrintfDebug = &Analyzer{
	Name:    "printfdebug",
	Doc:     "direct console output in library packages; route through internal/obs or the statistics path",
	Applies: printfDebugApplies,
	Run:     runPrintfDebug,
}

// printfDebugApplies is isInternal minus the observability layer.
func printfDebugApplies(pkgPath string) bool {
	return isInternal(pkgPath) && !strings.Contains(pkgPath, "/internal/obs")
}

var printFuncs = map[string]bool{"Print": true, "Println": true, "Printf": true}
var fprintFuncs = map[string]bool{"Fprint": true, "Fprintln": true, "Fprintf": true}

func runPrintfDebug(p *Pass) {
	inspect(p, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if fun.Name == "print" || fun.Name == "println" {
				if _, isBuiltin := p.Info.Uses[fun].(*types.Builtin); isBuiltin {
					p.Reportf(call.Pos(), "builtin %s writes to stderr; emit an internal/obs event or route output through the statistics path", fun.Name)
				}
			}
		case *ast.SelectorExpr:
			if isPkgIdent(p, fun.X, "fmt") {
				name := fun.Sel.Name
				if printFuncs[name] {
					p.Reportf(call.Pos(), "fmt.%s writes to stdout from a library package; emit an internal/obs event or route output through the statistics path", name)
				}
				if fprintFuncs[name] && len(call.Args) > 0 && isStdStream(p, call.Args[0]) {
					p.Reportf(call.Pos(), "fmt.%s to %s from a library package; accept an io.Writer instead", name, exprString(call.Args[0]))
				}
			}
		}
		return true
	})
}

func isPkgIdent(p *Pass, e ast.Expr, pkgPath string) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == pkgPath
}

func isStdStream(p *Pass, e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return isPkgIdent(p, sel.X, "os") && (sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr")
}
