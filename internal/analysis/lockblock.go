package analysis

import (
	"go/ast"
	"go/types"
)

// LockBlock extends lockhold across call boundaries: while a
// sync.Mutex/RWMutex is held, calling a module function whose summary
// says it may block (channel op, select, Cond/WaitGroup Wait, blocking
// stdlib I/O — possibly buried several calls deep) turns the critical
// section into a convoy or a deadlock. It also reports the
// self-deadlock shape: calling a function that (transitively) acquires
// the very mutex object already held, which on a non-reentrant Go mutex
// blocks forever. Direct blocking operations in the critical section are
// lockhold's territory; lockblock only reports module-local *calls*, so
// the two analyzers never double-report a site.
//
// sync.Cond.Wait is exempt by contract: it atomically releases the lock
// while parked (the mailbox get() pattern in internal/ug/comm).
var LockBlock = &Analyzer{
	Name:    "lockblock",
	Doc:     "call chain that may block (or re-acquire the held mutex) while a mutex is held",
	Applies: isInternal,
	Run:     runLockBlock,
}

func runLockBlock(p *Pass) {
	if p.Mod == nil {
		return
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				scanLockedObjs(p, body.List, map[string]types.Object{}, func(st ast.Stmt, held map[string]types.Object) {
					checkCallsWhileHeld(p, st, held)
				})
			}
			return true // nested FuncLits scanned separately
		})
	}
}

// checkCallsWhileHeld reports module-local calls in st (not descending
// into nested blocks or function literals) whose converged summary says
// they may block, or that may re-acquire a held mutex identity.
func checkCallsWhileHeld(p *Pass, st ast.Stmt, held map[string]types.Object) {
	for _, e := range shallowExprs(st) {
		ast.Inspect(e, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false // separate scope, own lock discipline
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isCondWaitCall(p, call) {
				return true // releases the lock while parked, by contract
			}
			for _, c := range p.Mod.calleesOf(p.Info, call.Fun) {
				sum := c.Summary()
				if sum.MayBlock {
					p.Reportf(call.Pos(), "call to %s may block (channel/select/Wait/I-O in its call chain) while mutex is held", c.Name())
					continue
				}
				for recv, obj := range held {
					if obj != nil && sum.Acquires[obj] {
						p.Reportf(call.Pos(), "call to %s may re-acquire %s, which is already held: self-deadlock on a non-reentrant mutex", c.Name(), recv)
						break
					}
				}
			}
			return true
		})
	}
}

// isCondWaitCall matches cond.Wait() where cond is a *sync.Cond.
func isCondWaitCall(p *Pass, call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Wait" {
		return false
	}
	return isCondRecv(p, sel)
}

// scanLockedObjs is scanLocked's interprocedural sibling: the same
// straight-line held-set approximation, but tracking the mutex *object*
// identity (field or variable) alongside the printed receiver, and
// invoking a callback instead of a fixed check so lockhold and lockblock
// share the walk structure.
func scanLockedObjs(p *Pass, stmts []ast.Stmt, held map[string]types.Object, check func(ast.Stmt, map[string]types.Object)) {
	for _, st := range stmts {
		switch st := st.(type) {
		case *ast.ExprStmt:
			if recv, op, ok := mutexOp(p, st.X); ok {
				switch op {
				case "Lock", "RLock":
					held[recv] = mutexObjOf(p, st.X)
				case "Unlock", "RUnlock":
					delete(held, recv)
				}
				continue
			}
		case *ast.DeferStmt:
			// defer mu.Unlock() releases only at return: the mutex stays
			// held for the remainder of this statement list.
			continue
		}
		if len(held) > 0 {
			check(st, held)
		}
		for _, nested := range nestedBlocks(st) {
			scanLockedObjs(p, nested, copyObjSet(held), check)
		}
	}
}

// mutexObjOf resolves the receiver object of a mutex method call
// (already validated by mutexOp); nil when unresolvable.
func mutexObjOf(p *Pass, e ast.Expr) types.Object {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return mutexIdentity(p.Info, sel.X)
}

func copyObjSet(m map[string]types.Object) map[string]types.Object {
	out := make(map[string]types.Object, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
