package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Summary is the per-function dataflow summary computed to a fixed
// point over the call graph. All bits are monotone (they only turn on),
// so the iteration terminates even under mutual recursion.
type Summary struct {
	// MayBlock: the function may block indefinitely — a channel
	// send/receive, a select without default, sync.Cond/WaitGroup Wait,
	// a known-blocking stdlib call (time.Sleep, file/network I/O), or a
	// synchronous call into a function that may. Goroutine launches do
	// not propagate it: `go f()` never blocks the spawner.
	MayBlock bool
	// Spawns: the function starts a goroutine, directly or through any
	// synchronous callee.
	Spawns bool
	// Acquires: identities (field or variable objects) of sync.Mutex /
	// sync.RWMutex receivers the function may Lock/RLock, directly or
	// transitively. Calling such a function while one of these is held
	// is a self-deadlock candidate (lockblock).
	Acquires map[types.Object]bool
	// OrderDep: the function's return value depends on map-iteration
	// order (an argmax over keys, unsorted key collection, or a float
	// reduction over map values), directly or through a returned call.
	OrderDep bool
	// SortsArg: the function sorts a slice reachable from its
	// parameters (sort.Slice/sort.Ints/slices.Sort/...). mapdet accepts
	// handing an unsorted key collection to such a helper.
	SortsArg bool
}

// sortFuncs maps package path → function names that sort their first
// slice argument.
var sortFuncs = map[string]map[string]bool{
	"sort": {"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
		"Ints": true, "Strings": true, "Float64s": true},
	"slices": {"Sort": true, "SortFunc": true, "SortStableFunc": true},
}

// computeSummaries derives direct facts per node and iterates the
// monotone transfer functions to convergence.
func computeSummaries(m *Module) {
	for _, n := range m.nodes {
		n.sum.Acquires = map[types.Object]bool{}
		if n.body() != nil {
			directFacts(n)
		}
	}
	// Fixed point for MayBlock / Spawns / Acquires.
	m.Rounds = 0
	for changed := true; changed; {
		changed = false
		m.Rounds++
		for _, n := range m.nodes {
			for c := range n.calls {
				if c.sum.MayBlock && !n.sum.MayBlock {
					n.sum.MayBlock = true
					changed = true
				}
				if c.sum.Spawns && !n.sum.Spawns {
					n.sum.Spawns = true
					changed = true
				}
				for obj := range c.sum.Acquires {
					if !n.sum.Acquires[obj] {
						n.sum.Acquires[obj] = true
						changed = true
					}
				}
			}
			// n.spawned needs no propagation: a GoStmt already set
			// n.sum.Spawns directly, and a spawned callee's blocking
			// behavior stays inside the new goroutine.
		}
	}
	// OrderDep direct facts need the SortsArg bits above, so they are
	// computed in a second phase, then propagated through returned calls.
	for _, n := range m.nodes {
		if n.body() == nil {
			continue
		}
		for _, site := range mapOrderSites(m, n) {
			if site.reachesReturn {
				n.sum.OrderDep = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		m.Rounds++
		for _, n := range m.nodes {
			if n.sum.OrderDep {
				continue
			}
			for _, rc := range n.returnedCalls {
				if rc.sum.OrderDep {
					n.sum.OrderDep = true
					changed = true
					break
				}
			}
		}
	}
}

// directFacts computes the intraprocedural summary bits of one node.
func directFacts(n *FuncNode) {
	info := n.Pkg.Info
	params := paramObjs(n)
	walkShallow(n.body(), func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.GoStmt:
			n.sum.Spawns = true
		case *ast.SendStmt:
			n.sum.MayBlock = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				n.sum.MayBlock = true
			}
		case *ast.SelectStmt:
			if !selectHasDefault(x) {
				n.sum.MayBlock = true
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[x.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					n.sum.MayBlock = true
				}
			}
		case *ast.CallExpr:
			directCallFacts(n, info, params, x)
		}
		return true
	})
}

// directCallFacts classifies one call expression: blocking stdlib/sync
// calls, mutex acquisitions, and parameter sorts.
func directCallFacts(n *FuncNode, info *types.Info, params map[types.Object]bool, call *ast.CallExpr) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	// Method calls resolved through types.Selections: sync.Cond.Wait and
	// sync.WaitGroup.Wait block; Lock/RLock acquire.
	if s, ok := info.Selections[sel]; ok {
		fn, ok := s.Obj().(*types.Func)
		if !ok || fn.Pkg() == nil {
			return
		}
		if fn.Pkg().Path() == "sync" {
			switch fn.Name() {
			case "Wait":
				n.sum.MayBlock = true
			case "Lock", "RLock":
				if obj := mutexIdentity(info, sel.X); obj != nil {
					n.sum.Acquires[obj] = true
				}
			}
		}
		return
	}
	// Package-qualified calls: blocking table and sorting helpers.
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return
	}
	path := pn.Imported().Path()
	if fns := blockingCalls[path]; fns != nil && fns[sel.Sel.Name] {
		n.sum.MayBlock = true
	}
	if fns := sortFuncs[path]; fns != nil && fns[sel.Sel.Name] && len(call.Args) > 0 {
		if root := rootIdent(call.Args[0]); root != nil {
			if obj := info.Uses[root]; obj != nil && params[obj] {
				n.sum.SortsArg = true
			}
		}
	}
}

// mutexIdentity resolves the receiver of a Lock/RLock to a stable
// object: the struct field or variable holding the mutex. Identity is
// per declaration site, not per instance — two instances of the same
// struct share the field object, which is the conservative direction
// for self-deadlock detection.
func mutexIdentity(info *types.Info, recv ast.Expr) types.Object {
	switch r := unparen(recv).(type) {
	case *ast.Ident:
		return info.Uses[r]
	case *ast.SelectorExpr:
		if s, ok := info.Selections[r]; ok {
			return s.Obj()
		}
		return info.Uses[r.Sel]
	case *ast.UnaryExpr:
		if r.Op == token.AND {
			return mutexIdentity(info, r.X)
		}
	case *ast.StarExpr:
		return mutexIdentity(info, r.X)
	}
	return nil
}

// paramObjs collects the parameter (and receiver) objects of a node.
func paramObjs(n *FuncNode) map[types.Object]bool {
	out := map[types.Object]bool{}
	var ftype *ast.FuncType
	if n.Decl != nil {
		ftype = n.Decl.Type
		if n.Decl.Recv != nil {
			for _, f := range n.Decl.Recv.List {
				for _, name := range f.Names {
					if obj := n.Pkg.Info.Defs[name]; obj != nil {
						out[obj] = true
					}
				}
			}
		}
	} else {
		ftype = n.Lit.Type
	}
	if ftype.Params != nil {
		for _, f := range ftype.Params.List {
			for _, name := range f.Names {
				if obj := n.Pkg.Info.Defs[name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	return out
}

// selectHasDefault reports whether a select statement has a default
// case (making it non-blocking).
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// rootIdent returns the leftmost identifier of an expression chain
// (x, x.f, x[i], *x, &x → x); nil when the root is not an identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.CallExpr:
			e = x.Fun
		default:
			return nil
		}
	}
}
