package analysis

import (
	"go/ast"
	"strings"
)

// ExportDocPackages lists the package-path suffixes whose exported API
// must be documented: the plugin/glue surface a solver author programs
// against (the paper's ScipUserPlugins analogue). Other packages are
// free to adopt the rule later by extending this list.
var ExportDocPackages = []string{
	"/internal/scip",
	"/internal/ug",
	"/internal/ug/comm",
	"/internal/ug/comm/net",
	"/internal/core",
}

// ExportDoc flags exported declarations without doc comments in the
// plugin-facing packages. Those interfaces are the product: the paper's
// claim is that a solver author writes <200 lines against them, which
// presumes each hook documents its contract (when it is called, what it
// may mutate, what a nil return means).
var ExportDoc = &Analyzer{
	Name: "exportdoc",
	Doc:  "undocumented exported API in plugin-facing packages",
	Applies: func(pkgPath string) bool {
		for _, suffix := range ExportDocPackages {
			if strings.HasSuffix(pkgPath, suffix) {
				return true
			}
		}
		return false
	},
	Run: runExportDoc,
}

// recvExported reports whether a function is part of the exported API:
// free functions always are; methods only when their receiver base type
// is itself exported (a method named Len on an unexported heap type is
// package-private no matter its casing).
func recvExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

func runExportDoc(p *Pass) {
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && d.Doc == nil && recvExported(d) {
					kind := "function"
					if d.Recv != nil {
						kind = "method"
					}
					p.Reportf(d.Pos(), "exported %s %s has no doc comment", kind, d.Name.Name)
				}
			case *ast.GenDecl:
				checkGenDecl(p, d)
			}
		}
	}
}

// checkGenDecl enforces docs on exported specs. A doc comment on the
// grouped declaration (`// Protocol tags.` above a const block) covers
// every spec inside it; otherwise each exported spec needs its own doc
// or trailing comment.
func checkGenDecl(p *Pass, d *ast.GenDecl) {
	blockDoc := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !blockDoc && s.Doc == nil && s.Comment == nil {
				p.Reportf(s.Pos(), "exported type %s has no doc comment", s.Name.Name)
			}
			if st, ok := s.Type.(*ast.StructType); ok && s.Name.IsExported() {
				checkFields(p, s.Name.Name, st)
			}
			if it, ok := s.Type.(*ast.InterfaceType); ok && s.Name.IsExported() {
				checkInterface(p, s.Name.Name, it)
			}
		case *ast.ValueSpec:
			if blockDoc || s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					p.Reportf(name.Pos(), "exported %s %s has no doc comment", kindOf(d), name.Name)
				}
			}
		}
	}
}

func kindOf(d *ast.GenDecl) string {
	switch d.Tok.String() {
	case "const":
		return "constant"
	case "var":
		return "variable"
	}
	return d.Tok.String()
}

// checkInterface requires a doc comment on every exported method of an
// exported interface — these are the plugin hooks.
func checkInterface(p *Pass, typeName string, it *ast.InterfaceType) {
	for _, m := range it.Methods.List {
		if len(m.Names) == 0 {
			continue // embedded interface
		}
		for _, name := range m.Names {
			if name.IsExported() && m.Doc == nil && m.Comment == nil {
				p.Reportf(name.Pos(), "exported interface method %s.%s has no doc comment", typeName, name.Name)
			}
		}
	}
}

// checkFields is intentionally lenient for struct fields: only exported
// fields of exported structs with no doc anywhere in the struct are
// worth flagging wholesale; per-field enforcement would drown signal.
// We require at least the struct itself to be documented (handled by
// the TypeSpec check), so fields are left to review.
func checkFields(p *Pass, typeName string, st *ast.StructType) {
	_ = typeName
	_ = st
}
