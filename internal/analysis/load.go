package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File // non-test files only
	Types   *types.Package
	Info    *types.Info
	// TypeErrors collects type-checker diagnostics. The analyzers still
	// run on a partially checked package, but callers (selfcheck, CLI)
	// should surface these: missing type info silently weakens analysis.
	TypeErrors []error
}

// Loader parses and type-checks packages of a single module without any
// dependency on go/packages: module-local imports resolve against the
// module root, everything else through the stdlib source importer.
type Loader struct {
	Root    string // module root directory
	ModPath string // module path from go.mod

	fset *token.FileSet
	std  types.ImporterFrom
	pkgs map[string]*Package // by import path; nil while loading (cycle guard)
}

// NewLoader creates a loader for the module rooted at root, reading the
// module path from go.mod.
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: %w (loader needs a module root)", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", abs)
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:    abs,
		ModPath: modPath,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:    map[string]*Package{},
	}, nil
}

// LoadAll discovers and loads every package in the module, sorted by
// import path. Directories named testdata, hidden directories, and
// directories with no non-test Go files are skipped.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.Root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, dir := range dirs {
		pkgPath, ok := l.importPathFor(dir)
		if !ok {
			continue
		}
		// An unreadable directory must fail the run, not silently shrink
		// the analyzed set: a lint gate that skips packages lies.
		hasGo, err := hasGoFiles(dir)
		if err != nil {
			return nil, fmt.Errorf("analysis: reading %s: %w", dir, err)
		}
		if !hasGo {
			continue
		}
		pkg, err := l.load(pkgPath)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out, nil
}

// Load loads one package by import path (module-local) or directory.
func (l *Loader) Load(pattern string) (*Package, error) {
	if pattern == l.ModPath || strings.HasPrefix(pattern, l.ModPath+"/") {
		return l.load(pattern)
	}
	abs, err := filepath.Abs(pattern)
	if err != nil {
		return nil, err
	}
	pkgPath, ok := l.importPathFor(abs)
	if !ok {
		return nil, fmt.Errorf("analysis: %s is outside module %s", pattern, l.ModPath)
	}
	return l.load(pkgPath)
}

func (l *Loader) importPathFor(dir string) (string, bool) {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", false
	}
	if rel == "." {
		return l.ModPath, true
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), true
}

func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		return true, nil
	}
	return false, nil
}

// load parses and type-checks one module-local package, caching results.
func (l *Loader) load(pkgPath string) (*Package, error) {
	if pkg, done := l.pkgs[pkgPath]; done {
		if pkg == nil {
			return nil, fmt.Errorf("analysis: import cycle through %s", pkgPath)
		}
		return pkg, nil
	}
	l.pkgs[pkgPath] = nil // cycle guard
	rel := strings.TrimPrefix(pkgPath, l.ModPath)
	dir := filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(rel, "/")))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	pkg := &Package{PkgPath: pkgPath, Dir: dir, Fset: l.fset, Files: files, Info: info}
	cfg := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, _ := cfg.Check(pkgPath, l.fset, files, info) // errors collected via cfg.Error
	pkg.Types = tpkg
	l.pkgs[pkgPath] = pkg
	return pkg, nil
}

// loaderImporter routes module-local imports back through the loader and
// everything else to the stdlib source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li *loaderImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		if len(pkg.TypeErrors) > 0 {
			return pkg.Types, fmt.Errorf("analysis: %s has type errors: %v", path, pkg.TypeErrors[0])
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}
