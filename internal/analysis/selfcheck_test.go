package analysis

import "testing"

// TestSelfCheck runs every analyzer over the repository's own source,
// wiring ugolint into tier-1: `go test ./...` fails on any new
// violation. Audited exceptions go through //lint:ignore with a reason
// (see package doc); everything else must be fixed at the source.
func TestSelfCheck(t *testing.T) {
	l := sharedLoader(t)
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; loader is missing the tree", len(pkgs))
	}
	for _, pkg := range pkgs {
		for _, e := range pkg.TypeErrors {
			t.Errorf("type error in %s (analysis incomplete): %v", pkg.PkgPath, e)
		}
	}
	findings := Run(pkgs, All())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Logf("fix the findings or annotate audited exceptions with //lint:ignore <analyzer> <reason>")
	}
}
