package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapDet flags map iterations whose order leaks into solver decisions.
// Go randomizes map iteration order per run, so an argmax over map keys
// (racing winner selection, node pool extraction), an unsorted key
// collection that later drives branching, or a floating-point reduction
// over map values (FP addition is not associative) all break UG's
// deterministic-replay contract. Three patterns are reported:
//
//   - an outer variable conditionally assigned from iteration state,
//     unless the assigned value is itself compared in the guard (a
//     min/max reduction over *values* is order-independent);
//   - map keys/values appended to an outer slice that is never sorted
//     afterwards (directly via sort/slices, or by a module helper whose
//     summary says it sorts its argument);
//   - floating-point compound assignment (+=, -=, *=, /=) accumulating
//     over the iteration.
//
// Writes keyed by the iteration key itself (res[k] = v) are order-
// independent and never reported. The analyzer applies to the
// coordination and solver-core packages (internal/ug..., internal/scip),
// where deterministic replay is a stated property; kernel packages own
// their algorithm-specific iteration strategies.
var MapDet = &Analyzer{
	Name: "mapdet",
	Doc:  "map iteration order flowing into solver decisions (argmax over keys, unsorted key collection, float reduction)",
	Applies: func(pkgPath string) bool {
		return isSolverCore(pkgPath)
	},
	Run: runMapDet,
}

// isSolverCore scopes determinism/tolerance discipline to the parallel
// coordination layer and the sequential solver core.
func isSolverCore(pkgPath string) bool {
	return strings.Contains(pkgPath, "/internal/ug") || strings.Contains(pkgPath, "/internal/scip")
}

func runMapDet(p *Pass) {
	if p.Mod == nil {
		return
	}
	for _, n := range p.Mod.Funcs() {
		if n.Pkg.PkgPath != p.PkgPath {
			continue
		}
		for _, s := range mapOrderSites(p.Mod, n) {
			p.Reportf(s.pos, "%s", s.msg)
		}
	}
}

// mapdetSite is one order-dependence finding inside a function.
// reachesReturn marks sites whose tainted variable flows into the
// function's return values — those set the OrderDep summary bit so the
// dependence propagates to callers that return the result onward.
type mapdetSite struct {
	pos           token.Pos
	msg           string
	target        types.Object
	reachesReturn bool
}

// mapOrderSites computes (and caches) the order-dependence sites of one
// function: every range-over-map in its body analyzed for the patterns
// documented on MapDet.
func mapOrderSites(m *Module, n *FuncNode) []mapdetSite {
	if n.orderOnce {
		return n.orderSites
	}
	n.orderOnce = true
	body := n.body()
	if body == nil {
		return nil
	}
	info := n.Pkg.Info
	var sites []mapdetSite
	walkShallow(body, func(nd ast.Node) bool {
		rs, ok := nd.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := info.Types[rs.X]
		if !ok || tv.Type == nil {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		sites = append(sites, rangeOrderSites(m, n, rs)...)
		return true
	})
	// Nested map ranges can yield the same assignment twice (tainted by
	// both loops); keep one finding per position.
	seen := map[token.Pos]bool{}
	var dedup []mapdetSite
	for _, s := range sites {
		if seen[s.pos] {
			continue
		}
		seen[s.pos] = true
		dedup = append(dedup, s)
	}
	if len(dedup) > 0 {
		returned := returnedObjs(n)
		for i := range dedup {
			if dedup[i].target != nil && returned[dedup[i].target] {
				dedup[i].reachesReturn = true
			}
		}
	}
	n.orderSites = dedup
	return dedup
}

// appendCand is a "slice collected map data" candidate awaiting the
// post-loop sortedness check.
type appendCand struct {
	pos token.Pos
	obj types.Object
}

// rangeOrderSites analyzes one range-over-map statement.
func rangeOrderSites(m *Module, n *FuncNode, rs *ast.RangeStmt) []mapdetSite {
	info := n.Pkg.Info
	// tainted holds the loop's key/value objects plus loop-local
	// variables assigned from them (one forward pass, source order).
	tainted := map[types.Object]bool{}
	addIter := func(e ast.Expr) {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		if rs.Tok == token.DEFINE {
			if o := info.Defs[id]; o != nil {
				tainted[o] = true
			}
		} else if o := info.Uses[id]; o != nil {
			tainted[o] = true
		}
	}
	if rs.Key != nil {
		addIter(rs.Key)
	}
	if rs.Value != nil {
		addIter(rs.Value)
	}

	var sites []mapdetSite
	var cands []appendCand
	loopLocal := func(obj types.Object) bool {
		return obj != nil && obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End()
	}
	lhsObj := func(e ast.Expr) types.Object {
		root := rootIdent(e)
		if root == nil {
			return nil
		}
		if o := info.Uses[root]; o != nil {
			return o
		}
		return info.Defs[root]
	}
	handlePair := func(s *ast.AssignStmt, lhs, rhs ast.Expr, conds []ast.Expr) {
		obj := lhsObj(lhs)
		if obj == nil {
			return
		}
		rhsTainted := exprRefsAny(info, rhs, tainted)
		if loopLocal(obj) {
			if rhsTainted {
				tainted[obj] = true
			}
			return
		}
		// Writes keyed by the iteration key (res[k] = v) land in a
		// key-addressed slot regardless of visit order.
		if ix, ok := unparen(lhs).(*ast.IndexExpr); ok && exprRefsAny(info, ix.Index, tainted) {
			return
		}
		switch s.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			if rhsTainted && isFloatType(info, lhs) {
				sites = append(sites, mapdetSite{
					pos:    s.Pos(),
					msg:    "float accumulation into " + exprString(lhs) + " over map iteration is order-dependent (FP addition is not associative); iterate sorted keys",
					target: obj,
				})
			}
		case token.ASSIGN:
			if !rhsTainted {
				return
			}
			if tv, ok := info.Types[rhs]; ok && tv.Value != nil {
				return // constant: flag-setting, order-independent
			}
			if guardOperands(conds)[exprString(rhs)] {
				return // min/max reduction: the guard compares the assigned value
			}
			sites = append(sites, mapdetSite{
				pos:    s.Pos(),
				msg:    exprString(lhs) + " is assigned from map-iteration state under a condition that does not compare it (argmax over random key order); iterate sorted keys for deterministic replay",
				target: obj,
			})
		}
	}
	handleAssign := func(s *ast.AssignStmt, conds []ast.Expr) {
		// out = append(out, k): defer to the post-loop sortedness check.
		if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
			if call, ok := unparen(s.Rhs[0]).(*ast.CallExpr); ok && isBuiltinAppend(info, call) {
				obj := lhsObj(s.Lhs[0])
				argTainted := false
				for _, a := range call.Args[1:] {
					if exprRefsAny(info, a, tainted) {
						argTainted = true
					}
				}
				if obj != nil && argTainted {
					if loopLocal(obj) {
						tainted[obj] = true
					} else {
						cands = append(cands, appendCand{pos: s.Pos(), obj: obj})
					}
				}
				return
			}
		}
		if len(s.Lhs) == len(s.Rhs) {
			for i := range s.Lhs {
				handlePair(s, s.Lhs[i], s.Rhs[i], conds)
			}
			return
		}
		// Tuple assignment (v, ok := m2[k]): every LHS inherits the RHS taint.
		for _, lhs := range s.Lhs {
			handlePair(s, lhs, s.Rhs[0], conds)
		}
	}

	var scan func(st ast.Stmt, conds []ast.Expr)
	scanList := func(list []ast.Stmt, conds []ast.Expr) {
		for _, st := range list {
			scan(st, conds)
		}
	}
	scan = func(st ast.Stmt, conds []ast.Expr) {
		switch s := st.(type) {
		case *ast.BlockStmt:
			scanList(s.List, conds)
		case *ast.IfStmt:
			if s.Init != nil {
				scan(s.Init, conds)
			}
			inner := append(conds[:len(conds):len(conds)], s.Cond)
			scan(s.Body, inner)
			if s.Else != nil {
				scan(s.Else, inner)
			}
		case *ast.ForStmt:
			if s.Init != nil {
				scan(s.Init, conds)
			}
			inner := conds
			if s.Cond != nil {
				inner = append(conds[:len(conds):len(conds)], s.Cond)
			}
			scan(s.Body, inner)
		case *ast.RangeStmt:
			scan(s.Body, conds)
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					scanList(cc.Body, conds)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					scanList(cc.Body, conds)
				}
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					scanList(cc.Body, conds)
				}
			}
		case *ast.LabeledStmt:
			scan(s.Stmt, conds)
		case *ast.AssignStmt:
			handleAssign(s, conds)
		case *ast.DeclStmt:
			if gd, ok := s.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						if i < len(vs.Values) && exprRefsAny(info, vs.Values[i], tainted) {
							if o := info.Defs[name]; o != nil {
								tainted[o] = true
							}
						}
					}
				}
			}
		}
	}
	scan(rs.Body, nil)

	for _, c := range cands {
		if !sortedAfter(m, n, rs, c.obj) {
			sites = append(sites, mapdetSite{
				pos:    c.pos,
				msg:    c.obj.Name() + " collects map keys/values in iteration order and is never sorted; sort it before use for deterministic replay",
				target: c.obj,
			})
		}
	}
	return sites
}

// sortedAfter reports whether obj is handed to a sorting call anywhere
// in the function after the range statement ends: a direct sort.* /
// slices.* call, or a module function whose summary says it sorts its
// argument.
func sortedAfter(m *Module, n *FuncNode, rs *ast.RangeStmt, obj types.Object) bool {
	info := n.Pkg.Info
	sorted := false
	walkShallow(n.body(), func(nd ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := nd.(*ast.CallExpr)
		if !ok || call.Pos() <= rs.End() {
			return true
		}
		argHasObj := false
		for _, a := range call.Args {
			if exprRefsAny(info, a, map[types.Object]bool{obj: true}) {
				argHasObj = true
				break
			}
		}
		if !argHasObj {
			return true
		}
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok {
				if pn, ok := info.Uses[id].(*types.PkgName); ok {
					if fns := sortFuncs[pn.Imported().Path()]; fns != nil && fns[sel.Sel.Name] {
						sorted = true
						return false
					}
				}
			}
		}
		for _, c := range m.calleesOf(info, call.Fun) {
			if c.sum.SortsArg {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}

// returnedObjs collects the objects referenced in the function's return
// statements, plus named result parameters (covered by bare returns).
func returnedObjs(n *FuncNode) map[types.Object]bool {
	info := n.Pkg.Info
	out := map[types.Object]bool{}
	var ftype *ast.FuncType
	if n.Decl != nil {
		ftype = n.Decl.Type
	} else {
		ftype = n.Lit.Type
	}
	if ftype.Results != nil {
		for _, f := range ftype.Results.List {
			for _, name := range f.Names {
				if o := info.Defs[name]; o != nil {
					out[o] = true
				}
			}
		}
	}
	walkShallow(n.body(), func(nd ast.Node) bool {
		ret, ok := nd.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			ast.Inspect(res, func(x ast.Node) bool {
				if id, ok := x.(*ast.Ident); ok {
					if o := info.Uses[id]; o != nil {
						out[o] = true
					}
				}
				return true
			})
		}
		return true
	})
	return out
}

// guardOperands returns the printed operands of every comparison inside
// the governing conditions.
func guardOperands(conds []ast.Expr) map[string]bool {
	out := map[string]bool{}
	for _, c := range conds {
		ast.Inspect(c, func(nd ast.Node) bool {
			be, ok := nd.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch be.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
				out[exprString(be.X)] = true
				out[exprString(be.Y)] = true
			}
			return true
		})
	}
	return out
}

// exprRefsAny reports whether e references any object in objs.
func exprRefsAny(info *types.Info, e ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(nd ast.Node) bool {
		if id, ok := nd.(*ast.Ident); ok {
			if o := info.Uses[id]; o != nil && objs[o] {
				found = true
			}
		}
		return !found
	})
	return found
}

// isBuiltinAppend matches a call to the append builtin with at least one
// element argument.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || len(call.Args) < 2 {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin && id.Name == "append"
}

// isFloatType reports whether e's static type is a floating-point kind.
func isFloatType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
