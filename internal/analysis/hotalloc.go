package analysis

// hotalloc is ugolint's fourth layer: interprocedural allocation
// analysis for the solve hot path. Hot regions are seeded from
// //ugo:hotpath directives on function declarations and propagated
// through the module call graph as a minimum-loop-depth fixed point;
// every function body is scanned (on the flowStmt driver) for potential
// heap-allocation sites; the two compose into a per-function
// AllocSummary so a cold-looking helper called from a hot loop is
// charged at the call site.
//
// Directives:
//
//	//ugo:hotpath           root: runs once per hot iteration (depth 1)
//	//ugo:hotpath driver    root that owns the hot loop itself (depth 0)
//	//ugo:coldpath <reason> audited boundary: propagation stops here
//
// Sanctioned reuse idioms are recognized and kept out of the findings
// (but stay visible in the -hot table): append over x[:0] or a struct
// field or a caller-provided buffer, make installed on a struct field,
// capacity-guarded grows (`if cap(x) < n { x = make(...) }`), writes to
// locally-made or clear()ed maps, sync.Pool New constructors, and
// allocation on an early-return/panic path (at most once per call).

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"math"
	"sort"
	"strings"
)

const (
	hotCold     = -1  // not reachable from any hot root
	maxHotDepth = 6   // propagation depth clamp
	loopWeight  = 8.0 // assumed iterations per loop level for ranking
	allocCap    = 1e6 // allocs-per-call clamp (recursion backstop)
)

// hotDirective is a parsed //ugo: annotation on a declaration.
type hotDirective struct {
	root   bool   // //ugo:hotpath [driver]
	driver bool   // owns the hot loop: base depth 0 instead of 1
	cold   bool   // //ugo:coldpath
	reason string // coldpath audit reason
	pos    token.Pos
	bad    string // malformed-directive message (reported by the analyzer)
}

// allocSite is one potential heap allocation inside a function body.
type allocSite struct {
	pos      token.Pos
	depth    int    // syntactic loop depth within the function
	kind     string // what allocates
	hint     string // suggested remedy
	sanction string // non-empty: recognized reuse idiom, not reported
	exit     bool   // on an early-return/panic path
}

// calleeEdge records the minimum loop depth at which a callee is
// invoked from this function.
type calleeEdge struct {
	c     *FuncNode
	depth int
}

// hotInfo is the per-function hotalloc state carried on FuncNode.
type hotInfo struct {
	dir        hotDirective
	hasDir     bool
	sites      []allocSite
	edges      []calleeEdge // min call depth per callee, name-sorted
	siteAllocs float64      // Σ loopWeight^depth over charged sites
	escaped    []int        // param indices stored into heap-reachable places
	depth      int          // min loop depth from a hot root; hotCold if none
	via        string       // hot predecessor (diagnostics)
	allocs     float64      // converged allocs-per-call estimate
}

const (
	hotpathPrefix  = "//ugo:hotpath"
	coldpathPrefix = "//ugo:coldpath"
)

// matchDirective reports whether text is prefix followed by a word
// boundary (so //ugo:hotpathology is not ours).
func matchDirective(text, prefix string) bool {
	if !strings.HasPrefix(text, prefix) {
		return false
	}
	rest := text[len(prefix):]
	return rest == "" || rest[0] == ' ' || rest[0] == '\t'
}

// scanHotDirective parses the //ugo: directive (if any) from a
// declaration's doc comment into n.hot.dir.
func scanHotDirective(n *FuncNode) {
	if n.Decl == nil || n.Decl.Doc == nil {
		return
	}
	for _, c := range n.Decl.Doc.List {
		switch {
		case matchDirective(c.Text, hotpathPrefix):
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, hotpathPrefix))
			d := hotDirective{root: true, pos: c.Pos()}
			switch rest {
			case "":
			case "driver":
				d.driver = true
			default:
				d = hotDirective{pos: c.Pos(),
					bad: fmt.Sprintf("unknown //ugo:hotpath argument %q (want nothing or \"driver\")", rest)}
			}
			n.hot.dir, n.hot.hasDir = d, true
		case matchDirective(c.Text, coldpathPrefix):
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, coldpathPrefix))
			d := hotDirective{cold: true, reason: rest, pos: c.Pos()}
			if rest == "" {
				// Still honored as a boundary, but the missing audit
				// reason is itself a finding.
				d.bad = "//ugo:coldpath needs an audit reason"
			}
			n.hot.dir, n.hot.hasDir = d, true
		}
	}
}

// markPoolNewLits marks sync.Pool New constructors as audited cold
// boundaries: the allocation inside them is the pool's slow path.
func markPoolNewLits(m *Module) {
	seen := map[*Package]bool{}
	for _, n := range m.nodes {
		if n.Pkg == nil || seen[n.Pkg] {
			continue
		}
		seen[n.Pkg] = true
		pkg := n.Pkg
		for _, file := range pkg.Files {
			ast.Inspect(file, func(nd ast.Node) bool {
				cl, ok := nd.(*ast.CompositeLit)
				if !ok {
					return true
				}
				tv, ok := pkg.Info.Types[cl]
				if !ok || !isNamedIn(tv.Type, "Pool", "sync") {
					return true
				}
				for _, el := range cl.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok || key.Name != "New" {
						continue
					}
					if lit, ok := unparen(kv.Value).(*ast.FuncLit); ok {
						if c := m.byLit[lit]; c != nil {
							c.hot.dir = hotDirective{cold: true, reason: "sync.Pool constructor"}
							c.hot.hasDir = true
						}
					}
				}
				return true
			})
		}
	}
}

// span is a half-open-ish position range [from, to].
type span struct{ from, to token.Pos }

// exitSpans returns the position ranges of if/case/select bodies that
// end in return or panic: allocation there happens at most once per
// call (error construction, teardown), so sites inside are sanctioned
// and call edges contribute loop depth 0.
func exitSpans(body *ast.BlockStmt) []span {
	var out []span
	add := func(list []ast.Stmt) {
		if len(list) == 0 {
			return
		}
		switch last := list[len(list)-1].(type) {
		case *ast.ReturnStmt:
			out = append(out, span{list[0].Pos(), last.End()})
		case *ast.ExprStmt:
			if call, ok := last.X.(*ast.CallExpr); ok {
				if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
					out = append(out, span{list[0].Pos(), last.End()})
				}
			}
		}
	}
	walkShallow(body, func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.IfStmt:
			add(x.Body.List)
		case *ast.CaseClause:
			add(x.Body)
		case *ast.CommClause:
			add(x.Body)
		}
		return true
	})
	return out
}

// allocWalker accumulates allocation sites and callee depths for one
// function body. It is flow-insensitive apart from the syntactic loop
// depth maintained through the flowStmt driver's loopAware hook.
type allocWalker struct {
	m    *Module
	n    *FuncNode
	info *types.Info

	depth       int
	exitRegions []span
	paramIdx    map[types.Object]int
	capGuarded  map[types.Object]bool    // buffers with a cap-guard somewhere in the body
	localMaps   map[types.Object]bool    // maps made locally (the make is the charged site)
	cleared     map[types.Object]bool    // maps the function clear()s
	sanctioned  map[*ast.CallExpr]string // make calls sanctioned by the pre-pass
	seenPos     map[token.Pos]bool       // site dedup (loop bodies run twice)
	escapes     map[int]bool
	calleeDepth map[*FuncNode]int
}

// allocEnv adapts the walker to the flowStmt driver. All forks share
// the walker; only the loop depth is flow state.
type allocEnv struct{ w *allocWalker }

func (e allocEnv) fork() flowState  { return e }
func (e allocEnv) merge(flowState)  {}
func (e allocEnv) enterLoop()       { e.w.depth++ }
func (e allocEnv) exitLoop()        { e.w.depth-- }
func (e allocEnv) expr(x ast.Expr)  { e.w.scanExpr(x) }
func (e allocEnv) leaf(st ast.Stmt) { e.w.leafStmt(st) }

func (w *allocWalker) inExit(pos token.Pos) bool {
	for _, s := range w.exitRegions {
		if s.from <= pos && pos <= s.to {
			return true
		}
	}
	return false
}

func (w *allocWalker) site(pos token.Pos, kind, hint, sanction string) {
	if w.seenPos[pos] {
		return
	}
	w.seenPos[pos] = true
	w.n.hot.sites = append(w.n.hot.sites, allocSite{
		pos: pos, depth: w.depth, kind: kind, hint: hint,
		sanction: sanction, exit: w.inExit(pos),
	})
}

func (w *allocWalker) edge(c *FuncNode, pos token.Pos) {
	d := w.depth
	if w.inExit(pos) {
		d = 0
	}
	if cur, ok := w.calleeDepth[c]; !ok || d < cur {
		w.calleeDepth[c] = d
	}
}

func (w *allocWalker) typeOf(e ast.Expr) types.Type {
	if e == nil {
		return nil
	}
	if tv, ok := w.info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := unparen(e).(*ast.Ident); ok {
		if o := w.info.Uses[id]; o != nil {
			return o.Type()
		}
		if o := w.info.Defs[id]; o != nil {
			return o.Type()
		}
	}
	return nil
}

// refObj resolves the variable a reference chain is rooted at: x, x.f,
// x[i], *x all resolve to the leftmost addressable object; for field
// selections the field variable itself is returned (stable across
// mentions), so `s.buf` matches `s.buf` in another statement.
func (w *allocWalker) refObj(e ast.Expr) types.Object {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		if o := w.info.Defs[x]; o != nil {
			return o
		}
		return w.info.Uses[x]
	case *ast.SelectorExpr:
		if sel, ok := w.info.Selections[x]; ok {
			return sel.Obj()
		}
		return w.info.Uses[x.Sel]
	case *ast.StarExpr:
		return w.refObj(x.X)
	case *ast.IndexExpr:
		return w.refObj(x.X)
	case *ast.SliceExpr:
		return w.refObj(x.X)
	}
	return nil
}

func (w *allocWalker) noteEscape(e ast.Expr) {
	if kv, ok := unparen(e).(*ast.KeyValueExpr); ok {
		e = kv.Value
	}
	if id := rootIdent(e); id != nil {
		obj := w.info.Uses[id]
		if obj == nil {
			obj = w.info.Defs[id]
		}
		if i, ok := w.paramIdx[obj]; ok {
			w.escapes[i] = true
		}
	}
}

// makeCall matches e against the make builtin.
func (w *allocWalker) makeCall(e ast.Expr) *ast.CallExpr {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return nil
	}
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" {
		return nil
	}
	if _, ok := w.info.Uses[id].(*types.Builtin); !ok {
		return nil
	}
	return call
}

// capGuardObj matches `cap(x) < n` and returns x's root object.
func (w *allocWalker) capGuardObj(cond ast.Expr) types.Object {
	b, ok := unparen(cond).(*ast.BinaryExpr)
	if !ok || b.Op != token.LSS {
		return nil
	}
	call, ok := unparen(b.X).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil
	}
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "cap" {
		return nil
	}
	if _, ok := w.info.Uses[id].(*types.Builtin); !ok {
		return nil
	}
	return w.refObj(call.Args[0])
}

// prepass collects flow-insensitive facts before the site scan:
// capacity guards, clear()ed maps, locally-made maps, and the make
// calls those facts sanction. ast.Inspect is pre-order, so a guard is
// seen before the make it wraps.
func (w *allocWalker) prepass(body *ast.BlockStmt) {
	walkShallow(body, func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.IfStmt:
			if obj := w.capGuardObj(x.Cond); obj != nil {
				w.capGuarded[obj] = true
			}
		case *ast.CallExpr:
			if id, ok := unparen(x.Fun).(*ast.Ident); ok && id.Name == "clear" && len(x.Args) == 1 {
				if _, ok := w.info.Uses[id].(*types.Builtin); ok {
					if obj := w.refObj(x.Args[0]); obj != nil {
						w.cleared[obj] = true
					}
				}
			}
		case *ast.AssignStmt:
			if len(x.Lhs) != len(x.Rhs) {
				return true
			}
			for i, l := range x.Lhs {
				mk := w.makeCall(x.Rhs[i])
				if mk == nil {
					continue
				}
				obj := w.refObj(l)
				if obj == nil {
					continue
				}
				if t := w.typeOf(l); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						if v, ok := obj.(*types.Var); ok && !v.IsField() {
							w.localMaps[obj] = true
						}
					}
				}
				if v, ok := obj.(*types.Var); ok && v.IsField() {
					w.sanctioned[mk] = "grow-on-demand make installed on a struct field"
				} else if w.capGuarded[obj] {
					w.sanctioned[mk] = "capacity-guarded grow of a reused buffer"
				}
			}
		case *ast.GenDecl:
			for _, spec := range x.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, v := range vs.Values {
					if w.makeCall(v) == nil || i >= len(vs.Names) {
						continue
					}
					obj := w.info.Defs[vs.Names[i]]
					if obj == nil {
						continue
					}
					if _, isMap := obj.Type().Underlying().(*types.Map); isMap {
						w.localMaps[obj] = true
					}
				}
			}
		}
		return true
	})
	w.exitRegions = exitSpans(body)
}

func (w *allocWalker) leafStmt(st ast.Stmt) {
	switch s := st.(type) {
	case *ast.AssignStmt:
		w.scanAssign(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.scanExpr(v)
					}
				}
			}
		}
	case *ast.ExprStmt:
		w.scanExpr(s.X)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.scanExpr(r)
		}
	case *ast.SendStmt:
		w.scanExpr(s.Chan)
		w.scanExpr(s.Value)
		w.noteEscape(s.Value)
	case *ast.IncDecStmt:
		w.scanExpr(s.X)
	case *ast.GoStmt:
		if w.depth >= 1 {
			w.site(s.Pos(), "goroutine launched per iteration",
				"hoist the launch out of the loop or use a worker pool", "")
		}
		for _, a := range s.Call.Args {
			w.scanExpr(a)
		}
	case *ast.DeferStmt:
		if w.depth >= 1 {
			w.site(s.Pos(), "defer inside a loop",
				"move the defer out of the loop", "")
		}
		for _, a := range s.Call.Args {
			w.scanExpr(a)
		}
	case *ast.RangeStmt:
		w.scanExpr(s.X) // header only; the driver runs the body
	}
}

func (w *allocWalker) scanAssign(s *ast.AssignStmt) {
	if s.Tok == token.ADD_ASSIGN && len(s.Lhs) == 1 && isStringType(w.typeOf(s.Lhs[0])) {
		w.site(s.Pos(), "string += grows by copy",
			"accumulate in a reused []byte outside the hot region", "")
	}
	for i, l := range s.Lhs {
		lhs := unparen(l)
		if ix, ok := lhs.(*ast.IndexExpr); ok {
			if t := w.typeOf(ix.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					sanction := ""
					if obj := w.refObj(ix.X); obj != nil && (w.localMaps[obj] || w.cleared[obj]) {
						sanction = "write to a locally-made or clear()ed map"
					}
					w.site(s.Pos(), "map write may trigger a rehash",
						"preallocate with make(map, n) or reuse a clear()ed map", sanction)
				}
			}
		}
		if i < len(s.Rhs) && len(s.Lhs) == len(s.Rhs) {
			w.checkBoxing(w.typeOf(l), s.Rhs[i], "assignment to interface-typed location")
			switch lhs.(type) {
			case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
				w.noteEscape(s.Rhs[i])
			}
		}
	}
	for _, r := range s.Rhs {
		w.scanExpr(r)
	}
	for _, l := range s.Lhs {
		w.scanExpr(l)
	}
}

func (w *allocWalker) scanExpr(x ast.Expr) {
	switch v := unparen(x).(type) {
	case nil:
	case *ast.CallExpr:
		w.scanCall(v)
	case *ast.CompositeLit:
		w.scanComposite(v, false)
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			if lit, ok := unparen(v.X).(*ast.CompositeLit); ok {
				w.scanComposite(lit, true)
				return
			}
		}
		w.scanExpr(v.X)
	case *ast.BinaryExpr:
		if v.Op == token.ADD && isStringType(w.typeOf(v)) && !w.isConst(v) {
			w.site(v.Pos(), "string concatenation allocates",
				"build into a reused []byte or precompute outside the hot region", "")
		}
		w.scanExpr(v.X)
		w.scanExpr(v.Y)
	case *ast.FuncLit:
		if c := w.m.byLit[v]; c != nil {
			w.edge(c, v.Pos())
		}
		if w.depth >= 1 {
			w.site(v.Pos(), "closure allocated per loop iteration",
				"hoist the closure (and its captures) out of the loop", "")
		}
	case *ast.StarExpr:
		w.scanExpr(v.X)
	case *ast.IndexExpr:
		w.scanExpr(v.X)
		w.scanExpr(v.Index)
	case *ast.SliceExpr:
		w.scanExpr(v.X)
		w.scanExpr(v.Low)
		w.scanExpr(v.High)
		w.scanExpr(v.Max)
	case *ast.TypeAssertExpr:
		w.scanExpr(v.X)
	case *ast.KeyValueExpr:
		w.scanExpr(v.Value)
	case *ast.SelectorExpr:
		if sel, ok := w.info.Selections[v]; ok && sel.Kind() == types.MethodVal && w.depth >= 1 {
			w.site(v.Pos(), "method value allocates a bound closure",
				"call the method directly or hoist the value", "")
		}
		w.scanExpr(v.X)
	}
}

func (w *allocWalker) isConst(e ast.Expr) bool {
	tv, ok := w.info.Types[e]
	return ok && tv.Value != nil
}

func (w *allocWalker) scanComposite(lit *ast.CompositeLit, addr bool) {
	t := w.typeOf(lit)
	switch {
	case addr:
		w.site(lit.Pos(), "&composite literal escapes to the heap",
			"reuse a pooled or scratch object", "")
	case t != nil:
		switch t.Underlying().(type) {
		case *types.Slice:
			w.site(lit.Pos(), "slice literal allocates a backing array",
				"write into a reused scratch slice", "")
		case *types.Map:
			w.site(lit.Pos(), "map literal allocates",
				"hoist the map out of the hot region", "")
		}
	}
	for _, el := range lit.Elts {
		w.scanExpr(el)
		w.noteEscape(el)
	}
}

func (w *allocWalker) scanArgs(call *ast.CallExpr) {
	for _, a := range call.Args {
		w.scanExpr(a)
	}
}

func (w *allocWalker) scanCall(call *ast.CallExpr) {
	fun := unparen(call.Fun)

	if lit, ok := fun.(*ast.FuncLit); ok {
		// Immediately-invoked literal: a call edge, not a closure value.
		if c := w.m.byLit[lit]; c != nil {
			w.edge(c, call.Pos())
		}
		w.scanArgs(call)
		return
	}

	// Type conversions.
	if tv, ok := w.info.Types[fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			tgt := tv.Type
			at := w.typeOf(call.Args[0])
			if isStringByteConv(tgt, at) {
				w.site(call.Pos(), "string/[]byte conversion copies",
					"keep one representation across the hot region", "")
			} else {
				w.checkBoxing(tgt, call.Args[0], "conversion")
			}
		}
		w.scanArgs(call)
		return
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if _, isB := w.info.Uses[id].(*types.Builtin); isB {
			switch id.Name {
			case "make":
				w.site(call.Pos(), "make allocates",
					"preallocate once and reuse (capacity-guarded grow or struct-field scratch)",
					w.sanctioned[call])
			case "new":
				w.site(call.Pos(), "new allocates",
					"reuse a pooled or scratch object", "")
			case "append":
				w.appendSite(call)
			}
			w.scanArgs(call)
			return
		}
	}

	// container/heap dispatches every element through interface{}.
	if path, name, ok := pkgFuncOf(w.info, fun); ok && path == "container/heap" {
		w.site(call.Pos(), fmt.Sprintf("container/heap.%s dispatches through interface methods", name),
			"replace with a concrete sift-up/down heap", "")
	}

	w.checkCallBoxing(call)

	for _, c := range w.m.calleesOf(w.info, fun) {
		w.edge(c, call.Pos())
	}

	if sel, ok := fun.(*ast.SelectorExpr); ok {
		w.scanExpr(sel.X)
	}
	w.scanArgs(call)
}

func (w *allocWalker) appendSite(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	dst := unparen(call.Args[0])
	sanction := ""
	if se, ok := dst.(*ast.SliceExpr); ok {
		if se.Low == nil && se.High != nil && isZeroLit(se.High) {
			sanction = "reset-and-append reuse (x[:0])"
		}
	}
	if sanction == "" {
		if obj := w.refObj(dst); obj != nil {
			if v, ok := obj.(*types.Var); ok {
				if v.IsField() {
					sanction = "amortized growth of a persistent buffer field"
				} else if _, isParam := w.paramIdx[obj]; isParam {
					sanction = "append-builder over a caller-provided buffer"
				}
			}
		}
	}
	w.site(call.Pos(), "append may grow the backing array",
		"preallocate capacity or append into a reused scratch buffer", sanction)
	for _, a := range call.Args[1:] {
		w.noteEscape(a)
	}
}

// checkBoxing flags a concrete, non-pointer-shaped value placed into an
// interface-typed location: the conversion copies the value to the heap.
func (w *allocWalker) checkBoxing(tgt types.Type, val ast.Expr, what string) {
	if tgt == nil || !types.IsInterface(tgt) {
		return
	}
	at := w.typeOf(val)
	if at == nil || types.IsInterface(at) || pointerShaped(at) {
		return
	}
	w.site(val.Pos(), fmt.Sprintf("%s boxes a %s into an interface", what, typeShort(at)),
		"avoid interface indirection on the hot path", "")
}

// checkCallBoxing applies the boxing rule at call boundaries, including
// fmt-style variadic ...any parameters.
func (w *allocWalker) checkCallBoxing(call *ast.CallExpr) {
	tv, ok := w.info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	np := params.Len()
	for i, a := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through whole, no per-arg boxing
			}
			if sl, ok := params.At(np - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < np:
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := w.typeOf(a)
		if at == nil || types.IsInterface(at) || pointerShaped(at) {
			continue
		}
		w.site(a.Pos(), fmt.Sprintf("argument boxes a %s into a %s parameter", typeShort(at), typeShort(pt)),
			"avoid interface parameters on the hot path (or pass pointer-shaped values)", "")
	}
}

// pointerShaped reports whether converting t to an interface stores the
// value directly in the interface word (no heap copy).
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer || u.Kind() == types.UntypedNil
	}
	return false
}

func typeShort(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isStringByteConv(tgt, src types.Type) bool {
	if tgt == nil || src == nil {
		return false
	}
	return (isStringType(tgt) && isByteOrRuneSlice(src)) ||
		(isByteOrRuneSlice(tgt) && isStringType(src))
}

func isZeroLit(e ast.Expr) bool {
	bl, ok := unparen(e).(*ast.BasicLit)
	return ok && bl.Kind == token.INT && bl.Value == "0"
}

// collectAllocSites runs the site scan over one function body and
// flattens the results onto n.hot.
func collectAllocSites(m *Module, n *FuncNode) {
	w := &allocWalker{
		m: m, n: n, info: n.Pkg.Info,
		paramIdx:    map[types.Object]int{},
		capGuarded:  map[types.Object]bool{},
		localMaps:   map[types.Object]bool{},
		cleared:     map[types.Object]bool{},
		sanctioned:  map[*ast.CallExpr]string{},
		seenPos:     map[token.Pos]bool{},
		escapes:     map[int]bool{},
		calleeDepth: map[*FuncNode]int{},
	}
	for i, p := range paramList(n) {
		w.paramIdx[p] = i
	}
	body := n.body()
	w.prepass(body)
	flowStmts(body.List, allocEnv{w})

	sort.Slice(n.hot.sites, func(i, j int) bool { return n.hot.sites[i].pos < n.hot.sites[j].pos })
	edges := make([]calleeEdge, 0, len(w.calleeDepth))
	for c, d := range w.calleeDepth {
		edges = append(edges, calleeEdge{c, d})
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].c.Name() < edges[j].c.Name() })
	n.hot.edges = edges

	var sum float64
	for _, s := range n.hot.sites {
		switch {
		case s.sanction != "":
			// amortized/reused: charged 0
		case s.exit:
			sum++ // at most once per call
		default:
			sum += math.Pow(loopWeight, float64(s.depth))
		}
	}
	n.hot.siteAllocs = sum

	for i := range w.escapes {
		n.hot.escaped = append(n.hot.escaped, i)
	}
	sort.Ints(n.hot.escaped)
}

// computeHotAlloc runs the hotalloc layer over the module: directive
// scan, per-body site collection, then two fixed points — minimum hot
// depth (decreasing) and allocs-per-call (increasing, clamped).
func computeHotAlloc(m *Module) {
	for _, n := range m.nodes {
		n.hot = hotInfo{depth: hotCold}
		scanHotDirective(n)
	}
	markPoolNewLits(m)
	for _, n := range m.nodes {
		if n.body() != nil {
			collectAllocSites(m, n)
		}
	}

	for sweep := 0; sweep < 200; sweep++ {
		changed := false
		for _, n := range m.nodes {
			if n.hot.dir.root {
				base := 1
				if n.hot.dir.driver {
					base = 0
				}
				if n.hot.depth == hotCold || base < n.hot.depth {
					n.hot.depth, n.hot.via = base, ""
					changed = true
				}
			}
			if n.hot.depth == hotCold || n.hot.dir.cold {
				continue
			}
			for _, e := range n.hot.edges {
				c := e.c
				if c.hot.dir.cold || isObsPath(c.Pkg.PkgPath) {
					continue
				}
				cand := n.hot.depth + e.depth
				if cand > maxHotDepth {
					cand = maxHotDepth
				}
				if c.hot.depth == hotCold || cand < c.hot.depth {
					c.hot.depth = cand
					c.hot.via = shortFuncName(n)
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}

	for sweep := 0; sweep < 60; sweep++ {
		changed := false
		for _, n := range m.nodes {
			v := n.hot.siteAllocs
			for _, e := range n.hot.edges {
				if e.c == n || e.c.hot.dir.cold || isObsPath(e.c.Pkg.PkgPath) {
					continue
				}
				v += e.c.hot.allocs * math.Pow(loopWeight, float64(e.depth))
			}
			if v > allocCap {
				v = allocCap
			}
			if v > n.hot.allocs+1e-9 {
				n.hot.allocs = v
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

// isObsPath matches the observability package: its tracer is the
// audited allocation boundary (events are only built when tracing is
// on), so hot propagation stops there.
func isObsPath(pkgPath string) bool {
	return strings.HasSuffix(pkgPath, "internal/obs")
}

// AllocSummary is the exported per-function allocation estimate.
type AllocSummary struct {
	// AllocsPerCall estimates heap allocations per invocation, with
	// loops weighted at loopWeight iterations per level and callees
	// charged at their call-site depth.
	AllocsPerCall float64
	// EscapedParams lists parameter indices (receiver first) the
	// function stores into heap-reachable places.
	EscapedParams []int
}

// Alloc returns the converged allocation summary for this function.
func (n *FuncNode) Alloc() AllocSummary {
	return AllocSummary{
		AllocsPerCall: n.hot.allocs,
		EscapedParams: append([]int(nil), n.hot.escaped...),
	}
}

// HotDepth returns the converged minimum loop depth from a hot root,
// or -1 when the function is not reachable from any //ugo:hotpath root.
func (n *FuncNode) HotDepth() int { return n.hot.depth }

// HotRow is one line of the ranked hot-region table.
type HotRow struct {
	Func          string
	Depth         int // -1 for coldpath boundaries referenced from hot code
	AllocsPerCall float64
	Score         float64 // AllocsPerCall × loopWeight^Depth: cost per root iteration
	Sites         int     // charged (unsanctioned, non-exit) sites in the body
	Via           string  // hot predecessor
	Cold          string  // coldpath audit reason (boundary rows)
}

// HotReport returns the hot functions ranked by estimated allocation
// cost per root iteration, followed by the audited coldpath boundaries
// they reference.
func (m *Module) HotReport() []HotRow {
	boundary := map[*FuncNode]bool{}
	for _, n := range m.nodes {
		if n.hot.depth == hotCold || n.hot.dir.cold {
			continue
		}
		for _, e := range n.hot.edges {
			if e.c.hot.dir.cold {
				boundary[e.c] = true
			}
		}
	}
	var rows []HotRow
	for _, n := range m.nodes {
		switch {
		case n.hot.depth != hotCold && !n.hot.dir.cold:
			sites := 0
			for _, s := range n.hot.sites {
				if s.sanction == "" && !s.exit {
					sites++
				}
			}
			rows = append(rows, HotRow{
				Func:          n.Name(),
				Depth:         n.hot.depth,
				AllocsPerCall: n.hot.allocs,
				Score:         n.hot.allocs * math.Pow(loopWeight, float64(n.hot.depth)),
				Sites:         sites,
				Via:           n.hot.via,
			})
		case boundary[n]:
			rows = append(rows, HotRow{
				Func:          n.Name(),
				Depth:         -1,
				AllocsPerCall: n.hot.allocs,
				Cold:          n.hot.dir.reason,
			})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		//lint:ignore floatcmp exact compare is a deterministic sort tiebreak, not a tolerance decision
		if rows[i].Score != rows[j].Score {
			return rows[i].Score > rows[j].Score
		}
		return rows[i].Func < rows[j].Func
	})
	return rows
}

// RunHot builds the module over pkgs, runs only the hotalloc analyzer
// (so //lint:ignore directives apply), and returns the surviving
// findings plus the ranked hot-region table.
func RunHot(pkgs []*Package) ([]Finding, []HotRow) {
	mod := BuildModule(pkgs)
	var out []Finding
	for _, pkg := range pkgs {
		out = append(out, runPackage(pkg, mod, []*Analyzer{HotAlloc})...)
	}
	sortFindings(out)
	return out, mod.HotReport()
}

// HotAlloc reports unsanctioned allocation sites in functions reachable
// from //ugo:hotpath roots, plus malformed //ugo: directives.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "allocation sites reachable from //ugo:hotpath roots; the per-node\n" +
		"solve loop promises allocation-free steady state, so composite\n" +
		"literals, make/new, growing appends, map rehashes, closures,\n" +
		"interface boxing, and string concatenation in hot regions are\n" +
		"findings unless a sanctioned reuse idiom or //ugo:coldpath audit\n" +
		"covers them",
	Applies: func(pkgPath string) bool { return !isObsPath(pkgPath) },
	Run:     runHotAlloc,
}

func runHotAlloc(p *Pass) {
	for _, n := range p.Mod.nodes {
		if n.Pkg == nil || n.Pkg.PkgPath != p.PkgPath {
			continue
		}
		if n.hot.hasDir && n.hot.dir.bad != "" {
			p.Reportf(n.hot.dir.pos, "%s", n.hot.dir.bad)
		}
		if n.hot.depth == hotCold || n.hot.dir.cold {
			continue
		}
		for _, s := range n.hot.sites {
			if s.sanction != "" || s.exit {
				continue
			}
			if n.hot.depth+s.depth < 1 {
				continue
			}
			where := fmt.Sprintf("hot depth %d", n.hot.depth+s.depth)
			if n.hot.via != "" {
				where += " via " + n.hot.via
			}
			p.Reportf(s.pos, "%s in %s (%s): %s", s.kind, shortFuncName(n), where, s.hint)
		}
	}
}
