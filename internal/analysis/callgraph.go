package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// This file builds the module-level call graph that powers the
// interprocedural analyzers (lockblock, goroleak, mapdet). The graph is
// deliberately conservative in the may-call direction: a function value
// or method value that is merely referenced is treated as potentially
// called, and an interface method call fans out to every module type
// that implements the interface. Precision is recovered where it
// matters by keeping goroutine launches (`go f()`) out of the
// synchronous edge set — a spawned callee cannot block its spawner.

// FuncNode is one node of the module call graph: a declared function or
// method (Obj != nil) or a function literal (Lit != nil).
type FuncNode struct {
	Obj  *types.Func   // declared function/method; nil for literals
	Lit  *ast.FuncLit  // function literal; nil for declarations
	Decl *ast.FuncDecl // declaration site; nil for literals
	Pkg  *Package

	calls   map[*FuncNode]bool // synchronous may-call edges (incl. references)
	spawned map[*FuncNode]bool // callees launched with `go`
	// returnedCalls are callees whose result is returned directly
	// (`return f(...)`); OrderDep propagates through them.
	returnedCalls []*FuncNode

	sum Summary

	// mapdet site cache: mapOrderSites is consulted by both the summary
	// pass and the analyzer.
	orderOnce  bool
	orderSites []mapdetSite

	// Dataflow layer results (dataflow.go): the converged taint
	// summary, intrinsic-taint sink hits (walldet), and recorded
	// obs.Event construction sites (tracekind).
	taint      taintSummary
	taintSites []taintSite
	evLits     []eventLitSite
	evAssigns  []eventAssignSite

	// ctxdeadline's I/O-parameter summary: which parameters the
	// function performs raw network-style reads/writes on.
	ioParams []ioKind

	// hotalloc layer results (hotalloc.go): directives, allocation
	// sites, per-callee minimum loop depth, and the converged hot
	// depth / allocs-per-call estimate.
	hot hotInfo
}

// Name returns a stable human-readable identifier: the type-qualified
// name for declarations, "func@file:line" for literals.
func (n *FuncNode) Name() string {
	if n.Obj != nil {
		return n.Obj.FullName()
	}
	pos := n.Pkg.Fset.Position(n.Lit.Pos())
	return fmt.Sprintf("func@%s:%d", pos.Filename, pos.Line)
}

// Summary returns the converged dataflow summary for this function.
func (n *FuncNode) Summary() Summary { return n.sum }

// Callees returns the synchronous may-call successors in stable order.
func (n *FuncNode) Callees() []*FuncNode {
	out := make([]*FuncNode, 0, len(n.calls))
	for c := range n.calls {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// body returns the function body (nil for bodyless declarations).
func (n *FuncNode) body() *ast.BlockStmt {
	if n.Lit != nil {
		return n.Lit.Body
	}
	return n.Decl.Body
}

// Module is the interprocedural view over a set of loaded packages: the
// call graph plus converged function summaries.
type Module struct {
	byObj map[*types.Func]*FuncNode
	byLit map[*ast.FuncLit]*FuncNode
	nodes []*FuncNode
	named []*types.Named // module named types, for interface dispatch

	implCache map[*types.Func][]*FuncNode

	// Rounds is how many fixed-point sweeps the summary computation
	// needed to converge (diagnostics/tests).
	Rounds int
}

// BuildModule constructs the call graph over pkgs and runs the summary
// dataflow to its fixed point.
func BuildModule(pkgs []*Package) *Module {
	m := &Module{
		byObj:     map[*types.Func]*FuncNode{},
		byLit:     map[*ast.FuncLit]*FuncNode{},
		implCache: map[*types.Func][]*FuncNode{},
	}
	for _, pkg := range pkgs {
		m.collectNodes(pkg)
		m.collectNamed(pkg)
	}
	for _, n := range m.nodes {
		if n.body() != nil {
			m.collectEdges(n)
		}
	}
	computeSummaries(m)
	computeTaintSummaries(m)
	computeIOParams(m)
	computeHotAlloc(m)
	return m
}

// FuncByName finds a node whose Name has the given suffix (tests and
// diagnostics); returns nil when absent or ambiguous.
func (m *Module) FuncByName(suffix string) *FuncNode {
	var found *FuncNode
	for _, n := range m.nodes {
		if strings.HasSuffix(n.Name(), suffix) {
			if found != nil {
				return nil
			}
			found = n
		}
	}
	return found
}

// Funcs returns every node in stable order.
func (m *Module) Funcs() []*FuncNode {
	out := append([]*FuncNode(nil), m.nodes...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// collectNodes registers every FuncDecl and FuncLit in pkg.
func (m *Module) collectNodes(pkg *Package) {
	for _, file := range pkg.Files {
		ast.Inspect(file, func(nd ast.Node) bool {
			switch x := nd.(type) {
			case *ast.FuncDecl:
				obj, _ := pkg.Info.Defs[x.Name].(*types.Func)
				fn := &FuncNode{Obj: obj, Decl: x, Pkg: pkg,
					calls: map[*FuncNode]bool{}, spawned: map[*FuncNode]bool{}}
				if obj != nil {
					m.byObj[obj] = fn
				}
				m.nodes = append(m.nodes, fn)
			case *ast.FuncLit:
				fn := &FuncNode{Lit: x, Pkg: pkg,
					calls: map[*FuncNode]bool{}, spawned: map[*FuncNode]bool{}}
				m.byLit[x] = fn
				m.nodes = append(m.nodes, fn)
			}
			return true
		})
	}
}

// collectNamed registers the package's named types for interface
// dispatch resolution.
func (m *Module) collectNamed(pkg *Package) {
	if pkg.Types == nil {
		return
	}
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		if named, ok := tn.Type().(*types.Named); ok {
			m.named = append(m.named, named)
		}
	}
}

// collectEdges walks one function body (not descending into nested
// literals, which are their own nodes) and records call, spawn,
// reference, and returned-call edges.
func (m *Module) collectEdges(n *FuncNode) {
	info := n.Pkg.Info
	// Funs of call expressions: excluded from reference-edge handling.
	funExprs := map[ast.Expr]bool{}
	// Calls appearing directly under `go`.
	spawnSites := map[*ast.CallExpr]bool{}
	walkShallow(n.body(), func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.GoStmt:
			spawnSites[x.Call] = true
		case *ast.CallExpr:
			funExprs[unparen(x.Fun)] = true
		}
		return true
	})
	walkShallow(n.body(), func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.CallExpr:
			tgt := m.calleesOf(info, x.Fun)
			for _, c := range tgt {
				if spawnSites[x] {
					n.spawned[c] = true
				} else {
					n.calls[c] = true
				}
			}
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if call, ok := unparen(res).(*ast.CallExpr); ok {
					n.returnedCalls = append(n.returnedCalls, m.calleesOf(info, call.Fun)...)
				}
			}
		case *ast.FuncLit:
			// A literal used as a value (stored, passed, returned): the
			// holder may invoke it, so keep a conservative call edge. A
			// literal that is the Fun of a call was already resolved above.
			if !funExprs[x] {
				if c := m.byLit[x]; c != nil {
					n.calls[c] = true
				}
			}
			return false // its body belongs to its own node
		case *ast.Ident:
			if funExprs[x] {
				return true
			}
			if fn, ok := info.Uses[x].(*types.Func); ok {
				if c := m.byObj[fn]; c != nil {
					n.calls[c] = true // function value reference
				}
			}
		case *ast.SelectorExpr:
			if funExprs[x] {
				return true
			}
			// Method value (mv := x.M) or qualified function reference.
			if fn, ok := info.Uses[x.Sel].(*types.Func); ok {
				for _, c := range m.resolveFunc(fn) {
					n.calls[c] = true
				}
			}
		}
		return true
	})
	// Calls through `go lit()` register the literal only as spawned.
	for c := range n.spawned {
		delete(n.calls, c)
	}
}

// calleesOf resolves the possible module-local targets of calling fun.
// Type conversions, builtins, and non-module functions resolve to nil.
func (m *Module) calleesOf(info *types.Info, fun ast.Expr) []*FuncNode {
	fun = unparen(fun)
	switch f := fun.(type) {
	case *ast.FuncLit:
		if n := m.byLit[f]; n != nil {
			return []*FuncNode{n}
		}
	case *ast.Ident:
		if fn, ok := info.Uses[f].(*types.Func); ok {
			return m.resolveFunc(fn)
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return m.resolveFunc(fn)
			}
			return nil
		}
		// Package-qualified reference (pkg.Func).
		if fn, ok := info.Uses[f.Sel].(*types.Func); ok {
			return m.resolveFunc(fn)
		}
	}
	return nil
}

// resolveFunc maps a *types.Func to graph nodes: directly for concrete
// functions/methods, through the implementation index for interface
// methods.
func (m *Module) resolveFunc(fn *types.Func) []*FuncNode {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		if types.IsInterface(sig.Recv().Type()) {
			return m.implementers(fn)
		}
	}
	if n := m.byObj[fn]; n != nil {
		return []*FuncNode{n}
	}
	return nil
}

// implementers returns the module methods that may be dispatched to by
// a call of the interface method fn.
func (m *Module) implementers(fn *types.Func) []*FuncNode {
	if cached, ok := m.implCache[fn]; ok {
		return cached
	}
	var out []*FuncNode
	iface, _ := fn.Type().(*types.Signature).Recv().Type().Underlying().(*types.Interface)
	if iface != nil {
		seen := map[*FuncNode]bool{}
		for _, named := range m.named {
			if types.IsInterface(named.Underlying()) {
				continue
			}
			ptr := types.NewPointer(named)
			if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(ptr, true, fn.Pkg(), fn.Name())
			if impl, ok := obj.(*types.Func); ok {
				if n := m.byObj[impl]; n != nil && !seen[n] {
					seen[n] = true
					out = append(out, n)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	m.implCache[fn] = out
	return out
}

// walkShallow inspects root without descending into nested function
// literals (whose bodies belong to their own graph nodes).
func walkShallow(root ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(root, func(nd ast.Node) bool {
		if lit, ok := nd.(*ast.FuncLit); ok && nd != root {
			if !fn(lit) {
				return false
			}
			return false
		}
		if nd == nil {
			return true
		}
		return fn(nd)
	})
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
