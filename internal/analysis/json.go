package analysis

import (
	"encoding/json"
	"io"
)

// jsonFinding is the machine-readable finding shape emitted by
// `ugolint -json`: stable field names, 1-based positions, and the
// suggested fix (when one exists) as a replace-range edit.
type jsonFinding struct {
	Analyzer string    `json:"analyzer"`
	File     string    `json:"file"`
	Line     int       `json:"line"`
	Col      int       `json:"col"`
	Message  string    `json:"message"`
	Fix      *jsonEdit `json:"fix,omitempty"`
}

// jsonEdit is a text replacement: substitute NewText for the source
// range [start, end) within File.
type jsonEdit struct {
	File      string `json:"file"`
	StartLine int    `json:"startLine"`
	StartCol  int    `json:"startCol"`
	EndLine   int    `json:"endLine"`
	EndCol    int    `json:"endCol"`
	NewText   string `json:"newText"`
}

// WriteJSON writes findings as an indented JSON array (never null: an
// empty run emits []), suitable for scripts and editor integrations.
func WriteJSON(w io.Writer, findings []Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		jf := jsonFinding{
			Analyzer: f.Analyzer,
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Message:  f.Message,
		}
		if f.Fix != nil {
			jf.Fix = &jsonEdit{
				File:      f.Fix.Pos.Filename,
				StartLine: f.Fix.Pos.Line,
				StartCol:  f.Fix.Pos.Column,
				EndLine:   f.Fix.End.Line,
				EndCol:    f.Fix.End.Column,
				NewText:   f.Fix.NewText,
			}
		}
		out = append(out, jf)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
