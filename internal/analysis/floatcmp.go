package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FloatcmpAllowFuncs names functions that are themselves tolerance
// helpers: raw float comparison inside them is the point. Functions in
// the num package (the repository's eps-helper layer) are always exempt.
var FloatcmpAllowFuncs = map[string]bool{}

// FloatCmp flags raw ==/!= (and switch) on float-typed expressions.
// LP pivoting, SDP feasibility, and B&B bound comparisons accumulate
// rounding error; exact equality on such values is either a latent bug
// or an exact-sentinel check that must be annotated as audited. Fixes
// route through the tolerance helpers in internal/num. Comparisons
// against infinity sentinels (math.Inf, Infinity constants) are exempt:
// infinities are assigned, never computed, so equality is exact.
var FloatCmp = &Analyzer{
	Name:    "floatcmp",
	Doc:     "raw ==/!= or switch on float-typed expressions outside tolerance helpers",
	Applies: isInternal,
	Run:     runFloatCmp,
}

func runFloatCmp(p *Pass) {
	if strings.HasSuffix(p.PkgPath, "/num") {
		return // the eps-helper layer itself
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if fd, ok := n.(*ast.FuncDecl); ok && FloatcmpAllowFuncs[fd.Name.Name] {
				return false
			}
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if !isFloatExpr(p, n.X) && !isFloatExpr(p, n.Y) {
					return true
				}
				if isInfSentinel(p, n.X) || isInfSentinel(p, n.Y) {
					return true
				}
				p.Reportf(n.OpPos, "float comparison with %s; use a tolerance helper (internal/num) or annotate an audited exact check", n.Op)
			case *ast.SwitchStmt:
				if n.Tag != nil && isFloatExpr(p, n.Tag) {
					p.Reportf(n.Switch, "switch on float-typed expression compares exactly; use tolerance-based branching")
				}
			}
			return true
		})
	}
}

func isFloatExpr(p *Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isInfSentinel recognizes expressions that denote an exact infinity:
// math.Inf(...) calls, possibly negated, and named values whose name
// spells infinity (Infinity, negInf, posInf, inf).
func isInfSentinel(p *Pass, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return isInfSentinel(p, e.X)
	case *ast.UnaryExpr:
		if e.Op == token.SUB || e.Op == token.ADD {
			return isInfSentinel(p, e.X)
		}
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			if isPkgFunc(p, sel, "math", "Inf") {
				return true
			}
		}
	case *ast.Ident:
		return isInfName(e.Name)
	case *ast.SelectorExpr:
		return isInfName(e.Sel.Name)
	}
	return false
}

func isInfName(name string) bool {
	n := strings.ToLower(name)
	return n == "inf" || n == "neginf" || n == "posinf" || n == "infinity" ||
		strings.HasSuffix(n, "infinity")
}

// isPkgFunc reports whether sel is a reference to pkgPath.fn.
func isPkgFunc(p *Pass, sel *ast.SelectorExpr, pkgPath, fn string) bool {
	if sel.Sel.Name != fn {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == pkgPath
}
