package analysis

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
)

// repoRoot locates the module root from this source file's position.
func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("runtime.Caller failed")
	}
	root := filepath.Dir(filepath.Dir(filepath.Dir(file))) // internal/analysis/ → repo
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root %s has no go.mod: %v", root, err)
	}
	return root
}

// One shared loader: the stdlib source importer is the expensive part,
// and its results are reusable across every fixture and the selfcheck.
var (
	loaderOnce sync.Once
	loaderVal  *Loader
	loaderErr  error
)

func sharedLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		_, file, _, ok := runtime.Caller(0)
		if !ok {
			loaderErr = fmt.Errorf("runtime.Caller failed")
			return
		}
		root := filepath.Dir(filepath.Dir(filepath.Dir(file)))
		loaderVal, loaderErr = NewLoader(root)
	})
	if loaderErr != nil {
		t.Fatalf("loader: %v", loaderErr)
	}
	return loaderVal
}

// loadFixture loads one fixture package under testdata/src.
func loadFixture(t *testing.T, rel string) *Package {
	t.Helper()
	l := sharedLoader(t)
	dir := filepath.Join(repoRoot(t), "internal", "analysis", "testdata", "src", filepath.FromSlash(rel))
	pkg, err := l.Load(dir)
	if err != nil {
		t.Fatalf("load fixture %s: %v", rel, err)
	}
	for _, e := range pkg.TypeErrors {
		t.Errorf("fixture %s has type errors: %v", rel, e)
	}
	return pkg
}

// wantMarkers scans fixture sources for "// WANT <analyzer>" markers and
// returns the expected file:line→analyzer set.
func wantMarkers(t *testing.T, pkg *Package) map[string]string {
	t.Helper()
	want := map[string]string{}
	entries, err := os.ReadDir(pkg.Dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(pkg.Dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for ln := 1; sc.Scan(); ln++ {
			line := sc.Text()
			idx := strings.Index(line, "// WANT ")
			if idx < 0 {
				continue
			}
			name := strings.TrimSpace(line[idx+len("// WANT "):])
			want[fmt.Sprintf("%s:%d", path, ln)] = name
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return want
}

// checkFixture runs one analyzer over a fixture package and compares
// findings against the WANT markers.
func checkFixture(t *testing.T, a *Analyzer, rel string) {
	t.Helper()
	pkg := loadFixture(t, rel)
	want := wantMarkers(t, pkg)
	got := map[string]string{}
	for _, f := range RunPackage(pkg, []*Analyzer{a}) {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		got[key] = f.Analyzer
	}
	for key, name := range want {
		if got[key] != name {
			t.Errorf("expected %s finding at %s, got %q", name, key, got[key])
		}
	}
	for key, name := range got {
		if _, ok := want[key]; !ok {
			t.Errorf("unexpected %s finding at %s", name, key)
		}
	}
}

func TestFloatCmpFixture(t *testing.T)    { checkFixture(t, FloatCmp, "floatcmp") }
func TestLockHoldFixture(t *testing.T)    { checkFixture(t, LockHold, "lockhold") }
func TestErrDropFixture(t *testing.T)     { checkFixture(t, ErrDrop, "errdrop") }
func TestMathRandFixture(t *testing.T)    { checkFixture(t, MathRand, "mathrand") }
func TestPrintfDebugFixture(t *testing.T) { checkFixture(t, PrintfDebug, "printfdebug") }

// TestPrintfDebugObsWhitelist pins the observability-layer exemption:
// the fixture package's import path ends in /internal/obs, prints to
// stdout and stderr, and must produce zero findings.
func TestPrintfDebugObsWhitelist(t *testing.T) {
	checkFixture(t, PrintfDebug, "obswhitelist/internal/obs")
	if printfDebugApplies("repro/internal/obs") {
		t.Error("printfdebug must not apply to repro/internal/obs")
	}
	if !printfDebugApplies("repro/internal/ug") {
		t.Error("printfdebug must still apply to repro/internal/ug")
	}
}

// TestExportDocFixture asserts by symbol name: inline markers would
// themselves document the declarations under test.
func TestExportDocFixture(t *testing.T) {
	pkg := loadFixture(t, "exportdoc/internal/scip")
	var got []string
	for _, f := range RunPackage(pkg, []*Analyzer{ExportDoc}) {
		got = append(got, f.Message)
	}
	sort.Strings(got)
	want := []string{
		"exported constant Limit has no doc comment",
		"exported function Undocumented has no doc comment",
		"exported interface method Hook.Fire has no doc comment",
		"exported method Stop has no doc comment",
		"exported type Hook has no doc comment",
		"exported variable Tunable has no doc comment",
	}
	if len(got) != len(want) {
		t.Fatalf("got %d findings %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("finding %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestIgnoreDirectives checks suppression (same line and line above),
// non-matching analyzer names, and malformed-directive reporting.
func TestIgnoreDirectives(t *testing.T) {
	pkg := loadFixture(t, "ignore")
	findings := RunPackage(pkg, []*Analyzer{FloatCmp})
	type key struct {
		analyzer string
		fn       string
	}
	got := map[key]int{}
	for _, f := range findings {
		fn := enclosingFixtureFunc(t, pkg, f)
		got[key{f.Analyzer, fn}]++
	}
	want := map[key]int{
		{"floatcmp", "wrongAnalyzer"}: 1, // directive names a different analyzer
		{"floatcmp", "unsuppressed"}:  1,
		{"floatcmp", "missingReason"}: 1, // malformed directive does not suppress
		{"lint", "missingReason"}:     1,
		{"floatcmp", "unknownName"}:   1,
		{"lint", "unknownName"}:       1,
	}
	for k, n := range want {
		if got[k] != n {
			t.Errorf("wanted %d %s finding(s) in %s, got %d", n, k.analyzer, k.fn, got[k])
		}
	}
	for k, n := range got {
		if want[k] == 0 {
			t.Errorf("unexpected %d %s finding(s) in %s (suppression failed?)", n, k.analyzer, k.fn)
		}
	}
}

// enclosingFixtureFunc maps a finding line back to the fixture function
// containing it, by scanning the source for func declarations.
func enclosingFixtureFunc(t *testing.T, pkg *Package, f Finding) string {
	t.Helper()
	data, err := os.ReadFile(f.Pos.Filename)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(data), "\n")
	name := "<none>"
	for i := 0; i < f.Pos.Line && i < len(lines); i++ {
		if rest, ok := strings.CutPrefix(lines[i], "func "); ok {
			name = rest[:strings.IndexAny(rest, "(")]
		}
	}
	return name
}

// TestByName covers the CLI's analyzer selection.
func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != 15 {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want 15", len(all), err)
	}
	// The dataflow-layer analyzers must be registered (the selfcheck
	// runs All(), so this also keeps them wired into tier-1).
	names := map[string]bool{}
	for _, a := range all {
		names[a.Name] = true
	}
	for _, want := range []string{"walldet", "ctxdeadline", "tracekind", "chanlock", "hotalloc"} {
		if !names[want] {
			t.Errorf("ByName(\"\") is missing analyzer %s", want)
		}
	}
	sel, err := ByName("floatcmp, errdrop")
	if err != nil || len(sel) != 2 || sel[0].Name != "floatcmp" || sel[1].Name != "errdrop" {
		t.Fatalf("ByName subset = %v, err %v", sel, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName(nope) should fail")
	}
}
