// Package analysis is ugolint's engine: a stdlib-only static-analysis
// framework (go/ast, go/parser, go/types, go/token) with solver-aware
// analyzers for this repository. The UG layer promises that a sequential
// SCIP-style solver becomes a *correct* parallel one with a thin glue
// file — a promise that only holds if the Supervisor–Worker layer is
// race-free and the numerical kernels follow strict tolerance
// discipline. The analyzers encode those rules so they are enforced
// mechanically on every `go test ./...` run (see selfcheck_test.go)
// rather than re-litigated in review.
//
// Findings can be suppressed for audited exceptions with an inline
// annotation on the offending line or the line directly above it:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// The reason is mandatory; a bare ignore is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position. Fix, when
// non-nil, is a mechanical text edit that resolves the finding.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
	Fix      *TextEdit
}

// TextEdit is a suggested fix: replace the source range [Pos, End) with
// NewText. Positions are resolved (file/line/column), so tools can apply
// the edit without re-parsing.
type TextEdit struct {
	Pos     token.Position
	End     token.Position
	NewText string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Pass hands one type-checked package to an analyzer.
type Pass struct {
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
	PkgPath string
	// Mod is the module-wide call graph with converged function
	// summaries; the interprocedural analyzers (lockblock, goroleak,
	// mapdet) consult it.
	Mod *Module

	analyzer *Analyzer
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportFixf records a finding at pos carrying a suggested text edit:
// replace [fixPos, fixEnd) with newText.
func (p *Pass) ReportFixf(pos token.Pos, fixPos, fixEnd token.Pos, newText, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Fix: &TextEdit{
			Pos:     p.Fset.Position(fixPos),
			End:     p.Fset.Position(fixEnd),
			NewText: newText,
		},
	})
}

// Analyzer is one named rule.
type Analyzer struct {
	Name string
	Doc  string
	// Applies filters packages by import path; nil means every package.
	Applies func(pkgPath string) bool
	Run     func(*Pass)
}

// All returns the full analyzer set in stable order: the six
// intraprocedural analyzers from the first generation, the four
// interprocedural ones built on the call-graph summaries, the four
// dataflow/taint analyzers built on the value-level layer, then the
// hot-path allocation analyzer.
func All() []*Analyzer {
	return []*Analyzer{
		FloatCmp,
		LockHold,
		ErrDrop,
		MathRand,
		PrintfDebug,
		ExportDoc,
		LockBlock,
		GoroLeak,
		MapDet,
		TolConst,
		WallDet,
		CtxDeadline,
		TraceKind,
		ChanLock,
		HotAlloc,
	}
}

// ByName resolves a comma-separated analyzer list ("" means all).
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// RunPackage applies analyzers to one loaded package and returns the
// findings that survive //lint:ignore filtering. Malformed or unknown
// ignore directives are themselves reported under the pseudo-analyzer
// "lint". The call graph is built over the single package; use Run for
// whole-module summaries.
func RunPackage(pkg *Package, analyzers []*Analyzer) []Finding {
	return runPackage(pkg, BuildModule([]*Package{pkg}), analyzers)
}

func runPackage(pkg *Package, mod *Module, analyzers []*Analyzer) []Finding {
	var raw []Finding
	for _, a := range analyzers {
		if a.Applies != nil && !a.Applies(pkg.PkgPath) {
			continue
		}
		pass := &Pass{
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			PkgPath:  pkg.PkgPath,
			Mod:      mod,
			analyzer: a,
			findings: &raw,
		}
		a.Run(pass)
	}
	ig, bad := collectIgnores(pkg)
	var out []Finding
	for _, f := range raw {
		if ig.suppresses(f) {
			continue
		}
		out = append(out, f)
	}
	out = append(out, bad...)
	sortFindings(out)
	return out
}

// Run applies analyzers to every package and concatenates the findings.
// The interprocedural summaries are computed once over all packages, so
// a blocking call three packages deep is visible at every call site.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	mod := BuildModule(pkgs)
	var out []Finding
	for _, pkg := range pkgs {
		out = append(out, runPackage(pkg, mod, analyzers)...)
	}
	sortFindings(out)
	return out
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// ignoreSet maps file → line → analyzers suppressed at that line.
type ignoreSet map[string]map[int]map[string]bool

// suppresses reports whether finding f is covered by a directive on its
// own line or on the line directly above.
func (ig ignoreSet) suppresses(f Finding) bool {
	lines := ig[f.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, ln := range [...]int{f.Pos.Line, f.Pos.Line - 1} {
		if set := lines[ln]; set != nil && set[f.Analyzer] {
			return true
		}
	}
	return false
}

const ignorePrefix = "//lint:ignore"

// collectIgnores scans every comment in the package for lint directives.
func collectIgnores(pkg *Package) (ignoreSet, []Finding) {
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	ig := ignoreSet{}
	var bad []Finding
	report := func(pos token.Position, msg string) {
		bad = append(bad, Finding{Analyzer: "lint", Pos: pos, Message: msg})
	}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				if rest == "" || (rest[0] != ' ' && rest[0] != '\t') {
					continue // e.g. //lint:ignoreXYZ — not our directive
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					report(pos, "malformed ignore directive: need \"//lint:ignore <analyzer> <reason>\"")
					continue
				}
				names := strings.Split(fields[0], ",")
				ok := true
				for _, n := range names {
					if !known[n] {
						report(pos, fmt.Sprintf("ignore directive names unknown analyzer %q", n))
						ok = false
					}
				}
				if !ok {
					continue
				}
				lines := ig[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					ig[pos.Filename] = lines
				}
				set := lines[pos.Line]
				if set == nil {
					set = map[string]bool{}
					lines[pos.Line] = set
				}
				for _, n := range names {
					set[n] = true
				}
			}
		}
	}
	return ig, bad
}

// inspect walks every file in the pass, calling fn for each node; fn
// returning false prunes the subtree.
func inspect(p *Pass, fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// isInternal reports whether pkgPath is a library package (under
// <module>/internal/); cmd/ and examples/ binaries are excluded.
func isInternal(pkgPath string) bool {
	return strings.Contains(pkgPath, "/internal/")
}
