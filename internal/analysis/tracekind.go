package analysis

import (
	"fmt"
	"go/token"
	"strings"

	"repro/internal/obs"
)

// TraceKind cross-checks every obs.Event construction site against the
// trace schema (internal/obs/schema.go): the Kind must be a known
// constant, and each payload field set must be one the schema allows
// for that kind. Event literals are collected by the dataflow layer
// (dataflow.go), which also resolves the kind of post-literal field
// writes (`ev := obs.Event{Kind: ...}; ev.Str = ...`) by tracking kinds
// through local assignments. An unknown kind written as a raw string
// literal gets a suggested fix to the nearest known kind, so `ugolint
// -json` output can be applied mechanically.
//
// internal/obs itself is exempt: the decoder and tracer legitimately
// build events field-by-field from wire data.
var TraceKind = &Analyzer{
	Name: "tracekind",
	Doc:  "obs.Event construction drifting from the trace schema (unknown kind or disallowed field)",
	Applies: func(pkgPath string) bool {
		return !strings.HasSuffix(pkgPath+"/", "internal/obs/")
	},
	Run: runTraceKind,
}

// stampedFields are set by the Tracer pipeline, never by emit sites:
// Seq/Tick/Wall by the tracer itself, Clock/Orig by the causal
// decorator. The schema omits them from every kind; naming the stamping
// stage in the finding beats a generic "field not allowed".
var stampedFields = map[string]string{
	"Seq":   "the tracer",
	"Tick":  "the tracer",
	"Wall":  "the tracer",
	"Clock": "the causal decorator",
	"Orig":  "the causal decorator",
}

func runTraceKind(p *Pass) {
	for _, n := range p.Mod.Funcs() {
		if n.Pkg.PkgPath != p.PkgPath {
			continue
		}
		for _, s := range n.evLits {
			if s.positional {
				p.Reportf(s.pos, "positional obs.Event literal defeats schema checking; use keyed fields")
			}
			if !s.hasKind {
				// A bare obs.Event{} zero value is fine; a literal that
				// sets payload fields without saying what it is, is not.
				if len(s.fields) > 0 {
					p.Reportf(s.pos, "obs.Event constructed without a Kind; the trace schema is keyed by kind")
				}
				continue
			}
			if s.kind == "" {
				p.Reportf(s.kindPos, "obs.Event Kind is not a compile-time constant; tracekind cannot check this event against the schema")
				continue
			}
			if !obs.KnownKind(s.kind) {
				reportUnknownKind(p, s)
				continue
			}
			for _, f := range s.fields {
				checkKindField(p, f.pos, s.kind, f.name)
			}
		}
		for _, a := range n.evAssigns {
			if a.field == "Kind" || a.kind == "?" {
				continue
			}
			if a.kind == "" {
				// Kind never resolved for this variable (e.g. built by a
				// helper); stay silent rather than guess.
				continue
			}
			if !obs.KnownKind(a.kind) {
				// The literal site already reported the unknown kind.
				continue
			}
			checkKindField(p, a.pos, a.kind, a.field)
		}
	}
}

// checkKindField reports a field the schema does not allow for kind.
func checkKindField(p *Pass, pos token.Pos, kind, field string) {
	if obs.KindAllowsField(kind, field) {
		return
	}
	if who, stamped := stampedFields[field]; stamped {
		p.Reportf(pos, "event field %s is stamped by %s; emit sites must not set it", field, who)
		return
	}
	allowed := strings.Join(obs.KindFields(kind), ", ")
	if allowed == "" {
		allowed = "none"
	}
	p.Reportf(pos, "event kind %q does not carry field %s (schema allows: %s)", kind, field, allowed)
}

// reportUnknownKind reports an unknown event kind, with a suggested fix
// to the nearest known kind when the kind is a raw string literal and a
// plausibly-close neighbour exists.
func reportUnknownKind(p *Pass, s eventLitSite) {
	best, dist := nearestKind(s.kind)
	if s.kindLit != nil && best != "" && dist <= 2 && dist < len(s.kind) {
		p.ReportFixf(s.kindPos, s.kindLit.Pos(), s.kindLit.End(), fmt.Sprintf("%q", best),
			"unknown event kind %q; did you mean %q?", s.kind, best)
		return
	}
	if best != "" && dist <= 2 {
		p.Reportf(s.kindPos, "unknown event kind %q; did you mean %q?", s.kind, best)
		return
	}
	p.Reportf(s.kindPos, "unknown event kind %q; known kinds are listed in internal/obs/schema.go", s.kind)
}

// nearestKind returns the known kind with the smallest edit distance to
// kind, breaking ties lexicographically (KnownKinds is sorted).
func nearestKind(kind string) (string, int) {
	best, bestDist := "", -1
	for _, k := range obs.KnownKinds() {
		d := editDistance(kind, k)
		if bestDist < 0 || d < bestDist {
			best, bestDist = k, d
		}
	}
	return best, bestDist
}

// editDistance is the Levenshtein distance between a and b.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, min(cur[j-1]+1, prev[j-1]+cost))
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}
