package steiner

// Vertex-insertion local search — one of SCIP-Jack's local primal
// heuristics: starting from a Steiner tree, repeatedly test whether
// adding a non-tree vertex (and re-computing the minimum spanning tree
// of the enlarged induced subgraph, then pruning) yields a cheaper tree.
// The move set is the classical "Steiner vertex insertion" neighborhood.

// VertexInsertionImprove improves a tree by Steiner-vertex insertion
// until no single insertion helps or maxRounds passes complete. Returns
// the improved edge set and its cost.
func VertexInsertionImprove(s *SPG, edges []int, maxRounds int) ([]int, float64) {
	if maxRounds <= 0 {
		maxRounds = 3
	}
	best := append([]int(nil), edges...)
	bestCost := s.TreeCost(best)
	n := s.G.NumVertices()
	for round := 0; round < maxRounds; round++ {
		improved := false
		inTree := make([]bool, n)
		for _, e := range best {
			inTree[s.G.Edges[e].U] = true
			inTree[s.G.Edges[e].V] = true
		}
		for v := 0; v < n; v++ {
			if inTree[v] || !s.G.VertexAlive(v) || s.Terminal[v] {
				continue
			}
			// Candidate: tree vertices plus v; MST + prune.
			mask := append([]bool(nil), inTree...)
			mask[v] = true
			mstEdges, _, ok := s.G.MSTPrim(mask)
			if !ok {
				continue
			}
			chosen := map[int]bool{}
			for _, e := range mstEdges {
				chosen[e] = true
			}
			cand := pruneTree(s, chosen)
			if c := s.TreeCost(cand); c < bestCost-1e-9 {
				best = cand
				bestCost = c
				improved = true
				inTree = make([]bool, n)
				for _, e := range best {
					inTree[s.G.Edges[e].U] = true
					inTree[s.G.Edges[e].V] = true
				}
			}
		}
		if !improved {
			break
		}
	}
	return best, bestCost
}
