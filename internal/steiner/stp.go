package steiner

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadSTP parses a SteinLib .stp file (the format of the PUC benchmark
// set). Only the sections relevant to the SPG are interpreted: graph
// (nodes/edges) and terminals. Vertex numbering is 1-based in the file
// and 0-based in the SPG.
func ReadSTP(r io.Reader) (*SPG, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var spg *SPG
	name := ""
	section := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		key := strings.ToLower(fields[0])
		switch {
		case key == "section":
			section = strings.ToLower(fields[1])
		case key == "end":
			section = ""
		case section == "comment" && key == "name":
			name = strings.Trim(strings.Join(fields[1:], " "), "\"")
		case section == "graph" && key == "nodes":
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("stp: bad nodes line %q", line)
			}
			spg = NewSPG(n)
		case section == "graph" && (key == "e" || key == "a"):
			if spg == nil {
				return nil, fmt.Errorf("stp: edge before nodes")
			}
			if len(fields) < 4 {
				return nil, fmt.Errorf("stp: bad edge line %q", line)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			c, err3 := strconv.ParseFloat(fields[3], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("stp: bad edge line %q", line)
			}
			if u == v {
				continue
			}
			spg.G.AddEdge(u-1, v-1, c)
		case section == "terminals" && key == "t":
			if spg == nil {
				return nil, fmt.Errorf("stp: terminal before nodes")
			}
			t, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("stp: bad terminal line %q", line)
			}
			spg.Terminal[t-1] = true
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if spg == nil {
		return nil, fmt.Errorf("stp: no graph section")
	}
	spg.Name = name
	return spg, nil
}

// WriteSTP emits the instance in SteinLib format.
func WriteSTP(w io.Writer, s *SPG) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "33D32945 STP File, STP Format Version 1.0")
	fmt.Fprintln(bw, "SECTION Comment")
	fmt.Fprintf(bw, "Name \"%s\"\n", s.Name)
	fmt.Fprintln(bw, "END")
	fmt.Fprintln(bw, "SECTION Graph")
	fmt.Fprintf(bw, "Nodes %d\n", s.G.NumVertices())
	fmt.Fprintf(bw, "Edges %d\n", s.G.AliveEdges())
	for e := range s.G.Edges {
		if !s.G.EdgeAlive(e) {
			continue
		}
		ed := s.G.Edges[e]
		fmt.Fprintf(bw, "E %d %d %g\n", ed.U+1, ed.V+1, ed.Cost)
	}
	fmt.Fprintln(bw, "END")
	fmt.Fprintln(bw, "SECTION Terminals")
	fmt.Fprintf(bw, "Terminals %d\n", s.NumTerminals())
	for v, t := range s.Terminal {
		if t && s.G.VertexAlive(v) {
			fmt.Fprintf(bw, "T %d\n", v+1)
		}
	}
	fmt.Fprintln(bw, "END")
	fmt.Fprintln(bw, "EOF")
	return bw.Flush()
}
