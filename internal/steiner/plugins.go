package steiner

import (
	"math"

	"repro/internal/lp"
	"repro/internal/maxflow"
	"repro/internal/scip"
)

// This file contains the SCIP-Jack plugins: the Steiner-cut constraint
// handler and separator, the reduced-cost/reduction propagator, the
// shortest-path primal heuristic and the vertex brancher.

// supportReach returns the vertices reachable from root using arcs with
// x > 0.5 in the build-time graph, restricted to vertices alive in the
// local graph.
func supportReach(in *Instance, local *SPG, x []float64) []bool {
	n := local.G.NumVertices()
	seen := make([]bool, n)
	if in.Root < 0 || !local.G.VertexAlive(in.Root) {
		return seen
	}
	seen[in.Root] = true
	stack := []int{in.Root}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		local.G.Adj(v, func(e, w int) bool {
			a := 2 * e
			if local.ArcTail(a) != v {
				a = 2*e + 1
			}
			j := in.ArcVar[a]
			if j >= 0 && x[j] > 0.5 && !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
			return true
		})
	}
	return seen
}

// cutRow builds the Steiner-cut row y(δ−(W)) ≥ 1 for the component mask
// W (true = inside W) over the build-time arcs, so the row is valid
// independent of local deletions.
func cutRow(in *Instance, inW []bool) []lp.Nonzero {
	var coefs []lp.Nonzero
	for j, a := range in.VarArc {
		if inW[in.SPG.ArcHead(a)] && !inW[in.SPG.ArcTail(a)] {
			coefs = append(coefs, lp.Nonzero{Col: j, Val: 1})
		}
	}
	return coefs
}

// Conshdlr enforces Steiner connectivity on integral candidates.
type Conshdlr struct{}

// Name implements scip.Conshdlr.
func (*Conshdlr) Name() string { return "stp" }

// Check implements scip.Conshdlr: the support of x must connect the root
// to every (node-local) terminal.
//
//ugo:coldpath connectivity check runs once per candidate incumbent, not per node
func (*Conshdlr) Check(ctx *scip.Ctx, x []float64) bool {
	inst := ctx.Data.(*Instance)
	reach := supportReach(inst, inst.SPG, x)
	for _, t := range inst.SPG.Terminals() {
		if !reach[t] {
			return false
		}
	}
	return true
}

// Enforce implements scip.Conshdlr: add a violated Steiner cut for an
// unreached terminal. Cuts for original terminals are globally valid;
// cuts for branching-added terminals are local to the subtree.
//
//ugo:coldpath cut synthesis walks the support graph once per enforcement round; its working sets are instance-sized and audited separately from the node loop
func (*Conshdlr) Enforce(ctx *scip.Ctx, x []float64) scip.Result {
	inst := ctx.Data.(*Instance)
	local := inst.SPG
	reach := supportReach(inst, local, x)
	for _, t := range local.Terminals() {
		if reach[t] {
			continue
		}
		// W = everything not reachable from the root in the support.
		inW := make([]bool, len(reach))
		for v := range reach {
			inW[v] = !reach[v]
		}
		coefs := cutRow(inst, inW)
		if len(coefs) == 0 {
			ctx.MarkInfeasible()
			return scip.Cutoff
		}
		var added bool
		if inst.OrigTerminal[t] {
			added = ctx.AddCut(lp.GE, 1, coefs)
		} else {
			added = ctx.AddLocalCut(lp.GE, 1, coefs)
		}
		if added {
			return scip.Separated
		}
	}
	return scip.DidNothing
}

// Separator finds violated directed Steiner cuts on fractional LP
// solutions via max-flow (the branch-and-cut engine of SCIP-Jack) and
// performs LP reduced-cost fixing as a side effect.
type Separator struct {
	MaxCutsPerRound int
}

// Name implements scip.Separator.
func (*Separator) Name() string { return "stpcuts" }

// Separate implements scip.Separator.
//
//ugo:coldpath min-cut separation is budget-capped by the solver and dominated by the max-flow solve, not by its allocations
func (sep *Separator) Separate(ctx *scip.Ctx) scip.Result {
	if ctx.LPSol == nil {
		return scip.DidNotRun
	}
	inst := ctx.Data.(*Instance)
	local := inst.SPG
	x := ctx.LPSol.X
	sep.redCostFixing(ctx, inst)
	maxCuts := sep.MaxCutsPerRound
	if maxCuts <= 0 {
		maxCuts = 6
	}
	if left := ctx.CutBudgetLeft(); left < maxCuts {
		maxCuts = left
	}
	added := 0
	root := inst.Root
	if root < 0 || !local.G.VertexAlive(root) {
		return scip.DidNotRun
	}
	n := local.G.NumVertices()
	for _, t := range local.Terminals() {
		if t == root || added >= maxCuts {
			continue
		}
		// Max-flow from root to t with capacities x on local alive arcs.
		nw := maxflow.New(n)
		for e := 0; e < local.G.NumEdges(); e++ {
			if !local.G.EdgeAlive(e) {
				continue
			}
			for o := 0; o < 2; o++ {
				a := 2*e + o
				j := inst.ArcVar[a]
				if j < 0 {
					continue
				}
				if x[j] > 1e-9 {
					nw.AddArc(local.ArcTail(a), local.ArcHead(a), x[j])
				}
			}
		}
		flow := nw.MaxFlow(root, t)
		if flow >= 1-1e-6 {
			continue
		}
		src := nw.MinCutSource(root)
		inW := make([]bool, n)
		for v := 0; v < n; v++ {
			inW[v] = !src[v]
		}
		coefs := cutRow(inst, inW)
		if len(coefs) == 0 {
			continue
		}
		// Skip if not actually violated (numerical safety).
		var lhs float64
		for _, nz := range coefs {
			lhs += x[nz.Col]
		}
		if lhs >= 1-1e-6 {
			continue
		}
		wasAdded := false
		if inst.OrigTerminal[t] {
			wasAdded = ctx.AddCut(lp.GE, 1, coefs)
		} else {
			wasAdded = ctx.AddLocalCut(lp.GE, 1, coefs)
		}
		if wasAdded {
			added++
		}
	}
	if added > 0 {
		return scip.Separated
	}
	return scip.DidNothing
}

// redCostFixing fixes arc variables using LP reduced costs against the
// incumbent (SCIP-Jack's reduced-cost domain propagation).
func (sep *Separator) redCostFixing(ctx *scip.Ctx, inst *Instance) {
	ub := ctx.UpperBound()
	if math.IsInf(ub, 1) || ctx.LPSol == nil {
		return
	}
	lpObj := ctx.LPSol.Obj
	slack := ub - lpObj
	if ctx.S.Prob.IntegralObj {
		slack = ub - 1 + 1e-6 - lpObj
	}
	for j := range inst.VarArc {
		d := ctx.LPSol.RedCosts[j]
		xj := ctx.LPSol.X[j]
		if xj < 1e-9 && d > slack+1e-9 {
			ctx.TightenUp(j, 0)
		} else if xj > 1-1e-9 && -d > slack+1e-9 {
			ctx.TightenLo(j, 1)
		}
	}
}

// Propagator syncs branching decisions and local reductions into
// variable bounds: arcs of deleted edges are fixed to zero, and the
// deletion-only reduction layer (including the restricted extended
// reductions) runs on the node-local graph — the in-tree effect the
// paper credits for solving bip52u.
type Propagator struct {
	ReductionBudget int // max edges/vertices examined per node (0 = all)
	MinDepth        int // only run full reductions at depth ≥ MinDepth
}

// Name implements scip.Propagator.
func (*Propagator) Name() string { return "stpprop" }

// Propagate implements scip.Propagator.
//
//ugo:coldpath reduction-based domain propagation clones the local graph by design; runs only until the per-node fixpoint
func (p *Propagator) Propagate(ctx *scip.Ctx) scip.Result {
	inst := ctx.Data.(*Instance)
	local := inst.SPG
	changed := false
	// Remove edges whose two arcs are both fixed to zero, making the
	// local graph consistent with the bound state.
	for e := 0; e < local.G.NumEdges(); e++ {
		if !local.G.EdgeAlive(e) {
			continue
		}
		j1, j2 := inst.ArcVar[2*e], inst.ArcVar[2*e+1]
		fixed0 := func(j int) bool { return j >= 0 && ctx.LocalUp(j) < 0.5 }
		if (j1 < 0 || fixed0(j1)) && (j2 < 0 || fixed0(j2)) {
			local.G.DeleteEdge(e)
		}
	}
	// Run the deletion-only reduction layer.
	if ctx.Node.Depth >= p.MinDepth {
		deleted := ReduceLocal(local, p.ReductionBudget)
		if len(deleted) > 0 {
			changed = true
		}
	}
	// Sync graph state back into bounds: dead edges and dead vertices fix
	// their arcs to zero.
	for e := 0; e < local.G.NumEdges(); e++ {
		alive := local.G.EdgeAlive(e)
		if alive {
			continue
		}
		for o := 0; o < 2; o++ {
			if j := inst.ArcVar[2*e+o]; j >= 0 && ctx.LocalUp(j) > 0.5 {
				ctx.TightenUp(j, 0)
				changed = true
			}
		}
	}
	// Infeasibility: some local terminal disconnected from the root.
	if root := inst.Root; root >= 0 {
		if !local.G.VertexAlive(root) {
			ctx.MarkInfeasible()
			return scip.Cutoff
		}
		comp := local.G.ConnectedComponent(root)
		for _, t := range local.Terminals() {
			if !comp[t] {
				ctx.MarkInfeasible()
				return scip.Cutoff
			}
		}
	}
	if changed {
		return scip.Reduced
	}
	return scip.DidNothing
}

// Heuristic is the shortest-path (TM) construction with LP bias and
// MST-prune improvement.
type Heuristic struct{}

// Name implements scip.Heuristic.
func (*Heuristic) Name() string { return "stpheur" }

// Search implements scip.Heuristic.
//
//ugo:coldpath primal heuristic is frequency-gated by the solver; its shortest-path scratch is proportional to the instance, not the tree
func (h *Heuristic) Search(ctx *scip.Ctx) scip.Result {
	inst := ctx.Data.(*Instance)
	local := inst.SPG
	root := inst.Root
	if root < 0 || !local.G.VertexAlive(root) {
		return scip.DidNotRun
	}
	// LP-biased costs: edges carrying LP flow become cheaper.
	var costs []float64
	if ctx.LPSol != nil {
		costs = make([]float64, local.G.NumEdges())
		for e := range costs {
			costs[e] = local.G.Cost(e)
			var y float64
			for o := 0; o < 2; o++ {
				if j := inst.ArcVar[2*e+o]; j >= 0 {
					y += ctx.LPSol.X[j]
				}
			}
			if y > 1 {
				y = 1
			}
			costs[e] *= 1 - 0.75*y
		}
	}
	edges, _, ok := ShortestPathHeuristic(local, root, costs)
	if !ok {
		return scip.DidNothing
	}
	edges, _ = MSTPruneImprove(local, edges)
	edges, _ = VertexInsertionImprove(local, edges, 2)
	x := inst.OrientTree(edges)
	if ctx.SubmitSol(x) {
		return scip.FoundSol
	}
	return scip.DidNothing
}

// Brancher implements SCIP-Jack's vertex branching: the chosen
// non-terminal either becomes a terminal (must be spanned) or is deleted.
// Both children are described by solver-independent Decisions, which is
// what lets UG transfer them between ParaSolvers.
type Brancher struct{}

// Name implements scip.Brancher.
func (*Brancher) Name() string { return "stpvertex" }

// Branch implements scip.Brancher.
//
//ugo:coldpath runs once per branched node and must allocate the Child bound sets it hands to the tree
func (b *Brancher) Branch(ctx *scip.Ctx) ([]scip.Child, scip.Result) {
	if ctx.LPSol == nil {
		return nil, scip.DidNotRun
	}
	inst := ctx.Data.(*Instance)
	local := inst.SPG
	x := ctx.LPSol.X
	best, bestScore := -1, 1e-5
	for v := 0; v < local.G.NumVertices(); v++ {
		if !local.G.VertexAlive(v) || local.Terminal[v] {
			continue
		}
		var inflow float64
		local.G.Adj(v, func(e, w int) bool {
			a := 2 * e
			if local.ArcHead(a) != v {
				a = 2*e + 1
			}
			if j := inst.ArcVar[a]; j >= 0 {
				inflow += x[j]
			}
			return true
		})
		score := math.Min(inflow, 1-inflow)
		if score > bestScore {
			bestScore = score
			best = v
		}
	}
	if best < 0 {
		return nil, scip.DidNotRun // fall back to arc-variable branching
	}
	// Child A: vertex becomes a terminal. Child B: vertex deleted, all
	// its arc variables fixed to zero (explicit bounds so the fixings
	// travel with the UG subproblem encoding).
	var zeroBounds []scip.BoundChg
	local.G.Adj(best, func(e, w int) bool {
		for o := 0; o < 2; o++ {
			if j := inst.ArcVar[2*e+o]; j >= 0 {
				zeroBounds = append(zeroBounds, scip.BoundChg{Var: j, Lo: 0, Up: 0})
			}
		}
		return true
	})
	children := []scip.Child{
		{Decisions: []scip.Decision{{Kind: DecisionKind, V: best, Flag: true}}},
		{Decisions: []scip.Decision{{Kind: DecisionKind, V: best, Flag: false}}, Bounds: zeroBounds},
	}
	return children, scip.Branched
}

// NewPlugins assembles the full SCIP-Jack plugin set.
func NewPlugins() *scip.Plugins {
	return &scip.Plugins{
		Def:         &Def{},
		Propagators: []scip.Propagator{&Propagator{ReductionBudget: 400, MinDepth: 1}},
		Separators:  []scip.Separator{&Separator{}},
		Heuristics:  []scip.Heuristic{&Heuristic{}},
		Conshdlrs:   []scip.Conshdlr{&Conshdlr{}},
		Branchers:   []scip.Brancher{&Brancher{}},
	}
}
