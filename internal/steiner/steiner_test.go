package steiner

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/scip"
)

// randomSPG builds a random connected instance with integer costs.
func randomSPG(seed int64, n, extraEdges, nTerm int) *SPG {
	rng := rand.New(rand.NewSource(seed))
	s := NewSPG(n)
	for v := 1; v < n; v++ {
		s.G.AddEdge(rng.Intn(v), v, float64(1+rng.Intn(10)))
	}
	for k := 0; k < extraEdges; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			s.G.AddEdge(u, v, float64(1+rng.Intn(10)))
		}
	}
	perm := rng.Perm(n)
	for i := 0; i < nTerm; i++ {
		s.Terminal[perm[i]] = true
	}
	return s
}

func TestDWKnownInstances(t *testing.T) {
	// Path 0-1-2 with costs 2,3; terminals {0,2} → 5.
	s := NewSPG(3)
	s.G.AddEdge(0, 1, 2)
	s.G.AddEdge(1, 2, 3)
	s.Terminal[0] = true
	s.Terminal[2] = true
	if got := s.SolveDW(); got != 5 {
		t.Fatalf("DW = %v, want 5", got)
	}
	// Star: terminals on 3 leaves, center optional; leaf costs 1,2,3 → 6.
	s2 := NewSPG(4)
	s2.G.AddEdge(0, 1, 1)
	s2.G.AddEdge(0, 2, 2)
	s2.G.AddEdge(0, 3, 3)
	s2.Terminal[1] = true
	s2.Terminal[2] = true
	s2.Terminal[3] = true
	if got := s2.SolveDW(); got != 6 {
		t.Fatalf("DW star = %v, want 6", got)
	}
	// Steiner point beats direct connections: triangle terminals with
	// direct cost 4 each, center at distance 1.5 each.
	s3 := NewSPG(4)
	s3.G.AddEdge(0, 1, 4)
	s3.G.AddEdge(1, 2, 4)
	s3.G.AddEdge(0, 2, 4)
	s3.G.AddEdge(0, 3, 1.5)
	s3.G.AddEdge(1, 3, 1.5)
	s3.G.AddEdge(2, 3, 1.5)
	s3.Terminal[0] = true
	s3.Terminal[1] = true
	s3.Terminal[2] = true
	if got := s3.SolveDW(); math.Abs(got-4.5) > 1e-9 {
		t.Fatalf("DW steiner point = %v, want 4.5", got)
	}
}

func TestDWSingleTerminal(t *testing.T) {
	s := randomSPG(1, 6, 4, 1)
	if got := s.SolveDW(); got != 0 {
		t.Fatalf("single terminal DW = %v", got)
	}
}

func TestValidTree(t *testing.T) {
	s := NewSPG(3)
	e1 := s.G.AddEdge(0, 1, 1)
	e2 := s.G.AddEdge(1, 2, 1)
	e3 := s.G.AddEdge(0, 2, 1)
	s.Terminal[0] = true
	s.Terminal[2] = true
	if err := s.ValidTree([]int{e1, e2}); err != nil {
		t.Fatalf("valid tree rejected: %v", err)
	}
	if err := s.ValidTree([]int{e1}); err == nil {
		t.Fatal("disconnected terminals accepted")
	}
	if err := s.ValidTree([]int{e1, e2, e3}); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestSTPRoundTrip(t *testing.T) {
	s := randomSPG(3, 10, 8, 4)
	s.Name = "roundtrip"
	var buf strings.Builder
	if err := WriteSTP(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSTP(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "roundtrip" {
		t.Fatalf("name = %q", got.Name)
	}
	if got.G.NumVertices() != s.G.NumVertices() || got.G.AliveEdges() != s.G.AliveEdges() {
		t.Fatalf("size mismatch: %d/%d vs %d/%d",
			got.G.NumVertices(), got.G.AliveEdges(), s.G.NumVertices(), s.G.AliveEdges())
	}
	if got.NumTerminals() != s.NumTerminals() {
		t.Fatalf("terminal mismatch")
	}
	if math.Abs(got.SolveDW()-s.SolveDW()) > 1e-9 {
		t.Fatal("optimum changed through file round trip")
	}
}

func TestReadSTPErrors(t *testing.T) {
	if _, err := ReadSTP(strings.NewReader("SECTION Graph\nE 1 2 3\nEND\n")); err == nil {
		t.Fatal("edge before nodes accepted")
	}
	if _, err := ReadSTP(strings.NewReader("")); err == nil {
		t.Fatal("empty file accepted")
	}
}

// Property: presolve reductions preserve the optimal value (DW on the
// original equals DW on the reduced instance plus the offset).
func TestReducePreservesOptimum(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		n := 6 + int(seed%8)
		s := randomSPG(seed, n, n, 2+int(seed%4))
		want := s.SolveDW()
		r := s.Clone()
		tr, _ := Reduce(r, 0)
		got := r.SolveDW() + tr.Offset
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("seed %d: reduced %v + offset != original %v", seed, got, want)
		}
	}
}

// Property: the deletion-only in-tree reduction layer preserves optima.
func TestReduceLocalPreservesOptimum(t *testing.T) {
	for seed := int64(100); seed < 130; seed++ {
		s := randomSPG(seed, 10, 12, 3)
		want := s.SolveDW()
		r := s.Clone()
		ReduceLocal(r, 0)
		if math.Abs(r.SolveDW()-want) > 1e-9 {
			t.Fatalf("seed %d: local reduction changed optimum", seed)
		}
	}
}

func TestReduceContractsMandatoryEdges(t *testing.T) {
	// Degree-1 terminal chain: t0 - v - t1. v has degree 2.
	s := NewSPG(3)
	s.G.AddEdge(0, 1, 2)
	s.G.AddEdge(1, 2, 3)
	s.Terminal[0] = true
	s.Terminal[2] = true
	tr, _ := Reduce(s, 0)
	if math.Abs(tr.Offset-5) > 1e-9 {
		t.Fatalf("offset = %v, want 5 (everything contracted)", tr.Offset)
	}
	if s.NumTerminals() > 1 {
		t.Fatalf("expected full contraction, %d terminals left", s.NumTerminals())
	}
}

func TestTraceExpandReconstructs(t *testing.T) {
	for seed := int64(200); seed < 230; seed++ {
		s := randomSPG(seed, 9, 9, 3)
		orig := s.Clone()
		want := s.SolveDW()
		tr, _ := Reduce(s, 0)
		// Solve the reduced instance exactly, recover its tree via the
		// solver below or just check the cost identity through DW; here we
		// expand an optimal reduced tree found by brute force over edges.
		edges := bruteTree(s)
		full := tr.Expand(edges)
		if err := orig.ValidTree(full); err != nil {
			t.Fatalf("seed %d: expanded solution invalid: %v", seed, err)
		}
		if math.Abs(orig.TreeCost(full)-want) > 1e-9 {
			t.Fatalf("seed %d: expanded cost %v want %v", seed, orig.TreeCost(full), want)
		}
	}
}

// bruteTree finds a minimum Steiner tree edge set by enumerating vertex
// subsets (exponential; only for tiny instances in tests).
func bruteTree(s *SPG) []int {
	n := s.G.NumVertices()
	var alive []int
	for v := 0; v < n; v++ {
		if s.G.VertexAlive(v) && !s.Terminal[v] {
			alive = append(alive, v)
		}
	}
	terms := s.Terminals()
	bestCost := math.Inf(1)
	var best []int
	for mask := 0; mask < 1<<len(alive); mask++ {
		sel := make([]bool, n)
		for _, t := range terms {
			sel[t] = true
		}
		for i, v := range alive {
			if mask&(1<<i) != 0 {
				sel[v] = true
			}
		}
		edges, cost, ok := s.G.MSTPrim(sel)
		if ok && cost < bestCost {
			bestCost = cost
			best = append([]int(nil), edges...)
		}
	}
	return best
}

// Dual ascent produces a valid lower bound and sane reduced costs.
func TestDualAscentLowerBound(t *testing.T) {
	for seed := int64(300); seed < 340; seed++ {
		s := randomSPG(seed, 10, 10, 3)
		opt := s.SolveDW()
		da := DualAscent(s, s.Root())
		if da.LowerBound > opt+1e-9 {
			t.Fatalf("seed %d: dual ascent LB %v exceeds OPT %v", seed, da.LowerBound, opt)
		}
		if da.LowerBound < 0 {
			t.Fatalf("negative lower bound")
		}
		for _, r := range da.Reduced {
			if r < -1e-9 {
				t.Fatalf("negative reduced cost")
			}
		}
	}
}

func TestDualAscentInfeasible(t *testing.T) {
	s := NewSPG(4)
	s.G.AddEdge(0, 1, 1)
	s.G.AddEdge(2, 3, 1)
	s.Terminal[0] = true
	s.Terminal[2] = true
	da := DualAscent(s, 0)
	if !math.IsInf(da.LowerBound, 1) {
		t.Fatalf("disconnected terminals should give +Inf LB, got %v", da.LowerBound)
	}
}

// The shortest-path heuristic returns valid trees with cost ≥ OPT.
func TestShortestPathHeuristic(t *testing.T) {
	for seed := int64(400); seed < 440; seed++ {
		s := randomSPG(seed, 12, 14, 4)
		opt := s.SolveDW()
		edges, cost, ok := ShortestPathHeuristic(s, s.Root(), nil)
		if !ok {
			t.Fatalf("seed %d: heuristic failed on connected graph", seed)
		}
		if err := s.ValidTree(edges); err != nil {
			t.Fatalf("seed %d: heuristic tree invalid: %v", seed, err)
		}
		if cost < opt-1e-9 {
			t.Fatalf("seed %d: heuristic cost %v below OPT %v", seed, cost, opt)
		}
		improved, c2 := MSTPruneImprove(s, edges)
		if err := s.ValidTree(improved); err != nil {
			t.Fatalf("seed %d: improved tree invalid: %v", seed, err)
		}
		if c2 > cost+1e-9 {
			t.Fatalf("seed %d: MST-prune worsened %v → %v", seed, cost, c2)
		}
	}
}

// End-to-end: the branch-and-cut solver must match Dreyfus–Wagner.
func TestSolverMatchesDW(t *testing.T) {
	for seed := int64(500); seed < 525; seed++ {
		s := randomSPG(seed, 8+int(seed%6), 10, 2+int(seed%5))
		want := s.SolveDW()
		got, status := solveSPG(t, s.Clone())
		if status != scip.StatusOptimal {
			t.Fatalf("seed %d: status %v", seed, status)
		}
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("seed %d: solver %v, DW %v", seed, got, want)
		}
	}
}

// solveSPG runs the full SCIP-Jack pipeline sequentially.
func solveSPG(t *testing.T, s *SPG) (float64, scip.Status) {
	t.Helper()
	def := &Def{}
	data, offset := def.Presolve(s, scip.Infinity)
	prob := def.BuildModel(data.(*SPG))
	plug := NewPlugins()
	plug.Def = def
	set := scip.DefaultSettings()
	set.HeurFreq = 2
	solver := scip.NewSolver(prob, set, plug)
	status := solver.Solve()
	if solver.Stats.DeadEnds != 0 {
		t.Fatalf("dead ends: %d", solver.Stats.DeadEnds)
	}
	if status == scip.StatusOptimal {
		return solver.Incumbent().Obj + offset, status
	}
	if prob.Vars == nil && s.NumTerminals() <= 1 {
		return offset, scip.StatusOptimal
	}
	return math.Inf(1), status
}

// Fully-reduced instances (presolve solves them) must still work.
func TestSolverOnTrivialInstances(t *testing.T) {
	s := NewSPG(2)
	s.G.AddEdge(0, 1, 7)
	s.Terminal[0] = true
	s.Terminal[1] = true
	got, st := solveSPG(t, s)
	if st != scip.StatusOptimal || math.Abs(got-7) > 1e-9 {
		t.Fatalf("trivial instance: %v %v", got, st)
	}
}

func TestSolverUnitVsPerturbedCosts(t *testing.T) {
	// Unit-cost instances exercise degenerate LPs; perturbed ones break
	// ties. Both must solve correctly.
	for _, perturbed := range []bool{false, true} {
		rng := rand.New(rand.NewSource(99))
		s := NewSPG(9)
		for v := 1; v < 9; v++ {
			s.G.AddEdge(rng.Intn(v), v, 1)
		}
		for k := 0; k < 10; k++ {
			u, v := rng.Intn(9), rng.Intn(9)
			if u != v {
				c := 1.0
				if perturbed {
					c = float64(1 + rng.Intn(5))
				}
				s.G.AddEdge(u, v, c)
			}
		}
		s.Terminal[0], s.Terminal[4], s.Terminal[8] = true, true, true
		want := s.SolveDW()
		got, st := solveSPG(t, s.Clone())
		if st != scip.StatusOptimal || math.Abs(got-want) > 1e-6 {
			t.Fatalf("perturbed=%v: got %v want %v (%v)", perturbed, got, want, st)
		}
	}
}

func TestOrientTreeProducesFeasibleModelSolution(t *testing.T) {
	s := randomSPG(7, 10, 10, 3)
	def := &Def{NoReduce: true}
	data, _ := def.Presolve(s, scip.Infinity)
	prob := def.BuildModel(data.(*SPG))
	inst := prob.Data.(*Instance)
	edges, _, ok := ShortestPathHeuristic(s, inst.Root, nil)
	if !ok {
		t.Fatal("heuristic failed")
	}
	x := inst.OrientTree(edges)
	// A solver verifies it as a global solution.
	solver := scip.NewSolver(prob, scip.DefaultSettings(), NewPluginsWithDef(def))
	if !solver.InjectSolution(&scip.Sol{X: x}) {
		t.Fatal("oriented heuristic tree rejected by model verification")
	}
}

// NewPluginsWithDef is a test helper mirroring NewPlugins with a shared Def.
func NewPluginsWithDef(def *Def) *scip.Plugins {
	p := NewPlugins()
	p.Def = def
	return p
}

func TestDecisionApplication(t *testing.T) {
	s := randomSPG(11, 8, 8, 2)
	def := &Def{NoReduce: true}
	data, _ := def.Presolve(s, scip.Infinity)
	prob := def.BuildModel(data.(*SPG))
	inst := prob.Data.(*Instance)
	clone := def.CloneData(inst).(*Instance)
	// Find a non-terminal to branch on.
	v := -1
	for i := 0; i < clone.SPG.G.NumVertices(); i++ {
		if clone.SPG.G.VertexAlive(i) && !clone.SPG.Terminal[i] {
			v = i
			break
		}
	}
	if v < 0 {
		t.Skip("no non-terminal")
	}
	def.ApplyDecision(clone, scip.Decision{Kind: DecisionKind, V: v, Flag: true})
	if !clone.SPG.Terminal[v] {
		t.Fatal("make-terminal decision not applied")
	}
	if inst.SPG.Terminal[v] {
		t.Fatal("decision leaked into shared instance")
	}
	clone2 := def.CloneData(inst).(*Instance)
	def.ApplyDecision(clone2, scip.Decision{Kind: DecisionKind, V: v, Flag: false})
	if clone2.SPG.G.VertexAlive(v) {
		t.Fatal("delete decision not applied")
	}
	if !inst.SPG.G.VertexAlive(v) {
		t.Fatal("delete leaked into shared instance")
	}
}
