package steiner

import (
	"math"
	"testing"
)

func TestVertexInsertionImprovesStar(t *testing.T) {
	// Terminals pairwise connected at cost 4; a Steiner point reaches each
	// for 1.5. The direct tree costs 8, insertion finds 4.5.
	s := NewSPG(4)
	e01 := s.G.AddEdge(0, 1, 4)
	e12 := s.G.AddEdge(1, 2, 4)
	s.G.AddEdge(0, 2, 4)
	s.G.AddEdge(0, 3, 1.5)
	s.G.AddEdge(1, 3, 1.5)
	s.G.AddEdge(2, 3, 1.5)
	s.Terminal[0], s.Terminal[1], s.Terminal[2] = true, true, true
	start := []int{e01, e12} // cost 8
	improved, cost := VertexInsertionImprove(s, start, 0)
	if math.Abs(cost-4.5) > 1e-9 {
		t.Fatalf("cost = %v, want 4.5", cost)
	}
	if err := s.ValidTree(improved); err != nil {
		t.Fatalf("improved tree invalid: %v", err)
	}
}

// Property: on random instances the local search never worsens the tree,
// always returns a valid tree, and never beats the exact optimum.
func TestVertexInsertionSoundness(t *testing.T) {
	for seed := int64(1200); seed < 1240; seed++ {
		s := randomSPG(seed, 12, 14, 4)
		opt := s.SolveDW()
		edges, cost, ok := ShortestPathHeuristic(s, s.Root(), nil)
		if !ok {
			continue
		}
		improved, c2 := VertexInsertionImprove(s, edges, 0)
		if c2 > cost+1e-9 {
			t.Fatalf("seed %d: local search worsened %v → %v", seed, cost, c2)
		}
		if c2 < opt-1e-9 {
			t.Fatalf("seed %d: cost %v below optimum %v", seed, c2, opt)
		}
		if err := s.ValidTree(improved); err != nil {
			t.Fatalf("seed %d: invalid tree: %v", seed, err)
		}
	}
}
