package steiner

import (
	"container/heap"
	"math"
)

// Trace records presolve operations so that a solution of the reduced
// instance can be mapped back to the original graph (SCIP-Jack's
// retransformation step).
type Trace struct {
	// Fixed are original-graph edges forced into every optimal solution
	// (degree-1 terminal contractions); their cost is in Offset.
	Fixed []int
	// Parent maps an edge created during reduction to the one or two
	// edges it replaces ([e, -1] for a moved edge, [e1, e2] for a path
	// contraction through a degree-2 vertex).
	Parent map[int][2]int
	// Offset is the total cost moved into fixed edges.
	Offset float64
}

// Expand maps edge indices of the reduced graph back to original edge
// indices, recursively unfolding reduction-created edges and appending
// the fixed edges.
func (t *Trace) Expand(edges []int) []int {
	var out []int
	seen := map[int]bool{}
	var rec func(e int)
	rec = func(e int) {
		if p, ok := t.Parent[e]; ok {
			rec(p[0])
			if p[1] >= 0 {
				rec(p[1])
			}
			return
		}
		if !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}
	for _, e := range edges {
		rec(e)
	}
	for _, e := range t.Fixed {
		if !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}
	return out
}

// ReduceStats reports what a reduction pass achieved.
type ReduceStats struct {
	EdgesDeleted    int
	VerticesDeleted int
	Contractions    int
	Rounds          int
}

// Reduce runs the presolve reduction loop on s in place: degree tests
// (with contractions), the long-edge/alternative-path test, and the
// restricted extended-reduction vertex test. Returns the trace needed to
// reconstruct original solutions plus statistics.
func Reduce(s *SPG, maxRounds int) (*Trace, *ReduceStats) {
	tr := &Trace{Parent: map[int][2]int{}}
	st := &ReduceStats{}
	if maxRounds <= 0 {
		maxRounds = 16
	}
	for round := 0; round < maxRounds; round++ {
		changed := false
		if degreeTests(s, tr, st) {
			changed = true
		}
		if longEdgeTest(s, st, 0) {
			changed = true
		}
		if extendedVertexTest(s, st, 0) {
			changed = true
		}
		st.Rounds = round + 1
		if !changed {
			break
		}
	}
	return tr, st
}

// ReduceLocal runs the deletion-only reduction tests used deep inside the
// branch-and-bound tree (the in-tree layer of the paper's extended
// reductions): no contractions, no new edges, so variable indices stay
// stable. Returns the indices of deleted edges.
func ReduceLocal(s *SPG, budget int) []int {
	before := aliveEdgeSet(s)
	for round := 0; round < 4; round++ {
		changed := false
		if deleteOnlyDegreeTests(s) {
			changed = true
		}
		if longEdgeTest(s, &ReduceStats{}, budget) {
			changed = true
		}
		if extendedVertexTest(s, &ReduceStats{}, budget) {
			changed = true
		}
		if !changed {
			break
		}
	}
	var deleted []int
	for e := range before {
		if !s.G.EdgeAlive(e) {
			deleted = append(deleted, e)
		}
	}
	return deleted
}

func aliveEdgeSet(s *SPG) map[int]bool {
	m := map[int]bool{}
	for e := range s.G.Edges {
		if s.G.EdgeAlive(e) {
			m[e] = true
		}
	}
	return m
}

// deleteOnlyDegreeTests removes isolated and degree-1 non-terminals.
func deleteOnlyDegreeTests(s *SPG) bool {
	changed := false
	again := true
	for again {
		again = false
		for v := 0; v < s.G.NumVertices(); v++ {
			if !s.G.VertexAlive(v) || s.Terminal[v] {
				continue
			}
			if s.G.Degree(v) <= 1 {
				s.G.DeleteVertex(v)
				changed = true
				again = true
			}
		}
	}
	return changed
}

// degreeTests runs the contraction-based degree tests (presolve only).
func degreeTests(s *SPG, tr *Trace, st *ReduceStats) bool {
	changed := false
	again := true
	for again {
		again = false
		for v := 0; v < s.G.NumVertices(); v++ {
			if !s.G.VertexAlive(v) {
				continue
			}
			deg := s.G.Degree(v)
			switch {
			case !s.Terminal[v] && deg == 0:
				s.G.DeleteVertex(v)
				st.VerticesDeleted++
				changed, again = true, true
			case !s.Terminal[v] && deg == 1:
				s.G.DeleteVertex(v)
				st.VerticesDeleted++
				changed, again = true, true
			case !s.Terminal[v] && deg == 2:
				// Path contraction a–v–b → edge (a,b).
				var es [2]int
				var ws [2]int
				i := 0
				s.G.Adj(v, func(e, w int) bool {
					es[i], ws[i] = e, w
					i++
					return true
				})
				a, b := ws[0], ws[1]
				s.G.DeleteVertex(v)
				st.VerticesDeleted++
				if a != b {
					ne := s.G.AddEdge(a, b, origCost(s, es[0])+origCost(s, es[1]))
					tr.Parent[ne] = [2]int{es[0], es[1]}
				}
				changed, again = true, true
			case s.Terminal[v] && deg == 1 && s.NumTerminals() > 1:
				// Mandatory edge: contract the terminal into its neighbor.
				var fe, w int
				s.G.Adj(v, func(e, x int) bool { fe, w = e, x; return false })
				tr.Offset += origCost(s, fe)
				tr.Fixed = append(tr.Fixed, originalOf(tr, fe)...)
				s.G.DeleteVertex(v)
				s.Terminal[w] = true
				st.Contractions++
				changed, again = true, true
			}
		}
	}
	return changed
}

// origCost returns the cost of edge e (helper for readability).
func origCost(s *SPG, e int) float64 { return s.G.Cost(e) }

// originalOf expands one (possibly reduction-created) edge into the
// original edges it represents.
func originalOf(tr *Trace, e int) []int {
	if p, ok := tr.Parent[e]; ok {
		out := originalOf(tr, p[0])
		if p[1] >= 0 {
			out = append(out, originalOf(tr, p[1])...)
		}
		return out
	}
	return []int{e}
}

// longEdgeTest deletes edge (u,v) when an alternative u–v path of length
// ≤ c(u,v) exists (a restricted special-distance test). budget > 0 caps
// the number of edges examined (for the in-tree layer).
func longEdgeTest(s *SPG, st *ReduceStats, budget int) bool {
	changed := false
	examined := 0
	for e := 0; e < s.G.NumEdges(); e++ {
		if !s.G.EdgeAlive(e) {
			continue
		}
		if budget > 0 && examined >= budget {
			break
		}
		examined++
		ed := s.G.Edges[e]
		if altDistAtMost(s, ed.U, ed.V, e, ed.Cost) {
			s.G.DeleteEdge(e)
			st.EdgesDeleted++
			changed = true
		}
	}
	return changed
}

// altDistAtMost runs a cost-bounded Dijkstra from u avoiding edge skip
// and reports whether v is reachable within limit.
func altDistAtMost(s *SPG, u, v, skip int, limit float64) bool {
	dist := make(map[int]float64, 16)
	pq := &bndHeap{}
	heap.Push(pq, bndItem{u, 0})
	dist[u] = 0
	for pq.Len() > 0 {
		it := heap.Pop(pq).(bndItem)
		if it.d > dist[it.v]+1e-15 {
			continue
		}
		if it.v == v {
			return true
		}
		s.G.Adj(it.v, func(e, w int) bool {
			if e == skip {
				return true
			}
			nd := it.d + s.G.Cost(e)
			if nd > limit+1e-12 {
				return true
			}
			if old, ok := dist[w]; !ok || nd < old-1e-15 {
				dist[w] = nd
				heap.Push(pq, bndItem{w, nd})
			}
			return true
		})
	}
	return false
}

// bndItem is a priority-queue entry for the bounded Dijkstra searches.
type bndItem struct {
	v int
	d float64
}

type bndHeap []bndItem

func (h bndHeap) Len() int            { return len(h) }
func (h bndHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h bndHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *bndHeap) Push(x interface{}) { *h = append(*h, x.(bndItem)) }
func (h *bndHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// extendedVertexTest is the restricted extended-reduction technique: a
// non-terminal v can be deleted when every tree that could pass through v
// has a cheaper replacement avoiding v. This is proven by enumerating the
// neighbor subsets S (the ways a tree can touch v) and checking that the
// minimum spanning tree over the v-free shortest-path distances of S
// never exceeds the star through v — examining a sufficient set of
// supergraphs of v exactly as the paper describes, albeit for small
// degrees only (≤ 5).
func extendedVertexTest(s *SPG, st *ReduceStats, budget int) bool {
	changed := false
	examined := 0
	for v := 0; v < s.G.NumVertices(); v++ {
		if !s.G.VertexAlive(v) || s.Terminal[v] {
			continue
		}
		deg := s.G.Degree(v)
		if deg < 2 || deg > 5 {
			continue
		}
		if budget > 0 && examined >= budget {
			break
		}
		examined++
		var nbr []int
		var starCost []float64
		dup := false
		s.G.Adj(v, func(e, w int) bool {
			for _, x := range nbr {
				if x == w {
					dup = true
				}
			}
			nbr = append(nbr, w)
			starCost = append(starCost, s.G.Cost(e))
			return true
		})
		if dup {
			continue // parallel edges: leave to the long-edge test
		}
		// Shortest-path distances between neighbors avoiding v.
		d := neighborDistancesAvoiding(s, v, nbr)
		if d == nil {
			continue
		}
		ok := true
		k := len(nbr)
		for mask := 3; mask < 1<<k && ok; mask++ {
			if popcount(mask) < 2 {
				continue
			}
			var star float64
			var sel []int
			for i := 0; i < k; i++ {
				if mask&(1<<i) != 0 {
					star += starCost[i]
					sel = append(sel, i)
				}
			}
			if mstOver(d, sel) > star+1e-12 {
				ok = false
			}
		}
		if ok {
			s.G.DeleteVertex(v)
			st.VerticesDeleted++
			changed = true
		}
	}
	return changed
}

func popcount(x int) int {
	c := 0
	for x > 0 {
		c += x & 1
		x >>= 1
	}
	return c
}

// neighborDistancesAvoiding returns the pairwise shortest-path distances
// among nbr in G∖{v}; nil when some pair is disconnected (deletion then
// cannot be proven).
func neighborDistancesAvoiding(s *SPG, v int, nbr []int) [][]float64 {
	// Temporarily hide v by skipping its edges during Dijkstra: emulate by
	// cost override is not enough, so run Dijkstra on a clone-free walk.
	k := len(nbr)
	d := make([][]float64, k)
	for i := 0; i < k; i++ {
		di := dijkstraAvoiding(s, nbr[i], v)
		d[i] = make([]float64, k)
		for j := 0; j < k; j++ {
			d[i][j] = di[nbr[j]]
			if math.IsInf(d[i][j], 1) {
				return nil
			}
		}
	}
	return d
}

// dijkstraAvoiding computes single-source distances skipping vertex av.
func dijkstraAvoiding(s *SPG, src, av int) []float64 {
	n := s.G.NumVertices()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	pq := &bndHeap{}
	heap.Push(pq, bndItem{src, 0})
	for pq.Len() > 0 {
		it := heap.Pop(pq).(bndItem)
		if it.d > dist[it.v]+1e-15 {
			continue
		}
		s.G.Adj(it.v, func(e, w int) bool {
			if w == av || !s.G.VertexAlive(w) {
				return true
			}
			if nd := it.d + s.G.Cost(e); nd < dist[w]-1e-15 {
				dist[w] = nd
				heap.Push(pq, bndItem{w, nd})
			}
			return true
		})
	}
	return dist
}

// mstOver computes the MST value of the complete graph on sel under d.
func mstOver(d [][]float64, sel []int) float64 {
	k := len(sel)
	in := make([]bool, k)
	best := make([]float64, k)
	for i := range best {
		best[i] = math.Inf(1)
	}
	best[0] = 0
	var total float64
	for cnt := 0; cnt < k; cnt++ {
		pick := -1
		for i := 0; i < k; i++ {
			if !in[i] && (pick < 0 || best[i] < best[pick]) {
				pick = i
			}
		}
		in[pick] = true
		total += best[pick]
		for i := 0; i < k; i++ {
			if !in[i] {
				if c := d[sel[pick]][sel[i]]; c < best[i] {
					best[i] = c
				}
			}
		}
	}
	return total
}
