// Package puc generates Steiner tree instances from the same structured
// families as the PUC benchmark set (SteinLib) that the paper attacks:
// hypercubes (hc*), code-coverage/Hamming graphs (cc*) and bipartite
// instances (bip*), each in a unit-cost (u) and a perturbed-cost (p)
// variant. PUC was constructed specifically to defy reduction
// techniques, and these families retain that property at reduced
// dimension: presolving removes almost nothing and massive
// branch-and-bound search is required — the regime the paper's
// parallelization study targets.
//
// The original PUC instances (hc7u has 128 vertices and 448 edges,
// bip52u has 2200 vertices) are substituted by the same constructions at
// dimensions that a single machine can attack in seconds to minutes; see
// DESIGN.md for the substitution rationale.
package puc

import (
	"math/rand"

	"repro/internal/steiner"
)

// Hypercube builds the hc-family instance of dimension d: vertices are
// the 2^d binary words, edges join words at Hamming distance one, and
// the terminals are the words of even parity (half the vertices), which
// is what makes the instances reduction-resistant. Unit costs when
// perturbed is false; otherwise integer costs in [100,110] seeded by
// seed, mirroring the p-variants' small cost spread.
func Hypercube(d int, perturbed bool, seed int64) *steiner.SPG {
	n := 1 << d
	s := steiner.NewSPG(n)
	s.Name = hcName(d, perturbed)
	rng := rand.New(rand.NewSource(seed))
	for v := 0; v < n; v++ {
		for b := 0; b < d; b++ {
			w := v ^ (1 << b)
			if v < w {
				c := 1.0
				if perturbed {
					c = float64(100 + rng.Intn(11))
				}
				s.G.AddEdge(v, w, c)
			}
		}
		if parity(v) == 0 {
			s.Terminal[v] = true
		}
	}
	return s
}

// HypercubeT is Hypercube with an explicit terminal count: nTerm
// vertices of even parity are chosen pseudo-randomly. Lower terminal
// counts interpolate the difficulty between hypercube dimensions.
func HypercubeT(d, nTerm int, perturbed bool, seed int64) *steiner.SPG {
	s := Hypercube(d, perturbed, seed)
	s.Name = hcName(d, perturbed) + "t" + itoa(nTerm)
	var evens []int
	for v := 0; v < s.G.NumVertices(); v++ {
		s.Terminal[v] = false
		if parity(v) == 0 {
			evens = append(evens, v)
		}
	}
	rng := rand.New(rand.NewSource(seed * 7919))
	perm := rng.Perm(len(evens))
	if nTerm > len(evens) {
		nTerm = len(evens)
	}
	for i := 0; i < nTerm; i++ {
		s.Terminal[evens[perm[i]]] = true
	}
	return s
}

// HypercubeSpread is HypercubeT with integer costs drawn uniformly from
// [lo, hi]. The cost spread is the difficulty dial of the hc family:
// unit costs (the u-variants) sit deep in the intractable regime, wide
// spreads collapse to the root, and ratios hi/lo ≈ 1.6–1.7 produce the
// moderate search trees the scaling experiments need.
func HypercubeSpread(d, nTerm, lo, hi int, seed int64) *steiner.SPG {
	s := HypercubeT(d, nTerm, true, seed)
	s.Name = hcName(d, true) + "s" + itoa(hi)
	rng := rand.New(rand.NewSource(seed * 31))
	for e := 0; e < s.G.NumEdges(); e++ {
		s.G.SetCost(e, float64(lo+rng.Intn(hi-lo+1)))
	}
	return s
}

func parity(v int) int {
	p := 0
	for v > 0 {
		p ^= v & 1
		v >>= 1
	}
	return p
}

func hcName(d int, perturbed bool) string {
	suffix := "u"
	if perturbed {
		suffix = "p"
	}
	return "hc" + itoa(d) + suffix
}

// CodeCover builds the cc-family instance: the Hamming graph H(d,a)
// whose vertices are the a^d words over an alphabet of size a, with
// edges between words differing in exactly one position. nTerm terminals
// are chosen pseudo-randomly (seeded), emulating the covering-code
// structure of the originals.
func CodeCover(d, a, nTerm int, perturbed bool, seed int64) *steiner.SPG {
	n := 1
	for i := 0; i < d; i++ {
		n *= a
	}
	s := steiner.NewSPG(n)
	s.Name = "cc" + itoa(d) + "-" + itoa(a) + variant(perturbed)
	rng := rand.New(rand.NewSource(seed))
	// Edges: words differing in one coordinate.
	pow := make([]int, d+1)
	pow[0] = 1
	for i := 1; i <= d; i++ {
		pow[i] = pow[i-1] * a
	}
	for v := 0; v < n; v++ {
		for pos := 0; pos < d; pos++ {
			digit := (v / pow[pos]) % a
			for nd := digit + 1; nd < a; nd++ {
				w := v + (nd-digit)*pow[pos]
				c := 1.0
				if perturbed {
					c = float64(100 + rng.Intn(11))
				}
				s.G.AddEdge(v, w, c)
			}
		}
	}
	if nTerm < 2 {
		nTerm = 2
	}
	perm := rng.Perm(n)
	for i := 0; i < nTerm && i < n; i++ {
		s.Terminal[perm[i]] = true
	}
	return s
}

// Bipartite builds the bip-family instance: nTerm terminals on one side,
// nSteiner potential Steiner vertices on the other; each terminal links
// to deg random Steiner vertices and the Steiner side carries a sparse
// random backbone. The covering structure (terminals only reachable
// through Steiner vertices) is what makes bip instances hard.
func Bipartite(nTerm, nSteiner, deg int, perturbed bool, seed int64) *steiner.SPG {
	n := nTerm + nSteiner
	s := steiner.NewSPG(n)
	s.Name = "bip" + itoa(nTerm) + variant(perturbed)
	rng := rand.New(rand.NewSource(seed))
	cost := func() float64 {
		if perturbed {
			return float64(100 + rng.Intn(11))
		}
		return 1
	}
	// Terminals 0..nTerm-1, Steiner vertices nTerm..n-1.
	for t := 0; t < nTerm; t++ {
		s.Terminal[t] = true
		seen := map[int]bool{}
		for k := 0; k < deg; k++ {
			v := nTerm + rng.Intn(nSteiner)
			if seen[v] {
				continue
			}
			seen[v] = true
			s.G.AddEdge(t, v, cost())
		}
	}
	// Steiner backbone: a random connected sparse graph.
	for v := nTerm + 1; v < n; v++ {
		w := nTerm + rng.Intn(v-nTerm)
		s.G.AddEdge(v, w, cost())
	}
	extra := 2 * nSteiner
	for k := 0; k < extra; k++ {
		u := nTerm + rng.Intn(nSteiner)
		v := nTerm + rng.Intn(nSteiner)
		if u != v {
			s.G.AddEdge(u, v, cost())
		}
	}
	return s
}

func variant(perturbed bool) string {
	if perturbed {
		return "p"
	}
	return "u"
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

// Named returns the scaled-down analogue of a paper instance. The names
// follow the paper's tables; dimensions are reduced so the instances are
// attackable on one machine while preserving the family structure (see
// DESIGN.md, substitution 3).
func Named(name string) *steiner.SPG {
	switch name {
	case "cc3-4p":
		return CodeCover(3, 4, 8, true, 341)
	case "cc3-5u":
		return CodeCover(3, 5, 13, false, 352)
	case "cc5-3p":
		return CodeCover(4, 3, 9, true, 533)
	case "hc6p":
		return Hypercube(6, true, 761)
	case "hc6u":
		return Hypercube(6, false, 762)
	case "hc7p":
		return Hypercube(6, true, 77) // scaled: d=6 stands in for hc7
	case "hc7u":
		return Hypercube(6, false, 78)
	case "hc10p":
		return Hypercube(7, true, 710) // scaled: d=7 stands in for hc10
	case "bip52u":
		return Bipartite(16, 80, 3, false, 52)
	case "hc9p":
		return Hypercube(7, true, 97)
	default:
		return nil
	}
}
