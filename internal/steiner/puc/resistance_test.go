package puc

import (
	"math/rand"
	"testing"

	"repro/internal/steiner"
)

// The paper: "for the PUC instances the effect of presolving is usually
// very limited" — the families were constructed to defy reduction
// techniques. This test asserts the property holds for the generated
// analogues: presolving removes only a small fraction of a hypercube
// instance's edges, while a random sparse instance collapses.
func TestPUCFamiliesResistReductions(t *testing.T) {
	hc := Hypercube(6, false, 1)
	before := hc.G.AliveEdges()
	steiner.Reduce(hc, 0)
	after := hc.G.AliveEdges()
	if frac := float64(before-after) / float64(before); frac > 0.25 {
		t.Fatalf("hc6u lost %.0f%% of its edges to presolving; PUC-family analogues must resist", 100*frac)
	}

	// Contrast: a random sparse graph with few terminals reduces heavily.
	rng := rand.New(rand.NewSource(2))
	n := 64
	sp := steiner.NewSPG(n)
	for v := 1; v < n; v++ {
		sp.G.AddEdge(rng.Intn(v), v, float64(1+rng.Intn(9)))
	}
	for k := 0; k < 40; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			sp.G.AddEdge(u, v, float64(1+rng.Intn(9)))
		}
	}
	for i := 0; i < 5; i++ {
		sp.Terminal[rng.Intn(n)] = true
	}
	beforeR := sp.G.AliveEdges()
	steiner.Reduce(sp, 0)
	afterR := sp.G.AliveEdges()
	if frac := float64(beforeR-afterR) / float64(beforeR); frac < 0.3 {
		t.Fatalf("random instance only lost %.0f%%; reductions seem ineffective", 100*frac)
	}
}

// Hamming (cc) analogues must also resist.
func TestCodeCoverResistsReductions(t *testing.T) {
	cc := CodeCover(3, 4, 16, false, 3)
	before := cc.G.AliveEdges()
	steiner.Reduce(cc, 0)
	after := cc.G.AliveEdges()
	if frac := float64(before-after) / float64(before); frac > 0.35 {
		t.Fatalf("cc3-4 lost %.0f%% of its edges to presolving", 100*frac)
	}
}
