package puc

import (
	"testing"

	"repro/internal/steiner"
)

func TestHypercubeStructure(t *testing.T) {
	for d := 2; d <= 6; d++ {
		s := Hypercube(d, false, 1)
		n := 1 << d
		if s.G.NumVertices() != n {
			t.Fatalf("d=%d: %d vertices", d, s.G.NumVertices())
		}
		if s.G.AliveEdges() != d*n/2 {
			t.Fatalf("d=%d: %d edges, want %d", d, s.G.AliveEdges(), d*n/2)
		}
		if s.NumTerminals() != n/2 {
			t.Fatalf("d=%d: %d terminals, want %d", d, s.NumTerminals(), n/2)
		}
		// Every vertex has degree d.
		for v := 0; v < n; v++ {
			if s.G.Degree(v) != d {
				t.Fatalf("d=%d: vertex %d degree %d", d, v, s.G.Degree(v))
			}
		}
		// Unit costs.
		for e := 0; e < s.G.NumEdges(); e++ {
			if s.G.Cost(e) != 1 {
				t.Fatalf("unit variant has cost %v", s.G.Cost(e))
			}
		}
	}
}

func TestHypercubePerturbedCosts(t *testing.T) {
	s := Hypercube(4, true, 7)
	for e := 0; e < s.G.NumEdges(); e++ {
		if c := s.G.Cost(e); c < 100 || c > 110 {
			t.Fatalf("perturbed cost %v outside [100,110]", c)
		}
	}
}

func TestHypercubeTerminalsEvenParity(t *testing.T) {
	s := Hypercube(5, false, 1)
	for v := 0; v < s.G.NumVertices(); v++ {
		if s.Terminal[v] && parity(v) != 0 {
			t.Fatalf("terminal %d has odd parity", v)
		}
	}
}

func TestHypercubeT(t *testing.T) {
	s := HypercubeT(5, 7, true, 3)
	if s.NumTerminals() != 7 {
		t.Fatalf("terminals = %d", s.NumTerminals())
	}
	for v := 0; v < s.G.NumVertices(); v++ {
		if s.Terminal[v] && parity(v) != 0 {
			t.Fatalf("terminal %d has odd parity", v)
		}
	}
}

func TestHypercubeSpread(t *testing.T) {
	s := HypercubeSpread(4, 8, 100, 170, 5)
	if s.NumTerminals() != 8 {
		t.Fatalf("terminals = %d", s.NumTerminals())
	}
	for e := 0; e < s.G.NumEdges(); e++ {
		if c := s.G.Cost(e); c < 100 || c > 170 {
			t.Fatalf("spread cost %v outside [100,170]", c)
		}
	}
}

func TestCodeCoverStructure(t *testing.T) {
	d, a := 3, 4
	s := CodeCover(d, a, 8, false, 1)
	n := 64
	if s.G.NumVertices() != n {
		t.Fatalf("%d vertices", s.G.NumVertices())
	}
	// Hamming graph H(d,a): every vertex has degree d(a−1).
	want := d * (a - 1)
	for v := 0; v < n; v++ {
		if s.G.Degree(v) != want {
			t.Fatalf("vertex %d degree %d, want %d", v, s.G.Degree(v), want)
		}
	}
	if s.NumTerminals() != 8 {
		t.Fatalf("%d terminals", s.NumTerminals())
	}
}

func TestBipartiteStructure(t *testing.T) {
	s := Bipartite(10, 30, 3, false, 2)
	if s.G.NumVertices() != 40 {
		t.Fatalf("%d vertices", s.G.NumVertices())
	}
	if s.NumTerminals() != 10 {
		t.Fatalf("%d terminals", s.NumTerminals())
	}
	// Terminals only link to the Steiner side.
	for tv := 0; tv < 10; tv++ {
		s.G.Adj(tv, func(e, w int) bool {
			if w < 10 {
				t.Fatalf("terminal %d adjacent to terminal %d", tv, w)
			}
			return true
		})
	}
	// Connected: the generator's backbone spans the Steiner side.
	comp := s.G.ConnectedComponent(10)
	for v := 10; v < 40; v++ {
		if !comp[v] {
			t.Fatalf("steiner vertex %d disconnected", v)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := Hypercube(5, true, 9)
	b := Hypercube(5, true, 9)
	for e := 0; e < a.G.NumEdges(); e++ {
		if a.G.Cost(e) != b.G.Cost(e) {
			t.Fatal("hypercube costs differ across calls")
		}
	}
	c := CodeCover(3, 3, 9, true, 5)
	d := CodeCover(3, 3, 9, true, 5)
	if c.NumTerminals() != d.NumTerminals() {
		t.Fatal("code-cover terminals differ")
	}
	for v := range c.Terminal {
		if c.Terminal[v] != d.Terminal[v] {
			t.Fatal("code-cover terminal sets differ")
		}
	}
}

func TestNamedInstances(t *testing.T) {
	names := []string{"cc3-4p", "cc3-5u", "cc5-3p", "hc6p", "hc6u", "hc7p", "hc7u", "hc10p", "hc9p", "bip52u"}
	for _, name := range names {
		s := Named(name)
		if s == nil {
			t.Fatalf("Named(%q) = nil", name)
		}
		if s.NumTerminals() < 2 {
			t.Fatalf("%s: %d terminals", name, s.NumTerminals())
		}
		// All instances must be connected from a terminal.
		comp := s.G.ConnectedComponent(s.Root())
		for _, tv := range s.Terminals() {
			if !comp[tv] {
				t.Fatalf("%s: terminal %d disconnected", name, tv)
			}
		}
	}
	if Named("nonsense") != nil {
		t.Fatal("unknown name should return nil")
	}
}

func TestNamedInstancesSolvableDW(t *testing.T) {
	// Spot-check small named instances against Dreyfus–Wagner.
	s := Named("cc3-4p")
	var clone *steiner.SPG = s.Clone()
	if got := clone.SolveDW(); got <= 0 {
		t.Fatalf("cc3-4p DW = %v", got)
	}
}
