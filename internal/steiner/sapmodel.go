package steiner

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/lp"
	"repro/internal/maxflow"
	"repro/internal/num"
	"repro/internal/scip"
)

// SAPInstance is the model-level data for a SAP (the variant pipeline):
// the instance is immutable during the search — variants branch on arc
// variables, not on graph structure — so node clones share the pointer.
type SAPInstance struct {
	S *SAP
	// inArcs/outArcs index arcs (== variables) per vertex.
	inArcs, outArcs [][]int
}

func newSAPInstance(s *SAP) *SAPInstance {
	in := &SAPInstance{S: s, inArcs: make([][]int, s.N), outArcs: make([][]int, s.N)}
	for a, arc := range s.Arcs {
		in.inArcs[arc.Head] = append(in.inArcs[arc.Head], a)
		in.outArcs[arc.Tail] = append(in.outArcs[arc.Tail], a)
	}
	return in
}

// SAPDef implements scip.ProblemDef for Steiner arborescence variants.
type SAPDef struct{}

// Presolve implements scip.ProblemDef (variants skip graph reductions —
// those are SPG-specific in this reproduction).
func (d *SAPDef) Presolve(data any, _ float64) (any, float64) { return data, 0 }

// BuildModel implements scip.ProblemDef: one binary variable per arc,
// the flow-balance/in-degree strengthening rows of Formulation 1, and
// the root-degree side constraint of the unrooted transformations.
func (d *SAPDef) BuildModel(data any) *scip.Prob {
	s := data.(*SAP)
	if err := s.validate(); err != nil {
		panic(err)
	}
	inst := newSAPInstance(s)
	integral := true
	for _, a := range s.Arcs {
		if !num.Integral(a.Cost, 0) { // exact data integrality gates bound rounding
			integral = false
		}
	}
	prob := &scip.Prob{Name: "sap:" + s.Name, Data: inst, IntegralObj: integral}
	for a, arc := range s.Arcs {
		up := 1.0
		if arc.Head == s.Root {
			up = 0
		}
		prob.AddVar(fmt.Sprintf("a_%d", a), 0, up, arc.Cost, scip.Binary)
	}
	for v := 0; v < s.N; v++ {
		if v == s.Root {
			continue
		}
		var inCoefs []lp.Nonzero
		for _, a := range inst.inArcs[v] {
			inCoefs = append(inCoefs, lp.Nonzero{Col: a, Val: 1})
		}
		if len(inCoefs) == 0 {
			continue
		}
		if s.Terminal[v] {
			prob.AddRow(fmt.Sprintf("indeg_t%d", v), lp.EQ, 1, inCoefs)
			continue
		}
		prob.AddRow(fmt.Sprintf("indeg_%d", v), lp.LE, 1, inCoefs)
		// Flow balance (5): y(δ−(v)) ≤ y(δ+(v)) for non-terminals.
		coefs := append([]lp.Nonzero(nil), inCoefs...)
		for _, a := range inst.outArcs[v] {
			coefs = append(coefs, lp.Nonzero{Col: a, Val: -1})
		}
		prob.AddRow(fmt.Sprintf("fb_%d", v), lp.LE, 0, coefs)
		// (6): each outgoing arc needs inflow.
		for _, a := range inst.outArcs[v] {
			c6 := []lp.Nonzero{{Col: a, Val: 1}}
			for _, ia := range inst.inArcs[v] {
				c6 = append(c6, lp.Nonzero{Col: ia, Val: -1})
			}
			prob.AddRow(fmt.Sprintf("fb6_%d_%d", v, a), lp.LE, 0, c6)
		}
	}
	if s.RootDegreeOne {
		var coefs []lp.Nonzero
		for a, arc := range s.Arcs {
			if arc.Anchor {
				coefs = append(coefs, lp.Nonzero{Col: a, Val: 1})
			}
		}
		prob.AddRow("rootdeg", lp.EQ, 1, coefs)
	}
	return prob
}

// CloneData implements scip.ProblemDef; SAP data is immutable.
func (d *SAPDef) CloneData(data any) any { return data }

// ApplyDecision implements scip.ProblemDef; variants branch on
// variables only.
func (d *SAPDef) ApplyDecision(any, scip.Decision) {}

// sapReach computes vertices reachable from the root via arcs with
// x > 0.5.
func (in *SAPInstance) sapReach(x []float64) []bool {
	seen := make([]bool, in.S.N)
	seen[in.S.Root] = true
	stack := []int{in.S.Root}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range in.outArcs[v] {
			if x[a] > 0.5 && !seen[in.S.Arcs[a].Head] {
				seen[in.S.Arcs[a].Head] = true
				stack = append(stack, in.S.Arcs[a].Head)
			}
		}
	}
	return seen
}

// SAPConshdlr enforces arborescence connectivity.
type SAPConshdlr struct{}

// Name implements scip.Conshdlr.
func (*SAPConshdlr) Name() string { return "sap" }

// Check implements scip.Conshdlr.
//
//ugo:coldpath reachability check runs once per candidate incumbent, not per node
func (*SAPConshdlr) Check(ctx *scip.Ctx, x []float64) bool {
	inst := ctx.Data.(*SAPInstance)
	reach := inst.sapReach(x)
	for _, t := range inst.S.Terminals() {
		if !reach[t] {
			return false
		}
	}
	return true
}

// Enforce implements scip.Conshdlr: add the cut of an unreached
// terminal's component (all SAP cuts are globally valid — variants have
// no branching-added terminals).
//
//ugo:coldpath cut synthesis walks the arc support once per enforcement round; working sets are instance-sized and audited separately
func (*SAPConshdlr) Enforce(ctx *scip.Ctx, x []float64) scip.Result {
	inst := ctx.Data.(*SAPInstance)
	reach := inst.sapReach(x)
	for _, t := range inst.S.Terminals() {
		if reach[t] {
			continue
		}
		// W = complement of the reached set; the violated Steiner cut is
		// over the arcs entering W.
		var coefs []lp.Nonzero
		for a, arc := range inst.S.Arcs {
			if !reach[arc.Head] && reach[arc.Tail] {
				coefs = append(coefs, lp.Nonzero{Col: a, Val: 1})
			}
		}
		if len(coefs) == 0 {
			ctx.MarkInfeasible()
			return scip.Cutoff
		}
		if ctx.AddCut(lp.GE, 1, coefs) {
			return scip.Separated
		}
	}
	return scip.DidNothing
}

// SAPSeparator separates directed cuts on fractional points via
// max-flow, exactly as the SPG separator does.
type SAPSeparator struct {
	MaxCutsPerRound int
}

// Name implements scip.Separator.
func (*SAPSeparator) Name() string { return "sapcuts" }

// Separate implements scip.Separator.
//
//ugo:coldpath fractional-support separation is budget-capped by the solver and dominated by the reachability sweep
func (sep *SAPSeparator) Separate(ctx *scip.Ctx) scip.Result {
	if ctx.LPSol == nil {
		return scip.DidNotRun
	}
	inst := ctx.Data.(*SAPInstance)
	s := inst.S
	x := ctx.LPSol.X
	maxCuts := sep.MaxCutsPerRound
	if maxCuts <= 0 {
		maxCuts = 6
	}
	if left := ctx.CutBudgetLeft(); left < maxCuts {
		maxCuts = left
	}
	added := 0
	for _, t := range s.Terminals() {
		if t == s.Root || added >= maxCuts {
			continue
		}
		nw := maxflow.New(s.N)
		ids := make([]int, len(s.Arcs))
		for a, arc := range s.Arcs {
			ids[a] = -1
			if x[a] > 1e-9 {
				ids[a] = nw.AddArc(arc.Tail, arc.Head, x[a])
			}
		}
		if flow := nw.MaxFlow(s.Root, t); flow >= 1-1e-6 {
			continue
		}
		src := nw.MinCutSource(s.Root)
		var coefs []lp.Nonzero
		var lhs float64
		for a, arc := range s.Arcs {
			if src[arc.Tail] && !src[arc.Head] {
				coefs = append(coefs, lp.Nonzero{Col: a, Val: 1})
				lhs += x[a]
			}
		}
		if len(coefs) == 0 || lhs >= 1-1e-6 {
			continue
		}
		if ctx.AddCut(lp.GE, 1, coefs) {
			added++
		}
	}
	if added > 0 {
		return scip.Separated
	}
	return scip.DidNothing
}

// SAPHeuristic builds an arborescence by repeated shortest paths from
// the already-connected set, honoring the root-degree side constraint.
type SAPHeuristic struct{}

// Name implements scip.Heuristic.
func (*SAPHeuristic) Name() string { return "sapheur" }

// Search implements scip.Heuristic.
//
//ugo:coldpath primal heuristic is frequency-gated; its Dijkstra scratch scales with the instance, not the tree
func (h *SAPHeuristic) Search(ctx *scip.Ctx) scip.Result {
	inst := ctx.Data.(*SAPInstance)
	s := inst.S
	// Arc costs biased by the LP solution when available.
	cost := make([]float64, len(s.Arcs))
	for a, arc := range s.Arcs {
		cost[a] = arc.Cost
		if ctx.LPSol != nil {
			cost[a] *= 1 - 0.75*math.Min(1, ctx.LPSol.X[a])
		}
	}
	x := make([]float64, len(s.Arcs))
	inTree := make([]bool, s.N)
	inTree[s.Root] = true
	anchorUsed := false
	remaining := map[int]bool{}
	for _, t := range s.Terminals() {
		if t != s.Root {
			remaining[t] = true
		}
	}
	for len(remaining) > 0 {
		// Dijkstra over arcs from the tree; anchors blocked after the
		// first one is committed (the side constraint allows only one).
		dist := make([]float64, s.N)
		pred := make([]int, s.N)
		for i := range dist {
			dist[i] = math.Inf(1)
			pred[i] = -1
		}
		pq := &bndHeap{}
		for v := 0; v < s.N; v++ {
			if inTree[v] {
				dist[v] = 0
				heap.Push(pq, bndItem{v, 0})
			}
		}
		for pq.Len() > 0 {
			it := heap.Pop(pq).(bndItem)
			if it.d > dist[it.v]+1e-15 {
				continue
			}
			for _, a := range inst.outArcs[it.v] {
				arc := s.Arcs[a]
				// x is this heuristic's own 0/1 arc indicator (assigned,
				// never computed), so the exact test is sound.
				if arc.Anchor && anchorUsed && num.ExactZero(x[a]) {
					continue
				}
				if nd := it.d + cost[a]; nd < dist[arc.Head]-1e-15 {
					dist[arc.Head] = nd
					pred[arc.Head] = a
					heap.Push(pq, bndItem{arc.Head, nd})
				}
			}
		}
		best := -1
		for t := range remaining {
			if best < 0 || dist[t] < dist[best] {
				best = t
			}
		}
		if best < 0 || math.IsInf(dist[best], 1) {
			return scip.DidNothing
		}
		for v := best; !inTree[v]; {
			a := pred[v]
			if a < 0 {
				break
			}
			x[a] = 1
			if s.Arcs[a].Anchor {
				anchorUsed = true
			}
			inTree[v] = true
			v = s.Arcs[a].Tail
		}
		delete(remaining, best)
	}
	// Prune arcs not on a root→terminal path: repeatedly drop leaves.
	pruneArborescence(inst, x)
	if ctx.SubmitSol(x) {
		return scip.FoundSol
	}
	return scip.DidNothing
}

// pruneArborescence removes arcs into non-terminal leaves.
func pruneArborescence(inst *SAPInstance, x []float64) {
	s := inst.S
	for changed := true; changed; {
		changed = false
		for v := 0; v < s.N; v++ {
			if v == s.Root || s.Terminal[v] {
				continue
			}
			outUsed := false
			for _, a := range inst.outArcs[v] {
				if x[a] > 0.5 {
					outUsed = true
					break
				}
			}
			if outUsed {
				continue
			}
			for _, a := range inst.inArcs[v] {
				if x[a] > 0.5 {
					x[a] = 0
					changed = true
				}
			}
		}
	}
}

// NewSAPPlugins assembles the variant solver's plugin set.
func NewSAPPlugins() *scip.Plugins {
	return &scip.Plugins{
		Def:        &SAPDef{},
		Separators: []scip.Separator{&SAPSeparator{}},
		Heuristics: []scip.Heuristic{&SAPHeuristic{}},
		Conshdlrs:  []scip.Conshdlr{&SAPConshdlr{}},
	}
}

// SolveSAP runs the variant pipeline sequentially and returns the
// objective in the variant's own scale.
func SolveSAP(s *SAP, set scip.Settings) (float64, scip.Status, *scip.Solver) {
	def := &SAPDef{}
	prob := def.BuildModel(s)
	plug := NewSAPPlugins()
	solver := scip.NewSolver(prob, set, plug)
	st := solver.Solve()
	if st == scip.StatusOptimal {
		return s.Value(solver.Incumbent().Obj), st, solver
	}
	return math.NaN(), st, solver
}
