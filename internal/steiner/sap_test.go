package steiner

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/scip"
)

// brutePCSTP enumerates vertex subsets: cost(S) = MST(G[S]) + Σ_{v∉S} p.
func brutePCSTP(g *graph.Graph, prizes []float64) float64 {
	n := g.NumVertices()
	var totalPrize float64
	for _, p := range prizes {
		totalPrize += p
	}
	best := totalPrize // the empty solution pays every prize
	for mask := 1; mask < 1<<n; mask++ {
		sel := make([]bool, n)
		for v := 0; v < n; v++ {
			sel[v] = mask&(1<<v) != 0
		}
		edges, mst, ok := g.MSTPrim(sel)
		_ = edges
		if !ok {
			continue // disconnected subset
		}
		cost := mst
		for v := 0; v < n; v++ {
			if !sel[v] {
				cost += prizes[v]
			}
		}
		if cost < best {
			best = cost
		}
	}
	return best
}

// bruteMWCS enumerates connected vertex subsets for the max-weight
// connected subgraph problem (the empty subgraph has value 0).
func bruteMWCS(g *graph.Graph, w []float64) float64 {
	n := g.NumVertices()
	best := 0.0
	for mask := 1; mask < 1<<n; mask++ {
		sel := make([]bool, n)
		var sum float64
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				sel[v] = true
				sum += w[v]
			}
		}
		if sum <= best {
			continue
		}
		if _, _, ok := g.MSTPrim(sel); ok {
			best = sum
		}
	}
	return best
}

func randomVariantGraph(rng *rand.Rand, n int) *graph.Graph {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(rng.Intn(v), v, float64(1+rng.Intn(8)))
	}
	for k := 0; k < n; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v, float64(1+rng.Intn(8)))
		}
	}
	return g
}

func sapSettings() scip.Settings {
	s := scip.DefaultSettings()
	s.NodeSel = scip.HybridPlunge
	s.MaxCutRows = 300
	return s
}

func TestFromSPGMatchesDW(t *testing.T) {
	for seed := int64(700); seed < 712; seed++ {
		spg := randomSPG(seed, 9, 9, 3)
		want := spg.SolveDW()
		sap := FromSPG(spg)
		got, st, _ := SolveSAP(sap, sapSettings())
		if st != scip.StatusOptimal {
			t.Fatalf("seed %d: status %v", seed, st)
		}
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("seed %d: sap %v dw %v", seed, got, want)
		}
	}
}

func TestPCSTPAgainstBruteForce(t *testing.T) {
	for seed := int64(800); seed < 815; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(4)
		g := randomVariantGraph(rng, n)
		prizes := make([]float64, n)
		for v := range prizes {
			if rng.Float64() < 0.6 {
				prizes[v] = float64(rng.Intn(10))
			}
		}
		want := brutePCSTP(g, prizes)
		sap := TransformPCSTP(g, prizes)
		got, st, solver := SolveSAP(sap, sapSettings())
		if st != scip.StatusOptimal {
			t.Fatalf("seed %d: status %v", seed, st)
		}
		if solver.Stats.DeadEnds != 0 {
			t.Fatalf("seed %d: dead ends", seed)
		}
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("seed %d: pcstp %v want %v", seed, got, want)
		}
	}
}

func TestPCSTPAllPrizesZero(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomVariantGraph(rng, 5)
	prizes := make([]float64, 5)
	sap := TransformPCSTP(g, prizes)
	// No prize vertices → only the artificial root terminal → empty
	// solution with objective 0. No anchor arcs exist either, so the
	// side-constraint row is empty; the transformation handles this by
	// producing a model whose optimum is 0 or reporting infeasible.
	got, st, _ := SolveSAP(sap, sapSettings())
	if st == scip.StatusOptimal && math.Abs(got) > 1e-9 {
		t.Fatalf("got %v, want 0", got)
	}
}

func TestRPCSTPAgainstBruteForce(t *testing.T) {
	for seed := int64(900); seed < 912; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(4)
		g := randomVariantGraph(rng, n)
		prizes := make([]float64, n)
		for v := range prizes {
			if rng.Float64() < 0.6 {
				prizes[v] = float64(rng.Intn(10))
			}
		}
		root := rng.Intn(n)
		// Brute force restricted to subsets containing root.
		best := math.Inf(1)
		for mask := 0; mask < 1<<n; mask++ {
			if mask&(1<<root) == 0 {
				continue
			}
			sel := make([]bool, n)
			for v := 0; v < n; v++ {
				sel[v] = mask&(1<<v) != 0
			}
			_, mst, ok := g.MSTPrim(sel)
			if !ok {
				continue
			}
			cost := mst
			for v := 0; v < n; v++ {
				if !sel[v] {
					cost += prizes[v]
				}
			}
			if cost < best {
				best = cost
			}
		}
		sap := TransformRPCSTP(g, prizes, root)
		got, st, _ := SolveSAP(sap, sapSettings())
		if st != scip.StatusOptimal {
			t.Fatalf("seed %d: status %v", seed, st)
		}
		if math.Abs(got-best) > 1e-6 {
			t.Fatalf("seed %d: rpcstp %v want %v", seed, got, best)
		}
	}
}

func TestMWCSAgainstBruteForce(t *testing.T) {
	for seed := int64(1000); seed < 1015; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(4)
		g := randomVariantGraph(rng, n)
		w := make([]float64, n)
		for v := range w {
			w[v] = float64(rng.Intn(13) - 6)
		}
		anyPos := false
		for _, x := range w {
			if x > 0 {
				anyPos = true
			}
		}
		if !anyPos {
			continue
		}
		want := bruteMWCS(g, w)
		sap := TransformMWCS(g, w)
		got, st, _ := SolveSAP(sap, sapSettings())
		if st != scip.StatusOptimal {
			t.Fatalf("seed %d: status %v", seed, st)
		}
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("seed %d: mwcs %v want %v", seed, got, want)
		}
	}
}

func TestSAPValidation(t *testing.T) {
	s := &SAP{N: 2, Root: 5, Terminal: make([]bool, 2)}
	if err := s.validate(); err == nil {
		t.Fatal("out-of-range root accepted")
	}
	s2 := &SAP{N: 2, Root: 0, Terminal: make([]bool, 2)}
	s2.AddArc(0, 1, -1)
	if err := s2.validate(); err == nil {
		t.Fatal("negative cost accepted")
	}
}

func TestSAPValueMapping(t *testing.T) {
	s := &SAP{ObjOffset: 10, Negate: true}
	if s.Value(3) != 7 {
		t.Fatalf("negated value = %v", s.Value(3))
	}
	s2 := &SAP{ObjOffset: 5}
	if s2.Value(3) != 8 {
		t.Fatalf("offset value = %v", s2.Value(3))
	}
}
