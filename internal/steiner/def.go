package steiner

import (
	"fmt"

	"repro/internal/lp"
	"repro/internal/num"
	"repro/internal/scip"
)

// Instance is the model-level problem data: the (presolved) SPG plus the
// static arc↔variable mapping shared by all branch-and-bound nodes and
// all ParaSolvers. Node-local clones share the mapping and the original
// terminal mask; only the SPG is deep-copied.
type Instance struct {
	SPG    *SPG
	Root   int
	VarArc []int // variable j ↔ arc VarArc[j]
	ArcVar []int // arc a → variable index, −1 if no variable
	// OrigTerminal marks terminals of the presolved instance; cuts for
	// these are globally valid, cuts for branching-added terminals only
	// locally.
	OrigTerminal []bool
}

// clone deep-copies the node-local mutable part.
func (in *Instance) clone() *Instance {
	return &Instance{
		SPG:          in.SPG.Clone(),
		Root:         in.Root,
		VarArc:       in.VarArc,
		ArcVar:       in.ArcVar,
		OrigTerminal: in.OrigTerminal,
	}
}

// DecisionKind is the Decision.Kind for Steiner vertex branching.
const DecisionKind = "stp-vertex"

// Def implements scip.ProblemDef for the Steiner tree problem. It also
// retains the presolve trace for retransforming solutions to the
// original graph.
type Def struct {
	TraceOut  *Trace
	StatsOut  *ReduceStats
	NoReduce  bool // disable presolve reductions (for ablations)
	MaxRounds int
}

// Presolve implements scip.ProblemDef: graph reductions with
// contractions; the cost of mandatory (contracted) edges becomes the
// objective offset.
func (d *Def) Presolve(data any, _ float64) (any, float64) {
	spg := data.(*SPG)
	if d.NoReduce {
		d.TraceOut = &Trace{Parent: map[int][2]int{}}
		d.StatsOut = &ReduceStats{}
		return spg, 0
	}
	tr, st := Reduce(spg, d.MaxRounds)
	d.TraceOut = tr
	d.StatsOut = st
	return spg, tr.Offset
}

// BuildModel implements scip.ProblemDef: the flow-balance directed-cut
// formulation (Formulation 1 of the paper). Binary arc variables carry
// the edge cost; static rows are the flow-balance strengthenings (5) and
// (6), in-degree bounds, and in-degree equalities for terminals. The
// exponential family of directed Steiner cuts (4) is separated lazily by
// the cut separator / constraint handler.
func (d *Def) BuildModel(data any) *scip.Prob {
	spg := data.(*SPG)
	root := spg.Root()
	inst := &Instance{
		SPG:          spg,
		Root:         root,
		ArcVar:       make([]int, 2*spg.G.NumEdges()),
		OrigTerminal: append([]bool(nil), spg.Terminal...),
	}
	prob := &scip.Prob{Name: "stp:" + spg.Name, IntegralObj: integralCosts(spg), Data: inst}
	for a := range inst.ArcVar {
		inst.ArcVar[a] = -1
	}
	if root < 0 {
		return prob // no terminals: empty model
	}
	for e := 0; e < spg.G.NumEdges(); e++ {
		if !spg.G.EdgeAlive(e) {
			continue
		}
		for o := 0; o < 2; o++ {
			a := 2*e + o
			up := 1.0
			if spg.ArcHead(a) == root {
				up = 0 // no arcs into the root of the arborescence
			}
			j := prob.AddVar(fmt.Sprintf("y_%d", a), 0, up, spg.G.Cost(e), scip.Binary)
			inst.VarArc = append(inst.VarArc, a)
			inst.ArcVar[a] = j
		}
	}
	// Seed the LP with the cuts raised by Wong's dual ascent — the
	// initial-row selection SCIP-Jack performs after presolving.
	if spg.NumTerminals() > 1 {
		da := DualAscent(spg, root)
		maxInit := 400
		for i := len(da.Cuts) - 1; i >= 0 && maxInit > 0; i-- {
			var coefs []lp.Nonzero
			for _, a := range da.Cuts[i] {
				if j := inst.ArcVar[a]; j >= 0 {
					coefs = append(coefs, lp.Nonzero{Col: j, Val: 1})
				}
			}
			if len(coefs) > 0 {
				prob.AddRow(fmt.Sprintf("dacut_%d", i), lp.GE, 1, coefs)
				maxInit--
			}
		}
	}
	n := spg.G.NumVertices()
	for v := 0; v < n; v++ {
		if !spg.G.VertexAlive(v) {
			continue
		}
		inArcs, outArcs := inst.incidentArcs(v)
		var inCoefs []lp.Nonzero
		for _, j := range inArcs {
			inCoefs = append(inCoefs, lp.Nonzero{Col: j, Val: 1})
		}
		if v == root {
			continue
		}
		if spg.Terminal[v] {
			// y(δ−(t)) = 1: every terminal is entered exactly once.
			prob.AddRow(fmt.Sprintf("indeg_t%d", v), lp.EQ, 1, inCoefs)
			continue
		}
		// y(δ−(v)) ≤ 1.
		prob.AddRow(fmt.Sprintf("indeg_%d", v), lp.LE, 1, inCoefs)
		// Flow balance (5): y(δ−(v)) − y(δ+(v)) ≤ 0.
		coefs := append([]lp.Nonzero(nil), inCoefs...)
		for _, j := range outArcs {
			coefs = append(coefs, lp.Nonzero{Col: j, Val: -1})
		}
		prob.AddRow(fmt.Sprintf("fb_%d", v), lp.LE, 0, coefs)
		// (6): y(a) ≤ y(δ−(v)) for each outgoing arc a.
		for _, j := range outArcs {
			coefs := []lp.Nonzero{{Col: j, Val: 1}}
			for _, i := range inArcs {
				coefs = append(coefs, lp.Nonzero{Col: i, Val: -1})
			}
			prob.AddRow(fmt.Sprintf("fb6_%d_%d", v, j), lp.LE, 0, coefs)
		}
	}
	return prob
}

// incidentArcs returns the variable indices of arcs entering and leaving
// v in the build-time graph.
func (in *Instance) incidentArcs(v int) (inVars, outVars []int) {
	in.SPG.G.Adj(v, func(e, w int) bool {
		aIn := 2 * e
		if in.SPG.ArcHead(aIn) != v {
			aIn = 2*e + 1
		}
		aOut := aIn ^ 1
		if j := in.ArcVar[aIn]; j >= 0 {
			inVars = append(inVars, j)
		}
		if j := in.ArcVar[aOut]; j >= 0 {
			outVars = append(outVars, j)
		}
		return true
	})
	return inVars, outVars
}

// CloneData implements scip.ProblemDef.
//
//ugo:coldpath deep-copies the local graph once per transferred subproblem — copy-on-transfer is the ownership model
func (d *Def) CloneData(data any) any {
	switch v := data.(type) {
	case *Instance:
		return v.clone()
	case *SPG:
		return v.Clone()
	default:
		panic(fmt.Sprintf("steiner: CloneData on %T", data))
	}
}

// ApplyDecision implements scip.ProblemDef: vertex branching either
// promotes a vertex to a terminal or deletes it.
func (d *Def) ApplyDecision(data any, dec scip.Decision) {
	if dec.Kind != DecisionKind {
		return
	}
	inst := data.(*Instance)
	if !inst.SPG.G.VertexAlive(dec.V) {
		return
	}
	if dec.Flag {
		inst.SPG.Terminal[dec.V] = true
	} else {
		inst.SPG.G.DeleteVertex(dec.V)
	}
}

// integralCosts reports whether all edge costs are integral.
func integralCosts(s *SPG) bool {
	for e := 0; e < s.G.NumEdges(); e++ {
		if !s.G.EdgeAlive(e) {
			continue
		}
		if c := s.G.Cost(e); !num.Integral(c, 0) { // exact data integrality gates bound rounding
			return false
		}
	}
	return true
}

// SolutionEdges converts a model solution vector into the chosen edge
// set of the (presolved) graph.
func (in *Instance) SolutionEdges(x []float64) []int {
	chosen := map[int]bool{}
	for j, a := range in.VarArc {
		if x[j] > 0.5 {
			chosen[a/2] = true
		}
	}
	var out []int
	for e := range chosen {
		out = append(out, e)
	}
	return out
}

// OrientTree converts an (undirected) tree edge set into an arc solution
// vector rooted at in.Root: BFS orientation away from the root.
func (in *Instance) OrientTree(edges []int) []float64 {
	x := make([]float64, len(in.VarArc))
	adj := map[int][]int{}
	for _, e := range edges {
		ed := in.SPG.G.Edges[e]
		adj[ed.U] = append(adj[ed.U], e)
		adj[ed.V] = append(adj[ed.V], e)
	}
	visited := map[int]bool{in.Root: true}
	queue := []int{in.Root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range adj[v] {
			w := in.SPG.G.Other(e, v)
			if visited[w] {
				continue
			}
			visited[w] = true
			queue = append(queue, w)
			// Arc v→w.
			a := 2 * e
			if in.SPG.ArcTail(a) != v {
				a = 2*e + 1
			}
			if j := in.ArcVar[a]; j >= 0 {
				x[j] = 1
			}
		}
	}
	return x
}
