package steiner

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/scip"
)

// This file is the analogue of stp_plugins.cpp in the paper's
// ug_scip_applications/STP: the complete "glue code" needed to turn the
// sequential SCIP-Jack plugin set into ug[SCIP-Jack,*]. Everything else
// lives in the sequential solver; the paper's headline is that this
// registration stays under 200 lines.

// DefaultSettings returns the sequential SCIP-Jack configuration.
func DefaultSettings() scip.Settings {
	s := scip.DefaultSettings()
	s.Name = "stp-default"
	s.NodeSel = scip.HybridPlunge
	s.SepaRounds = 20 // strong root separation closes most of the gap
	s.MaxCutRows = 300
	return s
}

// RacingLadder builds the settings variations used during racing
// ramp-up: node selection, branching rule, emphasis, separation
// aggressiveness and tie-break permutations vary per ParaSolver so each
// generates a different search tree.
func RacingLadder(n int) []scip.Settings {
	nodesel := []scip.NodeSelection{scip.HybridPlunge, scip.BestBound, scip.DepthFirst}
	branch := []scip.BranchRule{scip.BranchPseudoCost, scip.BranchMostFractional, scip.BranchRandom}
	emph := []scip.Emphasis{scip.EmphDefault, scip.EmphEasyCIP, scip.EmphAggressive, scip.EmphFeasibility}
	out := make([]scip.Settings, 0, n)
	for i := 0; i < n; i++ {
		s := DefaultSettings()
		s.Name = fmt.Sprintf("stp-%d-%s", i+1, emph[i%len(emph)].String())
		s.Emphasis = emph[i%len(emph)]
		s.NodeSel = nodesel[i%len(nodesel)]
		s.Branching = branch[(i/2)%len(branch)]
		s.Seed = int64(1000 + 37*i)
		s.PermuteTieBreak = i > 0
		out = append(out, s)
	}
	return out
}

// NewApp registers the SCIP-Jack user plugins for the ug[SCIP-*,*]
// glue layer, yielding ug[SCIP-Jack,*].
func NewApp(instance *SPG) core.App {
	return core.App{
		Name:        "SCIP-Jack",
		Def:         &Def{},
		Data:        instance,
		MakePlugins: func() *scip.Plugins { return NewPlugins() },
		Settings:    append([]scip.Settings{DefaultSettings()}, RacingLadder(15)...),
	}
}

// NewAppWithSettings is NewApp with an explicit settings ladder
// (Settings[0] is the default configuration).
func NewAppWithSettings(instance *SPG, settings []scip.Settings) core.App {
	app := NewApp(instance)
	app.Settings = settings
	return app
}
