package steiner

import (
	"math"
	"testing"

	"repro/internal/ug"
	"repro/internal/ug/comm"

	"repro/internal/core"
)

// Parallel ug[SCIP-Jack,*] must match the Dreyfus–Wagner oracle across
// worker counts, ramp-up modes and communicators.
func TestUGSteinerMatchesDW(t *testing.T) {
	for seed := int64(600); seed < 606; seed++ {
		s := randomSPG(seed, 12, 14, 4)
		want := s.SolveDW()
		for _, workers := range []int{1, 3} {
			app := NewApp(s.Clone())
			res, factory, err := core.SolveParallel(app, ug.Config{
				Workers:        workers,
				StatusInterval: 1e-3,
				ShipInterval:   1e-3,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Optimal {
				t.Fatalf("seed %d workers %d: %+v", seed, workers, res)
			}
			got := res.Obj + factory.ObjOffset()
			if math.Abs(got-want) > 1e-6 {
				t.Fatalf("seed %d workers %d: obj %v want %v", seed, workers, got, want)
			}
		}
	}
}

func TestUGSteinerRacing(t *testing.T) {
	s := randomSPG(42, 14, 18, 5)
	want := s.SolveDW()
	app := NewApp(s.Clone())
	res, factory, err := core.SolveParallel(app, ug.Config{
		Workers:    4,
		RampUp:     ug.RampUpRacing,
		RacingTime: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal {
		t.Fatalf("racing run: %+v", res)
	}
	got := res.Obj + factory.ObjOffset()
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("racing obj %v want %v", got, want)
	}
}

func TestUGSteinerOverGobComm(t *testing.T) {
	// The "MPI" path: everything — including vertex-branching decisions —
	// must survive gob serialization.
	s := randomSPG(17, 12, 14, 4)
	want := s.SolveDW()
	app := NewApp(s.Clone())
	res, factory, err := core.SolveParallel(app, ug.Config{
		Workers:        2,
		Comm:           comm.NewGobComm(3),
		StatusInterval: 1e-3,
		ShipInterval:   1e-3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal || math.Abs(res.Obj+factory.ObjOffset()-want) > 1e-6 {
		t.Fatalf("gob run: %+v want %v", res, want)
	}
}

func TestRacingLadderDistinct(t *testing.T) {
	ladder := RacingLadder(8)
	if len(ladder) != 8 {
		t.Fatalf("len %d", len(ladder))
	}
	seen := map[string]bool{}
	for _, s := range ladder {
		if seen[s.Name] {
			t.Fatalf("duplicate settings name %q", s.Name)
		}
		seen[s.Name] = true
	}
}
