package steiner

import (
	"fmt"

	"repro/internal/graph"
)

// SAP is a Steiner arborescence problem: a directed graph with arc
// costs, a root and a terminal set; the task is a minimum-cost directed
// tree containing a root→t path for every terminal t. SCIP-Jack's
// versatility — the paper notes it handled 10+ problem classes at the
// DIMACS Challenge — comes from transforming every variant into (an
// optionally side-constrained) SAP; this file provides the SAP type and
// the transformations for the prize-collecting Steiner tree problem
// (rooted and unrooted) and the maximum-weight connected subgraph
// problem.
type SAP struct {
	Name     string
	N        int
	Arcs     []SAPArc
	Terminal []bool
	Root     int
	// RootDegreeOne adds the side constraint Σ_{anchor arcs} y = 1: the
	// unrooted transformations connect an artificial root to candidate
	// anchor vertices and exactly one anchor may be used.
	RootDegreeOne bool
	// ObjOffset maps the SAP objective back to the variant's objective.
	ObjOffset float64
	// Negate reports that the variant maximizes: value = ObjOffset − sap.
	Negate bool
}

// SAPArc is one directed arc.
type SAPArc struct {
	Tail, Head int
	Cost       float64
	Anchor     bool // participates in the root-degree side constraint
}

// AddArc appends an arc and returns its index.
func (s *SAP) AddArc(tail, head int, cost float64) int {
	s.Arcs = append(s.Arcs, SAPArc{Tail: tail, Head: head, Cost: cost})
	return len(s.Arcs) - 1
}

// Value maps a SAP objective value back to the variant's objective.
func (s *SAP) Value(sapObj float64) float64 {
	if s.Negate {
		return s.ObjOffset - sapObj
	}
	return s.ObjOffset + sapObj
}

// Terminals lists the terminal vertices.
func (s *SAP) Terminals() []int {
	var out []int
	for v, t := range s.Terminal {
		if t {
			out = append(out, v)
		}
	}
	return out
}

// FromSPG is the identity transformation: each undirected edge becomes
// an antiparallel arc pair, rooted at the canonical terminal.
func FromSPG(g *SPG) *SAP {
	sap := &SAP{
		Name:     "sap:" + g.Name,
		N:        g.G.NumVertices(),
		Terminal: append([]bool(nil), g.Terminal...),
		Root:     g.Root(),
	}
	for e := 0; e < g.G.NumEdges(); e++ {
		if !g.G.EdgeAlive(e) {
			continue
		}
		ed := g.G.Edges[e]
		sap.AddArc(ed.U, ed.V, ed.Cost)
		sap.AddArc(ed.V, ed.U, ed.Cost)
	}
	return sap
}

// TransformPCSTP converts an (unrooted) prize-collecting Steiner tree
// problem — minimize tree cost plus the prizes of vertices left out —
// into a SAP with an artificial root (the classical transformation the
// SCIP-Jack paper describes): each positive-prize vertex v gains a
// terminal sink t_v reachable for free from v and for p_v from the
// root; zero-cost anchor arcs from the root into the graph carry the
// "exactly one" side constraint, so connectivity cannot teleport
// through the artificial root.
func TransformPCSTP(g *graph.Graph, prizes []float64) *SAP {
	n := g.NumVertices()
	sap := &SAP{Name: "pcstp", RootDegreeOne: true}
	// Layout: 0..n−1 original, n = artificial root, then sinks.
	root := n
	next := n + 1
	sink := make([]int, n)
	for v := 0; v < n; v++ {
		sink[v] = -1
		if prizes[v] > 0 {
			sink[v] = next
			next++
		}
	}
	sap.N = next
	sap.Terminal = make([]bool, sap.N)
	sap.Root = root
	sap.Terminal[root] = true
	for e := 0; e < g.NumEdges(); e++ {
		if !g.EdgeAlive(e) {
			continue
		}
		ed := g.Edges[e]
		sap.AddArc(ed.U, ed.V, ed.Cost)
		sap.AddArc(ed.V, ed.U, ed.Cost)
	}
	for v := 0; v < n; v++ {
		if sink[v] < 0 {
			continue
		}
		sap.Terminal[sink[v]] = true
		sap.AddArc(v, sink[v], 0)            // free when v is in the tree
		sap.AddArc(root, sink[v], prizes[v]) // pay the prize to skip v
		a := sap.AddArc(root, v, 0)          // anchor: enter the graph at v
		sap.Arcs[a].Anchor = true
	}
	return sap
}

// TransformRPCSTP converts a rooted prize-collecting Steiner tree
// problem (the root must be part of the tree) into a SAP: no artificial
// root or side constraint is needed — prize arcs leave the root itself.
func TransformRPCSTP(g *graph.Graph, prizes []float64, root int) *SAP {
	n := g.NumVertices()
	sap := &SAP{Name: "rpcstp", Root: root}
	next := n
	sink := make([]int, n)
	for v := 0; v < n; v++ {
		sink[v] = -1
		if v != root && prizes[v] > 0 {
			sink[v] = next
			next++
		}
	}
	sap.N = next
	sap.Terminal = make([]bool, sap.N)
	sap.Terminal[root] = true
	for e := 0; e < g.NumEdges(); e++ {
		if !g.EdgeAlive(e) {
			continue
		}
		ed := g.Edges[e]
		sap.AddArc(ed.U, ed.V, ed.Cost)
		sap.AddArc(ed.V, ed.U, ed.Cost)
	}
	for v := 0; v < n; v++ {
		if sink[v] < 0 {
			continue
		}
		sap.Terminal[sink[v]] = true
		sap.AddArc(v, sink[v], 0)
		sap.AddArc(root, sink[v], prizes[v])
	}
	return sap
}

// TransformMWCS converts a maximum-weight connected subgraph problem —
// find a connected vertex set maximizing the sum of (possibly negative)
// vertex weights — into a SAP, following Rehfeldt & Koch: entering a
// negative vertex costs |w|, positive vertices carry prizes, and the
// objective maps back as Σ_{w>0} w − sap. The empty subgraph is covered
// because a single positive vertex always dominates it (and with no
// positive vertices the transformation returns a trivial SAP).
func TransformMWCS(g *graph.Graph, weights []float64) *SAP {
	n := g.NumVertices()
	sap := &SAP{Name: "mwcs", RootDegreeOne: true, Negate: true}
	root := n
	next := n + 1
	sink := make([]int, n)
	var totalPos float64
	for v := 0; v < n; v++ {
		sink[v] = -1
		if weights[v] > 0 {
			totalPos += weights[v]
			sink[v] = next
			next++
		}
	}
	sap.ObjOffset = totalPos
	sap.N = next
	sap.Terminal = make([]bool, sap.N)
	sap.Root = root
	sap.Terminal[root] = true
	enterCost := func(v int) float64 {
		if weights[v] < 0 {
			return -weights[v]
		}
		return 0
	}
	for e := 0; e < g.NumEdges(); e++ {
		if !g.EdgeAlive(e) {
			continue
		}
		ed := g.Edges[e]
		sap.AddArc(ed.U, ed.V, enterCost(ed.V))
		sap.AddArc(ed.V, ed.U, enterCost(ed.U))
	}
	for v := 0; v < n; v++ {
		if sink[v] < 0 {
			continue
		}
		sap.Terminal[sink[v]] = true
		sap.AddArc(v, sink[v], 0)
		sap.AddArc(root, sink[v], weights[v])
		a := sap.AddArc(root, v, 0)
		sap.Arcs[a].Anchor = true
	}
	return sap
}

// validate sanity-checks a transformation result.
func (s *SAP) validate() error {
	if s.Root < 0 || s.Root >= s.N {
		return fmt.Errorf("sap: root %d out of range", s.Root)
	}
	for _, a := range s.Arcs {
		if a.Tail < 0 || a.Tail >= s.N || a.Head < 0 || a.Head >= s.N {
			return fmt.Errorf("sap: arc %v out of range", a)
		}
		if a.Cost < 0 {
			return fmt.Errorf("sap: negative arc cost %v", a.Cost)
		}
	}
	return nil
}
