// Package steiner is the SCIP-Jack analogue: a Steiner-tree-problem
// solver built as plugins on the scip framework. It contains the
// problem data structures, SteinLib STP file I/O, reduction techniques
// (including a restricted extended-reduction test), Wong's dual ascent,
// constructive and local-search heuristics, the flow-balance directed-cut
// formulation with max-flow cut separation, reduced-cost domain
// propagation, and vertex branching shipped as solver-independent
// decisions. A Dreyfus–Wagner exact algorithm serves as the verification
// oracle for small instances.
package steiner

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// SPG is a Steiner problem in graphs instance: an undirected graph with
// non-negative edge costs and a terminal set.
type SPG struct {
	Name     string
	G        *graph.Graph
	Terminal []bool
}

// NewSPG creates an empty instance with n vertices.
func NewSPG(n int) *SPG {
	return &SPG{G: graph.New(n), Terminal: make([]bool, n)}
}

// NumTerminals counts alive terminals.
func (s *SPG) NumTerminals() int {
	c := 0
	for v, t := range s.Terminal {
		if t && s.G.VertexAlive(v) {
			c++
		}
	}
	return c
}

// Terminals returns the alive terminal vertices.
func (s *SPG) Terminals() []int {
	var out []int
	for v, t := range s.Terminal {
		if t && s.G.VertexAlive(v) {
			out = append(out, v)
		}
	}
	return out
}

// Root returns the canonical root terminal (the lowest-indexed alive
// terminal), or −1 if no terminal is alive.
func (s *SPG) Root() int {
	for v, t := range s.Terminal {
		if t && s.G.VertexAlive(v) {
			return v
		}
	}
	return -1
}

// Clone deep-copies the instance.
//
//ugo:coldpath deep copy runs once per transferred subproblem or propagation round, never per LP iteration
func (s *SPG) Clone() *SPG {
	return &SPG{
		Name:     s.Name,
		G:        s.G.Clone(),
		Terminal: append([]bool(nil), s.Terminal...),
	}
}

// TreeCost sums the costs of the given edge set.
func (s *SPG) TreeCost(edges []int) float64 {
	var c float64
	for _, e := range edges {
		c += s.G.Cost(e)
	}
	return c
}

// ValidTree verifies that the edge set forms a connected acyclic subgraph
// spanning all alive terminals.
func (s *SPG) ValidTree(edges []int) error {
	terms := s.Terminals()
	if len(terms) == 0 {
		return nil
	}
	if len(terms) == 1 {
		if len(edges) == 0 {
			return nil
		}
	}
	uf := graph.NewUnionFind(s.G.NumVertices())
	used := map[int]bool{}
	for _, e := range edges {
		if !s.G.EdgeAlive(e) {
			return fmt.Errorf("edge %d is not alive", e)
		}
		if used[e] {
			return fmt.Errorf("edge %d repeated", e)
		}
		used[e] = true
		ed := s.G.Edges[e]
		if !uf.Union(ed.U, ed.V) {
			return fmt.Errorf("edge %d closes a cycle", e)
		}
	}
	for _, t := range terms[1:] {
		if uf.Find(t) != uf.Find(terms[0]) {
			return fmt.Errorf("terminal %d not connected", t)
		}
	}
	return nil
}

// SolveDW computes the optimal Steiner tree value exactly with the
// Dreyfus–Wagner dynamic program, O(3^t·n + 2^t·n²). It is the
// verification oracle for the solver on instances with few terminals.
// Returns +Inf if some terminal is unreachable.
func (s *SPG) SolveDW() float64 {
	terms := s.Terminals()
	t := len(terms)
	if t <= 1 {
		return 0
	}
	n := s.G.NumVertices()
	// Pairwise shortest paths from every vertex (Dijkstra per vertex).
	dist := make([][]float64, n)
	for v := 0; v < n; v++ {
		if !s.G.VertexAlive(v) {
			continue
		}
		dist[v], _ = s.G.Dijkstra([]int{v}, nil)
	}
	// dp[mask][v]: cost of a tree spanning terms(mask) ∪ {v}.
	full := 1 << (t - 1) // masks over terms[1:]; terms[0] merged at the end
	dp := make([][]float64, full)
	for m := range dp {
		dp[m] = make([]float64, n)
		for v := range dp[m] {
			dp[m][v] = math.Inf(1)
		}
	}
	for i := 1; i < t; i++ {
		for v := 0; v < n; v++ {
			if dist[terms[i]] != nil {
				dp[1<<(i-1)][v] = dist[terms[i]][v]
			}
		}
	}
	for mask := 1; mask < full; mask++ {
		if mask&(mask-1) != 0 { // not a singleton: combine submasks
			for v := 0; v < n; v++ {
				best := math.Inf(1)
				for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
					if sub < mask-sub {
						break // each split visited once
					}
					if c := dp[sub][v] + dp[mask^sub][v]; c < best {
						best = c
					}
				}
				if best < dp[mask][v] {
					dp[mask][v] = best
				}
			}
		}
		// Propagate through the graph (tree edge extension).
		for v := 0; v < n; v++ {
			if !s.G.VertexAlive(v) || math.IsInf(dp[mask][v], 1) {
				continue
			}
			for u := 0; u < n; u++ {
				if dist[v] == nil {
					continue
				}
				if c := dp[mask][v] + dist[v][u]; c < dp[mask][u] {
					dp[mask][u] = c
				}
			}
		}
	}
	return dp[full-1][terms[0]]
}
