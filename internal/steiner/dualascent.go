package steiner

import "math"

// Arc indexing: undirected edge e yields arc 2e (U→V) and arc 2e+1
// (V→U). These indices are shared with the IP model's variables.

// ArcTail returns the tail vertex of arc a in s.
func (s *SPG) ArcTail(a int) int {
	e := s.G.Edges[a/2]
	if a%2 == 0 {
		return e.U
	}
	return e.V
}

// ArcHead returns the head vertex of arc a in s.
func (s *SPG) ArcHead(a int) int {
	e := s.G.Edges[a/2]
	if a%2 == 0 {
		return e.V
	}
	return e.U
}

// DualAscentResult carries the output of Wong's dual ascent.
type DualAscentResult struct {
	LowerBound float64
	// Reduced are the residual arc costs (length 2·numEdges).
	Reduced []float64
	// Cuts are the raised violated cut sets, each a list of arcs entering
	// the respective terminal component (rows for the initial LP).
	Cuts [][]int
}

// DualAscent runs Wong's dual-ascent algorithm on the Steiner
// arborescence transformation of s rooted at root. It yields a valid
// lower bound on the optimal Steiner tree, residual (reduced) arc costs
// for reduced-cost fixing, and the active cut sets, which SCIP-Jack uses
// to seed the initial LP.
func DualAscent(s *SPG, root int) *DualAscentResult {
	m2 := 2 * s.G.NumEdges()
	red := make([]float64, m2)
	for e := 0; e < s.G.NumEdges(); e++ {
		c := s.G.Cost(e)
		if !s.G.EdgeAlive(e) {
			c = math.Inf(1)
		}
		red[2*e] = c
		red[2*e+1] = c
	}
	res := &DualAscentResult{Reduced: red}
	n := s.G.NumVertices()

	// reachSet computes the set of vertices that can reach t using
	// saturated (zero reduced cost) arcs, i.e. BFS over incoming
	// saturated arcs — the terminal-side cut component W.
	reachSet := func(t int) []bool {
		seen := make([]bool, n)
		seen[t] = true
		stack := []int{t}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			s.G.Adj(v, func(e, w int) bool {
				// Arc w→v: its index depends on orientation.
				a := 2 * e
				if s.ArcHead(a) != v {
					a = 2*e + 1
				}
				if red[a] <= 1e-12 && !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
				return true
			})
		}
		return seen
	}

	for iter := 0; iter < 4*n+100; iter++ {
		// Find an unreached terminal: root ∉ reachSet(t).
		var comp []bool
		found := -1
		bestSize := math.MaxInt32
		for _, t := range s.Terminals() {
			if t == root {
				continue
			}
			c := reachSet(t)
			if c[root] {
				continue
			}
			size := 0
			for _, in := range c {
				if in {
					size++
				}
			}
			if size < bestSize {
				bestSize = size
				comp = c
				found = t
			}
		}
		if found < 0 {
			break // all terminals reachable: dual ascent finished
		}
		// Collect arcs entering the component and the minimum residual.
		var cut []int
		delta := math.Inf(1)
		for e := 0; e < s.G.NumEdges(); e++ {
			if !s.G.EdgeAlive(e) {
				continue
			}
			for o := 0; o < 2; o++ {
				a := 2*e + o
				if comp[s.ArcHead(a)] && !comp[s.ArcTail(a)] {
					cut = append(cut, a)
					if red[a] < delta {
						delta = red[a]
					}
				}
			}
		}
		if len(cut) == 0 || math.IsInf(delta, 1) {
			// Terminal unreachable at all: infeasible instance.
			res.LowerBound = math.Inf(1)
			return res
		}
		res.LowerBound += delta
		for _, a := range cut {
			red[a] -= delta
		}
		res.Cuts = append(res.Cuts, cut)
	}
	return res
}

// ShortestPathHeuristic builds a Steiner tree by repeatedly connecting
// the nearest unconnected terminal to the current tree via a shortest
// path (the classical TM construction SCIP-Jack uses). costs may bias
// edge weights (nil uses graph costs); the result is pruned so every
// non-terminal leaf is removed. Returns the edge set and its true cost,
// or ok=false when some terminal is unreachable.
func ShortestPathHeuristic(s *SPG, root int, costs []float64) (edges []int, cost float64, ok bool) {
	terms := s.Terminals()
	if len(terms) == 0 {
		return nil, 0, true
	}
	inTree := make([]bool, s.G.NumVertices())
	inTree[root] = true
	chosen := map[int]bool{}
	remaining := map[int]bool{}
	for _, t := range terms {
		if t != root {
			remaining[t] = true
		}
	}
	for len(remaining) > 0 {
		// Multi-source Dijkstra from the tree.
		var sources []int
		for v, in := range inTree {
			if in {
				sources = append(sources, v)
			}
		}
		dist, pred := s.G.Dijkstra(sources, costs)
		best := -1
		for t := range remaining {
			if best < 0 || dist[t] < dist[best] {
				best = t
			}
		}
		if best < 0 || math.IsInf(dist[best], 1) {
			return nil, 0, false
		}
		// Walk the path back into the tree.
		v := best
		for !inTree[v] {
			e := pred[v]
			if e < 0 {
				break
			}
			chosen[e] = true
			inTree[v] = true
			v = s.G.Other(e, v)
		}
		delete(remaining, best)
	}
	// Prune non-terminal leaves.
	edges = pruneTree(s, chosen)
	for _, e := range edges {
		cost += s.G.Cost(e)
	}
	return edges, cost, true
}

// pruneTree removes non-terminal leaves repeatedly from the chosen edge
// set and returns the remaining edges.
func pruneTree(s *SPG, chosen map[int]bool) []int {
	deg := make(map[int]int)
	for e := range chosen {
		deg[s.G.Edges[e].U]++
		deg[s.G.Edges[e].V]++
	}
	removed := true
	for removed {
		removed = false
		for e := range chosen {
			u, v := s.G.Edges[e].U, s.G.Edges[e].V
			if (deg[u] == 1 && !s.Terminal[u]) || (deg[v] == 1 && !s.Terminal[v]) {
				delete(chosen, e)
				deg[u]--
				deg[v]--
				removed = true
			}
		}
	}
	var out []int
	for e := range chosen {
		out = append(out, e)
	}
	return out
}

// MSTPruneImprove re-optimizes a tree: build the MST of the subgraph
// induced by the tree's vertices, then prune non-terminal leaves. Often
// improves shortest-path-heuristic trees.
func MSTPruneImprove(s *SPG, edges []int) ([]int, float64) {
	mask := make([]bool, s.G.NumVertices())
	for _, e := range edges {
		mask[s.G.Edges[e].U] = true
		mask[s.G.Edges[e].V] = true
	}
	mstEdges, _, ok := s.G.MSTPrim(mask)
	if !ok {
		var c float64
		for _, e := range edges {
			c += s.G.Cost(e)
		}
		return edges, c
	}
	chosen := map[int]bool{}
	for _, e := range mstEdges {
		chosen[e] = true
	}
	out := pruneTree(s, chosen)
	var c float64
	for _, e := range out {
		c += s.G.Cost(e)
	}
	return out, c
}
