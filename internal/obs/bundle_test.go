package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestWriteBundleReadBundleRoundTrip(t *testing.T) {
	rec := NewRecorder(nil, 8)
	// Feed more events than the ring holds: the bundle must carry the
	// contiguous tail, and ReadBundle must accept a window that does not
	// start at seq 0.
	for seq := int64(1); seq <= 20; seq++ {
		rec.Emit(mkEvent(seq))
	}
	reg := NewRegistry()
	reg.Counter("ug.dispatch.total").Add(7)
	c := &Capturer{
		Dir: t.TempDir(), Recorder: rec, Registry: reg,
		Extra: map[string]string{"instance": "hc6u", "seed": "1"},
	}
	dir, err := c.WriteBundle("error", "all workers lost")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReadBundle(dir)
	if err != nil {
		t.Fatal(err)
	}
	if b.Manifest.Reason != "error" || b.Manifest.Detail != "all workers lost" {
		t.Fatalf("manifest trigger = %s/%s", b.Manifest.Reason, b.Manifest.Detail)
	}
	if b.Manifest.PID != os.Getpid() {
		t.Fatalf("manifest pid = %d, want %d", b.Manifest.PID, os.Getpid())
	}
	if b.Manifest.Extra["instance"] != "hc6u" {
		t.Fatalf("manifest extra lost: %v", b.Manifest.Extra)
	}
	if len(b.Events) != 8 || b.Events[0].Seq != 13 || b.Events[7].Seq != 20 {
		t.Fatalf("bundle events = %d (first seq %d), want the 8-event tail 13..20",
			len(b.Events), b.Events[0].Seq)
	}
	if b.PanicValue != "" {
		t.Fatalf("non-panic bundle has panic value %q", b.PanicValue)
	}
	metrics, err := os.ReadFile(filepath.Join(dir, "metrics.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(metrics), "ug.dispatch.total") {
		t.Fatalf("metrics.txt missing registry rows:\n%s", metrics)
	}
}

func TestReadBundleRejectsGappedEvents(t *testing.T) {
	rec := NewRecorder(nil, 8)
	rec.Emit(mkEvent(1))
	rec.Emit(mkEvent(2))
	c := &Capturer{Dir: t.TempDir(), Recorder: rec}
	dir, err := c.WriteBundle("error", "x")
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the window: drop the middle line's successor contiguity.
	path := filepath.Join(dir, "events.jsonl")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	gapped := strings.Replace(string(data), `"seq":2`, `"seq":5`, 1)
	if err := os.WriteFile(path, []byte(gapped), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBundle(dir); err == nil || !strings.Contains(err.Error(), "contiguous") {
		t.Fatalf("gapped bundle validated: err = %v", err)
	}
}

func TestDisarmedCapturerIsNoop(t *testing.T) {
	for _, c := range []*Capturer{nil, {}} {
		dir, err := c.WriteBundle("error", "x")
		if err != nil || dir != "" {
			t.Fatalf("disarmed WriteBundle = (%q, %v), want no-op", dir, err)
		}
	}
}

// TestCapturePanicRepanicsWithOriginalValue pins both halves of the
// CapturePanic contract: the bundle lands on disk before the unwind
// continues, and the re-panic carries the ORIGINAL value so crash
// semantics are untouched.
func TestCapturePanicRepanicsWithOriginalValue(t *testing.T) {
	rec := NewRecorder(nil, 4)
	rec.Emit(mkEvent(1))
	c := &Capturer{Dir: t.TempDir(), Recorder: rec}
	type boom struct{ why string }
	original := boom{why: "injected"}

	var recovered any
	func() {
		defer func() { recovered = recover() }()
		defer c.CapturePanic("test.goroutine")
		panic(original)
	}()
	if recovered != original {
		t.Fatalf("re-panic value = %#v, want the original %#v", recovered, original)
	}
	entries, err := os.ReadDir(c.Dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("bundle count = %d (err %v), want 1", len(entries), err)
	}
	b, err := ReadBundle(filepath.Join(c.Dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if b.Manifest.Reason != "panic" || b.Manifest.Detail != "test.goroutine" {
		t.Fatalf("panic bundle trigger = %s/%s", b.Manifest.Reason, b.Manifest.Detail)
	}
	if !strings.Contains(b.PanicValue, "injected") {
		t.Fatalf("panic value %q does not carry the payload", b.PanicValue)
	}
	if !strings.HasPrefix(b.PanicGoroutine, "goroutine ") {
		t.Fatalf("bundle does not name the panicking goroutine: %q", b.PanicGoroutine)
	}
}

// TestCapturePanicNilCapturerStillRepanics: the disarmed hook must not
// swallow panics.
func TestCapturePanicNilCapturerStillRepanics(t *testing.T) {
	var c *Capturer
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		defer c.CapturePanic("nowhere")
		panic("still visible")
	}()
	if recovered != "still visible" {
		t.Fatalf("nil capturer altered the panic: %v", recovered)
	}
}

// TestWriteBundleConcurrent races bundle capture against live emission
// and subscriber churn on the full tracer→bus→recorder chain — the
// exact interleaving a watchdog firing mid-solve produces. Run under
// -race; every captured bundle must still validate.
func TestWriteBundleConcurrent(t *testing.T) {
	rec := NewRecorder(nil, 32)
	reg := NewRegistry()
	bus := NewBus(rec, reg)
	c := &Capturer{Dir: t.TempDir(), Recorder: rec, Registry: reg}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // emitter
		defer wg.Done()
		for seq := int64(1); ; seq++ {
			select {
			case <-stop:
				return
			default:
				bus.Emit(mkEvent(seq))
			}
		}
	}()
	wg.Add(1)
	go func() { // subscriber churn
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				ch, cancel := bus.Subscribe()
				select {
				case <-ch:
				default:
				}
				cancel()
			}
		}
	}()

	var dirs []string
	for i := 0; i < 10; i++ {
		dir, err := c.WriteBundle("stall", fmt.Sprintf("concurrent capture %d", i))
		if err != nil {
			t.Fatal(err)
		}
		dirs = append(dirs, dir)
	}
	close(stop)
	wg.Wait()
	if err := bus.Close(); err != nil {
		t.Fatal(err)
	}
	// A final capture after Close: the recorder ring must survive the
	// telemetry teardown.
	dir, err := c.WriteBundle("error", "post-close capture")
	if err != nil {
		t.Fatal(err)
	}
	dirs = append(dirs, dir)

	for _, dir := range dirs {
		if _, err := ReadBundle(dir); err != nil {
			t.Errorf("bundle %s failed validation: %v", dir, err)
		}
	}
}
