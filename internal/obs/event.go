// Package obs is the observability layer of the solver stack: a
// structured event tracer, a metrics registry, and the trace codec the
// cmd/ugtrace analysis tool reads. The design constraint throughout is
// determinism safety — the paper's parallel framework supports replayable
// runs, so nothing in this package may feed wall-clock time back into
// solver decisions. Events carry a *logical* timestamp (the coordinator
// loop tick, or the node count in a sequential solve) as their ordering
// key; wall time is recorded as an informational payload field only.
//
// Everything is nil-safe: a nil *Tracer, *Registry, *Counter, *Gauge or
// *Histogram is the disabled implementation, and every operation on it
// is an allocation-free no-op. Instrumented code therefore carries plain
// pointer fields that default to "off" with zero configuration.
package obs

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind names one event type. The set mirrors the signals the paper's
// tables and figures are computed from; cmd/ugtrace groups events by
// these strings, so additions are backward compatible but renames are a
// trace-schema break.
const (
	// KindRunStart opens a trace: Open = number of ParaSolvers.
	KindRunStart = "run.start"
	// KindRunEnd closes a trace: Dual/Primal = final bounds, Nodes = total.
	KindRunEnd = "run.end"
	// KindRunStop marks the coordinator beginning a limit-triggered stop.
	KindRunStop = "run.stop"
	// KindDispatch is a subproblem transfer LC → ParaSolver: Rank, Sub,
	// Dual = subproblem bound, Str = settings name during racing.
	KindDispatch = "dispatch"
	// KindOutcome is a ParaSolver finishing a subproblem: Rank, Nodes,
	// Open = open nodes abandoned, Str = "completed"/"interrupted".
	KindOutcome = "outcome"
	// KindStatus is a periodic ParaSolver status report as received by the
	// coordinator: Rank, Dual = local bound, Open, Nodes.
	KindStatus = "status"
	// KindIncumbent is a new global incumbent: Rank = finder, Primal.
	KindIncumbent = "incumbent"
	// KindDualBound is a change of the global dual bound: Dual, Primal.
	KindDualBound = "dual"
	// KindCollectStart/Stop bracket a collect-mode interval: Open = pool depth.
	KindCollectStart = "collect.start"
	// KindCollectStop ends a collect-mode interval: Open = pool depth.
	KindCollectStop = "collect.stop"
	// KindCollectNode is a node shipped ParaSolver → LC: Rank, Sub, Dual.
	KindCollectNode = "collect.node"
	// KindRacingStart opens the racing ramp-up: Open = ladder length.
	KindRacingStart = "racing.start"
	// KindRacingWinner declares the racing winner: Rank, Sub = settings
	// index, Str = settings name.
	KindRacingWinner = "racing.winner"
	// KindRacingDone marks the end of the racing wind-up phase.
	KindRacingDone = "racing.done"
	// KindCkptSave is a checkpoint write: Open = primitive nodes saved,
	// Str = error text when the save failed.
	KindCkptSave = "ckpt.save"
	// KindCkptRestore is a restart from a checkpoint: Open = nodes restored.
	KindCkptRestore = "ckpt.restore"
	// KindSolverBusy marks a ParaSolver leaving the idle set: Rank.
	KindSolverBusy = "solver.busy"
	// KindSolverIdle marks a ParaSolver entering the idle set: Rank.
	KindSolverIdle = "solver.idle"
	// KindWorkerShip is emitted ParaSolver-side when a node is shipped:
	// Rank, Dual = shipped node's bound, Open = its depth.
	KindWorkerShip = "worker.ship"
	// KindWorkerSol is emitted ParaSolver-side on reporting a solution:
	// Rank, Primal.
	KindWorkerSol = "worker.sol"
	// KindScipNode is a sequential-solver node event (tick = node count):
	// Sub = node ID, Dual = node bound, Open = open nodes after the pop.
	KindScipNode = "scip.node"
	// KindCommConnect is a distributed-transport peer joining the roster:
	// Rank = peer, Open = roster size, Str = remote address.
	KindCommConnect = "comm.connect"
	// KindCommRetry is a failed dial attempt being retried: Rank = dialing
	// worker, Open = attempt number, Str = error text.
	KindCommRetry = "comm.retry"
	// KindCommHeartbeat is a heartbeat frame sent to a peer: Rank = peer.
	KindCommHeartbeat = "comm.heartbeat"
	// KindCommPeerDown is an ungraceful loss of a remote peer: Rank = lost
	// rank, Str = cause.
	KindCommPeerDown = "comm.peerdown"
	// KindWatchdogStall is the stall watchdog firing after a quiet window
	// with no progress events: Rank = the rank quiet longest, Open =
	// number of ranks being tracked, Str = per-rank last-activity ticks
	// ("rank1@42 rank2@37"). Emitted only when -watchdog is enabled, so
	// deterministic-replay traces never contain it.
	KindWatchdogStall = "watchdog.stall"
)

// knownKinds is the closed set cmd/ugtrace validates against.
var knownKinds = map[string]bool{
	KindRunStart: true, KindRunEnd: true, KindRunStop: true,
	KindDispatch: true, KindOutcome: true, KindStatus: true,
	KindIncumbent: true, KindDualBound: true,
	KindCollectStart: true, KindCollectStop: true, KindCollectNode: true,
	KindRacingStart: true, KindRacingWinner: true, KindRacingDone: true,
	KindCkptSave: true, KindCkptRestore: true,
	KindSolverBusy: true, KindSolverIdle: true,
	KindWorkerShip: true, KindWorkerSol: true,
	KindScipNode:    true,
	KindCommConnect: true, KindCommRetry: true,
	KindCommHeartbeat: true, KindCommPeerDown: true,
	KindWatchdogStall: true,
}

// KnownKind reports whether kind is part of the trace schema.
func KnownKind(kind string) bool { return knownKinds[kind] }

// Event is one trace record. Seq is a monotonic sequence number assigned
// by the tracer; Tick is the logical timestamp (coordinator loop tick or
// sequential node count) — the only time axis solver-side analyses may
// use. Wall is seconds since the tracer was created, recorded for human
// consumption only: two runs of the same seed are expected to agree on
// every field except Wall.
// In a distributed run every endpoint additionally stamps events with a
// Lamport clock (Clock) and its own rank (Orig); see Tracer.EnableCausal.
// Both are zero — and omitted from the JSON encoding — in single-process
// runs, so enabling the distributed transport never perturbs the
// bit-identical-trace property of sequential and ChannelComm solves.
type Event struct {
	Seq    int64   `json:"seq"`
	Tick   int64   `json:"tick"`
	Wall   float64 `json:"wall"`
	Kind   string  `json:"kind"`
	Rank   int     `json:"rank"`
	Sub    int64   `json:"sub"`
	Dual   float64 `json:"dual"`
	Primal float64 `json:"primal"`
	Open   int     `json:"open"`
	Nodes  int64   `json:"nodes"`
	Clock  int64   `json:"clock,omitempty"`
	Orig   int     `json:"orig,omitempty"`
	Str    string  `json:"str,omitempty"`
}

// infEncoded is the JSON stand-in for ±Inf bounds: encoding/json cannot
// represent infinities, so the codec clamps to ±infEncoded and the
// decoder maps anything at or beyond it back to ±Inf.
const infEncoded = 1e308

// encodeFloat clamps non-finite values into JSON-representable range.
func encodeFloat(x float64) float64 {
	if math.IsInf(x, 1) || x > infEncoded {
		return infEncoded
	}
	if math.IsInf(x, -1) || x < -infEncoded {
		return -infEncoded
	}
	if math.IsNaN(x) {
		return 0
	}
	return x
}

// decodeFloat undoes encodeFloat's clamping.
func decodeFloat(x float64) float64 {
	if x >= infEncoded {
		return math.Inf(1)
	}
	if x <= -infEncoded {
		return math.Inf(-1)
	}
	return x
}

// AppendJSON appends the event as one JSON object (no trailing newline)
// to buf. The field order is fixed so identical events encode to
// identical bytes — the property the trace-determinism tests compare.
func (e Event) AppendJSON(buf []byte) []byte {
	buf = append(buf, `{"seq":`...)
	buf = strconv.AppendInt(buf, e.Seq, 10)
	buf = append(buf, `,"tick":`...)
	buf = strconv.AppendInt(buf, e.Tick, 10)
	buf = append(buf, `,"wall":`...)
	buf = strconv.AppendFloat(buf, encodeFloat(e.Wall), 'g', -1, 64)
	buf = append(buf, `,"kind":`...)
	buf = appendJSONString(buf, e.Kind)
	buf = append(buf, `,"rank":`...)
	buf = strconv.AppendInt(buf, int64(e.Rank), 10)
	buf = append(buf, `,"sub":`...)
	buf = strconv.AppendInt(buf, e.Sub, 10)
	buf = append(buf, `,"dual":`...)
	buf = strconv.AppendFloat(buf, encodeFloat(e.Dual), 'g', -1, 64)
	buf = append(buf, `,"primal":`...)
	buf = strconv.AppendFloat(buf, encodeFloat(e.Primal), 'g', -1, 64)
	buf = append(buf, `,"open":`...)
	buf = strconv.AppendInt(buf, int64(e.Open), 10)
	buf = append(buf, `,"nodes":`...)
	buf = strconv.AppendInt(buf, e.Nodes, 10)
	if e.Clock != 0 {
		buf = append(buf, `,"clock":`...)
		buf = strconv.AppendInt(buf, e.Clock, 10)
	}
	if e.Orig != 0 {
		buf = append(buf, `,"orig":`...)
		buf = strconv.AppendInt(buf, int64(e.Orig), 10)
	}
	if e.Str != "" {
		buf = append(buf, `,"str":`...)
		buf = appendJSONString(buf, e.Str)
	}
	buf = append(buf, '}')
	return buf
}

// appendJSONString appends s as a JSON string literal. Kinds and labels
// are ASCII identifiers in practice; anything else is escaped minimally.
func appendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			buf = append(buf, '\\', c)
		case c < 0x20:
			buf = append(buf, fmt.Sprintf(`\u%04x`, c)...)
		default:
			buf = append(buf, c)
		}
	}
	return append(buf, '"')
}

// ParseLine decodes one JSONL trace line produced by AppendJSON.
func ParseLine(line []byte) (Event, error) {
	var e Event
	if err := unmarshalEvent(line, &e); err != nil {
		return Event{}, err
	}
	e.Dual = decodeFloat(e.Dual)
	e.Primal = decodeFloat(e.Primal)
	return e, nil
}

// unmarshalEvent is a small hand-rolled object scanner for the fixed
// trace schema: it avoids importing encoding/json in the hot validation
// path and rejects syntactically malformed lines loudly.
func unmarshalEvent(line []byte, e *Event) error {
	s := strings.TrimSpace(string(line))
	if len(s) < 2 || s[0] != '{' || s[len(s)-1] != '}' {
		return fmt.Errorf("obs: not a JSON object: %q", s)
	}
	body := s[1 : len(s)-1]
	for len(body) > 0 {
		key, rest, err := scanJSONString(body)
		if err != nil {
			return fmt.Errorf("obs: bad key in %q: %w", s, err)
		}
		if len(rest) == 0 || rest[0] != ':' {
			return fmt.Errorf("obs: missing ':' after %q", key)
		}
		rest = rest[1:]
		var raw string
		if len(rest) > 0 && rest[0] == '"' {
			var err error
			raw, rest, err = scanJSONString(rest)
			if err != nil {
				return fmt.Errorf("obs: bad string value for %q: %w", key, err)
			}
		} else {
			end := strings.IndexByte(rest, ',')
			if end < 0 {
				end = len(rest)
			}
			raw, rest = rest[:end], rest[end:]
		}
		if err := setEventField(e, key, raw); err != nil {
			return err
		}
		if len(rest) > 0 {
			if rest[0] != ',' {
				return fmt.Errorf("obs: expected ',' in %q", s)
			}
			rest = rest[1:]
		}
		body = rest
	}
	return nil
}

// scanJSONString reads a leading JSON string literal and returns its
// unescaped value plus the remaining input.
func scanJSONString(s string) (val, rest string, err error) {
	if len(s) == 0 || s[0] != '"' {
		return "", "", fmt.Errorf("expected string, got %q", s)
	}
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		c := s[i]
		switch c {
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("truncated escape")
			}
			i++
			switch s[i] {
			case '"', '\\', '/':
				b.WriteByte(s[i])
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'u':
				if i+4 >= len(s) {
					return "", "", fmt.Errorf("truncated \\u escape")
				}
				n, err := strconv.ParseUint(s[i+1:i+5], 16, 32)
				if err != nil {
					return "", "", fmt.Errorf("bad \\u escape: %w", err)
				}
				b.WriteRune(rune(n))
				i += 4
			default:
				return "", "", fmt.Errorf("unsupported escape \\%c", s[i])
			}
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(c)
		}
	}
	return "", "", fmt.Errorf("unterminated string")
}

// setEventField assigns one decoded key/value pair. Unknown keys are
// errors: the trace schema is closed, and a typo'd field name should
// fail validation rather than silently decode to zero.
func setEventField(e *Event, key, raw string) error {
	parseI := func() (int64, error) { return strconv.ParseInt(raw, 10, 64) }
	parseF := func() (float64, error) { return strconv.ParseFloat(raw, 64) }
	var err error
	switch key {
	case "seq":
		e.Seq, err = parseI()
	case "tick":
		e.Tick, err = parseI()
	case "wall":
		e.Wall, err = parseF()
	case "kind":
		e.Kind = raw
	case "rank":
		var v int64
		v, err = parseI()
		e.Rank = int(v)
	case "sub":
		e.Sub, err = parseI()
	case "dual":
		e.Dual, err = parseF()
	case "primal":
		e.Primal, err = parseF()
	case "open":
		var v int64
		v, err = parseI()
		e.Open = int(v)
	case "nodes":
		e.Nodes, err = parseI()
	case "clock":
		e.Clock, err = parseI()
	case "orig":
		var v int64
		v, err = parseI()
		e.Orig = int(v)
	case "str":
		e.Str = raw
	default:
		return fmt.Errorf("obs: unknown trace field %q", key)
	}
	if err != nil {
		return fmt.Errorf("obs: field %q: %w", key, err)
	}
	return nil
}
