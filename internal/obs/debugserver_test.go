package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestDebugServerStatuszAndPprof(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("net.tx.frames").Add(42)
	ds, err := StartDebugServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", ds.Addr(), path))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	statusz := get("/statusz")
	if !strings.Contains(statusz, "uptime_seconds") || !strings.Contains(statusz, "net.tx.frames") {
		t.Fatalf("statusz missing expected content:\n%s", statusz)
	}
	if !strings.Contains(get("/debug/pprof/"), "goroutine") {
		t.Fatal("pprof index missing profile listing")
	}
}

func TestDebugServerNilRegistry(t *testing.T) {
	ds, err := StartDebugServer("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	resp, err := http.Get("http://" + ds.Addr() + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("statusz with nil registry: status %d", resp.StatusCode)
	}
}
