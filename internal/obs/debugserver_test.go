package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestDebugServerStatuszAndPprof(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("net.tx.frames").Add(42)
	ds, err := StartDebugServer("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", ds.Addr(), path))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	statusz := get("/statusz")
	if !strings.Contains(statusz, "uptime_seconds") || !strings.Contains(statusz, "net.tx.frames") {
		t.Fatalf("statusz missing expected content:\n%s", statusz)
	}
	if !strings.Contains(get("/debug/pprof/"), "goroutine") {
		t.Fatal("pprof index missing profile listing")
	}
}

func TestDebugServerNilRegistry(t *testing.T) {
	ds, err := StartDebugServer("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	resp, err := http.Get("http://" + ds.Addr() + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("statusz with nil registry: status %d", resp.StatusCode)
	}
}

// TestEventsSSEStream drives the /events endpoint end to end: events
// emitted through a tracer over the bus arrive as well-formed SSE data
// frames that parse back into schema-valid events.
func TestEventsSSEStream(t *testing.T) {
	bus := NewBus(nil, nil)
	tracer := NewTracer(bus)
	ds, err := StartDebugServer("127.0.0.1:0", nil, bus)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	resp, err := http.Get("http://" + ds.Addr() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/events status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			tracer.SetTick(int64(i))
			tracer.Emit(Event{Kind: KindStatus, Rank: 1, Open: i})
			time.Sleep(2 * time.Millisecond)
		}
	}()
	frames, err := readSSEFrames(resp.Body, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, frame := range frames {
		ev, err := ParseLine([]byte(frame))
		if err != nil {
			t.Fatalf("frame is not a schema event: %v (%q)", err, frame)
		}
		if !KnownKind(ev.Kind) {
			t.Fatalf("frame carries unknown kind %q", ev.Kind)
		}
	}
	<-done
}

// TestEventsSSEKindFilter: ?kind= narrows the stream.
func TestEventsSSEKindFilter(t *testing.T) {
	bus := NewBus(nil, nil)
	tracer := NewTracer(bus)
	ds, err := StartDebugServer("127.0.0.1:0", nil, bus)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	resp, err := http.Get("http://" + ds.Addr() + "/events?kind=incumbent")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			tracer.Emit(Event{Kind: KindStatus, Rank: 1})
			tracer.Emit(Event{Kind: KindIncumbent, Rank: 2, Primal: float64(i)})
			time.Sleep(time.Millisecond)
		}
	}()
	frames, err := readSSEFrames(resp.Body, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, frame := range frames {
		ev, err := ParseLine([]byte(frame))
		if err != nil {
			t.Fatal(err)
		}
		if ev.Kind != KindIncumbent {
			t.Fatalf("filtered stream leaked kind %q", ev.Kind)
		}
	}
	<-done
}

// TestEventsSSEHeartbeat: an idle stream still carries keepalive
// comments at the configured interval.
func TestEventsSSEHeartbeat(t *testing.T) {
	bus := NewBus(nil, nil)
	ds, err := StartDebugServer("127.0.0.1:0", nil, bus)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	resp, err := http.Get("http://" + ds.Addr() + "/events?heartbeat=20ms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	deadline := time.Now().Add(5 * time.Second)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), ": keepalive") {
			return
		}
		if time.Now().After(deadline) {
			break
		}
	}
	t.Fatal("no keepalive comment on an idle stream")
}

// TestEventsSSENoBus: without a bus the endpoint answers 503 with a
// hint, not a hang.
func TestEventsSSENoBus(t *testing.T) {
	ds, err := StartDebugServer("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	resp, err := http.Get("http://" + ds.Addr() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/events without bus: status %d, want 503", resp.StatusCode)
	}
}

// TestEventsSSESubscriberCap: past maxSSESubscribers the endpoint sheds
// load with 503 instead of growing without bound.
func TestEventsSSESubscriberCap(t *testing.T) {
	bus := NewBus(nil, nil)
	ds, err := StartDebugServer("127.0.0.1:0", nil, bus)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	ds.sseActive.Store(maxSSESubscribers) // saturate without opening real streams
	resp, err := http.Get("http://" + ds.Addr() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-cap subscribe: status %d, want 503", resp.StatusCode)
	}
	ds.sseActive.Store(0)
}

// TestDebugServerCloseEndsSSE: Close must terminate an active stream
// promptly (the satellite hardening), not leave the client hanging.
func TestDebugServerCloseEndsSSE(t *testing.T) {
	bus := NewBus(nil, nil)
	ds, err := StartDebugServer("127.0.0.1:0", nil, bus)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + ds.Addr() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	readDone := make(chan error, 1)
	go func() {
		_, err := io.Copy(io.Discard, resp.Body)
		readDone <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the stream establish
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-readDone: // EOF or reset — either means the stream ended
	case <-time.After(5 * time.Second):
		t.Fatal("SSE stream survived server Close")
	}
}
