package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestWatchdogNilSafety(t *testing.T) {
	if wd := StartWatchdog(WatchdogConfig{}); wd != nil {
		t.Fatal("nil bus must disable the watchdog")
	}
	if wd := StartWatchdog(WatchdogConfig{Bus: NewBus(nil, nil)}); wd != nil {
		t.Fatal("zero quiet window must disable the watchdog")
	}
	var wd *Watchdog
	wd.Stop() // must not panic
	if wd.Fires() != 0 {
		t.Fatal("nil watchdog reports fires")
	}
}

// TestWatchdogFiresOnStallAndWritesDump drives the full loop: progress
// holds the watchdog off, silence makes it fire, the stall event lands
// in the trace with per-rank last-activity in the payload, and the
// goroutine dump appears on disk.
func TestWatchdogFiresOnStallAndWritesDump(t *testing.T) {
	sink := &MemSink{}
	bus := NewBus(sink, nil)
	tracer := NewTracer(bus)
	dump := filepath.Join(t.TempDir(), "trace.jsonl.stall-goroutines")

	stalled := make(chan Event, 8)
	wd := StartWatchdog(WatchdogConfig{
		Bus: bus, Tracer: tracer, Quiet: 150 * time.Millisecond, DumpPath: dump,
		OnStall: func(ev Event) { stalled <- ev },
	})
	defer wd.Stop()

	// Keep emitting progress for a full quiet window: must not fire.
	for i := 0; i < 6; i++ {
		tracer.SetTick(int64(10 + i))
		tracer.Emit(Event{Kind: KindStatus, Rank: 1 + i%2})
		time.Sleep(30 * time.Millisecond)
	}
	if n := wd.Fires(); n != 0 {
		t.Fatalf("watchdog fired %d time(s) during steady progress", n)
	}

	// Go quiet: it must fire within ~1.25 windows (poll granularity).
	var ev Event
	select {
	case ev = <-stalled:
	case <-time.After(2 * time.Second):
		t.Fatal("watchdog never fired after silence")
	}
	if ev.Kind != KindWatchdogStall {
		t.Fatalf("stall event kind %q", ev.Kind)
	}
	if ev.Open != 2 {
		t.Fatalf("stall event tracks %d ranks, want 2 (payload %+v)", ev.Open, ev)
	}
	if !strings.Contains(ev.Str, "rank1@") || !strings.Contains(ev.Str, "rank2@") {
		t.Fatalf("stall summary missing per-rank ticks: %q", ev.Str)
	}

	// The event must be in the trace stream, fully stamped.
	found := false
	for _, e := range sink.Events() {
		if e.Kind == KindWatchdogStall {
			found = true
			if e.Seq == 0 {
				t.Fatal("stall event missing tracer seq stamp")
			}
		}
	}
	if !found {
		t.Fatal("watchdog.stall not in the trace sink")
	}

	// Goroutine dump written next to the trace, containing this test's
	// own stack (proof it is a real full dump, not an empty file).
	data, err := os.ReadFile(dump)
	if err != nil {
		t.Fatalf("goroutine dump not written: %v", err)
	}
	if !strings.Contains(string(data), "goroutine") {
		t.Fatalf("dump does not look like a goroutine profile (%d bytes)", len(data))
	}
}

// TestWatchdogTracerlessPublishes: with no tracer the stall event still
// reaches live bus subscribers (the SSE path) but never the sink.
func TestWatchdogTracerlessPublishes(t *testing.T) {
	sink := &MemSink{}
	bus := NewBus(sink, nil)
	ch, cancel := bus.Subscribe(KindWatchdogStall)
	defer cancel()
	wd := StartWatchdog(WatchdogConfig{Bus: bus, Quiet: 60 * time.Millisecond})
	defer wd.Stop()

	select {
	case ev := <-ch:
		if ev.Kind != KindWatchdogStall || ev.Str != "no progress events observed" {
			t.Fatalf("unexpected stall event %+v", ev)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("tracer-less watchdog never published a stall")
	}
	for _, e := range sink.Events() {
		if e.Kind == KindWatchdogStall {
			t.Fatal("tracer-less stall leaked into the sink")
		}
	}
}

// TestWatchdogRefireThrottled: a persistent stall fires roughly once per
// quiet window, not once per poll tick.
func TestWatchdogRefireThrottled(t *testing.T) {
	bus := NewBus(nil, nil)
	wd := StartWatchdog(WatchdogConfig{Bus: bus, Quiet: 100 * time.Millisecond})
	time.Sleep(450 * time.Millisecond)
	wd.Stop()
	// Windows elapsed: ~4.5 → at most ~4 firings; poll ticks: ~18.
	if n := wd.Fires(); n < 1 || n > 5 {
		t.Fatalf("fires = %d over ~4.5 quiet windows, want 1..5", n)
	}
}

// TestWatchdogStallIsKnownKind keeps the schema and the validator in
// agreement for the new kind.
func TestWatchdogStallIsKnownKind(t *testing.T) {
	if !KnownKind(KindWatchdogStall) {
		t.Fatal("watchdog.stall not in knownKinds")
	}
	line := Event{Seq: 3, Tick: 9, Kind: KindWatchdogStall, Rank: 2, Open: 2, Str: "rank1@4 rank2@9"}.AppendJSON(nil)
	ev, err := ParseLine(line)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Str != "rank1@4 rank2@9" || ev.Open != 2 {
		t.Fatalf("round-trip lost payload: %+v", ev)
	}
}
