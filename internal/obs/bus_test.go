package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestBusTeePreservesSinkStream pins the tee contract: with a bus in
// front of a sink, the sink sees exactly the events it would without
// the bus, in the same order, regardless of subscriber behavior.
func TestBusTeePreservesSinkStream(t *testing.T) {
	direct := &MemSink{}
	dt := NewTracer(direct)
	teed := &MemSink{}
	bus := NewBus(teed, nil)
	bt := NewTracer(bus)
	// A subscriber that never reads must not perturb the sink stream.
	_, cancel := bus.Subscribe()
	defer cancel()

	for i := 0; i < 100; i++ {
		ev := Event{Kind: KindDispatch, Rank: 1 + i%3, Sub: int64(i)}
		dt.Emit(ev)
		bt.Emit(ev)
	}
	a, b := direct.Events(), teed.Events()
	if len(a) != len(b) {
		t.Fatalf("teed sink has %d events, direct %d", len(b), len(a))
	}
	for i := range a {
		// Wall differs between the two tracers; everything else must not.
		a[i].Wall, b[i].Wall = 0, 0
		if a[i] != b[i] {
			t.Fatalf("event %d: teed %+v != direct %+v", i, b[i], a[i])
		}
	}
}

func TestBusSubscribeKindFilter(t *testing.T) {
	bus := NewBus(nil, nil)
	ch, cancel := bus.Subscribe(KindIncumbent)
	defer cancel()
	bus.Emit(Event{Kind: KindDispatch, Rank: 1})
	bus.Emit(Event{Kind: KindIncumbent, Rank: 2, Primal: 7})
	bus.Emit(Event{Kind: KindStatus, Rank: 1})
	select {
	case ev := <-ch:
		if ev.Kind != KindIncumbent || ev.Primal != 7 {
			t.Fatalf("got %+v, want the incumbent event", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("filtered event never delivered")
	}
	select {
	case ev := <-ch:
		t.Fatalf("unexpected extra delivery: %+v", ev)
	case <-time.After(20 * time.Millisecond):
	}
}

// TestBusEmitNeverBlocksAndDropsAccount is the backpressure contract,
// run under -race in CI: a subscriber that stalls completely must not
// slow Emit (beyond a bounded ring append), the oldest events must be
// dropped first, and delivered + dropped must account for every matched
// emission.
func TestBusEmitNeverBlocksAndDropsAccount(t *testing.T) {
	bus := NewBus(nil, NewRegistry())
	ch, cancel := bus.Subscribe()
	defer cancel()

	const total = 10 * busRingCap
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			bus.Emit(Event{Kind: KindStatus, Sub: int64(i)})
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Emit blocked on a stalled subscriber")
	}

	// All emits returned. The subscriber never read, so nearly everything
	// beyond the ring (plus at most one event parked in the pump's send)
	// must have been dropped — and now the backlog must drain completely.
	var got []Event
	deadline := time.After(10 * time.Second)
	dropped := bus.Dropped()
	want := int64(total) - dropped
	for int64(len(got)) < want {
		select {
		case ev := <-ch:
			got = append(got, ev)
		case <-deadline:
			t.Fatalf("backlog stalled: delivered %d, want %d (dropped %d)", len(got), want, dropped)
		}
	}
	if d := bus.Dropped(); d != dropped {
		t.Fatalf("drops changed after emission finished: %d -> %d", dropped, d)
	}
	if dropped == 0 {
		t.Fatalf("no drops recorded for a stalled subscriber over %d events", total)
	}
	// Oldest-first drop order: apart from at most one early event the
	// pump had already pulled and parked in its blocked send, the
	// delivered window must be contiguous and end with the last emitted
	// event.
	gaps := 0
	for i := 1; i < len(got); i++ {
		if got[i].Sub != got[i-1].Sub+1 {
			gaps++
			if gaps > 1 || i != 1 {
				t.Fatalf("delivery gap inside retained window: %d then %d", got[i-1].Sub, got[i].Sub)
			}
		}
	}
	if last := got[len(got)-1].Sub; last != total-1 {
		t.Fatalf("last delivered event %d, want %d (newest must survive)", last, total-1)
	}
	select {
	case ev, ok := <-ch:
		if ok {
			t.Fatalf("extra event beyond accounting: %+v", ev)
		}
	case <-time.After(20 * time.Millisecond):
	}
}

// TestBusConcurrentEmitSubscribe hammers the bus from many emitters
// while subscribers come and go; meaningful only under -race.
func TestBusConcurrentEmitSubscribe(t *testing.T) {
	bus := NewBus(&MemSink{}, NewRegistry())
	var wg sync.WaitGroup
	for e := 0; e < 4; e++ {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				bus.Emit(Event{Kind: KindStatus, Rank: e, Sub: int64(i)})
			}
		}(e)
	}
	for s := 0; s < 8; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ch, cancel := bus.Subscribe(KindStatus)
			for i := 0; i < 50; i++ {
				select {
				case <-ch:
				case <-time.After(time.Millisecond):
				}
			}
			cancel()
			for range ch { // drain until close so cancel is exercised mid-flight
			}
		}()
	}
	wg.Wait()
	if err := bus.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBusCloseEndsSubscribersAndClosesSink(t *testing.T) {
	sink := &MemSink{}
	bus := NewBus(sink, nil)
	ch, _ := bus.Subscribe()
	bus.Emit(Event{Kind: KindRunStart})
	if err := bus.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				goto closed
			}
		case <-deadline:
			t.Fatal("subscriber channel not closed by Bus.Close")
		}
	}
closed:
	if _, cancel := bus.Subscribe(); cancel == nil {
		t.Fatal("Subscribe after Close returned nil cancel")
	} else {
		cancel()
	}
	if n := len(sink.Events()); n != 1 {
		t.Fatalf("sink saw %d events, want 1", n)
	}
}

func TestBusUnsubscribeIdempotentAndUnblocks(t *testing.T) {
	bus := NewBus(nil, nil)
	ch, cancel := bus.Subscribe()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for range ch {
		}
	}()
	for i := 0; i < 10; i++ {
		bus.Emit(Event{Kind: KindStatus, Sub: int64(i)})
	}
	cancel()
	cancel() // idempotent
	wg.Wait()
	if bus.Subscribers() != 0 {
		t.Fatalf("%d subscribers after cancel", bus.Subscribers())
	}
	bus.Emit(Event{Kind: KindStatus}) // must not panic or deliver
}

// TestBusPublishReachesSubscribersNotSink pins the watchdog's no-tracer
// path: Publish fans out live but never writes to the trace sink.
func TestBusPublishReachesSubscribersNotSink(t *testing.T) {
	sink := &MemSink{}
	bus := NewBus(sink, nil)
	ch, cancel := bus.Subscribe(KindWatchdogStall)
	defer cancel()
	bus.Publish(Event{Kind: KindWatchdogStall, Str: "rank1@5"})
	select {
	case ev := <-ch:
		if ev.Str != "rank1@5" {
			t.Fatalf("got %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("published event never delivered")
	}
	if n := len(sink.Events()); n != 0 {
		t.Fatalf("Publish leaked %d events into the sink", n)
	}
}

// TestBusRegistryDropCounter checks the aggregate obs.bus.dropped
// counter matches the bus's own accounting.
func TestBusRegistryDropCounter(t *testing.T) {
	reg := NewRegistry()
	bus := NewBus(nil, reg)
	_, cancel := bus.Subscribe()
	defer cancel()
	for i := 0; i < 3*busRingCap; i++ {
		bus.Emit(Event{Kind: KindStatus, Sub: int64(i)})
	}
	if got, want := reg.Counter("obs.bus.dropped").Value(), bus.Dropped(); got != want || got == 0 {
		t.Fatalf("registry counter %d, bus accounting %d (want equal and nonzero)", got, want)
	}
}

// ExampleBus shows the subscriber API the SSE endpoint and the watchdog
// are built on.
func ExampleBus() {
	bus := NewBus(nil, nil)
	ch, cancel := bus.Subscribe(KindIncumbent)
	bus.Emit(Event{Kind: KindIncumbent, Rank: 2, Primal: 41})
	ev := <-ch
	fmt.Printf("rank %d found %g\n", ev.Rank, ev.Primal)
	cancel()
	// Output: rank 2 found 41
}
