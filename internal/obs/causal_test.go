package obs

import (
	"math"
	"strings"
	"testing"
)

func TestEnableCausalStampsEvents(t *testing.T) {
	sink := &MemSink{}
	tr := NewTracer(sink)
	tr.Emit(Event{Kind: KindRunStart})
	tr.EnableCausal(3)
	tr.Emit(Event{Kind: KindDispatch, Rank: 1})
	tr.Emit(Event{Kind: KindOutcome, Rank: 1})
	evs := sink.Events()
	if evs[0].Clock != 0 || evs[0].Orig != 0 {
		t.Fatalf("pre-causal event stamped: %+v", evs[0])
	}
	if evs[1].Clock != 1 || evs[1].Orig != 3 {
		t.Fatalf("first causal event: %+v", evs[1])
	}
	if evs[2].Clock != 2 || evs[2].Orig != 3 {
		t.Fatalf("second causal event: %+v", evs[2])
	}
}

func TestClockSendRecvLamportRules(t *testing.T) {
	tr := NewTracer(&MemSink{})
	tr.EnableCausal(1)
	if c := tr.ClockSend(); c != 1 {
		t.Fatalf("first send clock %d", c)
	}
	// A receive advances the local clock to max(local, remote).
	tr.ClockRecv(10)
	if c := tr.ClockSend(); c != 11 {
		t.Fatalf("send after recv(10): clock %d", c)
	}
	// A stale remote clock (behind the local one) is ignored.
	tr.ClockRecv(3)
	if c := tr.ClockSend(); c != 12 {
		t.Fatalf("send after stale recv: clock %d", c)
	}
	// Zero remote clock (pre-causal peer or v1 frame) is ignored too.
	tr.ClockRecv(0)
	if c := tr.ClockSend(); c != 13 {
		t.Fatalf("send after recv(0): clock %d", c)
	}
}

func TestCausalNilAndDisabledNoops(t *testing.T) {
	var tr *Tracer
	tr.EnableCausal(1)
	tr.ClockRecv(5)
	if c := tr.ClockSend(); c != 0 {
		t.Fatalf("nil tracer send clock %d", c)
	}
	live := NewTracer(&MemSink{})
	if c := live.ClockSend(); c != 0 {
		t.Fatalf("non-causal tracer send clock %d", c)
	}
}

func TestEventJSONClockOrigRoundTrip(t *testing.T) {
	ev := Event{Seq: 2, Tick: 5, Wall: 0.5, Kind: KindWorkerShip, Rank: 2, Dual: -3, Clock: 41, Orig: 2}
	line := ev.AppendJSON(nil)
	got, err := ParseLine(line)
	if err != nil {
		t.Fatalf("parse %s: %v", line, err)
	}
	if got != ev {
		t.Fatalf("roundtrip mismatch:\n in: %+v\nout: %+v", ev, got)
	}
}

func TestEventJSONOmitsZeroClock(t *testing.T) {
	// Single-process events must encode exactly as before the causal
	// fields existed — the bit-identical-trace property depends on it.
	line := string(Event{Seq: 1, Tick: 2, Kind: KindDispatch, Rank: 1}.AppendJSON(nil))
	if strings.Contains(line, "clock") || strings.Contains(line, "orig") {
		t.Fatalf("zero clock/orig encoded: %s", line)
	}
}

func TestReadTraceDetectsTruncation(t *testing.T) {
	a := Event{Kind: KindRunStart}.AppendJSON(nil)
	b := Event{Seq: 1, Tick: 1, Kind: KindRunEnd}.AppendJSON(nil)
	whole := string(a) + "\n" + string(b) + "\n"

	evs, err := ReadTrace(strings.NewReader(whole))
	if err != nil || len(evs) != 2 {
		t.Fatalf("clean trace: %d events, err %v", len(evs), err)
	}
	// Cut the file mid-record, as a killed process leaves it.
	cut := whole[:len(whole)-8]
	evs, err = ReadTrace(strings.NewReader(cut))
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncated trace not detected: err %v", err)
	}
	if len(evs) != 1 {
		t.Fatalf("complete prefix not returned: %d events", len(evs))
	}
}

func TestValidateTraceOutcomeNeedsDispatch(t *testing.T) {
	tr := []Event{
		{Seq: 0, Kind: KindRunStart},
		{Seq: 1, Tick: 1, Kind: KindOutcome, Rank: 1},
		{Seq: 2, Tick: 2, Kind: KindRunEnd},
	}
	if err := ValidateTrace(tr); err == nil {
		t.Fatal("outcome without dispatch accepted")
	}
}

func TestHistogramQuantile(t *testing.T) {
	near := func(got, want float64) {
		t.Helper()
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	var nilH *Histogram
	near(nilH.Quantile(0.5), 0)

	reg := NewRegistry()
	h := reg.Histogram("h", []float64{10, 100})
	near(h.Quantile(0.5), 0) // empty

	h.Observe(7)
	h.Observe(50)
	near(h.Quantile(0.50), 10)   // rank 1 fills the first bucket exactly
	near(h.Quantile(0.95), 91)   // interpolated inside (10,100]
	near(h.Quantile(0.99), 98.2) // deeper into the same bucket

	over := reg.Histogram("over", []float64{10})
	over.Observe(20)
	near(over.Quantile(0.5), 10) // overflow bucket saturates at the top bound
}

func TestSnapshotHistogramQuantileKinds(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("empty", []float64{1})
	h := reg.Histogram("full", []float64{1, 2})
	h.Observe(1.5)
	kinds := map[string]bool{}
	for _, m := range reg.Snapshot() {
		kinds[m.Name+"/"+m.Kind] = true
	}
	for _, want := range []string{"full/hist.count", "full/hist.mean", "full/hist.p50", "full/hist.p95", "full/hist.p99"} {
		if !kinds[want] {
			t.Errorf("snapshot missing %s", want)
		}
	}
	for _, absent := range []string{"empty/hist.mean", "empty/hist.p50"} {
		if kinds[absent] {
			t.Errorf("snapshot has %s for an empty histogram", absent)
		}
	}
}
