package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strings"
	"sync"
	"time"
)

// Capturer writes post-mortem forensics bundles: one self-contained
// directory per trigger holding the flight-recorder tail, a metrics
// snapshot, goroutine and heap profiles, and a build/config manifest.
// It is the single capture point every failure edge funnels into —
// panics (CapturePanic), watchdog stalls, coordinator error returns and
// ugserve job failures — so "what do we have on disk after a death?"
// always has the same answer: a bundle ugtrace -postmortem can read.
//
// The nil *Capturer, and any capturer with an empty Dir, is disarmed:
// WriteBundle does nothing and CapturePanic degrades to a plain
// recover-and-rethrow. Instrumented code therefore installs the hooks
// unconditionally.
type Capturer struct {
	// Dir is the parent directory bundles are created under. Empty
	// disarms the capturer.
	Dir string
	// Recorder supplies the recent-event tail (may be nil: the bundle
	// then has an empty events.jsonl).
	Recorder *Recorder
	// Registry supplies the metrics table (may be nil).
	Registry *Registry
	// Extra is merged into the manifest verbatim — the CLIs put the
	// instance name, seed and worker layout here.
	Extra map[string]string

	mu  sync.Mutex
	seq int
}

// Armed reports whether this capturer will actually write bundles.
func (c *Capturer) Armed() bool { return c != nil && c.Dir != "" }

// Manifest is the bundle's machine-readable identity card.
type Manifest struct {
	Reason     string            `json:"reason"` // "panic", "stall", "error", "job-failed", ...
	Detail     string            `json:"detail"` // trigger-specific one-liner
	Time       string            `json:"time"`   // RFC3339Nano, UTC
	PID        int               `json:"pid"`
	Executable string            `json:"executable"`
	Args       []string          `json:"args"`
	GoVersion  string            `json:"go_version"`
	Hostname   string            `json:"hostname"`
	Events     int               `json:"events"` // lines in events.jsonl
	Extra      map[string]string `json:"extra,omitempty"`
}

// Bundle file names. The layout is the contract between the capturer
// and ugtrace -postmortem; DESIGN.md §7.6 documents it.
const (
	bundleManifest   = "manifest.json"
	bundleEvents     = "events.jsonl"
	bundleMetrics    = "metrics.txt"
	bundleGoroutines = "goroutines.txt"
	bundleHeap       = "heap.pprof"
	bundlePanic      = "panic.txt"
)

// WriteBundle captures a forensics bundle for the given trigger reason
// ("stall", "error", "job-failed", ...) and human-readable detail. It
// returns the bundle directory. On a disarmed capturer it returns ""
// with no error, so call sites need no enablement checks.
func (c *Capturer) WriteBundle(reason, detail string) (string, error) {
	return c.write(reason, detail, nil)
}

// CapturePanic is the recover-and-rethrow hook for solve-path
// goroutines: defer it directly (`defer cap.CapturePanic("worker")`) at
// the top of coordinator, worker, scheduler and netcomm pump
// goroutines. On a panic it writes a bundle whose panic.txt names the
// panicking goroutine and carries the full stack, then re-panics with
// the ORIGINAL value so crash semantics — non-zero exit, stack on
// stderr, tests seeing the panic — are unchanged. Safe (and still
// re-panicking) on the nil capturer.
func (c *Capturer) CapturePanic(where string) {
	v := recover()
	if v == nil {
		return
	}
	if c.Armed() {
		info := fmt.Sprintf("panic: %v\n\n%s", v, debug.Stack())
		_, _ = c.write("panic", where, []byte(info)) // best-effort: the re-panic below must happen regardless
	}
	panic(v)
}

// write is the single bundle assembly path. panicInfo, when non-nil, is
// the panic.txt payload (first stack line names the goroutine).
func (c *Capturer) write(reason, detail string, panicInfo []byte) (string, error) {
	if !c.Armed() {
		return "", nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := os.MkdirAll(c.Dir, 0o755); err != nil {
		return "", fmt.Errorf("obs: bundle parent: %w", err)
	}
	pid := os.Getpid()
	var dir string
	for {
		dir = filepath.Join(c.Dir, fmt.Sprintf("%s-pid%d-%d", reason, pid, c.seq))
		c.seq++
		err := os.Mkdir(dir, 0o755)
		if err == nil {
			break
		}
		if !os.IsExist(err) {
			return "", fmt.Errorf("obs: bundle dir: %w", err)
		}
	}

	events := c.Recorder.Events()
	if err := writeEventsFile(filepath.Join(dir, bundleEvents), events); err != nil {
		return dir, err
	}
	if err := writeManifest(filepath.Join(dir, bundleManifest), reason, detail, len(events), c.Extra); err != nil {
		return dir, err
	}
	if err := writeMetricsFile(filepath.Join(dir, bundleMetrics), c.Registry); err != nil {
		return dir, err
	}
	if err := writeProfile(filepath.Join(dir, bundleGoroutines), "goroutine", 2); err != nil {
		return dir, err
	}
	if err := writeProfile(filepath.Join(dir, bundleHeap), "heap", 0); err != nil {
		return dir, err
	}
	if panicInfo != nil {
		if err := os.WriteFile(filepath.Join(dir, bundlePanic), panicInfo, 0o644); err != nil {
			return dir, fmt.Errorf("obs: bundle panic.txt: %w", err)
		}
	}
	fmt.Fprintf(os.Stderr, "obs: forensics bundle written: %s (%s: %s)\n", dir, reason, detail)
	return dir, nil
}

func writeEventsFile(path string, events []Event) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: bundle events: %w", err)
	}
	w := bufio.NewWriter(f)
	var buf []byte
	for _, ev := range events {
		buf = ev.AppendJSON(buf[:0])
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			_ = f.Close()
			return fmt.Errorf("obs: bundle events: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		_ = f.Close()
		return fmt.Errorf("obs: bundle events: %w", err)
	}
	return f.Close()
}

func writeManifest(path, reason, detail string, events int, extra map[string]string) error {
	exe, _ := os.Executable()
	host, _ := os.Hostname()
	m := Manifest{
		Reason:     reason,
		Detail:     detail,
		Time:       time.Now().UTC().Format(time.RFC3339Nano),
		PID:        os.Getpid(),
		Executable: exe,
		Args:       os.Args,
		GoVersion:  runtime.Version(),
		Hostname:   host,
		Events:     events,
		Extra:      extra,
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: bundle manifest: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func writeMetricsFile(path string, reg *Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: bundle metrics: %w", err)
	}
	if err := WriteTable(f, reg.Snapshot()); err != nil {
		_ = f.Close()
		return fmt.Errorf("obs: bundle metrics: %w", err)
	}
	return f.Close()
}

func writeProfile(path, name string, dbg int) error {
	p := pprof.Lookup(name)
	if p == nil {
		return fmt.Errorf("obs: bundle profile %q missing", name)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: bundle %s: %w", name, err)
	}
	if err := p.WriteTo(f, dbg); err != nil {
		_ = f.Close()
		return fmt.Errorf("obs: bundle %s: %w", name, err)
	}
	return f.Close()
}

// Bundle is a parsed, validated forensics bundle.
type Bundle struct {
	Dir      string
	Manifest Manifest
	Events   []Event
	// PanicValue and PanicGoroutine are filled from panic.txt when the
	// bundle was captured by CapturePanic: the panic value line and the
	// "goroutine N [running]" header of the panicking goroutine.
	PanicValue     string
	PanicGoroutine string
}

// ReadBundle loads and validates a forensics bundle directory:
// manifest.json must parse, every events.jsonl line must be a
// schema-valid event of a known kind with contiguous sequence numbers
// and non-decreasing ticks (the recorder window is a contiguous slice
// of the trace, not necessarily starting at seq 0), the event count
// must match the manifest, and goroutines.txt must exist and be
// non-empty. It is the validation ugtrace -postmortem applies.
func ReadBundle(dir string) (*Bundle, error) {
	b := &Bundle{Dir: dir}
	data, err := os.ReadFile(filepath.Join(dir, bundleManifest))
	if err != nil {
		return nil, fmt.Errorf("obs: bundle: %w", err)
	}
	if err := json.Unmarshal(data, &b.Manifest); err != nil {
		return nil, fmt.Errorf("obs: bundle manifest: %w", err)
	}
	if b.Manifest.Reason == "" {
		return nil, fmt.Errorf("obs: bundle manifest: empty reason")
	}

	evData, err := os.ReadFile(filepath.Join(dir, bundleEvents))
	if err != nil {
		return nil, fmt.Errorf("obs: bundle: %w", err)
	}
	lineNo := 0
	for _, line := range strings.Split(string(evData), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		lineNo++
		ev, err := ParseLine([]byte(line))
		if err != nil {
			return nil, fmt.Errorf("obs: bundle events line %d: %w", lineNo, err)
		}
		if !KnownKind(ev.Kind) {
			return nil, fmt.Errorf("obs: bundle events line %d: unknown kind %q", lineNo, ev.Kind)
		}
		if n := len(b.Events); n > 0 {
			if prev := b.Events[n-1]; ev.Seq != prev.Seq+1 {
				return nil, fmt.Errorf("obs: bundle events line %d: seq %d after %d (window must be contiguous)", lineNo, ev.Seq, prev.Seq)
			} else if ev.Tick < prev.Tick {
				return nil, fmt.Errorf("obs: bundle events line %d: tick %d after %d (ticks must not decrease)", lineNo, ev.Tick, prev.Tick)
			}
		}
		b.Events = append(b.Events, ev)
	}
	if len(b.Events) != b.Manifest.Events {
		return nil, fmt.Errorf("obs: bundle: %d events on disk, manifest says %d", len(b.Events), b.Manifest.Events)
	}

	gd, err := os.ReadFile(filepath.Join(dir, bundleGoroutines))
	if err != nil {
		return nil, fmt.Errorf("obs: bundle: %w", err)
	}
	if !strings.Contains(string(gd), "goroutine") {
		return nil, fmt.Errorf("obs: bundle goroutines.txt does not look like a goroutine dump")
	}

	if pd, err := os.ReadFile(filepath.Join(dir, bundlePanic)); err == nil {
		b.PanicValue, b.PanicGoroutine = parsePanicInfo(string(pd))
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("obs: bundle: %w", err)
	}
	return b, nil
}

// parsePanicInfo splits a panic.txt payload ("panic: <value>\n\n<stack>")
// into the panic value and the header line of the panicking goroutine.
func parsePanicInfo(s string) (value, goroutine string) {
	for _, line := range strings.Split(s, "\n") {
		if value == "" && strings.HasPrefix(line, "panic: ") {
			value = strings.TrimPrefix(line, "panic: ")
		}
		if goroutine == "" && strings.HasPrefix(line, "goroutine ") {
			goroutine = strings.TrimSuffix(strings.TrimSpace(line), ":")
		}
		if value != "" && goroutine != "" {
			break
		}
	}
	return value, goroutine
}
