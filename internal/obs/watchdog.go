package obs

import (
	"fmt"
	"os"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"
)

// progressKinds are the event kinds the watchdog treats as evidence the
// solve is moving: work dispatch and completion, periodic worker status,
// incumbent improvements, node shipping, and sequential node pops. Pure
// transport chatter (heartbeats) deliberately does not count — a roster
// that is alive but doing no work is exactly the stall to detect.
var progressKinds = []string{
	KindDispatch, KindOutcome, KindStatus, KindIncumbent,
	KindWorkerShip, KindWorkerSol, KindCollectNode, KindScipNode,
}

// WatchdogConfig configures a stall watchdog.
type WatchdogConfig struct {
	// Bus supplies the live event stream the watchdog observes. Required.
	Bus *Bus
	// Tracer receives the watchdog.stall events so they land in the
	// trace file (and, through the bus, reach live subscribers). May be
	// nil — stall events are then published to bus subscribers only.
	Tracer *Tracer
	// Quiet is the window without any progress event after which the
	// watchdog fires. Required (> 0).
	Quiet time.Duration
	// DumpPath, when non-empty, is the file the watchdog writes a full
	// goroutine dump to when it fires (conventionally next to the trace
	// file: <trace>.stall-goroutines). Overwritten on each firing, so the
	// file always holds the most recent stall's stacks.
	DumpPath string
	// OnStall, when non-nil, is called after each firing with the emitted
	// event — a test and ugserve hook.
	OnStall func(Event)
	// Capture, when armed, upgrades the first firing of each stall
	// episode from a bare goroutine dump into a full forensics bundle
	// (reason "stall", detail naming the stalest rank). Re-fires of a
	// persisting stall keep the periodic event trail but write no
	// further bundles — a long hang must not fill the disk — until
	// progress resumes and a new episode begins. The stall event is
	// emitted through the tracer before the bundle is written, so it is
	// already in the recorder ring and appears as the final event of
	// the bundle's tail.
	Capture *Capturer
}

// Watchdog watches the live event bus for progress and raises
// `watchdog.stall` when a quiet window passes without any. It is pure
// observation layered on the bus: the solve path never blocks on it, it
// feeds nothing back into solver decisions, and it is off unless
// explicitly started (-watchdog), so deterministic-replay runs are
// untouched. Stalls do not stop the run — the watchdog's job is to make
// a wedged or straggling distributed solve *visible* (trace event, SSE
// frame, goroutine dump) while it is still running.
type Watchdog struct {
	cfg    WatchdogConfig
	cancel func()
	done   chan struct{}

	mu     sync.Mutex
	fires  int
	events <-chan Event
}

// StartWatchdog subscribes to the bus and begins watching. It returns
// nil (a safe no-op for Stop) when cfg.Bus is nil or cfg.Quiet <= 0.
func StartWatchdog(cfg WatchdogConfig) *Watchdog {
	if cfg.Bus == nil || cfg.Quiet <= 0 {
		return nil
	}
	events, cancel := cfg.Bus.Subscribe(progressKinds...)
	w := &Watchdog{cfg: cfg, cancel: cancel, done: make(chan struct{}), events: events}
	go w.watch()
	return w
}

// Stop unsubscribes from the bus and waits for the watcher goroutine to
// exit. Safe on a nil watchdog and idempotent is not required — callers
// stop exactly once, when the solve ends.
func (w *Watchdog) Stop() {
	if w == nil {
		return
	}
	w.cancel()
	<-w.done
}

// Fires returns how many times the watchdog has fired.
func (w *Watchdog) Fires() int {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.fires
}

// rankActivity is the last observed progress of one rank.
type rankActivity struct {
	tick int64
	wall time.Time
}

// watch is the watchdog loop: fold progress events into per-rank
// last-activity state, and on every poll tick check whether the global
// quiet window has elapsed. The poll period is a quarter of the window
// so a stall is detected within ~1.25 windows in the worst case.
func (w *Watchdog) watch() {
	defer close(w.done)
	poll := w.cfg.Quiet / 4
	if poll < 10*time.Millisecond {
		poll = 10 * time.Millisecond
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()

	last := map[int]rankActivity{}
	lastAny := time.Now() // arm from start: a run that never progresses still fires
	var lastFire time.Time
	captured := false // one forensics bundle per stall episode
	for {
		select {
		case ev, ok := <-w.events:
			if !ok {
				return // unsubscribed (Stop) or bus closed
			}
			last[ev.Rank] = rankActivity{tick: ev.Tick, wall: time.Now()}
			lastAny = time.Now()
			captured = false // progress resumed: next stall is a new episode
		case <-ticker.C:
			now := time.Now()
			if now.Sub(lastAny) < w.cfg.Quiet {
				continue
			}
			// Re-fire at most once per quiet window while the stall
			// persists, so a long hang leaves a periodic trail rather
			// than one event or a flood.
			if !lastFire.IsZero() && now.Sub(lastFire) < w.cfg.Quiet {
				continue
			}
			lastFire = now
			w.fire(last, now, !captured)
			captured = true
		}
	}
}

// fire emits one watchdog.stall event and writes the goroutine dump;
// firstOfEpisode gates the (heavier) forensics bundle.
func (w *Watchdog) fire(last map[int]rankActivity, now time.Time, firstOfEpisode bool) {
	ranks := make([]int, 0, len(last))
	for r := range last {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	var b strings.Builder
	staleRank, staleSince := 0, time.Duration(-1)
	for i, r := range ranks {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "rank%d@%d", r, last[r].tick)
		if since := now.Sub(last[r].wall); since > staleSince {
			staleRank, staleSince = r, since
		}
	}
	summary := b.String()
	if summary == "" {
		summary = "no progress events observed"
	}
	ev := Event{Kind: KindWatchdogStall, Rank: staleRank, Open: len(ranks), Str: summary}
	if w.cfg.Tracer != nil {
		w.cfg.Tracer.Emit(ev)
	} else {
		w.cfg.Bus.Publish(ev)
	}
	if w.cfg.DumpPath != "" {
		if f, err := os.Create(w.cfg.DumpPath); err == nil {
			_ = pprof.Lookup("goroutine").WriteTo(f, 2)
			_ = f.Close()
		}
	}
	if firstOfEpisode && w.cfg.Capture.Armed() {
		_, _ = w.cfg.Capture.WriteBundle("stall",
			fmt.Sprintf("stalest rank %d quiet %s; %s", staleRank, staleSince.Round(time.Millisecond), summary))
	}
	w.mu.Lock()
	w.fires++
	w.mu.Unlock()
	if w.cfg.OnStall != nil {
		w.cfg.OnStall(ev)
	}
}
