package obs

import (
	"reflect"
	"sort"
	"testing"
)

// TestKnownKindsClosed pins the schema's closed-set property: the kind
// list and the per-kind field table cover exactly the same kinds, and
// KnownKinds returns them sorted in a caller-owned copy.
func TestKnownKindsClosed(t *testing.T) {
	kinds := KnownKinds()
	if !sort.StringsAreSorted(kinds) {
		t.Errorf("KnownKinds not sorted: %v", kinds)
	}
	if len(kinds) != len(knownKinds) {
		t.Fatalf("KnownKinds returned %d kinds, registry has %d", len(kinds), len(knownKinds))
	}
	for _, k := range kinds {
		if !KnownKind(k) {
			t.Errorf("KnownKinds lists %q but KnownKind rejects it", k)
		}
		if KindFields(k) == nil {
			t.Errorf("kind %q has no field table entry", k)
		}
	}
	for k := range kindFields {
		if !KnownKind(k) {
			t.Errorf("field table lists unknown kind %q", k)
		}
	}
	// Mutating the returned slice must not corrupt the schema.
	kinds[0] = "mutated"
	if fresh := KnownKinds(); fresh[0] == "mutated" {
		t.Error("KnownKinds returns a shared slice")
	}
}

// TestKindFieldsAreEventFields checks every allowed field actually
// exists on Event and is never one of the stamped fields (Seq/Tick/Wall
// belong to the tracer, Clock/Orig to the causal decorator).
func TestKindFieldsAreEventFields(t *testing.T) {
	ev := reflect.TypeOf(Event{})
	stamped := map[string]bool{"Seq": true, "Tick": true, "Wall": true, "Clock": true, "Orig": true}
	for _, k := range KnownKinds() {
		for _, f := range KindFields(k) {
			if _, ok := ev.FieldByName(f); !ok {
				t.Errorf("kind %q allows field %s, which Event does not have", k, f)
			}
			if stamped[f] {
				t.Errorf("kind %q allows stamped field %s", k, f)
			}
			if f == "Kind" {
				t.Errorf("kind %q lists Kind as a payload field", k)
			}
		}
	}
}

// TestKindAllowsField covers the membership predicate, including the
// unknown-kind and copy semantics.
func TestKindAllowsField(t *testing.T) {
	if !KindAllowsField(KindRunEnd, "Dual") {
		t.Error("run.end must allow Dual")
	}
	if KindAllowsField(KindRunEnd, "Str") {
		t.Error("run.end must not allow Str")
	}
	if KindAllowsField("no.such.kind", "Rank") {
		t.Error("unknown kinds must allow nothing")
	}
	if KindFields("no.such.kind") != nil {
		t.Error("KindFields on an unknown kind must be nil")
	}
	fs := KindFields(KindDispatch)
	if !sort.StringsAreSorted(fs) {
		t.Errorf("KindFields not sorted: %v", fs)
	}
	fs[0] = "mutated"
	if fresh := KindFields(KindDispatch); fresh[0] == "mutated" {
		t.Error("KindFields returns a shared slice")
	}
}
