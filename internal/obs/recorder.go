package obs

import "sync"

// recorderDefaultCap is the ring size used when NewRecorder is given a
// non-positive capacity. 512 events is roughly the last few collect
// rounds of a busy solve — enough context to see what the run was doing
// when it died, small enough (~50 KiB) to keep resident in every
// process unconditionally.
const recorderDefaultCap = 512

// Recorder is the black-box flight recorder: a Sink that forwards every
// event to its downstream sink unchanged (so trace bytes stay identical
// whether or not a recorder is in the chain) and retains the last N
// events in a fixed-size ring. Unlike the Bus — which only serves *live*
// subscribers — the ring stays readable after Close, so a post-mortem
// capturer can still ask "what were the final events?" after the solve
// path has torn its telemetry down.
//
// It is always-on by design: the CLIs install one even when -trace is
// off (downstream sink nil), so a panic or stall in an uninstrumented
// run still leaves an event history for the forensics bundle.
//
// The nil *Recorder is the disabled recorder; all methods are no-ops.
type Recorder struct {
	sink Sink // optional downstream (file) sink; may be nil

	// mu guards the ring only. Tracer-borne Emit calls are already
	// serialized by the tracer's lock, but WriteBundle snapshots the
	// ring from an arbitrary goroutine mid-emission, so ring access
	// needs its own (short, uncontended) critical section.
	mu    sync.Mutex
	ring  []Event
	start int // index of oldest retained event
	n     int // retained event count
}

// NewRecorder creates a flight recorder retaining the last capacity
// events, teeing into sink (may be nil for a record-only chain end).
// capacity <= 0 selects the default.
func NewRecorder(sink Sink, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = recorderDefaultCap
	}
	return &Recorder{sink: sink, ring: make([]Event, capacity)}
}

// Emit implements Sink: forward downstream first (the file sink sees
// exactly the byte stream it would without a recorder), then overwrite
// the oldest ring slot. The ring is preallocated and events are plain
// value copies, so steady-state emission allocates nothing.
//
//ugo:hotpath flight recorder on the trace path: one downstream call plus a struct copy into a preallocated ring under a short uncontended mutex
func (r *Recorder) Emit(ev Event) {
	if r == nil {
		return
	}
	if r.sink != nil {
		r.sink.Emit(ev)
	}
	r.mu.Lock()
	if r.n == len(r.ring) {
		r.ring[r.start] = ev
		r.start = (r.start + 1) % len(r.ring)
	} else {
		r.ring[(r.start+r.n)%len(r.ring)] = ev
		r.n++
	}
	r.mu.Unlock()
}

// Close implements Sink: it closes the downstream sink but deliberately
// keeps the ring readable — post-mortem capture for a failed ugserve job
// or an ug.Outcome error path runs after the tracer is closed.
func (r *Recorder) Close() error {
	if r == nil || r.sink == nil {
		return nil
	}
	return r.sink.Close()
}

// Events returns the retained events, oldest first. The returned slice
// is a snapshot; later emissions do not mutate it.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.ring[(r.start+i)%len(r.ring)]
	}
	return out
}

// Len returns the number of retained events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}
