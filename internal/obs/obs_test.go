package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestEventJSONRoundTrip(t *testing.T) {
	evs := []Event{
		{Seq: 0, Tick: 0, Wall: 0, Kind: KindRunStart, Open: 4},
		{Seq: 1, Tick: 3, Wall: 0.25, Kind: KindDispatch, Rank: 2, Sub: 17, Dual: -12.5},
		{Seq: 2, Tick: 3, Wall: 0.5, Kind: KindDualBound, Dual: math.Inf(-1), Primal: math.Inf(1)},
		{Seq: 3, Tick: 9, Wall: 1.5, Kind: KindRacingWinner, Rank: 1, Sub: 2, Str: `agg "fast"\path`},
		{Seq: 4, Tick: 12, Wall: 2, Kind: KindRunEnd, Dual: 41, Primal: 41, Nodes: 1234},
	}
	for _, ev := range evs {
		line := ev.AppendJSON(nil)
		got, err := ParseLine(line)
		if err != nil {
			t.Fatalf("parse %s: %v", line, err)
		}
		if got != ev {
			t.Fatalf("roundtrip mismatch:\n in: %+v\nout: %+v\nline: %s", ev, got, line)
		}
	}
}

func TestEventEncodingDeterministic(t *testing.T) {
	ev := Event{Seq: 5, Tick: 7, Wall: 0.125, Kind: KindStatus, Rank: 3, Dual: 1.0 / 3.0, Open: 9}
	a := ev.AppendJSON(nil)
	b := ev.AppendJSON(nil)
	if !bytes.Equal(a, b) {
		t.Fatalf("same event encoded differently:\n%s\n%s", a, b)
	}
}

func TestParseLineRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"",
		"not json",
		`{"seq":1`,
		`{"seq":"x","tick":0}`,
		`{"mystery":1}`,
	} {
		if _, err := ParseLine([]byte(bad)); err == nil {
			t.Errorf("ParseLine(%q) accepted malformed input", bad)
		}
	}
}

func TestDisabledTracerNoAllocs(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		tr.SetTick(5)
		tr.Emit(Event{Kind: KindStatus, Rank: 1, Dual: -3.5, Open: 2, Nodes: 99})
		if tr.Enabled() {
			t.Fatal("nil tracer claims enabled")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocates: %v allocs/op", allocs)
	}
}

func TestDisabledMetricsNoAllocs(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x")
	g := reg.Gauge("y")
	h := reg.Histogram("z", []float64{1, 2})
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(7)
		g.Add(-1)
		h.Observe(1.5)
	})
	if allocs != 0 {
		t.Fatalf("disabled metrics allocate: %v allocs/op", allocs)
	}
	if c.Value() != 0 || g.Value() != 0 || g.HighWater() != 0 || h.Count() != 0 {
		t.Fatal("disabled metrics recorded values")
	}
}

func TestTracerSeqTickWall(t *testing.T) {
	sink := &MemSink{}
	tr := NewTracer(sink)
	tr.Emit(Event{Kind: KindRunStart})
	tr.SetTick(4)
	tr.Emit(Event{Kind: KindDispatch, Rank: 1})
	tr.SetTick(9)
	tr.Emit(Event{Kind: KindRunEnd})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	evs := sink.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != int64(i) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
	if evs[0].Tick != 0 || evs[1].Tick != 4 || evs[2].Tick != 9 {
		t.Fatalf("ticks wrong: %d %d %d", evs[0].Tick, evs[1].Tick, evs[2].Tick)
	}
	if evs[0].Wall > evs[1].Wall || evs[1].Wall > evs[2].Wall {
		t.Fatalf("wall time regressed: %v %v %v", evs[0].Wall, evs[1].Wall, evs[2].Wall)
	}
	if err := ValidateTrace(evs); err != nil {
		t.Fatalf("emitted trace invalid: %v", err)
	}
}

func TestTracerConcurrentEmit(t *testing.T) {
	sink := &MemSink{}
	tr := NewTracer(sink)
	tr.Emit(Event{Kind: KindRunStart})
	var wg sync.WaitGroup
	const ranks, per = 8, 200
	for r := 1; r <= ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Emit(Event{Kind: KindWorkerShip, Rank: r})
			}
		}(r)
	}
	wg.Wait()
	evs := sink.Events()
	if len(evs) != ranks*per+1 {
		t.Fatalf("lost events: %d", len(evs))
	}
	if err := ValidateTrace(evs); err != nil {
		t.Fatalf("concurrent trace invalid: %v", err)
	}
}

func TestWriterSinkJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(NewWriterSink(&buf))
	tr.Emit(Event{Kind: KindRunStart, Open: 2})
	tr.SetTick(1)
	tr.Emit(Event{Kind: KindRunEnd, Dual: 5, Primal: 5})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadTrace(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateTrace(evs); err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 || evs[1].Dual != 5 {
		t.Fatalf("decoded %+v", evs)
	}
}

func TestValidateTraceCatchesViolations(t *testing.T) {
	base := func() []Event {
		return []Event{
			{Seq: 0, Kind: KindRunStart},
			{Seq: 1, Tick: 1, Kind: KindDispatch, Rank: 1},
			{Seq: 2, Tick: 2, Kind: KindRunEnd},
		}
	}
	if err := ValidateTrace(base()); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	bad := base()
	bad[1].Seq = 7
	if err := ValidateTrace(bad); err == nil {
		t.Error("seq gap accepted")
	}
	bad = base()
	bad[2].Tick = 0
	if err := ValidateTrace(bad); err == nil {
		t.Error("tick regression accepted")
	}
	bad = base()
	bad[1].Kind = "no.such.kind"
	if err := ValidateTrace(bad); err == nil {
		t.Error("unknown kind accepted")
	}
	bad = base()
	bad[1].Kind = KindCollectStop
	if err := ValidateTrace(bad); err == nil {
		t.Error("unbalanced collect accepted")
	}
	if err := ValidateTrace(nil); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestRegistrySnapshotSortedAndComplete(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("z.count").Add(3)
	reg.Gauge("a.depth").Set(5)
	reg.Gauge("a.depth").Set(2)
	h := reg.Histogram("m.nodes", []float64{10, 100})
	h.Observe(7)
	h.Observe(50)

	ms := reg.Snapshot()
	byKey := map[string]float64{}
	for i, m := range ms {
		if i > 0 && (ms[i-1].Name > m.Name || (ms[i-1].Name == m.Name && ms[i-1].Kind > m.Kind)) {
			t.Fatalf("snapshot not sorted at %d: %+v", i, ms)
		}
		byKey[m.Name+"/"+m.Kind] = m.Value
	}
	if byKey["z.count/counter"] != 3 {
		t.Errorf("counter: %v", byKey)
	}
	if byKey["a.depth/gauge"] != 2 || byKey["a.depth/gauge.hw"] != 5 {
		t.Errorf("gauge: %v", byKey)
	}
	if byKey["m.nodes/hist.count"] != 2 || byKey["m.nodes/hist.mean"] != 28.5 {
		t.Errorf("histogram: %v", byKey)
	}

	var buf bytes.Buffer
	if err := WriteTable(&buf, ms); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "a.depth") || !strings.Contains(out, "gauge.hw") {
		t.Fatalf("table missing rows:\n%s", out)
	}
}

func TestGaugeHighWaterConcurrent(t *testing.T) {
	g := (&Registry{gauges: map[string]*Gauge{}}).Gauge("g")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if g.Value() != 0 {
		t.Fatalf("gauge drifted: %d", g.Value())
	}
	if hw := g.HighWater(); hw < 1 || hw > 4 {
		t.Fatalf("high watermark %d out of range", hw)
	}
}
