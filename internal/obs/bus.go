package obs

import (
	"sync"
	"sync/atomic"
)

// Bus is the live half of the telemetry plane: a Sink that tees every
// event into the authoritative downstream sink (the JSONL file sink —
// its bytes stay identical whether or not a bus sits in front of it)
// and fans a copy out to any number of live subscribers (SSE streams,
// the stall watchdog, future ugserve clients).
//
// The contract that makes it safe to put in front of the solve path:
// Emit never blocks and never allocates per event in steady state. Each
// subscriber owns a bounded ring buffer; when a subscriber falls behind,
// the bus drops that subscriber's *oldest* buffered event and counts the
// loss (per-subscriber, plus the aggregate `obs.bus.dropped` registry
// counter) rather than ever stalling the emitter. Live views may have
// holes under backpressure; the file trace never does — which is why the
// file sink stays the source of truth for determinism checks and merges.
type Bus struct {
	sink     Sink     // optional downstream (file) sink; may be nil
	dropCtr  *Counter // the obs.bus.dropped registry counter (nil-safe)
	subGauge *Gauge   // the obs.bus.subscribers registry gauge (nil-safe)

	mu     sync.Mutex // guards subscription changes, not the fan-out
	subs   map[int]*subscriber
	nextID int
	closed bool

	// fan is the copy-on-write subscriber snapshot Emit/Publish iterate:
	// subscription changes rebuild it under mu, the emit path reads it
	// with a single atomic load and holds no bus lock at all while
	// fanning out (push only ever takes the subscriber's own short
	// ring lock). A push may race a concurrent unsubscribe through a
	// stale snapshot; the subscriber's closed flag makes that a no-op.
	fan     atomic.Pointer[[]*subscriber]
	dropped atomic.Int64 // total events dropped across all subscribers
}

// busRingCap is each subscriber's ring-buffer capacity. A busy solve
// emits bursts of dispatch/status events far faster than a network
// client drains them; 1024 events of slack absorbs the burst without
// letting an abandoned subscriber hold the run's history alive.
const busRingCap = 1024

// NewBus creates a bus teeing into sink (may be nil for a live-only bus
// with no trace file) and counting drops into reg (may be nil).
func NewBus(sink Sink, reg *Registry) *Bus {
	return &Bus{
		sink:     sink,
		dropCtr:  reg.Counter("obs.bus.dropped"),
		subGauge: reg.Gauge("obs.bus.subscribers"),
		subs:     map[int]*subscriber{},
	}
}

// subscriber is one bounded fan-out lane. The bus appends into the ring
// under sub.mu (dropping the oldest event when full); a dedicated pump
// goroutine moves events ring → out at whatever pace the consumer
// sustains, so a stalled consumer blocks only its own pump.
type subscriber struct {
	kinds map[string]bool // nil = every kind

	mu     sync.Mutex
	ring   [busRingCap]Event
	start  int // index of oldest buffered event
	n      int // buffered event count
	closed bool

	dropped atomic.Int64

	notify chan struct{} // cap 1: "ring went non-empty" edge
	done   chan struct{} // closed by Unsubscribe / Bus.Close
	stop   sync.Once
	out    chan Event
}

// Emit implements Sink: forward to the downstream sink first (so the
// trace file sees exactly the stream it would without a bus), then copy
// into every matching subscriber ring. Called under the tracer's lock,
// which serializes tracer-borne events into both the sink and the rings
// in one total order; the fan-out itself takes no bus-level lock.
//
//ugo:coldpath fan-out reads an atomic subscriber snapshot and copies into fixed-size preallocated rings; drop-oldest keeps it alloc-free and non-blocking even with stalled subscribers
func (b *Bus) Emit(ev Event) {
	if b.sink != nil {
		b.sink.Emit(ev)
	}
	if subs := b.fan.Load(); subs != nil {
		for _, sub := range *subs {
			sub.push(ev, b)
		}
	}
}

// push appends ev to the subscriber's ring if the kind matches, dropping
// the oldest buffered event when the ring is full. The notify send is
// select-default on a 1-slot channel after the ring lock is released, so
// push can never block its caller.
func (s *subscriber) push(ev Event, b *Bus) {
	if s.kinds != nil && !s.kinds[ev.Kind] {
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if s.n == len(s.ring) {
		s.start = (s.start + 1) % len(s.ring)
		s.n--
		s.dropped.Add(1)
		b.dropped.Add(1)
		b.dropCtr.Inc()
	}
	s.ring[(s.start+s.n)%len(s.ring)] = ev
	s.n++
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default: // pump already has a wakeup pending
	}
}

// refan rebuilds the emit path's subscriber snapshot and mirrors the
// live fan-out width into the obs.bus.subscribers gauge (so /statusz
// and /metrics show how many SSE/watchdog/recorder lanes are attached).
// Callers hold b.mu — the one lock every subscription change takes.
func (b *Bus) refan() {
	subs := make([]*subscriber, 0, len(b.subs))
	for _, s := range b.subs {
		subs = append(subs, s)
	}
	b.fan.Store(&subs)
	b.subGauge.Set(int64(len(subs)))
}

// Subscribe registers a live event consumer. With no kinds every event
// is delivered; otherwise only events whose Kind is listed. It returns
// the delivery channel and an unsubscribe func; the channel is closed
// once the subscription ends (unsubscribe or bus close), after which the
// subscriber's buffered backlog is discarded. Unsubscribe is idempotent
// and safe to call while a receive is blocked.
func (b *Bus) Subscribe(kinds ...string) (<-chan Event, func()) {
	sub := &subscriber{
		notify: make(chan struct{}, 1),
		done:   make(chan struct{}),
		out:    make(chan Event),
	}
	if len(kinds) > 0 {
		sub.kinds = make(map[string]bool, len(kinds))
		for _, k := range kinds {
			sub.kinds[k] = true
		}
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		close(sub.out)
		return sub.out, func() {}
	}
	id := b.nextID
	b.nextID++
	b.subs[id] = sub
	b.refan()
	b.mu.Unlock()

	go sub.pump()

	cancel := func() {
		b.mu.Lock()
		delete(b.subs, id)
		b.refan()
		b.mu.Unlock()
		sub.close()
	}
	return sub.out, cancel
}

// pump drains the ring into the out channel at consumer pace.
func (s *subscriber) pump() {
	for {
		s.mu.Lock()
		if s.n == 0 {
			s.mu.Unlock()
			select {
			case <-s.notify:
				continue
			case <-s.done:
				close(s.out)
				return
			}
		}
		ev := s.ring[s.start]
		s.start = (s.start + 1) % len(s.ring)
		s.n--
		s.mu.Unlock()
		select {
		case s.out <- ev:
		case <-s.done:
			close(s.out)
			return
		}
	}
}

// close ends the subscription: the pump exits (closing out) and later
// pushes become no-ops.
func (s *subscriber) close() {
	s.stop.Do(func() {
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		close(s.done)
	})
}

// Subscribers returns the number of live subscriptions.
func (b *Bus) Subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// Dropped returns the total number of events dropped across all
// subscribers since the bus was created. Together with the events
// actually delivered it accounts for every emission: for any single
// subscriber, delivered + dropped + still-buffered == matched emits.
func (b *Bus) Dropped() int64 { return b.dropped.Load() }

// Publish injects an event that did not come through a Tracer — the
// watchdog uses it when the process has no tracer, so live subscribers
// still see stall events that have no trace file to land in. The event
// reaches subscribers only, never the downstream sink (an unstamped
// event in the file would violate the dense-seq invariant).
func (b *Bus) Publish(ev Event) {
	if subs := b.fan.Load(); subs != nil {
		for _, sub := range *subs {
			sub.push(ev, b)
		}
	}
}

// Close implements Sink: it ends every subscription and closes the
// downstream sink. Emit must not be called after Close (the tracer
// guarantees this by closing its sink exactly once).
func (b *Bus) Close() error {
	b.mu.Lock()
	b.closed = true
	subs := make([]*subscriber, 0, len(b.subs))
	for id, sub := range b.subs {
		subs = append(subs, sub)
		delete(b.subs, id)
	}
	b.refan()
	b.mu.Unlock()
	for _, sub := range subs {
		sub.close()
	}
	if b.sink != nil {
		return b.sink.Close()
	}
	return nil
}
