package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The nil *Counter is the
// disabled counter; all operations on it are no-ops.
type Counter struct {
	v atomic.Int64
}

// Add increases the counter by d.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on the nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time level with a high-watermark. The nil *Gauge
// is the disabled gauge; all operations on it are no-ops. Gauges are
// lock-free and safe to update from any goroutine.
type Gauge struct {
	v  atomic.Int64
	hw atomic.Int64
}

// Set assigns the current level and raises the high-watermark if passed.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	for {
		old := g.hw.Load()
		if v <= old || g.hw.CompareAndSwap(old, v) {
			return
		}
	}
}

// Add adjusts the level by d (d may be negative).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	v := g.v.Add(d)
	for {
		old := g.hw.Load()
		if v <= old || g.hw.CompareAndSwap(old, v) {
			return
		}
	}
}

// Value returns the current level (0 on the nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// HighWater returns the maximum level ever set (0 on the nil gauge).
func (g *Gauge) HighWater() int64 {
	if g == nil {
		return 0
	}
	return g.hw.Load()
}

// Histogram counts observations into fixed buckets (upper bounds,
// ascending; an implicit +Inf bucket catches the rest). The nil
// *Histogram is the disabled histogram.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64
	n      int64
	sum    float64
}

// Observe records one sample.
func (h *Histogram) Observe(x float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, x)
	h.counts[i]++
	h.n++
	h.sum += x
	h.mu.Unlock()
}

// Count returns the number of observations (0 on the nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Sum returns the sum of observations (0 on the nil histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile estimates the q-quantile (0 < q < 1) of the observed samples
// by linear interpolation inside the bucket holding the target rank —
// the usual bucketed-histogram estimate, exact only at bucket edges.
// Samples landing in the +Inf overflow bucket are reported as the
// largest finite bound (the estimate saturates there). Returns 0 on the
// nil or empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 || len(h.bounds) == 0 {
		return 0
	}
	target := q * float64(h.n)
	var cum int64
	for i, cnt := range h.counts {
		prev := cum
		cum += cnt
		if float64(cum) < target || cnt == 0 {
			continue
		}
		if i >= len(h.bounds) { // +Inf overflow bucket: no finite upper edge
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		return lo + (hi-lo)*(target-float64(prev))/float64(cnt)
	}
	return h.bounds[len(h.bounds)-1]
}

// Metric is one snapshotted value for table rendering.
type Metric struct {
	Name  string
	Kind  string // "counter", "gauge", "gauge.hw", "hist.count", "hist.sum", "hist.mean", "hist.p50/p95/p99"
	Value float64
}

// integerKind reports whether a snapshot kind carries an integral value
// (counters, gauges and observation counts) as opposed to the float
// estimates derived from histogram contents.
func integerKind(kind string) bool {
	switch kind {
	case "counter", "gauge", "gauge.hw", "hist.count":
		return true
	}
	return false
}

// Registry names and owns metrics. The nil *Registry is the disabled
// registry: Counter/Gauge/Histogram return their nil (disabled)
// instruments, so instrumented code needs no enablement checks.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (later bounds are ignored).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		h = &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// Snapshot returns every metric's current value, sorted by name then
// kind so output is deterministic.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Metric
	for name, c := range r.counters {
		out = append(out, Metric{Name: name, Kind: "counter", Value: float64(c.Value())})
	}
	for name, g := range r.gauges {
		out = append(out, Metric{Name: name, Kind: "gauge", Value: float64(g.Value())})
		out = append(out, Metric{Name: name, Kind: "gauge.hw", Value: float64(g.HighWater())})
	}
	for name, h := range r.hists {
		out = append(out, Metric{Name: name, Kind: "hist.count", Value: float64(h.Count())})
		if n := h.Count(); n > 0 {
			out = append(out, Metric{Name: name, Kind: "hist.sum", Value: h.Sum()})
			out = append(out, Metric{Name: name, Kind: "hist.mean", Value: h.Sum() / float64(n)})
			out = append(out, Metric{Name: name, Kind: "hist.p50", Value: h.Quantile(0.50)})
			out = append(out, Metric{Name: name, Kind: "hist.p95", Value: h.Quantile(0.95)})
			out = append(out, Metric{Name: name, Kind: "hist.p99", Value: h.Quantile(0.99)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// WriteTable renders metrics as an aligned name/kind/value table.
func WriteTable(w io.Writer, ms []Metric) error {
	nameW, kindW := len("metric"), len("kind")
	for _, m := range ms {
		if len(m.Name) > nameW {
			nameW = len(m.Name)
		}
		if len(m.Kind) > kindW {
			kindW = len(m.Kind)
		}
	}
	if _, err := fmt.Fprintf(w, "%-*s  %-*s  %s\n", nameW, "metric", kindW, "kind", "value"); err != nil {
		return err
	}
	for _, m := range ms {
		// Counters, gauges and counts are integers; %g would flip large
		// ones (e.g. transfer bytes past 1e7) into scientific notation on
		// /statusz. Only histogram-derived estimates are true floats.
		var err error
		if integerKind(m.Kind) {
			_, err = fmt.Fprintf(w, "%-*s  %-*s  %d\n", nameW, m.Name, kindW, m.Kind, int64(m.Value))
		} else {
			_, err = fmt.Fprintf(w, "%-*s  %-*s  %g\n", nameW, m.Name, kindW, m.Kind, m.Value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
