package obs

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// This file renders a Registry snapshot in the Prometheus text
// exposition format (version 0.0.4), the format the /metrics endpoint
// of the debug server serves. The mapping from the registry's kinds:
//
//   counter      →  TYPE counter, one sample
//   gauge        →  TYPE gauge, one sample
//   gauge.hw     →  TYPE gauge, sample on <name>_highwater
//   histogram    →  TYPE summary: <name>{quantile="0.5|0.95|0.99"},
//                   <name>_sum, <name>_count
//
// Metric names are sanitized to the Prometheus charset
// [a-zA-Z_:][a-zA-Z0-9_:]* — the registry's dotted names (ug.comm.bytes)
// come out underscored (ug_comm_bytes). Each series is preceded by its
// # HELP and # TYPE lines, and TYPE always precedes the first sample of
// its family, which prom_test.go enforces line by line.

// sanitizeMetricName maps an arbitrary registry name into the Prometheus
// metric-name charset. Invalid runes become '_'; a leading digit gets a
// '_' prefix. The empty name becomes "_".
func sanitizeMetricName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		valid := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		switch {
		case valid:
			b.WriteByte(c)
		case c >= '0' && c <= '9': // leading digit
			b.WriteByte('_')
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promValue formats a sample value: integral kinds as integers,
// everything else in Go's shortest-roundtrip float form (Prometheus
// accepts scientific notation).
func promValue(kind string, v float64) string {
	if integerKind(kind) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promFamily is one exposition family: a TYPE, a HELP and its samples in
// a fixed order.
type promFamily struct {
	name    string
	typ     string // "counter", "gauge", "summary"
	help    string
	samples []promSample
}

type promSample struct {
	suffix string // appended to the family name ("_sum", "_count", "")
	labels string // rendered label set incl. braces, or ""
	value  string
}

// WriteProm renders a metrics snapshot (Registry.Snapshot order) as
// Prometheus text exposition. Families are emitted in sorted-name order;
// within a histogram family the quantile series come first (ascending
// quantile), then _sum and _count.
func WriteProm(w io.Writer, ms []Metric) error {
	families := map[string]*promFamily{}
	var order []string
	family := func(name, typ, help string) *promFamily {
		f := families[name]
		if f == nil {
			f = &promFamily{name: name, typ: typ, help: help}
			families[name] = f
			order = append(order, name)
		}
		return f
	}
	for _, m := range ms {
		base := sanitizeMetricName(m.Name)
		val := promValue(m.Kind, m.Value)
		switch m.Kind {
		case "counter", "counter.float":
			f := family(base, "counter", fmt.Sprintf("Counter %s.", m.Name))
			f.samples = append(f.samples, promSample{value: val})
		case "gauge":
			f := family(base, "gauge", fmt.Sprintf("Gauge %s.", m.Name))
			f.samples = append(f.samples, promSample{value: val})
		case "gauge.hw":
			f := family(base+"_highwater", "gauge", fmt.Sprintf("High-watermark of gauge %s.", m.Name))
			f.samples = append(f.samples, promSample{value: val})
		case "hist.count":
			f := family(base, "summary", fmt.Sprintf("Distribution %s.", m.Name))
			f.samples = append(f.samples, promSample{suffix: "_count", value: val})
		case "hist.sum":
			f := family(base, "summary", fmt.Sprintf("Distribution %s.", m.Name))
			f.samples = append(f.samples, promSample{suffix: "_sum", value: val})
		case "hist.p50":
			f := family(base, "summary", fmt.Sprintf("Distribution %s.", m.Name))
			f.samples = append(f.samples, promSample{labels: `{quantile="0.5"}`, value: val})
		case "hist.p95":
			f := family(base, "summary", fmt.Sprintf("Distribution %s.", m.Name))
			f.samples = append(f.samples, promSample{labels: `{quantile="0.95"}`, value: val})
		case "hist.p99":
			f := family(base, "summary", fmt.Sprintf("Distribution %s.", m.Name))
			f.samples = append(f.samples, promSample{labels: `{quantile="0.99"}`, value: val})
		case "hist.mean":
			// Derivable from _sum/_count; no standard exposition series.
		}
	}
	sort.Strings(order)
	for _, name := range order {
		f := families[name]
		// Quantile series ascending, then _sum, then _count — the
		// conventional summary layout.
		sort.SliceStable(f.samples, func(i, j int) bool {
			return sampleRank(f.samples[i]) < sampleRank(f.samples[j])
		})
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.samples {
			if _, err := fmt.Fprintf(w, "%s%s%s %s\n", f.name, s.suffix, s.labels, s.value); err != nil {
				return err
			}
		}
	}
	return nil
}

// sampleRank orders a summary family's samples: quantiles (by ascending
// quantile label, relying on the fixed "0.5" < "0.95" < "0.99" string
// order), then _sum, then _count.
func sampleRank(s promSample) int {
	switch s.suffix {
	case "_sum":
		return 2
	case "_count":
		return 3
	}
	switch s.labels {
	case `{quantile="0.5"}`:
		return 0
	case `{quantile="0.95"}`:
		return 1
	}
	return 1 // quantile "0.99" sorts after 0.95 via stable sort
}

// ProcessMetrics returns the process-level gauges the /metrics endpoint
// serves alongside the registry: goroutine count, live heap bytes, GC
// cycle count and cumulative GC pause seconds — the health signals a
// scraper needs to spot a leaking or thrashing solver process.
func ProcessMetrics() []Metric {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return []Metric{
		{Name: "go_goroutines", Kind: "gauge", Value: float64(runtime.NumGoroutine())},
		{Name: "go_heap_alloc_bytes", Kind: "gauge", Value: float64(ms.HeapAlloc)},
		{Name: "go_gc_cycles_total", Kind: "counter", Value: float64(ms.NumGC)},
		// counter.float: monotone like a counter, but fractional seconds —
		// rendered as a counter family with a float sample.
		{Name: "go_gc_pause_seconds_total", Kind: "counter.float", Value: float64(ms.PauseTotalNs) / 1e9},
	}
}
